//===- serve/WireIngestor.h - Frames -> AnalysisSession ---------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protocol layer between a FeedSource's byte stream and one
/// AnalysisSession: an incremental FrameDecoder plus the data-plane frame
/// semantics. The ingestor owns the serving layer's *sticky failure*
/// contract: the first malformed frame (decoder desync, bad payload,
/// missing Hello, undeclared ids) freezes the stream with a
/// ValidationError — every later data frame is ignored, never
/// half-applied — while the session's already-analyzed prefix stays
/// queryable and finishable. Control frames (queries) are not handled
/// here; they are handed to the caller, because only the server knows
/// where replies go.
///
/// Single-producer like the session itself: one thread calls ingest()/
/// eof() per ingestor.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SERVE_WIREINGESTOR_H
#define RAPID_SERVE_WIREINGESTOR_H

#include "io/WireFormat.h"
#include "support/Status.h"
#include "trace/Event.h"

#include <functional>
#include <vector>

namespace rapid {

class AnalysisSession;
class FeedSource;

/// Applies a wire frame stream to a session.
class WireIngestor {
public:
  /// \p OnControl receives PartialQuery/TimelineQuery/ListSessions/
  /// FinalQuery frames; null treats them as protocol errors.
  using ControlFn = std::function<void(const WireFrameView &)>;

  explicit WireIngestor(AnalysisSession &S, ControlFn OnControl = nullptr)
      : S(S), OnControl(std::move(OnControl)) {}

  /// Decodes and applies every complete frame in \p Data. Safe to call
  /// after a failure (bytes are discarded).
  void ingest(const char *Data, size_t N);

  /// The peer hung up: a partially buffered frame becomes the sticky
  /// "disconnected mid-frame" error.
  void eof();

  /// Applies one already-decoded frame. The resumable server path decodes
  /// per-connection (a reconnect starts a fresh decoder while the session
  /// — and this ingestor — persist), so the decoder inside ingest() is
  /// bypassed there.
  void applyFrame(const WireFrameView &F) { apply(F); }

  /// Marks the hello handshake as done when the caller performed it
  /// itself (the resumable server owns Hello/Resume negotiation).
  void noteHello() { SawHello = true; }

  /// Freezes the stream with an externally detected failure (connection
  /// decoder desync, resume-grace expiry, ...).
  void fail(Status S) {
    if (Sticky.ok())
      Sticky = std::move(S);
  }

  bool sawHello() const { return SawHello; }
  /// The client sent Finish: no more data frames are accepted; the
  /// caller finalizes the session and replies.
  bool sawFinish() const { return SawFinish; }
  uint64_t eventsApplied() const { return EventsApplied; }
  uint64_t framesApplied() const { return FramesApplied; }

  /// The next expected Events sequence number — by construction the count
  /// of events applied so far, since frames carry their cumulative start
  /// offset. This is the value a ResumeOk/Ack advertises.
  uint64_t appliedSeq() const { return EventsApplied; }
  /// Frames skipped (fully or partially) by exactly-once dedup after a
  /// resume retransmission.
  uint64_t dupFrames() const { return DupFrames; }

  /// Sticky: first failure freezes ingestion (ok() == false from then on).
  const Status &status() const { return Sticky; }

private:
  void apply(const WireFrameView &F);
  void freeze(StatusCode Code, std::string Message);

  AnalysisSession &S;
  ControlFn OnControl;
  FrameDecoder Dec;
  std::vector<Event> Batch; ///< Reused decode buffer.
  Status Sticky;
  bool SawHello = false;
  bool SawFinish = false;
  uint64_t EventsApplied = 0;
  uint64_t FramesApplied = 0;
  uint64_t DupFrames = 0;
};

/// Blocking convenience pump: reads \p Src until EOF/Finish/failure,
/// applying everything to \p S. Returns the ingestor's sticky status (ok
/// for a clean stream). Does not call S.finish() — the caller owns the
/// session lifecycle. Control frames are protocol errors in this mode.
Status pumpFeedSource(FeedSource &Src, AnalysisSession &S,
                      size_t ChunkBytes = 64 * 1024);

} // namespace rapid

#endif // RAPID_SERVE_WIREINGESTOR_H
