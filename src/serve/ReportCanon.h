//===- serve/ReportCanon.h - Canonical race-report listing ------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One deterministic text rendering of an AnalysisResult, shared by the
/// server's Report frames and `race_cli --report-out`. This is the
/// serving layer's equality witness: the e2e pin diffs the live server's
/// final report against an offline race_cli run byte for byte, so the
/// rendering deliberately contains *only* replay-deterministic fields —
/// names, counts, event indices — and none of the timing/telemetry that
/// differs between runs.
///
/// Because a session's partialResult() is an exact prefix of its final
/// report per lane, the canonical listing inherits the property line-wise:
/// a partial listing's per-lane `race` lines are a prefix of the final
/// listing's, which is what the mid-stream assertion checks.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SERVE_REPORTCANON_H
#define RAPID_SERVE_REPORTCANON_H

#include <string>

namespace rapid {

struct AnalysisResult;
class Trace;

/// Renders \p R against \p T's name tables:
///
///   rapidpp-report v1
///   status <ok | code: message>
///   events <n>
///   lanes <k>
///   lane <detector name>
///   lane-status <ok | code: message>
///   consumed <n>
///   pairs <distinct> instances <total>
///   race <var> <earlier loc> <later loc> at <earlier idx> <later idx>
///   ...       (first instance per distinct pair, discovery order)
///   end
///
/// Identical event streams + configs produce identical bytes, whether the
/// events arrived over a socket, a ring, or a file.
std::string canonicalReport(const AnalysisResult &R, const Trace &T);

} // namespace rapid

#endif // RAPID_SERVE_REPORTCANON_H
