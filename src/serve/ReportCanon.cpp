//===- serve/ReportCanon.cpp - Canonical race-report listing ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ReportCanon.h"

#include "api/AnalysisResult.h"
#include "trace/Trace.h"

namespace rapid {

std::string canonicalReport(const AnalysisResult &R, const Trace &T) {
  std::string Out;
  Out.reserve(256);
  Out += "rapidpp-report v1\n";
  Out += "status " + R.Overall.str() + "\n";
  Out += "events " + std::to_string(R.EventsIngested) + "\n";
  Out += "lanes " + std::to_string(R.Lanes.size()) + "\n";
  for (const LaneReport &L : R.Lanes) {
    Out += "lane " + L.DetectorName + "\n";
    Out += "lane-status " + L.LaneStatus.str() + "\n";
    Out += "consumed " + std::to_string(L.EventsConsumed) + "\n";
    Out += "pairs " + std::to_string(L.Report.numDistinctPairs()) +
           " instances " + std::to_string(L.Report.numInstances()) + "\n";
    for (const RaceInstance &I : L.Report.instances()) {
      Out += "race " + T.varName(I.Var) + " " + T.locName(I.EarlierLoc) +
             " " + T.locName(I.LaterLoc) + " at " +
             std::to_string(I.EarlierIdx) + " " + std::to_string(I.LaterIdx) +
             "\n";
    }
  }
  Out += "end\n";
  return Out;
}

} // namespace rapid
