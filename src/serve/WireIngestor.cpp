//===- serve/WireIngestor.cpp - Frames -> AnalysisSession ---------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/WireIngestor.h"

#include "api/AnalysisSession.h"
#include "io/FeedSource.h"

namespace rapid {

void WireIngestor::freeze(StatusCode Code, std::string Message) {
  if (Sticky.ok())
    Sticky = Status(Code, std::move(Message));
}

void WireIngestor::ingest(const char *Data, size_t N) {
  // A dead stream still consumes bytes (so a pumping caller drains to
  // EOF instead of spinning) but applies nothing.
  if (!Sticky.ok())
    return;
  Dec.append(Data, N);
  WireFrameView F;
  int R;
  while ((R = Dec.next(F)) == 1) {
    apply(F);
    if (!Sticky.ok())
      return;
  }
  if (R == -1)
    freeze(StatusCode::ValidationError, Dec.error());
}

void WireIngestor::eof() {
  if (!Sticky.ok())
    return;
  if (Dec.buffered() != 0)
    freeze(StatusCode::ValidationError,
           "peer disconnected mid-frame (" +
               std::to_string(Dec.buffered()) + " bytes of partial frame)");
}

void WireIngestor::apply(const WireFrameView &F) {
  if (!SawHello && F.Type != WireFrame::Hello) {
    freeze(StatusCode::ValidationError,
           std::string("first frame must be hello, got ") +
               wireFrameName(F.Type));
    return;
  }
  switch (F.Type) {
  case WireFrame::Hello: {
    std::string Err;
    if (SawHello)
      freeze(StatusCode::ValidationError, "duplicate hello");
    else if (!wireCheckHello(F.Payload, Err))
      freeze(StatusCode::ValidationError, std::move(Err));
    else
      SawHello = true;
    return;
  }
  case WireFrame::Declare: {
    if (SawFinish) {
      freeze(StatusCode::InvalidState, "declare after finish");
      return;
    }
    Status DS = forEachDeclareEntry(
        F.Payload, [&](WireDeclareKind K, std::string_view Name) {
          switch (K) {
          case WireDeclareKind::Thread:
            S.declareThread(Name);
            break;
          case WireDeclareKind::Lock:
            S.declareLock(Name);
            break;
          case WireDeclareKind::Var:
            S.declareVar(Name);
            break;
          case WireDeclareKind::Loc:
            S.declareLoc(Name);
            break;
          }
          return Status::success();
        });
    if (!DS.ok())
      freeze(DS.Code, DS.Message);
    else
      ++FramesApplied;
    return;
  }
  case WireFrame::Events: {
    if (SawFinish) {
      freeze(StatusCode::InvalidState, "events after finish");
      return;
    }
    Batch.clear();
    Status DS = decodeEventsPayload(F.Payload, Batch);
    if (!DS.ok()) {
      freeze(DS.Code, DS.Message);
      return;
    }
    Status FS = S.feed(Batch);
    if (!FS.ok()) {
      // Undeclared ids, §2.1 violations, feed-after-finish: all freeze
      // the stream as the serve layer's sticky ValidationError.
      freeze(FS.Code == StatusCode::Ok ? StatusCode::ValidationError : FS.Code,
             FS.Message);
      return;
    }
    EventsApplied += Batch.size();
    ++FramesApplied;
    return;
  }
  case WireFrame::Finish:
    SawFinish = true;
    return;
  case WireFrame::PartialQuery:
  case WireFrame::TimelineQuery:
  case WireFrame::ListSessions:
  case WireFrame::FinalQuery:
    if (OnControl) {
      OnControl(F);
      return;
    }
    freeze(StatusCode::ValidationError,
           std::string("control frame ") + wireFrameName(F.Type) +
               " on a data-only feed");
    return;
  case WireFrame::Report:
  case WireFrame::Timeline:
  case WireFrame::SessionList:
  case WireFrame::WireError:
    freeze(StatusCode::ValidationError,
           std::string("server-only frame ") + wireFrameName(F.Type) +
               " from a client");
    return;
  }
}

Status pumpFeedSource(FeedSource &Src, AnalysisSession &S, size_t ChunkBytes) {
  WireIngestor Ing(S);
  std::vector<char> Buf(ChunkBytes ? ChunkBytes : 1);
  for (;;) {
    const long N = Src.read(Buf.data(), Buf.size());
    if (N == FeedSource::Eof) {
      Ing.eof();
      break;
    }
    if (N == FeedSource::WouldBlock)
      continue; // Blocking pumps shouldn't see this; be forgiving.
    if (N < 0)
      return Src.status();
    Ing.ingest(Buf.data(), static_cast<size_t>(N));
    if (Ing.sawFinish())
      break;
  }
  return Ing.status();
}

} // namespace rapid
