//===- serve/WireIngestor.cpp - Frames -> AnalysisSession ---------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/WireIngestor.h"

#include "api/AnalysisSession.h"
#include "io/FeedSource.h"

#include <chrono>
#include <thread>

#include <poll.h>

namespace rapid {

void WireIngestor::freeze(StatusCode Code, std::string Message) {
  if (Sticky.ok())
    Sticky = Status(Code, std::move(Message));
}

void WireIngestor::ingest(const char *Data, size_t N) {
  // A dead stream still consumes bytes (so a pumping caller drains to
  // EOF instead of spinning) but applies nothing.
  if (!Sticky.ok())
    return;
  Dec.append(Data, N);
  WireFrameView F;
  int R;
  while ((R = Dec.next(F)) == 1) {
    apply(F);
    if (!Sticky.ok())
      return;
  }
  if (R == -1)
    freeze(StatusCode::ValidationError, Dec.error());
}

void WireIngestor::eof() {
  if (!Sticky.ok())
    return;
  if (Dec.buffered() != 0)
    freeze(StatusCode::ValidationError,
           "peer disconnected mid-frame (" +
               std::to_string(Dec.buffered()) + " bytes of partial frame)");
}

void WireIngestor::apply(const WireFrameView &F) {
  if (!SawHello && F.Type != WireFrame::Hello) {
    freeze(StatusCode::ValidationError,
           std::string("first frame must be hello, got ") +
               wireFrameName(F.Type));
    return;
  }
  switch (F.Type) {
  case WireFrame::Hello: {
    std::string Err;
    if (SawHello)
      freeze(StatusCode::ValidationError, "duplicate hello");
    else if (!wireCheckHello(F.Payload, Err))
      freeze(StatusCode::ValidationError, std::move(Err));
    else
      SawHello = true;
    return;
  }
  case WireFrame::Declare: {
    if (SawFinish) {
      freeze(StatusCode::InvalidState, "declare after finish");
      return;
    }
    Status DS = forEachDeclareEntry(
        F.Payload, [&](WireDeclareKind K, std::string_view Name) {
          switch (K) {
          case WireDeclareKind::Thread:
            S.declareThread(Name);
            break;
          case WireDeclareKind::Lock:
            S.declareLock(Name);
            break;
          case WireDeclareKind::Var:
            S.declareVar(Name);
            break;
          case WireDeclareKind::Loc:
            S.declareLoc(Name);
            break;
          }
          return Status::success();
        });
    if (!DS.ok())
      freeze(DS.Code, DS.Message);
    else
      ++FramesApplied;
    return;
  }
  case WireFrame::Events: {
    if (SawFinish) {
      freeze(StatusCode::InvalidState, "events after finish");
      return;
    }
    Batch.clear();
    uint64_t Seq = 0;
    Status DS = decodeEventsPayload(F.Payload, Seq, Batch);
    if (!DS.ok()) {
      freeze(DS.Code, DS.Message);
      return;
    }
    // Exactly-once over resume retransmissions: the frame declares the
    // cumulative event offset it starts at, and EventsApplied is the
    // offset we have consumed. A frame from the future means the client
    // skipped acknowledged-but-never-sent data — unrecoverable; a frame
    // wholly in the past is a retransmit of applied work and is dropped;
    // a straddling frame (the connection died inside a batch) sheds its
    // already-applied prefix.
    if (Seq > EventsApplied) {
      freeze(StatusCode::ValidationError,
             "events frame starts at sequence " + std::to_string(Seq) +
                 " but only " + std::to_string(EventsApplied) +
                 " events were received (gap)");
      return;
    }
    if (Seq + Batch.size() <= EventsApplied) {
      ++DupFrames;
      return;
    }
    if (Seq < EventsApplied) {
      Batch.erase(Batch.begin(),
                  Batch.begin() + static_cast<ptrdiff_t>(EventsApplied - Seq));
      ++DupFrames;
    }
    Status FS = S.feed(Batch);
    if (!FS.ok()) {
      // Undeclared ids, §2.1 violations, feed-after-finish: all freeze
      // the stream as the serve layer's sticky ValidationError.
      freeze(FS.Code == StatusCode::Ok ? StatusCode::ValidationError : FS.Code,
             FS.Message);
      return;
    }
    EventsApplied += Batch.size();
    ++FramesApplied;
    return;
  }
  case WireFrame::Finish:
    SawFinish = true;
    return;
  case WireFrame::PartialQuery:
  case WireFrame::TimelineQuery:
  case WireFrame::ListSessions:
  case WireFrame::FinalQuery:
    if (OnControl) {
      OnControl(F);
      return;
    }
    freeze(StatusCode::ValidationError,
           std::string("control frame ") + wireFrameName(F.Type) +
               " on a data-only feed");
    return;
  case WireFrame::Resume:
    // Resume is a handshake frame; by the time frames reach the ingestor
    // the connection is attached, so a mid-stream Resume is a protocol
    // error just like a duplicate Hello.
    freeze(StatusCode::ValidationError, "resume after handshake");
    return;
  case WireFrame::Report:
  case WireFrame::Timeline:
  case WireFrame::SessionList:
  case WireFrame::WireError:
  case WireFrame::ResumeOk:
  case WireFrame::Ack:
  case WireFrame::Welcome:
    freeze(StatusCode::ValidationError,
           std::string("server-only frame ") + wireFrameName(F.Type) +
               " from a client");
    return;
  }
}

Status pumpFeedSource(FeedSource &Src, AnalysisSession &S, size_t ChunkBytes) {
  WireIngestor Ing(S);
  std::vector<char> Buf(ChunkBytes ? ChunkBytes : 1);
  for (;;) {
    const long N = Src.read(Buf.data(), Buf.size());
    if (N == FeedSource::Eof) {
      Ing.eof();
      break;
    }
    if (N == FeedSource::WouldBlock) {
      // Non-blocking fds (and injected EAGAIN faults) land here: wait for
      // readability instead of spinning. Sources without a pollable fd
      // (the shm ring, fault decorators over it) get a short sleep.
      const int Fd = Src.pollFd();
      if (Fd >= 0) {
        pollfd P{Fd, POLLIN, 0};
        (void)::poll(&P, 1, 10);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      continue;
    }
    if (N < 0)
      return Src.status();
    Ing.ingest(Buf.data(), static_cast<size_t>(N));
    if (Ing.sawFinish())
      break;
  }
  return Ing.status();
}

} // namespace rapid
