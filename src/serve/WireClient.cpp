//===- serve/WireClient.cpp - Blocking wire-protocol client -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/WireClient.h"

#include "trace/Trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rapid {

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void WireClient::shutdownSend() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

Status WireClient::connectUnix(const std::string &Path, int RetryMs) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status(StatusCode::InvalidConfig,
                  "socket path too long: '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const auto Start = std::chrono::steady_clock::now();
  for (;;) {
    const int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (S < 0)
      return Status(StatusCode::IoError,
                    std::string("socket: ") + std::strerror(errno));
    if (::connect(S, reinterpret_cast<const sockaddr *>(&Addr),
                  sizeof(Addr)) == 0) {
      Fd = S;
      return Status::success();
    }
    const int E = errno;
    ::close(S);
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= RetryMs)
      return Status(StatusCode::IoError, "connecting to '" + Path +
                                             "': " + std::strerror(E));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status WireClient::sendBytes(const std::string &Bytes) {
  if (Fd < 0)
    return Status(StatusCode::InvalidState, "client is not connected");
  const char *Data = Bytes.data();
  size_t N = Bytes.size();
  while (N != 0) {
    const ssize_t W = ::send(Fd, Data, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return Status(StatusCode::IoError,
                    std::string("send: ") + std::strerror(errno));
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return Status::success();
}

Status WireClient::sendHello() { return sendBytes(wireHelloFrame()); }

Status WireClient::sendTrace(const Trace &T, uint64_t BatchEvents) {
  return sendBytes(encodeTraceFrames(T, BatchEvents));
}

Status WireClient::sendFinish() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::Finish, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendPartialQuery() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::PartialQuery, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendPartialQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::PartialQuery, P);
  return sendBytes(Out);
}

Status WireClient::sendTimelineQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::TimelineQuery, P);
  return sendBytes(Out);
}

Status WireClient::sendListSessions() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::ListSessions, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendFinalQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::FinalQuery, P);
  return sendBytes(Out);
}

// ---- Resumable mode ---------------------------------------------------------

namespace {

uint64_t eventsInFrame(const std::string &Frame) {
  // len(4) + type(1) + seq(8) + count(4) + records.
  const size_t Header = WireFrameHeaderSize + 12;
  return Frame.size() >= Header ? (Frame.size() - Header) / WireEventRecordSize
                                : 0;
}

std::string finishFrame() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::Finish, std::string_view());
  return Out;
}

} // namespace

void WireClient::dropConnection() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Dec = FrameDecoder();
}

void WireClient::setFaultPlan(const WireFaultPlan &P) {
  Plan = P;
  KillRng.reseed(P.Seed);
  KillsLeft = P.Kills;
  const uint64_t Span = P.MaxGapBytes >= P.MinGapBytes
                            ? P.MaxGapBytes - P.MinGapBytes
                            : 0;
  NextKillAt = SentBytes + P.MinGapBytes + KillRng.nextBelow(Span + 1);
}

Status WireClient::rawSend(const char *Data, size_t N) {
  if (Fd < 0)
    return Status(StatusCode::InvalidState, "client is not connected");
  while (N != 0) {
    size_t Chunk = N;
    if (KillsLeft > 0) {
      if (SentBytes >= NextKillAt) {
        dropConnection();
        --KillsLeft;
        const uint64_t Span = Plan.MaxGapBytes >= Plan.MinGapBytes
                                  ? Plan.MaxGapBytes - Plan.MinGapBytes
                                  : 0;
        NextKillAt = SentBytes + Plan.MinGapBytes + KillRng.nextBelow(Span + 1);
        return Status(StatusCode::IoError, "injected connection kill");
      }
      Chunk = static_cast<size_t>(
          std::min<uint64_t>(Chunk, NextKillAt - SentBytes));
    }
    const ssize_t W = ::send(Fd, Data, Chunk, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      const Status S(StatusCode::IoError,
                     std::string("send: ") + std::strerror(errno));
      dropConnection();
      return S;
    }
    Data += W;
    N -= static_cast<size_t>(W);
    SentBytes += static_cast<uint64_t>(W);
  }
  return Status::success();
}

void WireClient::backoff(int Attempt, uint32_t HintMs) {
  uint64_t DelayMs =
      HintMs != 0
          ? HintMs
          : std::min<uint64_t>(Policy.BackoffMaxMs,
                               static_cast<uint64_t>(Policy.BackoffBaseMs)
                                   << (Attempt < 20 ? Attempt : 20));
  if (DelayMs == 0)
    DelayMs = 1;
  DelayMs += Jitter.nextBelow(DelayMs / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
}

void WireClient::trimSpill() {
  while (!Spill.empty()) {
    const auto &Front = Spill.front();
    if (Front.first + eventsInFrame(Front.second) > AckedSeq)
      break;
    SpillBytes -= Front.second.size();
    Spill.pop_front();
  }
}

void WireClient::handleServerFrame(const WireFrameView &F) {
  switch (F.Type) {
  case WireFrame::Ack:
    if (F.Payload.size() == 8) {
      const uint64_t A = wireGetU64(F.Payload.data());
      if (A > AckedSeq)
        AckedSeq = A;
      trimSpill();
    }
    return;
  case WireFrame::Report:
    HasStashedReport = true;
    StashedReport.assign(F.Payload.data(), F.Payload.size());
    return;
  case WireFrame::WireError: {
    WireErrorInfo E;
    if (wireParseError(F.Payload, E) && !E.Retryable) {
      ServerError = Status(E.Code == StatusCode::Ok ? StatusCode::InvalidState
                                                    : E.Code,
                           E.Message);
    }
    // Retryable mid-stream errors force a reconnect on the next send.
    dropConnection();
    return;
  }
  default:
    return; // Welcome/ResumeOk replays and anything unexpected.
  }
}

void WireClient::drainAcks() {
  if (Fd < 0)
    return;
  char Buf[4096];
  for (;;) {
    pollfd P{Fd, POLLIN, 0};
    const int PR = ::poll(&P, 1, 0);
    if (PR <= 0 || !(P.revents & (POLLIN | POLLHUP | POLLERR)))
      break;
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0) {
      dropConnection();
      return;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Dec.append(Buf, static_cast<size_t>(N));
  }
  WireFrameView F;
  while (Fd >= 0 && Dec.next(F) == 1)
    handleServerFrame(F);
}

Status WireClient::connectResumable(const std::string &SocketPath, int RetryMs,
                                    WireRetryPolicy P) {
  Path = SocketPath;
  Policy = P;
  Jitter.reseed(Policy.JitterSeed);
  Resumable = true;
  return handshakeFresh(RetryMs);
}

/// Establishes a brand-new resumable session (first connect, or a full
/// restart when the outage predates the Welcome).
Status WireClient::handshakeFresh(int RetryMs) {
  Status Last;
  uint32_t Hint = 0;
  for (int Attempt = 0; Attempt < Policy.MaxAttempts; ++Attempt) {
    if (Attempt != 0) {
      backoff(Attempt, Hint);
      Hint = 0;
    }
    if (Fd < 0) {
      Status CS = connectUnix(Path, RetryMs);
      if (!CS.ok()) {
        Last = CS;
        continue;
      }
      Dec = FrameDecoder();
    }
    Status S = rawSend(wireHelloFrame(WireHelloResumable).data(),
                       wireHelloFrame(WireHelloResumable).size());
    if (!S.ok()) {
      Last = S;
      continue;
    }
    WireFrame T;
    std::string Pl;
    S = readFrame(T, Pl, 5000);
    if (!S.ok()) {
      dropConnection();
      Last = S;
      continue;
    }
    if (T == WireFrame::Welcome) {
      if (Pl.size() != 16)
        return Status(StatusCode::ValidationError, "bad welcome payload");
      SessId = wireGetU64(Pl.data());
      Token = wireGetU64(Pl.data() + 8);
      AckedSeq = 0;
      return Status::success();
    }
    if (T == WireFrame::WireError) {
      WireErrorInfo E;
      wireParseError(Pl, E);
      dropConnection();
      if (E.Retryable) {
        Hint = E.RetryAfterMs;
        Last = Status(StatusCode::InvalidState, E.Message);
        continue;
      }
      ServerError = Status(E.Code == StatusCode::Ok ? StatusCode::InvalidState
                                                    : E.Code,
                           E.Message);
      return ServerError;
    }
    dropConnection();
    Last = Status(StatusCode::ValidationError,
                  std::string("expected welcome, got ") + wireFrameName(T));
  }
  return Last.ok() ? Status(StatusCode::IoError,
                            "resumable handshake attempts exhausted")
                   : Last;
}

Status WireClient::reconnectAndResume() {
  if (!Resumable)
    return Status(StatusCode::IoError, "connection lost (not resumable)");
  if (!ServerError.ok())
    return ServerError;
  if (Token == 0) {
    // The outage predates the Welcome (or the server disabled resume):
    // start a fresh session and replay the whole logged stream into it.
    Status S = handshakeFresh(0);
    if (!S.ok())
      return S;
    ++Reconnects;
    return retransmit();
  }
  Status Last;
  uint32_t Hint = 0;
  for (int Attempt = 0; Attempt < Policy.MaxAttempts; ++Attempt) {
    if (Attempt != 0) {
      backoff(Attempt, Hint);
      Hint = 0;
    }
    Status CS = connectUnix(Path, 0);
    if (!CS.ok()) {
      Last = CS;
      continue;
    }
    Dec = FrameDecoder();
    std::string HS = wireHelloFrame(WireHelloAttach);
    HS += wireResumeFrame(Token, NextSeq);
    Status S = rawSend(HS.data(), HS.size());
    if (!S.ok()) {
      Last = S;
      continue;
    }
    WireFrame T;
    std::string Pl;
    S = readFrame(T, Pl, 5000);
    if (!S.ok()) {
      dropConnection();
      Last = S;
      continue;
    }
    if (T == WireFrame::ResumeOk) {
      if (Pl.size() != 16)
        return Status(StatusCode::ValidationError, "bad resume-ok payload");
      SessId = wireGetU64(Pl.data());
      const uint64_t Applied = wireGetU64(Pl.data() + 8);
      if (Applied > AckedSeq)
        AckedSeq = Applied;
      trimSpill();
      ++Reconnects;
      if (FinishSent && AckedSeq >= NextSeq) {
        // Everything already applied server-side; the Report (live
        // finalize or finished-session replay) follows on this
        // connection — nothing to retransmit.
        return Status::success();
      }
      return retransmit();
    }
    if (T == WireFrame::WireError) {
      WireErrorInfo E;
      wireParseError(Pl, E);
      dropConnection();
      if (E.Retryable) {
        Hint = E.RetryAfterMs;
        Last = Status(StatusCode::InvalidState, E.Message);
        continue;
      }
      ServerError = Status(E.Code == StatusCode::Ok ? StatusCode::InvalidState
                                                    : E.Code,
                           E.Message);
      return ServerError;
    }
    dropConnection();
    Last = Status(StatusCode::ValidationError,
                  std::string("expected resume-ok, got ") + wireFrameName(T));
  }
  return Last.ok() ? Status(StatusCode::IoError,
                            "resume attempts exhausted")
                   : Last;
}

/// Replays declares, every unacked spill frame, and Finish (if already
/// sent) after a (re)attach. An injected kill mid-replay recurses into
/// reconnectAndResume — bounded by the fault plan's kill budget.
Status WireClient::retransmit() {
  if (!DeclareLog.empty()) {
    Status S = rawSend(DeclareLog.data(), DeclareLog.size());
    if (!S.ok())
      return reconnectAndResume();
  }
  for (const auto &E : Spill) {
    if (E.first + eventsInFrame(E.second) <= AckedSeq)
      continue;
    Status S = rawSend(E.second.data(), E.second.size());
    if (!S.ok())
      return reconnectAndResume();
  }
  if (FinishSent) {
    const std::string FF = finishFrame();
    Status S = rawSend(FF.data(), FF.size());
    if (!S.ok())
      return reconnectAndResume();
  }
  return Status::success();
}

Status WireClient::sendFrameReliable(const std::string &Frame, bool IsEvents,
                                     uint64_t StartSeq, uint64_t Count) {
  for (;;) {
    if (!ServerError.ok())
      return ServerError;
    if (Fd < 0) {
      Status RS = reconnectAndResume();
      if (!RS.ok())
        return RS;
    }
    drainAcks();
    if (!ServerError.ok())
      return ServerError;
    if (IsEvents && StartSeq + Count <= AckedSeq)
      return Status::success(); // Applied before the last outage.
    if (Fd < 0)
      continue; // drainAcks saw a hangup; resume first.
    Status S = rawSend(Frame.data(), Frame.size());
    if (S.ok())
      return Status::success();
    // Connection died mid-frame (injected or real): resume and retry.
  }
}

Status WireClient::sendDeclares(const Trace &T) {
  if (!Resumable)
    return Status(StatusCode::InvalidState,
                  "sendDeclares requires connectResumable");
  const std::string Frames = encodeDeclareFrames(T);
  DeclareLog += Frames;
  if (Frames.empty())
    return Status::success();
  return sendFrameReliable(Frames, /*IsEvents=*/false, 0, 0);
}

Status WireClient::sendEvents(const Trace &T, uint64_t BatchEvents) {
  if (!Resumable)
    return Status(StatusCode::InvalidState,
                  "sendEvents requires connectResumable");
  for (std::string &Frame : encodeEventFrames(T, BatchEvents, NextSeq)) {
    const uint64_t Start = NextSeq;
    const uint64_t Count = eventsInFrame(Frame);
    NextSeq += Count;
    if (Token != 0 || SessId == 0) {
      SpillBytes += Frame.size();
      if (SpillBytes > Policy.SpillMaxBytes)
        return Status(StatusCode::InvalidState,
                      "resume spill buffer overflow (" +
                          std::to_string(SpillBytes) + " bytes unacked)");
      Spill.emplace_back(Start, Frame);
    }
    Status S = sendFrameReliable(Frame, /*IsEvents=*/true, Start, Count);
    if (!S.ok())
      return S;
  }
  return Status::success();
}

Status WireClient::sendFinishReliable() {
  if (!Resumable)
    return Status(StatusCode::InvalidState,
                  "sendFinishReliable requires connectResumable");
  FinishSent = true;
  return sendFrameReliable(finishFrame(), /*IsEvents=*/false, 0, 0);
}

Status WireClient::awaitReport(std::string &Payload, int TimeoutMs) {
  const auto Start = std::chrono::steady_clock::now();
  for (;;) {
    if (HasStashedReport) {
      Payload = StashedReport;
      HasStashedReport = false;
      return Status::success();
    }
    if (!ServerError.ok())
      return ServerError;
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= TimeoutMs)
      return Status(StatusCode::IoError, "timed out waiting for the report");
    if (Fd < 0) {
      Status RS = reconnectAndResume();
      if (!RS.ok())
        return RS;
      continue;
    }
    WireFrame T;
    std::string Pl;
    Status S = readFrame(T, Pl, 1000);
    if (!S.ok()) {
      if (S.Code == StatusCode::IoError) {
        dropConnection(); // Reconnect (or time out) on the next lap.
        continue;
      }
      return S;
    }
    switch (T) {
    case WireFrame::Report:
      Payload = std::move(Pl);
      return Status::success();
    case WireFrame::Ack:
      if (Pl.size() == 8 && wireGetU64(Pl.data()) > AckedSeq) {
        AckedSeq = wireGetU64(Pl.data());
        trimSpill();
      }
      continue;
    case WireFrame::Welcome:
    case WireFrame::ResumeOk:
      continue;
    case WireFrame::WireError: {
      WireErrorInfo E;
      wireParseError(Pl, E);
      if (E.Retryable) {
        dropConnection();
        backoff(1, E.RetryAfterMs);
        continue;
      }
      ServerError = Status(E.Code == StatusCode::Ok ? StatusCode::InvalidState
                                                    : E.Code,
                           E.Message);
      return ServerError;
    }
    default:
      continue;
    }
  }
}

Status WireClient::readFrame(WireFrame &Type, std::string &Payload,
                             int TimeoutMs) {
  if (Fd < 0)
    return Status(StatusCode::InvalidState, "client is not connected");
  const auto Start = std::chrono::steady_clock::now();
  char Buf[4096];
  for (;;) {
    WireFrameView F;
    const int R = Dec.next(F);
    if (R == 1) {
      Type = F.Type;
      Payload.assign(F.Payload.data(), F.Payload.size());
      return Status::success();
    }
    if (R == -1)
      return Status(StatusCode::ValidationError, Dec.error());
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= TimeoutMs)
      return Status(StatusCode::IoError, "timed out waiting for a frame");
    pollfd P{Fd, POLLIN, 0};
    const int PR = ::poll(&P, 1, 100);
    if (PR <= 0)
      continue;
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return Status(StatusCode::IoError, "peer closed before a full frame");
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return Status(StatusCode::IoError,
                    std::string("recv: ") + std::strerror(errno));
    }
    Dec.append(Buf, static_cast<size_t>(N));
  }
}

} // namespace rapid
