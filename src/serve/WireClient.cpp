//===- serve/WireClient.cpp - Blocking wire-protocol client -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/WireClient.h"

#include "trace/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rapid {

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void WireClient::shutdownSend() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

Status WireClient::connectUnix(const std::string &Path, int RetryMs) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status(StatusCode::InvalidConfig,
                  "socket path too long: '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const auto Start = std::chrono::steady_clock::now();
  for (;;) {
    const int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (S < 0)
      return Status(StatusCode::IoError,
                    std::string("socket: ") + std::strerror(errno));
    if (::connect(S, reinterpret_cast<const sockaddr *>(&Addr),
                  sizeof(Addr)) == 0) {
      Fd = S;
      return Status::success();
    }
    const int E = errno;
    ::close(S);
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= RetryMs)
      return Status(StatusCode::IoError, "connecting to '" + Path +
                                             "': " + std::strerror(E));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status WireClient::sendBytes(const std::string &Bytes) {
  if (Fd < 0)
    return Status(StatusCode::InvalidState, "client is not connected");
  const char *Data = Bytes.data();
  size_t N = Bytes.size();
  while (N != 0) {
    const ssize_t W = ::send(Fd, Data, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return Status(StatusCode::IoError,
                    std::string("send: ") + std::strerror(errno));
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return Status::success();
}

Status WireClient::sendHello() { return sendBytes(wireHelloFrame()); }

Status WireClient::sendTrace(const Trace &T, uint64_t BatchEvents) {
  return sendBytes(encodeTraceFrames(T, BatchEvents));
}

Status WireClient::sendFinish() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::Finish, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendPartialQuery() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::PartialQuery, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendPartialQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::PartialQuery, P);
  return sendBytes(Out);
}

Status WireClient::sendTimelineQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::TimelineQuery, P);
  return sendBytes(Out);
}

Status WireClient::sendListSessions() {
  std::string Out;
  wireAppendFrame(Out, WireFrame::ListSessions, std::string_view());
  return sendBytes(Out);
}

Status WireClient::sendFinalQuery(uint64_t SessionId) {
  std::string Out, P;
  wirePutU64(P, SessionId);
  wireAppendFrame(Out, WireFrame::FinalQuery, P);
  return sendBytes(Out);
}

Status WireClient::readFrame(WireFrame &Type, std::string &Payload,
                             int TimeoutMs) {
  if (Fd < 0)
    return Status(StatusCode::InvalidState, "client is not connected");
  const auto Start = std::chrono::steady_clock::now();
  char Buf[4096];
  for (;;) {
    WireFrameView F;
    const int R = Dec.next(F);
    if (R == 1) {
      Type = F.Type;
      Payload.assign(F.Payload.data(), F.Payload.size());
      return Status::success();
    }
    if (R == -1)
      return Status(StatusCode::ValidationError, Dec.error());
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= TimeoutMs)
      return Status(StatusCode::IoError, "timed out waiting for a frame");
    pollfd P{Fd, POLLIN, 0};
    const int PR = ::poll(&P, 1, 100);
    if (PR <= 0)
      continue;
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return Status(StatusCode::IoError, "peer closed before a full frame");
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return Status(StatusCode::IoError,
                    std::string("recv: ") + std::strerror(errno));
    }
    Dec.append(Buf, static_cast<size_t>(N));
  }
}

} // namespace rapid
