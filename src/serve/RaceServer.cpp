//===- serve/RaceServer.cpp - Multi-session race-analysis server --------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/RaceServer.h"

#include "api/AnalysisSession.h"
#include "io/FeedSource.h"
#include "io/WireFormat.h"
#include "serve/ReportCanon.h"
#include "serve/WireIngestor.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace rapid {

namespace {

void setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Blocking-ish sendAll over a (possibly non-blocking) socket: polls for
/// writability with a hard deadline so a reply to a client that never
/// reads cannot wedge a pool worker forever. Returns false on error or
/// timeout.
bool sendAll(int Fd, const char *Data, size_t N, int DeadlineMs = 5000) {
  const auto Start = std::chrono::steady_clock::now();
  while (N != 0) {
    const ssize_t W = ::send(Fd, Data, N, MSG_NOSIGNAL);
    if (W > 0) {
      Data += W;
      N -= static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return false;
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= DeadlineMs)
      return false;
    pollfd P{Fd, POLLOUT, 0};
    ::poll(&P, 1, 50);
  }
  return true;
}

std::string reportFramePayload(uint8_t Partial, uint64_t Id,
                               const std::string &Canon) {
  std::string P;
  P.push_back(static_cast<char>(Partial));
  wirePutU64(P, Id);
  P += Canon;
  return P;
}

void stageError(std::string &Out, const Status &S) {
  std::string P;
  P.push_back(static_cast<char>(S.Code));
  P += S.Message;
  wireAppendFrame(Out, WireFrame::WireError, P);
}

} // namespace

struct RaceServer::Impl {
  explicit Impl(RaceServerConfig C)
      : Cfg(std::move(C)), Reg(Cfg.Metrics), Scope(&Reg, "serve."),
        Pool(Cfg.IngestThreads) {
    Accepted = Scope.counter("accepted");
    FinishedC = Scope.counter("finished");
    EvictedC = Scope.counter("evicted");
    ParksC = Scope.counter("parks");
    FramesC = Scope.counter("frames");
    EventsC = Scope.counter("events");
    Active = Scope.gauge("active");
    ActivePeak = Scope.highWater("active_peak");
    Pool.attachTelemetry(Scope.nest("pool."), nullptr);
  }

  struct Conn {
    uint64_t Id = 0;
    int Fd = -1; ///< Write side; the read side lives in Src.
    std::unique_ptr<FeedSource> Src;
    std::unique_ptr<AnalysisSession> S;
    std::unique_ptr<WireIngestor> Ing;

    /// Held while this connection's task touches the session (feeds,
    /// finish, report rendering). Cross-session queries try-lock it.
    std::mutex ProduceM;
    std::string Out;        ///< Staged replies (under ProduceM).
    bool ErrorSent = false; ///< One loud error per stream (under ProduceM).
    bool BudgetHit = false; ///< MaxSessionEvents tripped (under ProduceM).

    // Guarded by Impl::M:
    enum class St { Streaming, Parked, Finalizing, Done };
    St State = St::Streaming;
    bool TaskInFlight = false;
    bool PeerClosed = false;
    std::string Pending; ///< Bytes read but not yet handed to a task.
    uint64_t EventsFed = 0;
    uint64_t Parks = 0;

    // Per-session serve-side observability (serve.session.<id>.*).
    Gauge LagGauge;
    Counter ParkCtr;
  };

  RaceServerConfig Cfg;
  MetricsRegistry Reg;
  MetricsScope Scope;
  ThreadPool Pool;

  Counter Accepted, FinishedC, EvictedC, ParksC, FramesC, EventsC;
  Gauge Active;
  HighWater ActivePeak;

  mutable std::mutex M;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> Conns;
  std::vector<SessionSummary> Finished;
  uint64_t NextId = 1;

  std::thread Io;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  int ListenFd = -1;
  int WakeR = -1, WakeW = -1;

  // ---- Lifecycle ------------------------------------------------------------

  Status start() {
    Status CS = Cfg.Session.validate();
    if (!CS.ok())
      return CS;
    if (Cfg.SocketPath.empty())
      return Status(StatusCode::InvalidConfig,
                    "RaceServerConfig::SocketPath is required");
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Cfg.SocketPath.size() >= sizeof(Addr.sun_path))
      return Status(StatusCode::InvalidConfig,
                    "socket path too long: '" + Cfg.SocketPath + "'");
    std::memcpy(Addr.sun_path, Cfg.SocketPath.c_str(),
                Cfg.SocketPath.size() + 1);
    ::unlink(Cfg.SocketPath.c_str());
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Status(StatusCode::IoError,
                    std::string("socket: ") + std::strerror(errno));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        ::listen(ListenFd, 64) != 0) {
      Status S(StatusCode::IoError, "binding '" + Cfg.SocketPath +
                                        "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return S;
    }
    setNonBlocking(ListenFd);
    int Pipe[2];
    if (::pipe(Pipe) != 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return Status(StatusCode::IoError,
                    std::string("pipe: ") + std::strerror(errno));
    }
    WakeR = Pipe[0];
    WakeW = Pipe[1];
    setNonBlocking(WakeR);
    setNonBlocking(WakeW);
    Started = true;
    Io = std::thread([this] { ioLoop(); });
    return Status::success();
  }

  void stop() {
    if (!Started)
      return;
    Stopping.store(true, std::memory_order_seq_cst);
    wake();
    Io.join();
    // In-flight tasks may still be feeding; let them drain, then evict
    // whatever is left (server-side shutdown counts as eviction).
    Pool.wait();
    std::vector<std::shared_ptr<Conn>> Left;
    {
      std::lock_guard<std::mutex> G(M);
      for (auto &KV : Conns)
        Left.push_back(KV.second);
    }
    for (const std::shared_ptr<Conn> &C : Left) {
      std::lock_guard<std::mutex> PL(C->ProduceM);
      std::string Bytes;
      {
        std::lock_guard<std::mutex> G(M);
        Bytes.swap(C->Pending);
      }
      if (!Bytes.empty())
        C->Ing->ingest(Bytes.data(), Bytes.size());
      finalizeLocked(*C, /*Clean=*/false);
    }
    ::close(ListenFd);
    ::close(WakeR);
    ::close(WakeW);
    ListenFd = WakeR = WakeW = -1;
    ::unlink(Cfg.SocketPath.c_str());
    Started = false;
  }

  void wake() {
    if (WakeW >= 0) {
      const char B = 0;
      ssize_t Ignored = ::write(WakeW, &B, 1);
      (void)Ignored;
    }
  }

  // ---- IO thread ------------------------------------------------------------

  void ioLoop() {
    std::vector<pollfd> Fds;
    std::vector<std::shared_ptr<Conn>> Polled;
    std::vector<char> Buf(Cfg.ReadChunkBytes ? Cfg.ReadChunkBytes : 4096);
    while (!Stopping.load(std::memory_order_relaxed)) {
      Fds.clear();
      Polled.clear();
      Fds.push_back({WakeR, POLLIN, 0});
      Fds.push_back({ListenFd, POLLIN, 0});
      {
        std::lock_guard<std::mutex> G(M);
        for (auto &KV : Conns) {
          Conn &C = *KV.second;
          if (C.State == Conn::St::Streaming && !C.TaskInFlight &&
              !C.PeerClosed) {
            Fds.push_back({C.Src->pollFd(), POLLIN, 0});
            Polled.push_back(KV.second);
          }
        }
      }
      ::poll(Fds.data(), Fds.size(), Cfg.PollTimeoutMs);
      if (Fds[0].revents & POLLIN) {
        char Drain[64];
        while (::read(WakeR, Drain, sizeof(Drain)) > 0)
          ;
      }
      if (Fds[1].revents & POLLIN)
        acceptAll();
      for (size_t I = 0; I != Polled.size(); ++I)
        if (Fds[I + 2].revents & (POLLIN | POLLHUP | POLLERR))
          readConn(Polled[I], Buf);
      recheckParked();
    }
  }

  void acceptAll() {
    for (;;) {
      const int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        return;
      setNonBlocking(Fd);
      auto C = std::make_shared<Conn>();
      C->Fd = Fd;
      C->S = std::make_unique<AnalysisSession>(Cfg.Session);
      if (!C->S->status().ok()) {
        std::string Out;
        stageError(Out, C->S->status());
        sendAll(Fd, Out.data(), Out.size(), 1000);
        ::close(Fd);
        continue;
      }
      Impl *Self = this;
      Conn *Raw = C.get();
      C->Ing = std::make_unique<WireIngestor>(
          *C->S, [Self, Raw](const WireFrameView &F) {
            Self->control(*Raw, F);
          });
      {
        std::lock_guard<std::mutex> G(M);
        C->Id = NextId++;
        C->Src = makeFdFeedSource(Fd, "unix:client#" + std::to_string(C->Id));
        C->LagGauge = Scope.nest("session." + std::to_string(C->Id) + ".")
                          .gauge("lag_events");
        C->ParkCtr = Scope.nest("session." + std::to_string(C->Id) + ".")
                         .counter("parks");
        Conns.emplace(C->Id, C);
        Accepted.add();
        Active.add();
        ActivePeak.observe(Conns.size());
      }
    }
  }

  void readConn(const std::shared_ptr<Conn> &C, std::vector<char> &Buf) {
    const long N = C->Src->read(Buf.data(), Buf.size());
    if (N == FeedSource::WouldBlock)
      return;
    std::lock_guard<std::mutex> G(M);
    if (N > 0)
      C->Pending.append(Buf.data(), static_cast<size_t>(N));
    else
      C->PeerClosed = true;
    scheduleLocked(C);
  }

  /// M held. At most one task per connection keeps the session
  /// single-producer; the pool's queue ordering gives consecutive tasks
  /// the happens-before edge.
  void scheduleLocked(const std::shared_ptr<Conn> &C) {
    if (C->TaskInFlight || C->State == Conn::St::Done ||
        C->State == Conn::St::Finalizing)
      return;
    C->TaskInFlight = true;
    Pool.submit([this, C] { process(C); });
  }

  uint64_t sessionLag(Conn &C) {
    const AnalysisSession::Progress P = C.S->progress();
    return P.Published - P.MinLaneConsumed;
  }

  void process(const std::shared_ptr<Conn> &C) {
    std::lock_guard<std::mutex> PL(C->ProduceM);
    bool Closed;
    {
      std::string Bytes;
      {
        std::lock_guard<std::mutex> G(M);
        Bytes.swap(C->Pending);
        Closed = C->PeerClosed;
      }
      if (!Bytes.empty()) {
        const uint64_t Before = C->Ing->eventsApplied();
        const uint64_t FramesBefore = C->Ing->framesApplied();
        C->Ing->ingest(Bytes.data(), Bytes.size());
        EventsC.add(C->Ing->eventsApplied() - Before);
        FramesC.add(C->Ing->framesApplied() - FramesBefore);
      }
    }
    if (Closed)
      C->Ing->eof();
    if (Cfg.Budgets.MaxSessionEvents != 0 && !C->BudgetHit &&
        C->Ing->eventsApplied() >= Cfg.Budgets.MaxSessionEvents) {
      C->BudgetHit = true;
      stageError(C->Out,
                 Status(StatusCode::InvalidState,
                        "session event budget (" +
                            std::to_string(Cfg.Budgets.MaxSessionEvents) +
                            ") exhausted"));
    }
    const Status &St = C->Ing->status();
    if (!St.ok() && !C->ErrorSent) {
      C->ErrorSent = true;
      stageError(C->Out, St);
    }
    flushOut(*C);
    const bool Final =
        !St.ok() || C->Ing->sawFinish() || Closed || C->BudgetHit;
    if (Final) {
      {
        std::lock_guard<std::mutex> G(M);
        C->State = Conn::St::Finalizing;
        C->EventsFed = C->Ing->eventsApplied();
      }
      finalizeLocked(*C, /*Clean=*/C->Ing->sawFinish() && St.ok() &&
                             !C->BudgetHit);
      wake();
      return;
    }
    const uint64_t Lag = sessionLag(*C);
    C->LagGauge.set(Lag);
    {
      std::lock_guard<std::mutex> G(M);
      C->EventsFed = C->Ing->eventsApplied();
      if (Cfg.Budgets.MaxLagEvents != 0 && Lag > Cfg.Budgets.MaxLagEvents) {
        if (C->State != Conn::St::Parked) {
          C->State = Conn::St::Parked;
          ++C->Parks;
          ParksC.add();
          C->ParkCtr.add();
        }
      } else {
        C->State = Conn::St::Streaming;
      }
      C->TaskInFlight = false;
    }
    wake();
  }

  /// IO thread, every tick: resume parked connections whose consumers
  /// caught up to half the budget (hysteresis, so one borderline batch
  /// does not flap park/resume).
  void recheckParked() {
    std::vector<std::shared_ptr<Conn>> Parked;
    {
      std::lock_guard<std::mutex> G(M);
      for (auto &KV : Conns)
        if (KV.second->State == Conn::St::Parked && !KV.second->TaskInFlight)
          Parked.push_back(KV.second);
    }
    for (const std::shared_ptr<Conn> &C : Parked) {
      const uint64_t Lag = sessionLag(*C);
      C->LagGauge.set(Lag);
      if (Lag <= Cfg.Budgets.MaxLagEvents / 2) {
        std::lock_guard<std::mutex> G(M);
        if (C->State == Conn::St::Parked)
          C->State = Conn::St::Streaming;
      }
    }
  }

  /// C.ProduceM held. Finishes the session, retains the summary, closes.
  void finalizeLocked(Conn &C, bool Clean) {
    AnalysisResult R = C.S->finish();
    SessionSummary Sum;
    Sum.Id = C.Id;
    Sum.Events = R.EventsIngested;
    Sum.CleanFinish = Clean;
    Sum.Outcome = !C.Ing->status().ok() ? C.Ing->status() : R.firstError();
    if (C.BudgetHit && Sum.Outcome.ok())
      Sum.Outcome = Status(StatusCode::InvalidState, "event budget exhausted");
    Sum.Canon = canonicalReport(R, C.S->trace());
    if (!C.PeerClosed) {
      if (Sum.Canon.size() + 16 <= WireMaxPayload)
        wireAppendFrame(C.Out, WireFrame::Report,
                        reportFramePayload(0, C.Id, Sum.Canon));
      else
        stageError(C.Out, Status(StatusCode::AnalysisError,
                                 "final report exceeds the frame cap"));
      flushOut(C);
    }
    ::shutdown(C.Fd, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> G(M);
      Sum.Parks = C.Parks;
      C.EventsFed = C.Ing->eventsApplied();
      Finished.push_back(std::move(Sum));
      C.State = Conn::St::Done;
      C.TaskInFlight = false;
      Conns.erase(C.Id);
      Active.sub();
      if (Clean)
        FinishedC.add();
      else
        EvictedC.add();
    }
  }

  /// C.ProduceM held.
  void flushOut(Conn &C) {
    if (C.Out.empty())
      return;
    if (!sendAll(C.Fd, C.Out.data(), C.Out.size())) {
      std::lock_guard<std::mutex> G(M);
      C.PeerClosed = true;
    }
    C.Out.clear();
  }

  // ---- Control plane --------------------------------------------------------

  /// Runs inside C's task (C.ProduceM held) when the ingestor hands us a
  /// query frame. Replies are staged into C.Out.
  void control(Conn &C, const WireFrameView &F) {
    switch (F.Type) {
    case WireFrame::PartialQuery:
    case WireFrame::TimelineQuery: {
      uint64_t Target = C.Id;
      if (!F.Payload.empty()) {
        if (F.Payload.size() != 8) {
          stageError(C.Out, Status(StatusCode::ValidationError,
                                   "query payload must be empty or a u64"));
          return;
        }
        Target = wireGetU64(F.Payload.data());
      }
      if (Target == C.Id) {
        stageQueryReply(C, C, F.Type);
        return;
      }
      std::shared_ptr<Conn> T;
      {
        std::lock_guard<std::mutex> G(M);
        auto It = Conns.find(Target);
        if (It != Conns.end())
          T = It->second;
      }
      if (!T) {
        stageError(C.Out,
                   Status(StatusCode::InvalidState,
                          "session " + std::to_string(Target) +
                              " is not live (try final-query if finished)"));
        return;
      }
      // Try-lock with a bounded retry: the target's producer may be mid-
      // batch. "busy" beats a cross-session lock cycle.
      for (int Attempt = 0; Attempt != 200; ++Attempt) {
        if (T->ProduceM.try_lock()) {
          std::lock_guard<std::mutex> TL(T->ProduceM, std::adopt_lock);
          stageQueryReply(C, *T, F.Type);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      stageError(C.Out, Status(StatusCode::InvalidState,
                               "session " + std::to_string(Target) +
                                   " is busy; retry"));
      return;
    }
    case WireFrame::ListSessions: {
      std::string Roster;
      {
        std::lock_guard<std::mutex> G(M);
        Roster += "sessions active " + std::to_string(Conns.size()) +
                  " finished " + std::to_string(Finished.size()) + "\n";
        for (auto &KV : Conns) {
          const Conn &L = *KV.second;
          const char *State = L.State == Conn::St::Parked ? "parked"
                              : L.State == Conn::St::Finalizing
                                  ? "finalizing"
                                  : "streaming";
          Roster += "session " + std::to_string(L.Id) + " state " + State +
                    " events " + std::to_string(L.EventsFed) + " parks " +
                    std::to_string(L.Parks) + "\n";
        }
        for (const SessionSummary &Sum : Finished)
          Roster += "finished " + std::to_string(Sum.Id) + " events " +
                    std::to_string(Sum.Events) + " parks " +
                    std::to_string(Sum.Parks) + " clean " +
                    (Sum.CleanFinish ? "1" : "0") + " status " +
                    Sum.Outcome.str() + "\n";
      }
      wireAppendFrame(C.Out, WireFrame::SessionList, Roster);
      return;
    }
    case WireFrame::FinalQuery: {
      if (F.Payload.size() != 8) {
        stageError(C.Out, Status(StatusCode::ValidationError,
                                 "final-query payload must be a u64"));
        return;
      }
      const uint64_t Target = wireGetU64(F.Payload.data());
      std::string Canon;
      bool Found = false;
      {
        std::lock_guard<std::mutex> G(M);
        for (const SessionSummary &Sum : Finished)
          if (Sum.Id == Target) {
            Canon = Sum.Canon;
            Found = true;
            break;
          }
      }
      if (!Found) {
        stageError(C.Out, Status(StatusCode::InvalidState,
                                 "session " + std::to_string(Target) +
                                     " has no retained final report"));
        return;
      }
      wireAppendFrame(C.Out, WireFrame::Report,
                      reportFramePayload(0, Target, Canon));
      return;
    }
    default:
      stageError(C.Out, Status(StatusCode::ValidationError,
                               std::string("unexpected control frame ") +
                                   wireFrameName(F.Type)));
      return;
    }
  }

  /// Stages a partial-report or timeline reply about \p T into \p C.Out.
  /// Caller holds T.ProduceM (and C.ProduceM; they may be the same conn).
  void stageQueryReply(Conn &C, Conn &T, WireFrame Kind) {
    if (Kind == WireFrame::PartialQuery) {
      AnalysisResult PR = T.S->partialResult();
      const std::string Canon = canonicalReport(PR, T.S->trace());
      if (Canon.size() + 16 > WireMaxPayload) {
        stageError(C.Out, Status(StatusCode::AnalysisError,
                                 "partial report exceeds the frame cap"));
        return;
      }
      wireAppendFrame(C.Out, WireFrame::Report,
                      reportFramePayload(1, T.Id, Canon));
      return;
    }
    const std::string Json = T.S->exportTimeline();
    if (Json.size() > WireMaxPayload) {
      stageError(C.Out, Status(StatusCode::AnalysisError,
                               "timeline exceeds the frame cap"));
      return;
    }
    wireAppendFrame(C.Out, WireFrame::Timeline, Json);
  }
};

RaceServer::RaceServer(RaceServerConfig Config)
    : I(std::make_unique<Impl>(std::move(Config))) {}

RaceServer::~RaceServer() { I->stop(); }

Status RaceServer::start() { return I->start(); }

void RaceServer::stop() { I->stop(); }

const std::string &RaceServer::socketPath() const { return I->Cfg.SocketPath; }

std::vector<SessionSummary> RaceServer::finishedSessions() const {
  std::lock_guard<std::mutex> G(I->M);
  return I->Finished;
}

uint64_t RaceServer::activeSessions() const {
  std::lock_guard<std::mutex> G(I->M);
  return I->Conns.size();
}

std::vector<MetricSample> RaceServer::metrics() const {
  return I->Reg.snapshotPrefix("serve.");
}

} // namespace rapid
