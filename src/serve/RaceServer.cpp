//===- serve/RaceServer.cpp - Multi-session race-analysis server --------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/RaceServer.h"

#include "api/AnalysisSession.h"
#include "io/FeedSource.h"
#include "io/WireFormat.h"
#include "serve/ReportCanon.h"
#include "serve/WireIngestor.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"
#include "support/TimerWheel.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace rapid {

namespace {

void setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Blocking-ish sendAll over a (possibly non-blocking) socket: polls for
/// writability with a hard deadline so a reply to a client that never
/// reads cannot wedge a pool worker forever. Returns false on error or
/// timeout.
bool sendAll(int Fd, const char *Data, size_t N, int DeadlineMs = 5000) {
  const auto Start = std::chrono::steady_clock::now();
  while (N != 0) {
    const ssize_t W = ::send(Fd, Data, N, MSG_NOSIGNAL);
    if (W > 0) {
      Data += W;
      N -= static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return false;
    const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
    if (Elapsed >= DeadlineMs)
      return false;
    pollfd P{Fd, POLLOUT, 0};
    ::poll(&P, 1, 50);
  }
  return true;
}

std::string reportFramePayload(uint8_t Partial, uint64_t Id,
                               const std::string &Canon) {
  std::string P;
  P.push_back(static_cast<char>(Partial));
  wirePutU64(P, Id);
  P += Canon;
  return P;
}

void stageError(std::string &Out, const Status &S,
                WireErrorCode W = WireErrorCode::Unspecified,
                uint32_t RetryAfterMs = 0) {
  WireErrorInfo E;
  E.Code = S.Code;
  E.Wire = W;
  E.Retryable = wireErrorRetryable(W);
  E.RetryAfterMs = RetryAfterMs;
  E.Message = S.Message;
  wireAppendFrame(Out, WireFrame::WireError, wireErrorPayload(E));
}

/// The machine-readable code a sticky ingest status maps to.
WireErrorCode wireCodeFor(const Status &S) {
  switch (S.Code) {
  case StatusCode::ValidationError:
    return WireErrorCode::Malformed;
  case StatusCode::InvalidState:
    return WireErrorCode::InvalidRequest;
  default:
    return WireErrorCode::Unspecified;
  }
}

bool isControlFrame(WireFrame T) {
  return T == WireFrame::PartialQuery || T == WireFrame::TimelineQuery ||
         T == WireFrame::ListSessions || T == WireFrame::FinalQuery;
}

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

struct RaceServer::Impl {
  explicit Impl(RaceServerConfig C)
      : Cfg(std::move(C)), Reg(Cfg.Metrics), Scope(&Reg, "serve."),
        Pool(Cfg.IngestThreads), TokenRng(nowMs() ^ 0x9e3779b97f4a7c15ull) {
    Accepted = Scope.counter("accepted");
    FinishedC = Scope.counter("finished");
    EvictedC = Scope.counter("evicted");
    ParksC = Scope.counter("parks");
    FramesC = Scope.counter("frames");
    EventsC = Scope.counter("events");
    ResumesC = Scope.counter("resumes");
    ShedC = Scope.counter("shed");
    DetachedC = Scope.counter("detached");
    GraceExpiredC = Scope.counter("grace_expired");
    IdleEvictedC = Scope.counter("idle_evicted");
    DupFramesC = Scope.counter("dup_frames");
    Active = Scope.gauge("active");
    ActivePeak = Scope.highWater("active_peak");
    Pool.attachTelemetry(Scope.nest("pool."), nullptr);
  }

  /// The persistent half: one analysis session, alive as long as the
  /// stream logically runs — across any number of connections when the
  /// client negotiated resumability.
  struct Sess {
    uint64_t Id = 0;
    uint64_t Token = 0; ///< Resume token; 0 = not resumable.
    std::unique_ptr<AnalysisSession> S;
    std::unique_ptr<WireIngestor> Ing;

    /// Held while a task (or finalize) touches the session. Cross-session
    /// queries try-lock it.
    std::mutex ProduceM;
    bool ErrorSent = false;  ///< One loud error per stream (under ProduceM).
    bool BudgetHit = false;  ///< MaxSessionEvents tripped (under ProduceM).
    uint64_t AckedSeq = 0;   ///< Last Ack staged (under ProduceM).

    // Guarded by Impl::M:
    uint64_t ConnId = 0;       ///< 0 = detached (grace window running).
    uint64_t DetachedAtMs = 0; ///< nowMs() of the detach, 0 if attached.
    uint64_t LastActivityMs = 0;
    bool Finalizing = false; ///< Claimed by exactly one finalize path.
    uint64_t EventsFed = 0;
    uint64_t Parks = 0;
    uint64_t Resumes = 0;

    // Per-session serve-side observability (serve.session.<id>.*).
    Gauge LagGauge;
    Counter ParkCtr;
  };

  /// The transient half: one accepted socket. Dies with the peer; its
  /// frame decoder dies with it, so torn bytes from a cut connection
  /// never poison the session's ingestor.
  struct Conn {
    uint64_t Id = 0;
    int Fd = -1; ///< Write side; the read side lives in Src.
    std::unique_ptr<FeedSource> Src;
    FrameDecoder Dec;      ///< Task-only.
    std::string Out;       ///< Staged replies (task-only / finalize).
    bool HelloSeen = false;
    bool CloseAfterFlush = false; ///< Shed / replayed: flush Out, close.

    // Guarded by Impl::M:
    std::shared_ptr<Sess> Ss; ///< Null until the handshake binds one.
    enum class St { Streaming, Parked, Finalizing, Done };
    St State = St::Streaming;
    bool TaskInFlight = false;
    bool PeerClosed = false;
    std::string Pending; ///< Bytes read but not yet handed to a task.
  };

  RaceServerConfig Cfg;
  MetricsRegistry Reg;
  MetricsScope Scope;
  ThreadPool Pool;
  Prng TokenRng;

  Counter Accepted, FinishedC, EvictedC, ParksC, FramesC, EventsC;
  Counter ResumesC, ShedC, DetachedC, GraceExpiredC, IdleEvictedC, DupFramesC;
  Gauge Active;
  HighWater ActivePeak;

  mutable std::mutex M;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> Conns;
  std::unordered_map<uint64_t, std::shared_ptr<Sess>> Sessions;
  std::unordered_map<uint64_t, uint64_t> TokenToSess;
  std::vector<SessionSummary> Finished;
  uint64_t NextConnId = 1;
  uint64_t NextSessId = 1;

  TimerWheel Wheel{50, 128}; ///< IO thread only.

  std::thread Io;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  int ListenFd = -1;
  int WakeR = -1, WakeW = -1;

  // ---- Lifecycle ------------------------------------------------------------

  Status start() {
    Status CS = Cfg.Session.validate();
    if (!CS.ok())
      return CS;
    if (Cfg.SocketPath.empty())
      return Status(StatusCode::InvalidConfig,
                    "RaceServerConfig::SocketPath is required");
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Cfg.SocketPath.size() >= sizeof(Addr.sun_path))
      return Status(StatusCode::InvalidConfig,
                    "socket path too long: '" + Cfg.SocketPath + "'");
    std::memcpy(Addr.sun_path, Cfg.SocketPath.c_str(),
                Cfg.SocketPath.size() + 1);
    ::unlink(Cfg.SocketPath.c_str());
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Status(StatusCode::IoError,
                    std::string("socket: ") + std::strerror(errno));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        ::listen(ListenFd, 64) != 0) {
      Status S(StatusCode::IoError, "binding '" + Cfg.SocketPath +
                                        "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return S;
    }
    setNonBlocking(ListenFd);
    int Pipe[2];
    if (::pipe(Pipe) != 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return Status(StatusCode::IoError,
                    std::string("pipe: ") + std::strerror(errno));
    }
    WakeR = Pipe[0];
    WakeW = Pipe[1];
    setNonBlocking(WakeR);
    setNonBlocking(WakeW);
    Started = true;
    Io = std::thread([this] { ioLoop(); });
    return Status::success();
  }

  /// Clean drain: stop accepting, join the IO thread, let in-flight tasks
  /// finish, apply every connection's buffered bytes, then finalize every
  /// live session (attached or parked in its grace window) and flush the
  /// final reports to peers that still listen.
  void stop() {
    if (!Started)
      return;
    Stopping.store(true, std::memory_order_seq_cst);
    wake();
    Io.join();
    Pool.wait();
    std::vector<std::shared_ptr<Conn>> ConnsLeft;
    std::vector<std::shared_ptr<Sess>> SessLeft;
    {
      std::lock_guard<std::mutex> G(M);
      for (auto &KV : Conns)
        ConnsLeft.push_back(KV.second);
      for (auto &KV : Sessions)
        SessLeft.push_back(KV.second);
    }
    for (const std::shared_ptr<Conn> &C : ConnsLeft) {
      std::shared_ptr<Sess> Ss;
      std::string Bytes;
      {
        std::lock_guard<std::mutex> G(M);
        Ss = C->Ss;
        Bytes.swap(C->Pending);
      }
      if (!Ss || Bytes.empty())
        continue;
      std::lock_guard<std::mutex> PL(Ss->ProduceM);
      C->Dec.append(Bytes.data(), Bytes.size());
      WireFrameView F;
      while (C->Dec.next(F) == 1) {
        if (isControlFrame(F.Type))
          continue; // No replies mid-drain.
        Ss->Ing->applyFrame(F);
        if (!Ss->Ing->status().ok())
          break;
      }
    }
    for (const std::shared_ptr<Sess> &S : SessLeft) {
      {
        std::lock_guard<std::mutex> G(M);
        if (S->Finalizing)
          continue;
        S->Finalizing = true;
      }
      std::shared_ptr<Conn> AC;
      {
        std::lock_guard<std::mutex> G(M);
        if (S->ConnId != 0) {
          auto It = Conns.find(S->ConnId);
          if (It != Conns.end())
            AC = It->second;
        }
      }
      std::lock_guard<std::mutex> PL(S->ProduceM);
      const bool Clean =
          S->Ing->sawFinish() && S->Ing->status().ok() && !S->BudgetHit;
      finalize(*S, AC.get(), Clean);
    }
    for (const std::shared_ptr<Conn> &C : ConnsLeft)
      ::shutdown(C->Fd, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> G(M);
      Conns.clear();
      Sessions.clear();
      TokenToSess.clear();
    }
    ::close(ListenFd);
    ::close(WakeR);
    ::close(WakeW);
    ListenFd = WakeR = WakeW = -1;
    ::unlink(Cfg.SocketPath.c_str());
    Started = false;
  }

  void wake() {
    if (WakeW >= 0) {
      const char B = 0;
      ssize_t Ignored = ::write(WakeW, &B, 1);
      (void)Ignored;
    }
  }

  // ---- IO thread ------------------------------------------------------------

  void ioLoop() {
    std::vector<pollfd> Fds;
    std::vector<std::shared_ptr<Conn>> Polled;
    std::vector<char> Buf(Cfg.ReadChunkBytes ? Cfg.ReadChunkBytes : 4096);
    uint64_t LastTickMs = nowMs();
    scheduleHousekeeping();
    while (!Stopping.load(std::memory_order_relaxed)) {
      Fds.clear();
      Polled.clear();
      Fds.push_back({WakeR, POLLIN, 0});
      Fds.push_back({ListenFd, POLLIN, 0});
      {
        std::lock_guard<std::mutex> G(M);
        for (auto &KV : Conns) {
          Conn &C = *KV.second;
          if (C.State == Conn::St::Streaming && !C.TaskInFlight &&
              !C.PeerClosed) {
            Fds.push_back({C.Src->pollFd(), POLLIN, 0});
            Polled.push_back(KV.second);
          }
        }
      }
      ::poll(Fds.data(), Fds.size(), Cfg.PollTimeoutMs);
      if (Fds[0].revents & POLLIN) {
        char Drain[64];
        while (::read(WakeR, Drain, sizeof(Drain)) > 0)
          ;
      }
      if (Fds[1].revents & POLLIN)
        acceptAll();
      for (size_t I = 0; I != Polled.size(); ++I)
        if (Fds[I + 2].revents & (POLLIN | POLLHUP | POLLERR))
          readConn(Polled[I], Buf);
      recheckParked();
      const uint64_t Now = nowMs();
      Wheel.advance(Now - LastTickMs);
      LastTickMs = Now;
    }
  }

  void acceptAll() {
    for (;;) {
      const int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        return;
      setNonBlocking(Fd);
      auto C = std::make_shared<Conn>();
      C->Fd = Fd;
      {
        std::lock_guard<std::mutex> G(M);
        C->Id = NextConnId++;
        C->Src = makeFdFeedSource(Fd, "unix:client#" + std::to_string(C->Id));
        Conns.emplace(C->Id, C);
        Accepted.add();
      }
    }
  }

  void readConn(const std::shared_ptr<Conn> &C, std::vector<char> &Buf) {
    const long N = C->Src->read(Buf.data(), Buf.size());
    if (N == FeedSource::WouldBlock)
      return;
    std::lock_guard<std::mutex> G(M);
    if (N > 0)
      C->Pending.append(Buf.data(), static_cast<size_t>(N));
    else
      C->PeerClosed = true;
    scheduleLocked(C);
  }

  /// M held. At most one task per connection keeps the session
  /// single-producer; the pool's queue ordering gives consecutive tasks
  /// the happens-before edge.
  void scheduleLocked(const std::shared_ptr<Conn> &C) {
    if (C->TaskInFlight || C->State == Conn::St::Done ||
        C->State == Conn::St::Finalizing)
      return;
    C->TaskInFlight = true;
    Pool.submit([this, C] { process(C); });
  }

  uint64_t sessionLag(Sess &S) {
    const AnalysisSession::Progress P = S.S->progress();
    return P.Published - P.MinLaneConsumed;
  }

  // ---- Handshake ------------------------------------------------------------

  /// Creates and registers a session for \p C (admission-checked). On
  /// shed/failure stages the error on \p C and returns null.
  std::shared_ptr<Sess> openSession(Conn &C, bool Resumable) {
    {
      std::lock_guard<std::mutex> G(M);
      if (Cfg.MaxSessions != 0 && Sessions.size() >= Cfg.MaxSessions) {
        ShedC.add();
        stageError(C.Out,
                   Status(StatusCode::InvalidState,
                          "session limit (" + std::to_string(Cfg.MaxSessions) +
                              ") reached; retry later"),
                   WireErrorCode::Overloaded, Cfg.RetryAfterMs);
        C.CloseAfterFlush = true;
        return nullptr;
      }
    }
    auto Ss = std::make_shared<Sess>();
    Ss->S = std::make_unique<AnalysisSession>(Cfg.Session);
    if (!Ss->S->status().ok()) {
      stageError(C.Out, Ss->S->status(), WireErrorCode::Internal);
      C.CloseAfterFlush = true;
      return nullptr;
    }
    Ss->Ing = std::make_unique<WireIngestor>(*Ss->S);
    Ss->Ing->noteHello(); // The server consumed the Hello itself.
    {
      std::lock_guard<std::mutex> G(M);
      Ss->Id = NextSessId++;
      if (Resumable && Cfg.ResumeGraceMs != 0) {
        do {
          Ss->Token = TokenRng.next() | 1; // Nonzero and (re)drawn if taken.
        } while (TokenToSess.count(Ss->Token));
        TokenToSess.emplace(Ss->Token, Ss->Id);
      }
      Ss->ConnId = C.Id;
      Ss->LastActivityMs = nowMs();
      Ss->LagGauge = Scope.nest("session." + std::to_string(Ss->Id) + ".")
                         .gauge("lag_events");
      Ss->ParkCtr = Scope.nest("session." + std::to_string(Ss->Id) + ".")
                        .counter("parks");
      Sessions.emplace(Ss->Id, Ss);
      C.Ss = Ss;
      Active.add();
      ActivePeak.observe(Sessions.size());
    }
    return Ss;
  }

  /// Resolves a Resume frame on \p C. Returns the re-attached session, or
  /// null with the reply (ResumeOk+Report replay, busy, or unknown-token
  /// error) staged and CloseAfterFlush set.
  std::shared_ptr<Sess> resumeSession(Conn &C, const WireFrameView &F) {
    if (F.Payload.size() != 16) {
      stageError(C.Out,
                 Status(StatusCode::ValidationError,
                        "resume payload must be u64 token | u64 next-seq"),
                 WireErrorCode::Malformed);
      C.CloseAfterFlush = true;
      return nullptr;
    }
    const uint64_t Token = wireGetU64(F.Payload.data());
    std::shared_ptr<Sess> T;
    {
      std::lock_guard<std::mutex> G(M);
      auto It = TokenToSess.find(Token);
      if (It != TokenToSess.end()) {
        auto SIt = Sessions.find(It->second);
        if (SIt != Sessions.end() && !SIt->second->Finalizing) {
          if (SIt->second->ConnId != 0 && SIt->second->ConnId != C.Id) {
            // The token is the capability: the presenting connection is
            // the live one, and the old binding is a killed or zombie
            // socket the poll loop has not reaped yet (a reconnecting
            // client races its own POLLHUP). Latest wins — unbind the
            // stale conn; its hangup (or next orphaned frame) closes it.
            // Making the client wait out a Busy round-trip here would
            // add a retry-after of latency to every fast reconnect.
            auto CIt = Conns.find(SIt->second->ConnId);
            if (CIt != Conns.end()) {
              CIt->second->Ss = nullptr;
              if (CIt->second->State == Conn::St::Parked)
                CIt->second->State = Conn::St::Streaming;
            }
          }
          T = SIt->second;
          T->ConnId = C.Id;
          T->DetachedAtMs = 0;
          T->LastActivityMs = nowMs();
          ++T->Resumes;
          C.Ss = T;
        }
      }
    }
    if (T) {
      ResumesC.add();
      return T;
    }
    // A connection cut between Finish and Report lands here: the summary
    // keeps the token, so the retained report is replayed.
    std::string Canon;
    uint64_t Id = 0, Events = 0;
    bool Found = false;
    {
      std::lock_guard<std::mutex> G(M);
      for (const SessionSummary &Sum : Finished)
        if (Token != 0 && Sum.Token == Token) {
          Canon = Sum.Canon;
          Id = Sum.Id;
          Events = Sum.Events;
          Found = true;
          break;
        }
    }
    if (Found) {
      C.Out += wireResumeOkFrame(Id, Events);
      wireAppendFrame(C.Out, WireFrame::Report,
                      reportFramePayload(0, Id, Canon));
      C.CloseAfterFlush = true;
      return nullptr;
    }
    stageError(C.Out,
               Status(StatusCode::InvalidState,
                      "resume token matches no parked or finished session"),
               WireErrorCode::ResumeUnknown);
    C.CloseAfterFlush = true;
    return nullptr;
  }

  // ---- Data plane -----------------------------------------------------------

  void process(const std::shared_ptr<Conn> &C) {
    std::string Bytes;
    bool Closed;
    std::shared_ptr<Sess> Ss;
    {
      std::lock_guard<std::mutex> G(M);
      Bytes.swap(C->Pending);
      Closed = C->PeerClosed;
      Ss = C->Ss;
    }
    std::unique_lock<std::mutex> PL;
    uint64_t EvBase = 0, FrBase = 0, DupBase = 0;
    auto bind = [&](const std::shared_ptr<Sess> &S) {
      Ss = S;
      PL = std::unique_lock<std::mutex>(Ss->ProduceM);
      EvBase = Ss->Ing->eventsApplied();
      FrBase = Ss->Ing->framesApplied();
      DupBase = Ss->Ing->dupFrames();
    };
    if (Ss)
      bind(Ss);

    if (!Bytes.empty())
      C->Dec.append(Bytes.data(), Bytes.size());
    WireFrameView F;
    int R = 0;
    while (!C->CloseAfterFlush && (R = C->Dec.next(F)) == 1) {
      if (!C->HelloSeen) {
        if (F.Type != WireFrame::Hello) {
          stageError(C->Out,
                     Status(StatusCode::ValidationError,
                            std::string("first frame must be hello, got ") +
                                wireFrameName(F.Type)),
                     WireErrorCode::Malformed);
          C->CloseAfterFlush = true;
          break;
        }
        std::string Err;
        if (!wireCheckHello(F.Payload, Err)) {
          stageError(C->Out, Status(StatusCode::ValidationError, Err),
                     WireErrorCode::Malformed);
          C->CloseAfterFlush = true;
          break;
        }
        C->HelloSeen = true;
        const uint16_t Flags = wireHelloFlags(F.Payload);
        if (Flags & WireHelloAttach)
          continue; // Control-only connection; maybe a Resume follows.
        if (Stopping.load(std::memory_order_relaxed)) {
          stageError(C->Out,
                     Status(StatusCode::InvalidState,
                            "server is draining; retry elsewhere"),
                     WireErrorCode::ShuttingDown, Cfg.RetryAfterMs);
          C->CloseAfterFlush = true;
          break;
        }
        std::shared_ptr<Sess> S =
            openSession(*C, (Flags & WireHelloResumable) != 0);
        if (!S)
          break; // Shed; error staged.
        bind(S);
        // Token 0 tells the client the server has resume disabled.
        if (Flags & WireHelloResumable)
          C->Out += wireWelcomeFrame(Ss->Id, Ss->Token);
        continue;
      }
      if (!Ss) {
        if (F.Type == WireFrame::Resume) {
          std::shared_ptr<Sess> S = resumeSession(*C, F);
          if (!S)
            break; // Replay/busy/unknown staged.
          bind(S);
          C->Out += wireResumeOkFrame(Ss->Id, Ss->Ing->appliedSeq());
          Ss->AckedSeq = Ss->Ing->appliedSeq();
          continue;
        }
        if (isControlFrame(F.Type)) {
          control(*C, nullptr, F);
          continue;
        }
        stageError(C->Out,
                   Status(StatusCode::ValidationError,
                          std::string("frame ") + wireFrameName(F.Type) +
                              " on a connection with no session"),
                   WireErrorCode::InvalidRequest);
        C->CloseAfterFlush = true;
        break;
      }
      if (isControlFrame(F.Type)) {
        control(*C, Ss.get(), F);
        continue;
      }
      Ss->Ing->applyFrame(F);
      if (!Ss->Ing->status().ok())
        break;
    }
    if (R == -1 && !C->CloseAfterFlush) {
      if (Ss)
        Ss->Ing->fail(Status(StatusCode::ValidationError, C->Dec.error()));
      else {
        stageError(C->Out,
                   Status(StatusCode::ValidationError, C->Dec.error()),
                   WireErrorCode::Malformed);
        C->CloseAfterFlush = true;
      }
    }

    bool Final = false, Clean = false;
    if (Ss) {
      const bool Resumable = Ss->Token != 0;
      if (Closed && !Resumable && C->Dec.buffered() != 0)
        Ss->Ing->fail(
            Status(StatusCode::ValidationError,
                   "peer disconnected mid-frame (" +
                       std::to_string(C->Dec.buffered()) +
                       " bytes of partial frame)"));
      EventsC.add(Ss->Ing->eventsApplied() - EvBase);
      FramesC.add(Ss->Ing->framesApplied() - FrBase);
      DupFramesC.add(Ss->Ing->dupFrames() - DupBase);
      if (Cfg.Budgets.MaxSessionEvents != 0 && !Ss->BudgetHit &&
          Ss->Ing->eventsApplied() >= Cfg.Budgets.MaxSessionEvents) {
        Ss->BudgetHit = true;
        stageError(C->Out,
                   Status(StatusCode::InvalidState,
                          "session event budget (" +
                              std::to_string(Cfg.Budgets.MaxSessionEvents) +
                              ") exhausted"),
                   WireErrorCode::BudgetExhausted);
      }
      const Status &St = Ss->Ing->status();
      if (!St.ok() && !Ss->ErrorSent) {
        Ss->ErrorSent = true;
        stageError(C->Out, St, wireCodeFor(St));
      }
      if (Resumable && St.ok() &&
          Ss->Ing->appliedSeq() != Ss->AckedSeq) {
        Ss->AckedSeq = Ss->Ing->appliedSeq();
        C->Out += wireAckFrame(Ss->AckedSeq);
      }
      Clean = Ss->Ing->sawFinish() && St.ok() && !Ss->BudgetHit;
      Final = !St.ok() || Ss->Ing->sawFinish() || Ss->BudgetHit ||
              (Closed && !Resumable);
    }
    flushOut(*C);
    {
      std::lock_guard<std::mutex> G(M);
      if (C->PeerClosed)
        Closed = true;
      if (Ss && !Bytes.empty())
        Ss->LastActivityMs = nowMs();
    }

    if (Ss && Final) {
      bool Mine;
      {
        std::lock_guard<std::mutex> G(M);
        Mine = !Ss->Finalizing;
        Ss->Finalizing = true;
        C->State = Conn::St::Finalizing;
        Ss->EventsFed = Ss->Ing->eventsApplied();
      }
      if (Mine)
        finalize(*Ss, C.get(), Clean);
      closeConn(C);
      wake();
      return;
    }
    if (C->CloseAfterFlush || (Closed && !Ss)) {
      closeConn(C);
      wake();
      return;
    }
    if (Closed && Ss) {
      // Resumable peer vanished mid-stream: park the session for the
      // grace window and let the connection die alone. Unless a Resume
      // already took the session over — then this conn is the stale
      // loser of its own reconnect race and must not detach the fresh
      // binding out from under the live connection.
      bool StillMine;
      {
        std::lock_guard<std::mutex> G(M);
        StillMine = Ss->ConnId == C->Id;
        if (StillMine) {
          Ss->ConnId = 0;
          Ss->DetachedAtMs = nowMs();
        }
        Ss->EventsFed = Ss->Ing->eventsApplied();
      }
      if (StillMine)
        DetachedC.add();
      closeConn(C);
      wake();
      return;
    }
    if (Ss) {
      const uint64_t Lag = sessionLag(*Ss);
      Ss->LagGauge.set(Lag);
      std::lock_guard<std::mutex> G(M);
      Ss->EventsFed = Ss->Ing->eventsApplied();
      if (Cfg.Budgets.MaxLagEvents != 0 && Lag > Cfg.Budgets.MaxLagEvents) {
        if (C->State != Conn::St::Parked) {
          C->State = Conn::St::Parked;
          ++Ss->Parks;
          ParksC.add();
          Ss->ParkCtr.add();
        }
      } else {
        C->State = Conn::St::Streaming;
      }
      C->TaskInFlight = false;
    } else {
      std::lock_guard<std::mutex> G(M);
      C->TaskInFlight = false;
    }
    wake();
  }

  /// IO thread, every tick: resume parked connections whose consumers
  /// caught up to half the budget (hysteresis, so one borderline batch
  /// does not flap park/resume).
  void recheckParked() {
    std::vector<std::shared_ptr<Conn>> Parked;
    {
      std::lock_guard<std::mutex> G(M);
      for (auto &KV : Conns)
        if (KV.second->State == Conn::St::Parked &&
            !KV.second->TaskInFlight && KV.second->Ss)
          Parked.push_back(KV.second);
    }
    for (const std::shared_ptr<Conn> &C : Parked) {
      const uint64_t Lag = sessionLag(*C->Ss);
      C->Ss->LagGauge.set(Lag);
      if (Lag <= Cfg.Budgets.MaxLagEvents / 2) {
        std::lock_guard<std::mutex> G(M);
        if (C->State == Conn::St::Parked)
          C->State = Conn::St::Streaming;
      }
    }
  }

  // ---- Housekeeping (timer wheel, IO thread) --------------------------------

  void scheduleHousekeeping() {
    Wheel.schedule(100, [this] {
      housekeeping();
      scheduleHousekeeping();
    });
  }

  void housekeeping() {
    const uint64_t Now = nowMs();
    std::vector<std::shared_ptr<Sess>> Expired;
    std::vector<std::pair<std::shared_ptr<Sess>, std::shared_ptr<Conn>>> Idle;
    {
      std::lock_guard<std::mutex> G(M);
      for (auto &KV : Sessions) {
        Sess &S = *KV.second;
        if (S.Finalizing)
          continue;
        if (S.ConnId == 0) {
          if (S.DetachedAtMs != 0 &&
              Now - S.DetachedAtMs >= Cfg.ResumeGraceMs) {
            S.Finalizing = true;
            Expired.push_back(KV.second);
          }
          continue;
        }
        if (Cfg.IdleTimeoutMs != 0 &&
            Now - S.LastActivityMs >= Cfg.IdleTimeoutMs) {
          auto CIt = Conns.find(S.ConnId);
          if (CIt != Conns.end() && !CIt->second->TaskInFlight &&
              CIt->second->State != Conn::St::Done &&
              CIt->second->State != Conn::St::Finalizing) {
            S.Finalizing = true;
            CIt->second->State = Conn::St::Finalizing;
            Idle.emplace_back(KV.second, CIt->second);
          }
        }
      }
      if (Cfg.RosterMax != 0 && Finished.size() > Cfg.RosterMax)
        Finished.erase(Finished.begin(),
                       Finished.end() - static_cast<ptrdiff_t>(Cfg.RosterMax));
    }
    for (const std::shared_ptr<Sess> &S : Expired) {
      GraceExpiredC.add();
      std::lock_guard<std::mutex> PL(S->ProduceM);
      S->Ing->fail(Status(StatusCode::IoError,
                          "resume grace window expired with the session "
                          "detached"));
      finalize(*S, nullptr, /*Clean=*/false);
    }
    for (auto &P : Idle) {
      IdleEvictedC.add();
      std::lock_guard<std::mutex> PL(P.first->ProduceM);
      P.first->Ing->fail(
          Status(StatusCode::InvalidState,
                 "session idle past " + std::to_string(Cfg.IdleTimeoutMs) +
                     " ms; evicted"));
      finalize(*P.first, P.second.get(), /*Clean=*/false);
      closeConn(P.second);
    }
  }

  // ---- Finalization ---------------------------------------------------------

  /// S.ProduceM held; the caller claimed S.Finalizing under M (or is the
  /// single-threaded stop() drain). Finishes the session, retains the
  /// summary, stages the report on \p C if it still listens.
  void finalize(Sess &S, Conn *C, bool Clean) {
    AnalysisResult R = S.S->finish();
    SessionSummary Sum;
    Sum.Id = S.Id;
    Sum.Events = R.EventsIngested;
    Sum.CleanFinish = Clean;
    Sum.Token = S.Token;
    Sum.DupFrames = S.Ing->dupFrames();
    Sum.Outcome = !S.Ing->status().ok() ? S.Ing->status() : R.firstError();
    if (S.BudgetHit && Sum.Outcome.ok())
      Sum.Outcome = Status(StatusCode::InvalidState, "event budget exhausted");
    Sum.Canon = canonicalReport(R, S.S->trace());
    if (C) {
      bool PC;
      {
        std::lock_guard<std::mutex> G(M);
        PC = C->PeerClosed;
      }
      if (!PC) {
        if (Sum.Canon.size() + 16 <= WireMaxPayload)
          wireAppendFrame(C->Out, WireFrame::Report,
                          reportFramePayload(0, S.Id, Sum.Canon));
        else
          stageError(C->Out,
                     Status(StatusCode::AnalysisError,
                            "final report exceeds the frame cap"),
                     WireErrorCode::Internal);
        flushOut(*C);
      }
    }
    {
      std::lock_guard<std::mutex> G(M);
      Sum.Parks = S.Parks;
      Sum.Resumes = S.Resumes;
      S.EventsFed = S.Ing->eventsApplied();
      Finished.push_back(std::move(Sum));
      Sessions.erase(S.Id);
      if (S.Token != 0)
        TokenToSess.erase(S.Token);
      Active.sub();
      if (Clean)
        FinishedC.add();
      else
        EvictedC.add();
    }
  }

  void closeConn(const std::shared_ptr<Conn> &C) {
    ::shutdown(C->Fd, SHUT_RDWR);
    std::lock_guard<std::mutex> G(M);
    C->State = Conn::St::Done;
    C->TaskInFlight = false;
    C->Ss.reset();
    Conns.erase(C->Id);
  }

  /// Task-exclusive (or finalize-path) on C.
  void flushOut(Conn &C) {
    if (C.Out.empty())
      return;
    if (!sendAll(C.Fd, C.Out.data(), C.Out.size())) {
      std::lock_guard<std::mutex> G(M);
      C.PeerClosed = true;
    }
    C.Out.clear();
  }

  // ---- Control plane --------------------------------------------------------

  /// Runs inside C's task (Self's ProduceM held when non-null) when a
  /// query frame arrives. Replies are staged into C.Out.
  void control(Conn &C, Sess *Self, const WireFrameView &F) {
    switch (F.Type) {
    case WireFrame::PartialQuery:
    case WireFrame::TimelineQuery: {
      uint64_t Target = Self ? Self->Id : 0;
      if (!F.Payload.empty()) {
        if (F.Payload.size() != 8) {
          stageError(C.Out,
                     Status(StatusCode::ValidationError,
                            "query payload must be empty or a u64"),
                     WireErrorCode::InvalidRequest);
          return;
        }
        Target = wireGetU64(F.Payload.data());
      } else if (!Self) {
        stageError(C.Out,
                   Status(StatusCode::InvalidState,
                          "no session on this connection; query by id"),
                   WireErrorCode::InvalidRequest);
        return;
      }
      if (Self && Target == Self->Id) {
        stageQueryReply(C, *Self, F.Type);
        return;
      }
      std::shared_ptr<Sess> T;
      {
        std::lock_guard<std::mutex> G(M);
        auto It = Sessions.find(Target);
        if (It != Sessions.end() && !It->second->Finalizing)
          T = It->second;
      }
      if (!T) {
        stageError(C.Out,
                   Status(StatusCode::InvalidState,
                          "session " + std::to_string(Target) +
                              " is not live (try final-query if finished)"),
                   WireErrorCode::InvalidRequest);
        return;
      }
      // Try-lock with a bounded retry: the target's producer may be mid-
      // batch. "busy" beats a cross-session lock cycle.
      for (int Attempt = 0; Attempt != 200; ++Attempt) {
        if (T->ProduceM.try_lock()) {
          std::lock_guard<std::mutex> TL(T->ProduceM, std::adopt_lock);
          stageQueryReply(C, *T, F.Type);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      stageError(C.Out,
                 Status(StatusCode::InvalidState,
                        "session " + std::to_string(Target) +
                            " is busy; retry"),
                 WireErrorCode::Busy, Cfg.RetryAfterMs);
      return;
    }
    case WireFrame::ListSessions: {
      std::string Roster;
      {
        std::lock_guard<std::mutex> G(M);
        Roster += "sessions active " + std::to_string(Sessions.size()) +
                  " finished " + std::to_string(Finished.size()) + "\n";
        for (auto &KV : Sessions) {
          const Sess &L = *KV.second;
          const char *State = "streaming";
          if (L.ConnId == 0) {
            State = "detached";
          } else {
            auto CIt = Conns.find(L.ConnId);
            if (CIt != Conns.end()) {
              if (CIt->second->State == Conn::St::Parked)
                State = "parked";
              else if (CIt->second->State == Conn::St::Finalizing)
                State = "finalizing";
            }
          }
          Roster += "session " + std::to_string(L.Id) + " state " + State +
                    " events " + std::to_string(L.EventsFed) + " parks " +
                    std::to_string(L.Parks) + "\n";
        }
        for (const SessionSummary &Sum : Finished)
          Roster += "finished " + std::to_string(Sum.Id) + " events " +
                    std::to_string(Sum.Events) + " parks " +
                    std::to_string(Sum.Parks) + " clean " +
                    (Sum.CleanFinish ? "1" : "0") + " status " +
                    Sum.Outcome.str() + "\n";
      }
      wireAppendFrame(C.Out, WireFrame::SessionList, Roster);
      return;
    }
    case WireFrame::FinalQuery: {
      if (F.Payload.size() != 8) {
        stageError(C.Out,
                   Status(StatusCode::ValidationError,
                          "final-query payload must be a u64"),
                   WireErrorCode::InvalidRequest);
        return;
      }
      const uint64_t Target = wireGetU64(F.Payload.data());
      std::string Canon;
      bool Found = false;
      {
        std::lock_guard<std::mutex> G(M);
        for (const SessionSummary &Sum : Finished)
          if (Sum.Id == Target) {
            Canon = Sum.Canon;
            Found = true;
            break;
          }
      }
      if (!Found) {
        stageError(C.Out,
                   Status(StatusCode::InvalidState,
                          "session " + std::to_string(Target) +
                              " has no retained final report"),
                   WireErrorCode::InvalidRequest);
        return;
      }
      wireAppendFrame(C.Out, WireFrame::Report,
                      reportFramePayload(0, Target, Canon));
      return;
    }
    default:
      stageError(C.Out,
                 Status(StatusCode::ValidationError,
                        std::string("unexpected control frame ") +
                            wireFrameName(F.Type)),
                 WireErrorCode::InvalidRequest);
      return;
    }
  }

  /// Stages a partial-report or timeline reply about \p T into \p C.Out.
  /// Caller holds T.ProduceM (and the conn's own session lock; they may
  /// be the same).
  void stageQueryReply(Conn &C, Sess &T, WireFrame Kind) {
    if (Kind == WireFrame::PartialQuery) {
      AnalysisResult PR = T.S->partialResult();
      const std::string Canon = canonicalReport(PR, T.S->trace());
      if (Canon.size() + 16 > WireMaxPayload) {
        stageError(C.Out,
                   Status(StatusCode::AnalysisError,
                          "partial report exceeds the frame cap"),
                   WireErrorCode::Internal);
        return;
      }
      wireAppendFrame(C.Out, WireFrame::Report,
                      reportFramePayload(1, T.Id, Canon));
      return;
    }
    const std::string Json = T.S->exportTimeline();
    if (Json.size() > WireMaxPayload) {
      stageError(C.Out,
                 Status(StatusCode::AnalysisError,
                        "timeline exceeds the frame cap"),
                 WireErrorCode::Internal);
      return;
    }
    wireAppendFrame(C.Out, WireFrame::Timeline, Json);
  }
};

RaceServer::RaceServer(RaceServerConfig Config)
    : I(std::make_unique<Impl>(std::move(Config))) {}

RaceServer::~RaceServer() { I->stop(); }

Status RaceServer::start() { return I->start(); }

void RaceServer::stop() { I->stop(); }

const std::string &RaceServer::socketPath() const { return I->Cfg.SocketPath; }

std::vector<SessionSummary> RaceServer::finishedSessions() const {
  std::lock_guard<std::mutex> G(I->M);
  return I->Finished;
}

uint64_t RaceServer::activeSessions() const {
  std::lock_guard<std::mutex> G(I->M);
  return I->Sessions.size();
}

std::vector<MetricSample> RaceServer::metrics() const {
  return I->Reg.snapshotPrefix("serve.");
}

} // namespace rapid
