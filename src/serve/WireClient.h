//===- serve/WireClient.h - Blocking wire-protocol client -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the serving protocol (io/WireFormat.h):
/// connect to a race_serverd socket, push hello/declare/events frames,
/// issue control queries, read reply frames. This is the test harness's
/// and tooling's side of the protocol — the LD_PRELOAD interposer ships
/// its own freestanding encoder (examples/interpose/) because it must not
/// link the analysis library.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SERVE_WIRECLIENT_H
#define RAPID_SERVE_WIRECLIENT_H

#include "io/WireFormat.h"
#include "support/Prng.h"
#include "support/Status.h"

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

namespace rapid {

class Trace;

/// Bounded reconnect/backoff policy for the resumable client.
struct WireRetryPolicy {
  int MaxAttempts = 8;       ///< Reconnect attempts per outage.
  int BackoffBaseMs = 2;     ///< First retry delay; doubles per attempt.
  int BackoffMaxMs = 500;    ///< Exponential cap.
  uint64_t JitterSeed = 1;   ///< Deterministic jitter stream.
  size_t SpillMaxBytes = 8u << 20; ///< Unacked-frame buffer cap.
};

/// Deterministic client-side fault injection: kill the connection (close
/// the fd mid-send) \p Kills times, at seeded byte offsets spaced
/// [MinGapBytes, MaxGapBytes] apart. Zero Kills disables the plan. Same
/// seed, same kill schedule — the reconnect tests are exact replays.
struct WireFaultPlan {
  uint64_t Seed = 1;
  int Kills = 0;
  uint64_t MinGapBytes = 512;
  uint64_t MaxGapBytes = 16384;
};

/// Blocking protocol client over a Unix-domain socket.
class WireClient {
public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient &) = delete;
  WireClient &operator=(const WireClient &) = delete;

  /// Connects, retrying for up to \p RetryMs (covers "server still
  /// binding" in tests; 0 = one attempt).
  Status connectUnix(const std::string &Path, int RetryMs = 0);

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Raw bytes (already-framed), for malformed-input tests.
  Status sendBytes(const std::string &Bytes);

  Status sendHello();
  /// Declare frames for every table of \p T followed by Events frames —
  /// exactly encodeTraceFrames(), pushed down this connection.
  Status sendTrace(const Trace &T, uint64_t BatchEvents = 8192);
  Status sendFinish();

  /// Empty payload = this connection's own session.
  Status sendPartialQuery();
  Status sendPartialQuery(uint64_t SessionId);
  Status sendTimelineQuery(uint64_t SessionId);
  Status sendListSessions();
  Status sendFinalQuery(uint64_t SessionId);

  /// Blocks until one complete frame arrives (or \p TimeoutMs passes /
  /// the peer hangs up / the stream desyncs).
  Status readFrame(WireFrame &Type, std::string &Payload,
                   int TimeoutMs = 10000);

  /// Half-close: no more requests, replies still readable.
  void shutdownSend();
  void close();

  // ---- Resumable mode -------------------------------------------------------
  //
  // connectResumable() negotiates a sequence-numbered session (Hello with
  // the Resumable flag, Welcome reply). From then on sendDeclares/
  // sendEvents/sendFinishReliable spill unacknowledged frames and survive
  // connection loss: the client reconnects with bounded exponential
  // backoff + jitter, replays Resume(token, next-seq), and retransmits
  // from the spill; the server's sequence dedup makes delivery
  // exactly-once. awaitReport() filters Welcome/ResumeOk/Ack frames and
  // rides reconnects transparently, so the caller sees exactly the frames
  // a fault-free run would produce.

  /// Connects and performs the resumable handshake.
  Status connectResumable(const std::string &Path, int RetryMs = 0,
                          WireRetryPolicy Policy = WireRetryPolicy());

  /// Installs a deterministic kill schedule (before or mid-stream).
  void setFaultPlan(const WireFaultPlan &Plan);

  /// Declare frames for every table of \p T; logged and replayed on every
  /// resume (interning dedupes, so replay is idempotent).
  Status sendDeclares(const Trace &T);
  /// Sequence-numbered Events frames, spilled until acknowledged.
  Status sendEvents(const Trace &T, uint64_t BatchEvents = 8192);
  /// Finish, resent after any resume (the server treats it idempotently).
  Status sendFinishReliable();
  /// Blocks for the final Report payload, reconnecting as needed.
  Status awaitReport(std::string &Payload, int TimeoutMs = 20000);

  uint64_t sessionId() const { return SessId; }
  uint64_t sessionToken() const { return Token; }
  /// Successful resume round-trips (the e2e pin asserts this matches the
  /// fault plan's kill count).
  uint64_t reconnects() const { return Reconnects; }
  uint64_t eventsSent() const { return NextSeq; }

private:
  Status rawSend(const char *Data, size_t N);
  Status sendFrameReliable(const std::string &Frame, bool IsEvents,
                           uint64_t StartSeq, uint64_t Count);
  Status handshakeFresh(int RetryMs);
  Status reconnectAndResume();
  Status retransmit();
  void drainAcks();
  void handleServerFrame(const WireFrameView &F);
  void trimSpill();
  void dropConnection();
  void backoff(int Attempt, uint32_t HintMs);

  int Fd = -1;
  FrameDecoder Dec;

  // Resumable-session state.
  bool Resumable = false;
  std::string Path;
  WireRetryPolicy Policy;
  Prng Jitter{1};
  uint64_t SessId = 0;
  uint64_t Token = 0;
  uint64_t NextSeq = 0;  ///< Events encoded so far (next frame's start).
  uint64_t AckedSeq = 0; ///< Server-confirmed applied events.
  uint64_t Reconnects = 0;
  bool FinishSent = false;
  std::string DeclareLog; ///< All declare frames, replayed on resume.
  /// Unacked Events frames: (start seq, framed bytes).
  std::deque<std::pair<uint64_t, std::string>> Spill;
  size_t SpillBytes = 0;
  Status ServerError; ///< Sticky non-retryable WireError from the server.
  bool HasStashedReport = false;
  std::string StashedReport; ///< Report drained while processing acks.

  // Fault injection.
  WireFaultPlan Plan;
  Prng KillRng{1};
  int KillsLeft = 0;
  uint64_t SentBytes = 0;
  uint64_t NextKillAt = 0;
};

} // namespace rapid

#endif // RAPID_SERVE_WIRECLIENT_H
