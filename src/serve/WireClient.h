//===- serve/WireClient.h - Blocking wire-protocol client -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the serving protocol (io/WireFormat.h):
/// connect to a race_serverd socket, push hello/declare/events frames,
/// issue control queries, read reply frames. This is the test harness's
/// and tooling's side of the protocol — the LD_PRELOAD interposer ships
/// its own freestanding encoder (examples/interpose/) because it must not
/// link the analysis library.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SERVE_WIRECLIENT_H
#define RAPID_SERVE_WIRECLIENT_H

#include "io/WireFormat.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace rapid {

class Trace;

/// Blocking protocol client over a Unix-domain socket.
class WireClient {
public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient &) = delete;
  WireClient &operator=(const WireClient &) = delete;

  /// Connects, retrying for up to \p RetryMs (covers "server still
  /// binding" in tests; 0 = one attempt).
  Status connectUnix(const std::string &Path, int RetryMs = 0);

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Raw bytes (already-framed), for malformed-input tests.
  Status sendBytes(const std::string &Bytes);

  Status sendHello();
  /// Declare frames for every table of \p T followed by Events frames —
  /// exactly encodeTraceFrames(), pushed down this connection.
  Status sendTrace(const Trace &T, uint64_t BatchEvents = 8192);
  Status sendFinish();

  /// Empty payload = this connection's own session.
  Status sendPartialQuery();
  Status sendPartialQuery(uint64_t SessionId);
  Status sendTimelineQuery(uint64_t SessionId);
  Status sendListSessions();
  Status sendFinalQuery(uint64_t SessionId);

  /// Blocks until one complete frame arrives (or \p TimeoutMs passes /
  /// the peer hangs up / the stream desyncs).
  Status readFrame(WireFrame &Type, std::string &Payload,
                   int TimeoutMs = 10000);

  /// Half-close: no more requests, replies still readable.
  void shutdownSend();
  void close();

private:
  int Fd = -1;
  FrameDecoder Dec;
};

} // namespace rapid

#endif // RAPID_SERVE_WIRECLIENT_H
