//===- serve/RaceServer.h - Multi-session race-analysis server --*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's multiplexer: a Unix-domain acceptor that gives
/// every connection its own AnalysisSession and drives all of them from
/// one poll loop plus one shared ThreadPool. `race_serverd` is a thin
/// CLI around this class; tests drive it in-process.
///
/// Threading model. The IO thread owns accept() and all socket *reads*;
/// raw bytes are handed to pool tasks that decode frames and feed the
/// session (serve/WireIngestor.h). At most one task per connection is in
/// flight, and consecutive tasks for a connection are ordered by the
/// pool's queue synchronization — which preserves the session's
/// single-producer contract without any per-event locking. Each
/// connection also has a ProduceM mutex held while its task touches the
/// session; cross-session control queries (partial result of session N
/// asked on connection M) try-lock it, so a busy producer yields a
/// "busy" error instead of a deadlock.
///
/// Backpressure. Budgets.MaxLagEvents bounds published-minus-consumed
/// lag per session. A connection whose session lags further is *parked*:
/// the IO thread stops polling its fd, the kernel socket buffer fills,
/// and the client's send() blocks — bounded memory, no dropped events.
/// Parked connections are rechecked every poll tick and resume at half
/// the budget (hysteresis); each transition counts in the roster's
/// `parks` and the `serve.parks` metric. Budgets.MaxSessionEvents is the
/// hard per-session event budget: beyond it the stream is frozen with a
/// loud error, never silently truncated.
///
/// Eviction. A peer that disconnects (cleanly or mid-frame) gets its
/// remaining buffered frames applied, then its session finalized; the
/// final canonical report is retained and queryable (FinalQuery) until
/// the server stops.
///
/// Fault tolerance (v2). Sessions and connections are separate objects:
/// a client whose Hello carries the Resumable flag gets a Welcome with a
/// resume token, its Events frames carry cumulative sequence numbers, and
/// a disconnect *detaches* the session instead of finalizing it. Within
/// ResumeGraceMs a new connection can send Resume(token, next-seq) to
/// re-attach; the ingestor's sequence dedup makes the client's
/// retransmission exactly-once, so the final report is byte-identical to
/// an uninterrupted run. Admission control (MaxSessions), idle eviction,
/// finished-roster GC, and grace expiry all run off a timer wheel on the
/// IO thread; shed clients get a retryable WireError with a retry-after
/// hint. stop() is a clean drain: stop accepting, apply buffered bytes,
/// finalize every live session, flush reports.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SERVE_RACESERVER_H
#define RAPID_SERVE_RACESERVER_H

#include "api/AnalysisConfig.h"
#include "obs/Metrics.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rapid {

/// Per-session resource bounds.
struct ServeBudgets {
  /// Park a connection once its session's published-minus-consumed lag
  /// exceeds this many events (0 = never park).
  uint64_t MaxLagEvents = 1u << 20;
  /// Hard cap on events per session (0 = unlimited). Exceeding it
  /// freezes the stream with an InvalidState error frame.
  uint64_t MaxSessionEvents = 0;
};

struct RaceServerConfig {
  /// Template config for every accepted session (detectors, mode, ...).
  AnalysisConfig Session;
  /// Unix-domain socket path to listen on. Required.
  std::string SocketPath;
  ServeBudgets Budgets;
  /// Workers in the shared ingest pool (0 = hardware concurrency).
  unsigned IngestThreads = 2;
  /// Bytes per socket read.
  size_t ReadChunkBytes = 64 * 1024;
  /// Poll tick; also the parked-connection recheck cadence.
  int PollTimeoutMs = 20;
  bool Metrics = true;

  // -- Fault tolerance / degradation knobs -----------------------------------

  /// Live-session admission cap (0 = unlimited). A Hello beyond it is
  /// shed with a retryable Overloaded error carrying RetryAfterMs.
  uint64_t MaxSessions = 0;
  /// How long a resumable session survives detached after its connection
  /// dies, waiting for a Resume (0 disables resume entirely).
  uint64_t ResumeGraceMs = 5000;
  /// Evict a live session that applied no bytes for this long
  /// (0 = never). Finalizes the prefix like any eviction.
  uint64_t IdleTimeoutMs = 0;
  /// Retain at most this many finished-session summaries (0 = unlimited);
  /// a periodic GC drops the oldest beyond the cap.
  size_t RosterMax = 0;
  /// The retry-after hint stamped into retryable shed/busy errors.
  uint32_t RetryAfterMs = 100;
};

/// One finished (evicted or cleanly finished) session's retained outcome.
struct SessionSummary {
  uint64_t Id = 0;
  uint64_t Events = 0;
  uint64_t Parks = 0;
  /// Times the session was re-attached via Resume.
  uint64_t Resumes = 0;
  /// Frames dropped/truncated by exactly-once sequence dedup.
  uint64_t DupFrames = 0;
  /// Resume token (0 = session was not resumable). Kept so a client whose
  /// connection died between Finish and Report can resume and get the
  /// retained report replayed.
  uint64_t Token = 0;
  /// Sticky stream status (ok for a clean stream).
  Status Outcome;
  /// True iff the client sent Finish (vs. eviction on disconnect/error).
  bool CleanFinish = false;
  /// canonicalReport() of the final result.
  std::string Canon;
};

/// The server. start() spawns the IO thread; stop() (or destruction)
/// finalizes every live session and joins.
class RaceServer {
public:
  explicit RaceServer(RaceServerConfig Config);
  ~RaceServer();

  RaceServer(const RaceServer &) = delete;
  RaceServer &operator=(const RaceServer &) = delete;

  Status start();
  void stop();

  const std::string &socketPath() const;

  /// Snapshot of retained finished-session outcomes, oldest first.
  std::vector<SessionSummary> finishedSessions() const;

  uint64_t activeSessions() const;

  /// serve.* metrics (accepted, active, active_peak, parks, evicted,
  /// finished, frames, events).
  std::vector<MetricSample> metrics() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace rapid

#endif // RAPID_SERVE_RACESERVER_H
