//===- lockset/EraserDetector.cpp ---------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "lockset/EraserDetector.h"

#include <algorithm>

using namespace rapid;

EraserDetector::EraserDetector(const Trace &T)
    : Vars(T.numVars()), Held(T.numThreads()) {}

EraserDetector::VarState &EraserDetector::varState(VarId V) {
  if (V.value() >= Vars.size())
    Vars.resize(V.value() + 1);
  return Vars[V.value()];
}

std::vector<uint32_t> &EraserDetector::heldOf(ThreadId T) {
  if (T.value() >= Held.size())
    Held.resize(T.value() + 1);
  return Held[T.value()];
}

void EraserDetector::refineLockset(VarState &S, ThreadId T) {
  const std::vector<uint32_t> &Mine = heldOf(T);
  if (!S.LocksetInitialized) {
    S.Lockset = Mine;
    S.LocksetInitialized = true;
    return;
  }
  std::vector<uint32_t> Out;
  std::set_intersection(S.Lockset.begin(), S.Lockset.end(), Mine.begin(),
                        Mine.end(), std::back_inserter(Out));
  S.Lockset = std::move(Out);
}

void EraserDetector::access(const Event &E, EventIdx Index, bool IsWrite) {
  VarState &S = varState(E.var());
  ThreadId T = E.Thread;

  switch (S.Phase) {
  case VarPhase::Virgin:
    S.Phase = VarPhase::Exclusive;
    S.Owner = T;
    break;
  case VarPhase::Exclusive:
    if (S.Owner == T)
      break;
    // First sharing access: start refining from this access's locks.
    refineLockset(S, T);
    S.Phase = IsWrite ? VarPhase::SharedModified : VarPhase::Shared;
    break;
  case VarPhase::Shared:
    refineLockset(S, T);
    if (IsWrite)
      S.Phase = VarPhase::SharedModified;
    break;
  case VarPhase::SharedModified:
    refineLockset(S, T);
    break;
  }

  // Warn when a write-shared variable has an empty candidate lockset.
  // Eraser warns at the access that empties the set; for a usable race
  // *pair* we report the most recent access from a different thread.
  if (S.Phase == VarPhase::SharedModified && S.LocksetInitialized &&
      S.Lockset.empty() && !S.Reported) {
    LocId OtherLoc;
    EventIdx OtherIdx = 0;
    if (S.LastThread.isValid() && S.LastThread != T) {
      OtherLoc = S.LastLoc;
      OtherIdx = S.LastIdx;
    } else if (S.ForeignThread.isValid() && S.ForeignThread != T) {
      OtherLoc = S.ForeignLoc;
      OtherIdx = S.ForeignIdx;
    }
    if (OtherLoc.isValid()) {
      RaceInstance Inst;
      Inst.EarlierIdx = OtherIdx;
      Inst.LaterIdx = Index;
      Inst.EarlierLoc = OtherLoc;
      Inst.LaterLoc = E.Loc;
      Inst.Var = E.var();
      Report.addRace(Inst);
      S.Reported = true;
    }
  }

  if (S.LastThread.isValid() && S.LastThread != T) {
    S.ForeignLoc = S.LastLoc;
    S.ForeignIdx = S.LastIdx;
    S.ForeignThread = S.LastThread;
  }
  S.LastLoc = E.Loc;
  S.LastIdx = Index;
  S.LastThread = T;
}

void EraserDetector::processEvent(const Event &E, EventIdx Index) {
  switch (E.Kind) {
  case EventKind::Acquire: {
    std::vector<uint32_t> &Mine = heldOf(E.Thread);
    Mine.insert(std::upper_bound(Mine.begin(), Mine.end(), E.lock().value()),
                E.lock().value());
    return;
  }
  case EventKind::Release: {
    std::vector<uint32_t> &Mine = heldOf(E.Thread);
    auto It = std::find(Mine.begin(), Mine.end(), E.lock().value());
    if (It != Mine.end())
      Mine.erase(It);
    return;
  }
  case EventKind::Read:
    access(E, Index, /*IsWrite=*/false);
    return;
  case EventKind::Write:
    access(E, Index, /*IsWrite=*/true);
    return;
  case EventKind::Fork:
  case EventKind::Join:
    return; // Classic Eraser has no fork/join awareness.
  }
}
