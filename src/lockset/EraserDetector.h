//===- lockset/EraserDetector.h - Eraser lockset baseline -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Eraser lockset algorithm [36], the unsound baseline the
/// paper's taxonomy (§1) contrasts with partial-order methods: fast, low
/// overhead, but reports spurious races because consistent locking is a
/// stricter discipline than race freedom. Included as the third detector
/// family for bench_detectors and the taxonomy tests.
///
/// Per-variable state machine: Virgin → Exclusive(t) → Shared →
/// SharedModified, with a candidate lockset refined by intersection with
/// the accessor's held locks once a variable leaves Exclusive.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_LOCKSET_ERASERDETECTOR_H
#define RAPID_LOCKSET_ERASERDETECTOR_H

#include "detect/Detector.h"

#include <vector>

namespace rapid {

/// Streaming Eraser detector.
class EraserDetector : public Detector {
public:
  explicit EraserDetector(const Trace &T);

  void processEvent(const Event &E, EventIdx Index) override;
  std::string name() const override { return "Eraser"; }

private:
  enum class VarPhase : uint8_t { Virgin, Exclusive, Shared, SharedModified };

  struct VarState {
    VarPhase Phase = VarPhase::Virgin;
    ThreadId Owner;
    bool LocksetInitialized = false;
    std::vector<uint32_t> Lockset; ///< Sorted candidate lockset C(x).
    LocId LastLoc;
    EventIdx LastIdx = 0;
    ThreadId LastThread;
    /// Most recent access by a thread other than LastThread; used to form
    /// a race *pair* when the warning access follows a same-thread run.
    LocId ForeignLoc;
    EventIdx ForeignIdx = 0;
    ThreadId ForeignThread;
    bool Reported = false; ///< Eraser warns once per variable.
  };

  void access(const Event &E, EventIdx Index, bool IsWrite);
  void refineLockset(VarState &S, ThreadId T);
  /// Growable accessors: variables/threads first seen mid-stream start in
  /// the same state construction would have given them (Virgin phase, no
  /// held locks).
  VarState &varState(VarId V);
  std::vector<uint32_t> &heldOf(ThreadId T);

  std::vector<VarState> Vars;
  std::vector<std::vector<uint32_t>> Held; ///< Sorted held locks per thread.
};

} // namespace rapid

#endif // RAPID_LOCKSET_ERASERDETECTOR_H
