//===- wcp/WcpState.h - State of Algorithm 1 --------------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state components of the paper's Algorithm 1 (§3.2):
///
///   * per thread t:  local clock N_t, WCP-predecessor clock P_t, HB clock
///     H_t (with the invariants C_t = P_t[t := N_t] and H_t(t) = N_t);
///   * per lock ℓ:    P_ℓ and H_ℓ, the P/H times of the last rel(ℓ);
///   * per (ℓ, x):    L^r_{ℓ,x} and L^w_{ℓ,x}, joins of the HB times of
///     releases whose critical sections read/wrote x (lazily allocated);
///   * per (ℓ, t):    FIFO queues Acq_ℓ(t) and Rel_ℓ(t) of the C-times of
///     acquires / H-times of releases performed by *other* threads.
///
/// The queues are realized as one shared per-lock buffer with per-thread
/// cursors: the value enqueued for every t' ≠ t is identical, so storing it
/// once per critical section implements the same abstract queues with a
/// factor-T less memory. Queue-length telemetry (Table 1 column 11) is
/// reported in terms of the *abstract* per-(ℓ,t) queues so the numbers are
/// comparable with the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_WCP_WCPSTATE_H
#define RAPID_WCP_WCPSTATE_H

#include "support/Ids.h"
#include "vc/VectorClock.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace rapid {

/// One critical section's times, shared across the abstract per-thread
/// queues of its lock.
struct WcpQueueEntry {
  VectorClock AcquireTime; ///< C_a of the acquire (enqueued at acquire).
  VectorClock ReleaseTime; ///< H_r of the release (set at release).
  ThreadId Thread;         ///< Thread that performed the critical section.
  bool HasRelease = false;
};

/// Per-lock state. The per-thread vectors (Cursor/Touched/LiveCount) are
/// growable: a thread first seen mid-stream gets the zero state the batch
/// constructor would have given it, and components beyond the physical
/// size read as that zero state.
struct WcpLockState {
  VectorClock P; ///< P_ℓ: WCP-predecessor time of the last release.
  VectorClock H; ///< H_ℓ: HB time of the last release.

  /// Shared queue buffer; logical index of Entries[i] is Base + i.
  std::deque<WcpQueueEntry> Entries;
  uint64_t Base = 0;

  /// Cursor[t] = logical index of the first entry thread t has not yet
  /// consumed. Entries by t itself are skipped (they are not in t's
  /// abstract queue).
  std::vector<uint64_t> Cursor;

  /// Touched[t]: thread t has acquired this lock at least once. Only
  /// queues of touchers can ever pop; LiveCount[t] counts the Acq+Rel
  /// entries currently pending in toucher t's abstract queues — the
  /// "live" portion of the paper's column 11 metric (queues of threads
  /// that never use the lock are dead weight a real deployment elides).
  std::vector<bool> Touched;
  std::vector<uint64_t> LiveCount;

  explicit WcpLockState(uint32_t NumThreads = 0)
      : P(NumThreads), H(NumThreads), Cursor(NumThreads, 0),
        Touched(NumThreads, false), LiveCount(NumThreads, 0) {}

  uint64_t logicalEnd() const { return Base + Entries.size(); }
  WcpQueueEntry &entry(uint64_t LogicalIdx) {
    assert(LogicalIdx >= Base && LogicalIdx < logicalEnd() &&
           "queue entry out of range");
    return Entries[LogicalIdx - Base];
  }

  /// Growable component accessors (untouched defaults, exactly the batch
  /// constructor's initial state — except the cursor, which starts at
  /// Base: entries below it were collected under the invariant that
  /// their release times already flow to every possible future thread
  /// through P_ℓ, so skipping them is a semantic no-op; see
  /// WcpDetector::collectLockGarbage).
  uint64_t &cursorOf(uint32_t T) {
    if (T >= Cursor.size())
      Cursor.resize(T + 1, Base);
    return Cursor[T];
  }
  bool touched(uint32_t T) const { return T < Touched.size() && Touched[T]; }
  void setTouched(uint32_t T) {
    if (T >= Touched.size())
      Touched.resize(T + 1, false);
    Touched[T] = true;
  }
  uint64_t &liveCountOf(uint32_t T) {
    if (T >= LiveCount.size())
      LiveCount.resize(T + 1, 0);
    return LiveCount[T];
  }

  /// The largest logical index every thread's cursor has passed (the
  /// collection candidates are [Base, this)). \p NumThreads is the
  /// detector's thread count: threads without a physical cursor entry sit
  /// implicitly at 0, so nothing is collectible until every one of them
  /// has a cursor past Base (matching the fixed-size behavior exactly).
  /// The actual collection lives in WcpDetector::collectLockGarbage —
  /// it additionally requires each entry's release time to be covered by
  /// its own thread's P, which makes collection safe even for threads
  /// declared in the future (growable mode).
  uint64_t collectibleEnd(uint32_t NumThreads) const {
    uint64_t Min = Cursor.size() < NumThreads ? 0 : UINT64_MAX;
    for (uint64_t C : Cursor)
      Min = std::min(Min, C);
    return Min;
  }
};

/// One open critical section of a thread: the lock, the shared queue entry
/// created by its acquire, and the variables read/written inside it so far
/// (including by nested sections, folded in when they close). These become
/// the R/W parameters of the paper's release(t, ℓ, R, W) handler.
struct WcpCsFrame {
  LockId Lock;
  uint64_t EntryLogicalIdx;
  std::vector<uint32_t> ReadVars;
  std::vector<uint32_t> WriteVars;
};

/// Per-thread state.
struct WcpThreadState {
  ClockValue N = 1;   ///< Local clock N_t.
  VectorClock P;      ///< P_t (⊥ initially).
  VectorClock H;      ///< H_t (⊥[t := N_t] initially).
  /// K_t: the *hard* clock — thread order plus fork/join edges only.
  /// Fork/join order events (no correct reordering can flip them) but are
  /// not WCP edges, so this knowledge must not flow into P_ℓ or the
  /// queues; it is consulted directly by the race check and the queue
  /// guard. (Folding it into P_t would leak through rule (c)'s
  /// HB-composition channels and over-order independent threads.)
  VectorClock K;
  /// Capture-mode change epochs of P / K: bumped on every mutation of the
  /// respective clock (spurious bumps are only a missed dedup; a missed
  /// bump would be unsound, so every joinWith/set site bumps). An access
  /// whose epoch matches the thread's last broadcast snapshot reuses it
  /// without the O(threads) content compare — the common case, since P/K
  /// mutate only at sync events and (for P) rule-(a) joins that actually
  /// add something.
  uint64_t PEpoch = 1;
  uint64_t KEpoch = 1;
  bool IncrementNext = false; ///< Previous event was a release/fork.
  std::vector<WcpCsFrame> CsStack; ///< Open critical sections, innermost last.

  explicit WcpThreadState(uint32_t NumThreads = 0)
      : P(NumThreads), H(NumThreads), K(NumThreads) {}
};

/// Telemetry the Table 1 harness reads off the detector.
struct WcpStats {
  /// Peak of Σ_{ℓ,t} |Acq_ℓ(t)| + |Rel_ℓ(t)| over the run, counting the
  /// abstract queues of *every* thread, as the pseudocode literally
  /// maintains them.
  uint64_t MaxAbstractQueueEntries = 0;
  /// Peak counting only queues of threads that have acquired the lock —
  /// the entries a deployment actually has to retain, and the number
  /// comparable to the paper's column 11 (their thread-confined locks
  /// would otherwise dominate the metric the same way ours do).
  uint64_t MaxLiveQueueEntries = 0;
  /// Live peak as a percentage of events (the paper's "RV Queue Length
  /// (%)" metric).
  double maxQueuePercent(uint64_t NumEvents) const {
    if (NumEvents == 0)
      return 0.0;
    return 100.0 * static_cast<double>(MaxLiveQueueEntries) /
           static_cast<double>(NumEvents);
  }
  /// Peak of the shared (deduplicated) buffer — what this implementation
  /// actually stores.
  uint64_t MaxSharedQueueEntries = 0;
};

/// Key for the lazily allocated L^r/L^w tables.
inline uint64_t lockVarKey(LockId L, VarId X) {
  return (static_cast<uint64_t>(L.value()) << 32) | X.value();
}

/// One L^r_{ℓ,x} / L^w_{ℓ,x} cell, split per releasing thread.
///
/// Rule (a) of WCP fires only when the release's critical section contains
/// an event *conflicting* with the current access, and conflicting events
/// are by definition cross-thread (§2.1). Since every event in CS(r) is by
/// t(r), contributions from the reader/writer's own thread must not be
/// joined (they would claim HB-only predecessors as WCP predecessors and
/// mask genuine races). The paper's pseudocode leaves this implicit in the
/// conflict premise; we keep the join split per releasing thread — in
/// practice only one or two threads release a given lock around a given
/// variable, so the list stays tiny.
struct PerThreadReleaseClocks {
  std::vector<std::pair<uint32_t, VectorClock>> Entries;

  /// Joins \p H into the cell of releasing thread \p T.
  void add(uint32_t T, const VectorClock &H) {
    for (auto &[Tid, Clock] : Entries) {
      if (Tid == T) {
        Clock.joinWith(H);
        return;
      }
    }
    Entries.emplace_back(T, H);
  }

  /// Joins every cell except \p ExcludeThread's into \p Out. Returns true
  /// iff \p Out changed (feeds the P-epoch that keeps capture-mode
  /// snapshot dedup O(1) across accesses; see ClockBroadcast).
  bool joinIntoExcluding(VectorClock &Out, uint32_t ExcludeThread) const {
    bool Changed = false;
    for (const auto &[Tid, Clock] : Entries)
      if (Tid != ExcludeThread)
        Changed |= Out.joinWith(Clock);
    return Changed;
  }
};

} // namespace rapid

#endif // RAPID_WCP_WCPSTATE_H
