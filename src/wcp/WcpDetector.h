//===- wcp/WcpDetector.h - Algorithm 1: linear-time WCP ---------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: the streaming vector-clock algorithm for
/// the Weak-Causally-Precedes relation (Algorithm 1, §3.2), which detects
/// WCP-races in time O(N·(L + T²)) (Theorem 3) — linear in the trace.
///
/// WCP (Definition 3) weakens CP:
///   (a) a rel(ℓ) is ordered before a later read/write *inside* a critical
///       section on ℓ if the release's section contains a conflicting
///       event (CP instead ordered release before the whole later
///       section);
///   (b) if two critical sections on ℓ contain WCP-ordered events, the
///       earlier *release* is ordered before the later *release* (CP
///       ordered release before acquire);
///   (c) WCP composes with HB on both sides.
///
/// Race checks follow §3.2: a read races if W_x ⋢ C_e, a write if
/// R_x ⊔ W_x ⋢ C_e — realized per thread via last-access histories so
/// both endpoints of each race pair are recovered in the same single pass
/// (see detect/AccessHistory.h).
///
/// Fork/join events contribute HB edges, exactly as RAPID treats the
/// fork/join records in RVPredict logs.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_WCP_WCPDETECTOR_H
#define RAPID_WCP_WCPDETECTOR_H

#include "detect/AccessHistory.h"
#include "detect/Detector.h"
#include "wcp/WcpState.h"

namespace rapid {

/// Streaming WCP race detector (Algorithm 1).
class WcpDetector : public Detector {
public:
  explicit WcpDetector(const Trace &T);

  void processEvent(const Event &E, EventIdx Index) override;
  std::string name() const override { return "WCP"; }

  /// WCP's race checks partition by variable once the clocks are known:
  /// capture mode keeps the full clock machinery — including the rule (a)
  /// joins at accesses and the per-section R/W sets — and defers only the
  /// history checks into \p Log (C_e stand-in P_t, hard clock K_t).
  bool beginCapture(AccessLog &Log) override {
    Capture = &Log;
    return true;
  }

  const WcpStats &stats() const { return Stats; }
  uint64_t numEventsProcessed() const { return EventsProcessed; }

  /// The Table 1 queue telemetry as metric samples — how the session and
  /// pipeline surfaces pick up WcpStats without a detector-specific hook
  /// (this replaced race_cli's stats-publishing wrapper lane).
  void telemetry(std::vector<MetricSample> &Out) const override {
    Out.push_back({"wcp.queue_peak_abstract", MetricKind::HighWater,
                   Stats.MaxAbstractQueueEntries});
    Out.push_back({"wcp.queue_peak_live", MetricKind::HighWater,
                   Stats.MaxLiveQueueEntries});
    Out.push_back({"wcp.queue_peak_shared", MetricKind::HighWater,
                   Stats.MaxSharedQueueEntries});
    Out.push_back({"wcp.events_processed", MetricKind::Counter,
                   EventsProcessed});
  }

  /// Testing hooks: the C_e time of the *last* event processed for thread
  /// \p T, i.e. P_t[t := N_t]. Used by the Theorem 2 equivalence tests.
  /// The two-argument form composes into \p Out in one pass (no fresh
  /// clock per call — per-event callers reuse the same storage).
  void currentC(ThreadId T, VectorClock &Out) const;
  VectorClock currentC(ThreadId T) const;
  const VectorClock &currentP(ThreadId T) const {
    return Threads[T.value()].P;
  }
  const VectorClock &currentH(ThreadId T) const {
    return Threads[T.value()].H;
  }

private:
  void handleAcquire(ThreadId T, LockId L);
  void handleRelease(ThreadId T, LockId L);
  void handleRead(ThreadId T, VarId X, LocId Loc, EventIdx Index);
  void handleWrite(ThreadId T, VarId X, LocId Loc, EventIdx Index);

  /// Line 4's guard: Acq_ℓ(t).Front() ⊑ C_t, evaluated without
  /// materializing C_t (= P_t except component t, which is N_t).
  bool frontLeqCt(const VectorClock &Front, const WcpThreadState &TS,
                  ThreadId T) const;

  /// Looks up L^r/L^w for (ℓ, x); returns nullptr if absent.
  const PerThreadReleaseClocks *readRelease(LockId L, VarId X) const;
  const PerThreadReleaseClocks *writeRelease(LockId L, VarId X) const;

  void bumpAbstract(int64_t Delta);
  void bumpLive(int64_t Delta);

  /// Admits threads [size, T] with the §3.2 initial state (N_t = 1,
  /// P_t = ⊥, H_t = K_t = ⊥[t := N_t]) and raises NumThreads — so a
  /// thread declared mid-stream is indistinguishable from one declared
  /// up front.
  void ensureThread(ThreadId T);
  /// Admits locks up to \p L (P_ℓ = H_ℓ = ⊥, empty queues).
  void ensureLock(LockId L);
  /// Trims \p LS's shared queue: drops entries every current thread has
  /// passed whose release times are already redundant for any
  /// later-declared thread (see the implementation comment).
  void collectLockGarbage(WcpLockState &LS);

  uint32_t NumThreads; ///< High-water thread count (telemetry sizing).
  std::vector<WcpThreadState> Threads;
  std::vector<WcpLockState> Locks;
  /// L^r_{ℓ,x} / L^w_{ℓ,x}, split per releasing thread (see WcpState.h).
  std::unordered_map<uint64_t, PerThreadReleaseClocks> ReadReleases;
  std::unordered_map<uint64_t, PerThreadReleaseClocks> WriteReleases;
  AccessHistory History;
  std::vector<RaceInstance> Scratch;
  AccessLog *Capture = nullptr; ///< Non-null in capture mode.

  uint64_t EventsProcessed = 0;
  int64_t CurrentAbstract = 0;
  int64_t CurrentLive = 0;
  WcpStats Stats;
};

} // namespace rapid

#endif // RAPID_WCP_WCPDETECTOR_H
