//===- wcp/WcpDetector.cpp - Algorithm 1 implementation -----------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "wcp/WcpDetector.h"

#include "detect/ShardedAccessHistory.h"

#include <algorithm>
#include <cstddef>

using namespace rapid;

WcpDetector::WcpDetector(const Trace &T)
    : NumThreads(T.numThreads()),
      Threads(T.numThreads(), WcpThreadState(T.numThreads())),
      Locks(T.numLocks(), WcpLockState(T.numThreads())),
      History(T.numVars(), T.numThreads()) {
  // Initialization (§3.2): N_t = 1, P_t = ⊥, H_t = K_t = ⊥[t := N_t].
  for (uint32_t I = 0; I < NumThreads; ++I) {
    Threads[I].H.set(ThreadId(I), 1);
    Threads[I].K.set(ThreadId(I), 1);
  }
}

void WcpDetector::currentC(ThreadId T, VectorClock &Out) const {
  // The *effective* time of the thread's last event: WCP predecessors
  // plus hard (fork/join) order. Two events a <tr b satisfy
  // currentC(a) ⊑ currentC(b) iff a ≤WCP b in the fork/join-extended
  // sense (Theorem 2).
  //
  // Composed in one pass over P_t/K_t's components into caller-owned
  // storage — no intermediate copy-then-join, and per-event callers
  // (the Theorem 2 harness walks every event) reuse \p Out's capacity
  // instead of allocating a clock per call.
  const WcpThreadState &TS = Threads[T.value()];
  Out.clear();
  const uint32_t N = std::max(TS.P.size(), TS.K.size());
  for (uint32_t U = 0; U != N; ++U)
    Out.set(ThreadId(U),
            std::max(TS.P.get(ThreadId(U)), TS.K.get(ThreadId(U))));
  Out.set(T, TS.N);
}

VectorClock WcpDetector::currentC(ThreadId T) const {
  VectorClock C;
  currentC(T, C);
  return C;
}

bool WcpDetector::frontLeqCt(const VectorClock &Front,
                             const WcpThreadState &TS, ThreadId T) const {
  // The guard tests "acquire ordered before this release" — hard
  // (fork/join) order counts, so the comparison is against P_t ⊔ K_t.
  // Only Front's physical components can exceed anything (the implicit
  // tail is 0), so the loop bound is Front's size, not the thread count.
  for (uint32_t U = 0, E = Front.size(); U < E; ++U) {
    ClockValue Mine =
        U == T.value()
            ? TS.N
            : std::max(TS.P.get(ThreadId(U)), TS.K.get(ThreadId(U)));
    if (Front.get(ThreadId(U)) > Mine)
      return false;
  }
  return true;
}

void WcpDetector::ensureThread(ThreadId T) {
  if (T.value() >= NumThreads)
    NumThreads = T.value() + 1;
  if (T.value() < Threads.size())
    return;
  uint32_t Old = static_cast<uint32_t>(Threads.size());
  Threads.resize(T.value() + 1, WcpThreadState());
  for (uint32_t I = Old; I <= T.value(); ++I) {
    // Initialization (§3.2), exactly as the constructor performs it.
    Threads[I].H.set(ThreadId(I), 1);
    Threads[I].K.set(ThreadId(I), 1);
  }
}

void WcpDetector::ensureLock(LockId L) {
  if (L.value() >= Locks.size())
    Locks.resize(L.value() + 1, WcpLockState());
}

void WcpDetector::collectLockGarbage(WcpLockState &LS) {
  // An entry below every cursor can never be popped by a *current*
  // thread again — but a thread declared later starts with a fresh
  // cursor, and in the up-front-construction world it would have walked
  // these entries. Collection is safe for such future threads only once
  // the entry's release time is covered by its own thread's P: every
  // other thread's P covers it already (they popped it), so from that
  // point *any* release of this lock publishes a P_ℓ ⊒ ReleaseTime, and
  // a future thread must acquire (joining P_ℓ) before it can release and
  // walk the queue — its pop of the entry would be a no-op join. New
  // cursors therefore start at Base (WcpLockState::cursorOf).
  uint64_t End = LS.collectibleEnd(NumThreads);
  while (LS.Base < End && !LS.Entries.empty()) {
    const WcpQueueEntry &E = LS.Entries.front();
    if (!E.HasRelease ||
        !E.ReleaseTime.lessOrEqual(Threads[E.Thread.value()].P))
      break;
    LS.Entries.pop_front();
    ++LS.Base;
  }
}

const PerThreadReleaseClocks *WcpDetector::readRelease(LockId L,
                                                       VarId X) const {
  auto It = ReadReleases.find(lockVarKey(L, X));
  return It == ReadReleases.end() ? nullptr : &It->second;
}

const PerThreadReleaseClocks *WcpDetector::writeRelease(LockId L,
                                                        VarId X) const {
  auto It = WriteReleases.find(lockVarKey(L, X));
  return It == WriteReleases.end() ? nullptr : &It->second;
}

void WcpDetector::bumpAbstract(int64_t Delta) {
  CurrentAbstract += Delta;
  assert(CurrentAbstract >= 0 && "queue accounting went negative");
  if (static_cast<uint64_t>(CurrentAbstract) > Stats.MaxAbstractQueueEntries)
    Stats.MaxAbstractQueueEntries = static_cast<uint64_t>(CurrentAbstract);
}

void WcpDetector::bumpLive(int64_t Delta) {
  CurrentLive += Delta;
  assert(CurrentLive >= 0 && "live queue accounting went negative");
  if (static_cast<uint64_t>(CurrentLive) > Stats.MaxLiveQueueEntries)
    Stats.MaxLiveQueueEntries = static_cast<uint64_t>(CurrentLive);
}

void WcpDetector::handleAcquire(ThreadId T, LockId L) {
  WcpThreadState &TS = Threads[T.value()];
  WcpLockState &LS = Locks[L.value()];

  // Lines 1-2: receive the H/P times of the last release of ℓ.
  TS.H.joinWith(LS.H);
  if (TS.P.joinWith(LS.P))
    ++TS.PEpoch;

  // First contact with ℓ: this thread's abstract queues become live, and
  // all pending entries of other threads now count against them.
  if (!LS.touched(T.value())) {
    LS.setTouched(T.value());
    uint64_t Pending = 0;
    for (uint64_t I = LS.Base; I < LS.logicalEnd(); ++I) {
      const WcpQueueEntry &E = LS.entry(I);
      if (E.Thread != T)
        Pending += E.HasRelease ? 2 : 1;
    }
    LS.liveCountOf(T.value()) = Pending;
    bumpLive(static_cast<int64_t>(Pending));
  }

  // Line 3: enqueue C_t into Acq_ℓ(t') for every t' ≠ t. One shared entry
  // stands for all T-1 abstract copies.
  WcpQueueEntry Entry;
  Entry.AcquireTime = TS.P;
  Entry.AcquireTime.set(T, TS.N); // Materialize C_t = P_t[t := N_t].
  Entry.Thread = T;
  uint64_t LogicalIdx = LS.logicalEnd();
  LS.Entries.push_back(std::move(Entry));
  bumpAbstract(static_cast<int64_t>(NumThreads) - 1);
  // Touchers beyond Touched's physical size don't exist, so its size
  // bounds the live accounting loop.
  for (uint32_t U = 0, E = static_cast<uint32_t>(LS.Touched.size()); U < E;
       ++U) {
    if (U != T.value() && LS.Touched[U]) {
      ++LS.liveCountOf(U);
      bumpLive(1);
    }
  }
  Stats.MaxSharedQueueEntries = std::max(
      Stats.MaxSharedQueueEntries, static_cast<uint64_t>(LS.Entries.size()));

  TS.CsStack.push_back(WcpCsFrame{L, LogicalIdx, {}, {}});
}

void WcpDetector::handleRelease(ThreadId T, LockId L) {
  WcpThreadState &TS = Threads[T.value()];
  WcpLockState &LS = Locks[L.value()];

  // Lines 4-6: Rule (b). Pop critical sections of other threads whose
  // acquire is already ⊑ C_t; their release H-times become WCP
  // predecessors of this release. C_t changes as P_t grows, so the guard
  // is re-evaluated every iteration, exactly like the pseudocode's while.
  uint64_t &Cur = LS.cursorOf(T.value());
  uint64_t &MyLive = LS.liveCountOf(T.value());
  for (;;) {
    // Entries by T itself are not part of T's abstract queues (Line 3
    // enqueues only to other threads).
    while (Cur < LS.logicalEnd() && LS.entry(Cur).Thread == T)
      ++Cur;
    if (Cur >= LS.logicalEnd())
      break;
    WcpQueueEntry &Front = LS.entry(Cur);
    if (!frontLeqCt(Front.AcquireTime, TS, T))
      break;
    // Lock semantics guarantees this critical section closed before our
    // matching acquire, so its release time is present (see WcpState.h).
    assert(Front.HasRelease && "popping an open critical section");
    if (TS.P.joinWith(Front.ReleaseTime))
      ++TS.PEpoch;
    ++Cur;
    bumpAbstract(-2); // One entry leaves Acq_ℓ(T) and one leaves Rel_ℓ(T).
    assert(MyLive >= 2 && "live count out of sync");
    MyLive -= 2;
    bumpLive(-2);
  }

  // Lines 7-8: Rule (a) bookkeeping. Publish H_t into L^r/L^w for every
  // variable this critical section read (R) or wrote (W). Hand-over-hand
  // locking means the released section need not be the innermost one.
  size_t FrameIdx = TS.CsStack.size();
  for (size_t K = TS.CsStack.size(); K-- > 0;) {
    if (TS.CsStack[K].Lock == L) {
      FrameIdx = K;
      break;
    }
  }
  assert(FrameIdx < TS.CsStack.size() && "release without open section");
  WcpCsFrame Frame = std::move(TS.CsStack[FrameIdx]);
  TS.CsStack.erase(TS.CsStack.begin() + static_cast<ptrdiff_t>(FrameIdx));

  auto dedupe = [](std::vector<uint32_t> &Vars) {
    std::sort(Vars.begin(), Vars.end());
    Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  };
  dedupe(Frame.ReadVars);
  dedupe(Frame.WriteVars);
  for (uint32_t X : Frame.ReadVars)
    ReadReleases[lockVarKey(L, VarId(X))].add(T.value(), TS.H);
  for (uint32_t X : Frame.WriteVars)
    WriteReleases[lockVarKey(L, VarId(X))].add(T.value(), TS.H);

  // Line 9: this release becomes the last release of ℓ.
  LS.H = TS.H;
  LS.P = TS.P;

  // Line 10: enqueue H_t into Rel_ℓ(t') for t' ≠ t — i.e. complete the
  // shared entry our matching acquire created.
  WcpQueueEntry &Own = LS.entry(Frame.EntryLogicalIdx);
  assert(Own.Thread == T && !Own.HasRelease && "queue entry mismatch");
  Own.ReleaseTime = TS.H;
  Own.HasRelease = true;
  bumpAbstract(static_cast<int64_t>(NumThreads) - 1);
  for (uint32_t U = 0, E = static_cast<uint32_t>(LS.Touched.size()); U < E;
       ++U) {
    if (U != T.value() && LS.Touched[U]) {
      ++LS.liveCountOf(U);
      bumpLive(1);
    }
  }

  collectLockGarbage(LS);

  // Local clock increment: N_t advances before the next event of T
  // because this event is a release.
  TS.IncrementNext = true;
}

void WcpDetector::handleRead(ThreadId T, VarId X, LocId Loc, EventIdx Index) {
  WcpThreadState &TS = Threads[T.value()];
  // Line 11: Rule (a). For every enclosing critical section over ℓ,
  // releases of ℓ (by other threads) whose sections *wrote* x precede
  // this read: P_t ⊔= ⊔_{ℓ∈L} L^w_{ℓ,x}.
  for (WcpCsFrame &Frame : TS.CsStack) {
    if (const PerThreadReleaseClocks *LW = writeRelease(Frame.Lock, X))
      if (LW->joinIntoExcluding(TS.P, T.value()))
        ++TS.PEpoch;
  }
  // The access belongs to the R set of *every* open section (sections may
  // overlap without nesting, so bubbling on release would be wrong).
  for (WcpCsFrame &Frame : TS.CsStack)
    Frame.ReadVars.push_back(X.value());

  // Race check (§3.2): W_x ⊑ C_e, with C_e = P_t[t := N_t]. The history
  // check reads only other threads' components, so P_t stands in for C_e.
  if (Capture) {
    Capture->record(Index, X, T, Loc, /*IsWrite=*/false, TS.N, TS.P,
                    TS.PEpoch, &TS.K, TS.KEpoch);
    return;
  }
  Scratch.clear();
  History.checkRead(X, T, TS.P, Loc, Index, Scratch, &TS.K);
  for (const RaceInstance &R : Scratch)
    Report.addRace(R);
  History.recordRead(X, T, TS.N, Loc, Index);
}

void WcpDetector::handleWrite(ThreadId T, VarId X, LocId Loc,
                              EventIdx Index) {
  WcpThreadState &TS = Threads[T.value()];
  // Line 12: Rule (a). Releases of enclosing locks (by other threads)
  // whose sections read *or* wrote x precede this write:
  // P_t ⊔= ⊔_{ℓ∈L} (L^r_{ℓ,x} ⊔ L^w_{ℓ,x}).
  for (WcpCsFrame &Frame : TS.CsStack) {
    if (const PerThreadReleaseClocks *LR = readRelease(Frame.Lock, X))
      if (LR->joinIntoExcluding(TS.P, T.value()))
        ++TS.PEpoch;
    if (const PerThreadReleaseClocks *LW = writeRelease(Frame.Lock, X))
      if (LW->joinIntoExcluding(TS.P, T.value()))
        ++TS.PEpoch;
  }
  for (WcpCsFrame &Frame : TS.CsStack)
    Frame.WriteVars.push_back(X.value());

  // Race check (§3.2): R_x ⊔ W_x ⊑ C_e.
  if (Capture) {
    Capture->record(Index, X, T, Loc, /*IsWrite=*/true, TS.N, TS.P,
                    TS.PEpoch, &TS.K, TS.KEpoch);
    return;
  }
  Scratch.clear();
  History.checkWrite(X, T, TS.P, Loc, Index, Scratch, &TS.K);
  for (const RaceInstance &R : Scratch)
    Report.addRace(R);
  History.recordWrite(X, T, TS.N, Loc, Index);
}

void WcpDetector::processEvent(const Event &E, EventIdx Index) {
  ++EventsProcessed;
  ThreadId T = E.Thread;
  // Grow every table the event touches before taking references into
  // them (a resize mid-handler would dangle).
  ensureThread(T);
  if (E.Kind == EventKind::Fork || E.Kind == EventKind::Join)
    ensureThread(E.targetThread());
  else if (E.Kind == EventKind::Acquire || E.Kind == EventKind::Release)
    ensureLock(E.lock());
  WcpThreadState &TS = Threads[T.value()];
  if (TS.IncrementNext) {
    ++TS.N;
    TS.H.set(T, TS.N); // Maintain H_t(t) = N_t.
    TS.K.set(T, TS.N); // ... and K_t(t) = N_t.
    ++TS.KEpoch;
    TS.IncrementNext = false;
  }

  switch (E.Kind) {
  case EventKind::Acquire:
    handleAcquire(T, E.lock());
    return;
  case EventKind::Release:
    handleRelease(T, E.lock());
    return;
  case EventKind::Read:
    handleRead(T, E.var(), E.Loc, Index);
    return;
  case EventKind::Write:
    handleWrite(T, E.var(), E.Loc, Index);
    return;

  case EventKind::Fork: {
    // fork(t, u) is an HB edge (so the child inherits H_t for rule (c)
    // composition and P_t for transitive WCP predecessors) *and* a hard
    // order edge (no correct reordering can start u before the fork),
    // which lives in K_t only — see WcpState.h. The parent's local clock
    // then advances so its later events stay unordered with the child.
    ThreadId Child = E.targetThread();
    WcpThreadState &CS = Threads[Child.value()];
    CS.H.joinWith(TS.H);
    CS.H.set(Child, CS.N); // Preserve H_u(u) = N_u.
    if (CS.P.joinWith(TS.P))
      ++CS.PEpoch;
    if (CS.K.joinWith(TS.K))
      ++CS.KEpoch;
    CS.K.set(Child, CS.N); // No-op by K_u(u) = N_u; epoch already bumped.
    TS.IncrementNext = true;
    return;
  }

  case EventKind::Join: {
    // join(t, u): symmetric.
    ThreadId Child = E.targetThread();
    WcpThreadState &CS = Threads[Child.value()];
    TS.H.joinWith(CS.H);
    TS.H.set(T, TS.N);
    if (TS.P.joinWith(CS.P))
      ++TS.PEpoch;
    if (TS.K.joinWith(CS.K))
      ++TS.KEpoch;
    TS.K.set(T, TS.N); // No-op by K_t(t) = N_t; epoch covered above.
    return;
  }
  }
}
