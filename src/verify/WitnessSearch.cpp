//===- verify/WitnessSearch.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/WitnessSearch.h"

using namespace rapid;

static WitnessResult makeResult(const Trace &T, const McmResult &R,
                                bool WantPair, const RacePair *Pair) {
  WitnessResult Out;
  Out.StatesExpanded = R.StatesExpanded;
  Out.SearchExhaustive = !R.BudgetExhausted;

  bool PairFound = false;
  if (WantPair && Pair)
    PairFound = R.Report.hasPair(*Pair);

  if ((!WantPair && !R.Report.instances().empty()) || PairFound) {
    Out.Kind = WitnessKind::Race;
    Out.Schedule = R.RaceWitness;
    if (!Out.Schedule.empty()) {
      ReorderingCheck Check = checkRaceWitness(T, Out.Schedule);
      assert(Check.Ok && "search returned an invalid race witness");
      (void)Check;
    }
    return Out;
  }
  if (R.DeadlockFound) {
    Out.Kind = WitnessKind::Deadlock;
    Out.Schedule = R.DeadlockWitness;
    Out.DeadlockedThreads = R.DeadlockedThreads;
    if (!Out.Schedule.empty() && !Out.DeadlockedThreads.empty()) {
      ReorderingCheck Check =
          checkDeadlockWitness(T, Out.Schedule, Out.DeadlockedThreads);
      assert(Check.Ok && "search returned an invalid deadlock witness");
      (void)Check;
    }
  }
  return Out;
}

WitnessResult rapid::findWitness(const Trace &T, const RacePair &Pair,
                                 uint64_t MaxStates) {
  McmOptions Opts;
  Opts.MaxStates = MaxStates;
  Opts.DetectDeadlocks = true;
  Opts.TrackWitnesses = true;
  Opts.TargetPair = Pair;
  McmResult R = exploreMcm(T, Opts);
  return makeResult(T, R, /*WantPair=*/true, &Pair);
}

WitnessResult rapid::findAnyWitness(const Trace &T, uint64_t MaxStates) {
  McmOptions Opts;
  Opts.MaxStates = MaxStates;
  Opts.DetectDeadlocks = true;
  Opts.TrackWitnesses = true;
  McmResult R = exploreMcm(T, Opts);
  return makeResult(T, R, /*WantPair=*/false, nullptr);
}
