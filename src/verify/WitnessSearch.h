//===- verify/WitnessSearch.h - Validate detector claims --------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the detectors and the maximal-causality search: given a race
/// pair claimed by a detector, search for a correct reordering witnessing
/// it (or, per the paper's weak soundness, a predictable deadlock), and
/// re-validate whatever the search returns with the reordering checker.
/// This is how the repo tests Theorem 1 empirically.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VERIFY_WITNESSSEARCH_H
#define RAPID_VERIFY_WITNESSSEARCH_H

#include "detect/Race.h"
#include "mcm/McmSearch.h"
#include "verify/Reordering.h"

namespace rapid {

/// What a witness search established for a claimed race.
enum class WitnessKind {
  Race,       ///< Correct reordering with the two accesses adjacent.
  Deadlock,   ///< Correct reordering ending in a predictable deadlock.
  None,       ///< Neither found within budget (budget exhausted), or
              ///< genuinely absent (exhaustive search completed).
};

/// Outcome of a witness search.
struct WitnessResult {
  WitnessKind Kind = WitnessKind::None;
  bool SearchExhaustive = false; ///< True iff the state space was covered.
  std::vector<EventIdx> Schedule;
  std::vector<ThreadId> DeadlockedThreads;
  uint64_t StatesExpanded = 0;
};

/// Searches for a witness for \p Pair in \p T. If \p Pair is not found but
/// a predictable deadlock is, reports the deadlock (the paper's weak
/// soundness allows either). All returned witnesses are re-validated with
/// checkRaceWitness / checkDeadlockWitness; an invalid witness from the
/// search engine is a bug and asserts.
WitnessResult findWitness(const Trace &T, const RacePair &Pair,
                          uint64_t MaxStates = 2'000'000);

/// Convenience: searches for a witness for *any* race or deadlock.
WitnessResult findAnyWitness(const Trace &T, uint64_t MaxStates = 2'000'000);

} // namespace rapid

#endif // RAPID_VERIFY_WITNESSSEARCH_H
