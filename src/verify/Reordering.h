//===- verify/Reordering.h - Correct-reordering semantics -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's notion of *correct reordering* (§2.1): σ' is a correct
/// reordering of σ iff (i) for every thread t, σ'|t is a prefix of σ|t,
/// and (ii) the last w(x) before any r(x) is the same in σ' as in σ — so
/// every read sees the value it saw originally. A predictable race
/// (deadlock) is a correct reordering exhibiting a race (deadlock).
///
/// This module validates candidate reorderings and witnesses; it is the
/// referee between the detectors (which *claim* races) and the search
/// engines (which *produce* witnesses), and the backbone of the empirical
/// Theorem 1 (soundness) test suite.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VERIFY_REORDERING_H
#define RAPID_VERIFY_REORDERING_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// Outcome of validating a candidate reordering.
struct ReorderingCheck {
  bool Ok = false;
  std::string Error; ///< First violation found, empty when Ok.
};

/// Checks that \p Schedule (a sequence of event indices of \p T, without
/// repetition) is a correct reordering of \p T. Also enforces the trace
/// axioms (lock semantics) and fork/join availability, which any feasible
/// execution satisfies.
ReorderingCheck checkCorrectReordering(const Trace &T,
                                       const std::vector<EventIdx> &Schedule);

/// Checks that \p Schedule is a correct reordering whose last two events
/// are conflicting accesses performed back-to-back — i.e. a race witness
/// for the location pair of those two events.
ReorderingCheck checkRaceWitness(const Trace &T,
                                 const std::vector<EventIdx> &Schedule);

/// Checks that after executing \p Schedule, the threads \p Deadlocked are
/// mutually blocked: each one's next event is an acquire of a lock held by
/// another thread in the set (the paper's deadlock definition).
ReorderingCheck checkDeadlockWitness(const Trace &T,
                                     const std::vector<EventIdx> &Schedule,
                                     const std::vector<ThreadId> &Deadlocked);

} // namespace rapid

#endif // RAPID_VERIFY_REORDERING_H
