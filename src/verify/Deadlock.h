//===- verify/Deadlock.h - Predictable deadlock search ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predictable deadlocks (§2.1): a correct reordering after which a set of
/// threads D is mutually stuck — each one's next event acquires a lock
/// held, unreleased, by another thread of D. WCP's *weak* soundness
/// (Theorem 1) promises a predictable race **or** a predictable deadlock
/// for every WCP-race; Figure 5 is the paper's example where only the
/// deadlock exists, and — unlike CP — it involves three threads.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VERIFY_DEADLOCK_H
#define RAPID_VERIFY_DEADLOCK_H

#include "trace/Trace.h"

#include <vector>

namespace rapid {

/// A predictable deadlock: the schedule that reaches it and the threads in
/// the wait-for cycle.
struct DeadlockReport {
  bool Found = false;
  bool SearchExhaustive = false;
  std::vector<EventIdx> Schedule;
  std::vector<ThreadId> Threads;
  uint64_t StatesExpanded = 0;
};

/// Searches the maximal causal model of \p T for a predictable deadlock;
/// the returned witness is re-validated before being returned.
DeadlockReport findPredictableDeadlock(const Trace &T,
                                       uint64_t MaxStates = 2'000'000);

/// Renders the deadlock as "T1 waits for l held by T2; ..." for reports.
std::string describeDeadlock(const Trace &T, const DeadlockReport &R);

} // namespace rapid

#endif // RAPID_VERIFY_DEADLOCK_H
