//===- verify/Reordering.cpp --------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Reordering.h"

#include <unordered_map>

using namespace rapid;

static ReorderingCheck fail(std::string Msg) {
  return ReorderingCheck{false, std::move(Msg)};
}

ReorderingCheck
rapid::checkCorrectReordering(const Trace &T,
                              const std::vector<EventIdx> &Schedule) {
  constexpr uint64_t None = UINT64_MAX;

  // Original per-thread projections and per-read original writers.
  std::vector<std::vector<EventIdx>> Proj(T.numThreads());
  std::vector<uint64_t> OrigWriter(T.size(), None);
  {
    std::vector<uint64_t> LastWrite(T.numVars(), None);
    for (EventIdx I = 0; I != T.size(); ++I) {
      const Event &E = T.event(I);
      if (E.Kind == EventKind::Read)
        OrigWriter[I] = LastWrite[E.var().value()];
      if (E.Kind == EventKind::Write)
        LastWrite[E.var().value()] = I;
      Proj[E.Thread.value()].push_back(I);
    }
  }

  std::vector<uint64_t> NextPos(T.numThreads(), 0);
  std::vector<uint64_t> LastWrite(T.numVars(), None);
  std::vector<uint32_t> HeldBy(T.numLocks(), UINT32_MAX);
  std::vector<bool> ForkSeen(T.numThreads(), false);
  std::vector<bool> HasFork(T.numThreads(), false);
  for (EventIdx I = 0; I != T.size(); ++I)
    if (T.event(I).Kind == EventKind::Fork)
      HasFork[T.event(I).targetThread().value()] = true;

  std::vector<bool> Scheduled(T.size(), false);
  for (size_t Pos = 0; Pos < Schedule.size(); ++Pos) {
    EventIdx I = Schedule[Pos];
    if (I >= T.size())
      return fail("schedule refers to event " + std::to_string(I) +
                  " beyond the trace");
    if (Scheduled[I])
      return fail("event " + std::to_string(I) + " scheduled twice");
    Scheduled[I] = true;

    const Event &E = T.event(I);
    uint32_t Tid = E.Thread.value();
    // (i) Per-thread prefix: this must be exactly the next event of its
    // thread.
    if (NextPos[Tid] >= Proj[Tid].size() || Proj[Tid][NextPos[Tid]] != I)
      return fail("event " + std::to_string(I) +
                  " breaks thread-order prefix of " + T.threadName(E.Thread));
    ++NextPos[Tid];

    // Fork availability: a forked thread cannot start before its fork.
    if (HasFork[Tid] && !ForkSeen[Tid])
      return fail("thread " + T.threadName(E.Thread) +
                  " runs before its fork event");

    switch (E.Kind) {
    case EventKind::Acquire:
      if (HeldBy[E.lock().value()] != UINT32_MAX)
        return fail("lock semantics violated at event " + std::to_string(I) +
                    ": " + T.lockName(E.lock()) + " already held");
      HeldBy[E.lock().value()] = Tid;
      break;
    case EventKind::Release:
      if (HeldBy[E.lock().value()] != Tid)
        return fail("release of unheld lock at event " + std::to_string(I));
      HeldBy[E.lock().value()] = UINT32_MAX;
      break;
    case EventKind::Read:
      // (ii) Reads see their original last writer.
      if (LastWrite[E.var().value()] != OrigWriter[I])
        return fail("read at event " + std::to_string(I) + " of " +
                    T.varName(E.var()) + " sees a different writer");
      break;
    case EventKind::Write:
      LastWrite[E.var().value()] = I;
      break;
    case EventKind::Fork:
      ForkSeen[E.targetThread().value()] = true;
      break;
    case EventKind::Join:
      // A join can only run once the child has completed all its events.
      if (NextPos[E.targetThread().value()] !=
          Proj[E.targetThread().value()].size())
        return fail("join at event " + std::to_string(I) +
                    " before child thread finished");
      break;
    }
  }
  return ReorderingCheck{true, {}};
}

ReorderingCheck
rapid::checkRaceWitness(const Trace &T,
                        const std::vector<EventIdx> &Schedule) {
  if (Schedule.size() < 2)
    return fail("witness has fewer than two events");
  const Event &A = T.event(Schedule[Schedule.size() - 2]);
  const Event &B = T.event(Schedule[Schedule.size() - 1]);
  if (!Event::conflicting(A, B))
    return fail("final two events of witness do not conflict");
  // The racing accesses themselves are exempt from the read-consistency
  // rule (the paper's Figure 2b witness e5,e6,e1 schedules r(y) before
  // its original writer); everything before them must be a correct
  // reordering, and the final pair must extend it in thread order.
  std::vector<EventIdx> Prefix(Schedule.begin(), Schedule.end() - 2);
  ReorderingCheck Base = checkCorrectReordering(T, Prefix);
  if (!Base.Ok)
    return Base;
  // Each final event must be the next unscheduled event of its thread.
  for (size_t Tail = Schedule.size() - 2; Tail < Schedule.size(); ++Tail) {
    EventIdx I = Schedule[Tail];
    const Event &E = T.event(I);
    uint64_t Expected = 0;
    for (EventIdx J = 0; J != I; ++J)
      if (T.event(J).Thread == E.Thread)
        ++Expected;
    uint64_t Done = 0;
    for (size_t K = 0; K < Tail; ++K)
      if (T.event(Schedule[K]).Thread == E.Thread)
        ++Done;
    if (Done != Expected)
      return fail("racing access is not its thread's next event");
  }
  return ReorderingCheck{true, {}};
}

ReorderingCheck
rapid::checkDeadlockWitness(const Trace &T,
                            const std::vector<EventIdx> &Schedule,
                            const std::vector<ThreadId> &Deadlocked) {
  if (Deadlocked.size() < 2)
    return fail("a deadlock needs at least two threads");
  ReorderingCheck Base = checkCorrectReordering(T, Schedule);
  if (!Base.Ok)
    return Base;

  // Replay to find per-thread positions and lock ownership.
  std::vector<std::vector<EventIdx>> Proj(T.numThreads());
  for (EventIdx I = 0; I != T.size(); ++I)
    Proj[T.event(I).Thread.value()].push_back(I);
  std::vector<uint64_t> NextPos(T.numThreads(), 0);
  std::vector<uint32_t> HeldBy(T.numLocks(), UINT32_MAX);
  for (EventIdx I : Schedule) {
    const Event &E = T.event(I);
    ++NextPos[E.Thread.value()];
    if (E.Kind == EventKind::Acquire)
      HeldBy[E.lock().value()] = E.Thread.value();
    if (E.Kind == EventKind::Release)
      HeldBy[E.lock().value()] = UINT32_MAX;
  }

  for (ThreadId D : Deadlocked) {
    uint32_t Tid = D.value();
    if (NextPos[Tid] >= Proj[Tid].size())
      return fail("deadlocked thread " + T.threadName(D) + " has no next event");
    const Event &E = T.event(Proj[Tid][NextPos[Tid]]);
    if (E.Kind != EventKind::Acquire)
      return fail("next event of " + T.threadName(D) + " is not an acquire");
    uint32_t Holder = HeldBy[E.lock().value()];
    bool HeldByOther = false;
    for (ThreadId Other : Deadlocked)
      if (Other.value() == Holder && Other != D)
        HeldByOther = true;
    if (!HeldByOther)
      return fail("lock awaited by " + T.threadName(D) +
                  " is not held inside the deadlocked set");
  }
  return ReorderingCheck{true, {}};
}
