//===- verify/Deadlock.cpp ----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Deadlock.h"

#include "mcm/McmSearch.h"
#include "verify/Reordering.h"

using namespace rapid;

DeadlockReport rapid::findPredictableDeadlock(const Trace &T,
                                              uint64_t MaxStates) {
  McmOptions Opts;
  Opts.MaxStates = MaxStates;
  Opts.DetectDeadlocks = true;
  Opts.TrackWitnesses = true;
  McmResult R = exploreMcm(T, Opts);

  DeadlockReport Out;
  Out.StatesExpanded = R.StatesExpanded;
  Out.SearchExhaustive = !R.BudgetExhausted;
  if (!R.DeadlockFound)
    return Out;
  Out.Found = true;
  Out.Schedule = R.DeadlockWitness;
  Out.Threads = R.DeadlockedThreads;
  if (!Out.Schedule.empty() || !Out.Threads.empty()) {
    ReorderingCheck Check = checkDeadlockWitness(T, Out.Schedule, Out.Threads);
    assert(Check.Ok && "deadlock witness failed validation");
    (void)Check;
  }
  return Out;
}

std::string rapid::describeDeadlock(const Trace &T, const DeadlockReport &R) {
  if (!R.Found)
    return "no predictable deadlock";
  // Replay the schedule to know each blocked thread's awaited lock.
  std::vector<std::vector<EventIdx>> Proj(T.numThreads());
  for (EventIdx I = 0; I != T.size(); ++I)
    Proj[T.event(I).Thread.value()].push_back(I);
  std::vector<uint64_t> NextPos(T.numThreads(), 0);
  std::vector<uint32_t> HeldBy(T.numLocks(), UINT32_MAX);
  for (EventIdx I : R.Schedule) {
    const Event &E = T.event(I);
    ++NextPos[E.Thread.value()];
    if (E.Kind == EventKind::Acquire)
      HeldBy[E.lock().value()] = E.Thread.value();
    if (E.Kind == EventKind::Release)
      HeldBy[E.lock().value()] = UINT32_MAX;
  }
  std::string Out;
  for (ThreadId D : R.Threads) {
    const Event &E = T.event(Proj[D.value()][NextPos[D.value()]]);
    Out += T.threadName(D);
    Out += " waits for ";
    Out += T.lockName(E.lock());
    Out += " held by ";
    Out += HeldBy[E.lock().value()] == UINT32_MAX
               ? std::string("<nobody>")
               : T.threadName(ThreadId(HeldBy[E.lock().value()]));
    Out += "; ";
  }
  return Out;
}
