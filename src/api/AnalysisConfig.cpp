//===- api/AnalysisConfig.cpp -------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisConfig.h"

#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "lockset/EraserDetector.h"
#include "syncp/SyncPDetector.h"
#include "wcp/WcpDetector.h"

using namespace rapid;

const char *rapid::detectorKindName(DetectorKind K) {
  switch (K) {
  case DetectorKind::Hb:
    return "HB";
  case DetectorKind::Wcp:
    return "WCP";
  case DetectorKind::FastTrack:
    return "FastTrack";
  case DetectorKind::Eraser:
    return "Eraser";
  case DetectorKind::SyncP:
    return "SyncP";
  case DetectorKind::Custom:
    return "custom";
  }
  return "unknown";
}

DetectorFactory rapid::makeDetectorFactory(DetectorKind K) {
  switch (K) {
  case DetectorKind::Hb:
    return [](const Trace &T) { return std::make_unique<HbDetector>(T); };
  case DetectorKind::Wcp:
    return [](const Trace &T) { return std::make_unique<WcpDetector>(T); };
  case DetectorKind::FastTrack:
    return
        [](const Trace &T) { return std::make_unique<FastTrackDetector>(T); };
  case DetectorKind::Eraser:
    return [](const Trace &T) { return std::make_unique<EraserDetector>(T); };
  case DetectorKind::SyncP:
    return [](const Trace &T) { return std::make_unique<SyncPDetector>(T); };
  case DetectorKind::Custom:
    break;
  }
  return DetectorFactory();
}

const char *rapid::runModeName(RunMode M) {
  switch (M) {
  case RunMode::Sequential:
    return "sequential";
  case RunMode::Fused:
    return "fused";
  case RunMode::Windowed:
    return "windowed";
  case RunMode::VarSharded:
    return "var-sharded";
  }
  return "unknown";
}

AnalysisConfig &AnalysisConfig::addDetector(DetectorKind K, std::string Name) {
  DetectorSpec Spec;
  Spec.Kind = K;
  Spec.Name = std::move(Name);
  Detectors.push_back(std::move(Spec));
  return *this;
}

AnalysisConfig &AnalysisConfig::addDetector(DetectorFactory Make,
                                            std::string Name) {
  DetectorSpec Spec;
  Spec.Kind = DetectorKind::Custom;
  Spec.Name = std::move(Name);
  Spec.Make = std::move(Make);
  Detectors.push_back(std::move(Spec));
  return *this;
}

Status AnalysisConfig::validate() const {
  auto Invalid = [](std::string Msg) {
    return Status(StatusCode::InvalidConfig, std::move(Msg));
  };
  if (Detectors.empty())
    return Invalid("no detectors configured");
  for (size_t I = 0; I != Detectors.size(); ++I) {
    const DetectorSpec &S = Detectors[I];
    if (S.Kind == DetectorKind::Custom && !S.Make)
      return Invalid("detector " + std::to_string(I) +
                     " is Custom but has no factory");
    if (S.Kind != DetectorKind::Custom && S.Make)
      return Invalid("detector " + std::to_string(I) + " names kind '" +
                     detectorKindName(S.Kind) +
                     "' but also carries a custom factory");
  }
  if (Mode == RunMode::Windowed && WindowEvents == 0)
    return Invalid("windowed mode requires WindowEvents > 0");
  if (Mode != RunMode::Windowed && WindowEvents != 0)
    return Invalid(std::string("WindowEvents is only meaningful in windowed "
                               "mode (mode is ") +
                   runModeName(Mode) + ")");
  if (Mode == RunMode::VarSharded && VarShards == 0)
    return Invalid("var-sharded mode requires VarShards >= 1");
  if (Mode != RunMode::VarSharded && VarShards != 0)
    return Invalid(std::string("VarShards is only meaningful in var-sharded "
                               "mode (mode is ") +
                   runModeName(Mode) + ")");
  if (Strategy != ShardStrategy::Modulo && Mode != RunMode::VarSharded)
    return Invalid("a shard strategy other than Modulo requires var-sharded "
                   "mode");
  if (StreamBatchEvents == 0)
    return Invalid("StreamBatchEvents must be >= 1");
  if (DrainBatch == 0)
    return Invalid("DrainBatch must be >= 1");
  return Status::success();
}
