//===- api/AnalysisSession.cpp ------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The streaming engine: a single-producer / multi-consumer publication
// protocol over stable event storage. The producer (feed/feedFile on the
// caller's thread) appends events to the trace and mirrors the validated
// prefix into an EventStore (support/PublishedStore: chunked, append-only,
// pointers never invalidated), publishing with one atomic watermark store.
// Consumers read the published prefix *in place* — no lock on the hot
// path, no per-batch copy — and park on the store's eventcount when they
// catch up with the producer. The session mutex M now guards only the
// trace/id tables, validation and detector construction; it is never taken
// on a consumer's per-event path. All per-lane state shared with
// partialResult() sits behind a per-lane snapshot mutex.
//
// Every run mode streams:
//
//   Sequential   one consumer thread per lane, each running its detector
//                over published ranges in place (sequentialConsumer);
//   Fused        one consumer thread walking every lane's detector over
//                each published range (fusedConsumer);
//   Windowed     one window-builder consumer cuts completed windows out of
//                the published prefix (trace/IncrementalWindowSplitter)
//                and dispatches a fresh detector per lane × window onto
//                the session ThreadPool; reports merge deterministically
//                in window order as they retire (windowedConsumer);
//   VarSharded   one capture consumer per lane runs the clock pass behind
//                ingestion; the captured AccessLog is itself published by
//                watermark, and per-shard drain tasks on the pool replay
//                committed accesses in place (detect/ShardChecker); only
//                the final trace-order merge waits for finish()
//                (varShardConsumer/drainVarShard).
//
// Mid-stream table growth (text inputs intern lazily; push feeds may
// declare late) is free: detector state is growable end to end —
// implicit-zero vector clocks, grow-on-first-touch access histories,
// lockset and queue tables — so a lane built against a prefix of the id
// tables keeps analyzing bit-for-bit with one built against the final
// tables. The rebuild-and-replay restart machinery this file used to
// carry is gone; LaneReport::Restarts is structurally 0.
//
// Table visibility: the producer interns ids and validates under M
// *before* appending to the store (publishLocked runs with M held), so a
// consumer that observed watermark W and then takes M to construct its
// detector sees id tables at least as fresh as every event below W.
//
// Lock order. The session mutex M nests SnapM inside (M → SnapM). The
// var-sharded lane log mutex LogM also nests SnapM (LogM → SnapM). Shard
// mutexes (SM), window-epoch mutexes (EM) and the store's internal wake
// mutex are leaves. M is never held together with LogM/SM/EM.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"

#include "detect/ShardedAccessHistory.h"
#include "obs/Metrics.h"
#include "obs/TraceRecorder.h"
#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "support/GuardedTask.h"
#include "support/PublishedStore.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "trace/EventStore.h"
#include "trace/TraceValidator.h"
#include "trace/Window.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace rapid;

namespace {

/// Maps a validated config onto the batch pipeline engine (analyzeTrace).
PipelineOptions pipelineOptionsFor(const AnalysisConfig &Cfg) {
  PipelineOptions Opts;
  Opts.NumThreads = Cfg.Threads;
  Opts.Parallel = Cfg.Mode != RunMode::Fused;
  Opts.ShardEvents = Cfg.Mode == RunMode::Windowed ? Cfg.WindowEvents : 0;
  Opts.VarShards = Cfg.Mode == RunMode::VarSharded ? Cfg.VarShards : 0;
  Opts.VarShardStrategy = Cfg.Strategy;
  Opts.Metrics = Cfg.Metrics;
  return Opts;
}

/// Converts stage seconds to the integer nanoseconds the *_ns metrics use.
uint64_t toNs(double Seconds) {
  return Seconds <= 0 ? 0 : static_cast<uint64_t>(Seconds * 1e9);
}

/// Locks the deferred \p Lk, charging acquisition time to \p WaitNs when
/// metrics are enabled — the producer-side table/validation-lock probe
/// (consumers no longer take the session lock per batch; their only wait
/// is the store park, charged to *.park_ns). The disabled path is the
/// plain lock: no clock reads.
void lockCharged(std::unique_lock<std::mutex> &Lk, Counter WaitNs) {
  if (WaitNs.enabled()) {
    uint64_t T0 = obsNowNs();
    Lk.lock();
    WaitNs.add(obsNowNs() - T0);
  } else {
    Lk.lock();
  }
}

AnalysisPipeline buildPipeline(const AnalysisConfig &Cfg) {
  AnalysisPipeline P(pipelineOptionsFor(Cfg));
  for (const DetectorSpec &S : Cfg.Detectors) {
    DetectorFactory Make =
        S.Kind == DetectorKind::Custom ? S.Make : makeDetectorFactory(S.Kind);
    P.addDetector(std::move(Make), S.Name);
  }
  return P;
}

/// Converts the pipeline's result into the unified type; stringly lane
/// errors become structured AnalysisError statuses.
AnalysisResult convertPipelineResult(PipelineResult &&R, uint64_t NumEvents) {
  AnalysisResult Out;
  Out.Lanes.reserve(R.Lanes.size());
  for (LaneResult &L : R.Lanes) {
    LaneReport Lane;
    Lane.DetectorName = std::move(L.DetectorName);
    Lane.Report = std::move(L.Report);
    Lane.Seconds = L.Seconds;
    if (!L.Error.empty())
      Lane.LaneStatus = Status(StatusCode::AnalysisError, std::move(L.Error));
    else
      Lane.EventsConsumed = NumEvents;
    Lane.Telemetry = std::move(L.Telemetry);
    Out.Lanes.push_back(std::move(Lane));
  }
  Out.EventsIngested = NumEvents;
  Out.WallSeconds = R.Seconds;
  Out.IngestSeconds = R.IngestSeconds;
  Out.NumShards = R.NumShards;
  Out.VarShards = R.VarShards;
  Out.TasksStolen = R.TasksStolen;
  Out.ThreadsUsed = R.ThreadsUsed;
  return Out;
}

} // namespace

AnalysisResult rapid::analyzeTrace(const AnalysisConfig &Config,
                                   const Trace &T) {
  if (Status V = Config.validate(); !V.ok()) {
    AnalysisResult R;
    R.Overall = std::move(V);
    return R;
  }
  return convertPipelineResult(buildPipeline(Config).run(T), T.size());
}

// ---- Session internals ------------------------------------------------------

namespace {

/// Per-lane runtime shared between its consumer thread and
/// partialResult()/finish(). Fields below SnapM are guarded by it; the
/// detector pointer is owned by the consumer but snapshot-read (report
/// copy, name) under SnapM as well.
struct LaneRuntime {
  std::string Label;    ///< Config name override ("" = detector's name()).
  std::string Fallback; ///< Kind name, for labeling failed lanes.
  DetectorFactory Make;

  std::mutex SnapM;
  std::unique_ptr<Detector> D;
  std::string Name;      ///< Resolved once the detector first exists.
  RaceReport Final;      ///< Set by the consumer at drain time.
  Status LaneStatus;
  uint64_t Consumed = 0; ///< Events processed.
  double Seconds = 0;    ///< Processing time, excluding waits.
  bool Done = false;

  // Cached instrument handles (obs/Metrics.h; null when metrics are off)
  // plus the lane's timeline track. Written once at session start, then
  // only read — safe to use from the lane's consumer and pool tasks.
  Counter ConsumeNs;       ///< Detector processing time.
  Counter ParkNs;          ///< Time parked waiting for published events.
  Counter Batches;         ///< Published ranges processed (in place).
  Counter WindowsChecked;  ///< Windowed: lane × window tasks completed.
  Counter WindowCheckNs;   ///< Windowed: time inside window tasks.
  Counter DrainNs;         ///< Var-sharded: shard replay time.
  Counter DrainBatches;    ///< Var-sharded: drain rounds replayed.
  Gauge CapturedAccesses;  ///< Var-sharded: deferred accesses logged.
  Gauge BroadcastClocks;   ///< Var-sharded: distinct clock snapshots.
  HighWater BatchEventsPeak; ///< Largest batch copied.
  HighWater LagEventsPeak;   ///< Peak published-minus-consumed lag.
  uint32_t Track = TraceRecorder::NoTrack;
};

// ---- Windowed-mode streaming state ------------------------------------------

/// One lane's outcome for one window, filled by its pool task.
struct WindowSlot {
  RaceReport Report;
  std::string Name; ///< Detector's name() (window 0 resolves the lane's).
  std::string Error;
  double Seconds = 0;
  bool Done = false;
};

/// One completed window plus its per-lane result slots.
struct WindowEntry {
  std::shared_ptr<const TraceWindow> W;
  uint64_t EndIdx = 0; ///< Parent events covered: [0, EndIdx) after merge.
  std::vector<WindowSlot> Slots;
};

/// The window-builder's run state: every window cut so far plus task
/// accounting. (Historically one of several per run — table growth used
/// to orphan the epoch and start a fresh one; with growable detector
/// state there is exactly one per session.)
struct WindowEpoch {
  std::mutex EM;
  std::condition_variable DoneCV;
  std::vector<std::unique_ptr<WindowEntry>> Windows; ///< Appended in order.
  uint64_t TasksLaunched = 0;
  uint64_t TasksDone = 0;
};

// ---- Var-sharded-mode streaming state ---------------------------------------

/// One lane's shard-check runtime for the streamed var-sharded mode.
/// Cursors/Error/Seconds are guarded by the lane's LogM; the checker
/// itself by SM (claim under LogM, replay under SM — in place, against
/// the committed log — commit progress under LogM, so capture
/// publication, shard replay and partial snapshots all overlap without
/// sharing). WorkList is a PublishedStore so the drain task can read its
/// claimed range outside LogM while the capture consumer keeps appending:
/// growth never relocates an entry, and the LogM claim handshake provides
/// the happens-before (the store's own watermark is not used here).
struct VarShard {
  PublishedStore<uint32_t> WorkList; ///< Access indices, in trace order.
  uint64_t Claimed = 0;              ///< Handed to the drain task.
  uint64_t Completed = 0;            ///< Replayed into the checker.
  bool Scheduled = false;            ///< A drain task is in flight.
  std::string Error;
  double Seconds = 0;

  std::mutex SM;
  std::unique_ptr<ShardChecker> Checker; ///< Growable; built once.
};

/// Per-lane capture/publication state for the streamed var-sharded mode.
struct VarShardState {
  std::mutex LogM;
  std::condition_variable DrainCV; ///< Drain tasks signal progress.
  AccessLog *Log = nullptr;        ///< Owned via LogHolder; appended by the
                                   ///< capture detector under LogM → SnapM.
  std::unique_ptr<AccessLog> LogHolder;
  uint64_t Partitioned = 0;     ///< Accesses split into WorkLists so far.
  uint64_t CapturedEvents = 0;  ///< Trace events the clock pass covered.
  bool Capturing = false;       ///< Detector accepted beginCapture.
  bool PlanReady = false;       ///< Plan fixed (modulo: at attach;
                                ///< frequency-balanced: at capture end).
  ShardPlan Plan;
  ShardReplay Replay = ShardReplay::FullHistory;
  /// Lane-wide replay state for context-bearing detectors (SyncP); owned
  /// by the lane's detector, which outlives every drain. Null otherwise.
  const ShardContext *Ctx = nullptr;
  std::vector<std::unique_ptr<VarShard>> Shards;
  LaneRuntime *Rt = nullptr; ///< Back-pointer for drain-task telemetry.
};

} // namespace

struct AnalysisSession::Impl {
  AnalysisConfig Cfg;
  Status SessionStatus; ///< Sticky: config validation / ingestion failure.
  Timer Wall;
  double IngestSeconds = 0;

  // Trace / table state (guarded by M). Publication itself lives in
  // Store: the producer mirrors the validated prefix into it under M and
  // publishes by watermark; consumers read the store lock-free and only
  // take M to construct detectors against the id tables.
  std::mutex M;
  Trace Owned;
  const Trace *Live = &Owned; ///< Points into the reader during feedFile.
  EventStore Store;           ///< Published events; watermark == analyzable.
  /// Producer stores seq_cst then Store.wakeAll(); consumer stop
  /// predicates load seq_cst (the store's Dekker handshake, so the last
  /// wake cannot be lost).
  std::atomic<bool> IngestDone{false};
  bool Finished = false;
  bool Ingested = false; ///< Any feed/declare has happened.

  /// Producer-side §2.1 validation: detectors assume the trace axioms
  /// (e.g. releases match held locks), so only the validated prefix is
  /// ever published to lanes. Validated counts events certified OK; the
  /// first violation sticks in SessionStatus and freezes publication.
  StreamingTraceValidator Validator;
  uint64_t Validated = 0;

  std::vector<std::unique_ptr<LaneRuntime>> Lanes;
  std::vector<std::unique_ptr<VarShardState>> VarStates; ///< VarSharded only.
  std::shared_ptr<WindowEpoch> WinEpoch; ///< Windowed only; ptr under M.
  uint64_t FinalNumWindows = 0;          ///< Set at windowed finalize.
  /// Windowed only: the builder's consumed watermark. LaneRuntime::
  /// Consumed is only written at finalize in this mode (window tasks
  /// retire out of order), so progress() reads this instead — otherwise
  /// a parked-on-lag serving client would never resume.
  std::atomic<uint64_t> WinBuilt{0};
  std::vector<std::thread> Consumers;

  // ---- Observability (obs/) -------------------------------------------------
  // The registry exists for every session (disabled registries hand out
  // null handles — the zero-cost path); the recorder only when
  // Cfg.Timeline. Handles below are cached once in start().
  std::unique_ptr<MetricsRegistry> Reg;
  std::unique_ptr<TraceRecorder> Rec;
  Counter IngestParseNs;    ///< feedFile: chunk parse time.
  Counter IngestLockWaitNs; ///< Producer time acquiring the session lock.
  Counter IngestValidateNs; ///< §2.1 streaming validation time.
  Counter PublishBatches;
  Gauge PublishedGauge;     ///< The published watermark.
  HighWater PublishBatchPeak;
  Counter ConsumerParkNs;   ///< Shared-consumer modes (fused/builder).
  Counter WindowsDispatched;
  Gauge WindowsRetired;
  uint32_t IngestTrack = TraceRecorder::NoTrack;
  uint32_t BuilderTrack = TraceRecorder::NoTrack;
  /// Lane × window tasks (Windowed) / shard drain tasks (VarSharded).
  /// Declared last so its destructor drains in-flight tasks before the
  /// state they reference dies.
  std::unique_ptr<ThreadPool> Pool;

  void start();
  void sequentialConsumer(LaneRuntime &Rt);
  void fusedConsumer();
  void windowedConsumer();
  void dispatchWindow(const std::shared_ptr<WindowEpoch> &Ep, TraceWindow &&W);
  void finalizeWindowedLanes(WindowEpoch &Ep);
  void varShardConsumer(LaneRuntime &Rt, VarShardState &VS);
  void drainVarShard(VarShardState &VS, uint32_t S);
  void scheduleDrains(VarShardState &VS, std::vector<uint32_t> &ToSchedule);
  void buildDetectorLocked(LaneRuntime &Rt);
  void registerObservability();
  void stopConsumers();
  Status ingestGate();
  bool validateNewLocked();
  bool validateNewLockedInner();
  void publishLocked();
  AnalysisResult snapshotLanes(bool Partial);
  void snapshotWindowedLane(size_t L, LaneReport &Lane);
  void snapshotVarShardLane(VarShardState &VS, LaneReport &Lane);
};

/// Builds \p Rt's detector against the current tables. Caller holds M;
/// takes SnapM (M → SnapM is the session's one lock order).
void AnalysisSession::Impl::buildDetectorLocked(LaneRuntime &Rt) {
  std::lock_guard<std::mutex> G(Rt.SnapM);
  Rt.D = Rt.Make(*Live);
  Rt.Name = Rt.Label.empty() ? Rt.D->name() : Rt.Label;
}

/// One lane of the sequential streaming mode: wait for the watermark,
/// then run the detector over the published range *in place* — no session
/// lock, no batch copy. Processing is still chunked (Cfg.StreamBatchEvents)
/// so SnapM is released regularly for partialResult(). The detector is
/// built once, against whatever id tables exist when the lane first has
/// work (taking M only for that one construction); growable detector
/// state admits ids declared later, so table growth never restarts the
/// lane (bit-for-bit with the batch run; see the header comment).
void AnalysisSession::Impl::sequentialConsumer(LaneRuntime &Rt) {
  const uint64_t Batch = std::max<uint64_t>(Cfg.StreamBatchEvents, 1);
  uint64_t Consumed = 0;
  auto Stopped = [this] {
    return IngestDone.load(std::memory_order_seq_cst);
  };
  try {
    for (;;) {
      const uint64_t To = Store.waitPublished(Consumed, Rt.ParkNs, Stopped);
      if (To == Consumed)
        break; // Stopped and fully drained.
      if (!Rt.D) {
        std::lock_guard<std::mutex> Lk(M);
        buildDetectorLocked(Rt);
      }
      while (Consumed != To) {
        const uint64_t From = Consumed;
        const uint64_t End = std::min(To, From + Batch);
        Rt.Batches.add();
        Rt.BatchEventsPeak.observe(End - From);
        Rt.LagEventsPeak.observe(Store.published() - From);
        int64_t SpanStart = Rec ? Rec->nowUs() : 0;
        {
          std::lock_guard<std::mutex> G(Rt.SnapM);
          Timer Clock;
          Store.forRange(From, End, [&](const Event &E, uint64_t I) {
            Rt.D->processEvent(E, I);
          });
          double Sec = Clock.seconds();
          Rt.Seconds += Sec;
          Rt.ConsumeNs.add(toNs(Sec));
          Consumed = End;
          Rt.Consumed = End;
        }
        if (Rec) {
          Rec->span(Rt.Track, "consume", SpanStart, Rec->nowUs() - SpanStart);
          Rec->counter("lag:" + Rt.Fallback, Rec->nowUs(), To - End);
        }
      }
    }
    {
      // Zero-event sessions still owe a constructed detector (runDetector
      // on an empty trace constructs, finishes and names one too).
      std::unique_lock<std::mutex> Lk(M);
      if (!Rt.D)
        buildDetectorLocked(Rt);
    }
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.D->finish();
    Rt.Final = Rt.D->report();
    Rt.Done = true;
  } catch (const std::exception &E) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, E.what());
    Rt.Done = true;
  } catch (...) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, "unknown exception");
    Rt.Done = true;
  }
}

/// The fused streaming mode: one consumer drives every lane through the
/// same in-place walk of the published prefix, so N detectors cost one
/// pass. A lane that throws is marked failed and dropped from the walk;
/// the others continue.
void AnalysisSession::Impl::fusedConsumer() {
  const uint64_t Batch = std::max<uint64_t>(Cfg.StreamBatchEvents, 1);
  uint64_t Consumed = 0;
  bool Constructed = false;
  std::vector<bool> Failed(Lanes.size(), false);
  auto Stopped = [this] {
    return IngestDone.load(std::memory_order_seq_cst);
  };

  auto failLane = [&](size_t L, const char *What) {
    std::lock_guard<std::mutex> G(Lanes[L]->SnapM);
    Lanes[L]->LaneStatus = Status(StatusCode::AnalysisError, What);
    Lanes[L]->Done = true;
    Failed[L] = true;
  };
  auto guardedLane = [&](size_t L, auto &&Body) {
    if (Failed[L])
      return;
    try {
      Body();
    } catch (const std::exception &E) {
      failLane(L, E.what());
    } catch (...) {
      failLane(L, "unknown exception");
    }
  };

  for (;;) {
    const uint64_t To = Store.waitPublished(Consumed, ConsumerParkNs, Stopped);
    if (To == Consumed)
      break; // Stopped and fully drained.
    if (!Constructed) {
      std::lock_guard<std::mutex> Lk(M);
      for (size_t L = 0; L != Lanes.size(); ++L)
        guardedLane(L, [&] { buildDetectorLocked(*Lanes[L]); });
      Constructed = true;
    }
    while (Consumed != To) {
      const uint64_t From = Consumed;
      const uint64_t End = std::min(To, From + Batch);
      const uint64_t Lag = Store.published() - From;
      for (size_t L = 0; L != Lanes.size(); ++L) {
        guardedLane(L, [&] {
          LaneRuntime &Rt = *Lanes[L];
          Rt.Batches.add();
          Rt.BatchEventsPeak.observe(End - From);
          Rt.LagEventsPeak.observe(Lag);
          int64_t SpanStart = Rec ? Rec->nowUs() : 0;
          {
            std::lock_guard<std::mutex> G(Rt.SnapM);
            Timer Clock;
            Store.forRange(From, End, [&](const Event &E, uint64_t I) {
              Rt.D->processEvent(E, I);
            });
            double Sec = Clock.seconds();
            Rt.Seconds += Sec;
            Rt.ConsumeNs.add(toNs(Sec));
            Rt.Consumed = End;
          }
          if (Rec)
            Rec->span(Rt.Track, "consume", SpanStart,
                      Rec->nowUs() - SpanStart);
        });
      }
      Consumed = End;
    }
  }
  {
    std::unique_lock<std::mutex> Lk(M);
    if (!Constructed)
      for (size_t L = 0; L != Lanes.size(); ++L)
        guardedLane(L, [&] { buildDetectorLocked(*Lanes[L]); });
  }
  for (size_t L = 0; L != Lanes.size(); ++L) {
    guardedLane(L, [&] {
      LaneRuntime &Rt = *Lanes[L];
      std::lock_guard<std::mutex> G(Rt.SnapM);
      Rt.D->finish();
      Rt.Final = Rt.D->report();
      Rt.Done = true;
    });
  }
}

// ---- Windowed streaming -----------------------------------------------------

/// Appends \p W to the epoch and launches one analysis task per lane: a
/// fresh detector over the fragment (the windowed baseline's defining
/// move), results written into the window's slots. Tasks hold the epoch
/// alive via shared_ptr, so in-flight stragglers stay valid even if the
/// session is torn down around them.
void AnalysisSession::Impl::dispatchWindow(
    const std::shared_ptr<WindowEpoch> &Ep, TraceWindow &&W) {
  auto Entry = std::make_unique<WindowEntry>();
  Entry->W = std::make_shared<const TraceWindow>(std::move(W));
  Entry->EndIdx = Entry->W->Original.empty() ? 0 : Entry->W->Original.back() + 1;
  Entry->Slots.resize(Lanes.size());
  WindowEntry *E = Entry.get();
  size_t WinIdx;
  {
    std::lock_guard<std::mutex> G(Ep->EM);
    WinIdx = Ep->Windows.size();
    Ep->Windows.push_back(std::move(Entry));
    Ep->TasksLaunched += Lanes.size();
  }
  WindowsDispatched.add();
  for (size_t L = 0; L != Lanes.size(); ++L) {
    Pool->submit([this, Ep, E, L, WinIdx] {
      LaneRuntime &Rt = *Lanes[L];
      RaceReport Report;
      std::string Name;
      std::string Err;
      double Seconds = 0;
      int64_t SpanStart = Rec ? Rec->nowUs() : 0;
      guardedTask(Err, [&] {
        Timer Clock;
        std::unique_ptr<Detector> D = Rt.Make(E->W->Fragment);
        Name = D->name();
        Report = runDetectorOnWindow(*D, *E->W);
        Seconds = Clock.seconds();
      });
      Rt.WindowsChecked.add();
      Rt.WindowCheckNs.add(toNs(Seconds));
      if (Rec) {
        // On the lane's track (spans of concurrent windows of one lane
        // may overlap there — see docs/OBSERVABILITY.md); the pool
        // worker's own track carries the enclosing "task" span.
        Rec->span(Rt.Track, "check:w" + std::to_string(WinIdx), SpanStart,
                  Rec->nowUs() - SpanStart);
      }
      std::lock_guard<std::mutex> G(Ep->EM);
      WindowSlot &S = E->Slots[L];
      S.Report = std::move(Report);
      S.Name = std::move(Name);
      S.Error = std::move(Err);
      S.Seconds = Seconds;
      S.Done = true;
      ++Ep->TasksDone;
      Ep->DoneCV.notify_all();
    });
  }
}

/// Merges the retired windows into each lane's final report, reproducing
/// the batch engine's shard-order merge (and its naming and first-error
/// labeling) exactly. Runs on the builder thread after every task of the
/// final epoch completed.
void AnalysisSession::Impl::finalizeWindowedLanes(WindowEpoch &Ep) {
  FinalNumWindows = Ep.Windows.size();
  WindowsRetired.set(FinalNumWindows);
  for (size_t L = 0; L != Lanes.size(); ++L) {
    LaneRuntime &Rt = *Lanes[L];
    RaceReport Merged;
    std::string Err;
    std::string Base = Rt.Label;
    double Seconds = 0;
    uint64_t Covered = 0;
    for (size_t K = 0; K != Ep.Windows.size(); ++K) {
      WindowSlot &S = Ep.Windows[K]->Slots[L];
      if (K == 0 && Base.empty())
        Base = S.Name;
      if (!S.Error.empty() && Err.empty())
        Err = "shard " + std::to_string(K) + ": " + S.Error;
      Merged.mergeFrom(S.Report);
      Seconds += S.Seconds;
      Covered = Ep.Windows[K]->EndIdx;
    }
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.Name = Base + "[w=" + std::to_string(Cfg.WindowEvents) + "]";
    Rt.Seconds = Seconds;
    Rt.Final = std::move(Merged); // Kept even on error, like the batch merge.
    if (!Err.empty())
      Rt.LaneStatus = Status(StatusCode::AnalysisError, std::move(Err));
    else
      Rt.Consumed = Covered;
    Rt.Done = true;
  }
}

/// The windowed mode's one consumer: replays the published prefix through
/// an incremental window splitter and dispatches each completed window the
/// moment its last event publishes — no per-window global state, so
/// analysis starts while ingestion is still appending. The splitter and
/// the per-window detectors tolerate ids beyond the tables they were
/// built against (growable state), so table growth never re-cuts windows.
void AnalysisSession::Impl::windowedConsumer() {
  uint64_t Consumed = 0;
  std::shared_ptr<WindowEpoch> Ep;
  std::unique_ptr<IncrementalWindowSplitter> Split;
  auto Stopped = [this] {
    return IngestDone.load(std::memory_order_seq_cst);
  };
  try {
    for (;;) {
      const uint64_t To = Store.waitPublished(Consumed, ConsumerParkNs,
                                              Stopped);
      if (!Ep) {
        // First wake: fix the epoch and the splitter. Under M so the
        // splitter's table copy is at least as fresh as every published
        // event it will see (publication happens with M held).
        std::lock_guard<std::mutex> Lk(M);
        Ep = std::make_shared<WindowEpoch>();
        WinEpoch = Ep;
        Split = std::make_unique<IncrementalWindowSplitter>(*Live,
                                                            Cfg.WindowEvents);
      }
      if (To != Consumed) {
        int64_t SpanStart = Rec ? Rec->nowUs() : 0;
        Store.forRange(Consumed, To, [&](const Event &E, uint64_t I) {
          if (std::optional<TraceWindow> W = Split->push(E, I))
            dispatchWindow(Ep, std::move(*W));
        });
        Consumed = To;
        WinBuilt.store(To, std::memory_order_relaxed);
        if (Rec)
          Rec->span(BuilderTrack, "build", SpanStart,
                    Rec->nowUs() - SpanStart);
        continue;
      }
      // Stopped and fully drained: flush the trailing partial window,
      // wait out the in-flight tasks, merge.
      if (std::optional<TraceWindow> W = Split->flush())
        dispatchWindow(Ep, std::move(*W));
      {
        std::unique_lock<std::mutex> ELk(Ep->EM);
        Ep->DoneCV.wait(ELk,
                        [&] { return Ep->TasksDone == Ep->TasksLaunched; });
      }
      finalizeWindowedLanes(*Ep);
      return;
    }
  } catch (const std::exception &E) {
    for (auto &Rt : Lanes) {
      std::lock_guard<std::mutex> G(Rt->SnapM);
      Rt->LaneStatus = Status(StatusCode::AnalysisError, E.what());
      Rt->Done = true;
    }
  } catch (...) {
    for (auto &Rt : Lanes) {
      std::lock_guard<std::mutex> G(Rt->SnapM);
      Rt->LaneStatus = Status(StatusCode::AnalysisError, "unknown exception");
      Rt->Done = true;
    }
  }
}

// ---- Var-sharded streaming --------------------------------------------------

/// Submits drain tasks for the shards in \p ToSchedule (already marked
/// Scheduled under LogM by the caller; called after LogM is released).
void AnalysisSession::Impl::scheduleDrains(VarShardState &VS,
                                           std::vector<uint32_t> &ToSchedule) {
  for (uint32_t S : ToSchedule)
    Pool->submit([this, &VS, S] { drainVarShard(VS, S); });
  ToSchedule.clear();
}

/// One drain round for shard \p S: claim a bounded run of committed
/// accesses under LogM (cursor bump only — no copy), replay them into the
/// shard's checker under SM reading the log and the broadcast snapshots
/// *in place*, commit completion under LogM. Sound without holding LogM
/// during the replay: WorkList entries below Claimed were appended by the
/// capture consumer under LogM *after* it committed the accesses and
/// snapshots they index, so the claim's LogM acquire happens-after all of
/// that, and the storage itself (PublishedStore chunks) never relocates.
/// Loops until no work is left, then clears Scheduled and exits — the
/// capture consumer re-submits when it commits more.
void AnalysisSession::Impl::drainVarShard(VarShardState &VS, uint32_t S) {
  const uint64_t DrainBatch = Cfg.DrainBatch;
  VarShard &Sh = *VS.Shards[S];
  const AccessLog &Log = *VS.Log;
  const ClockBroadcast &Broadcast = Log.clocks();
  for (;;) {
    uint64_t From, End;
    {
      std::lock_guard<std::mutex> G(VS.LogM);
      if (Sh.Claimed == Sh.WorkList.size()) {
        Sh.Scheduled = false;
        return;
      }
      From = Sh.Claimed;
      End = std::min(Sh.WorkList.size(), From + DrainBatch);
      Sh.Claimed = End;
    }
    std::string Err;
    double Seconds = 0;
    int64_t SpanStart = Rec ? Rec->nowUs() : 0;
    {
      std::lock_guard<std::mutex> G(Sh.SM);
      guardedTask(Err, [&] {
        Timer Clock;
        for (uint64_t K = From; K != End; ++K) {
          const DeferredAccess &A = Log.access(Sh.WorkList[K]);
          Sh.Checker->replay(A, VarId(VS.Plan.localIdOf(A.Var)),
                             Broadcast.snapshot(A.Clock),
                             A.Hard == DeferredAccess::NoClock
                                 ? nullptr
                                 : &Broadcast.snapshot(A.Hard));
        }
        Seconds = Clock.seconds();
      });
    }
    VS.Rt->DrainBatches.add();
    VS.Rt->DrainNs.add(toNs(Seconds));
    if (Rec)
      Rec->span(Rec->currentThreadTrack(), "drain:s" + std::to_string(S),
                SpanStart, Rec->nowUs() - SpanStart);
    {
      std::lock_guard<std::mutex> G(VS.LogM);
      Sh.Completed = End;
      Sh.Seconds += Seconds;
      if (!Err.empty() && Sh.Error.empty())
        Sh.Error = std::move(Err);
      VS.DrainCV.notify_all();
    }
  }
}

/// One lane of the streamed var-sharded mode. The consumer runs the
/// capture clock pass behind ingestion (exactly the sequential consumer's
/// in-place walk, but with race checks deferred into the lane's
/// AccessLog), commits the captured prefix (AccessLog::commit — snapshot
/// watermark, then access watermark) and partitions the committed range
/// into per-shard work lists under LogM; per-shard drain tasks replay the
/// deferred checks in place concurrently — the batch engine's three
/// phases, spread over time. Detectors without capture support keep the
/// plain sequential walk (bit-identical to the batch fallback). Only the
/// trace-order merge is deferred to the very end.
void AnalysisSession::Impl::varShardConsumer(LaneRuntime &Rt,
                                             VarShardState &VS) {
  const uint64_t Batch = std::max<uint64_t>(Cfg.StreamBatchEvents, 1);
  const uint32_t NumShards = std::max<uint32_t>(Cfg.VarShards, 1);
  std::vector<uint32_t> ToSchedule;
  uint64_t Consumed = 0;
  // Consumer-local mirrors of VS fields this thread itself set at attach
  // time (it is their only writer) — no LogM round-trip per chunk.
  AccessLog *Log = nullptr;
  bool Capturing = false;
  bool PlanReady = false;
  auto Stopped = [this] {
    return IngestDone.load(std::memory_order_seq_cst);
  };
  try {
    for (;;) {
      const uint64_t To = Store.waitPublished(Consumed, Rt.ParkNs, Stopped);
      if (To == Consumed)
        break; // Stopped and fully drained.
      if (!Rt.D) {
        uint32_t HintThreads, HintVars;
        {
          std::lock_guard<std::mutex> Lk(M);
          buildDetectorLocked(Rt);
          HintThreads = Live->numThreads();
          HintVars = Live->numVars();
        }
        // Attach capture, once per session: the log, the broadcast table
        // and the shard checkers are all growable, so the table sizes at
        // attach time are sizing hints, not bounds.
        auto NewLog = std::make_unique<AccessLog>(HintThreads);
        ShardReplay Replay = ShardReplay::FullHistory;
        const ShardContext *Ctx = nullptr;
        {
          std::lock_guard<std::mutex> G(Rt.SnapM);
          Capturing = Rt.D && Rt.D->beginCapture(*NewLog);
          if (Capturing) {
            Replay = Rt.D->shardReplay();
            Ctx = Rt.D->shardContext();
          }
        }
        PlanReady = Capturing && Cfg.Strategy == ShardStrategy::Modulo;
        {
          std::lock_guard<std::mutex> G(VS.LogM);
          VS.LogHolder = std::move(NewLog);
          VS.Log = VS.LogHolder.get();
          VS.Capturing = Capturing;
          VS.Replay = Replay;
          VS.Ctx = Ctx;
          VS.PlanReady = PlanReady;
          VS.Plan = ShardPlan(NumShards);
        }
        Log = VS.Log;
        if (PlanReady) {
          for (uint32_t S = 0; S != NumShards; ++S) {
            VarShard &Sh = *VS.Shards[S];
            std::lock_guard<std::mutex> G(Sh.SM);
            Sh.Checker = std::make_unique<ShardChecker>(
                Replay, VS.Plan.numLocalVars(S, HintVars), HintThreads, Ctx);
          }
        }
      }
      while (Consumed != To) {
        const uint64_t From = Consumed;
        const uint64_t End = std::min(To, From + Batch);
        Rt.Batches.add();
        Rt.BatchEventsPeak.observe(End - From);
        Rt.LagEventsPeak.observe(Store.published() - From);
        int64_t SpanStart = Rec ? Rec->nowUs() : 0;
        {
          // The capture walk itself runs lock-free against the event
          // store; only the lane snapshot mutex serializes with
          // partialResult(). Drains read the log via its own committed
          // watermark, so no LogM here.
          std::lock_guard<std::mutex> G(Rt.SnapM);
          Timer Clock;
          Store.forRange(From, End, [&](const Event &E, uint64_t I) {
            Rt.D->processEvent(E, I);
          });
          double Sec = Clock.seconds();
          Rt.Seconds += Sec;
          Rt.ConsumeNs.add(toNs(Sec));
          Consumed = End;
          Rt.Consumed = End;
        }
        // Commit outside LogM (writer-side watermark stores), then
        // partition the committed range under LogM — the order drains
        // rely on: every WorkList entry indexes a committed access.
        const uint64_t CommittedNow = Capturing ? Log->commit() : 0;
        {
          std::lock_guard<std::mutex> LG(VS.LogM);
          VS.CapturedEvents = Consumed;
          if (Log) {
            Rt.CapturedAccesses.set(Log->numAccesses());
            Rt.BroadcastClocks.set(Log->clocks().numSnapshots());
          }
          if (PlanReady) {
            for (uint64_t I = VS.Partitioned; I != CommittedNow; ++I) {
              uint32_t S = VS.Plan.shardOf(Log->access(I).Var);
              VarShard &Sh = *VS.Shards[S];
              Sh.WorkList.append(static_cast<uint32_t>(I));
              if (!Sh.Scheduled) {
                Sh.Scheduled = true;
                ToSchedule.push_back(S);
              }
            }
            VS.Partitioned = CommittedNow;
          }
        }
        if (Rec)
          Rec->span(Rt.Track, "capture", SpanStart,
                    Rec->nowUs() - SpanStart);
        scheduleDrains(VS, ToSchedule);
      }
    }

    uint32_t FinalThreads, FinalVars;
    {
      // Zero-event sessions still owe a constructed detector. Ingestion
      // is over, so these are the final table sizes — the ones the batch
      // engine would have built everything against.
      std::unique_lock<std::mutex> Lk(M);
      if (!Rt.D)
        buildDetectorLocked(Rt);
      FinalThreads = Live->numThreads();
      FinalVars = Live->numVars();
    }
    if (!Capturing) {
      // Sequential fallback lane (no capture support) — or a zero-event
      // session whose detector never attached; either way the plain walk
      // already happened and finish()/report() is the whole story, just
      // like the batch engine's fallback.
      std::lock_guard<std::mutex> G(Rt.SnapM);
      Rt.D->finish();
      Rt.Final = Rt.D->report();
      Rt.Done = true;
      return;
    }
    {
      std::lock_guard<std::mutex> G(Rt.SnapM);
      Timer Clock;
      Rt.D->finish();
      Rt.Seconds += Clock.seconds();
    }
    // The clock pass is over; make sure its entire log is committed
    // (idempotent when the last chunk already was).
    const uint64_t Committed = Log->commit();
    {
      std::lock_guard<std::mutex> G(VS.LogM);
      if (!VS.PlanReady) {
        // FrequencyBalanced: the plan is a pure function of the full
        // capture counts, so it is fixed here — shard checks for this
        // strategy start once the clock pass retires (the modulo plan
        // needs no counts and streams all along). Counts are sized to the
        // final tables, so the plan is exactly the batch engine's.
        std::vector<uint64_t> Counts(FinalVars, 0);
        Log->forEachAccess(0, Committed, [&](const DeferredAccess &A,
                                             uint64_t) {
          ++Counts[A.Var.value()];
        });
        VS.Plan = ShardPlan::balancedByFrequency(NumShards, Counts);
        VS.PlanReady = true;
        PlanReady = true;
        for (uint32_t S = 0; S != NumShards; ++S) {
          VarShard &Sh = *VS.Shards[S];
          std::lock_guard<std::mutex> SG(Sh.SM);
          Sh.Checker = std::make_unique<ShardChecker>(
              VS.Replay, VS.Plan.numLocalVars(S, FinalVars), FinalThreads,
              VS.Ctx);
        }
        Log->forEachAccess(0, Committed, [&](const DeferredAccess &A,
                                             uint64_t I) {
          VS.Shards[VS.Plan.shardOf(A.Var)]->WorkList.append(
              static_cast<uint32_t>(I));
        });
        VS.Partitioned = Committed;
      }
      for (uint32_t S = 0; S != NumShards; ++S) {
        VarShard &Sh = *VS.Shards[S];
        if (Sh.Completed != Sh.WorkList.size() && !Sh.Scheduled) {
          Sh.Scheduled = true;
          ToSchedule.push_back(S);
        }
      }
    }
    scheduleDrains(VS, ToSchedule);
    {
      // Wait for the drains to retire every shard of this final epoch.
      std::unique_lock<std::mutex> G(VS.LogM);
      VS.DrainCV.wait(G, [&] {
        for (auto &Sh : VS.Shards)
          if (Sh->Completed != Sh->WorkList.size())
            return false;
        return true;
      });
    }
    // Phase 3 — the deterministic trace-order merge, identical to the
    // batch engine's. Everything is quiescent now (drains exited, no more
    // publication), but the locks are cheap and keep the invariants
    // simple.
    std::string Err;
    std::vector<std::vector<RaceInstance>> PerShard(NumShards);
    double ShardSeconds = 0;
    for (uint32_t S = 0; S != NumShards; ++S) {
      VarShard &Sh = *VS.Shards[S];
      {
        std::lock_guard<std::mutex> G(VS.LogM);
        if (!Sh.Error.empty() && Err.empty())
          Err = "var shard " + std::to_string(S) + ": " + Sh.Error;
        ShardSeconds += Sh.Seconds;
      }
      std::lock_guard<std::mutex> SG(Sh.SM);
      if (Sh.Checker)
        PerShard[S] = std::move(Sh.Checker->findings());
    }
    RaceReport Merged = ShardedAccessHistory::mergeInTraceOrder(PerShard);
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.Seconds += ShardSeconds;
    if (!Err.empty())
      Rt.LaneStatus = Status(StatusCode::AnalysisError, std::move(Err));
    else
      Rt.Final = std::move(Merged);
    Rt.Done = true;
  } catch (const std::exception &E) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, E.what());
    Rt.Done = true;
  } catch (...) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, "unknown exception");
    Rt.Done = true;
  }
}

// ---- Session lifecycle ------------------------------------------------------

/// Registers the session's instruments and timeline tracks and caches the
/// handles in Impl / the lane runtimes. One call, before any consumer
/// starts; a disabled registry makes every handle null (the zero-cost
/// path), so instrumented code never re-checks the config.
void AnalysisSession::Impl::registerObservability() {
  Reg = std::make_unique<MetricsRegistry>(Cfg.Metrics);
  if (Cfg.Timeline)
    Rec = std::make_unique<TraceRecorder>();
  MetricsScope Root(Reg.get(), "");
  IngestParseNs = Root.counter("ingest.parse_ns");
  IngestLockWaitNs = Root.counter("ingest.lock_wait_ns");
  IngestValidateNs = Root.counter("ingest.validate_ns");
  PublishBatches = Root.counter("publish.batches");
  PublishBatchPeak = Root.highWater("publish.batch_events_peak");
  PublishedGauge = Root.gauge("publish.events");
  if (Cfg.Mode == RunMode::Fused || Cfg.Mode == RunMode::Windowed)
    ConsumerParkNs = Root.counter("consume.park_ns");
  if (Cfg.Mode == RunMode::Windowed) {
    WindowsDispatched = Root.counter("window.dispatched");
    WindowsRetired = Root.gauge("window.retired");
  }
  if (Rec) {
    IngestTrack = Rec->track("ingest");
    if (Cfg.Mode == RunMode::Windowed)
      BuilderTrack = Rec->track("window-builder");
  }
  for (size_t L = 0; L != Lanes.size(); ++L) {
    LaneRuntime &Rt = *Lanes[L];
    MetricsScope S(Reg.get(), "lane." + std::to_string(L) + ".");
    Rt.ConsumeNs = S.counter("consume_ns");
    Rt.ParkNs = S.counter("park_ns");
    Rt.Batches = S.counter("batches");
    Rt.BatchEventsPeak = S.highWater("batch_events_peak");
    Rt.LagEventsPeak = S.highWater("lag_events_peak");
    if (Cfg.Mode == RunMode::Windowed) {
      Rt.WindowsChecked = S.counter("windows_checked");
      Rt.WindowCheckNs = S.counter("window_check_ns");
    }
    if (Cfg.Mode == RunMode::VarSharded) {
      Rt.DrainNs = S.counter("drain_ns");
      Rt.DrainBatches = S.counter("drain_batches");
      Rt.CapturedAccesses = S.gauge("captured_accesses");
      Rt.BroadcastClocks = S.gauge("broadcast_clocks");
    }
    // Lanes with equal labels share a timeline track; fine — their spans
    // are distinguishable by time, and label collisions are rare.
    if (Rec)
      Rt.Track = Rec->track("lane:" + Rt.Fallback);
  }
}

void AnalysisSession::Impl::start() {
  SessionStatus = Cfg.validate();
  if (!SessionStatus.ok()) {
    Reg = std::make_unique<MetricsRegistry>(false); // Keep Reg non-null.
    return;
  }
  Lanes.reserve(Cfg.Detectors.size());
  for (const DetectorSpec &S : Cfg.Detectors) {
    auto Rt = std::make_unique<LaneRuntime>();
    Rt->Label = S.Name;
    Rt->Fallback = S.Name.empty() ? detectorKindName(S.Kind) : S.Name;
    Rt->Make =
        S.Kind == DetectorKind::Custom ? S.Make : makeDetectorFactory(S.Kind);
    Lanes.push_back(std::move(Rt));
  }
  registerObservability();
  switch (Cfg.Mode) {
  case RunMode::Sequential:
    for (auto &Rt : Lanes)
      Consumers.emplace_back([this, R = Rt.get()] { sequentialConsumer(*R); });
    break;
  case RunMode::Fused:
    Consumers.emplace_back([this] { fusedConsumer(); });
    break;
  case RunMode::Windowed:
    Pool = std::make_unique<ThreadPool>(Cfg.Threads);
    Pool->attachTelemetry(MetricsScope(Reg.get(), "pool."), Rec.get());
    Consumers.emplace_back([this] { windowedConsumer(); });
    break;
  case RunMode::VarSharded:
    Pool = std::make_unique<ThreadPool>(Cfg.Threads);
    Pool->attachTelemetry(MetricsScope(Reg.get(), "pool."), Rec.get());
    VarStates.reserve(Lanes.size());
    for (size_t L = 0; L != Lanes.size(); ++L) {
      auto VS = std::make_unique<VarShardState>();
      VS->Rt = Lanes[L].get();
      for (uint32_t S = 0; S != std::max<uint32_t>(Cfg.VarShards, 1); ++S)
        VS->Shards.push_back(std::make_unique<VarShard>());
      VarStates.push_back(std::move(VS));
    }
    for (size_t L = 0; L != Lanes.size(); ++L)
      Consumers.emplace_back(
          [this, R = Lanes[L].get(), V = VarStates[L].get()] {
            varShardConsumer(*R, *V);
          });
    break;
  }
}

void AnalysisSession::Impl::stopConsumers() {
  // seq_cst store, then wake: the store's Dekker handshake — a consumer
  // that registered as a sleeper before this store is woken; one that
  // registers after it sees the flag in its wait predicate.
  IngestDone.store(true, std::memory_order_seq_cst);
  Store.wakeAll();
  for (std::thread &T : Consumers)
    T.join();
  {
    // partialResult() (possibly on a monitoring thread) reads the
    // consumer count under M; clearing must synchronize with it.
    std::lock_guard<std::mutex> Lk(M);
    Consumers.clear();
  }
  if (Pool)
    Pool->wait(); // In-flight stragglers, if any.
}

/// Common precondition of every ingest call.
Status AnalysisSession::Impl::ingestGate() {
  if (!SessionStatus.ok())
    return SessionStatus;
  if (Finished)
    return Status(StatusCode::InvalidState,
                  "session is finished; feeds are no longer accepted");
  return Status::success();
}

/// Validates events [Validated, Live->size()) in trace order; stops at
/// the first violation, which sticks in SessionStatus. Returns true while
/// clean. Caller holds M.
bool AnalysisSession::Impl::validateNewLocked() {
  uint64_t T0 = IngestValidateNs.enabled() ? obsNowNs() : 0;
  bool Clean = validateNewLockedInner();
  if (T0)
    IngestValidateNs.add(obsNowNs() - T0);
  return Clean;
}

bool AnalysisSession::Impl::validateNewLockedInner() {
  const std::vector<Event> &Events = Live->events();
  while (Validated < Events.size()) {
    Validator.feed(Events[Validated], Validated, *Live);
    if (!Validator.ok()) {
      const TraceViolation &V = Validator.result().Violations.front();
      SessionStatus =
          Status(StatusCode::ValidationError,
                 "event " + std::to_string(V.Index) + ": " + V.Message +
                     " (events up to " + std::to_string(Validated) +
                     " were analyzed)");
      return false;
    }
    ++Validated;
  }
  return true;
}

/// Advances the published prefix to the validated one: mirrors the newly
/// validated events into the store (stable storage, one copy made on the
/// ingest side), then publishes them with a single watermark store —
/// which is also what wakes parked consumers. Caller holds M; the store's
/// appended count always equals its watermark between calls.
void AnalysisSession::Impl::publishLocked() {
  uint64_t Prev = Store.size();
  if (Validated == Prev)
    return;
  const std::vector<Event> &Events = Live->events();
  for (uint64_t I = Prev; I != Validated; ++I)
    Store.append(Events[I]);
  Store.publish(Validated);
  PublishBatches.add();
  PublishBatchPeak.observe(Validated - Prev);
  PublishedGauge.set(Validated);
  if (Rec)
    Rec->counter("published", Rec->nowUs(), Validated);
}

/// Mid-stream view of a windowed lane: the longest prefix of consecutive
/// retired windows, merged in window order — never a torn merge, because
/// a window either contributes whole or not at all.
void AnalysisSession::Impl::snapshotWindowedLane(size_t L, LaneReport &Lane) {
  std::shared_ptr<WindowEpoch> Ep;
  {
    std::lock_guard<std::mutex> Lk(M);
    Ep = WinEpoch;
  }
  if (!Ep)
    return;
  std::lock_guard<std::mutex> G(Ep->EM);
  std::string Base;
  for (const std::unique_ptr<WindowEntry> &W : Ep->Windows) {
    const WindowSlot &S = W->Slots[L];
    if (!S.Done)
      break;
    if (Base.empty())
      Base = S.Name;
    if (!S.Error.empty()) {
      Lane.LaneStatus = Status(StatusCode::AnalysisError, S.Error);
      break;
    }
    Lane.Report.mergeFrom(S.Report);
    Lane.Seconds += S.Seconds;
    Lane.EventsConsumed = W->EndIdx;
  }
  if (!Base.empty())
    Lane.DetectorName =
        Base + "[w=" + std::to_string(Cfg.WindowEvents) + "]";
}

/// Mid-stream view of a streamed var-sharded lane: merges every finding
/// whose later event lies below the *fully checked* frontier — the
/// smallest trace index any shard has yet to replay past — so the report
/// is exactly the sequential detector's over that prefix (no torn
/// merges).
void AnalysisSession::Impl::snapshotVarShardLane(VarShardState &VS,
                                                 LaneReport &Lane) {
  uint64_t Bound = 0;
  double ShardSeconds = 0;
  {
    std::lock_guard<std::mutex> G(VS.LogM);
    if (!VS.Capturing) {
      // Fallback lane: the live detector report (snapshotLanes already
      // copied it under SnapM).
      return;
    }
    if (!VS.PlanReady || !VS.Log)
      return; // Clock pass only so far: no checked prefix yet.
    Bound = VS.CapturedEvents;
    for (const std::unique_ptr<VarShard> &Sh : VS.Shards) {
      ShardSeconds += Sh->Seconds;
      if (Sh->Completed != Sh->WorkList.size())
        Bound = std::min(
            Bound, VS.Log->access(Sh->WorkList[Sh->Completed]).Idx);
    }
  }
  std::vector<std::vector<RaceInstance>> PerShard(VS.Shards.size());
  for (size_t S = 0; S != VS.Shards.size(); ++S) {
    VarShard &Sh = *VS.Shards[S];
    std::lock_guard<std::mutex> G(Sh.SM);
    if (!Sh.Checker)
      return; // Checkers are being built; no checked prefix yet.
    for (const RaceInstance &Inst : Sh.Checker->findings()) {
      if (Inst.LaterIdx >= Bound)
        break; // Findings are ascending in LaterIdx within a shard.
      PerShard[S].push_back(Inst);
    }
  }
  Lane.Report = ShardedAccessHistory::mergeInTraceOrder(PerShard);
  Lane.Seconds += ShardSeconds;
}

AnalysisResult AnalysisSession::Impl::snapshotLanes(bool Partial) {
  AnalysisResult R;
  R.Partial = Partial;
  R.Streamed = true;
  const bool Metrics = Reg && Reg->enabled();
  R.Lanes.reserve(Lanes.size());
  for (size_t L = 0; L != Lanes.size(); ++L) {
    LaneRuntime &Rt = *Lanes[L];
    LaneReport Lane;
    bool Done;
    std::vector<MetricSample> DetectorTel;
    {
      std::lock_guard<std::mutex> G(Rt.SnapM);
      Lane.DetectorName = Rt.Name.empty() ? Rt.Fallback : Rt.Name;
      Lane.LaneStatus = Rt.LaneStatus;
      Lane.Seconds = Rt.Seconds;
      Lane.EventsConsumed = Rt.Consumed;
      Lane.Restarts = 0; // Structurally: growable state never restarts.
      Done = Rt.Done;
      if (Done)
        Lane.Report = Rt.Final;
      else if (Rt.D)
        Lane.Report = Rt.D->report(); // Mid-stream copy: races so far.
      if (Metrics && Rt.D)
        Rt.D->telemetry(DetectorTel);
    }
    if (!Done && Cfg.Mode == RunMode::Windowed) {
      Lane.Seconds = 0;
      Lane.EventsConsumed = 0;
      snapshotWindowedLane(L, Lane);
    } else if (!Done && Cfg.Mode == RunMode::VarSharded) {
      snapshotVarShardLane(*VarStates[L], Lane);
    }
    if (Metrics) {
      Lane.Telemetry =
          Reg->snapshotPrefix("lane." + std::to_string(L) + ".");
      Lane.Telemetry.insert(Lane.Telemetry.end(),
                            std::make_move_iterator(DetectorTel.begin()),
                            std::make_move_iterator(DetectorTel.end()));
      std::sort(Lane.Telemetry.begin(), Lane.Telemetry.end(),
                [](const MetricSample &A, const MetricSample &B) {
                  return A.Name < B.Name;
                });
    }
    R.Lanes.push_back(std::move(Lane));
  }
  if (Metrics) {
    // Session-level block: everything that is not a lane.<i>.* metric
    // (ingest/publish/pool/window/consume scopes).
    R.Telemetry = Reg->snapshot();
    R.Telemetry.erase(
        std::remove_if(R.Telemetry.begin(), R.Telemetry.end(),
                       [](const MetricSample &S) {
                         return S.Name.rfind("lane.", 0) == 0;
                       }),
        R.Telemetry.end());
  }
  return R;
}

// ---- Public surface ---------------------------------------------------------

AnalysisSession::AnalysisSession(AnalysisConfig Config)
    : I(std::make_unique<Impl>()) {
  I->Cfg = std::move(Config);
  I->start();
}

AnalysisSession::~AnalysisSession() {
  if (I)
    I->stopConsumers();
}

const AnalysisConfig &AnalysisSession::config() const { return I->Cfg; }
const Status &AnalysisSession::status() const { return I->SessionStatus; }

ThreadId AnalysisSession::declareThread(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return ThreadId(I->Owned.threadTable().intern(Name));
}
LockId AnalysisSession::declareLock(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return LockId(I->Owned.lockTable().intern(Name));
}
VarId AnalysisSession::declareVar(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return VarId(I->Owned.varTable().intern(Name));
}
LocId AnalysisSession::declareLoc(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return LocId(I->Owned.locTable().intern(Name));
}

Status AnalysisSession::declareTablesFrom(const Trace &T) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  std::lock_guard<std::mutex> Lk(I->M);
  if (I->Ingested || I->Owned.size() != 0)
    return Status(StatusCode::InvalidState,
                  "declareTablesFrom requires an empty session");
  I->Owned.adoptTables(T);
  I->Ingested = true;
  return Status::success();
}

Status AnalysisSession::feed(const Event &E) {
  return feed(std::vector<Event>{E});
}

Status AnalysisSession::feed(const std::vector<Event> &Batch) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  Timer Ingest;
  int64_t SpanStart = I->Rec ? I->Rec->nowUs() : 0;
  {
    std::unique_lock<std::mutex> Lk(I->M, std::defer_lock);
    lockCharged(Lk, I->IngestLockWaitNs);
    I->Ingested = true;
    for (size_t K = 0; K != Batch.size(); ++K) {
      if (!I->Owned.containsIds(Batch[K]))
        return Status(StatusCode::ValidationError,
                      "event " + std::to_string(K) +
                          " references undeclared ids; declare names (or "
                          "declareTablesFrom) before feeding");
    }
    for (const Event &E : Batch)
      I->Owned.append(E);
    bool Clean = I->validateNewLocked();
    I->publishLocked(); // The watermark store doubles as the wake.
    I->IngestSeconds += Ingest.seconds();
    if (!Clean)
      return I->SessionStatus;
  }
  if (I->Rec)
    I->Rec->span(I->IngestTrack, "feed", SpanStart,
                 I->Rec->nowUs() - SpanStart);
  return Status::success();
}

Status AnalysisSession::feedTrace(const Trace &T) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  Timer Ingest;
  int64_t SpanStart = I->Rec ? I->Rec->nowUs() : 0;
  {
    std::unique_lock<std::mutex> Lk(I->M, std::defer_lock);
    lockCharged(Lk, I->IngestLockWaitNs);
    if (I->Ingested || I->Owned.size() != 0)
      return Status(StatusCode::InvalidState,
                    "feedTrace requires an empty session (it adopts the "
                    "trace's id tables)");
    I->Ingested = true;
    I->Owned.adoptTables(T);
    I->Owned.reserve(T.size());
    for (const Event &E : T.events())
      I->Owned.append(E);
    bool Clean = I->validateNewLocked();
    I->publishLocked(); // The watermark store doubles as the wake.
    I->IngestSeconds += Ingest.seconds();
    if (!Clean)
      return I->SessionStatus;
  }
  if (I->Rec)
    I->Rec->span(I->IngestTrack, "feed-trace", SpanStart,
                 I->Rec->nowUs() - SpanStart);
  return Status::success();
}

Status AnalysisSession::feedFile(const std::string &Path) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Ingested || I->Owned.size() != 0)
      return Status(StatusCode::InvalidState,
                    "feedFile requires an empty session (one file per "
                    "session; it adopts the file's id tables)");
    I->Ingested = true;
  }
  Timer Ingest;
  ChunkedTraceReader Reader(Path);
  // The reader's internal trace becomes the live published trace while
  // the loop runs: chunk parsing mutates it under the session mutex, and
  // every validated chunk publishes immediately — for text inputs too,
  // whose id tables intern lazily as lines parse. Growable detector state
  // makes that safe: lanes built against the tables of an early chunk
  // admit later-interned ids in place, so analysis overlaps ingestion for
  // both formats and no lane ever restarts.
  bool Poisoned = false;
  while (!Reader.done() && !Poisoned) {
    int64_t SpanStart = I->Rec ? I->Rec->nowUs() : 0;
    {
      std::unique_lock<std::mutex> Lk(I->M, std::defer_lock);
      lockCharged(Lk, I->IngestLockWaitNs);
      I->Live = &Reader.current();
      uint64_t P0 = I->IngestParseNs.enabled() ? obsNowNs() : 0;
      Reader.nextChunk();
      if (P0)
        I->IngestParseNs.add(obsNowNs() - P0);
      I->Live = &Reader.current();
      if (Reader.ok()) {
        // Only the §2.1-validated prefix may reach live lanes; a
        // violation freezes publication (and ingestion) right here.
        Poisoned = !I->validateNewLocked();
        I->publishLocked(); // No-op when nothing new validated.
      }
    }
    if (I->Rec)
      I->Rec->span(I->IngestTrack, "chunk", SpanStart,
                   I->Rec->nowUs() - SpanStart);
  }
  Status ReadStatus = Reader.status();
  {
    std::lock_guard<std::mutex> Lk(I->M);
    // Move the trace into the session before the reader dies. On success
    // everything validated publishes (covers the text path); on failure
    // the already published prefix stays analyzable and the first error
    // sticks.
    I->Owned = Reader.take();
    I->Live = &I->Owned;
    if (!Poisoned)
      I->validateNewLocked();
    if (I->SessionStatus.ok() && !ReadStatus.ok())
      I->SessionStatus = ReadStatus;
    I->publishLocked();
    I->IngestSeconds += Ingest.seconds();
  }
  return I->SessionStatus;
}

uint64_t AnalysisSession::eventsFed() const {
  std::lock_guard<std::mutex> Lk(I->M);
  return I->Live->size();
}

bool AnalysisSession::finished() const {
  std::lock_guard<std::mutex> Lk(I->M);
  return I->Finished;
}

AnalysisSession::Progress AnalysisSession::progress() const {
  Progress P;
  // Watermark first: it is monotone and lanes never pass it, so the
  // min-consumed read below can only be <= this snapshot.
  P.Published = I->Store.published();
  {
    std::lock_guard<std::mutex> Lk(I->M);
    P.Fed = I->Live->size();
  }
  uint64_t Min = P.Published;
  if (I->Cfg.Mode == RunMode::Windowed) {
    Min = std::min(Min, I->WinBuilt.load(std::memory_order_relaxed));
  } else {
    for (auto &Rt : I->Lanes) {
      std::lock_guard<std::mutex> G(Rt->SnapM);
      Min = std::min(Min, Rt->Consumed);
    }
  }
  P.MinLaneConsumed = Min;
  return P;
}

AnalysisResult AnalysisSession::partialResult() {
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Finished) {
      AnalysisResult R;
      R.Overall = Status(StatusCode::InvalidState,
                         "session is finished; partialResult is only "
                         "available mid-stream");
      return R;
    }
  }
  AnalysisResult R = I->snapshotLanes(/*Partial=*/true);
  // Read the published watermark *after* the lane snapshots: the
  // watermark is monotone and consumers never pass it, so every lane's
  // EventsConsumed (and every reported race index) stays within
  // EventsIngested in one snapshot.
  R.EventsIngested = I->Store.published();
  {
    // Session status and ingest timing are producer-written under M —
    // partialResult may run concurrently with the producer thread.
    std::lock_guard<std::mutex> Lk(I->M);
    R.Overall = I->SessionStatus;
    R.IngestSeconds = I->IngestSeconds;
    R.ThreadsUsed = static_cast<unsigned>(
        std::max<size_t>(I->Consumers.size(), 1) +
        (I->Pool ? I->Pool->numThreads() : 0));
  }
  R.WallSeconds = I->Wall.seconds();
  if (I->Cfg.Mode == RunMode::VarSharded)
    R.VarShards = I->Cfg.VarShards;
  return R;
}

AnalysisResult AnalysisSession::finish() {
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Finished) {
      AnalysisResult R;
      R.Overall = Status(StatusCode::InvalidState, "finish() already called");
      return R;
    }
    I->Finished = true;
  }
  unsigned NumConsumers = static_cast<unsigned>(I->Consumers.size());
  I->stopConsumers();

  AnalysisResult R = I->snapshotLanes(/*Partial=*/false);
  switch (I->Cfg.Mode) {
  case RunMode::Sequential:
  case RunMode::Fused:
    R.ThreadsUsed = std::max(NumConsumers, 1u);
    break;
  case RunMode::Windowed:
    // Mirrors the batch engine's shape: NumShards is the window count and
    // ThreadsUsed the pool width. No pool exists when the config failed
    // validation (start() bailed before creating one).
    R.NumShards = I->FinalNumWindows;
    if (I->Pool) {
      R.ThreadsUsed = I->Pool->numThreads();
      R.TasksStolen = I->Pool->tasksStolen();
    }
    break;
  case RunMode::VarSharded:
    R.NumShards = 1;
    R.VarShards = I->Cfg.VarShards;
    if (I->Pool) {
      R.ThreadsUsed = I->Pool->numThreads();
      R.TasksStolen = I->Pool->tasksStolen();
    }
    break;
  }
  R.Overall = I->SessionStatus;
  R.EventsIngested = I->Store.published();
  R.WallSeconds = I->Wall.seconds();
  R.IngestSeconds = I->IngestSeconds;
  return R;
}

const Trace &AnalysisSession::trace() const { return *I->Live; }

std::string AnalysisSession::exportTimeline() const {
  return I->Rec ? I->Rec->exportJson() : std::string();
}
