//===- api/AnalysisSession.cpp ------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The streaming engine: a single-producer / multi-consumer publication
// protocol over a growable trace. The producer (feed/feedFile on the
// caller's thread) appends events and advances Published under the session
// mutex; each lane's consumer thread copies bounded batches of the
// published prefix out under the same mutex and runs its detector on them
// outside it, so detector work — the expensive part — overlaps both
// ingestion and the other lanes. Consumers never hold references into the
// trace across an unlock (the event vector may reallocate), and all
// per-lane state shared with partialResult() sits behind a per-lane
// snapshot mutex. Batch modes (Windowed/VarSharded) reuse the pipeline
// engine at finish(); the mode mapping lives in pipelineOptionsFor().
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"

#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "support/Timer.h"
#include "trace/TraceValidator.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace rapid;

namespace {

/// The id-table sizes a detector was constructed against. Location ids are
/// deliberately absent: detectors never size state by location, so a new
/// location must not trigger a restart.
struct TableDims {
  uint32_t Threads = 0;
  uint32_t Locks = 0;
  uint32_t Vars = 0;

  bool operator==(const TableDims &O) const {
    return Threads == O.Threads && Locks == O.Locks && Vars == O.Vars;
  }
  bool operator!=(const TableDims &O) const { return !(*this == O); }
};

TableDims dimsOf(const Trace &T) {
  return TableDims{T.numThreads(), T.numLocks(), T.numVars()};
}

/// Maps a validated config onto the batch pipeline engine.
PipelineOptions pipelineOptionsFor(const AnalysisConfig &Cfg) {
  PipelineOptions Opts;
  Opts.NumThreads = Cfg.Threads;
  Opts.Parallel = Cfg.Mode != RunMode::Fused;
  Opts.ShardEvents = Cfg.Mode == RunMode::Windowed ? Cfg.WindowEvents : 0;
  Opts.VarShards = Cfg.Mode == RunMode::VarSharded ? Cfg.VarShards : 0;
  Opts.VarShardStrategy = Cfg.Strategy;
  return Opts;
}

AnalysisPipeline buildPipeline(const AnalysisConfig &Cfg) {
  AnalysisPipeline P(pipelineOptionsFor(Cfg));
  for (const DetectorSpec &S : Cfg.Detectors) {
    DetectorFactory Make =
        S.Kind == DetectorKind::Custom ? S.Make : makeDetectorFactory(S.Kind);
    P.addDetector(std::move(Make), S.Name);
  }
  return P;
}

/// Converts the pipeline's result into the unified type; stringly lane
/// errors become structured AnalysisError statuses.
AnalysisResult convertPipelineResult(PipelineResult &&R, uint64_t NumEvents) {
  AnalysisResult Out;
  Out.Lanes.reserve(R.Lanes.size());
  for (LaneResult &L : R.Lanes) {
    LaneReport Lane;
    Lane.DetectorName = std::move(L.DetectorName);
    Lane.Report = std::move(L.Report);
    Lane.Seconds = L.Seconds;
    if (!L.Error.empty())
      Lane.LaneStatus = Status(StatusCode::AnalysisError, std::move(L.Error));
    else
      Lane.EventsConsumed = NumEvents;
    Out.Lanes.push_back(std::move(Lane));
  }
  Out.EventsIngested = NumEvents;
  Out.WallSeconds = R.Seconds;
  Out.IngestSeconds = R.IngestSeconds;
  Out.NumShards = R.NumShards;
  Out.VarShards = R.VarShards;
  Out.TasksStolen = R.TasksStolen;
  Out.ThreadsUsed = R.ThreadsUsed;
  return Out;
}

} // namespace

AnalysisResult rapid::analyzeTrace(const AnalysisConfig &Config,
                                   const Trace &T) {
  if (Status V = Config.validate(); !V.ok()) {
    AnalysisResult R;
    R.Overall = std::move(V);
    return R;
  }
  return convertPipelineResult(buildPipeline(Config).run(T), T.size());
}

// ---- Session internals ------------------------------------------------------

namespace {

/// Per-lane runtime shared between its consumer thread and
/// partialResult()/finish(). Fields below SnapM are guarded by it; the
/// detector pointer is owned by the consumer but snapshot-read (report
/// copy, name) under SnapM as well.
struct LaneRuntime {
  std::string Label;    ///< Config name override ("" = detector's name()).
  std::string Fallback; ///< Kind name, for labeling failed lanes.
  DetectorFactory Make;

  std::mutex SnapM;
  std::unique_ptr<Detector> D;
  std::string Name;      ///< Resolved once the detector first exists.
  RaceReport Final;      ///< Set by the consumer at drain time.
  Status LaneStatus;
  uint64_t Consumed = 0; ///< Events processed (post-restart progress).
  uint64_t Restarts = 0;
  double Seconds = 0;    ///< Processing time, excluding waits.
  bool Done = false;
};

} // namespace

struct AnalysisSession::Impl {
  AnalysisConfig Cfg;
  Status SessionStatus; ///< Sticky: config validation / ingestion failure.
  Timer Wall;
  double IngestSeconds = 0;

  // Publication state (guarded by M, signaled via CV).
  std::mutex M;
  std::condition_variable CV;
  Trace Owned;
  const Trace *Live = &Owned; ///< Points into the reader during feedFile.
  uint64_t Published = 0;
  bool IngestDone = false;
  bool Finished = false;
  bool Ingested = false; ///< Any feed/declare has happened.

  /// Producer-side §2.1 validation: detectors assume the trace axioms
  /// (e.g. releases match held locks), so only the validated prefix is
  /// ever published to lanes. Validated counts events certified OK; the
  /// first violation sticks in SessionStatus and freezes publication.
  StreamingTraceValidator Validator;
  uint64_t Validated = 0;

  bool Streaming = false; ///< Sequential/Fused: consumer threads running.
  std::vector<std::unique_ptr<LaneRuntime>> Lanes;
  std::vector<std::thread> Consumers;

  void start();
  void sequentialConsumer(LaneRuntime &Rt);
  void fusedConsumer();
  void buildDetectorLocked(LaneRuntime &Rt);
  void stopConsumers();
  Status ingestGate();
  bool validateNewLocked();
  void publishLocked();
  AnalysisResult snapshotLanes(bool Partial);
};

/// Builds \p Rt's detector against the current tables. Caller holds M;
/// takes SnapM (M → SnapM is the session's one lock order).
void AnalysisSession::Impl::buildDetectorLocked(LaneRuntime &Rt) {
  std::lock_guard<std::mutex> G(Rt.SnapM);
  Rt.D = Rt.Make(*Live);
  Rt.Name = Rt.Label.empty() ? Rt.D->name() : Rt.Label;
}

/// One lane of the sequential streaming mode: wait for published events,
/// copy a bounded batch out, process it outside the session lock. Table
/// growth rebuilds the detector and replays the prefix (bit-for-bit with
/// the batch run; see the header comment).
void AnalysisSession::Impl::sequentialConsumer(LaneRuntime &Rt) {
  const uint64_t Batch = std::max<uint64_t>(Cfg.StreamBatchEvents, 1);
  std::vector<Event> Buf;
  uint64_t Consumed = 0;
  TableDims Built;
  try {
    for (;;) {
      uint64_t From;
      {
        std::unique_lock<std::mutex> Lk(M);
        CV.wait(Lk, [&] { return IngestDone || Published > Consumed; });
        TableDims Cur = dimsOf(*Live);
        if (Rt.D && Cur != Built) {
          std::lock_guard<std::mutex> G(Rt.SnapM);
          Rt.D.reset();
          Rt.Consumed = Consumed = 0;
          ++Rt.Restarts;
        }
        if (Published == Consumed) {
          if (IngestDone)
            break;
          continue;
        }
        if (!Rt.D) {
          buildDetectorLocked(Rt);
          Built = Cur;
        }
        From = Consumed;
        uint64_t To = std::min(Published, From + Batch);
        const std::vector<Event> &Events = Live->events();
        Buf.assign(Events.begin() + static_cast<ptrdiff_t>(From),
                   Events.begin() + static_cast<ptrdiff_t>(To));
      }
      {
        std::lock_guard<std::mutex> G(Rt.SnapM);
        Timer Clock;
        for (uint64_t K = 0; K != Buf.size(); ++K)
          Rt.D->processEvent(Buf[K], From + K);
        Rt.Seconds += Clock.seconds();
        Consumed = From + Buf.size();
        Rt.Consumed = Consumed;
      }
    }
    {
      // Zero-event sessions still owe a constructed detector (runDetector
      // on an empty trace constructs, finishes and names one too).
      std::unique_lock<std::mutex> Lk(M);
      if (!Rt.D)
        buildDetectorLocked(Rt);
    }
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.D->finish();
    Rt.Final = Rt.D->report();
    Rt.Done = true;
  } catch (const std::exception &E) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, E.what());
    Rt.Done = true;
  } catch (...) {
    std::lock_guard<std::mutex> G(Rt.SnapM);
    Rt.LaneStatus = Status(StatusCode::AnalysisError, "unknown exception");
    Rt.Done = true;
  }
}

/// The fused streaming mode: one consumer drives every lane through the
/// same batch walk, so N detectors cost one pass over the published
/// prefix. A lane that throws is marked failed and dropped from the walk;
/// the others continue.
void AnalysisSession::Impl::fusedConsumer() {
  const uint64_t Batch = std::max<uint64_t>(Cfg.StreamBatchEvents, 1);
  std::vector<Event> Buf;
  uint64_t Consumed = 0;
  TableDims Built;
  bool Constructed = false;
  std::vector<bool> Failed(Lanes.size(), false);

  auto failLane = [&](size_t L, const char *What) {
    std::lock_guard<std::mutex> G(Lanes[L]->SnapM);
    Lanes[L]->LaneStatus = Status(StatusCode::AnalysisError, What);
    Lanes[L]->Done = true;
    Failed[L] = true;
  };
  auto guarded = [&](size_t L, auto &&Body) {
    if (Failed[L])
      return;
    try {
      Body();
    } catch (const std::exception &E) {
      failLane(L, E.what());
    } catch (...) {
      failLane(L, "unknown exception");
    }
  };

  for (;;) {
    uint64_t From;
    {
      std::unique_lock<std::mutex> Lk(M);
      CV.wait(Lk, [&] { return IngestDone || Published > Consumed; });
      TableDims Cur = dimsOf(*Live);
      if (Constructed && Cur != Built) {
        for (size_t L = 0; L != Lanes.size(); ++L) {
          if (Failed[L])
            continue;
          std::lock_guard<std::mutex> G(Lanes[L]->SnapM);
          Lanes[L]->D.reset();
          Lanes[L]->Consumed = 0;
          ++Lanes[L]->Restarts;
        }
        Consumed = 0;
        Constructed = false;
      }
      if (Published == Consumed) {
        if (IngestDone)
          break;
        continue;
      }
      if (!Constructed) {
        for (size_t L = 0; L != Lanes.size(); ++L)
          guarded(L, [&] { buildDetectorLocked(*Lanes[L]); });
        Built = Cur;
        Constructed = true;
      }
      From = Consumed;
      uint64_t To = std::min(Published, From + Batch);
      const std::vector<Event> &Events = Live->events();
      Buf.assign(Events.begin() + static_cast<ptrdiff_t>(From),
                 Events.begin() + static_cast<ptrdiff_t>(To));
    }
    for (size_t L = 0; L != Lanes.size(); ++L) {
      guarded(L, [&] {
        LaneRuntime &Rt = *Lanes[L];
        std::lock_guard<std::mutex> G(Rt.SnapM);
        Timer Clock;
        for (uint64_t K = 0; K != Buf.size(); ++K)
          Rt.D->processEvent(Buf[K], From + K);
        Rt.Seconds += Clock.seconds();
        Rt.Consumed = From + Buf.size();
      });
    }
    Consumed = From + Buf.size();
  }
  {
    std::unique_lock<std::mutex> Lk(M);
    if (!Constructed)
      for (size_t L = 0; L != Lanes.size(); ++L)
        guarded(L, [&] { buildDetectorLocked(*Lanes[L]); });
  }
  for (size_t L = 0; L != Lanes.size(); ++L) {
    guarded(L, [&] {
      LaneRuntime &Rt = *Lanes[L];
      std::lock_guard<std::mutex> G(Rt.SnapM);
      Rt.D->finish();
      Rt.Final = Rt.D->report();
      Rt.Done = true;
    });
  }
}

void AnalysisSession::Impl::start() {
  SessionStatus = Cfg.validate();
  if (!SessionStatus.ok())
    return;
  Streaming = Cfg.Mode == RunMode::Sequential || Cfg.Mode == RunMode::Fused;
  Lanes.reserve(Cfg.Detectors.size());
  for (const DetectorSpec &S : Cfg.Detectors) {
    auto Rt = std::make_unique<LaneRuntime>();
    Rt->Label = S.Name;
    Rt->Fallback = S.Name.empty() ? detectorKindName(S.Kind) : S.Name;
    Rt->Make =
        S.Kind == DetectorKind::Custom ? S.Make : makeDetectorFactory(S.Kind);
    Lanes.push_back(std::move(Rt));
  }
  if (!Streaming)
    return;
  if (Cfg.Mode == RunMode::Sequential) {
    for (auto &Rt : Lanes)
      Consumers.emplace_back(
          [this, R = Rt.get()] { sequentialConsumer(*R); });
  } else {
    Consumers.emplace_back([this] { fusedConsumer(); });
  }
}

void AnalysisSession::Impl::stopConsumers() {
  {
    std::lock_guard<std::mutex> Lk(M);
    IngestDone = true;
  }
  CV.notify_all();
  for (std::thread &T : Consumers)
    T.join();
  Consumers.clear();
}

/// Common precondition of every ingest call.
Status AnalysisSession::Impl::ingestGate() {
  if (!SessionStatus.ok())
    return SessionStatus;
  if (Finished)
    return Status(StatusCode::InvalidState,
                  "session is finished; feeds are no longer accepted");
  return Status::success();
}

/// Validates events [Validated, Live->size()) in trace order; stops at
/// the first violation, which sticks in SessionStatus. Returns true while
/// clean. Caller holds M.
bool AnalysisSession::Impl::validateNewLocked() {
  const std::vector<Event> &Events = Live->events();
  while (Validated < Events.size()) {
    Validator.feed(Events[Validated], Validated, *Live);
    if (!Validator.ok()) {
      const TraceViolation &V = Validator.result().Violations.front();
      SessionStatus =
          Status(StatusCode::ValidationError,
                 "event " + std::to_string(V.Index) + ": " + V.Message +
                     " (events up to " + std::to_string(Validated) +
                     " were analyzed)");
      return false;
    }
    ++Validated;
  }
  return true;
}

/// Advances the published prefix to the validated one. Caller holds M.
void AnalysisSession::Impl::publishLocked() { Published = Validated; }

AnalysisResult AnalysisSession::Impl::snapshotLanes(bool Partial) {
  AnalysisResult R;
  R.Partial = Partial;
  R.Streamed = Streaming;
  R.Lanes.reserve(Lanes.size());
  for (auto &RtPtr : Lanes) {
    LaneRuntime &Rt = *RtPtr;
    std::lock_guard<std::mutex> G(Rt.SnapM);
    LaneReport Lane;
    Lane.DetectorName = Rt.Name.empty() ? Rt.Fallback : Rt.Name;
    Lane.LaneStatus = Rt.LaneStatus;
    Lane.Seconds = Rt.Seconds;
    Lane.EventsConsumed = Rt.Consumed;
    Lane.Restarts = Rt.Restarts;
    if (Rt.Done)
      Lane.Report = Rt.Final;
    else if (Rt.D)
      Lane.Report = Rt.D->report(); // Mid-stream copy: races so far.
    R.Lanes.push_back(std::move(Lane));
  }
  return R;
}

// ---- Public surface ---------------------------------------------------------

AnalysisSession::AnalysisSession(AnalysisConfig Config)
    : I(std::make_unique<Impl>()) {
  I->Cfg = std::move(Config);
  I->start();
}

AnalysisSession::~AnalysisSession() {
  if (I)
    I->stopConsumers();
}

const AnalysisConfig &AnalysisSession::config() const { return I->Cfg; }
const Status &AnalysisSession::status() const { return I->SessionStatus; }

ThreadId AnalysisSession::declareThread(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return ThreadId(I->Owned.threadTable().intern(Name));
}
LockId AnalysisSession::declareLock(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return LockId(I->Owned.lockTable().intern(Name));
}
VarId AnalysisSession::declareVar(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return VarId(I->Owned.varTable().intern(Name));
}
LocId AnalysisSession::declareLoc(std::string_view Name) {
  std::lock_guard<std::mutex> Lk(I->M);
  I->Ingested = true;
  return LocId(I->Owned.locTable().intern(Name));
}

Status AnalysisSession::declareTablesFrom(const Trace &T) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  std::lock_guard<std::mutex> Lk(I->M);
  if (I->Ingested || I->Owned.size() != 0)
    return Status(StatusCode::InvalidState,
                  "declareTablesFrom requires an empty session");
  I->Owned.adoptTables(T);
  I->Ingested = true;
  return Status::success();
}

Status AnalysisSession::feed(const Event &E) {
  return feed(std::vector<Event>{E});
}

Status AnalysisSession::feed(const std::vector<Event> &Batch) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  Timer Ingest;
  {
    std::lock_guard<std::mutex> Lk(I->M);
    I->Ingested = true;
    for (size_t K = 0; K != Batch.size(); ++K) {
      if (!I->Owned.containsIds(Batch[K]))
        return Status(StatusCode::ValidationError,
                      "event " + std::to_string(K) +
                          " references undeclared ids; declare names (or "
                          "declareTablesFrom) before feeding");
    }
    for (const Event &E : Batch)
      I->Owned.append(E);
    bool Clean = I->validateNewLocked();
    I->publishLocked();
    I->IngestSeconds += Ingest.seconds();
    if (!Clean) {
      I->CV.notify_all();
      return I->SessionStatus;
    }
  }
  I->CV.notify_all();
  return Status::success();
}

Status AnalysisSession::feedTrace(const Trace &T) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  Timer Ingest;
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Ingested || I->Owned.size() != 0)
      return Status(StatusCode::InvalidState,
                    "feedTrace requires an empty session (it adopts the "
                    "trace's id tables)");
    I->Ingested = true;
    I->Owned.adoptTables(T);
    I->Owned.reserve(T.size());
    for (const Event &E : T.events())
      I->Owned.append(E);
    bool Clean = I->validateNewLocked();
    I->publishLocked();
    I->IngestSeconds += Ingest.seconds();
    if (!Clean) {
      I->CV.notify_all();
      return I->SessionStatus;
    }
  }
  I->CV.notify_all();
  return Status::success();
}

Status AnalysisSession::feedFile(const std::string &Path) {
  if (Status G = I->ingestGate(); !G.ok())
    return G;
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Ingested || I->Owned.size() != 0)
      return Status(StatusCode::InvalidState,
                    "feedFile requires an empty session (one file per "
                    "session; it adopts the file's id tables)");
    I->Ingested = true;
  }
  Timer Ingest;
  ChunkedTraceReader Reader(Path);
  // The reader's internal trace becomes the live published trace while
  // the loop runs: chunk parsing mutates it under the session mutex, and
  // publication only advances once the id tables can no longer change
  // (binary: right after the header; text: at EOF), so consumer-side
  // restarts never trigger here.
  bool Poisoned = false;
  while (!Reader.done() && !Poisoned) {
    bool Advanced = false;
    {
      std::lock_guard<std::mutex> Lk(I->M);
      I->Live = &Reader.current();
      Reader.nextChunk();
      I->Live = &Reader.current();
      if (Reader.ok()) {
        // Only the §2.1-validated prefix may reach live lanes; a
        // violation freezes publication (and ingestion) right here.
        Poisoned = !I->validateNewLocked();
        if (Reader.tablesComplete() && I->Validated > I->Published) {
          I->publishLocked();
          Advanced = true;
        }
      }
    }
    if (Advanced)
      I->CV.notify_all();
  }
  Status ReadStatus = Reader.status();
  {
    std::lock_guard<std::mutex> Lk(I->M);
    // Move the trace into the session before the reader dies. On success
    // everything validated publishes (covers the text path); on failure
    // the already published prefix stays analyzable and the first error
    // sticks.
    I->Owned = Reader.take();
    I->Live = &I->Owned;
    if (!Poisoned)
      I->validateNewLocked();
    if (I->SessionStatus.ok() && !ReadStatus.ok())
      I->SessionStatus = ReadStatus;
    I->publishLocked();
    I->IngestSeconds += Ingest.seconds();
  }
  I->CV.notify_all();
  return I->SessionStatus;
}

uint64_t AnalysisSession::eventsFed() const {
  std::lock_guard<std::mutex> Lk(I->M);
  return I->Live->size();
}

bool AnalysisSession::finished() const {
  std::lock_guard<std::mutex> Lk(I->M);
  return I->Finished;
}

AnalysisResult AnalysisSession::partialResult() {
  uint64_t Ingested;
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Finished) {
      AnalysisResult R;
      R.Overall = Status(StatusCode::InvalidState,
                         "session is finished; partialResult is only "
                         "available mid-stream");
      return R;
    }
    Ingested = I->Published;
  }
  AnalysisResult R = I->snapshotLanes(/*Partial=*/true);
  R.Overall = I->SessionStatus;
  R.EventsIngested = Ingested;
  R.WallSeconds = I->Wall.seconds();
  R.IngestSeconds = I->IngestSeconds;
  R.ThreadsUsed = static_cast<unsigned>(
      I->Streaming ? std::max<size_t>(I->Consumers.size(), 1) : 1);
  return R;
}

AnalysisResult AnalysisSession::finish() {
  {
    std::lock_guard<std::mutex> Lk(I->M);
    if (I->Finished) {
      AnalysisResult R;
      R.Overall = Status(StatusCode::InvalidState, "finish() already called");
      return R;
    }
    I->Finished = true;
  }
  unsigned NumConsumers = static_cast<unsigned>(I->Consumers.size());
  I->stopConsumers();

  AnalysisResult R;
  if (I->Streaming) {
    R = I->snapshotLanes(/*Partial=*/false);
    R.ThreadsUsed = std::max(NumConsumers, 1u);
  } else {
    // Windowed/VarSharded: the whole trace is required, so the batch
    // engine runs here. Skip it if ingestion failed — a partial trace
    // would silently change windowing.
    if (I->SessionStatus.ok())
      R = convertPipelineResult(buildPipeline(I->Cfg).run(I->Owned),
                                I->Owned.size());
  }
  R.Overall = I->SessionStatus;
  R.EventsIngested = I->Published;
  R.WallSeconds = I->Wall.seconds();
  R.IngestSeconds = I->IngestSeconds;
  return R;
}

const Trace &AnalysisSession::trace() const { return *I->Live; }
