//===- api/AnalysisConfig.h - Declarative analysis configuration -*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single declarative configuration object behind every analysis entry
/// point. What used to be scattered across runDetector / runDetectorWindowed
/// / runDetectorSharded signatures and PipelineOptions flag combinations —
/// detector selection, run mode, thread count, window size, shard count and
/// shard strategy — is one AnalysisConfig with one validate() that rejects
/// inconsistent combinations up front with a structured Status, instead of
/// each entry point silently interpreting its own corner cases.
///
/// A config names its detectors either by kind (the built-in HB, WCP,
/// FastTrack, Eraser) or by custom factory, and selects exactly one run
/// mode:
///
///   Sequential  one independent full-trace walk per detector lane (the
///               paper's unwindowed single-pass mode); lanes run
///               concurrently and stream behind ingestion in sessions;
///   Fused       one walk of the trace feeds every detector per event —
///               N analyses for one trace traversal, on a single thread;
///   Windowed    fixed-size event windows, fresh detector per window
///               (the handicapped baseline of §4.3 — cross-window races
///               are lost by design); sessions dispatch each window onto
///               the thread pool as soon as its event range publishes;
///   VarSharded  per-variable sharded checks (bit-identical to
///               Sequential for any shard count), with the shard
///               assignment strategy selectable; sessions run the
///               capture clock pass behind ingestion and shard checks on
///               the published prefix.
///
/// Every mode is available both as a one-shot batch run (analyzeTrace)
/// and as a streaming session (AnalysisSession) with identical reports.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_API_ANALYSISCONFIG_H
#define RAPID_API_ANALYSISCONFIG_H

#include "detect/DetectorRunner.h"
#include "detect/ShardedAccessHistory.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace rapid {

/// The built-in detector families, plus Custom for caller factories.
enum class DetectorKind : uint8_t { Hb, Wcp, FastTrack, Eraser, SyncP, Custom };

/// Stable display name: "HB", "WCP", "FastTrack", "Eraser", "SyncP",
/// "custom".
const char *detectorKindName(DetectorKind K);

/// A factory for \p K's detector; empty for Custom (the spec carries its
/// own factory then).
DetectorFactory makeDetectorFactory(DetectorKind K);

/// How the analysis walks the trace. See the file comment for semantics.
enum class RunMode : uint8_t { Sequential, Fused, Windowed, VarSharded };

/// Stable lowercase name: "sequential", "fused", "windowed", "var-sharded".
const char *runModeName(RunMode M);

/// One detector lane of a config: a built-in kind, or a custom factory.
struct DetectorSpec {
  DetectorKind Kind = DetectorKind::Custom;
  /// Display-name override; empty resolves to the detector's own name().
  std::string Name;
  /// Required iff Kind == Custom; must be empty otherwise (validate()
  /// rejects ambiguous specs that carry both a kind and a factory).
  DetectorFactory Make;
};

/// Everything a session needs to know, in one validated object.
struct AnalysisConfig {
  std::vector<DetectorSpec> Detectors;
  RunMode Mode = RunMode::Sequential;
  /// Worker threads (0 = hardware concurrency) for the batch engines and
  /// for the session thread pool that runs Windowed window tasks /
  /// VarSharded shard-check tasks. Sequential/Fused sessions run one
  /// consumer thread per lane (one total for Fused) regardless.
  unsigned Threads = 0;
  /// Windowed mode only: events per window (must be > 0 there, 0 elsewhere).
  uint64_t WindowEvents = 0;
  /// VarSharded mode only: per-variable shards per lane (>= 1 there,
  /// 0 elsewhere).
  uint32_t VarShards = 0;
  /// VarSharded mode only: how variables map to shards. Modulo streams
  /// shard checks behind the capture pass; FrequencyBalanced needs the
  /// full capture counts, so in sessions its shard checks start when the
  /// clock pass retires (reports are bit-identical either way).
  ShardStrategy Strategy = ShardStrategy::Modulo;
  /// Streaming sessions: max events a consumer takes per batch — the
  /// granularity of partial-report visibility.
  uint64_t StreamBatchEvents = 8192;
  /// VarSharded sessions: accesses a shard drain task claims per round.
  /// Smaller batches release the shard sooner for partial snapshots and
  /// spread work across the pool; larger ones amortize the claim
  /// handshake. Reports are bit-identical for any value >= 1.
  uint64_t DrainBatch = 4096;
  /// Observability (obs/Metrics.h): when false, no metric slots are
  /// registered and every instrument handle on the hot paths is null, so
  /// the disabled cost per update site is one branch on a cached pointer —
  /// no atomics, no clock reads. Telemetry blocks come back empty.
  bool Metrics = true;
  /// Observability (obs/TraceRecorder.h): record per-stage spans and
  /// counter samples for AnalysisSession::exportTimeline(). Off by
  /// default — timelines buffer one span per batch/window/drain and are
  /// only worth paying for when someone will open the trace.
  bool Timeline = false;

  /// Appends a built-in detector lane.
  AnalysisConfig &addDetector(DetectorKind K, std::string Name = "");
  /// Appends a custom-factory lane.
  AnalysisConfig &addDetector(DetectorFactory Make, std::string Name = "");

  /// Structured up-front validation; every entry point runs this before
  /// touching a trace.
  Status validate() const;
};

} // namespace rapid

#endif // RAPID_API_ANALYSISCONFIG_H
