//===- api/AnalysisSession.h - Push-based streaming analysis ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session-oriented analysis API: the paper's single-linear-pass claim,
/// turned into a surface where the pass can *start before the trace ends*.
/// A session is opened from one validated AnalysisConfig, fed events
/// incrementally (push batches or a whole file), queried for partial
/// reports mid-stream, and finished into one AnalysisResult:
///
///   AnalysisSession S(Config);        // validated up front
///   S.feedFile("trace.bin");          // or declare*/feed(Event) pushes
///   AnalysisResult Mid = S.partialResult();   // races so far
///   AnalysisResult R = S.finish();    // joins lanes, full result
///
/// Every mode streams: ingestion publishes a growing event prefix (single
/// producer) and analysis consumes published ranges concurrently
/// (multiple consumers), so analysis overlaps ingestion — the ROADMAP's
/// "overlap ingestion with analysis" seam, applied to all four run modes.
/// Reports are bit-identical to the batch entry points in every mode:
///
///   Sequential   one consumer thread per lane runs runDetector's walk,
///                spread over time;
///   Fused        one consumer thread walks every lane per batch;
///   Windowed     each window dispatches onto the session's thread pool
///                (a fresh detector per lane × window — no global state)
///                the moment its event range publishes, and window
///                reports merge deterministically in window order;
///   VarSharded   the capture clock pass runs behind ingestion and
///                per-shard check tasks replay published AccessLog
///                prefixes concurrently; only the final trace-order
///                merge waits for finish().
///
/// Detectors are constructed against the id tables (threads/locks/vars)
/// visible when a lane first has work, and *grow in place* when tables
/// grow afterwards — text inputs intern lazily; push feeds may declare
/// late. Every piece of detector state is size-polymorphic (implicit-zero
/// vector clocks, grow-on-first-touch access histories/locksets/queues),
/// so a mid-stream declaration is an O(1) metadata update: no lane ever
/// rebuilds or replays, and LaneReport::Restarts is structurally 0.
/// Declaring names up front (binary headers, declareTablesFrom) is still
/// good hygiene — it sizes state once — but is no longer required for
/// streaming: text files publish chunk by chunk exactly like binary ones,
/// so analysis overlaps ingestion for every input format.
///
/// Because lanes analyze events *live*, the session validates the §2.1
/// trace axioms on the producer side (trace/TraceValidator's streaming
/// form) before publication — detectors assume well-formed traces, and
/// an unvalidated release-without-acquire reaching a live lane would be
/// undefined behaviour. The first violation freezes ingestion with a
/// sticky ValidationError; everything validated up to it stays analyzed.
/// (The zero-copy analyzeTrace() below does NOT validate, preserving the
/// legacy entry points' exact contracts — batch callers validate
/// themselves, as race_cli always has.)
///
/// Sessions are single-producer: feeds and finish() must come from one
/// thread. partialResult() may be called concurrently with the producer
/// and with the consumers (e.g. from a monitoring thread); each snapshot
/// is internally consistent — a lane never reports progress or races
/// beyond the snapshot's EventsIngested, and windowed/var-sharded
/// snapshots are torn-merge free (always an exact prefix of the final
/// report). Errors are structured Statuses throughout — feeding a
/// finished session, double finish, unknown ids and IO/parse failures all
/// come back as codes, not strings to grep.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_API_ANALYSISSESSION_H
#define RAPID_API_ANALYSISSESSION_H

#include "api/AnalysisConfig.h"
#include "api/AnalysisResult.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rapid {

/// A push-based analysis session. See the file comment for the model.
class AnalysisSession {
public:
  /// Opens a session; config validation failure is reported via status()
  /// and by every subsequent call.
  explicit AnalysisSession(AnalysisConfig Config);
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  const AnalysisConfig &config() const;
  /// The sticky session status: config validation or ingestion failures.
  const Status &status() const;

  /// Name declaration for push ingestion: interns into the session's id
  /// tables and returns the id to use in fed events. Names may be
  /// declared at any point before their first use — mid-stream
  /// declarations grow detector state in place (no restart).
  ThreadId declareThread(std::string_view Name);
  LockId declareLock(std::string_view Name);
  VarId declareVar(std::string_view Name);
  LocId declareLoc(std::string_view Name);
  /// Adopts \p T's id tables wholesale (the push equivalent of a binary
  /// header). Only valid before any events or names exist.
  Status declareTablesFrom(const Trace &T);

  /// Appends one event / a batch. Ids must already be declared; undeclared
  /// ids reject the whole batch with ValidationError (nothing is appended).
  Status feed(const Event &E);
  Status feed(const std::vector<Event> &Batch);

  /// Bulk-adopts a whole in-memory trace (tables + events). Only valid as
  /// the first ingestion; copies the trace. Prefer analyzeTrace() for
  /// zero-copy one-shot batch runs.
  Status feedTrace(const Trace &T);

  /// Streams the file at \p Path into the session. Regular files are
  /// memory-mapped (io/MappedFile) and parsed zero-copy; other inputs go
  /// through the chunked reader. Both binary and text inputs publish to
  /// the lanes chunk by chunk, so analysis overlaps ingestion regardless
  /// of format (text id tables intern lazily; lanes grow in place). Must
  /// be the first ingestion; on failure the already-published prefix
  /// keeps its partial lane reports and the session status carries the
  /// error.
  Status feedFile(const std::string &Path);

  /// Events ingested (== published to lanes).
  uint64_t eventsFed() const;
  bool finished() const;

  /// Producer/consumer watermarks for backpressure decisions (the serving
  /// layer parks a connection whose Published - MinLaneConsumed lag grows
  /// past its budget). Cheap; safe to call concurrently with feeds and
  /// consumers, like partialResult().
  struct Progress {
    uint64_t Fed = 0;             ///< Events appended (>= Published).
    uint64_t Published = 0;       ///< Validated events visible to lanes.
    uint64_t MinLaneConsumed = 0; ///< Slowest lane's consumed watermark.
  };
  Progress progress() const;

  /// Mid-stream snapshot: per-lane races discovered so far and events
  /// consumed. Every mode reports live progress — sequential
  /// and fused lanes return their detector's report so far; windowed
  /// lanes the merge of the retired-window prefix (EventsConsumed counts
  /// the events those windows cover); var-sharded lanes the merged
  /// findings below the fully checked frontier (EventsConsumed tracks the
  /// capture clock pass). A snapshot is always an exact prefix of the
  /// final report — never a torn merge. Safe to call concurrently with
  /// feeds and with the consumer threads.
  AnalysisResult partialResult();

  /// Ends ingestion, drains and joins the lanes (windowed sessions flush
  /// the trailing partial window and retire in-flight window tasks;
  /// var-sharded sessions finish the clock pass, drain the shard checks
  /// and merge in trace order), and returns the unified result. A second
  /// finish() returns InvalidState; feeds after finish() are rejected.
  AnalysisResult finish();

  /// The ingested trace (for rendering reports). Stable once finish()
  /// returned; do not call while feeds are still possible.
  const Trace &trace() const;

  /// The session timeline as Chrome trace_event JSON (one track per lane
  /// consumer / pool worker / the ingest producer, spans per pipeline
  /// stage, counter tracks for the published watermark, lane lag and pool
  /// queue depth) — open it in ui.perfetto.dev or chrome://tracing.
  /// Empty string unless AnalysisConfig::Timeline is set. Best called
  /// after finish(); mid-stream exports are valid but partial.
  std::string exportTimeline() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// One-shot batch convenience: validates \p Config and analyzes \p T in
/// place (zero-copy — no session trace is built). Reports are
/// bit-identical to what a session fed the same events would produce.
AnalysisResult analyzeTrace(const AnalysisConfig &Config, const Trace &T);

} // namespace rapid

#endif // RAPID_API_ANALYSISSESSION_H
