//===- api/AnalysisResult.h - Unified analysis outcome ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one result type of the analysis API, superseding the RunResult /
/// PipelineResult / LaneResult trio: per-lane reports with structured
/// per-lane statuses, plus run-wide timings and telemetry. The legacy
/// types survive as adapters (detect/DetectorRunner.h) so existing callers
/// keep their contracts, but new code should consume this.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_API_ANALYSISRESULT_H
#define RAPID_API_ANALYSISRESULT_H

#include "detect/RaceReport.h"
#include "obs/Metrics.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace rapid {

/// One detector lane's outcome.
struct LaneReport {
  /// Resolved display name ("WCP", "HB[w=1000]", or the config override).
  std::string DetectorName;
  RaceReport Report;
  /// Failure of this lane only; other lanes are unaffected. When set, the
  /// report is partial or empty — never present it as "no races".
  Status LaneStatus;
  /// This lane's analysis time (≈ CPU seconds; concurrent lanes sum to
  /// more than wall clock). Streaming lanes exclude time spent waiting
  /// for ingestion to publish events.
  double Seconds = 0;
  /// Events this lane has processed (== EventsIngested on completion;
  /// smaller in partial snapshots). What "processed" means per mode:
  /// sequential/fused — events the detector walked; windowed — events
  /// covered by the retired-window prefix merged into Report; var-sharded
  /// — events the capture clock pass walked (Report covers the possibly
  /// smaller fully-checked frontier mid-stream).
  uint64_t EventsConsumed = 0;
  /// Deprecated; structurally 0. Streaming lanes used to rebuild their
  /// analysis state and replay the stable prefix when id tables grew
  /// mid-stream, counted here. Detector state is growable now (implicit-
  /// zero vector clocks, grow-on-first-touch histories and lockset
  /// tables), so mid-stream thread/lock/variable declarations are O(1)
  /// metadata updates and no lane ever restarts. The field survives one
  /// deprecation cycle so telemetry consumers (bench's invariant check)
  /// keep reading it; race_cli --json no longer emits it per lane.
  uint64_t Restarts = 0;
  /// This lane's metrics (names relative to the lane: "consume_ns",
  /// "batches", "lag_events_peak", ...) plus whatever the detector itself
  /// reports via Detector::telemetry() ("wcp.queue_peak_abstract", ...).
  /// Empty when AnalysisConfig::Metrics is false. Sorted by name.
  std::vector<MetricSample> Telemetry;
};

/// Outcome of one analysis run or partial snapshot.
struct AnalysisResult {
  /// Config/ingest/session-level failure; lane failures live per lane.
  Status Overall;
  std::vector<LaneReport> Lanes;
  uint64_t EventsIngested = 0;
  /// Wall clock from session open to finish (or to this snapshot).
  double WallSeconds = 0;
  /// Producer-side ingestion time (feed/feedFile work, including parse).
  double IngestSeconds = 0;
  uint64_t NumShards = 1;   ///< Windowed mode: window count.
  uint64_t VarShards = 0;   ///< Var-sharded mode: shards per lane.
  uint64_t TasksStolen = 0; ///< Batch engines: work-stealing telemetry.
  unsigned ThreadsUsed = 1;
  /// True for partialResult() snapshots: lanes are mid-stream, reports
  /// cover a prefix of the ingested events and finish() has not run.
  /// Partial reports are always exact prefixes of the final report —
  /// never torn merges (see AnalysisSession::partialResult).
  bool Partial = false;
  /// True when analysis consumed published event ranges while ingestion
  /// was still appending (every session run; false for the one-shot batch
  /// analyzeTrace).
  bool Streamed = false;
  /// Session/pipeline-level metrics (producer, publication, pool:
  /// "ingest.parse_ns", "publish.batches", "pool.steals", ...). Per-lane
  /// metrics live in each LaneReport::Telemetry. Empty when
  /// AnalysisConfig::Metrics is false. Sorted by name.
  std::vector<MetricSample> Telemetry;

  /// True iff the run and every lane succeeded.
  bool ok() const {
    if (!Overall.ok())
      return false;
    for (const LaneReport &L : Lanes)
      if (!L.LaneStatus.ok())
        return false;
    return true;
  }

  /// First failure for quick reporting: Overall if set, else the first
  /// failed lane's status. Ok when ok().
  Status firstError() const {
    if (!Overall.ok())
      return Overall;
    for (const LaneReport &L : Lanes)
      if (!L.LaneStatus.ok())
        return L.LaneStatus;
    return Status::success();
  }

  /// Sum of per-lane analysis seconds (the sequential-equivalent cost).
  double laneSecondsTotal() const {
    double Total = 0;
    for (const LaneReport &L : Lanes)
      Total += L.Seconds;
    return Total;
  }
};

} // namespace rapid

#endif // RAPID_API_ANALYSISRESULT_H
