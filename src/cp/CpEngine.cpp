//===- cp/CpEngine.cpp --------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "cp/CpEngine.h"

#include "support/Timer.h"
#include "trace/Window.h"

using namespace rapid;

CpResult rapid::runCpFull(const Trace &T) {
  Timer Clock;
  CpResult Result;
  ClosureEngine Engine(T);
  for (const RaceInstance &Inst : Engine.races(OrderKind::CP))
    Result.Report.addRace(Inst);
  Result.Seconds = Clock.seconds();
  return Result;
}

CpResult rapid::runClosureWindowed(const Trace &T, uint64_t WindowSize,
                                   OrderKind Kind) {
  Timer Clock;
  CpResult Result;
  Result.NumWindows = 0;
  for (TraceWindow &W : splitIntoWindows(T, WindowSize)) {
    ++Result.NumWindows;
    ClosureEngine Engine(W.Fragment);
    for (RaceInstance Inst : Engine.races(Kind)) {
      Inst.EarlierIdx = W.Original[Inst.EarlierIdx];
      Inst.LaterIdx = W.Original[Inst.LaterIdx];
      Result.Report.addRace(Inst);
    }
  }
  Result.Seconds = Clock.seconds();
  return Result;
}

CpResult rapid::runCpWindowed(const Trace &T, uint64_t WindowSize) {
  return runClosureWindowed(T, WindowSize, OrderKind::CP);
}
