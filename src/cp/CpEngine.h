//===- cp/CpEngine.h - Causally-precedes race detection ---------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CP race detection (Smaragdakis et al. [41]) built on the reference
/// closure. CP has no known linear-time algorithm (the paper conjectures a
/// quadratic lower bound, §1 fn. 1), so — exactly like the original CP
/// implementation — analysing a large trace requires *windowing*, which is
/// the handicap §1/§4 discuss. This engine exposes both modes:
///
///   * full:     polynomial closure on the entire trace (small traces
///     only — used for the Figure 2-5 verdicts and the inclusion tests);
///   * windowed: closure per bounded fragment, findings merged, races
///     across fragments invisible (the original paper's deployment mode,
///     window = 500 events by default there).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_CP_CPENGINE_H
#define RAPID_CP_CPENGINE_H

#include "detect/RaceReport.h"
#include "reference/ClosureEngine.h"

namespace rapid {

/// Result of a CP analysis.
struct CpResult {
  RaceReport Report;
  double Seconds = 0;
  uint64_t NumWindows = 1;
};

/// Runs the full-trace CP closure. \p T must be closure-sized (≤ ~20k
/// events).
CpResult runCpFull(const Trace &T);

/// Runs CP over fixed-size windows and merges the reports; this is how CP
/// scales to traces the closure cannot hold whole.
CpResult runCpWindowed(const Trace &T, uint64_t WindowSize);

/// Same machinery for any reference order (used by tests to get windowed
/// HB/WCP reference verdicts).
CpResult runClosureWindowed(const Trace &T, uint64_t WindowSize,
                            OrderKind Kind);

} // namespace rapid

#endif // RAPID_CP_CPENGINE_H
