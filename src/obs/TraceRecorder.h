//===- obs/TraceRecorder.h - Chrome/Perfetto timeline recorder --*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timeline half of the observability layer: named tracks (one per
/// lane consumer, pool worker and the ingest producer), duration spans for
/// pipeline stages, and counter samples (published watermark, lane lag,
/// pool queue depth), exported as Chrome `trace_event` JSON — the format
/// ui.perfetto.dev and chrome://tracing open directly.
///
/// Recording granularity is one span per *batch* of work (a published
/// chunk, a consumed batch, a window check, a shard drain round), not per
/// event, so a full streamed run records thousands of spans, not
/// millions; appends take one short mutex hold. The recorder is created
/// only when AnalysisConfig::Timeline is set — a null recorder pointer is
/// the disabled path, same discipline as obs/Metrics.h.
///
/// Tracks map onto trace_event "threads" (one pid, one tid per track,
/// named via thread_name metadata). bindCurrentThread lets code that runs
/// on borrowed threads — pool tasks — find the track of the worker it
/// landed on (the ThreadPool binds each worker's track before running
/// tasks), so stage spans recorded from inside a task nest within that
/// worker's task span on the same track.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_OBS_TRACERECORDER_H
#define RAPID_OBS_TRACERECORDER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rapid {

/// Accumulates spans/counters and serializes them as trace_event JSON.
class TraceRecorder {
public:
  static constexpr uint32_t NoTrack = ~0u;

  TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Interns a track by name and returns its id (stable; re-registering
  /// a name returns the same id). Safe from any thread.
  uint32_t track(std::string_view Name);

  /// Binds \p Track as the calling thread's track for this recorder.
  void bindCurrentThread(uint32_t Track);

  /// The track bound to the calling thread, or NoTrack. Used by pool
  /// tasks to record spans onto the worker they happen to run on.
  uint32_t currentThreadTrack() const;

  /// Microseconds since the recorder was constructed (span timestamps).
  int64_t nowUs() const;

  /// Records a completed span of \p DurUs microseconds starting at
  /// \p StartUs on \p Track. No-op for NoTrack.
  void span(uint32_t Track, std::string Name, int64_t StartUs, int64_t DurUs);

  /// Records a counter sample (rendered as a counter track).
  void counter(std::string Name, int64_t TsUs, uint64_t Value);

  /// Serializes everything recorded so far as a Chrome trace_event JSON
  /// document ({"displayTimeUnit", "traceEvents": [...]}).
  std::string exportJson() const;

private:
  struct Span {
    uint32_t Track;
    int64_t StartUs;
    int64_t DurUs;
    std::string Name;
  };
  struct Sample {
    int64_t TsUs;
    uint64_t Value;
    std::string Name;
  };

  mutable std::mutex M;
  std::vector<std::string> Tracks;
  std::vector<Span> Spans;
  std::vector<Sample> Samples;
  int64_t OriginNs;
};

} // namespace rapid

#endif // RAPID_OBS_TRACERECORDER_H
