//===- obs/Metrics.h - Lock-free metrics registry ---------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer (obs/): a registry of named
/// 64-bit instruments whose *updates* are single relaxed atomic operations,
/// so they can sit on the streaming hot paths (publication, lane consume,
/// shard drains, pool workers) without serializing them.
///
/// Three instrument kinds:
///
///   Counter    monotonic add (event counts, nanoseconds of stage time);
///   Gauge      last-write-wins set plus add/sub (watermarks, depths);
///   HighWater  retained maximum (queue peaks, lag peaks, batch peaks).
///
/// Handles are raw pointers into registry-owned slots: trivially copyable,
/// cheap to cache in per-lane runtime structs, and *nullable* — a disabled
/// registry (AnalysisConfig::Metrics == false) hands out null handles, so
/// the disabled path of every instrument update is one branch on a cached
/// pointer and touches no atomics and no clocks. Callers that time stages
/// guard the clock reads on Counter::enabled() for the same reason.
///
/// Registration (counter()/gauge()/highWater()) and snapshot() serialize
/// on an internal mutex; both are cold (lanes register once, snapshots are
/// user-triggered). Slots live in a deque so handle addresses stay stable
/// across registration, and re-registering a name returns the existing
/// slot — scopes on different threads can race to register the same
/// metric safely. Snapshots are internally consistent per instrument
/// (each value is one atomic load); cross-instrument skew is inherent and
/// documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_OBS_METRICS_H
#define RAPID_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rapid {

/// What a metric's value means (and how tools should aggregate it).
enum class MetricKind : uint8_t { Counter, Gauge, HighWater };

/// Stable display name: "counter", "gauge", "highwater".
const char *metricKindName(MetricKind K);

/// One (name, kind, value) read off a registry or a detector.
struct MetricSample {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Value = 0;
};

/// Monotonic steady-clock nanoseconds; the time base every *_ns metric
/// uses. One clock read — callers guard it on enabled() when the registry
/// may be disabled.
uint64_t obsNowNs();

/// Monotonically increasing count. Null handle = disabled = no-op.
class Counter {
public:
  Counter() = default;
  void add(uint64_t N = 1) {
    if (Slot)
      Slot->fetch_add(N, std::memory_order_relaxed);
  }
  bool enabled() const { return Slot != nullptr; }

private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<uint64_t> *S) : Slot(S) {}
  std::atomic<uint64_t> *Slot = nullptr;
};

/// RAII stage timer: charges the enclosing scope's wall nanoseconds to a
/// Counter at destruction. Null-handle aware like every instrument — on
/// a disabled counter the whole object is one branch, no clock reads.
/// This is the idiom for timing blocking sections (waits, parks) whose
/// early exits would otherwise each need a manual clock read + add.
class ScopedNs {
public:
  explicit ScopedNs(Counter C) : C(C), T0(C.enabled() ? obsNowNs() : 0) {}
  ~ScopedNs() {
    if (C.enabled())
      C.add(obsNowNs() - T0);
  }
  ScopedNs(const ScopedNs &) = delete;
  ScopedNs &operator=(const ScopedNs &) = delete;

private:
  Counter C;
  uint64_t T0;
};

/// Instantaneous value. Null handle = disabled = no-op.
class Gauge {
public:
  Gauge() = default;
  void set(uint64_t V) {
    if (Slot)
      Slot->store(V, std::memory_order_relaxed);
  }
  void add(uint64_t N = 1) {
    if (Slot)
      Slot->fetch_add(N, std::memory_order_relaxed);
  }
  void sub(uint64_t N = 1) {
    if (Slot)
      Slot->fetch_sub(N, std::memory_order_relaxed);
  }
  bool enabled() const { return Slot != nullptr; }

private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<uint64_t> *S) : Slot(S) {}
  std::atomic<uint64_t> *Slot = nullptr;
};

/// Retained maximum. Null handle = disabled = no-op.
class HighWater {
public:
  HighWater() = default;
  void observe(uint64_t V) {
    if (!Slot)
      return;
    uint64_t Cur = Slot->load(std::memory_order_relaxed);
    while (Cur < V &&
           !Slot->compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  bool enabled() const { return Slot != nullptr; }

private:
  friend class MetricsRegistry;
  explicit HighWater(std::atomic<uint64_t> *S) : Slot(S) {}
  std::atomic<uint64_t> *Slot = nullptr;
};

/// The registry: owns every slot, hands out handles, snapshots on demand.
class MetricsRegistry {
public:
  /// A disabled registry (Enabled == false) registers nothing and hands
  /// out null handles — the zero-cost-disable path.
  explicit MetricsRegistry(bool Enabled = true) : Live(Enabled) {}

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  bool enabled() const { return Live; }

  Counter counter(std::string_view Name) {
    return Counter(slot(Name, MetricKind::Counter));
  }
  Gauge gauge(std::string_view Name) {
    return Gauge(slot(Name, MetricKind::Gauge));
  }
  HighWater highWater(std::string_view Name) {
    return HighWater(slot(Name, MetricKind::HighWater));
  }

  /// Every registered metric, sorted by name. Safe to call concurrently
  /// with updates (each value is one relaxed load).
  std::vector<MetricSample> snapshot() const;

  /// Snapshot filtered to names starting with \p Prefix, with the prefix
  /// stripped — how per-lane blocks are carved out of one registry.
  std::vector<MetricSample> snapshotPrefix(std::string_view Prefix) const;

private:
  struct Slot {
    std::string Name;
    MetricKind Kind;
    std::atomic<uint64_t> V{0};
    Slot(std::string N, MetricKind K) : Name(std::move(N)), Kind(K) {}
  };

  std::atomic<uint64_t> *slot(std::string_view Name, MetricKind Kind);

  const bool Live;
  mutable std::mutex M; ///< Registration + snapshot; never on update paths.
  std::deque<Slot> Slots; ///< Deque: handle addresses stay stable.
  std::unordered_map<std::string, Slot *> Index;
};

/// A registry view with a name prefix ("lane.0.", "pool."). Carried by
/// value; a default-constructed scope is disabled and hands out null
/// handles, so instrumented code never branches on "do I have a registry".
class MetricsScope {
public:
  MetricsScope() = default;
  MetricsScope(MetricsRegistry *R, std::string Prefix)
      : R(R), Prefix(std::move(Prefix)) {}

  bool enabled() const { return R && R->enabled(); }

  Counter counter(std::string_view Name) const {
    return R ? R->counter(Prefix + std::string(Name)) : Counter();
  }
  Gauge gauge(std::string_view Name) const {
    return R ? R->gauge(Prefix + std::string(Name)) : Gauge();
  }
  HighWater highWater(std::string_view Name) const {
    return R ? R->highWater(Prefix + std::string(Name)) : HighWater();
  }
  MetricsScope nest(std::string_view Sub) const {
    return R ? MetricsScope(R, Prefix + std::string(Sub)) : MetricsScope();
  }

private:
  MetricsRegistry *R = nullptr;
  std::string Prefix;
};

} // namespace rapid

#endif // RAPID_OBS_METRICS_H
