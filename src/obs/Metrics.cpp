//===- obs/Metrics.cpp --------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>

using namespace rapid;

const char *rapid::metricKindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::HighWater:
    return "highwater";
  }
  return "counter";
}

uint64_t rapid::obsNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> *MetricsRegistry::slot(std::string_view Name,
                                             MetricKind Kind) {
  if (!Live)
    return nullptr;
  std::string Key(Name);
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It != Index.end())
    return &It->second->V; // Same name twice: same slot (kinds must agree).
  Slots.emplace_back(Key, Kind);
  Slot *S = &Slots.back();
  Index.emplace(std::move(Key), S);
  return &S->V;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> Out;
  {
    std::lock_guard<std::mutex> G(M);
    Out.reserve(Slots.size());
    for (const Slot &S : Slots)
      Out.push_back(
          {S.Name, S.Kind, S.V.load(std::memory_order_relaxed)});
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

std::vector<MetricSample>
MetricsRegistry::snapshotPrefix(std::string_view Prefix) const {
  std::vector<MetricSample> Out;
  {
    std::lock_guard<std::mutex> G(M);
    for (const Slot &S : Slots) {
      if (S.Name.size() < Prefix.size() ||
          std::string_view(S.Name).substr(0, Prefix.size()) != Prefix)
        continue;
      Out.push_back({S.Name.substr(Prefix.size()), S.Kind,
                     S.V.load(std::memory_order_relaxed)});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}
