//===- obs/TraceRecorder.cpp --------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"

#include "obs/Metrics.h"
#include "support/Json.h"

using namespace rapid;

namespace {

/// The calling thread's (recorder, track) binding. One slot per thread is
/// enough: a thread serves one session's pool or consumers at a time, and
/// the recorder pointer disambiguates stale bindings from past sessions.
struct ThreadBinding {
  const TraceRecorder *R = nullptr;
  uint32_t Track = TraceRecorder::NoTrack;
};
thread_local ThreadBinding TLBinding;

} // namespace

TraceRecorder::TraceRecorder()
    : OriginNs(static_cast<int64_t>(obsNowNs())) {}

uint32_t TraceRecorder::track(std::string_view Name) {
  std::lock_guard<std::mutex> G(M);
  for (uint32_t I = 0; I != Tracks.size(); ++I)
    if (Tracks[I] == Name)
      return I;
  Tracks.emplace_back(Name);
  return static_cast<uint32_t>(Tracks.size() - 1);
}

void TraceRecorder::bindCurrentThread(uint32_t Track) {
  TLBinding.R = this;
  TLBinding.Track = Track;
}

uint32_t TraceRecorder::currentThreadTrack() const {
  return TLBinding.R == this ? TLBinding.Track : NoTrack;
}

int64_t TraceRecorder::nowUs() const {
  return (static_cast<int64_t>(obsNowNs()) - OriginNs) / 1000;
}

void TraceRecorder::span(uint32_t Track, std::string Name, int64_t StartUs,
                         int64_t DurUs) {
  if (Track == NoTrack)
    return;
  std::lock_guard<std::mutex> G(M);
  Spans.push_back(Span{Track, StartUs, DurUs, std::move(Name)});
}

void TraceRecorder::counter(std::string Name, int64_t TsUs, uint64_t Value) {
  std::lock_guard<std::mutex> G(M);
  Samples.push_back(Sample{TsUs, Value, std::move(Name)});
}

std::string TraceRecorder::exportJson() const {
  std::lock_guard<std::mutex> G(M);
  std::string J;
  J += "{\n";
  J += "  \"displayTimeUnit\": \"ms\",\n";
  J += "  \"traceEvents\": [";
  bool First = true;
  auto emit = [&](const std::string &Obj) {
    if (!First)
      J += ",";
    First = false;
    J += "\n    " + Obj;
  };
  // Track metadata first: one trace_event "thread" per track, named so
  // ui.perfetto.dev labels the rows ("lane:WCP", "pool:worker0", ...).
  for (uint32_t T = 0; T != Tracks.size(); ++T)
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(T) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": " +
         jsonQuote(Tracks[T]) + "}}");
  for (const Span &S : Spans)
    emit("{\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(S.Track) +
         ", \"ts\": " + std::to_string(S.StartUs) +
         ", \"dur\": " + std::to_string(S.DurUs) +
         ", \"name\": " + jsonQuote(S.Name) + ", \"cat\": \"rapid\"}");
  for (const Sample &C : Samples)
    emit("{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": " +
         std::to_string(C.TsUs) + ", \"name\": " + jsonQuote(C.Name) +
         ", \"args\": {\"value\": " + std::to_string(C.Value) + "}}");
  J += "\n  ]\n}\n";
  return J;
}
