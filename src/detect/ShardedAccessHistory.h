//===- detect/ShardedAccessHistory.h - Per-variable shard lane --*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-variable sharding of the paper's single-pass race check. Conflicts
/// only exist between accesses to the *same* variable (§2.1: e1 ≍ e2
/// requires the same x), so the AccessHistory side of a detector — the
/// checkRead/checkWrite calls and last-access records — partitions cleanly
/// by variable, while the vector-clock machinery stays a sequential stream
/// (clock propagation orders arbitrary events and cannot be split the same
/// way). That split turns one detector lane into:
///
///   phase 1  clock pass (sequential): the detector runs with its race
///            checks deferred; every read/write is appended to an
///            AccessLog together with the clocks the check needs, via the
///            ClockBroadcast snapshot table (clocks mutate only at a
///            bounded number of points, so consecutive accesses of a
///            thread share one immutable snapshot);
///   phase 2  shard checks (parallel): each shard replays its variables'
///            deferred accesses, in trace order, against a private
///            partition of the access history — no locks, no sharing;
///   phase 3  merge (sequential): per-shard findings interleave back by
///            parent-trace index. Every access event belongs to exactly
///            one shard, so the interleaving is unique and reproduces the
///            sequential detector's discovery order *bit for bit*, for any
///            shard count.
///
/// The determinism contract (sharded report ≡ sequential report, any N) is
/// pinned by tests/differential_test.cpp against seeded random traces and
/// the reference/ClosureEngine oracle.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_SHARDEDACCESSHISTORY_H
#define RAPID_DETECT_SHARDEDACCESSHISTORY_H

#include "detect/AccessHistory.h"
#include "detect/Detector.h"
#include "detect/RaceReport.h"
#include "support/PublishedStore.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rapid {

/// How variables are assigned to shards.
enum class ShardStrategy : uint8_t {
  /// x mod N: stateless, zero setup cost, balanced when accesses are
  /// spread evenly over the variable space. The default.
  Modulo,
  /// Greedy bin-packing on per-variable access counts (longest-processing-
  /// time-first): heavier variables are placed first, each onto the
  /// currently lightest shard. Balances skewed traces — a few hot
  /// variables no longer pile onto one shard — at the cost of one counting
  /// pass over the access log.
  FrequencyBalanced,
};

/// Assignment of variables to shards. Default-constructed plans use the
/// modulo strategy: variable x lives in shard x mod NumShards, with dense
/// per-shard local ids x div NumShards. Table-based plans (see
/// balancedByFrequency) carry an explicit per-variable assignment instead.
/// Either way every variable lands in exactly one shard with a dense local
/// id, which is all the shard/merge machinery relies on — the sharded
/// report stays bit-identical to the sequential one under any plan.
struct ShardPlan {
  ShardPlan() = default;
  explicit ShardPlan(uint32_t NumShards) : NumShards(NumShards) {}

  uint32_t NumShards = 1;
  /// Table mode (empty = modulo): Assign[x] = shard of x, Local[x] = dense
  /// local id of x within its shard, ShardSizes[s] = variables in shard s.
  std::vector<uint32_t> Assign;
  std::vector<uint32_t> Local;
  std::vector<uint32_t> ShardSizes;

  uint32_t shardOf(VarId V) const {
    return Assign.empty() ? V.value() % NumShards : Assign[V.value()];
  }
  uint32_t localIdOf(VarId V) const {
    return Assign.empty() ? V.value() / NumShards : Local[V.value()];
  }

  /// Number of variables out of \p NumVars that land in \p Shard.
  uint32_t numLocalVars(uint32_t Shard, uint32_t NumVars) const {
    if (!Assign.empty())
      return ShardSizes[Shard];
    if (Shard >= NumVars)
      return 0; // The smallest candidate, x = Shard, is already out of range.
    return (NumVars - Shard - 1) / NumShards + 1;
  }

  /// Builds a frequency-balanced plan over \p Counts (accesses per
  /// variable; Counts.size() is the variable count). Deterministic:
  /// variables are placed heaviest-first (ties by id) onto the lightest
  /// shard (ties by shard id), so equal inputs yield equal plans.
  static ShardPlan balancedByFrequency(uint32_t NumShards,
                                       const std::vector<uint64_t> &Counts);

  /// The heaviest shard's total access count under this plan — the
  /// balance metric the frequency strategy minimizes greedily.
  uint64_t maxShardLoad(const std::vector<uint64_t> &Counts) const;
};

/// One deferred read/write: everything its race check needs, with the
/// event's clocks referenced into the broadcast table.
struct DeferredAccess {
  static constexpr uint32_t NoClock = UINT32_MAX;

  EventIdx Idx = 0;     ///< Parent-trace index of the access.
  VarId Var;            ///< Accessed variable (selects the shard).
  ThreadId Thread;      ///< Accessing thread.
  LocId Loc;            ///< Program location.
  ClockValue N = 0;     ///< Local time to record (C_e's own component).
  uint32_t Clock = 0;   ///< Snapshot index of C_e.
  uint32_t Hard = NoClock; ///< Snapshot index of the hard clock, if any.
  bool IsWrite = false;
};

/// The vector-clock broadcast step: immutable snapshots interned by the
/// sequential clock pass and read concurrently (and in place) by every
/// shard task — the snapshot table is a PublishedStore, so growth never
/// relocates a snapshot and drains hold references without copying.
///
/// Dedup is epoch-compressed: the capturing detector passes each clock's
/// change epoch (bumped at every mutation of that clock), and a snapshot
/// whose epoch matches the thread's previous intern is reused in O(1) —
/// no per-access O(threads) content compare, which is what used to
/// re-serialize clocks in the capture pass. When the epoch did change the
/// content compare still runs, preserving the dedup of no-op joins.
/// Epoch 0 means "no epoch tracking": always content-compare.
///
/// The per-thread dedup tables grow on first intern, so threads admitted
/// mid-stream need no rebuild (the constructor count is a sizing hint).
class ClockBroadcast {
public:
  explicit ClockBroadcast(uint32_t NumThreads);

  /// Returns the snapshot index for \p T's current check clock \p C,
  /// copying it only if it changed since \p T last published (epoch fast
  /// path first, content compare as the fallback).
  uint32_t publish(ThreadId T, const VectorClock &C, uint64_t Epoch = 0);

  /// Same, for the secondary hard-order clock (WCP's K_t).
  uint32_t publishHard(ThreadId T, const VectorClock &K, uint64_t Epoch = 0);

  /// In-place reference, stable for the broadcast's lifetime. \p I must be
  /// committed (or the caller synchronized with the interning thread).
  const VectorClock &snapshot(uint32_t I) const { return Snapshots[I]; }
  size_t numSnapshots() const { return Snapshots.size(); }

  /// Publishes every interned snapshot to concurrent readers (one
  /// watermark store; see PublishedStore).
  void commit() { Snapshots.publish(Snapshots.size()); }

private:
  struct PerThread {
    uint32_t Last;  ///< Last interned snapshot index.
    uint64_t Epoch; ///< Clock epoch at that intern (0 = unknown).
  };

  uint32_t publishInto(std::vector<PerThread> &Last, ThreadId T,
                       const VectorClock &C, uint64_t Epoch);

  PublishedStore<VectorClock> Snapshots;
  std::vector<PerThread> LastClock; ///< Per thread: last published C.
  std::vector<PerThread> LastHard;  ///< Per thread: last published K.
};

/// Per-lane capture of deferred accesses, filled by a detector running in
/// capture mode (Detector::beginCapture): clock machinery only, race
/// checks deferred to the shard phase.
///
/// Storage is a PublishedStore: the capture pass appends (single writer)
/// while shard drains read already-committed entries in place — no lock
/// around the log, no copy-out per drain. commit() publishes the appended
/// prefix (snapshots first, then accesses, so a committed access's clock
/// indices always resolve); batch callers commit once after capture ends.
class AccessLog {
public:
  explicit AccessLog(uint32_t NumThreads) : Clocks(NumThreads) {}

  /// Records one access. \p Ce is the clock the sequential check would
  /// compare against (C_t for HB, P_t for WCP), \p Hard the optional
  /// secondary clock (WCP's K_t), \p N the local time the sequential
  /// check would record. \p CeEpoch / \p HardEpoch are the clocks' change
  /// epochs (0 = untracked, falls back to content compare; see
  /// ClockBroadcast).
  void record(EventIdx Idx, VarId V, ThreadId T, LocId Loc, bool IsWrite,
              ClockValue N, const VectorClock &Ce, uint64_t CeEpoch,
              const VectorClock *Hard, uint64_t HardEpoch = 0);

  /// Accesses appended so far (capture-thread view; readers use indices
  /// at or below the committed watermark, or synchronize externally).
  uint64_t numAccesses() const { return Accesses.size(); }

  /// In-place reference to access \p I, stable for the log's lifetime.
  const DeferredAccess &access(uint64_t I) const { return Accesses[I]; }

  /// Applies Fn(access, index) over [From, To).
  template <typename Fn> void forEachAccess(uint64_t From, uint64_t To,
                                            Fn &&F) const {
    Accesses.forRange(From, To, std::forward<Fn>(F));
  }

  /// Publishes everything appended so far to concurrent readers:
  /// snapshots, then accesses. Returns the committed access count.
  uint64_t commit() {
    Clocks.commit();
    uint64_t N = Accesses.size();
    Accesses.publish(N);
    return N;
  }

  /// Accesses visible to concurrent readers (last commit()).
  uint64_t committedAccesses() const { return Accesses.published(); }

  const ClockBroadcast &clocks() const { return Clocks; }

private:
  PublishedStore<DeferredAccess> Accesses; ///< In trace order.
  ClockBroadcast Clocks;
};

/// Incremental replay of ONE shard's deferred checks — the streaming form
/// of ShardedAccessHistory::checkShard for consumers that publish AccessLog
/// prefixes while the capture pass is still appending (the session's
/// streamed var-sharded mode). Accesses must arrive in trace order and
/// pre-mapped to the shard (caller applies the ShardPlan); clocks are
/// passed in explicitly so the caller can hand over stable copies instead
/// of references into a concurrently growing broadcast table. Findings
/// accumulate in discovery order; feeding a full shard's work list
/// reproduces checkShard's output exactly (checkShard is implemented on
/// top of this class).
class ShardChecker {
public:
  /// \p Replay selects the engine (must match the capturing detector's
  /// Detector::shardReplay()); \p NumLocalVars is the shard's dense
  /// local-variable count (ShardPlan::numLocalVars). Both counts are
  /// sizing hints — the engines grow on first touch, so local ids and
  /// threads admitted mid-stream replay without a rebuild. Context-bearing
  /// replay kinds (SyncPClosure) additionally need the capturing
  /// detector's ShardContext in \p Ctx, which must outlive the checker.
  ShardChecker(ShardReplay Replay, uint32_t NumLocalVars, uint32_t NumThreads,
               const ShardContext *Ctx = nullptr);
  ~ShardChecker();

  ShardChecker(const ShardChecker &) = delete;
  ShardChecker &operator=(const ShardChecker &) = delete;

  /// Replays one deferred access. \p Local is A.Var's dense local id under
  /// the plan; \p Ce / \p Hard are the snapshots A.Clock / A.Hard resolve
  /// to (Hard null when A.Hard is DeferredAccess::NoClock).
  void replay(const DeferredAccess &A, VarId Local, const VectorClock &Ce,
              const VectorClock *Hard);

  /// Findings so far, in this shard's trace order (LaterIdx ascending).
  std::vector<RaceInstance> &findings() { return Out; }
  const std::vector<RaceInstance> &findings() const { return Out; }

  /// Deferred accesses replayed so far (per-shard drain telemetry).
  uint64_t numReplayed() const { return Replayed; }

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  std::vector<RaceInstance> Out;
  uint64_t Replayed = 0;
};

/// Partitions one lane's access history across N shards and replays the
/// deferred checks. partition() runs once (sequentially) after capture;
/// checkShard() is safe to call concurrently for distinct shards (each
/// builds a private history over only its variables); the merge restores
/// parent-trace order.
class ShardedAccessHistory {
public:
  ShardedAccessHistory(ShardPlan Plan, uint32_t NumVars, uint32_t NumThreads);

  uint32_t numShards() const { return Plan.NumShards; }

  /// Splits \p Log's accesses into per-shard work lists, keeping trace
  /// order within each shard.
  void partition(const AccessLog &Log);

  /// Replays shard \p S's deferred checks and returns its races in trace
  /// order. Requires partition() to have run; const and data-parallel
  /// across distinct shards. \p Replay selects the check engine: the
  /// shared full-history replay (HB, WCP), FastTrack's epoch replay, or a
  /// context-bearing replay built from \p Ctx (SyncP) — it must match the
  /// capturing detector's shardReplay() (and shardContext()).
  std::vector<RaceInstance>
  checkShard(uint32_t S, const AccessLog &Log,
             ShardReplay Replay = ShardReplay::FullHistory,
             const ShardContext *Ctx = nullptr) const;

  /// Interleaves per-shard findings back into parent-trace order and
  /// accumulates them into a report. Each access event belongs to exactly
  /// one shard, so the interleaving is unique: the result is bit-identical
  /// to the sequential detector's report for any shard count.
  static RaceReport
  mergeInTraceOrder(const std::vector<std::vector<RaceInstance>> &PerShard);

private:
  ShardPlan Plan;
  uint32_t NumVars;
  uint32_t NumThreads;
  std::vector<std::vector<uint32_t>> Work; ///< Per shard: access indices.
};

} // namespace rapid

#endif // RAPID_DETECT_SHARDEDACCESSHISTORY_H
