//===- detect/AccessHistory.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/AccessHistory.h"

using namespace rapid;

AccessHistory::AccessHistory(uint32_t NumVars, uint32_t NumThreads)
    : NumThreads(NumThreads), States(NumVars) {}

AccessHistory::VarState &AccessHistory::state(VarId V, ThreadId T) {
  if (T.value() >= NumThreads)
    NumThreads = T.value() + 1;
  if (V.value() >= States.size())
    States.resize(V.value() + 1);
  VarState &S = States[V.value()];
  if (S.LastRead.size() < NumThreads) {
    // First touch, or a thread beyond this variable's current records.
    S.LastRead.resize(NumThreads);
    S.LastWrite.resize(NumThreads);
  }
  return S;
}

const AccessHistory::VarState *AccessHistory::stateIfPresent(VarId V) const {
  if (V.value() >= States.size())
    return nullptr;
  const VarState &S = States[V.value()];
  return S.LastRead.empty() ? nullptr : &S;
}

void AccessHistory::recordRead(VarId V, ThreadId T, ClockValue N, LocId Loc,
                               EventIdx I) {
  state(V, T).LastRead[T.value()] = AccessRecord{N, Loc, I};
}

void AccessHistory::recordWrite(VarId V, ThreadId T, ClockValue N, LocId Loc,
                                EventIdx I) {
  state(V, T).LastWrite[T.value()] = AccessRecord{N, Loc, I};
}

void AccessHistory::checkAgainst(const std::vector<AccessRecord> &Records,
                                 ThreadId Self, const VectorClock &Ce,
                                 const VectorClock *Hard, VarId V, LocId Loc,
                                 EventIdx I, bool &Found,
                                 std::vector<RaceInstance> &Out) {
  for (uint32_t T = 0, E = static_cast<uint32_t>(Records.size()); T != E;
       ++T) {
    if (T == Self.value())
      continue;
    const AccessRecord &R = Records[T];
    if (!R.valid())
      continue;
    // Cross-thread order check (Cor. C.1): prior access a is ordered
    // before the current event e iff N_a <= C_e(t(a)) — or the pair is
    // hard-ordered (fork/join).
    if (R.Clock <= Ce.get(ThreadId(T)))
      continue;
    if (Hard && R.Clock <= Hard->get(ThreadId(T)))
      continue;
    Found = true;
    RaceInstance Inst;
    Inst.EarlierIdx = R.Idx;
    Inst.LaterIdx = I;
    Inst.EarlierLoc = R.Loc;
    Inst.LaterLoc = Loc;
    Inst.Var = V;
    Out.push_back(Inst);
  }
}

bool AccessHistory::checkRead(VarId V, ThreadId Self, const VectorClock &Ce,
                              LocId Loc, EventIdx I,
                              std::vector<RaceInstance> &Out,
                              const VectorClock *Hard) const {
  const VarState *S = stateIfPresent(V);
  if (!S)
    return false;
  bool Found = false;
  checkAgainst(S->LastWrite, Self, Ce, Hard, V, Loc, I, Found, Out);
  return Found;
}

bool AccessHistory::checkWrite(VarId V, ThreadId Self, const VectorClock &Ce,
                               LocId Loc, EventIdx I,
                               std::vector<RaceInstance> &Out,
                               const VectorClock *Hard) const {
  const VarState *S = stateIfPresent(V);
  if (!S)
    return false;
  bool Found = false;
  checkAgainst(S->LastRead, Self, Ce, Hard, V, Loc, I, Found, Out);
  checkAgainst(S->LastWrite, Self, Ce, Hard, V, Loc, I, Found, Out);
  return Found;
}
