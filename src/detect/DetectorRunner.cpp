//===- detect/DetectorRunner.cpp ----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// runDetector is the timed full-trace walk every analysis mode shares: the
// session's lanes and the pipeline's tasks both call it, and the tests pin
// every parallel mode's output against it. The windowed/sharded free
// functions are thin deprecated adapters over the session API
// (api/AnalysisSession.h): each builds the equivalent AnalysisConfig, runs
// the one-shot batch path and translates the unified result back into the
// legacy RunResult shape — so there is exactly one implementation of the
// mode mapping in the repo and the old bit-for-bit contracts ride on it.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"

#include "api/AnalysisSession.h"
#include "support/Timer.h"
#include "trace/Window.h"

using namespace rapid;

Detector::~Detector() = default;
ShardReplayer::~ShardReplayer() = default;
ShardContext::~ShardContext() = default;

RunResult rapid::runDetector(Detector &D, const Trace &T) {
  Timer Clock;
  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    D.processEvent(Events[I], I);
  D.finish();
  RunResult Result;
  Result.Seconds = Clock.seconds();
  Result.Report = D.report();
  Result.DetectorName = D.name();
  return Result;
}

RaceReport rapid::runDetectorOnWindow(Detector &D, const TraceWindow &W) {
  const std::vector<Event> &Events = W.Fragment.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    D.processEvent(Events[I], I);
  D.finish();
  RaceReport Translated;
  for (RaceInstance Inst : D.report().instances()) {
    Inst.EarlierIdx = W.Original[Inst.EarlierIdx];
    Inst.LaterIdx = W.Original[Inst.LaterIdx];
    Translated.addRace(Inst);
  }
  return Translated;
}

namespace {

/// Shared tail of the legacy adapters: one-lane AnalysisResult → RunResult.
RunResult toRunResult(AnalysisResult &&R, double Seconds) {
  RunResult Result;
  Result.Seconds = Seconds;
  if (!R.Lanes.empty()) {
    LaneReport &Lane = R.Lanes.front();
    Result.Report = std::move(Lane.Report);
    Result.DetectorName = std::move(Lane.DetectorName);
    if (!Lane.LaneStatus.ok())
      Result.Error = Lane.LaneStatus.Message;
  }
  if (Result.Error.empty() && !R.Overall.ok())
    Result.Error = R.Overall.Message;
  return Result;
}

} // namespace

RunResult rapid::runDetectorWindowed(const DetectorFactory &Make,
                                     const Trace &T, uint64_t WindowSize) {
  Timer Clock;
  AnalysisConfig Cfg;
  Cfg.addDetector(Make);
  if (WindowSize == 0) {
    // Degenerate call: no windowing requested — the single fused walk the
    // old implementation performed.
    Cfg.Mode = RunMode::Fused;
  } else {
    Cfg.Mode = RunMode::Windowed;
    Cfg.WindowEvents = WindowSize;
    Cfg.Threads = 1; // The windowed baseline stays single-threaded.
  }
  return toRunResult(analyzeTrace(Cfg, T), Clock.seconds());
}

RunResult rapid::runDetectorSharded(const DetectorFactory &Make,
                                    const Trace &T, uint32_t NumShards,
                                    unsigned NumThreads) {
  Timer Clock;
  AnalysisConfig Cfg;
  Cfg.addDetector(Make);
  Cfg.Mode = RunMode::VarSharded;
  Cfg.VarShards = NumShards == 0 ? 1 : NumShards;
  Cfg.Threads = NumThreads;
  return toRunResult(analyzeTrace(Cfg, T), Clock.seconds());
}
