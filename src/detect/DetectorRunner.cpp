//===- detect/DetectorRunner.cpp ----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// runDetector is the timed full-trace walk every analysis mode shares: the
// pipeline's lane tasks call it for unsharded runs, and the tests pin
// pipeline output against it. runDetectorWindowed is now a thin adapter
// over a single-lane sharded pipeline (run inline, on the caller's
// thread), so there is exactly one implementation of shard/merge logic in
// the repo.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"

#include "pipeline/Pipeline.h"
#include "support/Timer.h"

using namespace rapid;

Detector::~Detector() = default;

RunResult rapid::runDetector(Detector &D, const Trace &T) {
  Timer Clock;
  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    D.processEvent(Events[I], I);
  D.finish();
  RunResult Result;
  Result.Seconds = Clock.seconds();
  Result.Report = D.report();
  Result.DetectorName = D.name();
  return Result;
}

RunResult rapid::runDetectorWindowed(const DetectorFactory &Make,
                                     const Trace &T, uint64_t WindowSize) {
  Timer Clock;
  PipelineOptions Opts;
  Opts.ShardEvents = WindowSize;
  Opts.Parallel = false; // The windowed baseline stays single-threaded.
  AnalysisPipeline Pipeline(Opts);
  Pipeline.addDetector(Make);
  PipelineResult R = Pipeline.run(T);

  RunResult Result;
  Result.Seconds = Clock.seconds();
  if (!R.Lanes.empty()) {
    Result.Report = std::move(R.Lanes.front().Report);
    Result.DetectorName = std::move(R.Lanes.front().DetectorName);
    Result.Error = std::move(R.Lanes.front().Error);
  }
  return Result;
}

RunResult rapid::runDetectorSharded(const DetectorFactory &Make,
                                    const Trace &T, uint32_t NumShards,
                                    unsigned NumThreads) {
  // Thin adapter over a single-lane var-sharded pipeline, mirroring how
  // runDetectorWindowed adapts over the window-sharded one — the shard,
  // broadcast and merge logic each exist exactly once in the repo.
  Timer Clock;
  PipelineOptions Opts;
  Opts.VarShards = NumShards == 0 ? 1 : NumShards;
  Opts.NumThreads = NumThreads;
  AnalysisPipeline Pipeline(Opts);
  Pipeline.addDetector(Make);
  PipelineResult R = Pipeline.run(T);

  RunResult Result;
  Result.Seconds = Clock.seconds();
  if (!R.Lanes.empty()) {
    Result.Report = std::move(R.Lanes.front().Report);
    Result.DetectorName = std::move(R.Lanes.front().DetectorName);
    Result.Error = std::move(R.Lanes.front().Error);
  }
  return Result;
}
