//===- detect/DetectorRunner.cpp ----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"

#include "support/Timer.h"
#include "trace/Window.h"

using namespace rapid;

Detector::~Detector() = default;

RunResult rapid::runDetector(Detector &D, const Trace &T) {
  Timer Clock;
  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    D.processEvent(Events[I], I);
  D.finish();
  RunResult Result;
  Result.Seconds = Clock.seconds();
  Result.Report = D.report();
  Result.DetectorName = D.name();
  return Result;
}

RunResult rapid::runDetectorWindowed(const DetectorFactory &Make,
                                     const Trace &T, uint64_t WindowSize) {
  Timer Clock;
  RunResult Merged;
  for (TraceWindow &W : splitIntoWindows(T, WindowSize)) {
    std::unique_ptr<Detector> D = Make(W.Fragment);
    Merged.DetectorName = D->name() + "[w=" + std::to_string(WindowSize) + "]";
    const std::vector<Event> &Events = W.Fragment.events();
    for (EventIdx I = 0, E = Events.size(); I != E; ++I)
      D->processEvent(Events[I], I);
    D->finish();
    // Translate window-relative indices back to the parent trace.
    RaceReport Translated;
    for (RaceInstance Inst : D->report().instances()) {
      Inst.EarlierIdx = W.Original[Inst.EarlierIdx];
      Inst.LaterIdx = W.Original[Inst.LaterIdx];
      Translated.addRace(Inst);
    }
    Merged.Report.mergeFrom(Translated);
  }
  Merged.Seconds = Clock.seconds();
  return Merged;
}
