//===- detect/Race.h - Race pairs and instances -----------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *race pair* in the paper's evaluation is "an unordered tuple of
/// program locations corresponding to some pair of events in the trace that
/// are unordered by the partial order" (§4). A RaceInstance is one concrete
/// event pair witnessing a race pair; its *distance* (number of trace
/// events separating the two) is the statistic §4.3 uses to show that
/// windowed analyses cannot see far-apart races.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_RACE_H
#define RAPID_DETECT_RACE_H

#include "support/Ids.h"
#include "trace/Trace.h"

#include <string>

namespace rapid {

/// Unordered pair of program locations, stored normalized (First <= Second)
/// so it can key a hash set.
struct RacePair {
  LocId First;
  LocId Second;

  RacePair() = default;
  RacePair(LocId A, LocId B) {
    if (B < A) {
      First = B;
      Second = A;
    } else {
      First = A;
      Second = B;
    }
  }

  bool operator==(const RacePair &O) const {
    return First == O.First && Second == O.Second;
  }
};

struct RacePairHash {
  size_t operator()(const RacePair &P) const {
    return (static_cast<size_t>(P.First.value()) << 32) ^ P.Second.value();
  }
};

/// One concrete pair of conflicting, unordered events.
struct RaceInstance {
  EventIdx EarlierIdx = 0;
  EventIdx LaterIdx = 0;
  LocId EarlierLoc;
  LocId LaterLoc;
  VarId Var;

  /// Separation in events (§4.3's race distance).
  uint64_t distance() const { return LaterIdx - EarlierIdx; }

  RacePair pair() const { return RacePair(EarlierLoc, LaterLoc); }

  /// Renders "x: L3 (ev 12) <-> L9 (ev 845)" against \p T's name tables.
  std::string str(const Trace &T) const;
};

} // namespace rapid

#endif // RAPID_DETECT_RACE_H
