//===- detect/Race.cpp --------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/Race.h"

using namespace rapid;

std::string RaceInstance::str(const Trace &T) const {
  std::string Out = T.varName(Var);
  Out += ": ";
  Out += T.locName(EarlierLoc);
  Out += " (ev ";
  Out += std::to_string(EarlierIdx);
  Out += ") <-> ";
  Out += T.locName(LaterLoc);
  Out += " (ev ";
  Out += std::to_string(LaterIdx);
  Out += ")";
  return Out;
}
