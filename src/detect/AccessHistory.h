//===- detect/AccessHistory.h - Per-variable access records -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-(variable, thread) records of the most recent read and write. The
/// paper's check (§3.2) keeps joins R_x/W_x and only identifies the second
/// event of a race; recovering the first would need "to go over the trace
/// once more". Keeping the last access per thread instead gives both
/// endpoints in the single pass, because for cross-thread events
/// a ≤P b ⟺ N_a ≤ C_b(t(a)) (Lemma C.8 / Corollary C.1) — the check
/// degenerates to comparing one component. The join-based check is exactly
/// the conjunction of the per-thread checks, so the race *verdicts* are
/// identical to the paper's; we simply remember locations and indices too.
///
/// The table is growable: the constructor counts are capacity hints, and
/// both the per-variable states and the per-thread record arrays extend on
/// first touch. A history built against a trace prefix therefore behaves
/// exactly like one built against the final tables — variables and
/// threads that were never recorded have no records either way — which is
/// what lets streaming detectors admit new ids without a restart.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_ACCESSHISTORY_H
#define RAPID_DETECT_ACCESSHISTORY_H

#include "detect/Race.h"
#include "vc/VectorClock.h"

#include <vector>

namespace rapid {

/// Last access by one thread to one variable.
struct AccessRecord {
  ClockValue Clock = 0; ///< N of the access (its own component of C).
  LocId Loc;            ///< Program location of the access.
  EventIdx Idx = 0;     ///< Trace index of the access.

  bool valid() const { return Loc.isValid(); }
};

/// Access histories for every variable in a trace. Grows on first touch;
/// the constructor counts are sizing hints only.
class AccessHistory {
public:
  AccessHistory(uint32_t NumVars, uint32_t NumThreads);

  /// Records a read/write by \p T with local time \p N at \p Loc.
  void recordRead(VarId V, ThreadId T, ClockValue N, LocId Loc, EventIdx I);
  void recordWrite(VarId V, ThreadId T, ClockValue N, LocId Loc, EventIdx I);

  /// Race checks against the current event's time \p Ce. Appends one
  /// RaceInstance per racing prior access (at most one per thread and
  /// access kind) to \p Out. Returns true iff any race was found.
  ///
  /// A read races with unordered prior writes; a write races with
  /// unordered prior reads and writes (paper §3.2: W_x ⊑ C_e for reads,
  /// R_x ⊔ W_x ⊑ C_e for writes). \p Hard, when non-null, is a second
  /// clock consulted with ⊔ semantics (used by WCP for fork/join order,
  /// which is not part of P_t).
  bool checkRead(VarId V, ThreadId Self, const VectorClock &Ce, LocId Loc,
                 EventIdx I, std::vector<RaceInstance> &Out,
                 const VectorClock *Hard = nullptr) const;
  bool checkWrite(VarId V, ThreadId Self, const VectorClock &Ce, LocId Loc,
                  EventIdx I, std::vector<RaceInstance> &Out,
                  const VectorClock *Hard = nullptr) const;

private:
  struct VarState {
    std::vector<AccessRecord> LastRead;  ///< Indexed by thread.
    std::vector<AccessRecord> LastWrite; ///< Indexed by thread.
  };

  VarState &state(VarId V, ThreadId T);
  const VarState *stateIfPresent(VarId V) const;

  static void checkAgainst(const std::vector<AccessRecord> &Records,
                           ThreadId Self, const VectorClock &Ce,
                           const VectorClock *Hard, VarId V, LocId Loc,
                           EventIdx I, bool &Found,
                           std::vector<RaceInstance> &Out);

  uint32_t NumThreads; ///< High-water thread count (record sizing).
  // Lazily materialized per variable: most variables in big traces are
  // touched by one thread and never race.
  std::vector<VarState> States;
};

} // namespace rapid

#endif // RAPID_DETECT_ACCESSHISTORY_H
