//===- detect/RaceReport.cpp --------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/RaceReport.h"

#include <algorithm>

using namespace rapid;

bool RaceReport::addRace(const RaceInstance &Instance) {
  ++TotalInstances;
  RacePair P = Instance.pair();
  auto It = FirstInstance.find(P);
  if (It != FirstInstance.end()) {
    It->second.MinDistance =
        std::min(It->second.MinDistance, Instance.distance());
    return false;
  }
  FirstInstance.emplace(P, PairInfo{Instances.size(), Instance.distance()});
  Instances.push_back(Instance);
  return true;
}

uint64_t RaceReport::pairDistance(const RacePair &P) const {
  auto It = FirstInstance.find(P);
  if (It == FirstInstance.end())
    return 0;
  return It->second.MinDistance;
}

uint64_t RaceReport::maxPairDistance() const {
  uint64_t Max = 0;
  for (const auto &[Pair, Info] : FirstInstance)
    Max = std::max(Max, Info.MinDistance);
  return Max;
}

uint64_t RaceReport::numPairsWithDistanceAtLeast(uint64_t Threshold) const {
  uint64_t Count = 0;
  for (const auto &[Pair, Info] : FirstInstance)
    if (Info.MinDistance >= Threshold)
      ++Count;
  return Count;
}

void RaceReport::mergeFrom(const RaceReport &Other) {
  for (const RaceInstance &I : Other.Instances)
    addRace(I);
  // addRace already counted the first instances; fold in the remainder so
  // instance totals stay additive.
  TotalInstances += Other.TotalInstances - Other.Instances.size();
}

std::string RaceReport::str(const Trace &T) const {
  std::string Out;
  Out += std::to_string(numDistinctPairs());
  Out += " distinct race pair(s)\n";
  for (const RaceInstance &I : Instances) {
    Out += "  ";
    Out += I.str(T);
    Out += "\n";
  }
  return Out;
}
