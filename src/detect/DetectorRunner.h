//===- detect/DetectorRunner.h - Timed analysis driver ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a streaming detector over a full trace (the unwindowed mode the
/// paper insists on) or over fixed-size windows (the handicapped mode other
/// sound tools are forced into, §1/§4), timing the analysis.
///
/// runDetector is the shared primitive walk every engine builds on. The
/// windowed/sharded free functions below are *legacy adapters* kept for
/// their bit-for-bit contracts: they now delegate to the session API
/// (api/AnalysisSession.h), whose AnalysisConfig/AnalysisResult supersede
/// the per-function parameter lists and this file's RunResult. New code
/// should target the session API directly.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_DETECTORRUNNER_H
#define RAPID_DETECT_DETECTORRUNNER_H

#include "detect/Detector.h"

#include <functional>
#include <memory>

namespace rapid {

/// Outcome of one analysis run. Legacy shape: superseded by
/// api/AnalysisResult.h's AnalysisResult (which carries structured Status
/// errors instead of the stringly Error below); kept for the adapters.
struct RunResult {
  RaceReport Report;
  double Seconds = 0;
  std::string DetectorName;
  /// Set when a pipeline-backed run (windowed/sharded adapters) had a
  /// task fail; the report is then partial or empty, not "no races".
  std::string Error;
};

/// Runs \p D over all of \p T in trace order.
RunResult runDetector(Detector &D, const Trace &T);

struct TraceWindow;

/// Walks \p D over the fragment of \p W and returns its report with race
/// indices translated back to the parent trace — the per-window unit of
/// work shared by the batch pipeline and the streaming session's windowed
/// mode (one implementation, so the two modes cannot drift).
RaceReport runDetectorOnWindow(Detector &D, const TraceWindow &W);

/// Factory signature for windowed runs: each window gets a fresh detector,
/// mirroring how windowed tools restart their analysis per fragment.
using DetectorFactory = std::function<std::unique_ptr<Detector>(const Trace &)>;

/// Splits \p T into windows of \p WindowSize events, runs a fresh detector
/// per window and merges the reports. Race indices in the merged report are
/// translated back to the parent trace so distances stay meaningful.
RunResult runDetectorWindowed(const DetectorFactory &Make, const Trace &T,
                              uint64_t WindowSize);

/// Runs a fresh detector over \p T with its race checks split across
/// \p NumShards per-variable shards (detect/ShardedAccessHistory.h) on
/// \p NumThreads pool workers (0 = hardware concurrency). Unlike windowed
/// runs this loses nothing: the report is bit-identical to runDetector for
/// any shard count. Detectors without capture support fall back to the
/// sequential walk.
RunResult runDetectorSharded(const DetectorFactory &Make, const Trace &T,
                             uint32_t NumShards, unsigned NumThreads = 0);

} // namespace rapid

#endif // RAPID_DETECT_DETECTORRUNNER_H
