//===- detect/RaceReport.h - Accumulated race findings ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects race instances, deduplicates them into distinct location pairs
/// (the paper's headline metric, Table 1 columns 6-10), and tracks the
/// distance statistics of §4.3.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_RACEREPORT_H
#define RAPID_DETECT_RACEREPORT_H

#include "detect/Race.h"

#include <unordered_map>
#include <vector>

namespace rapid {

/// Accumulates race findings during one analysis run.
class RaceReport {
public:
  /// Records a race instance. Returns true iff its location pair is new.
  bool addRace(const RaceInstance &Instance);

  /// Number of distinct location pairs — the paper's "#Races".
  uint64_t numDistinctPairs() const { return FirstInstance.size(); }

  /// Total instances recorded (>= numDistinctPairs()).
  uint64_t numInstances() const { return TotalInstances; }

  /// First instance seen for each distinct pair, in discovery order.
  const std::vector<RaceInstance> &instances() const { return Instances; }

  /// Minimum observed distance for pair \p P over all its instances
  /// (the paper defines race distance as the minimum separation of any
  /// event pair exhibiting the location pair).
  uint64_t pairDistance(const RacePair &P) const;

  /// Largest per-pair minimum distance over all pairs (0 if no races):
  /// "the maximum distance being 53 million" (§4.3).
  uint64_t maxPairDistance() const;

  /// Number of distinct pairs whose distance is at least \p Threshold.
  uint64_t numPairsWithDistanceAtLeast(uint64_t Threshold) const;

  /// Whether \p P was reported.
  bool hasPair(const RacePair &P) const {
    return FirstInstance.find(P) != FirstInstance.end();
  }

  /// Merges \p Other into this report (used by windowed analyses that
  /// aggregate per-window findings).
  void mergeFrom(const RaceReport &Other);

  /// Multi-line rendering of all distinct pairs against \p T.
  std::string str(const Trace &T) const;

private:
  struct PairInfo {
    size_t InstanceSlot;
    uint64_t MinDistance;
  };
  std::unordered_map<RacePair, PairInfo, RacePairHash> FirstInstance;
  std::vector<RaceInstance> Instances;
  uint64_t TotalInstances = 0;
};

} // namespace rapid

#endif // RAPID_DETECT_RACEREPORT_H
