//===- detect/ShardedAccessHistory.cpp ----------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/ShardedAccessHistory.h"

using namespace rapid;

// ---- ClockBroadcast ---------------------------------------------------------

ClockBroadcast::ClockBroadcast(uint32_t NumThreads)
    : LastClock(NumThreads, DeferredAccess::NoClock),
      LastHard(NumThreads, DeferredAccess::NoClock) {}

uint32_t ClockBroadcast::publishInto(std::vector<uint32_t> &Last, ThreadId T,
                                     const VectorClock &C) {
  uint32_t &Prev = Last[T.value()];
  if (Prev != DeferredAccess::NoClock && Snapshots[Prev] == C)
    return Prev;
  Prev = static_cast<uint32_t>(Snapshots.size());
  Snapshots.push_back(C);
  return Prev;
}

uint32_t ClockBroadcast::publish(ThreadId T, const VectorClock &C) {
  return publishInto(LastClock, T, C);
}

uint32_t ClockBroadcast::publishHard(ThreadId T, const VectorClock &K) {
  return publishInto(LastHard, T, K);
}

// ---- AccessLog --------------------------------------------------------------

void AccessLog::record(EventIdx Idx, VarId V, ThreadId T, LocId Loc,
                       bool IsWrite, ClockValue N, const VectorClock &Ce,
                       const VectorClock *Hard) {
  DeferredAccess A;
  A.Idx = Idx;
  A.Var = V;
  A.Thread = T;
  A.Loc = Loc;
  A.N = N;
  A.IsWrite = IsWrite;
  A.Clock = Clocks.publish(T, Ce);
  if (Hard)
    A.Hard = Clocks.publishHard(T, *Hard);
  Accesses.push_back(A);
}

// ---- ShardedAccessHistory ---------------------------------------------------

ShardedAccessHistory::ShardedAccessHistory(ShardPlan Plan, uint32_t NumVars,
                                           uint32_t NumThreads)
    : Plan(Plan), NumVars(NumVars), NumThreads(NumThreads) {
  if (this->Plan.NumShards == 0)
    this->Plan.NumShards = 1;
  Work.resize(this->Plan.NumShards);
}

void ShardedAccessHistory::partition(const AccessLog &Log) {
  for (std::vector<uint32_t> &W : Work)
    W.clear();
  const std::vector<DeferredAccess> &Accesses = Log.accesses();
  for (uint32_t I = 0, E = static_cast<uint32_t>(Accesses.size()); I != E; ++I)
    Work[Plan.shardOf(Accesses[I].Var)].push_back(I);
}

std::vector<RaceInstance>
ShardedAccessHistory::checkShard(uint32_t S, const AccessLog &Log) const {
  std::vector<RaceInstance> Out;
  // Private partition: only this shard's variables, addressed by dense
  // local ids, so per-shard memory is NumVars/NumShards — the histories
  // genuinely split rather than replicate.
  AccessHistory History(Plan.numLocalVars(S, NumVars), NumThreads);
  const std::vector<DeferredAccess> &Accesses = Log.accesses();
  const ClockBroadcast &Clocks = Log.clocks();
  for (uint32_t I : Work[S]) {
    const DeferredAccess &A = Accesses[I];
    VarId Local(Plan.localIdOf(A.Var));
    const VectorClock &Ce = Clocks.snapshot(A.Clock);
    const VectorClock *Hard =
        A.Hard == DeferredAccess::NoClock ? nullptr : &Clocks.snapshot(A.Hard);
    size_t Before = Out.size();
    if (A.IsWrite) {
      History.checkWrite(Local, A.Thread, Ce, A.Loc, A.Idx, Out, Hard);
      History.recordWrite(Local, A.Thread, A.N, A.Loc, A.Idx);
    } else {
      History.checkRead(Local, A.Thread, Ce, A.Loc, A.Idx, Out, Hard);
      History.recordRead(Local, A.Thread, A.N, A.Loc, A.Idx);
    }
    // The history only knows local ids; restore the parent variable.
    for (size_t R = Before; R != Out.size(); ++R)
      Out[R].Var = A.Var;
  }
  return Out;
}

RaceReport ShardedAccessHistory::mergeInTraceOrder(
    const std::vector<std::vector<RaceInstance>> &PerShard) {
  RaceReport Report;
  std::vector<size_t> Cursor(PerShard.size(), 0);
  for (;;) {
    // Pick the shard whose next finding has the smallest later-event
    // index. Later indices never tie across shards (one event accesses
    // one variable, which lives in one shard), and within a shard the
    // findings of one event stay in their sequential push order — so this
    // interleaving is exactly the sequential discovery order.
    size_t Best = PerShard.size();
    for (size_t S = 0; S != PerShard.size(); ++S) {
      if (Cursor[S] == PerShard[S].size())
        continue;
      if (Best == PerShard.size() ||
          PerShard[S][Cursor[S]].LaterIdx < PerShard[Best][Cursor[Best]].LaterIdx)
        Best = S;
    }
    if (Best == PerShard.size())
      return Report;
    Report.addRace(PerShard[Best][Cursor[Best]++]);
  }
}
