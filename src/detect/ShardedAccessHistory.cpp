//===- detect/ShardedAccessHistory.cpp ----------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/ShardedAccessHistory.h"

#include "vc/Epoch.h"

#include <algorithm>
#include <numeric>

using namespace rapid;

// ---- ShardPlan --------------------------------------------------------------

ShardPlan ShardPlan::balancedByFrequency(uint32_t NumShards,
                                         const std::vector<uint64_t> &Counts) {
  ShardPlan Plan;
  Plan.NumShards = NumShards == 0 ? 1 : NumShards;
  const uint32_t NumVars = static_cast<uint32_t>(Counts.size());
  Plan.Assign.resize(NumVars);
  Plan.Local.resize(NumVars);
  Plan.ShardSizes.assign(Plan.NumShards, 0);

  // Longest-processing-time-first: heaviest variables placed first, each
  // onto the currently lightest shard. Ties break by variable id and by
  // shard id so the plan is a pure function of the counts.
  std::vector<uint32_t> Order(NumVars);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&Counts](uint32_t A, uint32_t B) {
    if (Counts[A] != Counts[B])
      return Counts[A] > Counts[B];
    return A < B;
  });
  std::vector<uint64_t> Load(Plan.NumShards, 0);
  for (uint32_t V : Order) {
    uint32_t Lightest = 0;
    for (uint32_t S = 1; S != Plan.NumShards; ++S)
      if (Load[S] < Load[Lightest])
        Lightest = S;
    Plan.Assign[V] = Lightest;
    Plan.Local[V] = Plan.ShardSizes[Lightest]++;
    Load[Lightest] += Counts[V];
  }
  return Plan;
}

uint64_t ShardPlan::maxShardLoad(const std::vector<uint64_t> &Counts) const {
  std::vector<uint64_t> Load(NumShards, 0);
  for (uint32_t V = 0, E = static_cast<uint32_t>(Counts.size()); V != E; ++V)
    Load[shardOf(VarId(V))] += Counts[V];
  uint64_t Max = 0;
  for (uint64_t L : Load)
    Max = std::max(Max, L);
  return Max;
}

// ---- ClockBroadcast ---------------------------------------------------------

ClockBroadcast::ClockBroadcast(uint32_t NumThreads)
    : LastClock(NumThreads, PerThread{DeferredAccess::NoClock, 0}),
      LastHard(NumThreads, PerThread{DeferredAccess::NoClock, 0}) {}

uint32_t ClockBroadcast::publishInto(std::vector<PerThread> &Last, ThreadId T,
                                     const VectorClock &C, uint64_t Epoch) {
  if (T.value() >= Last.size())
    Last.resize(T.value() + 1,
                PerThread{DeferredAccess::NoClock, 0}); // Mid-stream thread.
  PerThread &Prev = Last[T.value()];
  if (Prev.Last != DeferredAccess::NoClock) {
    // Epoch fast path: the clock provably did not mutate since the last
    // intern. Fallback: it may have mutated — compare content, which
    // still dedups joins that added nothing.
    if (Epoch != 0 && Prev.Epoch == Epoch)
      return Prev.Last;
    if (Snapshots[Prev.Last] == C) {
      Prev.Epoch = Epoch;
      return Prev.Last;
    }
  }
  Prev.Last = static_cast<uint32_t>(Snapshots.size());
  Prev.Epoch = Epoch;
  Snapshots.append(C);
  return Prev.Last;
}

uint32_t ClockBroadcast::publish(ThreadId T, const VectorClock &C,
                                 uint64_t Epoch) {
  return publishInto(LastClock, T, C, Epoch);
}

uint32_t ClockBroadcast::publishHard(ThreadId T, const VectorClock &K,
                                     uint64_t Epoch) {
  return publishInto(LastHard, T, K, Epoch);
}

// ---- AccessLog --------------------------------------------------------------

void AccessLog::record(EventIdx Idx, VarId V, ThreadId T, LocId Loc,
                       bool IsWrite, ClockValue N, const VectorClock &Ce,
                       uint64_t CeEpoch, const VectorClock *Hard,
                       uint64_t HardEpoch) {
  DeferredAccess A;
  A.Idx = Idx;
  A.Var = V;
  A.Thread = T;
  A.Loc = Loc;
  A.N = N;
  A.IsWrite = IsWrite;
  A.Clock = Clocks.publish(T, Ce, CeEpoch);
  if (Hard)
    A.Hard = Clocks.publishHard(T, *Hard, HardEpoch);
  Accesses.append(A);
}

// ---- ShardedAccessHistory ---------------------------------------------------

ShardedAccessHistory::ShardedAccessHistory(ShardPlan Plan, uint32_t NumVars,
                                           uint32_t NumThreads)
    : Plan(Plan), NumVars(NumVars), NumThreads(NumThreads) {
  if (this->Plan.NumShards == 0)
    this->Plan.NumShards = 1;
  Work.resize(this->Plan.NumShards);
}

void ShardedAccessHistory::partition(const AccessLog &Log) {
  for (std::vector<uint32_t> &W : Work)
    W.clear();
  Log.forEachAccess(0, Log.numAccesses(), [&](const DeferredAccess &A,
                                              uint64_t I) {
    Work[Plan.shardOf(A.Var)].push_back(static_cast<uint32_t>(I));
  });
}

namespace {

/// FastTrack's per-variable epoch state and checks, replayed inside one
/// shard. A line-for-line mirror of FastTrackDetector::processEvent's
/// Read/Write cases (hb/FastTrackDetector.cpp): same shortcuts, same check
/// order, same promotion rule — so the interleaved merge reproduces the
/// sequential FastTrack report bit for bit. The clock machinery already
/// ran in the capture pass; here C_t arrives as the broadcast snapshot.
class FastTrackShardReplayer {
public:
  FastTrackShardReplayer(uint32_t NumLocalVars, uint32_t NumThreads)
      : NumThreads(NumThreads), Vars(NumLocalVars) {}

  void replay(const DeferredAccess &A, VarId Local, const VectorClock &Ct,
              std::vector<RaceInstance> &Out) {
    // Growable like the live detector: variables/threads admitted
    // mid-stream start in the state up-front construction gives them.
    if (A.Thread.value() >= NumThreads)
      NumThreads = A.Thread.value() + 1;
    if (Local.value() >= Vars.size())
      Vars.resize(Local.value() + 1);
    VarState &S = Vars[Local.value()];
    ThreadId T = A.Thread;
    Epoch Mine(A.N, T);
    if (A.IsWrite) {
      if (S.Write == Mine) {
        // Same-epoch write: keep the freshest representative.
        S.WriteLoc = A.Loc;
        S.WriteIdx = A.Idx;
        return;
      }
      if (!S.Write.lessOrEqual(Ct) && S.Write.Thread != T)
        report(S.WriteIdx, S.WriteLoc, A, Out);
      if (S.ReadShared) {
        for (uint32_t U = 0, E = S.ReadVC.size(); U != E; ++U) {
          if (U == T.value())
            continue;
          ClockValue RU = S.ReadVC.get(ThreadId(U));
          if (RU != 0 && RU > Ct.get(ThreadId(U)))
            report(S.ReadInfo[U].Idx, S.ReadInfo[U].Loc, A, Out);
        }
      } else if (!S.Read.isNone() && !S.Read.lessOrEqual(Ct) &&
                 S.Read.Thread != T) {
        report(S.ReadIdx, S.ReadLoc, A, Out);
      }
      S.Write = Mine;
      S.WriteLoc = A.Loc;
      S.WriteIdx = A.Idx;
      return;
    }
    // Read: same-epoch shortcut, then the write-read check.
    if (!S.ReadShared && S.Read == Mine) {
      S.ReadLoc = A.Loc;
      S.ReadIdx = A.Idx;
      return;
    }
    if (!S.Write.lessOrEqual(Ct) && S.Write.Thread != T)
      report(S.WriteIdx, S.WriteLoc, A, Out);
    if (!S.ReadShared) {
      if (S.Read.isNone() || S.Read.lessOrEqual(Ct) || S.Read.Thread == T) {
        S.Read = Mine;
        S.ReadLoc = A.Loc;
        S.ReadIdx = A.Idx;
        return;
      }
      S.ReadShared = true;
      S.ReadVC = VectorClock(NumThreads);
      S.ReadInfo.assign(NumThreads, ReadLocInfo());
      S.ReadVC.set(S.Read.Thread, S.Read.Clock);
      S.ReadInfo[S.Read.Thread.value()] = {S.ReadLoc, S.ReadIdx};
    }
    if (S.ReadInfo.size() <= T.value())
      S.ReadInfo.resize(NumThreads); // Threads admitted after promotion.
    S.ReadVC.set(T, Mine.Clock);
    S.ReadInfo[T.value()] = {A.Loc, A.Idx};
  }

private:
  struct ReadLocInfo {
    LocId Loc;
    EventIdx Idx = 0;
  };
  struct VarState {
    Epoch Write;
    LocId WriteLoc;
    EventIdx WriteIdx = 0;
    Epoch Read;
    LocId ReadLoc;
    EventIdx ReadIdx = 0;
    bool ReadShared = false;
    VectorClock ReadVC;
    std::vector<ReadLocInfo> ReadInfo;
  };

  static void report(EventIdx EarlierIdx, LocId EarlierLoc,
                     const DeferredAccess &A, std::vector<RaceInstance> &Out) {
    RaceInstance Inst;
    Inst.EarlierIdx = EarlierIdx;
    Inst.LaterIdx = A.Idx;
    Inst.EarlierLoc = EarlierLoc;
    Inst.LaterLoc = A.Loc;
    Inst.Var = A.Var;
    Out.push_back(Inst);
  }

  uint32_t NumThreads;
  std::vector<VarState> Vars;
};

} // namespace

// ---- ShardChecker -----------------------------------------------------------

/// The selected engine: exactly one of the members is live (selected by
/// Replay at construction), so per-shard memory matches the old one-shot
/// checkShard.
struct ShardChecker::Impl {
  ShardReplay Replay;
  std::unique_ptr<AccessHistory> History;       ///< FullHistory engine.
  std::unique_ptr<FastTrackShardReplayer> Fast; ///< FastTrackEpoch engine.
  std::unique_ptr<ShardReplayer> Custom;        ///< Context-bearing engine.

  Impl(ShardReplay Replay, uint32_t NumLocalVars, uint32_t NumThreads,
       const ShardContext *Ctx)
      : Replay(Replay) {
    if (Replay == ShardReplay::FastTrackEpoch)
      Fast = std::make_unique<FastTrackShardReplayer>(NumLocalVars,
                                                      NumThreads);
    else if (Ctx && Replay == ShardReplay::SyncPClosure)
      Custom = Ctx->makeReplayer(NumLocalVars, NumThreads);
    else
      History = std::make_unique<AccessHistory>(NumLocalVars, NumThreads);
  }
};

ShardChecker::ShardChecker(ShardReplay Replay, uint32_t NumLocalVars,
                           uint32_t NumThreads, const ShardContext *Ctx)
    : I(std::make_unique<Impl>(Replay, NumLocalVars, NumThreads, Ctx)) {}

ShardChecker::~ShardChecker() = default;

void ShardChecker::replay(const DeferredAccess &A, VarId Local,
                          const VectorClock &Ce, const VectorClock *Hard) {
  ++Replayed;
  if (I->Custom) {
    I->Custom->replay(A, Local, Ce, Hard, Out);
    return;
  }
  if (I->Replay == ShardReplay::FastTrackEpoch) {
    I->Fast->replay(A, Local, Ce, Out);
    return;
  }
  size_t Before = Out.size();
  if (A.IsWrite) {
    I->History->checkWrite(Local, A.Thread, Ce, A.Loc, A.Idx, Out, Hard);
    I->History->recordWrite(Local, A.Thread, A.N, A.Loc, A.Idx);
  } else {
    I->History->checkRead(Local, A.Thread, Ce, A.Loc, A.Idx, Out, Hard);
    I->History->recordRead(Local, A.Thread, A.N, A.Loc, A.Idx);
  }
  // The history only knows local ids; restore the parent variable.
  for (size_t R = Before; R != Out.size(); ++R)
    Out[R].Var = A.Var;
}

std::vector<RaceInstance>
ShardedAccessHistory::checkShard(uint32_t S, const AccessLog &Log,
                                 ShardReplay Replay,
                                 const ShardContext *Ctx) const {
  // Private partition: only this shard's variables, addressed by dense
  // local ids, so per-shard memory is NumVars/NumShards — the histories
  // genuinely split rather than replicate. One engine serves both the
  // batch and streaming paths: this is the incremental ShardChecker fed
  // the full work list in one go.
  ShardChecker Checker(Replay, Plan.numLocalVars(S, NumVars), NumThreads, Ctx);
  const ClockBroadcast &Clocks = Log.clocks();
  for (uint32_t I : Work[S]) {
    const DeferredAccess &A = Log.access(I);
    Checker.replay(A, VarId(Plan.localIdOf(A.Var)), Clocks.snapshot(A.Clock),
                   A.Hard == DeferredAccess::NoClock
                       ? nullptr
                       : &Clocks.snapshot(A.Hard));
  }
  return std::move(Checker.findings());
}

RaceReport ShardedAccessHistory::mergeInTraceOrder(
    const std::vector<std::vector<RaceInstance>> &PerShard) {
  RaceReport Report;
  std::vector<size_t> Cursor(PerShard.size(), 0);
  for (;;) {
    // Pick the shard whose next finding has the smallest later-event
    // index. Later indices never tie across shards (one event accesses
    // one variable, which lives in one shard), and within a shard the
    // findings of one event stay in their sequential push order — so this
    // interleaving is exactly the sequential discovery order.
    size_t Best = PerShard.size();
    for (size_t S = 0; S != PerShard.size(); ++S) {
      if (Cursor[S] == PerShard[S].size())
        continue;
      if (Best == PerShard.size() ||
          PerShard[S][Cursor[S]].LaterIdx < PerShard[Best][Cursor[Best]].LaterIdx)
        Best = S;
    }
    if (Best == PerShard.size())
      return Report;
    Report.addRace(PerShard[Best][Cursor[Best]++]);
  }
}
