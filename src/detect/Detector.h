//===- detect/Detector.h - Streaming detector interface ---------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of all single-pass (streaming) race detectors: HB,
/// FastTrack, WCP and lockset. A detector is constructed against a trace's
/// dimensions (threads/locks/vars), consumes events in trace order, and
/// accumulates findings in a RaceReport.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_DETECTOR_H
#define RAPID_DETECT_DETECTOR_H

#include "detect/RaceReport.h"
#include "obs/Metrics.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <vector>

namespace rapid {

class AccessLog;
struct DeferredAccess;
class VectorClock;

/// How a capture-capable detector's deferred checks are replayed inside a
/// per-variable shard (detect/ShardedAccessHistory.h). Most detectors
/// replay through the shared full-history AccessHistory; FastTrack keeps
/// epoch/last-access state per variable instead, so its shard replay runs
/// the epoch algorithm; SyncP filters the full-history candidates through
/// its closure engine (src/syncp/), reached via the detector's
/// ShardContext.
enum class ShardReplay : uint8_t {
  FullHistory,    ///< AccessHistory checkRead/checkWrite + record (HB, WCP).
  FastTrackEpoch, ///< FastTrack's epoch checks, replayed per variable.
  SyncPClosure,   ///< Candidate pairs filtered by the SP-closure.
};

/// Per-shard replay engine for detectors whose shard checks need state
/// beyond the deferred access itself (ShardReplay::SyncPClosure). One
/// instance per shard, driven in that shard's trace order; instances for
/// distinct shards run concurrently, so anything shared through the
/// ShardContext must be safe to read in place.
class ShardReplayer {
public:
  virtual ~ShardReplayer();

  /// Replays one deferred access: run the detector-specific check, append
  /// findings (with \p A's parent-trace Var restored) to \p Out, record
  /// the access. \p Local is A.Var's dense shard-local id, \p Ce / \p Hard
  /// the clock snapshots the capture pass stored.
  virtual void replay(const DeferredAccess &A, VarId Local,
                      const VectorClock &Ce, const VectorClock *Hard,
                      std::vector<RaceInstance> &Out) = 0;
};

/// Read-only handle a capturing detector exports so shard checks can reach
/// lane-wide state the clock pass built (e.g. the SyncP event index). The
/// detector owns it and must outlive every shard using it; shard drains
/// read it concurrently with the capture pass appending, synchronized
/// through the AccessLog commit watermark.
class ShardContext {
public:
  virtual ~ShardContext();

  /// Builds the replay engine for one shard (sizing hints as in
  /// ShardChecker's constructor — engines grow on first touch).
  virtual std::unique_ptr<ShardReplayer>
  makeReplayer(uint32_t NumLocalVars, uint32_t NumThreads) const = 0;
};

/// Abstract streaming race detector.
class Detector {
public:
  virtual ~Detector();

  /// Processes the \p Index-th event of the trace.
  virtual void processEvent(const Event &E, EventIdx Index) = 0;

  /// Per-variable sharded mode (detect/ShardedAccessHistory.h). A
  /// detector whose race checks partition by variable redirects them into
  /// \p Log — subsequent processEvent calls run only the clock machinery
  /// and append each read/write with its clocks — and returns true. The
  /// base class does not support it; such detectors run their lane
  /// sequentially under sharded pipelines.
  virtual bool beginCapture(AccessLog &Log) {
    (void)Log;
    return false;
  }

  /// Which replay engine the shard phase must use for this detector's
  /// deferred checks. Only meaningful when beginCapture returned true.
  virtual ShardReplay shardReplay() const { return ShardReplay::FullHistory; }

  /// Lane-wide state the shard phase needs when shardReplay() is a
  /// context-bearing kind (SyncPClosure); null for the self-contained
  /// replays. Owned by the detector, which outlives every shard check.
  virtual const ShardContext *shardContext() const { return nullptr; }

  /// Called once after the last event; detectors with buffered state may
  /// flush diagnostics here.
  virtual void finish() {}

  /// Short name used by reports and tables ("HB", "WCP", ...).
  virtual std::string name() const = 0;

  /// Appends detector-specific metric samples to \p Out (e.g. WCP's
  /// "wcp.queue_peak_abstract" — the paper's Table 1 queue telemetry).
  /// Called under the owning lane's snapshot lock, possibly mid-stream:
  /// implementations must only read state, never mutate it. Default: no
  /// samples.
  virtual void telemetry(std::vector<MetricSample> &Out) const { (void)Out; }

  const RaceReport &report() const { return Report; }
  RaceReport &report() { return Report; }

protected:
  RaceReport Report;
};

} // namespace rapid

#endif // RAPID_DETECT_DETECTOR_H
