//===- detect/Detector.h - Streaming detector interface ---------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of all single-pass (streaming) race detectors: HB,
/// FastTrack, WCP and lockset. A detector is constructed against a trace's
/// dimensions (threads/locks/vars), consumes events in trace order, and
/// accumulates findings in a RaceReport.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_DETECT_DETECTOR_H
#define RAPID_DETECT_DETECTOR_H

#include "detect/RaceReport.h"
#include "obs/Metrics.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

class AccessLog;

/// How a capture-capable detector's deferred checks are replayed inside a
/// per-variable shard (detect/ShardedAccessHistory.h). Most detectors
/// replay through the shared full-history AccessHistory; FastTrack keeps
/// epoch/last-access state per variable instead, so its shard replay runs
/// the epoch algorithm.
enum class ShardReplay : uint8_t {
  FullHistory,    ///< AccessHistory checkRead/checkWrite + record (HB, WCP).
  FastTrackEpoch, ///< FastTrack's epoch checks, replayed per variable.
};

/// Abstract streaming race detector.
class Detector {
public:
  virtual ~Detector();

  /// Processes the \p Index-th event of the trace.
  virtual void processEvent(const Event &E, EventIdx Index) = 0;

  /// Per-variable sharded mode (detect/ShardedAccessHistory.h). A
  /// detector whose race checks partition by variable redirects them into
  /// \p Log — subsequent processEvent calls run only the clock machinery
  /// and append each read/write with its clocks — and returns true. The
  /// base class does not support it; such detectors run their lane
  /// sequentially under sharded pipelines.
  virtual bool beginCapture(AccessLog &Log) {
    (void)Log;
    return false;
  }

  /// Which replay engine the shard phase must use for this detector's
  /// deferred checks. Only meaningful when beginCapture returned true.
  virtual ShardReplay shardReplay() const { return ShardReplay::FullHistory; }

  /// Called once after the last event; detectors with buffered state may
  /// flush diagnostics here.
  virtual void finish() {}

  /// Short name used by reports and tables ("HB", "WCP", ...).
  virtual std::string name() const = 0;

  /// Appends detector-specific metric samples to \p Out (e.g. WCP's
  /// "wcp.queue_peak_abstract" — the paper's Table 1 queue telemetry).
  /// Called under the owning lane's snapshot lock, possibly mid-stream:
  /// implementations must only read state, never mutate it. Default: no
  /// samples.
  virtual void telemetry(std::vector<MetricSample> &Out) const { (void)Out; }

  const RaceReport &report() const { return Report; }
  RaceReport &report() { return Report; }

protected:
  RaceReport Report;
};

} // namespace rapid

#endif // RAPID_DETECT_DETECTOR_H
