//===- mcm/WindowedPredictor.cpp ----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "mcm/WindowedPredictor.h"

#include "support/Timer.h"
#include "trace/Window.h"

using namespace rapid;

PredictorResult rapid::runWindowedPredictor(const Trace &T,
                                            const PredictorOptions &Opts) {
  Timer Clock;
  PredictorResult Result;
  McmOptions Mcm;
  Mcm.MaxStates = Opts.BudgetPerWindow;
  Mcm.DetectDeadlocks = Opts.DetectDeadlocks;

  for (TraceWindow &W : splitIntoWindows(T, Opts.WindowSize)) {
    ++Result.NumWindows;
    McmResult R = exploreMcm(W.Fragment, Mcm);
    Result.TotalStates += R.StatesExpanded;
    if (R.BudgetExhausted)
      ++Result.WindowsExhausted;
    Result.DeadlockFound |= R.DeadlockFound;
    for (RaceInstance Inst : R.Report.instances()) {
      Inst.EarlierIdx = W.Original[Inst.EarlierIdx];
      Inst.LaterIdx = W.Original[Inst.LaterIdx];
      Result.Report.addRace(Inst);
    }
  }
  Result.Seconds = Clock.seconds();
  return Result;
}
