//===- mcm/WindowedPredictor.h - RVPredict-style analysis -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The windowed predictive analysis the paper benchmarks against
/// (RVPredict [18]): maximal-causality search applied to bounded trace
/// fragments, because the search is exponential and cannot run on whole
/// traces. Two parameters mirror RVPredict's knobs in Table 1 / Figure 7:
/// the window size and the per-window budget (RVPredict: SMT solver
/// timeout; here: explored-state limit). The tight interplay between the
/// two — bigger windows need far more budget — is exactly the effect
/// Figure 7 plots.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_MCM_WINDOWEDPREDICTOR_H
#define RAPID_MCM_WINDOWEDPREDICTOR_H

#include "mcm/McmSearch.h"

namespace rapid {

/// Knobs for a windowed predictive run.
struct PredictorOptions {
  uint64_t WindowSize = 1000;       ///< Events per fragment ("1K").
  uint64_t BudgetPerWindow = 50000; ///< States per fragment ("timeout").
  bool DetectDeadlocks = false;
};

/// Aggregate outcome over all windows.
struct PredictorResult {
  RaceReport Report;
  double Seconds = 0;
  uint64_t NumWindows = 0;
  uint64_t WindowsExhausted = 0; ///< Windows that hit the budget.
  uint64_t TotalStates = 0;
  bool DeadlockFound = false;
};

/// Runs the maximal-causality search over consecutive windows of \p T and
/// merges the findings (translated back to parent-trace indices).
PredictorResult runWindowedPredictor(const Trace &T,
                                     const PredictorOptions &Opts);

} // namespace rapid

#endif // RAPID_MCM_WINDOWEDPREDICTOR_H
