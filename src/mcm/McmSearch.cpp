//===- mcm/McmSearch.cpp ------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "mcm/McmSearch.h"

#include <algorithm>
#include <unordered_map>

using namespace rapid;

namespace {

constexpr uint32_t NoWriter = UINT32_MAX;
constexpr uint32_t NoThread = UINT32_MAX;
constexpr uint32_t NoParent = UINT32_MAX;

/// Search state: per-thread prefix lengths plus the last scheduled writer
/// per variable. Lock ownership is a function of the prefixes but is kept
/// denormalized for speed; it is *not* part of the memo key.
struct State {
  std::vector<uint32_t> Next;
  std::vector<uint32_t> LastWriter;
  std::vector<uint32_t> HeldBy;
  uint32_t Id = NoParent;

  std::vector<uint32_t> key() const {
    std::vector<uint32_t> K = Next;
    K.insert(K.end(), LastWriter.begin(), LastWriter.end());
    return K;
  }
};

struct KeyHash {
  size_t operator()(const std::vector<uint32_t> &K) const {
    uint64_t H = 0x9e3779b97f4a7c15ULL;
    for (uint32_t W : K) {
      H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H *= 0xff51afd7ed558ccdULL;
    }
    return static_cast<size_t>(H);
  }
};

/// Immutable per-trace structure shared by all states.
struct Structure {
  const Trace &T;
  std::vector<std::vector<EventIdx>> Proj; ///< σ|t as event indices.
  std::vector<uint32_t> OrigWriter; ///< Per event: last writer in σ (reads).
  /// Fork gate: child thread -> (parent thread, #parent events that must
  /// be scheduled before the child may start). NoThread if ungated.
  std::vector<std::pair<uint32_t, uint32_t>> ForkGate;

  explicit Structure(const Trace &Tr) : T(Tr) {
    uint32_t NumThreads = T.numThreads();
    Proj.resize(NumThreads);
    ForkGate.assign(NumThreads, {NoThread, 0});
    OrigWriter.assign(T.size(), NoWriter);
    std::vector<uint32_t> LastWrite(T.numVars(), NoWriter);
    const std::vector<Event> &Events = T.events();
    for (EventIdx I = 0; I != T.size(); ++I) {
      const Event &E = Events[I];
      uint32_t Tid = E.Thread.value();
      if (E.Kind == EventKind::Fork)
        ForkGate[E.targetThread().value()] = {
            Tid, static_cast<uint32_t>(Proj[Tid].size() + 1)};
      if (E.Kind == EventKind::Read)
        OrigWriter[I] = LastWrite[E.var().value()];
      Proj[Tid].push_back(I);
      if (E.Kind == EventKind::Write)
        LastWrite[E.var().value()] = static_cast<uint32_t>(I);
    }
  }
};

class Explorer {
public:
  Explorer(const Trace &T, const McmOptions &Opts)
      : T(T), Opts(Opts), S(T) {}

  McmResult run();

private:
  bool isEnabled(const State &St, uint32_t Tid, EventIdx &OutEvent) const;
  void checkRaces(const State &St,
                  const std::vector<std::pair<uint32_t, EventIdx>> &Enabled,
                  McmResult &Result, bool &Stop);
  void checkDeadlock(const State &St, McmResult &Result, bool &Stop);
  std::vector<EventIdx> reconstructPath(uint32_t StateId) const;
  void recordRace(EventIdx A, EventIdx B, const State &St, McmResult &Result,
                  bool &Stop);

  const Trace &T;
  const McmOptions &Opts;
  Structure S;

  // Witness bookkeeping (only used with TrackWitnesses).
  std::vector<std::pair<uint32_t, EventIdx>> Parents; ///< Id -> (parent, ev).
};

bool Explorer::isEnabled(const State &St, uint32_t Tid,
                         EventIdx &OutEvent) const {
  const std::vector<EventIdx> &P = S.Proj[Tid];
  uint32_t Pos = St.Next[Tid];
  if (Pos >= P.size())
    return false;
  // Fork gating: the child's events wait for the parent's fork.
  if (Pos == 0) {
    auto [Parent, Needed] = S.ForkGate[Tid];
    if (Parent != NoThread && St.Next[Parent] < Needed)
      return false;
  }
  EventIdx I = P[Pos];
  const Event &E = T.event(I);
  OutEvent = I;
  switch (E.Kind) {
  case EventKind::Acquire:
    return St.HeldBy[E.lock().value()] == NoThread;
  case EventKind::Read:
    // Correct-reordering constraint: the read must see the same last
    // writer as in σ.
    return St.LastWriter[E.var().value()] == S.OrigWriter[I];
  case EventKind::Join:
    return St.Next[E.targetThread().value()] ==
           S.Proj[E.targetThread().value()].size();
  case EventKind::Release:
  case EventKind::Write:
  case EventKind::Fork:
    return true;
  }
  return false;
}

void Explorer::recordRace(EventIdx A, EventIdx B, const State &St,
                          McmResult &Result, bool &Stop) {
  if (A > B)
    std::swap(A, B);
  RaceInstance Inst;
  Inst.EarlierIdx = A;
  Inst.LaterIdx = B;
  Inst.EarlierLoc = T.event(A).Loc;
  Inst.LaterLoc = T.event(B).Loc;
  Inst.Var = T.event(B).var();
  bool NewPair = Result.Report.addRace(Inst);
  bool IsTarget = Opts.TargetPair && Inst.pair() == *Opts.TargetPair;
  // With a target pair, only its witness matters; otherwise keep the first.
  bool WantWitness =
      Opts.TrackWitnesses &&
      (Opts.TargetPair ? IsTarget && Result.RaceWitness.empty()
                       : NewPair && Result.RaceWitness.empty());
  if (WantWitness) {
    Result.RaceWitness = reconstructPath(St.Id);
    // Order the adjacent pair so any read still sees its original writer:
    // a read goes first unless its original writer is the other event.
    EventIdx First = A, Second = B;
    const Event &EA = T.event(A);
    const Event &EB = T.event(B);
    if (EA.Kind == EventKind::Read) {
      if (S.OrigWriter[A] == B)
        std::swap(First, Second); // Write must precede its reader.
    } else if (EB.Kind == EventKind::Read) {
      if (S.OrigWriter[B] != A)
        std::swap(First, Second); // Read first, keeping its old writer.
    }
    Result.RaceWitness.push_back(First);
    Result.RaceWitness.push_back(Second);
  }
  if (IsTarget)
    Stop = true;
}

void Explorer::checkRaces(
    const State &St, const std::vector<std::pair<uint32_t, EventIdx>> &Enabled,
    McmResult &Result, bool &Stop) {
  // A race is two threads whose *next* events are conflicting accesses:
  // the current prefix followed by the two accesses back-to-back is the
  // paper's race-revealing reordering. The racing accesses themselves are
  // exempt from the read-sees-same-writer rule — the paper's own witness
  // for Figure 2b (e5, e6, e1) schedules the racy read before its
  // original writer. Memory accesses never block, so only the fork gate
  // can make a next access unavailable.
  std::vector<EventIdx> NextAccesses;
  for (uint32_t Tid = 0; Tid < T.numThreads(); ++Tid) {
    if (St.Next[Tid] >= S.Proj[Tid].size())
      continue;
    if (St.Next[Tid] == 0) {
      auto [Parent, Needed] = S.ForkGate[Tid];
      if (Parent != NoThread && St.Next[Parent] < Needed)
        continue;
    }
    EventIdx I = S.Proj[Tid][St.Next[Tid]];
    if (isAccess(T.event(I).Kind))
      NextAccesses.push_back(I);
  }
  for (size_t I = 0; I < NextAccesses.size() && !Stop; ++I)
    for (size_t J = I + 1; J < NextAccesses.size() && !Stop; ++J)
      if (Event::conflicting(T.event(NextAccesses[I]),
                             T.event(NextAccesses[J])))
        recordRace(NextAccesses[I], NextAccesses[J], St, Result, Stop);
}

void Explorer::checkDeadlock(const State &St, McmResult &Result, bool &Stop) {
  // Wait-for edges: thread blocked on acq(ℓ) -> current holder of ℓ. Each
  // blocked thread has exactly one outgoing edge, so cycles are found by
  // pointer chasing.
  uint32_t NumThreads = T.numThreads();
  std::vector<uint32_t> WaitsFor(NumThreads, NoThread);
  for (uint32_t Tid = 0; Tid < NumThreads; ++Tid) {
    if (St.Next[Tid] >= S.Proj[Tid].size())
      continue;
    EventIdx I = S.Proj[Tid][St.Next[Tid]];
    const Event &E = T.event(I);
    if (E.Kind != EventKind::Acquire)
      continue;
    uint32_t Holder = St.HeldBy[E.lock().value()];
    if (Holder != NoThread && Holder != Tid)
      WaitsFor[Tid] = Holder;
  }
  std::vector<uint8_t> Color(NumThreads, 0);
  for (uint32_t Start = 0; Start < NumThreads; ++Start) {
    if (Color[Start] != 0)
      continue;
    uint32_t Cur = Start;
    std::vector<uint32_t> Path;
    while (Cur != NoThread && Color[Cur] == 0) {
      Color[Cur] = 1;
      Path.push_back(Cur);
      Cur = WaitsFor[Cur];
    }
    if (Cur != NoThread && Color[Cur] == 1) {
      // Found a cycle; extract it.
      Result.DeadlockFound = true;
      auto It = std::find(Path.begin(), Path.end(), Cur);
      if (Opts.TrackWitnesses && Result.DeadlockWitness.empty()) {
        Result.DeadlockWitness = reconstructPath(St.Id);
        for (; It != Path.end(); ++It)
          Result.DeadlockedThreads.push_back(ThreadId(*It));
      }
      if (!Opts.TargetPair)
        Stop = Stop || false; // Keep exploring for races unless targeted.
    }
    for (uint32_t P : Path)
      Color[P] = 2;
  }
}

std::vector<EventIdx> Explorer::reconstructPath(uint32_t StateId) const {
  std::vector<EventIdx> Path;
  uint32_t Cur = StateId;
  while (Cur != NoParent) {
    auto [Parent, Via] = Parents[Cur];
    if (Parent == NoParent)
      break;
    Path.push_back(Via);
    Cur = Parent;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

McmResult Explorer::run() {
  McmResult Result;
  uint32_t NumThreads = T.numThreads();

  State Initial;
  Initial.Next.assign(NumThreads, 0);
  Initial.LastWriter.assign(T.numVars(), NoWriter);
  Initial.HeldBy.assign(T.numLocks(), NoThread);
  Initial.Id = 0;
  if (Opts.TrackWitnesses)
    Parents.emplace_back(NoParent, 0);

  std::unordered_map<std::vector<uint32_t>, uint32_t, KeyHash> Visited;
  Visited.emplace(Initial.key(), 0u);

  std::vector<State> Stack;
  Stack.push_back(std::move(Initial));

  bool Stop = false;
  while (!Stack.empty() && !Stop) {
    State St = std::move(Stack.back());
    Stack.pop_back();

    if (Result.StatesExpanded >= Opts.MaxStates) {
      Result.BudgetExhausted = true;
      break;
    }
    ++Result.StatesExpanded;

    std::vector<std::pair<uint32_t, EventIdx>> Enabled;
    for (uint32_t Tid = 0; Tid < NumThreads; ++Tid) {
      EventIdx I;
      if (isEnabled(St, Tid, I))
        Enabled.emplace_back(Tid, I);
    }

    checkRaces(St, Enabled, Result, Stop);
    if (Opts.DetectDeadlocks)
      checkDeadlock(St, Result, Stop);
    if (Stop)
      break;

    for (const auto &[Tid, I] : Enabled) {
      State Succ = St;
      Succ.Next[Tid] += 1;
      const Event &E = T.event(I);
      switch (E.Kind) {
      case EventKind::Acquire:
        Succ.HeldBy[E.lock().value()] = Tid;
        break;
      case EventKind::Release:
        Succ.HeldBy[E.lock().value()] = NoThread;
        break;
      case EventKind::Write:
        Succ.LastWriter[E.var().value()] = static_cast<uint32_t>(I);
        break;
      default:
        break;
      }
      uint32_t NextId =
          Opts.TrackWitnesses ? static_cast<uint32_t>(Parents.size()) : 0;
      auto [It, New] = Visited.emplace(Succ.key(), NextId);
      if (!New)
        continue;
      Succ.Id = It->second;
      if (Opts.TrackWitnesses)
        Parents.emplace_back(St.Id, I);
      Stack.push_back(std::move(Succ));
    }
  }
  return Result;
}

} // namespace

McmResult rapid::exploreMcm(const Trace &T, const McmOptions &Opts) {
  Explorer E(T, Opts);
  return E.run();
}
