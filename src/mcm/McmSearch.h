//===- mcm/McmSearch.h - Maximal-causality exploration ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive exploration of the *maximal causal model* of a trace: every
/// correct reordering (per §2.1 — per-thread prefixes, every read sees its
/// original writer, lock semantics respected) is reachable. This is the
/// repo's stand-in for RVPredict [18]: RVPredict encodes the same model
/// into SMT and asks a solver; we explore the state space directly. The
/// node *budget* plays the role of the solver timeout — larger windows
/// blow up the state space and exhaust the budget before all races are
/// found, reproducing the window/timeout interplay of Figure 7.
///
/// A state is (per-thread prefix lengths, last scheduled writer per
/// variable); lock ownership is derivable from the prefixes. Two enabled
/// next-events of different threads that conflict constitute a race
/// witness: the prefix followed by the two accesses back-to-back is a
/// correct reordering exhibiting the race. A cycle in the wait-for graph
/// over blocked threads is a predictable deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_MCM_MCMSEARCH_H
#define RAPID_MCM_MCMSEARCH_H

#include "detect/RaceReport.h"
#include "trace/Trace.h"

#include <optional>
#include <vector>

namespace rapid {

/// Tuning knobs for one exploration.
struct McmOptions {
  /// Maximum number of distinct states to expand; the "solver timeout".
  uint64_t MaxStates = 1'000'000;
  /// Also search for predictable deadlocks (wait-for cycles).
  bool DetectDeadlocks = false;
  /// Record parent pointers so witnesses can be reconstructed (memory-
  /// hungry; verify/ uses it, the windowed predictor does not).
  bool TrackWitnesses = false;
  /// Stop as soon as this location pair is witnessed.
  std::optional<RacePair> TargetPair;
};

/// Outcome of one exploration.
struct McmResult {
  RaceReport Report;
  bool BudgetExhausted = false;
  uint64_t StatesExpanded = 0;
  bool DeadlockFound = false;
  /// Schedule (original event indices) of a correct reordering ending
  /// with the two racing accesses adjacent; filled for the first race
  /// (or the target pair) when TrackWitnesses is set.
  std::vector<EventIdx> RaceWitness;
  /// Schedule after which a set of threads deadlocks; filled when
  /// TrackWitnesses and DetectDeadlocks are set.
  std::vector<EventIdx> DeadlockWitness;
  /// Threads forming the wait-for cycle of DeadlockWitness.
  std::vector<ThreadId> DeadlockedThreads;
};

/// Explores the maximal causal model of \p T.
McmResult exploreMcm(const Trace &T, const McmOptions &Opts = {});

} // namespace rapid

#endif // RAPID_MCM_MCMSEARCH_H
