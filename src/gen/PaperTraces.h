//===- gen/PaperTraces.h - Figures 1-6 as traces ----------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worked examples of the paper, encoded verbatim. Each figure comes
/// with the verdicts the paper states for it (HB/CP/WCP race presence,
/// predictable race/deadlock existence), which the test suite asserts
/// against every engine in the repo. Event locations are named "line<k>"
/// after the figure's line numbers, so race pairs in test failures read
/// like the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_PAPERTRACES_H
#define RAPID_GEN_PAPERTRACES_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// One paper figure with its stated verdicts.
struct PaperTrace {
  std::string Name;       ///< "fig1a", "fig2b", ...
  Trace T;
  bool HbRace;            ///< Does HB report a race?
  bool CpRace;            ///< Does CP report a race?
  bool WcpRace;           ///< Does WCP report a race?
  bool PredictableRace;   ///< Does a correct reordering exhibit a race?
  bool PredictableDeadlock; ///< ... or a deadlock?
  /// For figures with a named racy variable ("y", "z"): its name.
  std::string RacyVar;
};

PaperTrace paperFig1a(); ///< Locked x accesses; no race anywhere.
PaperTrace paperFig1b(); ///< Race on y; HB misses, CP and WCP catch it.
PaperTrace paperFig2a(); ///< No predictable race; CP and WCP agree.
PaperTrace paperFig2b(); ///< Race on y; CP misses it, WCP catches it.
PaperTrace paperFig3();  ///< Weakened rule (b): CP "no race", WCP "race".
PaperTrace paperFig4();  ///< Three threads; WCP race, CP none.
PaperTrace paperFig5();  ///< Predictable *deadlock* only; WCP flags it.
PaperTrace paperFig6();  ///< Queue-motivating trace for Algorithm 1.

/// All of the above.
std::vector<PaperTrace> allPaperTraces();

} // namespace rapid

#endif // RAPID_GEN_PAPERTRACES_H
