//===- gen/ProgramSim.h - Concurrent program simulator ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-generation pipeline. The paper obtains traces by running Java
/// benchmarks under RVPredict's logger; offline, we substitute a *program
/// simulator*: small concurrent programs (threads with operation lists)
/// executed by a deterministic seeded scheduler that respects lock
/// semantics and fork/join, emitting a valid trace. The workload suite
/// (Workloads.h) models each Table 1 benchmark as such a program.
///
/// Two scheduler-only operations, `post(ticket)` / `await(ticket)`, gate
/// *when* a thread may proceed without emitting any event. They model the
/// timing accidents of a real recorded execution (a thread happening to
/// run later), which is exactly what lets workloads plant races at
/// controlled trace positions: the gating fixes the interleaving, but —
/// emitting no events — adds no happens-before edges.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_PROGRAMSIM_H
#define RAPID_GEN_PROGRAMSIM_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// One operation of a thread program.
struct ProgramOp {
  enum class Kind : uint8_t {
    Acquire,
    Release,
    Read,
    Write,
    Fork,
    Join,
    Post,  ///< Scheduler-only: publish ticket Target (no event emitted).
    Await, ///< Scheduler-only: wait for ticket Target (no event emitted).
  };
  Kind K;
  std::string Target; ///< Lock, variable, thread or ticket name.
  std::string Loc;    ///< Program location; "" = auto.
};

/// A thread's straight-line program.
struct ThreadProgram {
  std::string Name;
  std::vector<ProgramOp> Ops;
};

/// A complete program: a set of thread programs.
struct Program {
  std::vector<ThreadProgram> Threads;

  /// Returns (creating if needed) the program of thread \p Name.
  ThreadProgram &thread(const std::string &Name);
};

/// Fluent builder for one thread's program.
class ThreadScript {
public:
  ThreadScript(Program &P, const std::string &Name)
      : TP(P.thread(Name)) {}

  ThreadScript &acq(const std::string &L, const std::string &Loc = {});
  ThreadScript &rel(const std::string &L, const std::string &Loc = {});
  ThreadScript &read(const std::string &X, const std::string &Loc = {});
  ThreadScript &write(const std::string &X, const std::string &Loc = {});
  ThreadScript &fork(const std::string &Child, const std::string &Loc = {});
  ThreadScript &join(const std::string &Child, const std::string &Loc = {});
  ThreadScript &post(const std::string &Ticket);
  ThreadScript &await(const std::string &Ticket);

  /// acq(L) read(X) write(X) rel(L) — a protected counter bump.
  ThreadScript &lockedIncrement(const std::string &L, const std::string &X,
                                const std::string &Loc = {});

private:
  ThreadProgram &TP;
};

/// Scheduler configuration.
struct SimOptions {
  uint64_t Seed = 1;
  /// Probability (percent) of staying on the current thread when it is
  /// still runnable; higher values produce longer per-thread bursts, like
  /// real schedulers.
  uint32_t BurstPercent = 60;
};

/// Outcome of simulating a program.
struct SimResult {
  bool Ok = false;
  std::string Error; ///< E.g. "simulated program deadlocked".
  Trace T;
};

/// Executes \p P under a deterministic random scheduler.
SimResult simulate(const Program &P, const SimOptions &Opts = {});

} // namespace rapid

#endif // RAPID_GEN_PROGRAMSIM_H
