//===- gen/PaperTraces.cpp ----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/PaperTraces.h"

#include "trace/TraceBuilder.h"

using namespace rapid;

namespace {

/// Small helper that numbers locations like the paper's line numbers and
/// expands the paper's sync(x)/acrl(y) shorthands.
class FigBuilder {
public:
  TraceBuilder B;
  int Line = 0;

  std::string loc() { return "line" + std::to_string(++Line); }

  void r(const char *T, const char *X) { B.read(T, X, loc()); }
  void w(const char *T, const char *X) { B.write(T, X, loc()); }
  void acq(const char *T, const char *L) { B.acquire(T, L, loc()); }
  void rel(const char *T, const char *L) { B.release(T, L, loc()); }

  /// sync(x): acq(x) r(xVar) w(xVar) rel(x), one paper line.
  void sync(const char *T, const char *L) {
    std::string Where = loc();
    std::string Var = std::string(L) + "Var";
    B.acquire(T, L, Where + ".a");
    B.read(T, Var, Where + ".r");
    B.write(T, Var, Where + ".w");
    B.release(T, L, Where + ".l");
  }

  /// acrl(y): acq(y) rel(y), one paper line.
  void acrl(const char *T, const char *L) {
    std::string Where = loc();
    B.acquire(T, L, Where + ".a");
    B.release(T, L, Where + ".l");
  }
};

} // namespace

PaperTrace rapid::paperFig1a() {
  FigBuilder F;
  F.acq("t1", "l");
  F.r("t1", "x");
  F.w("t1", "x");
  F.rel("t1", "l");
  F.acq("t2", "l");
  F.r("t2", "x");
  F.w("t2", "x");
  F.rel("t2", "l");
  return PaperTrace{"fig1a", F.B.take(), false, false, false,
                    false, false, ""};
}

PaperTrace rapid::paperFig1b() {
  FigBuilder F;
  F.w("t1", "y");
  F.acq("t1", "l");
  F.r("t1", "x");
  F.rel("t1", "l");
  F.acq("t2", "l");
  F.r("t2", "x");
  F.rel("t2", "l");
  F.r("t2", "y");
  return PaperTrace{"fig1b", F.B.take(), false, true, true, true, false, "y"};
}

PaperTrace rapid::paperFig2a() {
  FigBuilder F;
  F.w("t1", "y");
  F.acq("t1", "l");
  F.w("t1", "x");
  F.rel("t1", "l");
  F.acq("t2", "l");
  F.r("t2", "x");
  F.r("t2", "y");
  F.rel("t2", "l");
  return PaperTrace{"fig2a", F.B.take(), false, false, false,
                    false, false, ""};
}

PaperTrace rapid::paperFig2b() {
  FigBuilder F;
  F.w("t1", "y");
  F.acq("t1", "l");
  F.w("t1", "x");
  F.rel("t1", "l");
  F.acq("t2", "l");
  F.r("t2", "y");
  F.r("t2", "x");
  F.rel("t2", "l");
  return PaperTrace{"fig2b", F.B.take(), false, false, true, true, false, "y"};
}

PaperTrace rapid::paperFig3() {
  FigBuilder F;
  F.acq("t1", "l");   // 1
  F.sync("t1", "x");  // 2
  F.r("t1", "z");     // 3
  F.rel("t1", "l");   // 4
  F.sync("t2", "x");  // 5
  F.acq("t2", "l");   // 6
  F.acq("t2", "n");   // 7
  F.rel("t2", "n");   // 8
  F.rel("t2", "l");   // 9
  F.acq("t3", "n");   // 10
  F.rel("t3", "n");   // 11
  F.w("t3", "z");     // 12
  return PaperTrace{"fig3", F.B.take(), false, false, true, true, false, "z"};
}

PaperTrace rapid::paperFig4() {
  FigBuilder F;
  F.acq("t1", "l");   // 1
  F.acq("t1", "m");   // 2
  F.rel("t1", "m");   // 3
  F.r("t1", "z");     // 4
  F.rel("t1", "l");   // 5
  F.acq("t2", "m");   // 6
  F.acq("t2", "n");   // 7
  F.sync("t2", "x");  // 8
  F.rel("t2", "n");   // 9
  F.rel("t2", "m");   // 10
  F.acq("t3", "n");   // 11
  F.acq("t3", "l");   // 12
  F.rel("t3", "l");   // 13
  F.sync("t3", "x");  // 14
  F.w("t3", "z");     // 15
  F.rel("t3", "n");   // 16
  // Figure 4 also admits a predictable deadlock (reorder to e1, e6, e11:
  // t1 holds l wants m, t2 holds m wants n, t3 holds n wants l); the
  // paper's point is only that the *race* is predictable and WCP-visible.
  return PaperTrace{"fig4", F.B.take(), false, false, true, true, true, "z"};
}

PaperTrace rapid::paperFig5() {
  FigBuilder F;
  F.acq("t1", "l");   // 1
  F.acq("t1", "m");   // 2
  F.rel("t1", "m");   // 3
  F.r("t1", "z");     // 4
  F.rel("t1", "l");   // 5
  F.acq("t2", "m");   // 6
  F.acq("t2", "n");   // 7
  F.sync("t2", "x");  // 8
  F.rel("t2", "n");   // 9
  F.acq("t3", "n");   // 10
  F.acq("t3", "l");   // 11
  F.rel("t3", "l");   // 12
  F.sync("t3", "x");  // 13
  F.w("t3", "z");     // 14
  F.rel("t3", "n");   // 15
  F.sync("t3", "y");  // 16
  F.sync("t2", "y");  // 17
  F.rel("t2", "m");   // 18
  return PaperTrace{"fig5", F.B.take(), false, false, true, false, true, "z"};
}

PaperTrace rapid::paperFig6() {
  FigBuilder F;
  F.acq("t1", "l0");  // 1
  F.w("t1", "x");     // 2
  F.acq("t1", "m");   // 3
  F.acrl("t1", "y");  // 4
  F.acrl("t2", "y");  // 5
  F.rel("t1", "l0");  // 6
  F.acq("t1", "l1");  // 7
  F.acrl("t1", "y");  // 8
  F.acrl("t2", "y");  // 9
  F.rel("t1", "m");   // 10
  F.acq("t2", "m");   // 11
  F.acrl("t1", "y");  // 12
  F.acrl("t2", "y");  // 13
  F.rel("t1", "l1");  // 14
  F.rel("t2", "m");   // 15
  F.acq("t2", "l0");  // 16
  F.w("t2", "x");     // 17
  F.rel("t2", "l0");  // 18
  F.acq("t2", "m");   // 19
  F.rel("t2", "m");   // 20
  F.acq("t2", "l1");  // 21
  F.rel("t2", "l1");  // 22
  F.acq("t3", "m");   // 23
  F.rel("t3", "m");   // 24
  // The x-accesses (lines 2 and 17) are WCP-ordered by rule (a); the trace
  // exists to exercise the Acq/Rel queues, not to exhibit a race.
  return PaperTrace{"fig6", F.B.take(), false, false, false,
                    false, false, ""};
}

std::vector<PaperTrace> rapid::allPaperTraces() {
  std::vector<PaperTrace> All;
  All.push_back(paperFig1a());
  All.push_back(paperFig1b());
  All.push_back(paperFig2a());
  All.push_back(paperFig2b());
  All.push_back(paperFig3());
  All.push_back(paperFig4());
  All.push_back(paperFig5());
  All.push_back(paperFig6());
  return All;
}
