//===- gen/RandomTraceGen.h - Random valid traces ---------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random-program trace generation for property tests: generates random
/// thread programs (reads/writes/nested critical sections, optional
/// fork/join) and executes them with the simulator, so every output is a
/// valid trace by construction. Lock acquisition follows a global order
/// discipline (a thread only acquires locks above its currently held
/// maximum), which rules out simulator deadlocks without restricting the
/// behaviours the detectors care about.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_RANDOMTRACEGEN_H
#define RAPID_GEN_RANDOMTRACEGEN_H

#include "trace/Trace.h"

namespace rapid {

/// Shape parameters for a random trace.
struct RandomTraceParams {
  uint64_t Seed = 1;
  uint32_t NumThreads = 3;
  uint32_t NumLocks = 3;
  uint32_t NumVars = 4;
  uint32_t OpsPerThread = 30;
  uint32_t MaxLockNesting = 2;
  /// Percent of generated ops that are lock acquisitions.
  uint32_t AcquirePercent = 20;
  /// Percent chance per op of releasing the innermost held lock — the
  /// other half of the acq/rel-ratio sweep. Low values hold sections open
  /// for many accesses (long critical sections, deep WCP/SyncP queues);
  /// high values produce short sections and release churn. The default
  /// reproduces the generator's historical behaviour bit-for-bit.
  uint32_t ReleasePercent = 25;
  /// Percent of accesses that are writes.
  uint32_t WritePercent = 40;
  /// Distinct source locations per thread (smaller = more pair dedup).
  uint32_t LocsPerThread = 8;
  /// Thread 0 forks all others up front and joins them at the end.
  bool WithForkJoin = false;
};

/// Generates a random valid trace.
Trace randomTrace(const RandomTraceParams &Params);

} // namespace rapid

#endif // RAPID_GEN_RANDOMTRACEGEN_H
