//===- gen/LowerBoundTraces.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/LowerBoundTraces.h"

#include "trace/TraceBuilder.h"

#include <cassert>

using namespace rapid;

Trace rapid::equalityTrace(const std::vector<bool> &U,
                           const std::vector<bool> &V) {
  assert(U.size() == V.size() && "bit strings must have equal length");
  TraceBuilder B;
  B.write("t1", "z", "z1"); // Probe write #1, before all gadgets.
  for (size_t I = 0; I < U.size(); ++I) {
    const char *Lock = U[I] ? "L1" : "L0";
    std::string X = "x" + std::to_string(I);
    B.acquire("t1", Lock, "u" + std::to_string(I) + ".acq");
    B.write("t1", X, "u" + std::to_string(I) + ".w");
    B.release("t1", Lock, "u" + std::to_string(I) + ".rel");
  }
  for (size_t I = 0; I < V.size(); ++I) {
    const char *Lock = V[I] ? "L1" : "L0";
    std::string X = "x" + std::to_string(I);
    B.acquire("t2", Lock, "v" + std::to_string(I) + ".acq");
    // Rule (a) orders t1's release of this lock before this read iff the
    // read's section is over the *same* lock, i.e. iff U[I] == V[I].
    B.read("t2", X, "v" + std::to_string(I) + ".r");
    B.release("t2", Lock, "v" + std::to_string(I) + ".rel");
  }
  B.write("t2", "z", "z2"); // Probe write #2, after all gadgets.
  return B.take();
}

Trace rapid::queuePressureTrace(uint32_t N, bool WithConflicts) {
  // Alternating critical sections on one lock. With conflicts, each
  // thread's section reads what the other wrote, so rule (a) raises the
  // reader's P-clock and the while-loop of Algorithm 1 pops the pending
  // entry at each release: the queues stay O(1). Without conflicts, no
  // P-clock ever dominates a foreign acquire time and every entry is
  // retained: the queues grow to Θ(N) — the worst case of §3.4.
  TraceBuilder B;
  for (uint32_t I = 0; I < N; ++I) {
    std::string A = "a" + std::to_string(I);
    std::string BVar = "b" + std::to_string(I);
    B.acquire("t1", "m", "p.acq");
    if (WithConflicts && I > 0)
      B.read("t1", "b" + std::to_string(I - 1), "p.r");
    B.write("t1", A, "p.w");
    B.release("t1", "m", "p.rel");

    B.acquire("t2", "m", "c.acq");
    if (WithConflicts)
      B.read("t2", A, "c.r");
    B.write("t2", BVar, "c.w");
    B.release("t2", "m", "c.rel");
  }
  return B.take();
}
