//===- gen/ProgramSim.cpp -----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/ProgramSim.h"

#include "support/Prng.h"
#include "trace/TraceBuilder.h"

#include <unordered_map>
#include <unordered_set>

using namespace rapid;

ThreadProgram &Program::thread(const std::string &Name) {
  for (ThreadProgram &TP : Threads)
    if (TP.Name == Name)
      return TP;
  Threads.push_back(ThreadProgram{Name, {}});
  return Threads.back();
}

ThreadScript &ThreadScript::acq(const std::string &L, const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Acquire, L, Loc});
  return *this;
}
ThreadScript &ThreadScript::rel(const std::string &L, const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Release, L, Loc});
  return *this;
}
ThreadScript &ThreadScript::read(const std::string &X,
                                 const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Read, X, Loc});
  return *this;
}
ThreadScript &ThreadScript::write(const std::string &X,
                                  const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Write, X, Loc});
  return *this;
}
ThreadScript &ThreadScript::fork(const std::string &Child,
                                 const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Fork, Child, Loc});
  return *this;
}
ThreadScript &ThreadScript::join(const std::string &Child,
                                 const std::string &Loc) {
  TP.Ops.push_back({ProgramOp::Kind::Join, Child, Loc});
  return *this;
}
ThreadScript &ThreadScript::post(const std::string &Ticket) {
  TP.Ops.push_back({ProgramOp::Kind::Post, Ticket, {}});
  return *this;
}
ThreadScript &ThreadScript::await(const std::string &Ticket) {
  TP.Ops.push_back({ProgramOp::Kind::Await, Ticket, {}});
  return *this;
}
ThreadScript &ThreadScript::lockedIncrement(const std::string &L,
                                            const std::string &X,
                                            const std::string &Loc) {
  acq(L, Loc.empty() ? std::string() : Loc + ".acq");
  read(X, Loc.empty() ? std::string() : Loc + ".r");
  write(X, Loc.empty() ? std::string() : Loc + ".w");
  rel(L, Loc.empty() ? std::string() : Loc + ".rel");
  return *this;
}

SimResult rapid::simulate(const Program &P, const SimOptions &Opts) {
  SimResult Result;
  uint32_t NumThreads = static_cast<uint32_t>(P.Threads.size());
  TraceBuilder Builder;
  Prng Rng(Opts.Seed);

  // Pre-register threads so ids follow program order.
  std::unordered_map<std::string, uint32_t> ThreadIndex;
  for (uint32_t I = 0; I < NumThreads; ++I) {
    Builder.declareThread(P.Threads[I].Name);
    ThreadIndex[P.Threads[I].Name] = I;
  }

  std::vector<size_t> Next(NumThreads, 0);
  std::vector<bool> Started(NumThreads, false);
  std::vector<bool> NeedsFork(NumThreads, false);
  std::unordered_map<std::string, uint32_t> LockHolder;
  std::unordered_set<std::string> Tickets;

  for (const ThreadProgram &TP : P.Threads)
    for (const ProgramOp &Op : TP.Ops)
      if (Op.K == ProgramOp::Kind::Fork) {
        auto It = ThreadIndex.find(Op.Target);
        if (It == ThreadIndex.end()) {
          Result.Error = "fork of unknown thread '" + Op.Target + "'";
          return Result;
        }
        NeedsFork[It->second] = true;
      }
  for (uint32_t I = 0; I < NumThreads; ++I)
    if (!NeedsFork[I])
      Started[I] = true;

  auto isRunnable = [&](uint32_t Tid) -> bool {
    if (!Started[Tid] || Next[Tid] >= P.Threads[Tid].Ops.size())
      return false;
    const ProgramOp &Op = P.Threads[Tid].Ops[Next[Tid]];
    switch (Op.K) {
    case ProgramOp::Kind::Acquire:
      return LockHolder.find(Op.Target) == LockHolder.end();
    case ProgramOp::Kind::Join: {
      auto It = ThreadIndex.find(Op.Target);
      return It != ThreadIndex.end() &&
             Next[It->second] >= P.Threads[It->second].Ops.size();
    }
    case ProgramOp::Kind::Await:
      return Tickets.count(Op.Target) != 0;
    default:
      return true;
    }
  };

  auto step = [&](uint32_t Tid) -> bool {
    const ThreadProgram &TP = P.Threads[Tid];
    const ProgramOp &Op = TP.Ops[Next[Tid]];
    ++Next[Tid];
    std::string Loc = Op.Loc;
    if (Loc.empty() && Op.K != ProgramOp::Kind::Post &&
        Op.K != ProgramOp::Kind::Await)
      Loc = TP.Name + ":op" + std::to_string(Next[Tid] - 1);
    switch (Op.K) {
    case ProgramOp::Kind::Acquire:
      LockHolder[Op.Target] = Tid;
      Builder.acquire(TP.Name, Op.Target, Loc);
      return true;
    case ProgramOp::Kind::Release: {
      auto It = LockHolder.find(Op.Target);
      if (It == LockHolder.end() || It->second != Tid) {
        Result.Error = "thread " + TP.Name + " releases lock '" + Op.Target +
                       "' it does not hold";
        return false;
      }
      LockHolder.erase(It);
      Builder.release(TP.Name, Op.Target, Loc);
      return true;
    }
    case ProgramOp::Kind::Read:
      Builder.read(TP.Name, Op.Target, Loc);
      return true;
    case ProgramOp::Kind::Write:
      Builder.write(TP.Name, Op.Target, Loc);
      return true;
    case ProgramOp::Kind::Fork: {
      uint32_t Child = ThreadIndex.at(Op.Target);
      if (Started[Child]) {
        Result.Error = "thread '" + Op.Target + "' forked twice";
        return false;
      }
      Started[Child] = true;
      Builder.fork(TP.Name, Op.Target, Loc);
      return true;
    }
    case ProgramOp::Kind::Join:
      Builder.join(TP.Name, Op.Target, Loc);
      return true;
    case ProgramOp::Kind::Post:
      Tickets.insert(Op.Target);
      return true;
    case ProgramOp::Kind::Await:
      return true; // Checked runnable; no event.
    }
    return false;
  };

  uint32_t Current = UINT32_MAX;
  std::vector<uint32_t> Runnable;
  for (;;) {
    // Burst heuristic: keep running the current thread most of the time.
    if (Current != UINT32_MAX && isRunnable(Current) &&
        Rng.chance(Opts.BurstPercent, 100)) {
      if (!step(Current))
        return Result;
      continue;
    }
    Runnable.clear();
    for (uint32_t I = 0; I < NumThreads; ++I)
      if (isRunnable(I))
        Runnable.push_back(I);
    if (Runnable.empty())
      break;
    Current = Runnable[Rng.nextBelow(Runnable.size())];
    if (!step(Current))
      return Result;
  }

  for (uint32_t I = 0; I < NumThreads; ++I) {
    if (Next[I] < P.Threads[I].Ops.size()) {
      Result.Error = "simulated program is stuck: thread " +
                     P.Threads[I].Name + " blocked at op " +
                     std::to_string(Next[I]) +
                     " (lock-order or ticket cycle in the workload)";
      return Result;
    }
  }

  Result.Ok = true;
  Result.T = Builder.take();
  return Result;
}
