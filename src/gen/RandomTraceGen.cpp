//===- gen/RandomTraceGen.cpp -------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/RandomTraceGen.h"

#include "gen/ProgramSim.h"
#include "support/Prng.h"

#include <cassert>

using namespace rapid;

Trace rapid::randomTrace(const RandomTraceParams &Params) {
  assert(Params.NumThreads > 0 && Params.NumVars > 0 && "degenerate params");
  Prng Rng(Params.Seed ^ 0xabcdef12345678ULL);
  Program P;

  auto threadName = [](uint32_t I) { return "T" + std::to_string(I); };

  // Root thread must exist first so fork targets are known.
  for (uint32_t T = 0; T < Params.NumThreads; ++T)
    P.thread(threadName(T));

  for (uint32_t T = 0; T < Params.NumThreads; ++T) {
    ThreadScript S(P, threadName(T));
    if (Params.WithForkJoin && T == 0)
      for (uint32_t U = 1; U < Params.NumThreads; ++U)
        S.fork(threadName(U));

    // Held locks as a stack of lock ids; the order discipline (only
    // acquire ids above the current maximum) keeps the simulator
    // deadlock-free.
    std::vector<uint32_t> Held;
    auto loc = [&](const char *Tag) {
      return threadName(T) + ":" + Tag +
             std::to_string(Rng.nextBelow(Params.LocsPerThread));
    };
    for (uint32_t Op = 0; Op < Params.OpsPerThread; ++Op) {
      bool CanAcquire = Params.NumLocks > 0 &&
                        Held.size() < Params.MaxLockNesting &&
                        (Held.empty() || Held.back() + 1 < Params.NumLocks);
      bool CanRelease = !Held.empty();
      if (CanAcquire && Rng.chance(Params.AcquirePercent, 100)) {
        uint32_t Lo = Held.empty() ? 0 : Held.back() + 1;
        uint32_t L = static_cast<uint32_t>(
            Rng.nextInRange(Lo, Params.NumLocks - 1));
        Held.push_back(L);
        S.acq("l" + std::to_string(L), loc("acq"));
        continue;
      }
      if (CanRelease && Rng.chance(Params.ReleasePercent, 100)) {
        S.rel("l" + std::to_string(Held.back()), loc("rel"));
        Held.pop_back();
        continue;
      }
      std::string X = "x" + std::to_string(Rng.nextBelow(Params.NumVars));
      if (Rng.chance(Params.WritePercent, 100))
        S.write(X, loc("w"));
      else
        S.read(X, loc("r"));
    }
    while (!Held.empty()) {
      S.rel("l" + std::to_string(Held.back()), loc("rel"));
      Held.pop_back();
    }

    if (Params.WithForkJoin && T == 0)
      for (uint32_t U = 1; U < Params.NumThreads; ++U)
        S.join(threadName(U));
  }

  SimOptions Opts;
  Opts.Seed = Params.Seed;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "random program must always schedule to completion");
  return std::move(R.T);
}
