//===- gen/LowerBoundTraces.h - Theorem 4/5 trace families ------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace families for the space lower bounds (§3.4, Appendix E). The
/// paper's Figure 8 reduces equality of two n-bit strings to WCP
/// detection: the trace encodes u with locks chosen by u's bits and v with
/// locks chosen by v's bits, and the two w(z) events end up WCP-ordered
/// exactly when the bit strings relate — so any single-pass WCP algorithm
/// must carry Ω(n) bits across the middle of the trace.
///
/// equalityTrace(u, v) realizes the reduction with one conditional rule-(a)
/// edge per position: position i contributes an edge iff u[i] == v[i], and
/// the z-writes are WCP-ordered iff at least one position matches. Deciding
/// that predicate for all v still requires remembering all of u (it is
/// equality against the complement), giving the same Ω(n) bound.
///
/// queuePressureTrace(n) drives Algorithm 1 into its worst-case memory:
/// n critical sections whose times are never ⊑-dominated pile up in
/// Acq_ℓ(t)/Rel_ℓ(t); with conflicts enabled the queues drain instead —
/// the contrast bench_lowerbound plots.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_LOWERBOUNDTRACES_H
#define RAPID_GEN_LOWERBOUNDTRACES_H

#include "trace/Trace.h"

#include <vector>

namespace rapid {

/// Figure 8-style reduction trace for bit strings \p U and \p V (equal
/// lengths). The events named "z1"/"z2" (locations) are the probe writes;
/// they are WCP-*ordered* iff ∃i: U[i] == V[i], i.e. the trace has a
/// WCP-race on z iff V is the bitwise complement of U.
Trace equalityTrace(const std::vector<bool> &U, const std::vector<bool> &V);

/// n same-lock critical sections that stay unordered with the late
/// consumer, so Algorithm 1 retains Θ(n) queue entries. With
/// \p WithConflicts, every section conflicts with the consumer and the
/// queues drain to O(1) instead.
Trace queuePressureTrace(uint32_t N, bool WithConflicts);

} // namespace rapid

#endif // RAPID_GEN_LOWERBOUNDTRACES_H
