//===- gen/Workloads.h - The Table 1 benchmark models -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic models of the paper's 18 evaluation benchmarks (Table 1 §4.1:
/// IBM Contest, Java Grande, and the large real-world programs). The paper
/// logged JVM executions with RVPredict; we cannot, so each benchmark is
/// modeled as a simulator program matched to the paper's per-benchmark
/// shape: thread count, lock count, event-count order of magnitude (via a
/// scale factor), and — crucially — the *planted race structure*:
///
///   * HB-visible race pairs: unprotected conflicting accesses whose
///     trace placement is pinned by scheduler tickets, with a handshake
///     discipline that provably prevents accidental happens-before paths;
///   * WCP-only race pairs (eclipse/jigsaw/xalan, the boldfaced rows of
///     Table 1): instances of the Figure 2b idiom — HB orders them, WCP
///     does not, and they are genuinely predictable;
///   * far races: pairs separated by a large fraction of the trace,
///     hosted on lock-isolated threads (the §4.3 "distance of millions of
///     events" structure that defeats every windowed analysis);
///   * race-free bulk: thread-private lock traffic (matching the paper's
///     lock counts) and shared counters protected by global locks.
///
/// Because the races are planted, the expected detector outputs are exact:
/// HB must report (HbRaces + FarRaces) pairs and WCP must add
/// WcpOnlyRaces more — the same relationship the paper's columns 6/7 show.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_WORKLOADS_H
#define RAPID_GEN_WORKLOADS_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// Shape of one benchmark model.
struct WorkloadSpec {
  std::string Name;
  uint32_t Threads = 2;
  uint32_t Locks = 1;       ///< Target lock count (Table 1 column 5).
  uint64_t Events = 1000;   ///< Default event target (scaled from col. 3).
  uint32_t HbRaces = 0;     ///< Near HB-visible planted race pairs.
  uint32_t WcpOnlyRaces = 0; ///< Figure 2b gadgets (WCP ∖ HB).
  uint32_t FarRaces = 0;    ///< Long-distance planted race pairs.
  bool ForkJoin = true;     ///< Thread 0 forks workers / joins at end.
  uint64_t Seed = 1;

  /// Paper's reported numbers, for side-by-side reporting in benches.
  uint64_t PaperEvents = 0;
  uint32_t PaperWcpRaces = 0;
  uint32_t PaperHbRaces = 0;

  /// Expected distinct race pairs for each analysis of this model.
  uint32_t expectedHbPairs() const { return HbRaces + FarRaces; }
  uint32_t expectedWcpPairs() const {
    return HbRaces + FarRaces + WcpOnlyRaces;
  }
};

/// Builds the trace for \p Spec; \p Scale multiplies the event target.
Trace makeWorkload(const WorkloadSpec &Spec, double Scale = 1.0);

/// The 18 Table 1 models, in the paper's row order.
std::vector<WorkloadSpec> table1Workloads();

/// Looks up one model by name ("eclipse", "bufwriter", ...). Asserts on
/// unknown names.
WorkloadSpec workloadSpec(const std::string &Name);

} // namespace rapid

#endif // RAPID_GEN_WORKLOADS_H
