//===- gen/Workloads.h - The Table 1 benchmark models -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic models of the paper's 18 evaluation benchmarks (Table 1 §4.1:
/// IBM Contest, Java Grande, and the large real-world programs). The paper
/// logged JVM executions with RVPredict; we cannot, so each benchmark is
/// modeled as a simulator program matched to the paper's per-benchmark
/// shape: thread count, lock count, event-count order of magnitude (via a
/// scale factor), and — crucially — the *planted race structure*:
///
///   * HB-visible race pairs: unprotected conflicting accesses whose
///     trace placement is pinned by scheduler tickets, with a handshake
///     discipline that provably prevents accidental happens-before paths;
///   * WCP-only race pairs (eclipse/jigsaw/xalan, the boldfaced rows of
///     Table 1): instances of the Figure 2b idiom — HB orders them, WCP
///     does not, and they are genuinely predictable;
///   * far races: pairs separated by a large fraction of the trace,
///     hosted on lock-isolated threads (the §4.3 "distance of millions of
///     events" structure that defeats every windowed analysis);
///   * race-free bulk: thread-private lock traffic (matching the paper's
///     lock counts) and shared counters protected by global locks.
///
/// Because the races are planted, the expected detector outputs are exact:
/// HB must report (HbRaces + FarRaces) pairs and WCP must add
/// WcpOnlyRaces more — the same relationship the paper's columns 6/7 show.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_GEN_WORKLOADS_H
#define RAPID_GEN_WORKLOADS_H

#include "support/Prng.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// Shape of one benchmark model.
struct WorkloadSpec {
  std::string Name;
  uint32_t Threads = 2;
  uint32_t Locks = 1;       ///< Target lock count (Table 1 column 5).
  uint64_t Events = 1000;   ///< Default event target (scaled from col. 3).
  uint32_t HbRaces = 0;     ///< Near HB-visible planted race pairs.
  uint32_t WcpOnlyRaces = 0; ///< Figure 2b gadgets (WCP ∖ HB).
  uint32_t FarRaces = 0;    ///< Long-distance planted race pairs.
  bool ForkJoin = true;     ///< Thread 0 forks workers / joins at end.
  uint64_t Seed = 1;

  /// Paper's reported numbers, for side-by-side reporting in benches.
  uint64_t PaperEvents = 0;
  uint32_t PaperWcpRaces = 0;
  uint32_t PaperHbRaces = 0;

  /// Expected distinct race pairs for each analysis of this model.
  uint32_t expectedHbPairs() const { return HbRaces + FarRaces; }
  uint32_t expectedWcpPairs() const {
    return HbRaces + FarRaces + WcpOnlyRaces;
  }
};

/// Builds the trace for \p Spec; \p Scale multiplies the event target.
Trace makeWorkload(const WorkloadSpec &Spec, double Scale = 1.0);

/// The 18 Table 1 models, in the paper's row order.
std::vector<WorkloadSpec> table1Workloads();

/// Looks up one model by name ("eclipse", "bufwriter", ...). Asserts on
/// unknown names.
WorkloadSpec workloadSpec(const std::string &Name);

/// Bounded Zipf(theta) sampler over ranks [0, N): rank 0 is the hottest
/// item, with P(k) proportional to 1/(k+1)^theta. Construction is O(N)
/// (one zeta-sum pass). For theta in [0, 1) each sample() is O(1) — the
/// zeta-normalized inverse-CDF form from Gray et al.'s "Quickly generating
/// billion-record synthetic databases", the same sampler YCSB ships; 0
/// degenerates to uniform, values near 1 concentrate almost all mass on
/// the first few ranks. For theta >= 1 (where Gray's closed form is
/// singular) sampling walks an exact cumulative table in O(log N) —
/// bit-for-bit deterministic per seed either way, and the theta < 1 fast
/// path is unchanged so existing seeded streams stay stable.
class ZipfSampler {
public:
  ZipfSampler(uint64_t N, double Theta);

  /// Draws one rank in [0, N) from \p Rng.
  uint64_t sample(Prng &Rng) const;

  uint64_t size() const { return N; }
  double theta() const { return Theta; }

private:
  uint64_t N;
  double Theta;
  double Zetan; ///< sum_{i=1..N} i^-theta.
  double Alpha; ///< 1 / (1 - theta); unused when theta >= 1.
  double Eta;   ///< Inverse-CDF correction term; unused when theta >= 1.
  /// theta >= 1 only: Cdf[k] = sum_{i=1..k+1} i^-theta (empty otherwise —
  /// the marker that selects the O(1) closed-form path).
  std::vector<double> Cdf;
};

/// Shape of the Zipf-skew stress model. Unlike the Table 1 models this is
/// not a paper benchmark: it exists to stress skewed variable popularity —
/// Threads workers hammer a pool of Vars shared variables whose access
/// frequencies follow Zipf(Theta), each access protected by the variable's
/// lock stripe (Locks stripes; Locks = 0 drops the locks, making every
/// conflicting pair on a shared variable a race). Hot variables concentrate
/// work onto single var-shards and single lock stripes, which is exactly
/// the imbalance the var-sharded run mode and the drain batcher must
/// absorb.
struct ZipfWorkloadSpec {
  uint32_t Threads = 4;
  uint32_t Vars = 256;    ///< Shared variable pool size.
  uint32_t Locks = 16;    ///< Lock stripes over the pool (0 = unprotected).
  uint64_t Events = 100000; ///< Approximate event target.
  double Theta = 0.9;     ///< Skew, >= 0 (>= 1 uses the exact-table path).
  uint64_t Seed = 1;
};

/// Builds the trace for \p Spec; deterministic per seed, and §2.1-valid by
/// construction (generated through the simulator like every other model).
Trace makeZipfWorkload(const ZipfWorkloadSpec &Spec);

/// The adversarial workload matrix the differential fuzzers sweep: each
/// shape stresses a different axis of the streaming/sharded machinery.
/// Uniform is the plain random-program shape; the Zipf shapes skew
/// variable popularity (Heavy at theta = 1.2 funnels nearly everything
/// onto one var-shard); ProducerConsumer hands values across threads
/// through a locked queue (cross-thread read-sees-write structure);
/// BarrierHeavy runs lockstep rounds dense in lock traffic; and
/// DeclarationDense staggers thread forks through the trace and touches
/// fresh variables/locks every round, so id tables grow until the last
/// event (the Restarts == 0 contract's worst case).
enum class WorkloadShape : uint8_t {
  Uniform,
  ZipfLight,       ///< theta = 0.6
  ZipfMedium,      ///< theta = 0.9
  ZipfHeavy,       ///< theta = 1.2 (past Gray's closed-form domain)
  ProducerConsumer,
  BarrierHeavy,
  DeclarationDense,
};

/// Stable lowercase name: "uniform", "zipf-0.6", ..., "decl-dense".
const char *workloadShapeName(WorkloadShape S);

/// Every shape, in enum order (fuzzers rotate through this).
const std::vector<WorkloadShape> &allWorkloadShapes();

/// Builds a small (a few hundred events) valid trace of shape \p S.
/// Deterministic per (shape, seed); thread/lock/var counts themselves vary
/// with the seed so the matrix also sweeps table sizes.
Trace makeAdversarialTrace(WorkloadShape S, uint64_t Seed);

/// Shape of the pathological-WCP-queue model: chains of deeply nested
/// critical sections whose conflicting twins arrive only later, plus long
/// flat release chains over many locks — the access pattern that made
/// WCP's per-lock queues grow until the queue-GC pass
/// (WcpDetector::collectLockGarbage) learned to trim entries every thread
/// has passed. With LateThread, a third thread is forked mid-program and
/// immediately conflicts on every chain variable: a thread id that does
/// not exist for the first half of the trace, which is exactly the case
/// the GC must stay conservative for (a late thread may still need old
/// release clocks).
struct WcpQueueStressSpec {
  uint32_t NestingDepth = 6; ///< Locks held simultaneously per chain.
  uint32_t Chains = 5;       ///< Deep-nesting rounds per worker.
  uint32_t ChainLocks = 10;  ///< Locks in the flat release chain.
  bool LateThread = true;    ///< Fork a mid-stream third thread.
  uint64_t Seed = 1;
};

/// Builds the trace for \p Spec (deterministic, §2.1-valid).
Trace makeWcpQueueStress(const WcpQueueStressSpec &Spec);

} // namespace rapid

#endif // RAPID_GEN_WORKLOADS_H
