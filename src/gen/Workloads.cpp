//===- gen/Workloads.cpp ------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/Workloads.h"

#include "gen/ProgramSim.h"
#include "gen/RandomTraceGen.h"
#include "support/Prng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rapid;

namespace {

/// A gadget insertion point: before the given round of a thread, splice in
/// the given ops.
struct Insertion {
  uint32_t Round;
  std::vector<ProgramOp> Ops;
};

ProgramOp op(ProgramOp::Kind K, std::string Target, std::string Loc = {}) {
  return ProgramOp{K, std::move(Target), std::move(Loc)};
}

} // namespace

Trace rapid::makeWorkload(const WorkloadSpec &Spec, double Scale) {
  assert(Spec.Threads >= 2 && "a race model needs at least two threads");
  uint64_t TargetEvents =
      std::max<uint64_t>(32, static_cast<uint64_t>(Spec.Events * Scale));
  uint32_t Workers = Spec.Threads;

  // Thread roles: the last two workers are lock-isolated when far races
  // are requested (they host them); everyone else mixes private-lock
  // noise with protected global counters.
  bool HasFar = Spec.FarRaces > 0;
  assert((!HasFar || Workers >= 4) &&
         "far races need two dedicated threads plus two regular ones");
  uint32_t RegularWorkers = HasFar ? Workers - 2 : Workers;

  // Lock budget (Table 1 column 5): a few global counter locks, one lock
  // per WCP gadget, the rest spread as per-thread private locks.
  uint32_t GlobalLocks = 0;
  uint32_t PrivatePerThread = 0;
  if (Spec.Locks > Spec.WcpOnlyRaces) {
    uint32_t Rest = Spec.Locks - Spec.WcpOnlyRaces;
    GlobalLocks = std::min<uint32_t>(Rest, 3);
    Rest -= GlobalLocks;
    PrivatePerThread = Rest / Workers;
    // Remainder locks are given to thread 0 via an extended private pool;
    // for simplicity they are folded into the global pool instead.
    GlobalLocks += Rest % Workers;
  }

  // Event budget per worker, in rounds. A plain noise round is ~5 events;
  // when a thread owns more private locks than it has rounds, it runs
  // several private sections per round so every lock is still exercised
  // (keeping column 5 faithful at small scales) — the round cost estimate
  // is iterated once to account for that.
  uint64_t Overhead = 2 * (Spec.HbRaces + Spec.FarRaces) +
                      6 * Spec.WcpOnlyRaces +
                      (Spec.ForkJoin ? 2 * (Workers - 1) : 0);
  uint64_t Budget = TargetEvents > Overhead ? TargetEvents - Overhead : 0;
  uint64_t PerWorker = Budget / Workers;
  uint32_t Rounds = std::max<uint32_t>(1, static_cast<uint32_t>(
                                              PerWorker / 5));
  uint32_t SectionsPerRound = 1;
  if (PrivatePerThread > Rounds) {
    SectionsPerRound = (PrivatePerThread + Rounds - 1) / Rounds;
    uint64_t RoundCost = 4ull * SectionsPerRound + 1;
    Rounds = std::max<uint32_t>(
        1, static_cast<uint32_t>(PerWorker / RoundCost));
    SectionsPerRound = (PrivatePerThread + Rounds - 1) / Rounds;
  }

  Prng Rng(Spec.Seed ^ 0x5eedf00dULL);
  Program P;
  auto threadName = [](uint32_t I) { return "T" + std::to_string(I); };
  for (uint32_t I = 0; I < Workers; ++I)
    P.thread(threadName(I));

  // ---- Plan the planted gadgets as per-thread insertions. -----------------
  std::vector<std::vector<Insertion>> Plan(Workers);
  auto fractionRound = [&](double F) {
    return static_cast<uint32_t>(F * Rounds);
  };

  // Near HB races: pair (A,B) of regular workers, handshake discipline:
  //   B: post(pre) await(go) w(g)      A: await(pre) w(g) post(go)
  // B's pre-write events all precede A's write in the trace, so no HB path
  // can order the two writes (see header comment).
  for (uint32_t K = 0; K < Spec.HbRaces; ++K) {
    uint32_t A = RegularWorkers ? K % RegularWorkers : 0;
    uint32_t B = RegularWorkers ? (K + 1) % RegularWorkers : 1;
    if (A == B)
      B = (B + 1) % Workers;
    std::string G = "hbvar" + std::to_string(K);
    std::string Pre = "hbpre" + std::to_string(K);
    std::string Go = "hbgo" + std::to_string(K);
    double F = static_cast<double>(K + 1) / (Spec.HbRaces + 1);
    Plan[B].push_back({fractionRound(F),
                       {op(ProgramOp::Kind::Post, Pre),
                        op(ProgramOp::Kind::Await, Go),
                        op(ProgramOp::Kind::Write, G, "hbB" + std::to_string(K))}});
    Plan[A].push_back({fractionRound(F),
                       {op(ProgramOp::Kind::Await, Pre),
                        op(ProgramOp::Kind::Write, G, "hbA" + std::to_string(K)),
                        op(ProgramOp::Kind::Post, Go)}});
  }

  // WCP-only races: the Figure 2b idiom on a dedicated lock.
  //   A: w(y) acq(l) w(x) rel(l)       B: acq(l) r(y) r(x) rel(l)
  // HB orders the y-accesses through rel(l)→acq(l); WCP rule (a) only
  // orders rel(l) before r(x), which comes *after* r(y) — so the
  // y-accesses are a WCP race, and a predictable one.
  for (uint32_t K = 0; K < Spec.WcpOnlyRaces; ++K) {
    uint32_t A = RegularWorkers ? K % RegularWorkers : 0;
    uint32_t B = RegularWorkers ? (K + 1) % RegularWorkers : 1;
    if (A == B)
      B = (B + 1) % Workers;
    std::string L = "wcplock" + std::to_string(K);
    std::string X = "wcpx" + std::to_string(K);
    std::string Y = "wcpy" + std::to_string(K);
    std::string Pre = "wcppre" + std::to_string(K);
    std::string Go = "wcpgo" + std::to_string(K);
    double F = static_cast<double>(K + 1) / (Spec.WcpOnlyRaces + 1);
    std::string KS = std::to_string(K);
    Plan[B].push_back({fractionRound(F),
                       {op(ProgramOp::Kind::Post, Pre),
                        op(ProgramOp::Kind::Await, Go),
                        op(ProgramOp::Kind::Acquire, L, "wcpB" + KS + ".acq"),
                        op(ProgramOp::Kind::Read, Y, "wcpB" + KS + ".ry"),
                        op(ProgramOp::Kind::Read, X, "wcpB" + KS + ".rx"),
                        op(ProgramOp::Kind::Release, L, "wcpB" + KS + ".rel")}});
    Plan[A].push_back({fractionRound(F),
                       {op(ProgramOp::Kind::Await, Pre),
                        op(ProgramOp::Kind::Write, Y, "wcpA" + KS + ".wy"),
                        op(ProgramOp::Kind::Acquire, L, "wcpA" + KS + ".acq"),
                        op(ProgramOp::Kind::Write, X, "wcpA" + KS + ".wx"),
                        op(ProgramOp::Kind::Release, L, "wcpA" + KS + ".rel"),
                        op(ProgramOp::Kind::Post, Go)}});
  }

  // Far races: hosted by the two lock-isolated workers, write early in A,
  // write late in B. Isolation (no shared locks ever) makes any ordering
  // between the writes impossible regardless of what runs in between.
  for (uint32_t K = 0; K < Spec.FarRaces; ++K) {
    uint32_t A = Workers - 2;
    uint32_t B = Workers - 1;
    std::string G = "farvar" + std::to_string(K);
    std::string Go = "fargo" + std::to_string(K);
    double FA = 0.02 + 0.10 * (static_cast<double>(K) / (Spec.FarRaces + 1));
    double FB = 0.85 + 0.13 * (static_cast<double>(K + 1) / (Spec.FarRaces + 1));
    Plan[A].push_back({fractionRound(FA),
                       {op(ProgramOp::Kind::Write, G, "farA" + std::to_string(K)),
                        op(ProgramOp::Kind::Post, Go)}});
    Plan[B].push_back({fractionRound(FB),
                       {op(ProgramOp::Kind::Await, Go),
                        op(ProgramOp::Kind::Write, G, "farB" + std::to_string(K))}});
  }

  for (auto &Ins : Plan)
    std::stable_sort(Ins.begin(), Ins.end(),
                     [](const Insertion &L, const Insertion &R) {
                       return L.Round < R.Round;
                     });

  // ---- Emit the programs. -------------------------------------------------
  if (Spec.ForkJoin) {
    ThreadScript Root(P, threadName(0));
    for (uint32_t I = 1; I < Workers; ++I)
      Root.fork(threadName(I), "main.fork" + std::to_string(I));
  }

  for (uint32_t W = 0; W < Workers; ++W) {
    ThreadScript S(P, threadName(W));
    bool Isolated = HasFar && W >= RegularWorkers;
    size_t NextIns = 0;
    std::string TN = threadName(W);

    for (uint32_t R = 0; R < Rounds; ++R) {
      while (NextIns < Plan[W].size() && Plan[W][NextIns].Round <= R) {
        for (const ProgramOp &O : Plan[W][NextIns].Ops)
          P.thread(TN).Ops.push_back(O);
        ++NextIns;
      }

      // Noise round: a private critical section over this thread's own
      // locks (cycled so every private lock is exercised), or bare
      // thread-local accesses when the model has no locks.
      std::string LocalVar = "local_" + TN + "_" + std::to_string(R % 7);
      std::string RoundLoc = TN + ".round" + std::to_string(R % 23);
      if (PrivatePerThread > 0) {
        for (uint32_t J = 0; J < SectionsPerRound; ++J) {
          std::string L =
              "priv_" + TN + "_" +
              std::to_string((static_cast<uint64_t>(R) * SectionsPerRound +
                              J) %
                             PrivatePerThread);
          S.acq(L, RoundLoc + ".acq");
          S.read(LocalVar, RoundLoc + ".r");
          S.write(LocalVar, RoundLoc + ".w");
          S.rel(L, RoundLoc + ".rel");
        }
      } else {
        S.read(LocalVar, RoundLoc + ".r");
        S.write(LocalVar, RoundLoc + ".w");
      }

      // Shared protected counter every few rounds (never on isolated
      // threads — they must not share locks with anyone).
      if (!Isolated && GlobalLocks > 0 && R % 4 == W % 4) {
        uint32_t C = (R / 4 + W) % GlobalLocks;
        S.lockedIncrement("glock" + std::to_string(C),
                          "counter" + std::to_string(C),
                          TN + ".ctr" + std::to_string(C));
      }
    }
    // Flush any gadgets planned past the last round.
    while (NextIns < Plan[W].size()) {
      for (const ProgramOp &O : Plan[W][NextIns].Ops)
        P.thread(TN).Ops.push_back(O);
      ++NextIns;
    }
  }

  if (Spec.ForkJoin) {
    ThreadScript Root(P, threadName(0));
    for (uint32_t I = 1; I < Workers; ++I)
      Root.join(threadName(I), "main.join" + std::to_string(I));
  }

  SimOptions Opts;
  Opts.Seed = Spec.Seed;
  Opts.BurstPercent = 65;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "workload program failed to schedule");
  return std::move(R.T);
}

std::vector<WorkloadSpec> rapid::table1Workloads() {
  auto spec = [](const char *Name, uint32_t Threads, uint32_t Locks,
                 uint64_t Events, uint32_t Hb, uint32_t WcpOnly, uint32_t Far,
                 uint64_t PaperEvents, uint32_t PaperWcp, uint32_t PaperHb) {
    WorkloadSpec S;
    S.Name = Name;
    S.Threads = Threads;
    S.Locks = Locks;
    S.Events = Events;
    S.HbRaces = Hb;
    S.WcpOnlyRaces = WcpOnly;
    S.FarRaces = Far;
    S.PaperEvents = PaperEvents;
    S.PaperWcpRaces = PaperWcp;
    S.PaperHbRaces = PaperHb;
    return S;
  };
  // Name, threads, locks (Table 1 cols 4-5), scaled event target, planted
  // near HB / WCP-only / far races, paper's events and race counts
  // (cols 3, 6, 7). Race counts match the paper's exactly:
  // HB = near + far, WCP = HB + WCP-only.
  return {
      spec("account", 4, 3, 130, 4, 0, 0, 130, 4, 4),
      spec("airline", 2, 0, 128, 4, 0, 0, 128, 4, 4),
      spec("array", 3, 2, 64, 0, 0, 0, 47, 0, 0),
      spec("boundedbuffer", 2, 2, 333, 2, 0, 0, 333, 2, 2),
      spec("bubblesort", 10, 2, 4000, 6, 0, 0, 4000, 6, 6),
      spec("bufwriter", 6, 1, 300000, 1, 0, 1, 11700000, 2, 2),
      spec("critical", 4, 0, 80, 8, 0, 0, 55, 8, 8),
      spec("mergesort", 5, 3, 3000, 3, 0, 0, 3000, 3, 3),
      spec("pingpong", 4, 0, 146, 7, 0, 0, 146, 7, 7),
      spec("moldyn", 3, 2, 164000, 44, 0, 0, 164000, 44, 44),
      spec("montecarlo", 3, 3, 400000, 5, 0, 0, 7200000, 5, 5),
      spec("raytracer", 3, 8, 16000, 3, 0, 0, 16000, 3, 3),
      spec("derby", 4, 1112, 200000, 19, 0, 4, 1300000, 23, 23),
      spec("eclipse", 14, 8263, 400000, 38, 2, 26, 87000000, 66, 64),
      spec("ftpserver", 11, 304, 49000, 36, 0, 0, 49000, 36, 36),
      spec("jigsaw", 13, 280, 200000, 8, 3, 3, 3000000, 14, 11),
      spec("lusearch", 7, 118, 400000, 150, 0, 10, 216000000, 160, 160),
      spec("xalan", 6, 2494, 300000, 10, 3, 5, 122000000, 18, 15),
  };
}

WorkloadSpec rapid::workloadSpec(const std::string &Name) {
  for (const WorkloadSpec &S : table1Workloads())
    if (S.Name == Name)
      return S;
  assert(false && "unknown workload name");
  return WorkloadSpec{};
}

ZipfSampler::ZipfSampler(uint64_t N, double Theta) : N(N), Theta(Theta) {
  assert(N > 0 && "empty rank space");
  assert(Theta >= 0.0 && "negative skew is meaningless");
  Zetan = 0.0;
  if (Theta >= 1.0) {
    // Gray's closed form divides by (1 - theta); past it, keep the exact
    // cumulative table instead (construction was O(N) regardless).
    Cdf.reserve(N);
    for (uint64_t I = 1; I <= N; ++I) {
      Zetan += std::pow(static_cast<double>(I), -Theta);
      Cdf.push_back(Zetan);
    }
    Alpha = 0.0;
    Eta = 0.0;
    return;
  }
  for (uint64_t I = 1; I <= N; ++I)
    Zetan += std::pow(static_cast<double>(I), -Theta);
  Alpha = 1.0 / (1.0 - Theta);
  // For N <= 2 the two explicit branches in sample() cover the whole CDF
  // and Eta's denominator degenerates (zeta(2) == zeta(N)); it is unused.
  Eta = N <= 2 ? 0.0
               : (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
                     (1.0 - (1.0 + std::pow(0.5, Theta)) / Zetan);
}

uint64_t ZipfSampler::sample(Prng &Rng) const {
  double U = Rng.nextDouble();
  if (!Cdf.empty()) {
    // theta >= 1: exact inverse CDF by binary search.
    uint64_t K = static_cast<uint64_t>(
        std::lower_bound(Cdf.begin(), Cdf.end(), U * Zetan) - Cdf.begin());
    return K >= N ? N - 1 : K;
  }
  double Uz = U * Zetan;
  if (Uz < 1.0)
    return 0;
  if (Uz < 1.0 + std::pow(0.5, Theta))
    return 1;
  uint64_t K = static_cast<uint64_t>(
      static_cast<double>(N) * std::pow(Eta * U - Eta + 1.0, Alpha));
  return K >= N ? N - 1 : K;
}

Trace rapid::makeZipfWorkload(const ZipfWorkloadSpec &Spec) {
  assert(Spec.Threads >= 1 && Spec.Vars >= 1);
  ZipfSampler Zipf(Spec.Vars, Spec.Theta);

  // Round cost: acq + r + w + rel when striped, r + w bare. The main
  // thread works too, so the whole budget divides across Spec.Threads.
  const uint64_t RoundCost = Spec.Locks > 0 ? 4 : 2;
  const uint64_t ForkJoinCost =
      Spec.Threads > 1 ? 2ull * (Spec.Threads - 1) : 0;
  const uint64_t Budget =
      Spec.Events > ForkJoinCost ? Spec.Events - ForkJoinCost : RoundCost;
  const uint64_t Rounds =
      std::max<uint64_t>(1, Budget / (RoundCost * Spec.Threads));

  Program P;
  auto threadName = [](uint32_t I) { return "T" + std::to_string(I); };
  for (uint32_t W = 0; W < Spec.Threads; ++W)
    P.thread(threadName(W));
  if (Spec.Threads > 1) {
    ThreadScript Root(P, threadName(0));
    for (uint32_t W = 1; W < Spec.Threads; ++W)
      Root.fork(threadName(W), "main.fork" + std::to_string(W));
  }

  for (uint32_t W = 0; W < Spec.Threads; ++W) {
    // Per-thread stream split off the spec seed, so each worker draws an
    // independent — but fully seed-determined — rank sequence.
    Prng Rng(Spec.Seed ^ (0x9e3779b97f4a7c15ULL * (W + 1)));
    ThreadScript S(P, threadName(W));
    const std::string TN = threadName(W);
    for (uint64_t R = 0; R < Rounds; ++R) {
      uint64_t V = Zipf.sample(Rng);
      std::string Var = "zv" + std::to_string(V);
      std::string Loc = TN + ".z" + std::to_string(R);
      if (Spec.Locks > 0) {
        std::string L = "zl" + std::to_string(V % Spec.Locks);
        S.acq(L, Loc + ".acq");
        S.read(Var, Loc + ".r");
        S.write(Var, Loc + ".w");
        S.rel(L, Loc + ".rel");
      } else {
        S.read(Var, Loc + ".r");
        S.write(Var, Loc + ".w");
      }
    }
  }

  if (Spec.Threads > 1) {
    ThreadScript Root(P, threadName(0));
    for (uint32_t W = 1; W < Spec.Threads; ++W)
      Root.join(threadName(W), "main.join" + std::to_string(W));
  }

  SimOptions Opts;
  Opts.Seed = Spec.Seed;
  Opts.BurstPercent = 65;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "zipf program failed to schedule");
  return std::move(R.T);
}

// ---- Adversarial workload matrix --------------------------------------------

const char *rapid::workloadShapeName(WorkloadShape S) {
  switch (S) {
  case WorkloadShape::Uniform:
    return "uniform";
  case WorkloadShape::ZipfLight:
    return "zipf-0.6";
  case WorkloadShape::ZipfMedium:
    return "zipf-0.9";
  case WorkloadShape::ZipfHeavy:
    return "zipf-1.2";
  case WorkloadShape::ProducerConsumer:
    return "producer-consumer";
  case WorkloadShape::BarrierHeavy:
    return "barrier-heavy";
  case WorkloadShape::DeclarationDense:
    return "decl-dense";
  }
  return "unknown";
}

const std::vector<WorkloadShape> &rapid::allWorkloadShapes() {
  static const std::vector<WorkloadShape> Shapes = {
      WorkloadShape::Uniform,          WorkloadShape::ZipfLight,
      WorkloadShape::ZipfMedium,       WorkloadShape::ZipfHeavy,
      WorkloadShape::ProducerConsumer, WorkloadShape::BarrierHeavy,
      WorkloadShape::DeclarationDense,
  };
  return Shapes;
}

namespace {

Trace makeZipfShape(double Theta, uint64_t Seed) {
  ZipfWorkloadSpec Spec;
  Spec.Threads = 2 + Seed % 3;
  Spec.Vars = 12 + Seed % 9;
  // A third of the seeds drop the lock stripes: unprotected skewed
  // conflicts, so the shape also produces races to diff on.
  Spec.Locks = static_cast<uint32_t>(Seed % 3);
  Spec.Events = 140 + (Seed % 5) * 24;
  Spec.Theta = Theta;
  Spec.Seed = Seed;
  return makeZipfWorkload(Spec);
}

/// Producers hand items to consumers through a locked slot array; the
/// handoff (rel(q) -> acq(q)) orders the payload accesses, so those pairs
/// are racy for no sound detector — while the shared unprotected stats
/// counter races on purpose. The interesting part for SyncP is the
/// read-sees-write structure: every consumer read of a slot pins the
/// producer's critical section into any closure that includes it.
Trace makeProducerConsumer(uint64_t Seed) {
  const uint32_t Producers = 1 + Seed % 2;
  const uint32_t Consumers = 1 + (Seed >> 1) % 2;
  const uint32_t Items = 8 + Seed % 6;
  Program P;
  auto producerName = [](uint32_t I) { return "prod" + std::to_string(I); };
  auto consumerName = [](uint32_t I) { return "cons" + std::to_string(I); };

  // Register every thread before the first ThreadScript: Program::thread
  // may reallocate the thread table, and ThreadScript holds a reference.
  P.thread("main");
  for (uint32_t I = 0; I < Producers; ++I)
    P.thread(producerName(I));
  for (uint32_t I = 0; I < Consumers; ++I)
    P.thread(consumerName(I));

  ThreadScript Root(P, "main");
  for (uint32_t I = 0; I < Producers; ++I)
    Root.fork(producerName(I));
  for (uint32_t I = 0; I < Consumers; ++I)
    Root.fork(consumerName(I));

  for (uint32_t K = 0; K < Items; ++K) {
    const std::string KS = std::to_string(K);
    ThreadScript Prod(P, producerName(K % Producers));
    Prod.write("payload" + KS, "prod.pay" + KS);
    Prod.acq("q", "prod.acq" + KS);
    Prod.write("slot" + std::to_string(K % 4), "prod.slot" + KS);
    Prod.rel("q", "prod.rel" + KS);
    Prod.write("stats", "prod.stats" + std::to_string(K % 3));
    Prod.post("item" + KS);

    ThreadScript Cons(P, consumerName(K % Consumers));
    Cons.await("item" + KS);
    Cons.acq("q", "cons.acq" + KS);
    Cons.read("slot" + std::to_string(K % 4), "cons.slot" + KS);
    Cons.rel("q", "cons.rel" + KS);
    Cons.read("payload" + KS, "cons.pay" + KS);
    Cons.read("stats", "cons.stats" + std::to_string(K % 3));
  }

  for (uint32_t I = 0; I < Producers; ++I)
    Root.join(producerName(I));
  for (uint32_t I = 0; I < Consumers; ++I)
    Root.join(consumerName(I));

  SimOptions Opts;
  Opts.Seed = Seed;
  Opts.BurstPercent = 55;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "producer/consumer program failed to schedule");
  return std::move(R.T);
}

/// Lockstep rounds: every worker bumps the round counter under the
/// barrier lock, thread 0 gates the next round on everyone's arrival
/// ticket. Dense same-lock traffic from every thread, every round — the
/// shape that exercises lock-queue churn and the SP-closure's per-lock
/// maxima hardest. One unprotected scratch variable per round pair keeps
/// the race reports non-trivial.
Trace makeBarrierHeavy(uint64_t Seed) {
  const uint32_t Workers = 2 + Seed % 3;
  const uint32_t Rounds = 6 + Seed % 5;
  Program P;
  auto threadName = [](uint32_t I) { return "T" + std::to_string(I); };

  // Pre-register: ThreadScript references would dangle if thread() grew
  // the table after the first script was made.
  for (uint32_t W = 0; W < Workers; ++W)
    P.thread(threadName(W));

  ThreadScript Root(P, threadName(0));
  for (uint32_t W = 1; W < Workers; ++W)
    Root.fork(threadName(W));

  for (uint32_t R = 0; R < Rounds; ++R) {
    const std::string RS = std::to_string(R);
    for (uint32_t W = 0; W < Workers; ++W) {
      ThreadScript S(P, threadName(W));
      const std::string Loc = "r" + RS + ".t" + std::to_string(W);
      S.lockedIncrement("barrier", "arrivals" + RS, Loc);
      if ((R + W) % 3 == 0)
        S.write("scratch" + std::to_string(R % 2), Loc + ".scr");
      S.post("arrive" + RS + "_" + std::to_string(W));
      if (W == 0) {
        for (uint32_t V = 1; V < Workers; ++V)
          S.await("arrive" + RS + "_" + std::to_string(V));
        S.post("go" + RS);
      } else {
        S.await("go" + RS);
      }
    }
  }

  for (uint32_t W = 1; W < Workers; ++W)
    Root.join(threadName(W));

  SimOptions Opts;
  Opts.Seed = Seed;
  Opts.BurstPercent = 50;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "barrier program failed to schedule");
  return std::move(R.T);
}

/// A fork chain where each link starts mid-trace and every round touches
/// fresh variables and a fresh lock: thread, lock and variable ids keep
/// being declared until the end of the trace. Streaming runs see their id
/// tables grow constantly (the Restarts == 0 contract's worst case); the
/// one shared unprotected variable gives every thread pair a candidate.
Trace makeDeclarationDense(uint64_t Seed) {
  const uint32_t Links = 3 + Seed % 3;
  const uint32_t RoundsPerLink = 4 + Seed % 3;
  Program P;
  auto threadName = [](uint32_t I) { return "link" + std::to_string(I); };

  // Pre-register every link (see makeProducerConsumer).
  for (uint32_t L = 0; L < Links; ++L)
    P.thread(threadName(L));

  for (uint32_t L = 0; L < Links; ++L) {
    ThreadScript S(P, threadName(L));
    const std::string LS = std::to_string(L);
    for (uint32_t R = 0; R < RoundsPerLink; ++R) {
      const std::string RS = LS + "_" + std::to_string(R);
      // Fresh ids every round: one new lock, two new variables.
      S.acq("fresh_lock" + RS);
      S.write("fresh_var" + RS + "a", "l" + RS + ".a");
      S.read("fresh_var" + RS + "a", "l" + RS + ".ar");
      S.rel("fresh_lock" + RS);
      S.write("fresh_var" + RS + "b", "l" + RS + ".b");
      // Fork the next link halfway through this one's work.
      if (R == RoundsPerLink / 2 && L + 1 < Links)
        S.fork(threadName(L + 1), "l" + LS + ".fork");
      if ((R + L) % 2 == 0)
        S.write("shared", "l" + RS + ".shared");
    }
    if (L + 1 < Links)
      S.join(threadName(L + 1), "l" + LS + ".join");
  }

  SimOptions Opts;
  Opts.Seed = Seed;
  Opts.BurstPercent = 60;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "declaration-dense program failed to schedule");
  return std::move(R.T);
}

Trace makeUniformShape(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 3;
  P.NumLocks = 1 + Seed % 3;
  P.NumVars = 3 + Seed % 4;
  P.OpsPerThread = 16 + Seed % 13;
  P.MaxLockNesting = 1 + Seed % 2;
  P.WithForkJoin = Seed % 3 == 0;
  return randomTrace(P);
}

} // namespace

Trace rapid::makeAdversarialTrace(WorkloadShape S, uint64_t Seed) {
  switch (S) {
  case WorkloadShape::Uniform:
    return makeUniformShape(Seed);
  case WorkloadShape::ZipfLight:
    return makeZipfShape(0.6, Seed);
  case WorkloadShape::ZipfMedium:
    return makeZipfShape(0.9, Seed);
  case WorkloadShape::ZipfHeavy:
    return makeZipfShape(1.2, Seed);
  case WorkloadShape::ProducerConsumer:
    return makeProducerConsumer(Seed);
  case WorkloadShape::BarrierHeavy:
    return makeBarrierHeavy(Seed);
  case WorkloadShape::DeclarationDense:
    return makeDeclarationDense(Seed);
  }
  return Trace();
}

Trace rapid::makeWcpQueueStress(const WcpQueueStressSpec &Spec) {
  assert(Spec.NestingDepth >= 1 && Spec.Chains >= 1);
  Program P;

  // Pre-register every thread (see makeProducerConsumer).
  P.thread("qa");
  P.thread("qb");
  if (Spec.LateThread)
    P.thread("qlate");

  ThreadScript A(P, "qa");
  ThreadScript B(P, "qb");

  for (uint32_t C = 0; C < Spec.Chains; ++C) {
    const std::string CS = std::to_string(C);
    // Deep nesting: A opens NestingDepth sections, touches the chain
    // variable at full depth, then unwinds — one long release chain. B
    // mirrors the identical nest strictly later (ticket-gated), so every
    // section pair on every nest lock conflicts across threads and WCP
    // must queue A's release clocks until B's sections drain them.
    for (uint32_t D = 0; D < Spec.NestingDepth; ++D)
      A.acq("nest" + CS + "_" + std::to_string(D), "qa.c" + CS);
    A.write("chain" + CS, "qa.c" + CS + ".w");
    for (uint32_t D = Spec.NestingDepth; D-- > 0;)
      A.rel("nest" + CS + "_" + std::to_string(D), "qa.c" + CS);
    A.post("chain" + CS);

    B.await("chain" + CS);
    for (uint32_t D = 0; D < Spec.NestingDepth; ++D)
      B.acq("nest" + CS + "_" + std::to_string(D), "qb.c" + CS);
    B.write("chain" + CS, "qb.c" + CS + ".w");
    for (uint32_t D = Spec.NestingDepth; D-- > 0;)
      B.rel("nest" + CS + "_" + std::to_string(D), "qb.c" + CS);

    // Fork the late thread halfway through the chain schedule.
    if (Spec.LateThread && C == Spec.Chains / 2)
      A.fork("qlate", "qa.fork");
  }

  // The flat many-lock release chain: back-to-back short conflicting
  // sections over ChainLocks distinct locks, first A then B.
  for (uint32_t L = 0; L < Spec.ChainLocks; ++L) {
    const std::string LS = std::to_string(L);
    A.lockedIncrement("flat" + LS, "flatvar" + LS, "qa.f" + LS);
  }
  A.post("flat");
  B.await("flat");
  for (uint32_t L = 0; L < Spec.ChainLocks; ++L) {
    const std::string LS = std::to_string(L);
    B.lockedIncrement("flat" + LS, "flatvar" + LS, "qb.f" + LS);
  }

  if (Spec.LateThread) {
    // The late thread conflicts, unprotected, on every chain variable:
    // candidates against both workers from a thread id the first half of
    // the trace never saw.
    ThreadScript Late(P, "qlate");
    for (uint32_t C = 0; C < Spec.Chains; ++C)
      Late.write("chain" + std::to_string(C), "qlate.c" + std::to_string(C));
    A.join("qlate", "qa.join");
  }

  SimOptions Opts;
  Opts.Seed = Spec.Seed;
  Opts.BurstPercent = 70;
  SimResult R = simulate(P, Opts);
  assert(R.Ok && "wcp queue stress program failed to schedule");
  return std::move(R.T);
}
