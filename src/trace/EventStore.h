//===- trace/EventStore.h - Stable published event storage ------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session's published event stream: a PublishedStore of the 16-byte
/// POD Event. The producer mirrors every parsed/fed event into this store
/// (one copy, made once on the ingest side) and publishes the §2.1-
/// validated prefix by watermark; lane consumers read the prefix in place
/// — the Trace object keeps owning the id tables and the authoritative
/// event vector for rendering and batch re-runs, while this store is what
/// the concurrent hot path actually walks. Unlike Trace's std::vector,
/// appends here never relocate an element, which is what lets lanes hold
/// references across publication without a lock.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_EVENTSTORE_H
#define RAPID_TRACE_EVENTSTORE_H

#include "support/PublishedStore.h"
#include "trace/Event.h"

namespace rapid {

using EventStore = PublishedStore<Event>;

} // namespace rapid

#endif // RAPID_TRACE_EVENTSTORE_H
