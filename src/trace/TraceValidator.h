//===- trace/TraceValidator.h - The two trace axioms ------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the two properties §2.1 requires of an event sequence before it
/// is a *trace*:
///
///   1. lock semantics: between two acquires of the same lock there is a
///      release by the first acquirer (critical sections on one lock never
///      overlap);
///   2. well-nestedness: critical sections of one thread are properly
///      nested.
///
/// Plus sanity rules the event model implies: releases match a held lock,
/// a thread's events only start after its fork (if any), no events after a
/// thread is joined, fork/join targets are distinct threads.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_TRACEVALIDATOR_H
#define RAPID_TRACE_TRACEVALIDATOR_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rapid {

/// One validation failure, tied to the offending event.
struct TraceViolation {
  EventIdx Index;
  std::string Message;
};

/// Result of validating a trace.
struct ValidationResult {
  std::vector<TraceViolation> Violations;

  bool ok() const { return Violations.empty(); }

  /// All messages joined by newlines, for test failure output.
  std::string str() const;
};

/// Validates \p T against the trace axioms. With \p RequireClosedSections,
/// critical sections must be closed by end of trace (generators guarantee
/// this; raw logs may end mid-section, which the paper's definition of
/// critical section explicitly permits). Hand-over-hand locking is legal
/// (Figure 6 of the paper uses it); use isWellNested() to probe for
/// strict nesting.
ValidationResult validateTrace(const Trace &T,
                               bool RequireClosedSections = false);

/// The incremental form of validateTrace: feed events in trace order and
/// violations accumulate as they happen, so a *prefix* can be certified
/// well-formed before the trace ends. This is what lets the streaming
/// session publish events to live detector lanes safely — detectors
/// assume the §2.1 axioms (a release without a matching acquire is
/// undefined behaviour in their lock-queue handling), so nothing
/// unvalidated may reach them. Internal state grows with the trace's id
/// tables, which may still be interning when events arrive.
class StreamingTraceValidator {
public:
  /// Feeds the \p Index-th event. \p T supplies current table sizes and
  /// names for messages. Events must arrive in trace order.
  void feed(const Event &E, EventIdx Index, const Trace &T);

  /// End-of-trace check: open critical sections, when
  /// \p RequireClosedSections (see validateTrace).
  void finish(const Trace &T, bool RequireClosedSections);

  bool ok() const { return Result.ok(); }
  const ValidationResult &result() const { return Result; }

private:
  void growTo(uint32_t NumThreads, uint32_t NumLocks);

  ValidationResult Result;
  uint64_t EventsSeen = 0;
  std::vector<ThreadId> Holder;            ///< Per lock: current holder.
  std::vector<std::vector<LockId>> LockStack; ///< Per thread: held locks.
  std::vector<bool> Forked;
  std::vector<bool> Joined;
  std::vector<bool> Seen;
};

/// True iff every release closes the innermost open critical section.
bool isWellNested(const Trace &T);

} // namespace rapid

#endif // RAPID_TRACE_TRACEVALIDATOR_H
