//===- trace/Event.h - Trace events (paper §2.1) ----------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event alphabet of §2.1: lock acquire/release, variable read/write,
/// plus thread fork/join (which the paper's tool RAPID also consumes from
/// RVPredict logs; they induce HB edges). Events are 16-byte PODs so that
/// traces of hundreds of millions of events stay cache- and RAM-friendly.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_EVENT_H
#define RAPID_TRACE_EVENT_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace rapid {

/// Kind of a trace event.
enum class EventKind : uint8_t {
  Read,    ///< r(x): read of shared variable x.
  Write,   ///< w(x): write of shared variable x.
  Acquire, ///< acq(l): lock acquisition.
  Release, ///< rel(l): lock release.
  Fork,    ///< fork(u): current thread spawns thread u.
  Join,    ///< join(u): current thread joins on thread u.
};

/// True for Read/Write.
inline bool isAccess(EventKind K) {
  return K == EventKind::Read || K == EventKind::Write;
}

/// True for Acquire/Release.
inline bool isSync(EventKind K) {
  return K == EventKind::Acquire || K == EventKind::Release;
}

/// Short mnemonic used by the text trace format: "r", "w", "acq", "rel",
/// "fork", "join".
const char *eventKindName(EventKind K);

/// A single trace event. The Target field is overloaded by kind: a VarId
/// for accesses, a LockId for acquire/release, a ThreadId for fork/join.
/// Loc identifies the static program location that performed the event;
/// race pairs are reported as pairs of locations (paper §4).
struct Event {
  EventKind Kind;
  ThreadId Thread;
  uint32_t Target = UINT32_MAX;
  LocId Loc;

  Event() : Kind(EventKind::Read) {}
  Event(EventKind Kind, ThreadId Thread, uint32_t Target, LocId Loc)
      : Kind(Kind), Thread(Thread), Target(Target), Loc(Loc) {}

  VarId var() const {
    assert(isAccess(Kind) && "not an access event");
    return VarId(Target);
  }
  LockId lock() const {
    assert(isSync(Kind) && "not a lock event");
    return LockId(Target);
  }
  ThreadId targetThread() const {
    assert((Kind == EventKind::Fork || Kind == EventKind::Join) &&
           "not a fork/join event");
    return ThreadId(Target);
  }

  /// Two events conflict (e1 ≍ e2) iff they access the same variable from
  /// different threads and at least one is a write (paper §2.1).
  static bool conflicting(const Event &A, const Event &B) {
    if (!isAccess(A.Kind) || !isAccess(B.Kind))
      return false;
    if (A.Thread == B.Thread || A.Target != B.Target)
      return false;
    return A.Kind == EventKind::Write || B.Kind == EventKind::Write;
  }
};

static_assert(sizeof(Event) <= 16, "Event must stay compact");

} // namespace rapid

#endif // RAPID_TRACE_EVENT_H
