//===- trace/TraceStats.h - Trace summary statistics ------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over a trace: the numbers in columns 3-5 of Table 1
/// (#events, #threads, #locks), plus access/sync mix, critical-section
/// counts and maximum nesting depth. Used by the bench harness and the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_TRACESTATS_H
#define RAPID_TRACE_TRACESTATS_H

#include "trace/Trace.h"

#include <string>

namespace rapid {

/// Aggregate counters for one trace.
struct TraceStats {
  uint64_t NumEvents = 0;
  uint32_t NumThreads = 0;
  uint32_t NumLocks = 0;
  uint32_t NumVars = 0;
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  uint64_t NumAcquires = 0;
  uint64_t NumReleases = 0;
  uint64_t NumForks = 0;
  uint64_t NumJoins = 0;
  uint64_t NumCriticalSections = 0;
  uint32_t MaxLockNesting = 0;

  /// Multi-line human-readable rendering.
  std::string str() const;
};

/// Computes statistics for \p T in one pass.
TraceStats computeStats(const Trace &T);

} // namespace rapid

#endif // RAPID_TRACE_TRACESTATS_H
