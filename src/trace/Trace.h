//===- trace/Trace.h - A sequence of events + name tables -------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Trace is the central data structure of the paper: a sequence of events
/// satisfying lock semantics and well-nestedness (§2.1). This class stores
/// the event vector plus the interned name tables for threads, locks,
/// variables and program locations. Analyses stream over events() in trace
/// order (<tr).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_TRACE_H
#define RAPID_TRACE_TRACE_H

#include "support/StringInterner.h"
#include "trace/Event.h"

#include <string>
#include <vector>

namespace rapid {

/// An event sequence with its identifier spaces.
class Trace {
public:
  Trace() = default;

  const std::vector<Event> &events() const { return Events; }
  const Event &event(EventIdx I) const {
    assert(I < Events.size() && "event index out of range");
    return Events[I];
  }
  uint64_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  uint32_t numThreads() const { return Threads.size(); }
  uint32_t numLocks() const { return Locks.size(); }
  uint32_t numVars() const { return Vars.size(); }
  uint32_t numLocs() const { return Locs.size(); }

  /// Name lookups for reporting.
  const std::string &threadName(ThreadId T) const {
    return Threads.name(T.value());
  }
  const std::string &lockName(LockId L) const { return Locks.name(L.value()); }
  const std::string &varName(VarId V) const { return Vars.name(V.value()); }
  const std::string &locName(LocId L) const { return Locs.name(L.value()); }

  /// Interners; exposed for the builder and the IO layer.
  StringInterner &threadTable() { return Threads; }
  StringInterner &lockTable() { return Locks; }
  StringInterner &varTable() { return Vars; }
  StringInterner &locTable() { return Locs; }
  const StringInterner &threadTable() const { return Threads; }
  const StringInterner &lockTable() const { return Locks; }
  const StringInterner &varTable() const { return Vars; }
  const StringInterner &locTable() const { return Locs; }

  /// Appends an event. Ids must already be interned; prefer TraceBuilder
  /// for checked construction.
  void append(const Event &E) { Events.push_back(E); }

  /// True iff every id \p E references (thread, kind-specific target,
  /// location) is already interned in this trace's tables — the check the
  /// push-ingestion API runs before appending raw events.
  bool containsIds(const Event &E) const;

  /// Copies \p Parent's id tables into this trace so that event ids from
  /// the parent remain valid here. Used by windowing, which produces
  /// fragments whose locations must stay comparable across windows.
  void adoptTables(const Trace &Parent) {
    Threads = Parent.Threads;
    Locks = Parent.Locks;
    Vars = Parent.Vars;
    Locs = Parent.Locs;
  }

  /// Reserves storage for \p N events.
  void reserve(uint64_t N) { Events.reserve(N); }

  /// Renders event \p I as "T0: acq(l1) @pc3" for diagnostics.
  std::string eventStr(EventIdx I) const;

  /// The projection σ|t of the trace onto thread \p T: indices of \p T's
  /// events, in trace order.
  std::vector<EventIdx> threadProjection(ThreadId T) const;

private:
  std::vector<Event> Events;
  StringInterner Threads;
  StringInterner Locks;
  StringInterner Vars;
  StringInterner Locs;
};

} // namespace rapid

#endif // RAPID_TRACE_TRACE_H
