//===- trace/Trace.cpp --------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

using namespace rapid;

std::string Trace::eventStr(EventIdx I) const {
  const Event &E = event(I);
  std::string Out = threadName(E.Thread);
  Out += ": ";
  Out += eventKindName(E.Kind);
  Out += "(";
  switch (E.Kind) {
  case EventKind::Read:
  case EventKind::Write:
    Out += varName(E.var());
    break;
  case EventKind::Acquire:
  case EventKind::Release:
    Out += lockName(E.lock());
    break;
  case EventKind::Fork:
  case EventKind::Join:
    Out += threadName(E.targetThread());
    break;
  }
  Out += ")";
  if (E.Loc.isValid()) {
    Out += " @";
    Out += locName(E.Loc);
  }
  return Out;
}

bool Trace::containsIds(const Event &E) const {
  if (!E.Thread.isValid() || E.Thread.value() >= numThreads())
    return false;
  if (E.Loc.isValid() && E.Loc.value() >= numLocs())
    return false;
  switch (E.Kind) {
  case EventKind::Read:
  case EventKind::Write:
    return E.Target < numVars();
  case EventKind::Acquire:
  case EventKind::Release:
    return E.Target < numLocks();
  case EventKind::Fork:
  case EventKind::Join:
    return E.Target < numThreads();
  }
  return false;
}

std::vector<EventIdx> Trace::threadProjection(ThreadId T) const {
  std::vector<EventIdx> Result;
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    if (Events[I].Thread == T)
      Result.push_back(I);
  return Result;
}
