//===- trace/TraceValidator.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceValidator.h"

#include <cstddef>
#include <unordered_map>

using namespace rapid;

std::string ValidationResult::str() const {
  std::string Out;
  for (const TraceViolation &V : Violations) {
    Out += "event ";
    Out += std::to_string(V.Index);
    Out += ": ";
    Out += V.Message;
    Out += "\n";
  }
  return Out;
}

bool rapid::isWellNested(const Trace &T) {
  std::vector<std::vector<LockId>> Stack(T.numThreads());
  for (const Event &E : T.events()) {
    if (E.Kind == EventKind::Acquire)
      Stack[E.Thread.value()].push_back(E.lock());
    if (E.Kind == EventKind::Release) {
      std::vector<LockId> &S = Stack[E.Thread.value()];
      if (S.empty() || S.back() != E.lock())
        return false;
      S.pop_back();
    }
  }
  return true;
}

void StreamingTraceValidator::growTo(uint32_t NumThreads,
                                     uint32_t NumLocks) {
  if (Holder.size() < NumLocks)
    Holder.resize(NumLocks, ThreadId::invalid());
  if (LockStack.size() < NumThreads) {
    LockStack.resize(NumThreads);
    Forked.resize(NumThreads, false);
    Joined.resize(NumThreads, false);
    Seen.resize(NumThreads, false);
  }
}

void StreamingTraceValidator::feed(const Event &Ev, EventIdx I,
                                   const Trace &T) {
  auto fail = [&](std::string Msg) {
    Result.Violations.push_back({I, std::move(Msg)});
  };
  ++EventsSeen;
  growTo(T.numThreads(), T.numLocks());

  uint32_t Tid = Ev.Thread.value();
  if (Tid >= T.numThreads()) {
    fail("thread id out of range");
    return;
  }
  if (Joined[Tid])
    fail("thread '" + T.threadName(Ev.Thread) +
         "' performs an event after being joined");
  Seen[Tid] = true;

  switch (Ev.Kind) {
  case EventKind::Acquire: {
    LockId L = Ev.lock();
    if (L.value() >= T.numLocks()) {
      fail("lock id out of range");
      break;
    }
    if (Holder[L.value()].isValid())
      fail("lock semantics violated: '" + T.lockName(L) +
           "' acquired while held by '" + T.threadName(Holder[L.value()]) +
           "'");
    Holder[L.value()] = Ev.Thread;
    LockStack[Tid].push_back(L);
    break;
  }
  case EventKind::Release: {
    LockId L = Ev.lock();
    if (L.value() >= T.numLocks()) {
      fail("lock id out of range");
      break;
    }
    if (Holder[L.value()] != Ev.Thread) {
      fail("release of '" + T.lockName(L) +
           "' by a thread that does not hold it");
      break;
    }
    // Hand-over-hand locking (release of a non-innermost section) is
    // permitted: the paper's own Figure 6 uses it. isWellNested()
    // probes for strict nesting separately.
    for (size_t K = LockStack[Tid].size(); K-- > 0;) {
      if (LockStack[Tid][K] == L) {
        LockStack[Tid].erase(LockStack[Tid].begin() +
                             static_cast<ptrdiff_t>(K));
        break;
      }
    }
    Holder[L.value()] = ThreadId::invalid();
    break;
  }
  case EventKind::Fork: {
    ThreadId Child = Ev.targetThread();
    if (Child.value() >= T.numThreads()) {
      fail("fork target out of range");
      break;
    }
    if (Child == Ev.Thread)
      fail("thread forks itself");
    if (Forked[Child.value()])
      fail("thread '" + T.threadName(Child) + "' forked twice");
    if (Seen[Child.value()])
      fail("fork of thread '" + T.threadName(Child) +
           "' after its first event");
    Forked[Child.value()] = true;
    break;
  }
  case EventKind::Join: {
    ThreadId Child = Ev.targetThread();
    if (Child.value() >= T.numThreads()) {
      fail("join target out of range");
      break;
    }
    if (Child == Ev.Thread)
      fail("thread joins itself");
    if (Joined[Child.value()])
      fail("thread '" + T.threadName(Child) + "' joined twice");
    Joined[Child.value()] = true;
    break;
  }
  case EventKind::Read:
  case EventKind::Write:
    if (Ev.var().value() >= T.numVars())
      fail("variable id out of range");
    break;
  }
}

void StreamingTraceValidator::finish(const Trace &T,
                                     bool RequireClosedSections) {
  if (!RequireClosedSections)
    return;
  growTo(T.numThreads(), T.numLocks());
  EventIdx End = EventsSeen ? EventsSeen - 1 : 0;
  for (uint32_t L = 0; L < T.numLocks(); ++L)
    if (Holder[L].isValid())
      Result.Violations.push_back(
          {End,
           "lock '" + T.lockName(LockId(L)) + "' still held at end of trace"});
}

ValidationResult rapid::validateTrace(const Trace &T,
                                      bool RequireClosedSections) {
  StreamingTraceValidator V;
  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    V.feed(Events[I], I, T);
  V.finish(T, RequireClosedSections);
  return V.result();
}
