//===- trace/TraceValidator.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceValidator.h"

#include <cstddef>
#include <unordered_map>

using namespace rapid;

std::string ValidationResult::str() const {
  std::string Out;
  for (const TraceViolation &V : Violations) {
    Out += "event ";
    Out += std::to_string(V.Index);
    Out += ": ";
    Out += V.Message;
    Out += "\n";
  }
  return Out;
}

bool rapid::isWellNested(const Trace &T) {
  std::vector<std::vector<LockId>> Stack(T.numThreads());
  for (const Event &E : T.events()) {
    if (E.Kind == EventKind::Acquire)
      Stack[E.Thread.value()].push_back(E.lock());
    if (E.Kind == EventKind::Release) {
      std::vector<LockId> &S = Stack[E.Thread.value()];
      if (S.empty() || S.back() != E.lock())
        return false;
      S.pop_back();
    }
  }
  return true;
}

ValidationResult rapid::validateTrace(const Trace &T,
                                      bool RequireClosedSections) {
  ValidationResult Result;
  auto fail = [&](EventIdx I, std::string Msg) {
    Result.Violations.push_back({I, std::move(Msg)});
  };

  uint32_t NumThreads = T.numThreads();
  uint32_t NumLocks = T.numLocks();

  // Holder[l] = thread currently holding lock l (or invalid).
  std::vector<ThreadId> Holder(NumLocks, ThreadId::invalid());
  // Depth[l][t] = re-entrancy depth is not modeled: locks are non-reentrant
  // in the paper's model. LockStack[t] = stack of locks held by t, for
  // well-nestedness.
  std::vector<std::vector<LockId>> LockStack(NumThreads);

  std::vector<bool> Forked(NumThreads, false);
  std::vector<bool> Joined(NumThreads, false);
  std::vector<bool> Seen(NumThreads, false);
  // A thread that appears before any fork targets it is a root thread;
  // only threads with an explicit fork must start after it.
  std::vector<EventIdx> FirstSeen(NumThreads, UINT64_MAX);

  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I) {
    const Event &Ev = Events[I];
    uint32_t Tid = Ev.Thread.value();
    if (Tid >= NumThreads) {
      fail(I, "thread id out of range");
      continue;
    }
    if (Joined[Tid])
      fail(I, "thread '" + T.threadName(Ev.Thread) +
                  "' performs an event after being joined");
    Seen[Tid] = true;
    if (FirstSeen[Tid] == UINT64_MAX)
      FirstSeen[Tid] = I;

    switch (Ev.Kind) {
    case EventKind::Acquire: {
      LockId L = Ev.lock();
      if (L.value() >= NumLocks) {
        fail(I, "lock id out of range");
        break;
      }
      if (Holder[L.value()].isValid())
        fail(I, "lock semantics violated: '" + T.lockName(L) +
                    "' acquired while held by '" +
                    T.threadName(Holder[L.value()]) + "'");
      Holder[L.value()] = Ev.Thread;
      LockStack[Tid].push_back(L);
      break;
    }
    case EventKind::Release: {
      LockId L = Ev.lock();
      if (L.value() >= NumLocks) {
        fail(I, "lock id out of range");
        break;
      }
      if (Holder[L.value()] != Ev.Thread) {
        fail(I, "release of '" + T.lockName(L) +
                    "' by a thread that does not hold it");
        break;
      }
      // Hand-over-hand locking (release of a non-innermost section) is
      // permitted: the paper's own Figure 6 uses it. isWellNested()
      // probes for strict nesting separately.
      for (size_t K = LockStack[Tid].size(); K-- > 0;) {
        if (LockStack[Tid][K] == L) {
          LockStack[Tid].erase(LockStack[Tid].begin() +
                               static_cast<ptrdiff_t>(K));
          break;
        }
      }
      Holder[L.value()] = ThreadId::invalid();
      break;
    }
    case EventKind::Fork: {
      ThreadId Child = Ev.targetThread();
      if (Child.value() >= NumThreads) {
        fail(I, "fork target out of range");
        break;
      }
      if (Child == Ev.Thread)
        fail(I, "thread forks itself");
      if (Forked[Child.value()])
        fail(I, "thread '" + T.threadName(Child) + "' forked twice");
      if (Seen[Child.value()])
        fail(I, "fork of thread '" + T.threadName(Child) +
                    "' after its first event");
      Forked[Child.value()] = true;
      break;
    }
    case EventKind::Join: {
      ThreadId Child = Ev.targetThread();
      if (Child.value() >= NumThreads) {
        fail(I, "join target out of range");
        break;
      }
      if (Child == Ev.Thread)
        fail(I, "thread joins itself");
      if (Joined[Child.value()])
        fail(I, "thread '" + T.threadName(Child) + "' joined twice");
      Joined[Child.value()] = true;
      break;
    }
    case EventKind::Read:
    case EventKind::Write:
      if (Ev.var().value() >= T.numVars())
        fail(I, "variable id out of range");
      break;
    }
  }

  if (RequireClosedSections) {
    for (uint32_t L = 0; L < NumLocks; ++L)
      if (Holder[L].isValid())
        fail(Events.size() ? Events.size() - 1 : 0,
             "lock '" + T.lockName(LockId(L)) + "' still held at end of trace");
  }
  return Result;
}
