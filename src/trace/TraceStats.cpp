//===- trace/TraceStats.cpp ---------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"

#include <algorithm>

using namespace rapid;

std::string TraceStats::str() const {
  std::string Out;
  auto line = [&Out](const char *Name, uint64_t V) {
    Out += Name;
    Out += ": ";
    Out += std::to_string(V);
    Out += "\n";
  };
  line("events", NumEvents);
  line("threads", NumThreads);
  line("locks", NumLocks);
  line("vars", NumVars);
  line("reads", NumReads);
  line("writes", NumWrites);
  line("acquires", NumAcquires);
  line("releases", NumReleases);
  line("forks", NumForks);
  line("joins", NumJoins);
  line("critical sections", NumCriticalSections);
  line("max lock nesting", MaxLockNesting);
  return Out;
}

TraceStats rapid::computeStats(const Trace &T) {
  TraceStats S;
  S.NumEvents = T.size();
  S.NumThreads = T.numThreads();
  S.NumLocks = T.numLocks();
  S.NumVars = T.numVars();

  std::vector<uint32_t> Depth(T.numThreads(), 0);
  for (const Event &E : T.events()) {
    switch (E.Kind) {
    case EventKind::Read:
      ++S.NumReads;
      break;
    case EventKind::Write:
      ++S.NumWrites;
      break;
    case EventKind::Acquire: {
      ++S.NumAcquires;
      ++S.NumCriticalSections;
      uint32_t &D = Depth[E.Thread.value()];
      ++D;
      S.MaxLockNesting = std::max(S.MaxLockNesting, D);
      break;
    }
    case EventKind::Release: {
      ++S.NumReleases;
      uint32_t &D = Depth[E.Thread.value()];
      if (D > 0)
        --D;
      break;
    }
    case EventKind::Fork:
      ++S.NumForks;
      break;
    case EventKind::Join:
      ++S.NumJoins;
      break;
    }
  }
  return S;
}
