//===- trace/Window.cpp -------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Window.h"

#include <algorithm>

using namespace rapid;

std::vector<TraceWindow> rapid::splitIntoWindows(const Trace &T,
                                                 uint64_t WindowSize) {
  assert(WindowSize > 0 && "window size must be positive");
  std::vector<TraceWindow> Windows;
  const std::vector<Event> &Events = T.events();

  // Locks held when a window opens are re-established by replaying their
  // original acquire events at the head of the fragment. Without this,
  // the tail of a critical section cut by the boundary would look
  // unprotected and the fragment would *invent* races — windowed tools
  // carry lock context across fragments for exactly this reason.
  // PendingAcq[l] = index of the acquire currently holding l.
  std::vector<EventIdx> PendingAcq(T.numLocks(), UINT64_MAX);

  for (uint64_t Start = 0; Start < Events.size(); Start += WindowSize) {
    uint64_t End = std::min<uint64_t>(Start + WindowSize, Events.size());
    TraceWindow W;
    W.Fragment.adoptTables(T);
    W.Fragment.reserve(End - Start);

    // Replay held acquires, oldest first.
    std::vector<EventIdx> Held;
    for (EventIdx A : PendingAcq)
      if (A != UINT64_MAX)
        Held.push_back(A);
    std::sort(Held.begin(), Held.end());
    for (EventIdx A : Held) {
      W.Original.push_back(A);
      W.Fragment.append(Events[A]);
    }

    for (uint64_t I = Start; I != End; ++I) {
      const Event &E = Events[I];
      if (E.Kind == EventKind::Acquire)
        PendingAcq[E.lock().value()] = I;
      else if (E.Kind == EventKind::Release)
        PendingAcq[E.lock().value()] = UINT64_MAX;
      W.Original.push_back(I);
      W.Fragment.append(E);
    }
    Windows.push_back(std::move(W));
  }
  return Windows;
}
