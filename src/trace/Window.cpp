//===- trace/Window.cpp -------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Window.h"

#include <algorithm>
#include <cassert>

using namespace rapid;

IncrementalWindowSplitter::IncrementalWindowSplitter(const Trace &Tables,
                                                     uint64_t WindowSize)
    : WindowSize(WindowSize),
      PendingAcq(Tables.numLocks(),
                 std::make_pair<EventIdx, Event>(UINT64_MAX, Event())) {
  assert(WindowSize > 0 && "window size must be positive");
  this->Tables.adoptTables(Tables);
}

void IncrementalWindowSplitter::open() {
  Pending = TraceWindow();
  Pending.Fragment.adoptTables(Tables);
  Pending.Fragment.reserve(WindowSize);

  // Locks held when a window opens are re-established by replaying their
  // original acquire events at the head of the fragment. Without this,
  // the tail of a critical section cut by the boundary would look
  // unprotected and the fragment would *invent* races — windowed tools
  // carry lock context across fragments for exactly this reason.
  std::vector<const std::pair<EventIdx, Event> *> Held;
  for (const std::pair<EventIdx, Event> &A : PendingAcq)
    if (A.first != UINT64_MAX)
      Held.push_back(&A);
  std::sort(Held.begin(), Held.end(),
            [](const std::pair<EventIdx, Event> *A,
               const std::pair<EventIdx, Event> *B) {
              return A->first < B->first;
            });
  for (const std::pair<EventIdx, Event> *A : Held) {
    Pending.Original.push_back(A->first);
    Pending.Fragment.append(A->second);
  }
  InWindow = 0;
  Open = true;
}

std::optional<TraceWindow> IncrementalWindowSplitter::push(const Event &E,
                                                           EventIdx I) {
  if (!Open)
    open();
  if (E.Kind == EventKind::Acquire || E.Kind == EventKind::Release) {
    // Locks declared after construction (streaming producers grow their
    // tables mid-stream) extend the held-lock table on first touch.
    if (E.lock().value() >= PendingAcq.size())
      PendingAcq.resize(E.lock().value() + 1,
                        std::make_pair<EventIdx, Event>(UINT64_MAX, Event()));
    PendingAcq[E.lock().value()] =
        E.Kind == EventKind::Acquire
            ? std::make_pair(I, E)
            : std::make_pair<EventIdx, Event>(UINT64_MAX, Event());
  }
  Pending.Original.push_back(I);
  Pending.Fragment.append(E);
  if (++InWindow != WindowSize)
    return std::nullopt;
  Open = false;
  return std::move(Pending);
}

std::optional<TraceWindow> IncrementalWindowSplitter::flush() {
  if (!Open || InWindow == 0)
    return std::nullopt;
  Open = false;
  return std::move(Pending);
}

std::vector<TraceWindow> rapid::splitIntoWindows(const Trace &T,
                                                 uint64_t WindowSize) {
  assert(WindowSize > 0 && "window size must be positive");
  // One shared implementation: the batch splitter is the incremental one
  // fed the whole trace — so streaming consumers that cut windows as the
  // prefix grows produce these exact fragments.
  IncrementalWindowSplitter Splitter(T, WindowSize);
  std::vector<TraceWindow> Windows;
  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0, E = Events.size(); I != E; ++I)
    if (std::optional<TraceWindow> W = Splitter.push(Events[I], I))
      Windows.push_back(std::move(*W));
  if (std::optional<TraceWindow> W = Splitter.flush())
    Windows.push_back(std::move(*W));
  return Windows;
}
