//===- trace/Window.h - Trace windowing (fragmenting) -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a trace into bounded windows the way windowed analyses
/// (RVPredict, windowed CP) must (§1, §4). A window is a *sub-trace*: it
/// keeps the events in order and repairs the lock state at the boundary by
/// dropping unmatched releases at the start and closing unmatched acquires
/// at the end, so each window is itself a valid trace. This mirrors how
/// windowed tools re-initialize their analysis per fragment — and is
/// exactly the mechanism that makes them miss far-apart races.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_WINDOW_H
#define RAPID_TRACE_WINDOW_H

#include "trace/Trace.h"

#include <optional>
#include <vector>

namespace rapid {

/// A window over a parent trace.
struct TraceWindow {
  Trace Fragment;                 ///< Self-contained sub-trace.
  std::vector<EventIdx> Original; ///< Fragment index -> parent event index.
};

/// Incremental form of the window splitter, for producers that see the
/// trace as a growing prefix (the streaming session): events are pushed
/// one at a time in trace order and each window pops out the moment its
/// last event arrives — the splitter never needs events beyond the
/// published prefix. Windows are identical to splitIntoWindows' (which is
/// implemented on top of this class): held locks are re-established by
/// replaying their original acquires at the head of each fragment, so a
/// critical section cut by the boundary cannot invent races.
class IncrementalWindowSplitter {
public:
  /// \p Tables supplies the id tables every fragment adopts (copied up
  /// front; the parent trace's event vector is never referenced, so the
  /// parent may keep growing while the splitter runs). \p WindowSize
  /// must be positive.
  IncrementalWindowSplitter(const Trace &Tables, uint64_t WindowSize);

  /// Pushes parent event \p I (events must arrive in trace order, gap
  /// free). Returns the completed window when this event fills one, else
  /// nullopt.
  std::optional<TraceWindow> push(const Event &E, EventIdx I);

  /// Flushes the trailing partial window after the last push; nullopt
  /// when the trace ended exactly on a window boundary (or was empty).
  std::optional<TraceWindow> flush();

private:
  void open(); ///< Starts the pending window, replaying held acquires.

  Trace Tables; ///< Id-table donor for every fragment.
  uint64_t WindowSize;
  uint64_t InWindow = 0; ///< Parent events in the pending window.
  bool Open = false;
  TraceWindow Pending;
  /// Per lock: the acquire currently holding it (index + the event, so
  /// replay does not need to reach back into the parent trace).
  std::vector<std::pair<EventIdx, Event>> PendingAcq;
};

/// Splits \p T into consecutive windows of at most \p WindowSize events.
/// The fragments share the parent's id tables (names are re-used), so
/// locations reported from a fragment are comparable across windows.
std::vector<TraceWindow> splitIntoWindows(const Trace &T,
                                          uint64_t WindowSize);

} // namespace rapid

#endif // RAPID_TRACE_WINDOW_H
