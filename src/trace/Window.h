//===- trace/Window.h - Trace windowing (fragmenting) -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a trace into bounded windows the way windowed analyses
/// (RVPredict, windowed CP) must (§1, §4). A window is a *sub-trace*: it
/// keeps the events in order and repairs the lock state at the boundary by
/// dropping unmatched releases at the start and closing unmatched acquires
/// at the end, so each window is itself a valid trace. This mirrors how
/// windowed tools re-initialize their analysis per fragment — and is
/// exactly the mechanism that makes them miss far-apart races.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_WINDOW_H
#define RAPID_TRACE_WINDOW_H

#include "trace/Trace.h"

#include <vector>

namespace rapid {

/// A window over a parent trace.
struct TraceWindow {
  Trace Fragment;                 ///< Self-contained sub-trace.
  std::vector<EventIdx> Original; ///< Fragment index -> parent event index.
};

/// Splits \p T into consecutive windows of at most \p WindowSize events.
/// The fragments share the parent's id tables (names are re-used), so
/// locations reported from a fragment are comparable across windows.
std::vector<TraceWindow> splitIntoWindows(const Trace &T,
                                          uint64_t WindowSize);

} // namespace rapid

#endif // RAPID_TRACE_WINDOW_H
