//===- trace/Event.cpp -------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"

using namespace rapid;

const char *rapid::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Read:
    return "r";
  case EventKind::Write:
    return "w";
  case EventKind::Acquire:
    return "acq";
  case EventKind::Release:
    return "rel";
  case EventKind::Fork:
    return "fork";
  case EventKind::Join:
    return "join";
  }
  assert(false && "unknown event kind");
  return "?";
}
