//===- trace/TraceBuilder.cpp -------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBuilder.h"

using namespace rapid;

ThreadId TraceBuilder::declareThread(std::string_view Name) {
  return ThreadId(Result.threadTable().intern(Name));
}

LockId TraceBuilder::declareLock(std::string_view Name) {
  return LockId(Result.lockTable().intern(Name));
}

VarId TraceBuilder::declareVar(std::string_view Name) {
  return VarId(Result.varTable().intern(Name));
}

LocId TraceBuilder::declareLoc(std::string_view Name) {
  return LocId(Result.locTable().intern(Name));
}

LocId TraceBuilder::locOrDefault(std::string_view Loc) {
  if (!Loc.empty())
    return declareLoc(Loc);
  std::string Default = "L" + std::to_string(Result.size());
  return declareLoc(Default);
}

void TraceBuilder::append(EventKind Kind, std::string_view Thread,
                          uint32_t Target, std::string_view Loc) {
  ThreadId T = declareThread(Thread);
  Result.append(Event(Kind, T, Target, locOrDefault(Loc)));
}

TraceBuilder &TraceBuilder::read(std::string_view Thread, std::string_view Var,
                                 std::string_view Loc) {
  append(EventKind::Read, Thread, declareVar(Var).value(), Loc);
  return *this;
}

TraceBuilder &TraceBuilder::write(std::string_view Thread,
                                  std::string_view Var, std::string_view Loc) {
  append(EventKind::Write, Thread, declareVar(Var).value(), Loc);
  return *this;
}

TraceBuilder &TraceBuilder::acquire(std::string_view Thread,
                                    std::string_view Lock,
                                    std::string_view Loc) {
  append(EventKind::Acquire, Thread, declareLock(Lock).value(), Loc);
  return *this;
}

TraceBuilder &TraceBuilder::release(std::string_view Thread,
                                    std::string_view Lock,
                                    std::string_view Loc) {
  append(EventKind::Release, Thread, declareLock(Lock).value(), Loc);
  return *this;
}

TraceBuilder &TraceBuilder::fork(std::string_view Parent,
                                 std::string_view Child,
                                 std::string_view Loc) {
  uint32_t ChildId = declareThread(Child).value();
  append(EventKind::Fork, Parent, ChildId, Loc);
  return *this;
}

TraceBuilder &TraceBuilder::join(std::string_view Parent,
                                 std::string_view Child,
                                 std::string_view Loc) {
  uint32_t ChildId = declareThread(Child).value();
  append(EventKind::Join, Parent, ChildId, Loc);
  return *this;
}

TraceBuilder &TraceBuilder::acrl(std::string_view Thread,
                                 std::string_view Lock) {
  acquire(Thread, Lock);
  release(Thread, Lock);
  return *this;
}

TraceBuilder &TraceBuilder::sync(std::string_view Thread,
                                 std::string_view Lock) {
  // The paper (Figure 3 caption): sync(x) is shorthand for
  // acq(x) r(xVar) w(xVar) rel(x), with xVar unique to lock x.
  std::string Var = std::string(Lock) + "Var";
  acquire(Thread, Lock);
  read(Thread, Var);
  write(Thread, Var);
  release(Thread, Lock);
  return *this;
}

void TraceBuilder::appendRead(ThreadId T, VarId V, LocId Loc) {
  Result.append(Event(EventKind::Read, T, V.value(), Loc));
}

void TraceBuilder::appendWrite(ThreadId T, VarId V, LocId Loc) {
  Result.append(Event(EventKind::Write, T, V.value(), Loc));
}

void TraceBuilder::appendAcquire(ThreadId T, LockId L, LocId Loc) {
  Result.append(Event(EventKind::Acquire, T, L.value(), Loc));
}

void TraceBuilder::appendRelease(ThreadId T, LockId L, LocId Loc) {
  Result.append(Event(EventKind::Release, T, L.value(), Loc));
}

void TraceBuilder::appendFork(ThreadId T, ThreadId Child, LocId Loc) {
  Result.append(Event(EventKind::Fork, T, Child.value(), Loc));
}

void TraceBuilder::appendJoin(ThreadId T, ThreadId Child, LocId Loc) {
  Result.append(Event(EventKind::Join, T, Child.value(), Loc));
}

Trace TraceBuilder::take() {
  Trace Out = std::move(Result);
  Result = Trace();
  return Out;
}
