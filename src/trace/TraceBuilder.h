//===- trace/TraceBuilder.h - Checked trace construction --------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent builder for traces, used by tests, the paper-figure encodings and
/// the workload generators. Names are interned on the fly; a default source
/// location ("L<index>") is derived when none is supplied so that every
/// event has a distinct location unless the caller says otherwise (this
/// matters for "distinct race pair" counting).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_TRACE_TRACEBUILDER_H
#define RAPID_TRACE_TRACEBUILDER_H

#include "trace/Trace.h"

#include <string_view>

namespace rapid {

/// Incrementally constructs a Trace.
class TraceBuilder {
public:
  TraceBuilder() = default;

  /// Pre-registers a thread so thread ids are dense and in a known order
  /// even if the thread's first event comes late.
  ThreadId declareThread(std::string_view Name);
  LockId declareLock(std::string_view Name);
  VarId declareVar(std::string_view Name);
  LocId declareLoc(std::string_view Name);

  /// Event appenders. \p Loc may be empty, in which case a unique location
  /// name is synthesized from the event index.
  TraceBuilder &read(std::string_view Thread, std::string_view Var,
                     std::string_view Loc = {});
  TraceBuilder &write(std::string_view Thread, std::string_view Var,
                      std::string_view Loc = {});
  TraceBuilder &acquire(std::string_view Thread, std::string_view Lock,
                        std::string_view Loc = {});
  TraceBuilder &release(std::string_view Thread, std::string_view Lock,
                        std::string_view Loc = {});
  TraceBuilder &fork(std::string_view Parent, std::string_view Child,
                     std::string_view Loc = {});
  TraceBuilder &join(std::string_view Parent, std::string_view Child,
                     std::string_view Loc = {});

  /// acq(l) immediately followed by rel(l) — the paper's acrl(y) shorthand
  /// (Figure 6).
  TraceBuilder &acrl(std::string_view Thread, std::string_view Lock);

  /// sync(x) from the paper (Figures 3-5): acq(x) r(xVar) w(xVar) rel(x)
  /// on the lock named \p Lock with its associated variable "<Lock>Var".
  TraceBuilder &sync(std::string_view Thread, std::string_view Lock);

  /// Id-based appenders for generators that already hold dense ids.
  void appendRead(ThreadId T, VarId V, LocId Loc);
  void appendWrite(ThreadId T, VarId V, LocId Loc);
  void appendAcquire(ThreadId T, LockId L, LocId Loc);
  void appendRelease(ThreadId T, LockId L, LocId Loc);
  void appendFork(ThreadId T, ThreadId Child, LocId Loc);
  void appendJoin(ThreadId T, ThreadId Child, LocId Loc);

  uint64_t size() const { return Result.size(); }

  /// Reserves event storage (ingestion knows the file size; a reserve up
  /// front saves the append path's realloc-and-copy cascade).
  void reserve(uint64_t N) { Result.reserve(N); }

  /// Finalizes and returns the trace. The builder is left empty.
  Trace take();

  /// Access to the trace under construction (for incremental analyses).
  const Trace &current() const { return Result; }

private:
  LocId locOrDefault(std::string_view Loc);
  void append(EventKind Kind, std::string_view Thread, uint32_t Target,
              std::string_view Loc);

  Trace Result;
};

} // namespace rapid

#endif // RAPID_TRACE_TRACEBUILDER_H
