//===- hb/FastTrackDetector.h - Epoch-optimized HB --------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FastTrack [14]: the epoch optimization of the HB vector-clock algorithm.
/// The paper's conclusion lists "use of epoch based optimizations for
/// improving memory requirements" as future work; this detector implements
/// the optimization for the HB side and serves as the reference point for
/// what the optimization buys (bench_detectors).
///
/// Most variables have totally ordered access histories, so a single epoch
/// c@t replaces the O(T) vector; read histories adaptively promote to a
/// full vector clock when concurrent reads appear. FastTrack detects a race
/// on a variable iff the full-history detector does (it may report fewer
/// *distinct pairs* because it keeps only the most recent write).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_HB_FASTTRACKDETECTOR_H
#define RAPID_HB_FASTTRACKDETECTOR_H

#include "detect/Detector.h"
#include "vc/Epoch.h"
#include "vc/VectorClock.h"

#include <vector>

namespace rapid {

/// Streaming FastTrack detector.
class FastTrackDetector : public Detector {
public:
  explicit FastTrackDetector(const Trace &T);

  void processEvent(const Event &E, EventIdx Index) override;
  std::string name() const override { return "FastTrack"; }

  /// FastTrack's epoch checks partition by variable exactly like the
  /// full-history detectors' — all they need at an access is C_t, which
  /// the capture pass snapshots. Only the VarState machinery is deferred;
  /// the shard phase replays it with ShardReplay::FastTrackEpoch.
  bool beginCapture(AccessLog &Log) override {
    Capture = &Log;
    return true;
  }
  ShardReplay shardReplay() const override {
    return ShardReplay::FastTrackEpoch;
  }

  /// Number of variables whose read history ever needed a full vector
  /// clock (telemetry: the paper's motivation for epochs is that this is
  /// rare). Zero in capture mode — promotion happens in the shards.
  uint64_t numReadVectorPromotions() const { return ReadPromotions; }

private:
  struct ReadLocInfo {
    LocId Loc;
    EventIdx Idx = 0;
  };

  struct VarState {
    Epoch Write;               ///< Last write epoch.
    LocId WriteLoc;            ///< Location of last write.
    EventIdx WriteIdx = 0;     ///< Trace index of last write.
    Epoch Read;                ///< Last read epoch (when not promoted).
    LocId ReadLoc;             ///< Location of last read (epoch mode).
    EventIdx ReadIdx = 0;      ///< Index of last read (epoch mode).
    bool ReadShared = false;   ///< True once promoted to a vector.
    VectorClock ReadVC;        ///< Per-thread read clocks (promoted mode).
    std::vector<ReadLocInfo> ReadInfo; ///< Per-thread read locs (promoted).
  };

  /// Admits threads [size, T] (local time 1, as at construction) and
  /// raises the high-water NumThreads.
  void ensureThread(ThreadId T);
  void ensureLock(LockId L);
  VarState &varState(VarId V);

  void incrementLocal(ThreadId T);
  void reportRace(EventIdx EarlierIdx, LocId EarlierLoc, EventIdx LaterIdx,
                  LocId LaterLoc, VarId Var);

  uint32_t NumThreads; ///< High-water thread count (promotion sizing).
  std::vector<VectorClock> ThreadClocks;
  /// Change epoch of C_t (see HbDetector::ClockEpochs): O(1) snapshot
  /// dedup in capture mode.
  std::vector<uint64_t> ClockEpochs;
  std::vector<VectorClock> LockClocks;
  std::vector<VarState> Vars;
  uint64_t ReadPromotions = 0;
  AccessLog *Capture = nullptr; ///< Non-null in capture mode.
};

} // namespace rapid

#endif // RAPID_HB_FASTTRACKDETECTOR_H
