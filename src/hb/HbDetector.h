//===- hb/HbDetector.h - Happens-before vector-clock detector ---*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical linear-time HB race detector (Lamport [22], vector clocks
/// per Mattern [25], Djit+ [29]): the baseline RAPID also implements and
/// the paper compares against in Table 1 columns 7 and 13. Unlike the HB
/// baselines in prior evaluations ([18], [41]), this implementation is
/// deliberately *unwindowed* — §4.3 shows that windowed HB under-reports.
///
/// HB ordering (Definition 1): thread order, plus rel(l) before any later
/// acq(l). Fork/join edges are included the way RAPID consumes them from
/// RVPredict logs: fork before the child's first event, the child's last
/// event before join.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_HB_HBDETECTOR_H
#define RAPID_HB_HBDETECTOR_H

#include "detect/AccessHistory.h"
#include "detect/Detector.h"
#include "vc/VectorClock.h"

#include <vector>

namespace rapid {

/// Streaming HB detector with full per-thread access histories (reports
/// both endpoints of every distinct race pair). All state is growable:
/// threads, locks and variables first seen mid-stream are admitted with
/// the same initial state a full-table construction would have given
/// them, so a detector built against a trace prefix reports bit-for-bit
/// what a detector built against the final tables reports.
class HbDetector : public Detector {
public:
  explicit HbDetector(const Trace &T);

  void processEvent(const Event &E, EventIdx Index) override;
  std::string name() const override { return "HB"; }

  /// HB race checks depend only on C_t at the access, so they partition
  /// by variable: capture mode defers them into \p Log.
  bool beginCapture(AccessLog &Log) override {
    Capture = &Log;
    return true;
  }

  /// The HB time C_e of the last processed event (testing hook).
  const VectorClock &threadClock(ThreadId T) const {
    return ThreadClocks[T.value()];
  }

private:
  void incrementLocal(ThreadId T);
  /// Admits threads [size, T]: every new thread starts at local time 1,
  /// exactly as the constructor initializes declared-up-front threads.
  void ensureThread(ThreadId T);
  /// Admits locks up to \p L (new locks start at ⊥, as at construction).
  void ensureLock(LockId L);

  std::vector<VectorClock> ThreadClocks; ///< C_t per thread.
  /// Change epoch of C_t, bumped whenever C_t mutates (acquire joins that
  /// added something, release/fork increments, join joins). Capture mode
  /// hands it to the ClockBroadcast so consecutive accesses between sync
  /// events intern their snapshot in O(1) instead of an O(threads)
  /// content compare.
  std::vector<uint64_t> ClockEpochs;
  std::vector<VectorClock> LockClocks;   ///< L_l per lock.
  AccessHistory History;
  std::vector<RaceInstance> Scratch;
  AccessLog *Capture = nullptr; ///< Non-null in capture mode.
};

} // namespace rapid

#endif // RAPID_HB_HBDETECTOR_H
