//===- hb/FastTrackDetector.cpp -----------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "hb/FastTrackDetector.h"

#include "detect/ShardedAccessHistory.h"

using namespace rapid;

FastTrackDetector::FastTrackDetector(const Trace &T)
    : NumThreads(T.numThreads()),
      ThreadClocks(T.numThreads(), VectorClock(T.numThreads())),
      ClockEpochs(T.numThreads(), 1),
      LockClocks(T.numLocks(), VectorClock(T.numThreads())),
      Vars(T.numVars()) {
  for (uint32_t I = 0; I < NumThreads; ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void FastTrackDetector::incrementLocal(ThreadId T) {
  VectorClock &C = ThreadClocks[T.value()];
  C.set(T, C.get(T) + 1);
}

void FastTrackDetector::ensureThread(ThreadId T) {
  if (T.value() >= NumThreads)
    NumThreads = T.value() + 1;
  if (T.value() < ThreadClocks.size())
    return;
  uint32_t Old = static_cast<uint32_t>(ThreadClocks.size());
  ThreadClocks.resize(T.value() + 1);
  ClockEpochs.resize(T.value() + 1, 1);
  for (uint32_t I = Old; I <= T.value(); ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void FastTrackDetector::ensureLock(LockId L) {
  if (L.value() >= LockClocks.size())
    LockClocks.resize(L.value() + 1);
}

FastTrackDetector::VarState &FastTrackDetector::varState(VarId V) {
  if (V.value() >= Vars.size())
    Vars.resize(V.value() + 1);
  return Vars[V.value()];
}

void FastTrackDetector::reportRace(EventIdx EarlierIdx, LocId EarlierLoc,
                                   EventIdx LaterIdx, LocId LaterLoc,
                                   VarId Var) {
  RaceInstance Inst;
  Inst.EarlierIdx = EarlierIdx;
  Inst.LaterIdx = LaterIdx;
  Inst.EarlierLoc = EarlierLoc;
  Inst.LaterLoc = LaterLoc;
  Inst.Var = Var;
  Report.addRace(Inst);
}

void FastTrackDetector::processEvent(const Event &E, EventIdx Index) {
  ThreadId T = E.Thread;
  // Grow every table the event touches before taking references.
  ensureThread(T);
  if (E.Kind == EventKind::Fork || E.Kind == EventKind::Join)
    ensureThread(E.targetThread());
  else if (E.Kind == EventKind::Acquire || E.Kind == EventKind::Release)
    ensureLock(E.lock());
  VectorClock &Ct = ThreadClocks[T.value()];

  switch (E.Kind) {
  case EventKind::Acquire:
    if (Ct.joinWith(LockClocks[E.lock().value()]))
      ++ClockEpochs[T.value()];
    return;

  case EventKind::Release:
    LockClocks[E.lock().value()] = Ct;
    incrementLocal(T);
    ++ClockEpochs[T.value()];
    return;

  case EventKind::Fork:
    if (ThreadClocks[E.targetThread().value()].joinWith(Ct))
      ++ClockEpochs[E.targetThread().value()];
    incrementLocal(T);
    ++ClockEpochs[T.value()];
    return;

  case EventKind::Join:
    if (Ct.joinWith(ThreadClocks[E.targetThread().value()]))
      ++ClockEpochs[T.value()];
    return;

  case EventKind::Read: {
    if (Capture) {
      Capture->record(Index, E.var(), T, E.Loc, /*IsWrite=*/false, Ct.get(T),
                      Ct, ClockEpochs[T.value()], nullptr);
      return;
    }
    VarState &S = varState(E.var());
    Epoch Mine(Ct.get(T), T);
    // Same-epoch shortcut: redundant read. The stored location still
    // advances so that later race reports name the most recent
    // representative of the epoch, matching the full-history detector.
    if (!S.ReadShared && S.Read == Mine) {
      S.ReadLoc = E.Loc;
      S.ReadIdx = Index;
      return;
    }
    // Write-read check.
    if (!S.Write.lessOrEqual(Ct) && S.Write.Thread != T)
      reportRace(S.WriteIdx, S.WriteLoc, Index, E.Loc, E.var());
    if (!S.ReadShared) {
      if (S.Read.isNone() || S.Read.lessOrEqual(Ct) || S.Read.Thread == T) {
        // Exclusive read: stay in epoch mode.
        S.Read = Mine;
        S.ReadLoc = E.Loc;
        S.ReadIdx = Index;
        return;
      }
      // Concurrent reads: promote to vector mode.
      ++ReadPromotions;
      S.ReadShared = true;
      S.ReadVC = VectorClock(NumThreads);
      S.ReadInfo.assign(NumThreads, ReadLocInfo());
      S.ReadVC.set(S.Read.Thread, S.Read.Clock);
      S.ReadInfo[S.Read.Thread.value()] = {S.ReadLoc, S.ReadIdx};
    }
    if (S.ReadInfo.size() <= T.value())
      S.ReadInfo.resize(NumThreads); // Threads admitted after promotion.
    S.ReadVC.set(T, Mine.Clock);
    S.ReadInfo[T.value()] = {E.Loc, Index};
    return;
  }

  case EventKind::Write: {
    if (Capture) {
      Capture->record(Index, E.var(), T, E.Loc, /*IsWrite=*/true, Ct.get(T),
                      Ct, ClockEpochs[T.value()], nullptr);
      return;
    }
    VarState &S = varState(E.var());
    Epoch Mine(Ct.get(T), T);
    if (S.Write == Mine) {
      // Same-epoch write: keep the freshest representative (see read).
      S.WriteLoc = E.Loc;
      S.WriteIdx = Index;
      return;
    }
    // Write-write check against the most recent write.
    if (!S.Write.lessOrEqual(Ct) && S.Write.Thread != T)
      reportRace(S.WriteIdx, S.WriteLoc, Index, E.Loc, E.var());
    // Read-write checks. The loop bound is the read vector's physical
    // size: components beyond it are implicitly 0 and cannot race.
    if (S.ReadShared) {
      for (uint32_t U = 0, E2 = S.ReadVC.size(); U < E2; ++U) {
        if (U == T.value())
          continue;
        ClockValue RU = S.ReadVC.get(ThreadId(U));
        if (RU != 0 && RU > Ct.get(ThreadId(U)))
          reportRace(S.ReadInfo[U].Idx, S.ReadInfo[U].Loc, Index, E.Loc,
                     E.var());
      }
    } else if (!S.Read.isNone() && !S.Read.lessOrEqual(Ct) &&
               S.Read.Thread != T) {
      reportRace(S.ReadIdx, S.ReadLoc, Index, E.Loc, E.var());
    }
    S.Write = Mine;
    S.WriteLoc = E.Loc;
    S.WriteIdx = Index;
    return;
  }
  }
}
