//===- hb/HbDetector.cpp ------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "hb/HbDetector.h"

#include "detect/ShardedAccessHistory.h"

using namespace rapid;

HbDetector::HbDetector(const Trace &T)
    : ThreadClocks(T.numThreads(), VectorClock(T.numThreads())),
      ClockEpochs(T.numThreads(), 1),
      LockClocks(T.numLocks(), VectorClock(T.numThreads())),
      History(T.numVars(), T.numThreads()) {
  // Every thread starts at local time 1 so that "clock 0" unambiguously
  // means "has not seen this thread at all".
  for (uint32_t I = 0; I < T.numThreads(); ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void HbDetector::incrementLocal(ThreadId T) {
  VectorClock &C = ThreadClocks[T.value()];
  C.set(T, C.get(T) + 1);
}

void HbDetector::ensureThread(ThreadId T) {
  if (T.value() < ThreadClocks.size())
    return;
  uint32_t Old = static_cast<uint32_t>(ThreadClocks.size());
  ThreadClocks.resize(T.value() + 1);
  ClockEpochs.resize(T.value() + 1, 1);
  for (uint32_t I = Old; I <= T.value(); ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void HbDetector::ensureLock(LockId L) {
  if (L.value() >= LockClocks.size())
    LockClocks.resize(L.value() + 1);
}

void HbDetector::processEvent(const Event &E, EventIdx Index) {
  ThreadId T = E.Thread;
  // Grow every table the event touches *before* taking references into
  // them (a resize mid-handler would dangle).
  ensureThread(T);
  if (E.Kind == EventKind::Fork || E.Kind == EventKind::Join)
    ensureThread(E.targetThread());
  else if (E.Kind == EventKind::Acquire || E.Kind == EventKind::Release)
    ensureLock(E.lock());
  VectorClock &Ct = ThreadClocks[T.value()];

  switch (E.Kind) {
  case EventKind::Acquire:
    if (Ct.joinWith(LockClocks[E.lock().value()]))
      ++ClockEpochs[T.value()];
    break;

  case EventKind::Release:
    LockClocks[E.lock().value()] = Ct;
    // Later events of T must not appear ordered before events that only
    // synchronized with this release.
    incrementLocal(T);
    ++ClockEpochs[T.value()];
    break;

  case EventKind::Fork: {
    ThreadId Child = E.targetThread();
    if (ThreadClocks[Child.value()].joinWith(Ct))
      ++ClockEpochs[Child.value()];
    incrementLocal(T);
    ++ClockEpochs[T.value()];
    break;
  }

  case EventKind::Join:
    if (Ct.joinWith(ThreadClocks[E.targetThread().value()]))
      ++ClockEpochs[T.value()];
    break;

  case EventKind::Read: {
    if (Capture) {
      Capture->record(Index, E.var(), T, E.Loc, /*IsWrite=*/false, Ct.get(T),
                      Ct, ClockEpochs[T.value()], nullptr);
      break;
    }
    Scratch.clear();
    History.checkRead(E.var(), T, Ct, E.Loc, Index, Scratch);
    for (const RaceInstance &R : Scratch)
      Report.addRace(R);
    History.recordRead(E.var(), T, Ct.get(T), E.Loc, Index);
    break;
  }

  case EventKind::Write: {
    if (Capture) {
      Capture->record(Index, E.var(), T, E.Loc, /*IsWrite=*/true, Ct.get(T),
                      Ct, ClockEpochs[T.value()], nullptr);
      break;
    }
    Scratch.clear();
    History.checkWrite(E.var(), T, Ct, E.Loc, Index, Scratch);
    for (const RaceInstance &R : Scratch)
      Report.addRace(R);
    History.recordWrite(E.var(), T, Ct.get(T), E.Loc, Index);
    break;
  }
  }
}
