//===- syncp/SyncPDetector.cpp ------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The clock here is deliberately *not* HB: it carries program order and
// fork/join edges only. A sync-preserving reordering may drop critical
// sections wholesale, so lock edges prune soundly for WCP but would lose
// races for SyncP; thread order is the largest order every correct
// reordering must respect. The AccessHistory over that clock yields the
// candidate pairs, and the SP-closure (SyncPIndex) is the exact decision
// procedure on each.
//
//===----------------------------------------------------------------------===//

#include "syncp/SyncPDetector.h"

#include "detect/ShardedAccessHistory.h"

using namespace rapid;

namespace {

/// Shard-phase engine: same candidate enumeration as the sequential walk
/// (an AccessHistory over shard-local variable ids), same closure filter
/// over the shared read-only index. Shards see their variables' accesses
/// in trace order, and the closure depends only on the index prefix below
/// the candidate pair — which the AccessLog commit watermark guarantees is
/// published — so the merged sharded report is bit-for-bit the sequential
/// one.
class SyncPShardReplayer : public ShardReplayer {
public:
  SyncPShardReplayer(const SyncPIndex &Index, SyncPTelemetry &Tel,
                     uint32_t NumLocalVars, uint32_t NumThreads)
      : Index(Index), Tel(Tel), History(NumLocalVars, NumThreads) {}

  void replay(const DeferredAccess &A, VarId Local, const VectorClock &Ce,
              const VectorClock *Hard, std::vector<RaceInstance> &Out) override {
    (void)Hard; // SyncP defers no hard clock; thread order is Ce itself.
    Scratch.clear();
    if (A.IsWrite)
      History.checkWrite(Local, A.Thread, Ce, A.Loc, A.Idx, Scratch);
    else
      History.checkRead(Local, A.Thread, Ce, A.Loc, A.Idx, Scratch);
    for (RaceInstance &R : Scratch)
      if (Index.isSyncPreservingRace(R.EarlierIdx, R.LaterIdx, &Tel, nullptr)) {
        R.Var = A.Var; // Report in parent-trace variable ids.
        Out.push_back(R);
      }
    if (A.IsWrite)
      History.recordWrite(Local, A.Thread, A.N, A.Loc, A.Idx);
    else
      History.recordRead(Local, A.Thread, A.N, A.Loc, A.Idx);
  }

private:
  const SyncPIndex &Index;
  SyncPTelemetry &Tel;
  AccessHistory History;
  std::vector<RaceInstance> Scratch;
};

} // namespace

std::unique_ptr<ShardReplayer>
SyncPShardContext::makeReplayer(uint32_t NumLocalVars,
                                uint32_t NumThreads) const {
  return std::make_unique<SyncPShardReplayer>(Index, Tel, NumLocalVars,
                                              NumThreads);
}

SyncPDetector::SyncPDetector(const Trace &T)
    : ThreadClocks(T.numThreads(), VectorClock(T.numThreads())),
      ClockEpochs(T.numThreads(), 1), History(T.numVars(), T.numThreads()) {
  // Local time 1 so "clock 0" unambiguously means "has not seen this
  // thread" (same convention as every other lane).
  for (uint32_t I = 0; I < T.numThreads(); ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void SyncPDetector::incrementLocal(ThreadId T) {
  VectorClock &C = ThreadClocks[T.value()];
  C.set(T, C.get(T) + 1);
}

void SyncPDetector::ensureThread(ThreadId T) {
  if (T.value() < ThreadClocks.size())
    return;
  uint32_t Old = static_cast<uint32_t>(ThreadClocks.size());
  ThreadClocks.resize(T.value() + 1);
  ClockEpochs.resize(T.value() + 1, 1);
  for (uint32_t I = Old; I <= T.value(); ++I)
    ThreadClocks[I].set(ThreadId(I), 1);
}

void SyncPDetector::processEvent(const Event &E, EventIdx Idx) {
  ThreadId T = E.Thread;
  // Grow tables the event touches before taking references (a resize
  // mid-handler would dangle).
  ensureThread(T);
  if (E.Kind == EventKind::Fork || E.Kind == EventKind::Join)
    ensureThread(E.targetThread());
  // The index grows its own lock/var tables on first touch.
  Index.append(E, Idx, /*Publish=*/Capture != nullptr);
  VectorClock &Ct = ThreadClocks[T.value()];

  switch (E.Kind) {
  case EventKind::Acquire:
  case EventKind::Release:
    // No clock effect: thread order carries no lock edges.
    break;

  case EventKind::Fork: {
    ThreadId Child = E.targetThread();
    if (ThreadClocks[Child.value()].joinWith(Ct))
      ++ClockEpochs[Child.value()];
    incrementLocal(T);
    ++ClockEpochs[T.value()];
    break;
  }

  case EventKind::Join:
    if (Ct.joinWith(ThreadClocks[E.targetThread().value()]))
      ++ClockEpochs[T.value()];
    break;

  case EventKind::Read:
  case EventKind::Write: {
    const bool IsWrite = E.Kind == EventKind::Write;
    if (Capture) {
      Capture->record(Idx, E.var(), T, E.Loc, IsWrite, Ct.get(T), Ct,
                      ClockEpochs[T.value()], nullptr);
      break;
    }
    Scratch.clear();
    if (IsWrite)
      History.checkWrite(E.var(), T, Ct, E.Loc, Idx, Scratch);
    else
      History.checkRead(E.var(), T, Ct, E.Loc, Idx, Scratch);
    for (const RaceInstance &R : Scratch)
      if (Index.isSyncPreservingRace(R.EarlierIdx, R.LaterIdx, &Tel, nullptr))
        Report.addRace(R);
    if (IsWrite)
      History.recordWrite(E.var(), T, Ct.get(T), E.Loc, Idx);
    else
      History.recordRead(E.var(), T, Ct.get(T), E.Loc, Idx);
    break;
  }
  }
}

void SyncPDetector::telemetry(std::vector<MetricSample> &Out) const {
  Out.push_back({"syncp.candidate_pairs", MetricKind::Counter,
                 Tel.CandidatePairs.load(std::memory_order_relaxed)});
  Out.push_back({"syncp.closure_iterations", MetricKind::Counter,
                 Tel.ClosureIterations.load(std::memory_order_relaxed)});
  Out.push_back({"syncp.ideal_peak", MetricKind::HighWater,
                 Tel.IdealPeak.load(std::memory_order_relaxed)});
}
