//===- syncp/SyncPIndex.cpp ---------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The SP-closure (POPL'21, §4): an *ideal* is a union of per-thread
// program-order prefixes. Starting from the prefixes strictly below the two
// candidate events, the closure saturates four rules:
//
//   (po)    the ideal is program-order downward closed (by construction:
//           inclusion walks the Prev chain down to the old frontier);
//   (read)  a read in the ideal pulls its trace-last writer — the trace-
//           order linearization then shows every read its original writer
//           (writes between them do not exist in the trace, and later
//           writes sort after);
//   (lock)  if two acquires of the same lock are both in the ideal, the
//           trace-earlier one's release must be too. Incrementally: keep
//           the maximal included acquire per lock; a newly included
//           acquire either displaces the maximum (pulling the displaced
//           one's release) or sits below it (pulling its own release).
//           Every included acquire except the per-lock maximum therefore
//           ends with its release included — the linearization has at most
//           one trailing open section per lock, and sections on one lock
//           appear in trace order: sync-preserving by construction;
//   (thread) a thread's first event pulls its fork; a join pulls the
//           child's last event (program order then closes the child).
//
// The pair is a race iff saturation never forces an event at or past
// either endpoint into its endpoint's thread prefix ("swallowing" the
// candidate). On success the ideal, linearized in trace order with the two
// candidates appended, is a correct reordering co-enabling the pair — the
// witness shape verify/Reordering.h's checkRaceWitness validates, which is
// how the soundness suite pins this file against the search-based oracle.
//
// Rule order does not matter: inclusion is monotone and each event is
// processed exactly once, so the fixpoint is unique — the incremental
// (lock) bookkeeping preserves it because "all processed acquires except
// the current per-lock maximum have their release pulled" is invariant
// under any processing order.
//
//===----------------------------------------------------------------------===//

#include "syncp/SyncPIndex.h"

#include <algorithm>
#include <cassert>

using namespace rapid;

void SyncPIndex::append(const Event &E, EventIdx Index, bool Publish) {
  assert(Index == Nodes.size() && "events must arrive dense, in trace order");
  const uint32_t T = E.Thread.value();
  ensure(LastOfThread, T);
  ensure(ForkOf, T);

  Node N;
  N.Thread = E.Thread;
  N.Kind = E.Kind;
  N.Prev = LastOfThread[T];
  N.Fork = ForkOf[T];

  switch (E.Kind) {
  case EventKind::Acquire:
    N.Target = E.lock().value();
    ensure(OpenAcq, N.Target);
    OpenAcq[N.Target] = Index;
    break;
  case EventKind::Release: {
    N.Target = E.lock().value();
    ensure(OpenAcq, N.Target);
    EventIdx Acq = OpenAcq[N.Target];
    // Backfill the acquire's matching-release edge *before* this node is
    // appended: every publish that can carry this release to a reader is
    // issued after the backfill (see PublishedStore::writerSlot).
    if (Acq != kNone) {
      Nodes.writerSlot(Acq).Aux = Index;
      OpenAcq[N.Target] = kNone;
    }
    break;
  }
  case EventKind::Read:
    N.Target = E.var().value();
    ensure(LastWrite, N.Target);
    N.Aux = LastWrite[N.Target];
    break;
  case EventKind::Write:
    N.Target = E.var().value();
    ensure(LastWrite, N.Target);
    LastWrite[N.Target] = Index;
    break;
  case EventKind::Fork: {
    const uint32_t Child = E.targetThread().value();
    N.Target = Child;
    ensure(ForkOf, Child);
    ForkOf[Child] = Index;
    break;
  }
  case EventKind::Join: {
    const uint32_t Child = E.targetThread().value();
    N.Target = Child;
    ensure(LastOfThread, Child);
    N.Aux = LastOfThread[Child];
    break;
  }
  }

  LastOfThread[T] = Index;
  Nodes.append(N);
  if (Publish)
    Nodes.publish(Index + 1);
}

namespace {

/// One closure run's working set. Thread/lock tables grow to the ids the
/// walk actually meets, so mid-stream declarations cost nothing here.
struct ClosureState {
  static constexpr EventIdx kNone = SyncPIndex::kNone;

  std::vector<EventIdx> Frontier; ///< Per thread: highest included event.
  std::vector<EventIdx> MaxAcq;   ///< Per lock: maximal included acquire.
  std::vector<EventIdx> Pending;  ///< Included, closure rules not yet run.
  std::vector<EventIdx> Included; ///< Every ideal member, for the witness.
  EventIdx E1, E2;                ///< The candidates (the ideal's ceiling).
  ThreadId T1, T2;
  bool Swallowed = false; ///< A rule demanded an event >= its endpoint.

  EventIdx frontier(uint32_t T) const {
    return T < Frontier.size() ? Frontier[T] : kNone;
  }
};

} // namespace

bool SyncPIndex::isSyncPreservingRace(EventIdx E1, EventIdx E2,
                                      SyncPTelemetry *Tel,
                                      std::vector<EventIdx> *WitnessOut) const {
  assert(E1 < E2 && "candidates must arrive in trace order");
  ClosureState S;
  S.E1 = E1;
  S.E2 = E2;
  S.T1 = node(E1).Thread;
  S.T2 = node(E2).Thread;

  // Includes X and, transitively via the Prev chain, its whole program-
  // order prefix above the thread's current frontier. Fails the closure
  // when X reaches an endpoint's own suffix — the reordering would have to
  // *execute* the candidate, which is exactly what co-enabledness forbids.
  auto include = [this, &S](EventIdx X) {
    const uint32_t T = node(X).Thread.value();
    const EventIdx Old = S.frontier(T);
    if (Old != ClosureState::kNone && Old >= X)
      return;
    if ((node(X).Thread == S.T1 && X >= S.E1) ||
        (node(X).Thread == S.T2 && X >= S.E2)) {
      S.Swallowed = true;
      return;
    }
    if (T >= S.Frontier.size())
      S.Frontier.resize(T + 1, ClosureState::kNone);
    S.Frontier[T] = X;
    for (EventIdx C = X; C != Old; C = node(C).Prev) {
      S.Pending.push_back(C);
      if (node(C).Prev == ClosureState::kNone)
        break; // Thread's first event; Old is kNone.
    }
  };

  auto seed = [this, &include](EventIdx E) {
    const Node &N = node(E);
    if (N.Prev != kNone)
      include(N.Prev);
    else if (N.Fork != kNone)
      include(N.Fork); // First event: the thread must at least be started.
  };
  seed(E1);
  seed(E2);

  while (!S.Pending.empty() && !S.Swallowed) {
    const EventIdx X = S.Pending.back();
    S.Pending.pop_back();
    S.Included.push_back(X);
    const Node &N = node(X);
    if (N.Prev == kNone && N.Fork != kNone)
      include(N.Fork);
    switch (N.Kind) {
    case EventKind::Read:
    case EventKind::Join:
      if (N.Aux != kNone)
        include(N.Aux);
      break;
    case EventKind::Acquire: {
      if (N.Target >= S.MaxAcq.size())
        S.MaxAcq.resize(N.Target + 1, ClosureState::kNone);
      EventIdx &Max = S.MaxAcq[N.Target];
      EventIdx NeedsRelease = kNone;
      if (Max == ClosureState::kNone) {
        Max = X;
      } else if (X > Max) {
        NeedsRelease = Max;
        Max = X;
      } else {
        NeedsRelease = X;
      }
      if (NeedsRelease != kNone) {
        // A displaced acquire sits trace-before another included acquire
        // on the same lock, so its section closed before that acquire:
        // the release exists and was backfilled before anything after it
        // was published.
        const EventIdx Rel = node(NeedsRelease).Aux;
        assert(Rel != kNone && "non-maximal section must be closed");
        if (Rel != kNone)
          include(Rel);
      }
      break;
    }
    default:
      break;
    }
  }

  if (Tel) {
    Tel->CandidatePairs.fetch_add(1, std::memory_order_relaxed);
    Tel->ClosureIterations.fetch_add(S.Included.size(),
                                     std::memory_order_relaxed);
    Tel->noteIdeal(S.Included.size());
  }
  if (S.Swallowed)
    return false;
  if (WitnessOut) {
    std::sort(S.Included.begin(), S.Included.end());
    S.Included.push_back(E1);
    S.Included.push_back(E2);
    *WitnessOut = std::move(S.Included);
  }
  return true;
}
