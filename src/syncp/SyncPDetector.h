//===- syncp/SyncPDetector.h - Sync-preserving race detector ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming sync-preserving race prediction (Mathur–Pavlogiannis–
/// Viswanathan, POPL'21 — PAPERS.md): a conflicting pair races iff some
/// correct reordering co-enables it while keeping every pair of surviving
/// same-lock critical sections in trace order. SyncP predicts strictly
/// more races than WCP on real traces (reorderings may *drop* sections
/// outright, which no partial-order lane can express) while every report
/// stays sound — the closure that accepts a pair also constructs the
/// witness reordering, and the soundness suite replays those witnesses
/// through verify/Reordering's checker.
///
/// The lane decomposes like every other detector here:
///
///   clock pass   a thread-order clock (program order + fork/join only —
///                no lock edges) prunes pairs that no reordering could
///                co-enable; candidates are the per-(thread, kind)
///                last-access records AccessHistory keeps, so the
///                enumeration policy (and its last-access-only caveat)
///                matches the HB/WCP lanes exactly;
///   check        each surviving candidate runs the SP-closure over the
///                SyncPIndex, O(prefix) per pair;
///   shard mode   the checks partition by variable: capture defers them
///                into the AccessLog with the thread-order clock as C_e,
///                and shard drains replay them through a SyncPShardReplayer
///                that filters the same candidates through the same index
///                (reached via Detector::shardContext()). Reports are
///                bit-for-bit identical to the sequential walk for any
///                shard count, pinned by the differential fuzzers.
///
/// All state grows on first touch (implicit-zero VectorClock extension,
/// growable index tables), so threads/vars/locks declared mid-stream cost
/// O(1) and LaneReport::Restarts stays structurally 0.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SYNCP_SYNCPDETECTOR_H
#define RAPID_SYNCP_SYNCPDETECTOR_H

#include "detect/AccessHistory.h"
#include "detect/Detector.h"
#include "syncp/SyncPIndex.h"
#include "vc/VectorClock.h"

#include <vector>

namespace rapid {

/// The detector's ShardContext: hands shard drains a replayer over the
/// index and telemetry the clock pass owns. Read-only over the index
/// (synchronized through the AccessLog commit watermark — every access
/// record is appended after its event's node).
class SyncPShardContext : public ShardContext {
public:
  SyncPShardContext(const SyncPIndex &Index, SyncPTelemetry &Tel)
      : Index(Index), Tel(Tel) {}

  std::unique_ptr<ShardReplayer>
  makeReplayer(uint32_t NumLocalVars, uint32_t NumThreads) const override;

private:
  const SyncPIndex &Index;
  SyncPTelemetry &Tel;
};

/// Streaming sync-preserving race detector.
class SyncPDetector : public Detector {
public:
  explicit SyncPDetector(const Trace &T);

  void processEvent(const Event &E, EventIdx Index) override;
  std::string name() const override { return "SyncP"; }

  /// SyncP's candidate checks partition by variable; the closure reaches
  /// lane-wide state through shardContext(), so capture mode defers only
  /// the per-variable candidate enumeration into \p Log.
  bool beginCapture(AccessLog &Log) override {
    Capture = &Log;
    return true;
  }
  ShardReplay shardReplay() const override { return ShardReplay::SyncPClosure; }
  const ShardContext *shardContext() const override { return &Ctx; }

  void telemetry(std::vector<MetricSample> &Out) const override;

  /// Testing hooks: the closure index (soundness tests re-derive witness
  /// schedules for reported races) and the thread-order clock.
  const SyncPIndex &index() const { return Index; }
  const VectorClock &threadClock(ThreadId T) const {
    return ThreadClocks[T.value()];
  }

private:
  void incrementLocal(ThreadId T);
  /// Admits threads [size, T]: local time 1, as at construction.
  void ensureThread(ThreadId T);

  /// Thread-order clocks C_t: program order plus fork/join edges only.
  /// Lock edges are deliberately absent — a reordering may drop or
  /// reorder whole critical sections, so only these "hard" edges are
  /// sound for pruning candidate pairs.
  std::vector<VectorClock> ThreadClocks;
  std::vector<uint64_t> ClockEpochs; ///< Change epochs (capture dedup).
  SyncPIndex Index;
  SyncPTelemetry Tel;
  SyncPShardContext Ctx{Index, Tel};
  AccessHistory History; ///< Sequential-mode candidate records.
  std::vector<RaceInstance> Scratch;
  AccessLog *Capture = nullptr; ///< Non-null in capture mode.
};

} // namespace rapid

#endif // RAPID_SYNCP_SYNCPDETECTOR_H
