//===- syncp/SyncPIndex.h - Event index for SP-closure ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-event index the sync-preserving closure walks (after Mathur,
/// Pavlogiannis, Viswanathan, "Optimal Prediction of Synchronization-
/// Preserving Races", POPL'21 — PAPERS.md). A *sync-preserving* correct
/// reordering may drop critical sections entirely, but any two sections on
/// the same lock that both survive must keep their trace order; a pair of
/// conflicting events is a sync-preserving race iff some such reordering
/// co-enables both. The POPL'21 insight is that this is decidable per pair
/// by a backward *closure* over trace prefixes (the "ideal"), in time
/// linear in the prefix — no enumeration of reorderings.
///
/// The index stores, per event, exactly the edges the closure pulls
/// through:
///
///   Prev   the event's program-order predecessor (per-thread chain);
///   Fork   the fork event that started the thread (kNone for roots);
///   Aux    kind-specific: a read's trace-last writer, a join's last child
///          event, an acquire's matching release (backfilled when the
///          release arrives — see writerSlot's visibility contract).
///
/// Nodes live in a PublishedStore indexed by event index: a single writer
/// (the detector's clock pass) appends in trace order while shard drains
/// read published prefixes in place, which is what lets the var-sharded
/// streamed mode run closures concurrently with ingestion. All writer-side
/// tables grow on first touch, so threads/locks/vars declared mid-stream
/// are admitted in O(1) — no restarts, same as every other lane.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SYNCP_SYNCPINDEX_H
#define RAPID_SYNCP_SYNCPINDEX_H

#include "support/PublishedStore.h"
#include "trace/Trace.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace rapid {

/// Telemetry shared by the sequential check path and every shard replayer
/// of one detector instance. Relaxed atomics: increments happen on shard
/// drains while Detector::telemetry() reads mid-stream under the lane
/// snapshot lock — counts are monotone and exact once drains quiesce.
struct SyncPTelemetry {
  std::atomic<uint64_t> CandidatePairs{0};   ///< Closures attempted.
  std::atomic<uint64_t> ClosureIterations{0};///< Events pulled into ideals.
  std::atomic<uint64_t> IdealPeak{0};        ///< Largest single ideal.

  void noteIdeal(uint64_t Size) {
    uint64_t Cur = IdealPeak.load(std::memory_order_relaxed);
    while (Size > Cur && !IdealPeak.compare_exchange_weak(
                             Cur, Size, std::memory_order_relaxed)) {
    }
  }
};

/// Append-only event index + the SP-closure itself.
class SyncPIndex {
public:
  static constexpr EventIdx kNone = UINT64_MAX;

  /// One event's closure edges. Immutable once its successor on the same
  /// lock chain exists; Aux of an acquire is backfilled at its release
  /// (before any event that could make a closure read it is appended).
  struct Node {
    ThreadId Thread;
    EventKind Kind = EventKind::Read;
    uint32_t Target = UINT32_MAX; ///< Var, lock, or target-thread id.
    EventIdx Prev = kNone;        ///< Program-order predecessor.
    EventIdx Fork = kNone;        ///< Fork that started this thread.
    EventIdx Aux = kNone;         ///< Read: last writer; Acquire: matching
                                  ///< release; Join: child's last event.
  };

  /// Appends the \p Index-th event (indices must be dense from 0, i.e.
  /// trace order). When \p Publish is set the node watermark is advanced
  /// per event for concurrent shard drains; single-threaded modes skip the
  /// fence and rely on program order.
  void append(const Event &E, EventIdx Index, bool Publish);

  /// In-place node access. Readers must have synchronized with the append
  /// of \p I (published watermark, or the access-log commit that followed
  /// it — every access record is appended after its node).
  const Node &node(EventIdx I) const { return Nodes[I]; }

  uint64_t size() const { return Nodes.size(); }

  /// Decides whether the conflicting pair (\p E1, \p E2), E1 < E2, is a
  /// sync-preserving race: computes the SP-closure of the pair's program-
  /// order prefixes and succeeds iff no rule forces an event at or past
  /// either endpoint into the ideal. On success, \p WitnessOut (if
  /// non-null) receives a full witness schedule — the ideal in trace
  /// order, then E1, E2 — valid under verify/Reordering's
  /// checkRaceWitness. \p Tel (if non-null) accumulates closure telemetry.
  /// Cost: O(|ideal|) ⊆ O(E2) per call.
  bool isSyncPreservingRace(EventIdx E1, EventIdx E2, SyncPTelemetry *Tel,
                            std::vector<EventIdx> *WitnessOut) const;

private:
  static void ensure(std::vector<EventIdx> &V, uint32_t I) {
    if (I >= V.size())
      V.resize(I + 1, kNone);
  }

  PublishedStore<Node> Nodes;
  // Writer-side chain heads; never read by closures (closures reach the
  // same facts through node edges, which is what makes them shard-safe).
  std::vector<EventIdx> LastOfThread; ///< Per thread: last event.
  std::vector<EventIdx> ForkOf;       ///< Per thread: its fork event.
  std::vector<EventIdx> OpenAcq;      ///< Per lock: open acquire.
  std::vector<EventIdx> LastWrite;    ///< Per var: last write.
};

} // namespace rapid

#endif // RAPID_SYNCP_SYNCPINDEX_H
