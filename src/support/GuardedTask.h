//===- support/GuardedTask.h - Exception-to-slot task guard -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one exception-containment idiom of the analysis engines: tasks on
/// the ThreadPool (and the session's consumer threads) must not let
/// exceptions escape — they report failures through their own result
/// slots instead, so one exploding detector cannot sink a run. This
/// helper is that contract in one place, shared by pipeline/ and api/.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_GUARDEDTASK_H
#define RAPID_SUPPORT_GUARDEDTASK_H

#include <string>

namespace rapid {

/// Runs \p Body, converting any escaping exception into \p Error (the
/// per-task failure slot); returns true on success. \p Error is left
/// untouched on success.
template <typename Fn> bool guardedTask(std::string &Error, Fn &&Body) {
  try {
    Body();
    return true;
  } catch (const std::exception &E) {
    Error = E.what();
  } catch (...) {
    Error = "unknown exception";
  }
  return false;
}

} // namespace rapid

#endif // RAPID_SUPPORT_GUARDEDTASK_H
