//===- support/PublishedStore.h - Watermark-published SPMC store *- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-writer, multi-reader append-only store published by an atomic
/// watermark — the session streaming engine's replacement for the
/// mutex-guarded prefix + per-consumer batch copies.
///
/// The idea is the degenerate (retry-free) case of a seqlock: data below a
/// monotone watermark is immutable, so readers never need a retry loop.
/// The writer appends into geometrically growing chunks reached through a
/// fixed directory of atomic pointers — growth allocates a new chunk and
/// never moves an element, so a reference obtained below the watermark
/// stays valid for the store's lifetime. Publication is one release-or-
/// stronger store of the watermark; consumption is one acquire load plus
/// in-place reads. Zero copies, zero locks on the hot path.
///
/// Visibility argument (what makes the relaxed chunk-pointer loads sound):
/// every element write and every chunk-directory store by the writer is
/// sequenced before the watermark store that publishes it; a reader's
/// acquire load of the watermark therefore happens-after all of them, and
/// any subsequent read of a published slot — including the directory load
/// that locates it — is an ordinary read of memory written happens-before.
///
/// Blocking readers park on an eventcount (WaitM/WakeCV/Sleepers) with the
/// classic Dekker handshake: the parker registers in Sleepers and then
/// re-checks the watermark with a seq_cst load; the writer stores the
/// watermark seq_cst and then loads Sleepers seq_cst, taking the wake
/// mutex only when someone is actually parked. The seq_cst total order
/// guarantees at least one side sees the other, so wakeups cannot be lost
/// while the unparked fast path stays lock-free. External stop conditions
/// (ingestion done, session teardown) follow the same protocol: store the
/// flag with seq_cst, then call wakeAll().
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_PUBLISHEDSTORE_H
#define RAPID_SUPPORT_PUBLISHEDSTORE_H

#include "obs/Metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rapid {

/// Append-only SPMC storage over stable chunks, published by watermark.
/// Exactly one thread may call append()/publish() ("the writer"); any
/// number of threads may call published()/operator[]/forRange()/
/// waitPublished(). Indices below the last published watermark address
/// immutable, fully visible elements.
template <typename T> class PublishedStore {
  /// Chunk 0 holds 2^BaseLog2 elements; chunk k holds twice chunk k-1.
  /// 4096 events ≈ one stream batch, so the directory stays tiny while
  /// small sessions allocate one page-ish chunk.
  static constexpr unsigned BaseLog2 = 12;
  /// 48 geometric chunks cover ~2^60 elements — never the limit.
  static constexpr unsigned MaxChunks = 48;

public:
  PublishedStore() = default;
  ~PublishedStore() {
    for (std::atomic<T *> &C : Chunks)
      delete[] C.load(std::memory_order_relaxed);
  }

  PublishedStore(const PublishedStore &) = delete;
  PublishedStore &operator=(const PublishedStore &) = delete;

  // ---- Writer side ----------------------------------------------------------

  /// Appends one element past the current end. Not yet visible to
  /// readers; call publish() to move the watermark over it.
  void append(T V) {
    const uint64_t I = Count;
    const unsigned C = chunkOf(I);
    T *Ch = Chunks[C].load(std::memory_order_relaxed);
    if (!Ch) {
      Ch = new T[chunkCapacity(C)];
      // Plain visibility suffices: readers only reach this pointer
      // through a watermark acquire that the next publish() pairs with.
      Chunks[C].store(Ch, std::memory_order_relaxed);
    }
    Ch[I - chunkStart(C)] = std::move(V);
    Count = I + 1;
  }

  /// Elements appended so far — the writer's private count, ahead of (or
  /// equal to) the watermark. Only meaningful on the writer thread or
  /// after external synchronization with it.
  uint64_t size() const { return Count; }

  /// Writer-side mutable access to an appended slot — the one sanctioned
  /// relaxation of "published elements are immutable". The caller must
  /// guarantee that readers consult the mutated field only after
  /// synchronizing with a publish (of this or any fellow-traveler store)
  /// that the writer issued *after* the mutation; then the mutation is an
  /// ordinary write made visible by that release/acquire pair. Used by the
  /// SyncP index to backfill an acquire's matching-release edge: closures
  /// only read the edge once an event past the release is published.
  T &writerSlot(uint64_t I) {
    const unsigned C = chunkOf(I);
    return Chunks[C].load(std::memory_order_relaxed)[I - chunkStart(C)];
  }

  /// Publishes the prefix [0, UpTo): one watermark store, then a wake of
  /// parked readers if any. \p UpTo must be ≤ size() and monotone across
  /// calls. seq_cst (not just release) for the Dekker pairing with
  /// waitPublished's Sleepers registration.
  void publish(uint64_t UpTo) {
    Watermark.store(UpTo, std::memory_order_seq_cst);
    wakeAll();
  }

  /// Wakes every parked reader without moving the watermark — for
  /// external stop flags (which the caller must store with seq_cst
  /// *before* calling this, mirroring publish()'s watermark store).
  void wakeAll() {
    if (Sleepers.load(std::memory_order_seq_cst) == 0)
      return;
    std::lock_guard<std::mutex> G(WaitM);
    WakeCV.notify_all();
  }

  // ---- Reader side ----------------------------------------------------------

  /// The published watermark: indices below it are immutable and safe to
  /// read in place from any thread.
  uint64_t published() const {
    return Watermark.load(std::memory_order_acquire);
  }

  /// In-place element access. \p I must be below a watermark value this
  /// thread has observed (or otherwise synchronized with).
  const T &operator[](uint64_t I) const {
    const unsigned C = chunkOf(I);
    return Chunks[C].load(std::memory_order_relaxed)[I - chunkStart(C)];
  }

  /// Applies Fn(element, index) over [From, To), resolving each chunk
  /// pointer once per segment. Same precondition as operator[].
  template <typename Fn> void forRange(uint64_t From, uint64_t To, Fn &&F) const {
    while (From != To) {
      const unsigned C = chunkOf(From);
      const uint64_t Start = chunkStart(C);
      const uint64_t End = std::min(To, Start + chunkCapacity(C));
      const T *Ch = Chunks[C].load(std::memory_order_relaxed);
      for (uint64_t I = From; I != End; ++I)
        F(Ch[I - Start], I);
      From = End;
    }
  }

  /// Blocks until the watermark exceeds \p Current or \p Stop() turns
  /// true; returns the watermark seen last (== Current only if stopped).
  /// A short spin covers the common producer-just-behind case; the park
  /// itself is charged to \p ParkNs (null handle: uncharged).
  template <typename StopPred>
  uint64_t waitPublished(uint64_t Current, Counter ParkNs, StopPred Stop) {
    uint64_t W = Watermark.load(std::memory_order_seq_cst);
    if (W > Current || Stop())
      return W;
    for (int Spin = 0; Spin != 64; ++Spin) {
      W = Watermark.load(std::memory_order_seq_cst);
      if (W > Current || Stop())
        return W;
    }
    {
      ScopedNs Park(ParkNs);
      std::unique_lock<std::mutex> Lk(WaitM);
      Sleepers.fetch_add(1, std::memory_order_seq_cst);
      WakeCV.wait(Lk, [&] {
        W = Watermark.load(std::memory_order_seq_cst);
        return W > Current || Stop();
      });
      Sleepers.fetch_sub(1, std::memory_order_seq_cst);
    }
    return W;
  }

private:
  /// Directory math: index I lives in chunk floor(log2(I/2^BaseLog2 + 1)).
  static unsigned chunkOf(uint64_t I) {
    const uint64_t Q = (I >> BaseLog2) + 1;
    return 63 - static_cast<unsigned>(__builtin_clzll(Q));
  }
  static uint64_t chunkCapacity(unsigned C) {
    return uint64_t{1} << (BaseLog2 + C);
  }
  static uint64_t chunkStart(unsigned C) {
    return ((uint64_t{1} << C) - 1) << BaseLog2;
  }

  std::array<std::atomic<T *>, MaxChunks> Chunks{};
  uint64_t Count = 0; ///< Writer-private appended count.
  std::atomic<uint64_t> Watermark{0};

  // Eventcount parking (see file comment for the lost-wakeup argument).
  std::mutex WaitM;
  std::condition_variable WakeCV;
  std::atomic<uint32_t> Sleepers{0};
};

} // namespace rapid

#endif // RAPID_SUPPORT_PUBLISHEDSTORE_H
