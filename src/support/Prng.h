//===- support/Prng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64 seeded xoshiro256**) used
/// by the trace generators and the simulated scheduler. We avoid <random>
/// engines because their streams are not guaranteed identical across
/// standard library implementations, and every experiment in this repo must
/// be reproducible bit-for-bit from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_PRNG_H
#define RAPID_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace rapid {

/// Deterministic 64-bit PRNG with a tiny state.
class Prng {
public:
  explicit Prng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be nonzero. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "zero denominator");
    return nextBelow(Den) < Num;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State[4];
};

} // namespace rapid

#endif // RAPID_SUPPORT_PRNG_H
