//===- support/TimerWheel.h - Single-level hashed timer wheel ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// A deliberately small timer wheel for the serving layer's housekeeping
// timers (resume-grace expiry, idle-session eviction, finished-roster GC).
// These timers are coarse — tens of milliseconds to minutes — and are all
// driven from one thread (the daemon's IO loop), so the wheel is
// single-threaded by contract: no locks, no atomics, callers serialize.
//
// Design: a fixed ring of S slots, each TickMs wide. A timer due D ticks
// from now lands in slot (Cursor + D) % S with Rounds = D / S; advance()
// walks the slots the elapsed time covers and fires entries whose Rounds
// has reached zero, decrementing the rest. Everything is O(1) amortized
// per timer, and — unlike an ordered map keyed by deadline — scheduling
// and cancelling never allocate after the slot vectors warm up.
//
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_TIMERWHEEL_H
#define RAPID_SUPPORT_TIMERWHEEL_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace rapid {

class TimerWheel {
public:
  using TimerId = uint64_t;

  explicit TimerWheel(uint64_t TickMs = 50, size_t Slots = 128)
      : TickMs(TickMs ? TickMs : 1), Ring(Slots ? Slots : 1) {}

  /// Schedules \p Fn to fire once, \p DelayMs from the wheel's current
  /// time (rounded up to the next tick so a timer never fires early).
  /// Returns an id usable with cancel().
  TimerId schedule(uint64_t DelayMs, std::function<void()> Fn) {
    // At least one tick out: slot Cursor+0 was already drained this tick,
    // so a zero-delay timer would otherwise wait a full rotation.
    const uint64_t Ticks =
        DelayMs == 0 ? 1 : (DelayMs + TickMs - 1) / TickMs;
    const TimerId Id = NextId++;
    Entry E;
    E.Id = Id;
    // The target slot is first *visited* Ticks % S steps from now (S steps
    // when Ticks is an exact multiple), so the extra full rotations are
    // (Ticks - 1) / S — plain Ticks / S would oversleep a whole rotation
    // whenever the deadline lands exactly on the ring size.
    E.Rounds = (Ticks - 1) / Ring.size();
    E.Fn = std::move(Fn);
    const size_t Slot = (Cursor + Ticks) % Ring.size();
    Ring[Slot].push_back(std::move(E));
    Where[Id] = Slot;
    return Id;
  }

  /// Drops a pending timer. Returns false if it already fired (or never
  /// existed) — cancelling a fired timer is not an error, callers race
  /// against expiry by design.
  bool cancel(TimerId Id) {
    auto It = Where.find(Id);
    if (It == Where.end())
      return false;
    std::vector<Entry> &Slot = Ring[It->second];
    for (size_t I = 0; I != Slot.size(); ++I) {
      if (Slot[I].Id == Id) {
        Slot[I] = std::move(Slot.back());
        Slot.pop_back();
        break;
      }
    }
    Where.erase(It);
    return true;
  }

  /// Advances the wheel by \p ElapsedMs of wall time, firing every timer
  /// that came due. Fractional ticks accumulate, so irregular poll
  /// cadences do not stretch deadlines. Callbacks run inline; they may
  /// schedule() new timers but must not advance() reentrantly.
  void advance(uint64_t ElapsedMs) {
    CarryMs += ElapsedMs;
    uint64_t Ticks = CarryMs / TickMs;
    CarryMs -= Ticks * TickMs;
    while (Ticks-- > 0)
      stepOne();
  }

  size_t pending() const { return Where.size(); }
  uint64_t tickMs() const { return TickMs; }

private:
  struct Entry {
    TimerId Id = 0;
    uint64_t Rounds = 0;
    std::function<void()> Fn;
  };

  void stepOne() {
    Cursor = (Cursor + 1) % Ring.size();
    std::vector<Entry> &Slot = Ring[Cursor];
    Due.clear();
    for (size_t I = 0; I != Slot.size();) {
      if (Slot[I].Rounds == 0) {
        Where.erase(Slot[I].Id);
        Due.push_back(std::move(Slot[I]));
        Slot[I] = std::move(Slot.back());
        Slot.pop_back();
      } else {
        --Slot[I].Rounds;
        ++I;
      }
    }
    // Fire after the slot walk: a callback may schedule() into any slot,
    // including the one being drained.
    for (Entry &E : Due)
      E.Fn();
  }

  uint64_t TickMs;
  uint64_t CarryMs = 0;
  size_t Cursor = 0;
  TimerId NextId = 1;
  std::vector<std::vector<Entry>> Ring;
  std::unordered_map<TimerId, size_t> Where;
  std::vector<Entry> Due;
};

} // namespace rapid

#endif // RAPID_SUPPORT_TIMERWHEEL_H
