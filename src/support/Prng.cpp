//===- support/Prng.cpp ----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"

using namespace rapid;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Prng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Prng::next() {
  // xoshiro256** step.
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Prng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling: retry while the draw falls in the biased tail.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Draw = next();
    if (Draw >= Threshold)
      return Draw % Bound;
  }
}
