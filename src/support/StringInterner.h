//===- support/StringInterner.h - Name <-> dense id mapping ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bidirectional mapping between external names ("T0", "l1", "x") and the
/// dense ids used internally. One interner instance exists per id namespace
/// (threads, locks, variables, locations) inside a Trace.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_STRINGINTERNER_H
#define RAPID_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rapid {

/// Interns strings, handing out dense uint32_t ids in insertion order.
class StringInterner {
public:
  /// Returns the id for \p Name, creating one if it is new.
  uint32_t intern(std::string_view Name);

  /// Returns the id for \p Name or UINT32_MAX if it was never interned.
  uint32_t lookup(std::string_view Name) const;

  /// Returns the name for \p Id. \p Id must be a valid interned id.
  const std::string &name(uint32_t Id) const {
    assert(Id < Names.size() && "interner id out of range");
    return Names[Id];
  }

  uint32_t size() const { return static_cast<uint32_t>(Names.size()); }
  bool empty() const { return Names.empty(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> IdByName;
};

} // namespace rapid

#endif // RAPID_SUPPORT_STRINGINTERNER_H
