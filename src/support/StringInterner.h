//===- support/StringInterner.h - Name <-> dense id mapping ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bidirectional mapping between external names ("T0", "l1", "x") and the
/// dense ids used internally. One interner instance exists per id namespace
/// (threads, locks, variables, locations) inside a Trace.
///
/// The hot path is intern() on an already-known name — text ingestion
/// calls it for every field of every line, so the index is built for that
/// case: an open-addressed probe table of ids (no nodes, no pointers, no
/// temporary std::string per lookup) over names stored in a deque (stable
/// addresses). A hit is one hash, typically one probe, one comparison —
/// and because slots hold ids rather than views, copies are plain member
/// copies.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_STRINGINTERNER_H
#define RAPID_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace rapid {

/// Interns strings, handing out dense uint32_t ids in insertion order.
class StringInterner {
public:
  /// Returns the id for \p Name, creating one if it is new.
  uint32_t intern(std::string_view Name);

  /// Returns the id for \p Name or UINT32_MAX if it was never interned.
  uint32_t lookup(std::string_view Name) const;

  /// Returns the name for \p Id. \p Id must be a valid interned id.
  const std::string &name(uint32_t Id) const {
    assert(Id < Names.size() && "interner id out of range");
    return Names[Id];
  }

  uint32_t size() const { return static_cast<uint32_t>(Names.size()); }
  bool empty() const { return Names.empty(); }

private:
  static uint64_t hashName(std::string_view Name);
  /// Probes for \p Name (hash \p H): returns the slot holding its id+1,
  /// or the empty slot where it would be inserted.
  size_t probe(std::string_view Name, uint64_t H) const;
  void grow(); ///< Doubles the slot table and re-seats every id.

  std::deque<std::string> Names; ///< Stable addresses; id -> name.
  /// Open-addressed index: Slots[i] is id+1, 0 = empty. Power-of-2 sized,
  /// load factor <= 3/4.
  std::vector<uint32_t> Slots;
};

} // namespace rapid

#endif // RAPID_SUPPORT_STRINGINTERNER_H
