//===- support/TablePrinter.h - Aligned console tables ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table printer used by the Table 1 / Figure 7
/// reproduction harnesses. Collects rows of strings, computes column widths
/// and renders with a header rule, similar to the layout of the paper's
/// tables.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_TABLEPRINTER_H
#define RAPID_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace rapid {

/// Accumulates a rectangular table of strings and prints it aligned.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row. Short rows are padded with empty cells.
  void addRow(std::vector<std::string> Row);

  /// Renders the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// Convenience: number formatting helpers shared by the bench harnesses.
  static std::string formatCount(uint64_t N);
  static std::string formatPercent(double P);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace rapid

#endif // RAPID_SUPPORT_TABLEPRINTER_H
