//===- support/Status.h - Structured error reporting ------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error type shared by the analysis API and the IO layer.
/// Replaces the stringly `std::string Error` slots that used to travel
/// through RunResult/PipelineResult: a Status carries a machine-checkable
/// code (so callers can branch on *what* failed) plus the human-readable
/// message (so nothing the old fields said is lost). Statuses never throw;
/// layers that contain exceptions convert them into AnalysisError.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_STATUS_H
#define RAPID_SUPPORT_STATUS_H

#include <cstdint>
#include <string>
#include <utility>

namespace rapid {

/// What went wrong, coarsely — the axis callers branch on.
enum class StatusCode : uint8_t {
  Ok = 0,
  InvalidConfig,   ///< AnalysisConfig::validate rejected the request.
  InvalidState,    ///< Call out of session order (feed after finish, ...).
  IoError,         ///< Open/read/write failure (message carries errno text).
  ParseError,      ///< Malformed trace bytes (message carries line/offset).
  ValidationError, ///< Trace loaded but is not well-formed (§2.1).
  AnalysisError,   ///< A detector or lane task failed mid-analysis.
};

/// Stable lowercase-kebab name for \p C ("invalid-config", ...), used in
/// rendered messages and machine-readable CLI output.
inline const char *statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidConfig:
    return "invalid-config";
  case StatusCode::InvalidState:
    return "invalid-state";
  case StatusCode::IoError:
    return "io-error";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::ValidationError:
    return "validation-error";
  case StatusCode::AnalysisError:
    return "analysis-error";
  }
  return "unknown";
}

/// A status code plus its human-readable message. Default-constructed is
/// success; a failed Status always has a non-empty Message.
struct Status {
  StatusCode Code = StatusCode::Ok;
  std::string Message;

  Status() = default;
  Status(StatusCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  bool ok() const { return Code == StatusCode::Ok; }

  static Status success() { return Status(); }

  /// "ok", or "<code-name>: <message>" for failures.
  std::string str() const {
    if (ok())
      return "ok";
    return std::string(statusCodeName(Code)) + ": " + Message;
  }
};

} // namespace rapid

#endif // RAPID_SUPPORT_STATUS_H
