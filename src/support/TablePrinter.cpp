//===- support/TablePrinter.cpp ---------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cinttypes>

using namespace rapid;

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void TablePrinter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      std::fprintf(Out, "%s%-*s", I == 0 ? "" : "  ",
                   static_cast<int>(Widths[I]), Row[I].c_str());
    std::fprintf(Out, "\n");
  };

  printRow(Header);
  size_t Total = Header.size() > 0 ? 2 * (Header.size() - 1) : 0;
  for (size_t W : Widths)
    Total += W;
  std::string Rule(Total, '-');
  std::fprintf(Out, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    printRow(Row);
}

std::string TablePrinter::formatCount(uint64_t N) {
  char Buf[32];
  if (N >= 10'000'000) {
    std::snprintf(Buf, sizeof(Buf), "%.1fM", static_cast<double>(N) / 1e6);
    return Buf;
  }
  if (N >= 10'000) {
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64 "K", N / 1000);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  return Buf;
}

std::string TablePrinter::formatPercent(double P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", P);
  return Buf;
}
