//===- support/Timer.h - Wall-clock stopwatch -------------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal monotonic stopwatch used by the Table 1 harness to report
/// analysis times (columns 12-15 of the paper's table).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_TIMER_H
#define RAPID_SUPPORT_TIMER_H

#include <chrono>
#include <cstdio>
#include <string>

namespace rapid {

/// Wall-clock stopwatch with millisecond reporting.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Formats \p Seconds the way the paper's Table 1 does: "0.2s", "7m22s".
inline std::string formatSeconds(double Seconds) {
  char Buf[32];
  if (Seconds < 60.0) {
    std::snprintf(Buf, sizeof(Buf), "%.1fs", Seconds);
    return Buf;
  }
  int Minutes = static_cast<int>(Seconds) / 60;
  int Rem = static_cast<int>(Seconds) % 60;
  std::snprintf(Buf, sizeof(Buf), "%dm%ds", Minutes, Rem);
  return Buf;
}

} // namespace rapid

#endif // RAPID_SUPPORT_TIMER_H
