//===- support/StringInterner.cpp -----------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace rapid;

uint32_t StringInterner::intern(std::string_view Name) {
  auto It = IdByName.find(std::string(Name));
  if (It != IdByName.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.emplace_back(Name);
  IdByName.emplace(Names.back(), Id);
  return Id;
}

uint32_t StringInterner::lookup(std::string_view Name) const {
  auto It = IdByName.find(std::string(Name));
  if (It == IdByName.end())
    return UINT32_MAX;
  return It->second;
}
