//===- support/StringInterner.cpp -----------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace rapid;

uint64_t StringInterner::hashName(std::string_view Name) {
  // FNV-1a: names are short (a handful of bytes), so the byte loop beats
  // fancier hashes once setup costs count.
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Name) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

size_t StringInterner::probe(std::string_view Name, uint64_t H) const {
  size_t Mask = Slots.size() - 1;
  size_t I = static_cast<size_t>(H) & Mask;
  while (Slots[I]) {
    if (Names[Slots[I] - 1] == Name)
      return I;
    I = (I + 1) & Mask;
  }
  return I;
}

void StringInterner::grow() {
  size_t NewSize = Slots.empty() ? 16 : Slots.size() * 2;
  Slots.assign(NewSize, 0);
  for (uint32_t Id = 0; Id != Names.size(); ++Id) {
    size_t Mask = NewSize - 1;
    size_t I = static_cast<size_t>(hashName(Names[Id])) & Mask;
    while (Slots[I])
      I = (I + 1) & Mask;
    Slots[I] = Id + 1;
  }
}

uint32_t StringInterner::intern(std::string_view Name) {
  if (Slots.empty())
    grow();
  size_t I = probe(Name, hashName(Name));
  if (Slots[I])
    return Slots[I] - 1;
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.emplace_back(Name);
  if ((Names.size() + 1) * 4 > Slots.size() * 3) {
    grow(); // Re-seats everything, including the new id.
    return Id;
  }
  Slots[I] = Id + 1;
  return Id;
}

uint32_t StringInterner::lookup(std::string_view Name) const {
  if (Slots.empty())
    return UINT32_MAX;
  size_t I = probe(Name, hashName(Name));
  return Slots[I] ? Slots[I] - 1 : UINT32_MAX;
}
