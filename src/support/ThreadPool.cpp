//===- support/ThreadPool.cpp -------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace rapid;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultConcurrency();
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Guard(StateLock);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Target;
  {
    std::lock_guard<std::mutex> Guard(StateLock);
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % static_cast<unsigned>(Queues.size());
    ++Pending;
    ++Queued;
  }
  {
    std::lock_guard<std::mutex> Guard(Queues[Target]->Lock);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Guard(StateLock);
  AllIdle.wait(Guard, [this] { return Pending == 0; });
}

uint64_t ThreadPool::tasksExecuted() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Executed;
}

uint64_t ThreadPool::tasksStolen() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Stolen;
}

uint64_t ThreadPool::tasksFailed() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Failed;
}

bool ThreadPool::popOwn(unsigned Self, std::function<void()> &Task) {
  WorkerQueue &Q = *Queues[Self];
  std::lock_guard<std::mutex> Guard(Q.Lock);
  if (Q.Tasks.empty())
    return false;
  Task = std::move(Q.Tasks.front());
  Q.Tasks.pop_front();
  return true;
}

bool ThreadPool::stealOther(unsigned Self, std::function<void()> &Task) {
  unsigned N = static_cast<unsigned>(Queues.size());
  for (unsigned Off = 1; Off < N; ++Off) {
    WorkerQueue &Q = *Queues[(Self + Off) % N];
    std::lock_guard<std::mutex> Guard(Q.Lock);
    if (Q.Tasks.empty())
      continue;
    // Steal from the back: the most recently submitted work, which is the
    // least likely to be cache-warm on the victim.
    Task = std::move(Q.Tasks.back());
    Q.Tasks.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  for (;;) {
    std::function<void()> Task;
    bool ViaSteal = false;
    bool Got = popOwn(Self, Task);
    if (!Got) {
      Got = stealOther(Self, Task);
      ViaSteal = Got;
    }

    if (!Got) {
      std::unique_lock<std::mutex> Guard(StateLock);
      // Queued is bumped (under this lock) before the task is pushed onto
      // a queue, so a submission racing with the scan above leaves
      // Queued > 0 and we fall through to retry instead of sleeping past
      // the notification.
      if (Queued == 0 && !Stopping)
        WorkAvailable.wait(Guard, [this] { return Stopping || Queued > 0; });
      if (Stopping && Queued == 0)
        return;
      continue;
    }

    {
      std::lock_guard<std::mutex> Guard(StateLock);
      --Queued;
    }
    bool Threw = false;
    try {
      Task();
    } catch (...) {
      // Last-resort containment: an escaping exception must not abort the
      // process or strand wait() with Pending stuck above zero. Tasks are
      // expected to report failures through their own result slots (the
      // pipeline lane tasks do); this counter records that one did not.
      Threw = true;
    }
    {
      std::lock_guard<std::mutex> Guard(StateLock);
      ++Executed;
      if (Threw)
        ++Failed;
      if (ViaSteal)
        ++Stolen;
      if (--Pending == 0)
        AllIdle.notify_all();
    }
  }
}
