//===- support/ThreadPool.cpp -------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/TraceRecorder.h"

using namespace rapid;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultConcurrency();
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Guard(StateLock);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::attachTelemetry(const MetricsScope &Obs, TraceRecorder *R) {
  TasksCtr = Obs.counter("tasks");
  StealsCtr = Obs.counter("steals");
  TaskWaitNs = Obs.counter("task_wait_ns");
  RunNs = Obs.counter("run_ns");
  QueueDepthPeak = Obs.highWater("queue_depth_peak");
  Rec.store(R, std::memory_order_release);
}

void ThreadPool::submit(std::function<void()> Task) {
  Item It;
  It.Fn = std::move(Task);
  if (TaskWaitNs.enabled())
    It.SubmitNs = obsNowNs();
  unsigned Target;
  uint64_t Depth;
  {
    std::lock_guard<std::mutex> Guard(StateLock);
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % static_cast<unsigned>(Queues.size());
    ++Pending;
    Depth = ++Queued;
  }
  QueueDepthPeak.observe(Depth);
  if (TraceRecorder *R = Rec.load(std::memory_order_acquire))
    R->counter("pool.queue_depth", R->nowUs(), Depth);
  {
    std::lock_guard<std::mutex> Guard(Queues[Target]->Lock);
    Queues[Target]->Tasks.push_back(std::move(It));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Guard(StateLock);
  AllIdle.wait(Guard, [this] { return Pending == 0; });
}

uint64_t ThreadPool::tasksExecuted() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Executed;
}

uint64_t ThreadPool::tasksStolen() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Stolen;
}

uint64_t ThreadPool::tasksFailed() const {
  std::lock_guard<std::mutex> Guard(StateLock);
  return Failed;
}

bool ThreadPool::popOwn(unsigned Self, Item &Task) {
  WorkerQueue &Q = *Queues[Self];
  std::lock_guard<std::mutex> Guard(Q.Lock);
  if (Q.Tasks.empty())
    return false;
  Task = std::move(Q.Tasks.front());
  Q.Tasks.pop_front();
  return true;
}

bool ThreadPool::stealOther(unsigned Self, Item &Task) {
  unsigned N = static_cast<unsigned>(Queues.size());
  for (unsigned Off = 1; Off < N; ++Off) {
    WorkerQueue &Q = *Queues[(Self + Off) % N];
    std::lock_guard<std::mutex> Guard(Q.Lock);
    if (Q.Tasks.empty())
      continue;
    // Steal from the back: the most recently submitted work, which is the
    // least likely to be cache-warm on the victim.
    Task = std::move(Q.Tasks.back());
    Q.Tasks.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  for (;;) {
    Item It;
    bool ViaSteal = false;
    bool Got = popOwn(Self, It);
    if (!Got) {
      Got = stealOther(Self, It);
      ViaSteal = Got;
    }

    if (!Got) {
      std::unique_lock<std::mutex> Guard(StateLock);
      // Queued is bumped (under this lock) before the task is pushed onto
      // a queue, so a submission racing with the scan above leaves
      // Queued > 0 and we fall through to retry instead of sleeping past
      // the notification.
      if (Queued == 0 && !Stopping)
        WorkAvailable.wait(Guard, [this] { return Stopping || Queued > 0; });
      if (Stopping && Queued == 0)
        return;
      continue;
    }

    {
      std::lock_guard<std::mutex> Guard(StateLock);
      --Queued;
    }
    TasksCtr.add();
    if (ViaSteal)
      StealsCtr.add();
    if (It.SubmitNs)
      TaskWaitNs.add(obsNowNs() - It.SubmitNs);
    // Bind this worker's timeline track lazily (attachTelemetry may run
    // after the loop started) and wrap the task in a span so stage spans
    // recorded inside it nest on the worker's row.
    TraceRecorder *R = Rec.load(std::memory_order_acquire);
    uint32_t Track = TraceRecorder::NoTrack;
    int64_t SpanStart = 0;
    if (R) {
      Track = R->currentThreadTrack();
      if (Track == TraceRecorder::NoTrack) {
        Track = R->track("pool:worker" + std::to_string(Self));
        R->bindCurrentThread(Track);
      }
      SpanStart = R->nowUs();
    }
    uint64_t Run0 = RunNs.enabled() ? obsNowNs() : 0;
    bool Threw = false;
    try {
      It.Fn();
    } catch (...) {
      // Last-resort containment: an escaping exception must not abort the
      // process or strand wait() with Pending stuck above zero. Tasks are
      // expected to report failures through their own result slots (the
      // pipeline lane tasks do); this counter records that one did not.
      Threw = true;
    }
    if (Run0)
      RunNs.add(obsNowNs() - Run0);
    if (R)
      R->span(Track, "task", SpanStart, R->nowUs() - SpanStart);
    {
      std::lock_guard<std::mutex> Guard(StateLock);
      ++Executed;
      if (Threw)
        ++Failed;
      if (ViaSteal)
        ++Stolen;
      if (--Pending == 0)
        AllIdle.notify_all();
    }
  }
}
