//===- support/Ids.h - Strongly typed dense identifiers --------*- C++ -*-===//
//
// Part of rapidpp, a C++ reproduction of "Dynamic Race Prediction in Linear
// Time" (Kini, Mathur, Viswanathan; PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed wrappers for the dense integer identifiers used across the
/// trace model: threads, locks, variables and source locations. Using
/// distinct types prevents the classic bug of indexing a lock table with a
/// variable id; the wrappers compile down to bare integers.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_IDS_H
#define RAPID_SUPPORT_IDS_H

#include <cstdint>
#include <functional>
#include <limits>

namespace rapid {

/// CRTP base for dense ids. \p Derived is the concrete id type, \p Rep the
/// underlying integer representation.
template <typename Derived, typename Rep> class DenseId {
public:
  using RepType = Rep;

  constexpr DenseId() = default;
  constexpr explicit DenseId(Rep Value) : Value(Value) {}

  /// Raw integer value; used for table indexing.
  constexpr Rep value() const { return Value; }

  /// True iff this id was assigned (is not the invalid sentinel).
  constexpr bool isValid() const { return Value != Invalid; }

  static constexpr Derived invalid() { return Derived(Invalid); }

  friend constexpr bool operator==(Derived A, Derived B) {
    return A.value() == B.value();
  }
  friend constexpr bool operator!=(Derived A, Derived B) {
    return A.value() != B.value();
  }
  friend constexpr bool operator<(Derived A, Derived B) {
    return A.value() < B.value();
  }

private:
  static constexpr Rep Invalid = std::numeric_limits<Rep>::max();
  Rep Value = Invalid;
};

/// Identifies a thread. Thread ids are dense: 0 .. numThreads()-1.
class ThreadId : public DenseId<ThreadId, uint32_t> {
public:
  using DenseId::DenseId;
};

/// Identifies a lock object.
class LockId : public DenseId<LockId, uint32_t> {
public:
  using DenseId::DenseId;
};

/// Identifies a shared memory location (variable).
class VarId : public DenseId<VarId, uint32_t> {
public:
  using DenseId::DenseId;
};

/// Identifies a static program location (source of an event). Race pairs
/// are reported as unordered pairs of LocIds, matching the paper's notion
/// of a "race pair ... of program locations".
class LocId : public DenseId<LocId, uint32_t> {
public:
  using DenseId::DenseId;
};

/// Index of an event within a trace.
using EventIdx = uint64_t;

} // namespace rapid

namespace std {
template <> struct hash<rapid::ThreadId> {
  size_t operator()(rapid::ThreadId Id) const noexcept { return Id.value(); }
};
template <> struct hash<rapid::LockId> {
  size_t operator()(rapid::LockId Id) const noexcept { return Id.value(); }
};
template <> struct hash<rapid::VarId> {
  size_t operator()(rapid::VarId Id) const noexcept { return Id.value(); }
};
template <> struct hash<rapid::LocId> {
  size_t operator()(rapid::LocId Id) const noexcept { return Id.value(); }
};
} // namespace std

#endif // RAPID_SUPPORT_IDS_H
