//===- support/Json.h - Minimal JSON emission helpers -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two primitives behind the repo's hand-assembled JSON outputs
/// (race_cli --json, bench_pipeline's BENCH_pipeline.json): fixed-point
/// number formatting and string quoting/escaping. Shared so the schemas
/// the comments promise to keep aligned cannot drift in their encoding.
/// Deliberately not a JSON library — emission sites assemble their own
/// objects so the schema stays visible at the call site.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_JSON_H
#define RAPID_SUPPORT_JSON_H

#include <cstdio>
#include <string>

namespace rapid {

/// Renders \p V with six fractional digits — the precision every JSON
/// timing field in the repo uses.
inline std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

/// Quotes \p S as a JSON string, escaping quotes, backslashes and
/// control characters (error messages may carry arbitrary bytes).
inline std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace rapid

#endif // RAPID_SUPPORT_JSON_H
