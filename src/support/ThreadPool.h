//===- support/ThreadPool.h - Work-stealing task pool -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the analysis pipeline. Each worker
/// owns a deque of tasks: it pops from the front of its own deque and, when
/// empty, steals from the back of a sibling's. Submissions are distributed
/// round-robin so the per-lane shard tasks of pipeline/ start spread out
/// even before stealing kicks in.
///
/// The pool is deliberately minimal — no futures, no priorities. Callers
/// submit fire-and-forget closures and synchronize with wait(), which
/// blocks until every submitted task (including tasks submitted *by*
/// running tasks) has finished. Task exceptions are not propagated; pipeline
/// tasks report failures through their own result slots.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_SUPPORT_THREADPOOL_H
#define RAPID_SUPPORT_THREADPOOL_H

#include "obs/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rapid {

class TraceRecorder;

/// Work-stealing pool of \p NumThreads workers.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers; 0 means
  /// defaultConcurrency().
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Safe to call from worker threads (a task may fan
  /// out further tasks).
  void submit(std::function<void()> Task);

  /// Blocks until all submitted tasks have completed.
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks executed since construction (telemetry for benches).
  uint64_t tasksExecuted() const;

  /// Tasks obtained by stealing from a sibling's deque (telemetry).
  uint64_t tasksStolen() const;

  /// Tasks that let an exception escape (contained by the worker loop so
  /// the pool survives; the task's own result slot stays unset).
  uint64_t tasksFailed() const;

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned defaultConcurrency();

  /// Attaches observability (obs/): subsequent submissions and executions
  /// update \p Obs's instruments — "tasks", "steals", "task_wait_ns"
  /// (submit-to-start latency), "run_ns", "queue_depth_peak" — and, when
  /// \p Rec is non-null, each worker lazily binds a "pool:worker<I>"
  /// timeline track and wraps every task it runs in a "task" span (stage
  /// spans recorded from inside the task nest within it). Call right
  /// after construction, before the first submit; a disabled scope and a
  /// null recorder keep the zero-cost disabled path (null handles, no
  /// clock reads).
  void attachTelemetry(const MetricsScope &Obs, TraceRecorder *Rec);

private:
  /// A queued task plus its submit timestamp (0 unless task-wait timing
  /// is enabled — the clock is only read when someone will consume it).
  struct Item {
    std::function<void()> Fn;
    uint64_t SubmitNs = 0;
  };
  struct WorkerQueue {
    std::deque<Item> Tasks;
    std::mutex Lock;
  };

  void workerLoop(unsigned Self);
  bool popOwn(unsigned Self, Item &Task);
  bool stealOther(unsigned Self, Item &Task);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  // Observability handles (null/zero until attachTelemetry). The recorder
  // pointer is atomic because workers read it while attach may still be
  // running; everything else is only written by attachTelemetry before
  // the first submit.
  Counter TasksCtr;
  Counter StealsCtr;
  Counter TaskWaitNs;
  Counter RunNs;
  HighWater QueueDepthPeak;
  std::atomic<TraceRecorder *> Rec{nullptr};

  mutable std::mutex StateLock;
  std::condition_variable WorkAvailable; ///< Signals queued work or stop.
  std::condition_variable AllIdle;       ///< Signals Pending hitting zero.
  uint64_t Pending = 0;                  ///< Queued + running tasks.
  uint64_t Queued = 0;                   ///< Tasks not yet claimed.
  uint64_t Executed = 0;
  uint64_t Stolen = 0;
  uint64_t Failed = 0;
  unsigned NextQueue = 0; ///< Round-robin submission cursor.
  bool Stopping = false;
};

} // namespace rapid

#endif // RAPID_SUPPORT_THREADPOOL_H
