//===- reference/ClosureEngine.h - Declarative HB/CP/WCP --------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference (obviously-correct, polynomial) computations of the paper's
/// partial orders directly from their declarative definitions:
///
///   * HB   (Definition 1): thread order + rel(ℓ) → later acq(ℓ);
///   * CP   (Definition 2): rules (a) conflicting critical sections order
///     release → acquire, (b) CP-ordered sections order release → acquire,
///     (c) closure under HB composition on both sides;
///   * WCP  (Definition 3): rules (a) release → later conflicting access
///     in a section on the same lock, (b) WCP-ordered sections order
///     release → release, (c) HB composition.
///
/// These run in O(N²)–O(N³/64) time and O(N²) bits of space, so they only
/// apply to small/medium traces — which is the point: they are the ground
/// truth the linear-time detectors are property-tested against (Theorem 2:
/// C_a ⊑ C_b ⟺ a ≤WCP b), and they power the CP baseline on the paper's
/// figure traces.
///
/// Fork/join events induce *hard* edges (thread order-like: no correct
/// reordering can flip them), mirroring how the streaming detectors fold
/// them into their clocks.
///
/// Two fidelity knobs (ClosureOptions) capture places where the paper's
/// Algorithm 1 and the literal Definition 3 diverge; the defaults match
/// Algorithm 1 so the equivalence property tests are exact:
///
///   * Rule (b) via the queues only ever relates critical sections of
///     *different* threads (Line 3 enqueues to other threads only), and
///     the pop guard `Acq_ℓ(t).Front() ⊑ C_t` tests ≤WCP (which includes
///     thread order and hard edges), not the strict ≺WCP of the
///     definition's premise.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_REFERENCE_CLOSUREENGINE_H
#define RAPID_REFERENCE_CLOSUREENGINE_H

#include "detect/Race.h"
#include "reference/BitMatrix.h"
#include "trace/Trace.h"

#include <vector>

namespace rapid {

/// Which partial order to query.
enum class OrderKind {
  Hard, ///< (thread order ∪ fork/join)⁺ — unbreakable program order.
  HB,   ///< Happens-before (Definition 1).
  CP,   ///< Causally-precedes (Definition 2).
  WCP,  ///< Weak-causally-precedes (Definition 3).
};

const char *orderKindName(OrderKind K);

/// Fidelity knobs; defaults mirror Algorithm 1 (see file comment).
struct ClosureOptions {
  /// Allow rule (b) on two critical sections of the same thread (the
  /// literal Definition 3 allows it when the premise holds via a strict
  /// cross-thread ≺WCP derivation; Algorithm 1's queues cannot see it).
  bool SameThreadRuleB = false;
  /// Rule (b) premise is "first acquire ≤ second release" in the *full*
  /// order (thread order / hard edges included), matching the queue pop
  /// guard. When false, the premise requires the strict composed relation,
  /// matching the definitions verbatim.
  bool InclusivePremise = true;
};

/// Computes HB/CP/WCP over one trace; immutable after construction.
class ClosureEngine {
public:
  explicit ClosureEngine(const Trace &T, ClosureOptions Opts = {});

  /// True iff a ≤K b (reflexive; includes thread order where the paper's
  /// ≤CP/≤WCP do).
  bool ordered(OrderKind K, EventIdx A, EventIdx B) const;

  /// True iff events A <tr B form a K-race: conflicting and unordered.
  bool isRace(OrderKind K, EventIdx A, EventIdx B) const;

  /// All K-races as (earlier, later) event index pairs, in trace order.
  std::vector<RaceInstance> races(OrderKind K) const;

  /// Number of rule-(a)/rule-(b) edges generated (diagnostics).
  uint64_t numRuleAEdges(OrderKind K) const;
  uint64_t numRuleBEdges(OrderKind K) const;

  const Trace &trace() const { return T; }

private:
  /// A closed critical section.
  struct Section {
    EventIdx Acq;
    EventIdx Rel;
    ThreadId Thread;
    LockId Lock;
    /// Variables accessed inside, with kind masks (1=read, 2=write).
    std::vector<std::pair<uint32_t, uint8_t>> Vars;
    uint8_t varMask(uint32_t X) const {
      for (auto [V, M] : Vars)
        if (V == X)
          return M;
      return 0;
    }
  };

  void buildStructure();
  void computeHard();
  void computeHb();
  void computeComposed(bool Wcp);

  /// Recomputes the strict composed relation S for the current edge set
  /// into \p S. Edges is a list of (src, dst) base edges (⊆ HB).
  void recomputeComposed(const std::vector<std::pair<EventIdx, EventIdx>>
                             &Edges,
                         BitMatrix &S) const;

  const Trace &T;
  ClosureOptions Opts;
  uint64_t N;

  // Structure.
  std::vector<EventIdx> PrevInThread; ///< Prior event of same thread.
  /// Incoming cross-thread HB edges: rel→acq, fork→first-child-event,
  /// last-child-event→join. An event can have more than one (e.g. a
  /// child's first event that is also an acquire).
  std::vector<std::vector<EventIdx>> HbSources;
  std::vector<Section> Sections;        ///< Closed critical sections.
  std::vector<std::vector<uint32_t>> SectionsOfLock;
  std::vector<std::vector<uint32_t>> EnclosingSections; ///< Per event.

  // Relations: Pred(b) bitsets. Hard/HB are reflexive; CP/WCP strict.
  BitMatrix HardPred;
  BitMatrix HbPred;
  BitMatrix WcpStrict;
  BitMatrix CpStrict;

  uint64_t WcpRuleA = 0, WcpRuleB = 0, CpRuleA = 0, CpRuleB = 0;

  static constexpr EventIdx NoEvent = UINT64_MAX;
};

} // namespace rapid

#endif // RAPID_REFERENCE_CLOSUREENGINE_H
