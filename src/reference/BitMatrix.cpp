//===- reference/BitMatrix.cpp ------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "reference/BitMatrix.h"

#include <algorithm>

using namespace rapid;

BitMatrix::BitMatrix(uint64_t N)
    : N(N), WordsPerRow((N + 63) / 64), Words(N * WordsPerRow, 0) {}

bool BitMatrix::orRow(uint64_t Dst, uint64_t Src) {
  return orRowFrom(Dst, *this, Src);
}

bool BitMatrix::orRowFrom(uint64_t Dst, const BitMatrix &Other, uint64_t Src) {
  assert(Dst < N && Src < Other.N && WordsPerRow == Other.WordsPerRow &&
         "row union shape mismatch");
  const uint64_t *From = &Other.Words[Src * WordsPerRow];
  uint64_t *To = &Words[Dst * WordsPerRow];
  uint64_t Changed = 0;
  for (uint64_t I = 0; I < WordsPerRow; ++I) {
    uint64_t Old = To[I];
    uint64_t New = Old | From[I];
    Changed |= Old ^ New;
    To[I] = New;
  }
  return Changed != 0;
}

uint64_t BitMatrix::countRow(uint64_t Row) const {
  assert(Row < N && "row out of range");
  uint64_t Count = 0;
  const uint64_t *Ptr = &Words[Row * WordsPerRow];
  for (uint64_t I = 0; I < WordsPerRow; ++I)
    Count += static_cast<uint64_t>(__builtin_popcountll(Ptr[I]));
  return Count;
}

void BitMatrix::clear() { std::fill(Words.begin(), Words.end(), 0); }
