//===- reference/ClosureEngine.cpp --------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "reference/ClosureEngine.h"

#include <algorithm>
#include <cstddef>

using namespace rapid;

const char *rapid::orderKindName(OrderKind K) {
  switch (K) {
  case OrderKind::Hard:
    return "Hard";
  case OrderKind::HB:
    return "HB";
  case OrderKind::CP:
    return "CP";
  case OrderKind::WCP:
    return "WCP";
  }
  assert(false && "unknown order kind");
  return "?";
}

ClosureEngine::ClosureEngine(const Trace &T, ClosureOptions Opts)
    : T(T), Opts(Opts), N(T.size()) {
  assert(N <= 20000 && "closure engine is for small reference traces");
  buildStructure();
  computeHard();
  computeHb();
  computeComposed(/*Wcp=*/true);
  computeComposed(/*Wcp=*/false);
}

void ClosureEngine::buildStructure() {
  PrevInThread.assign(N, NoEvent);
  HbSources.assign(N, {});
  EnclosingSections.assign(N, {});
  SectionsOfLock.assign(T.numLocks(), {});

  std::vector<EventIdx> LastOfThread(T.numThreads(), NoEvent);
  std::vector<EventIdx> LastRelease(T.numLocks(), NoEvent);
  // Per-thread stack of open sections (indices into Sections).
  std::vector<std::vector<uint32_t>> OpenStack(T.numThreads());
  // Fork source pending for a thread's first event.
  std::vector<EventIdx> PendingFork(T.numThreads(), NoEvent);

  const std::vector<Event> &Events = T.events();
  for (EventIdx I = 0; I != N; ++I) {
    const Event &E = Events[I];
    uint32_t Tid = E.Thread.value();
    PrevInThread[I] = LastOfThread[Tid];
    if (PrevInThread[I] == NoEvent && PendingFork[Tid] != NoEvent)
      HbSources[I].push_back(PendingFork[Tid]); // fork → first child event.
    LastOfThread[Tid] = I;

    switch (E.Kind) {
    case EventKind::Acquire: {
      if (LastRelease[E.lock().value()] != NoEvent)
        HbSources[I].push_back(LastRelease[E.lock().value()]);
      uint32_t SectionIdx = static_cast<uint32_t>(Sections.size());
      Sections.push_back(
          Section{I, NoEvent, E.Thread, E.lock(), {}});
      OpenStack[Tid].push_back(SectionIdx);
      break;
    }
    case EventKind::Release: {
      // Hand-over-hand locking: close the open section over this lock,
      // which need not be the innermost one.
      size_t Pos = OpenStack[Tid].size();
      for (size_t K = OpenStack[Tid].size(); K-- > 0;)
        if (Sections[OpenStack[Tid][K]].Lock == E.lock()) {
          Pos = K;
          break;
        }
      assert(Pos < OpenStack[Tid].size() && "release without open section");
      uint32_t SectionIdx = OpenStack[Tid][Pos];
      OpenStack[Tid].erase(OpenStack[Tid].begin() +
                           static_cast<ptrdiff_t>(Pos));
      Section &S = Sections[SectionIdx];
      S.Rel = I;
      SectionsOfLock[E.lock().value()].push_back(SectionIdx);
      LastRelease[E.lock().value()] = I;
      break;
    }
    case EventKind::Fork:
      PendingFork[E.targetThread().value()] = I;
      break;
    case EventKind::Join: {
      EventIdx ChildLast = LastOfThread[E.targetThread().value()];
      if (ChildLast != NoEvent)
        HbSources[I].push_back(ChildLast); // child's last event → join.
      break;
    }
    case EventKind::Read:
    case EventKind::Write: {
      uint8_t Mask = E.Kind == EventKind::Read ? 1 : 2;
      for (uint32_t SectionIdx : OpenStack[Tid]) {
        Section &S = Sections[SectionIdx];
        bool Found = false;
        for (auto &[V, M] : S.Vars) {
          if (V == E.var().value()) {
            M |= Mask;
            Found = true;
            break;
          }
        }
        if (!Found)
          S.Vars.emplace_back(E.var().value(), Mask);
      }
      break;
    }
    }

    // Enclosing (open) sections of this event, innermost last. An event
    // is "∈ ℓ" iff one of these is over ℓ — open sections count (§2.1:
    // an acquire with no matching release still opens a section).
    EnclosingSections[I] = OpenStack[Tid];
  }
}

void ClosureEngine::computeHard() {
  HardPred = BitMatrix(N);
  const std::vector<Event> &Events = T.events();
  std::vector<EventIdx> LastOfThread(T.numThreads(), NoEvent);
  std::vector<EventIdx> PendingFork(T.numThreads(), NoEvent);
  for (EventIdx I = 0; I != N; ++I) {
    const Event &E = Events[I];
    HardPred.set(I, I);
    if (PrevInThread[I] != NoEvent)
      HardPred.orRow(I, PrevInThread[I]);
    else if (PendingFork[E.Thread.value()] != NoEvent)
      HardPred.orRow(I, PendingFork[E.Thread.value()]);
    if (E.Kind == EventKind::Fork)
      PendingFork[E.targetThread().value()] = I;
    if (E.Kind == EventKind::Join) {
      EventIdx ChildLast = LastOfThread[E.targetThread().value()];
      if (ChildLast != NoEvent)
        HardPred.orRow(I, ChildLast);
    }
    LastOfThread[E.Thread.value()] = I;
  }
}

void ClosureEngine::computeHb() {
  HbPred = BitMatrix(N);
  for (EventIdx I = 0; I != N; ++I) {
    HbPred.set(I, I);
    if (PrevInThread[I] != NoEvent)
      HbPred.orRow(I, PrevInThread[I]);
    for (EventIdx Src : HbSources[I])
      HbPred.orRow(I, Src);
  }
}

void ClosureEngine::recomputeComposed(
    const std::vector<std::pair<EventIdx, EventIdx>> &Edges,
    BitMatrix &S) const {
  // All base edges point forward in trace order and are ⊆ HB, so one
  // forward pass suffices: S(b) = ⋃_{HB edge s→b} S(s) ∪ ⋃_{base u→b}
  // HbPred(u). (S(u) ⊆ HbPred(u) because ≺CP/≺WCP ⊆ ≤HB.)
  S.clear();
  // Bucket base edges by destination.
  std::vector<std::vector<EventIdx>> ByDst(N);
  for (auto [Src, Dst] : Edges) {
    assert(Src < Dst && "base edges must point forward");
    ByDst[Dst].push_back(Src);
  }
  for (EventIdx I = 0; I != N; ++I) {
    if (PrevInThread[I] != NoEvent)
      S.orRow(I, PrevInThread[I]);
    for (EventIdx Src : HbSources[I])
      S.orRow(I, Src);
    for (EventIdx Src : ByDst[I])
      S.orRowFrom(I, HbPred, Src);
  }
}

void ClosureEngine::computeComposed(bool Wcp) {
  const std::vector<Event> &Events = T.events();
  std::vector<std::pair<EventIdx, EventIdx>> Edges;
  uint64_t &RuleA = Wcp ? WcpRuleA : CpRuleA;
  uint64_t &RuleB = Wcp ? WcpRuleB : CpRuleB;

  // Rule (a) edges are independent of the relation being built.
  if (Wcp) {
    // WCP rule (a): rel r (section S1 on ℓ) → later access e with e ∈ ℓ,
    // CS(r) containing an event conflicting with e. Events in CS(r) are
    // all by S1's thread, so conflict requires t(e) ≠ t(r).
    for (EventIdx I = 0; I != N; ++I) {
      const Event &E = Events[I];
      if (!isAccess(E.Kind))
        continue;
      for (uint32_t SectionIdx : EnclosingSections[I]) {
        LockId L = Sections[SectionIdx].Lock;
        for (uint32_t OtherIdx : SectionsOfLock[L.value()]) {
          const Section &S1 = Sections[OtherIdx];
          if (S1.Rel == NoEvent || S1.Rel >= I || S1.Thread == E.Thread)
            continue;
          uint8_t Mask = S1.varMask(E.var().value());
          bool Conflicts = E.Kind == EventKind::Read ? (Mask & 2) != 0
                                                     : Mask != 0;
          if (Conflicts)
            Edges.emplace_back(S1.Rel, I);
        }
      }
    }
  } else {
    // CP rule (a): sections on the same lock with conflicting events
    // order rel(first) → acq(second).
    for (const auto &OfLock : SectionsOfLock) {
      for (size_t J = 0; J < OfLock.size(); ++J) {
        const Section &S2 = Sections[OfLock[J]];
        for (size_t I = 0; I < J; ++I) {
          const Section &S1 = Sections[OfLock[I]];
          if (S1.Thread == S2.Thread)
            continue;
          bool Conflicts = false;
          for (auto [V, M1] : S1.Vars) {
            uint8_t M2 = S2.varMask(V);
            if ((M1 & 2 && M2 != 0) || (M1 & 1 && M2 & 2)) {
              Conflicts = true;
              break;
            }
          }
          if (Conflicts)
            Edges.emplace_back(S1.Rel, S2.Acq);
        }
      }
    }
  }
  RuleA = Edges.size();

  // Saturate rule (b): premise for sections S1 before S2 on one lock is
  // "S1's acquire ordered before S2's release" (§3.2's equivalence). The
  // conclusion differs: WCP orders rel→rel, CP orders rel→acq.
  BitMatrix S(N);
  size_t EdgesBefore;
  do {
    EdgesBefore = Edges.size();
    recomputeComposed(Edges, S);
    for (const auto &OfLock : SectionsOfLock) {
      for (size_t J = 0; J < OfLock.size(); ++J) {
        const Section &S2 = Sections[OfLock[J]];
        for (size_t I = 0; I < J; ++I) {
          const Section &S1 = Sections[OfLock[I]];
          if (!Opts.SameThreadRuleB && S1.Thread == S2.Thread)
            continue;
          bool Premise = S.test(S2.Rel, S1.Acq);
          if (!Premise && Opts.InclusivePremise)
            Premise = HardPred.test(S2.Rel, S1.Acq);
          if (!Premise)
            continue;
          std::pair<EventIdx, EventIdx> NewEdge =
              Wcp ? std::make_pair(S1.Rel, S2.Rel)
                  : std::make_pair(S1.Rel, S2.Acq);
          if (std::find(Edges.begin(), Edges.end(), NewEdge) == Edges.end())
            Edges.push_back(NewEdge);
        }
      }
    }
  } while (Edges.size() != EdgesBefore);
  RuleB = Edges.size() - RuleA;

  recomputeComposed(Edges, S);
  if (Wcp)
    WcpStrict = std::move(S);
  else
    CpStrict = std::move(S);
}

bool ClosureEngine::ordered(OrderKind K, EventIdx A, EventIdx B) const {
  assert(A < N && B < N && "event out of range");
  if (A == B)
    return true;
  if (B < A)
    return false;
  switch (K) {
  case OrderKind::Hard:
    return HardPred.test(B, A);
  case OrderKind::HB:
    return HbPred.test(B, A);
  case OrderKind::WCP:
    return HardPred.test(B, A) || WcpStrict.test(B, A);
  case OrderKind::CP:
    return HardPred.test(B, A) || CpStrict.test(B, A);
  }
  assert(false && "unknown order kind");
  return false;
}

bool ClosureEngine::isRace(OrderKind K, EventIdx A, EventIdx B) const {
  if (!Event::conflicting(T.event(A), T.event(B)))
    return false;
  return !ordered(K, A, B) && !ordered(K, B, A);
}

std::vector<RaceInstance> ClosureEngine::races(OrderKind K) const {
  std::vector<RaceInstance> Out;
  const std::vector<Event> &Events = T.events();
  for (EventIdx B = 0; B != N; ++B) {
    if (!isAccess(Events[B].Kind))
      continue;
    for (EventIdx A = 0; A != B; ++A) {
      if (!isRace(K, A, B))
        continue;
      RaceInstance Inst;
      Inst.EarlierIdx = A;
      Inst.LaterIdx = B;
      Inst.EarlierLoc = Events[A].Loc;
      Inst.LaterLoc = Events[B].Loc;
      Inst.Var = Events[B].var();
      Out.push_back(Inst);
    }
  }
  return Out;
}

uint64_t ClosureEngine::numRuleAEdges(OrderKind K) const {
  return K == OrderKind::WCP ? WcpRuleA : CpRuleA;
}

uint64_t ClosureEngine::numRuleBEdges(OrderKind K) const {
  return K == OrderKind::WCP ? WcpRuleB : CpRuleB;
}
