//===- reference/BitMatrix.h - Dense boolean relation -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense N×N bit matrix used by the reference closure engine to store
/// predecessor sets of partial orders. Rows are 64-bit-word aligned so row
/// unions (the closure engine's hot operation) vectorize.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_REFERENCE_BITMATRIX_H
#define RAPID_REFERENCE_BITMATRIX_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace rapid {

/// Square bit matrix with fast row-wise union.
class BitMatrix {
public:
  BitMatrix() = default;
  explicit BitMatrix(uint64_t N);

  uint64_t size() const { return N; }

  bool test(uint64_t Row, uint64_t Col) const {
    assert(Row < N && Col < N && "bit out of range");
    return (Words[Row * WordsPerRow + (Col >> 6)] >> (Col & 63)) & 1;
  }

  void set(uint64_t Row, uint64_t Col) {
    assert(Row < N && Col < N && "bit out of range");
    Words[Row * WordsPerRow + (Col >> 6)] |= uint64_t(1) << (Col & 63);
  }

  /// Row[Dst] |= Row[Src]. Returns true iff Row[Dst] changed.
  bool orRow(uint64_t Dst, uint64_t Src);

  /// Row[Dst] |= Other.Row[Src]. The matrices must have equal size.
  bool orRowFrom(uint64_t Dst, const BitMatrix &Other, uint64_t Src);

  /// Number of set bits in \p Row.
  uint64_t countRow(uint64_t Row) const;

  /// Clears the whole matrix.
  void clear();

  bool operator==(const BitMatrix &O) const {
    return N == O.N && Words == O.Words;
  }

private:
  uint64_t N = 0;
  uint64_t WordsPerRow = 0;
  std::vector<uint64_t> Words;
};

} // namespace rapid

#endif // RAPID_REFERENCE_BITMATRIX_H
