//===- pipeline/Pipeline.cpp --------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "detect/ShardedAccessHistory.h"
#include "pipeline/ChunkedReader.h"
#include "support/GuardedTask.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "trace/Window.h"

using namespace rapid;

double PipelineResult::laneSecondsTotal() const {
  double Total = 0;
  for (const LaneResult &L : Lanes)
    Total += L.Seconds;
  return Total;
}

AnalysisPipeline::AnalysisPipeline(PipelineOptions Opts) : Opts(Opts) {}

AnalysisPipeline &AnalysisPipeline::addDetector(DetectorFactory Make,
                                                std::string Name) {
  Lanes.push_back(Lane{std::move(Name), std::move(Make)});
  return *this;
}

PipelineResult AnalysisPipeline::run(const Trace &T) const {
  return Opts.Parallel ? runParallel(T) : runFused(T);
}

PipelineResult AnalysisPipeline::runParallel(const Trace &T) const {
  Timer Wall;
  PipelineResult Result;
  Result.Lanes.resize(Lanes.size());

  unsigned NumThreads =
      Opts.NumThreads == 0 ? ThreadPool::defaultConcurrency() : Opts.NumThreads;

  if (Opts.ShardEvents == 0 && Opts.VarShards > 0) {
    runVarShardedLanes(T, NumThreads, Result);
  } else if (Opts.ShardEvents == 0) {
    // One task per lane: a full-trace walk, bit-identical to runDetector.
    {
      ThreadPool Pool(NumThreads);
      for (size_t L = 0; L != Lanes.size(); ++L) {
        Pool.submit([this, L, &T, &Result] {
          LaneResult &Out = Result.Lanes[L];
          Out.DetectorName = Lanes[L].Name;
          guardedTask(Out.Error, [&] {
            std::unique_ptr<Detector> D = Lanes[L].Make(T);
            RunResult R = runDetector(*D, T);
            if (Out.DetectorName.empty())
              Out.DetectorName = R.DetectorName;
            Out.Report = std::move(R.Report);
            Out.Seconds = R.Seconds;
            if (Opts.Metrics)
              D->telemetry(Out.Telemetry);
          });
        });
      }
      Pool.wait();
      Result.TasksStolen = Pool.tasksStolen();
    }
    Result.NumShards = 1;
  } else {
    // Lane × shard task grid. Shards are computed once and shared by all
    // lanes — the single fan-out walk of the trace.
    std::vector<TraceWindow> Shards = splitIntoWindows(T, Opts.ShardEvents);
    Result.NumShards = Shards.size();
    std::vector<std::vector<RaceReport>> Reports(
        Lanes.size(), std::vector<RaceReport>(Shards.size()));
    std::vector<std::vector<double>> Times(
        Lanes.size(), std::vector<double>(Shards.size(), 0));
    std::vector<std::string> Names(Lanes.size());
    std::vector<std::vector<std::string>> Errors(
        Lanes.size(), std::vector<std::string>(Shards.size()));
    {
      ThreadPool Pool(NumThreads);
      for (size_t L = 0; L != Lanes.size(); ++L) {
        for (size_t S = 0; S != Shards.size(); ++S) {
          Pool.submit([this, L, S, &Shards, &Reports, &Times, &Names,
                       &Errors] {
            guardedTask(Errors[L][S], [&] {
              Timer Clock;
              std::unique_ptr<Detector> D = Lanes[L].Make(Shards[S].Fragment);
              if (S == 0)
                Names[L] = D->name();
              Reports[L][S] = runDetectorOnWindow(*D, Shards[S]);
              Times[L][S] = Clock.seconds();
            });
          });
        }
      }
      Pool.wait();
      Result.TasksStolen = Pool.tasksStolen();
    }
    // Deterministic merge: shard order, exactly like runDetectorWindowed.
    for (size_t L = 0; L != Lanes.size(); ++L) {
      LaneResult &Out = Result.Lanes[L];
      std::string Base = Lanes[L].Name.empty() ? Names[L] : Lanes[L].Name;
      Out.DetectorName = Base + "[w=" + std::to_string(Opts.ShardEvents) + "]";
      for (size_t S = 0; S != Shards.size(); ++S) {
        if (!Errors[L][S].empty() && Out.Error.empty())
          Out.Error = "shard " + std::to_string(S) + ": " + Errors[L][S];
        Out.Report.mergeFrom(Reports[L][S]);
        Out.Seconds += Times[L][S];
      }
    }
  }

  Result.ThreadsUsed = NumThreads;
  Result.Seconds = Wall.seconds();
  return Result;
}

void AnalysisPipeline::runVarShardedLanes(const Trace &T, unsigned NumThreads,
                                          PipelineResult &Result) const {
  const uint32_t NumShards = Opts.VarShards == 0 ? 1 : Opts.VarShards;

  // Per-lane state that outlives the phase-1 tasks: the captured access
  // log (clock snapshots included) and the partitioned work lists feed
  // the phase-2 shard tasks.
  struct LaneWork {
    /// Owned past phase 1: context-bearing detectors (SyncP) hand the
    /// shard tasks a ShardContext that lives inside the detector.
    std::unique_ptr<Detector> D;
    std::unique_ptr<AccessLog> Log;
    std::unique_ptr<ShardedAccessHistory> History;
    std::vector<std::vector<RaceInstance>> PerShard;
    std::vector<std::string> ShardErrors;
    std::vector<double> ShardSeconds;
    ShardReplay Replay = ShardReplay::FullHistory;
    bool Captured = false;
  };
  std::vector<LaneWork> Work(Lanes.size());

  ThreadPool Pool(NumThreads);

  // Phase 1 — one clock-pass task per lane. Capture-capable detectors
  // walk the trace with checks deferred and partition the log; the rest
  // fall back to the plain sequential walk (their lane is done here).
  for (size_t L = 0; L != Lanes.size(); ++L) {
    Pool.submit([this, L, &T, &Result, &Work, NumShards] {
      LaneResult &Out = Result.Lanes[L];
      Out.DetectorName = Lanes[L].Name;
      guardedTask(Out.Error, [&] {
        Timer Clock;
        LaneWork &W = Work[L];
        W.D = Lanes[L].Make(T);
        Detector &D = *W.D;
        if (Out.DetectorName.empty())
          Out.DetectorName = D.name();
        W.Log = std::make_unique<AccessLog>(T.numThreads());
        if (D.beginCapture(*W.Log)) {
          const std::vector<Event> &Events = T.events();
          for (EventIdx I = 0, E = Events.size(); I != E; ++I)
            D.processEvent(Events[I], I);
          D.finish();
          W.Replay = D.shardReplay();
          // The plan is per lane: the frequency strategy packs shards
          // from this lane's own captured access counts.
          ShardPlan Plan{NumShards};
          if (Opts.VarShardStrategy == ShardStrategy::FrequencyBalanced) {
            std::vector<uint64_t> Counts(T.numVars(), 0);
            W.Log->forEachAccess(0, W.Log->numAccesses(),
                                 [&](const DeferredAccess &A, uint64_t) {
                                   ++Counts[A.Var.value()];
                                 });
            Plan = ShardPlan::balancedByFrequency(NumShards, Counts);
          }
          W.History = std::make_unique<ShardedAccessHistory>(
              std::move(Plan), T.numVars(), T.numThreads());
          W.History->partition(*W.Log);
          W.PerShard.resize(NumShards);
          W.ShardErrors.resize(NumShards);
          W.ShardSeconds.resize(NumShards, 0);
          W.Captured = true;
          Out.Seconds = Clock.seconds();
        } else {
          RunResult R = runDetector(D, T);
          Out.Report = std::move(R.Report);
          Out.Seconds = R.Seconds;
        }
        if (Opts.Metrics)
          D.telemetry(Out.Telemetry);
      });
    });
  }
  Pool.wait();

  // Phase 2 — the lane × shard check grid. Shards of one lane share the
  // immutable log/broadcast read-only and write disjoint slots.
  for (size_t L = 0; L != Lanes.size(); ++L) {
    if (!Work[L].Captured)
      continue;
    for (uint32_t S = 0; S != NumShards; ++S) {
      Pool.submit([L, S, &Work] {
        LaneWork &W = Work[L];
        guardedTask(W.ShardErrors[S], [&] {
          Timer Clock;
          W.PerShard[S] = W.History->checkShard(S, *W.Log, W.Replay,
                                                W.D->shardContext());
          W.ShardSeconds[S] = Clock.seconds();
        });
      });
    }
  }
  Pool.wait();
  Result.TasksStolen = Pool.tasksStolen();

  // Phase 3 — deterministic merge back into parent-trace order.
  for (size_t L = 0; L != Lanes.size(); ++L) {
    LaneWork &W = Work[L];
    if (!W.Captured)
      continue;
    LaneResult &Out = Result.Lanes[L];
    for (uint32_t S = 0; S != NumShards; ++S) {
      if (!W.ShardErrors[S].empty() && Out.Error.empty())
        Out.Error = "var shard " + std::to_string(S) + ": " + W.ShardErrors[S];
      Out.Seconds += W.ShardSeconds[S];
    }
    if (Out.Error.empty())
      Out.Report = ShardedAccessHistory::mergeInTraceOrder(W.PerShard);
    // Re-snapshot telemetry: context-bearing lanes accumulate their check
    // counters (candidate pairs, closure work) during phase 2, which the
    // phase-1 snapshot predates.
    if (Opts.Metrics) {
      Out.Telemetry.clear();
      W.D->telemetry(Out.Telemetry);
    }
  }
  Result.NumShards = 1;
  Result.VarShards = NumShards;
}

PipelineResult AnalysisPipeline::runFused(const Trace &T) const {
  // Sequential fan-out: a single walk of the event vector feeds every
  // lane's detector, so N analyses share one pass over the trace.
  Timer Wall;
  PipelineResult Result;
  Result.Lanes.resize(Lanes.size());

  if (Opts.ShardEvents == 0) {
    std::vector<std::unique_ptr<Detector>> Detectors;
    Detectors.reserve(Lanes.size());
    for (const Lane &L : Lanes)
      Detectors.push_back(L.Make(T));
    const std::vector<Event> &Events = T.events();
    for (EventIdx I = 0, E = Events.size(); I != E; ++I)
      for (std::unique_ptr<Detector> &D : Detectors)
        D->processEvent(Events[I], I);
    for (size_t L = 0; L != Lanes.size(); ++L) {
      Detectors[L]->finish();
      LaneResult &Out = Result.Lanes[L];
      Out.DetectorName =
          Lanes[L].Name.empty() ? Detectors[L]->name() : Lanes[L].Name;
      Out.Report = Detectors[L]->report();
      if (Opts.Metrics)
        Detectors[L]->telemetry(Out.Telemetry);
    }
    Result.NumShards = 1;
  } else {
    std::vector<TraceWindow> Shards = splitIntoWindows(T, Opts.ShardEvents);
    Result.NumShards = Shards.size();
    for (size_t L = 0; L != Lanes.size(); ++L) {
      LaneResult &Out = Result.Lanes[L];
      for (const TraceWindow &W : Shards) {
        std::unique_ptr<Detector> D = Lanes[L].Make(W.Fragment);
        if (Out.DetectorName.empty())
          Out.DetectorName =
              (Lanes[L].Name.empty() ? D->name() : Lanes[L].Name) +
              "[w=" + std::to_string(Opts.ShardEvents) + "]";
        Out.Report.mergeFrom(runDetectorOnWindow(*D, W));
      }
    }
  }

  Result.ThreadsUsed = 1;
  Result.Seconds = Wall.seconds();
  return Result;
}

PipelineResult AnalysisPipeline::runFile(const std::string &Path,
                                         std::string &Error,
                                         Trace *Loaded) const {
  Timer Ingest;
  TraceLoadResult Load = loadTraceFileChunked(Path);
  if (!Load.Ok) {
    Error = Load.Error;
    return PipelineResult();
  }
  double IngestSeconds = Ingest.seconds();
  PipelineResult Result = run(Load.T);
  Result.IngestSeconds = IngestSeconds;
  if (Loaded)
    *Loaded = std::move(Load.T);
  return Result;
}
