//===- pipeline/Pipeline.h - Sharded multi-detector analysis ----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel analysis service: one trace, many detectors, many threads.
/// A pipeline owns a set of detector *lanes* (WCP, HB, FastTrack, Eraser —
/// any DetectorFactory). A run fans the trace out to every lane at once,
/// so N analyses cost one trace residency instead of N separate runs, and
/// shards the resulting work across a work-stealing ThreadPool:
///
///   * unsharded (ShardEvents == 0): each lane is one task walking the
///     whole trace — results are *identical* to sequential runDetector,
///     which is the pipeline's correctness contract (pipeline_test pins
///     it bit-for-bit);
///   * sharded (ShardEvents > 0): each lane × window fragment (via
///     trace/Window) is a task; per-lane reports merge deterministically
///     in shard order with indices translated back to the parent trace,
///     matching runDetectorWindowed exactly;
///   * var-sharded (VarShards > 0): each capture-capable lane splits into
///     a sequential clock pass plus per-variable check shards (see
///     detect/ShardedAccessHistory.h), parallelizing *within* one
///     detector while staying bit-identical to sequential runDetector —
///     unlike window sharding, no races are lost.
///
/// Ingestion can stream through pipeline/ChunkedReader (runFile), keeping
/// raw-byte memory bounded.
///
/// This class is the *batch engine* beneath the session API: new code
/// should open an api/AnalysisSession (or call analyzeTrace) with an
/// AnalysisConfig instead of wiring PipelineOptions by hand — the session
/// adds push ingestion and ingest/analysis overlap on top, and its
/// AnalysisResult supersedes PipelineResult/LaneResult's stringly errors.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_PIPELINE_PIPELINE_H
#define RAPID_PIPELINE_PIPELINE_H

#include "detect/DetectorRunner.h"
#include "detect/ShardedAccessHistory.h"
#include "obs/Metrics.h"

#include <string>
#include <vector>

namespace rapid {

/// Tuning for one pipeline instance.
struct PipelineOptions {
  /// Worker threads; 0 = ThreadPool::defaultConcurrency().
  unsigned NumThreads = 0;
  /// Events per shard; 0 = unsharded (each lane walks the whole trace,
  /// results bit-identical to sequential runDetector). Sharded runs have
  /// windowed-analysis semantics (see trace/Window).
  uint64_t ShardEvents = 0;
  /// Per-variable shards *inside* each lane (detect/ShardedAccessHistory):
  /// 0 = off; N >= 1 splits every capture-capable lane (HB, WCP) into a
  /// sequential clock pass plus N parallel per-variable check tasks, with
  /// results bit-identical to sequential runDetector for any N. Lanes
  /// whose detector cannot capture fall back to the sequential walk.
  /// Only applies to parallel, event-unsharded runs (ShardEvents == 0);
  /// windowed runs keep windowed semantics and ignore it.
  uint32_t VarShards = 0;
  /// Variable→shard assignment for var-sharded lanes: Modulo (default,
  /// stateless) or FrequencyBalanced (greedy bin-packing on the lane's
  /// captured access counts — balances skewed traces). Either strategy
  /// keeps reports bit-identical to sequential runs; only shard load
  /// changes.
  ShardStrategy VarShardStrategy = ShardStrategy::Modulo;
  /// When false, lanes run fused on the caller's thread: a single walk of
  /// the trace feeds every detector per event (N analyses, one walk).
  bool Parallel = true;
  /// When false, per-lane Telemetry blocks stay empty (Detector::telemetry
  /// is never called) — the batch engine's face of the obs/ disable knob.
  bool Metrics = true;
};

/// Per-lane outcome of a pipeline run, in lane registration order.
struct LaneResult {
  std::string DetectorName; ///< "WCP", or "WCP[w=1000]" when sharded.
  RaceReport Report;
  /// Aggregate analysis time of this lane's tasks (≈ CPU time; lanes run
  /// concurrently, so these sum to more than the run's wall clock). In
  /// fused mode the walk is shared and this is left at zero.
  double Seconds = 0;
  /// Set when a lane task threw (e.g. bad_alloc on a huge trace): the
  /// exception text, with the Report left partial/empty. Other lanes are
  /// unaffected — one detector blowing up must not sink the run.
  std::string Error;
  /// Detector-reported metric samples (Detector::telemetry, e.g. WCP's
  /// queue peaks), collected after the lane's walk. Empty in windowed
  /// runs (fresh detectors per shard) and when Options.Metrics is false.
  std::vector<MetricSample> Telemetry;
};

/// Outcome of one pipeline run.
struct PipelineResult {
  std::vector<LaneResult> Lanes;
  double Seconds = 0;       ///< Wall clock for the whole run.
  double IngestSeconds = 0; ///< runFile only: chunked ingestion time.
  uint64_t NumShards = 1;
  uint64_t VarShards = 0;   ///< Per-variable shards per lane (0 = off).
  uint64_t TasksStolen = 0; ///< Work-stealing telemetry.
  unsigned ThreadsUsed = 1;

  /// Sum of per-lane analysis seconds (the sequential-equivalent cost).
  double laneSecondsTotal() const;
};

/// A multi-detector, multi-threaded analysis pipeline.
class AnalysisPipeline {
public:
  explicit AnalysisPipeline(PipelineOptions Opts = {});

  /// Registers a detector lane. \p Name is used in results; when empty it
  /// is resolved from the first detector instance the factory produces.
  AnalysisPipeline &addDetector(DetectorFactory Make, std::string Name = "");

  unsigned numLanes() const { return static_cast<unsigned>(Lanes.size()); }
  const PipelineOptions &options() const { return Opts; }

  /// Analyzes \p T across all lanes. Lane results are deterministic: equal
  /// to sequential runDetector (unsharded) / runDetectorWindowed (sharded)
  /// regardless of thread count or scheduling.
  PipelineResult run(const Trace &T) const;

  /// Streams the trace at \p Path through the chunked reader, then
  /// analyzes it. On load failure returns an empty result with \p Error
  /// set. \p Loaded (optional) receives the ingested trace for reporting.
  PipelineResult runFile(const std::string &Path, std::string &Error,
                         Trace *Loaded = nullptr) const;

private:
  PipelineResult runParallel(const Trace &T) const;
  PipelineResult runFused(const Trace &T) const;
  /// The per-variable sharded lane mode (Opts.VarShards > 0): clock pass
  /// per lane, then a lane × variable-shard check-task grid, then a
  /// deterministic trace-order merge. Fills \p Result's lanes.
  void runVarShardedLanes(const Trace &T, unsigned NumThreads,
                          PipelineResult &Result) const;

  struct Lane {
    std::string Name;
    DetectorFactory Make;
  };

  PipelineOptions Opts;
  std::vector<Lane> Lanes;
};

} // namespace rapid

#endif // RAPID_PIPELINE_PIPELINE_H
