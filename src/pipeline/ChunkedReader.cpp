//===- pipeline/ChunkedReader.cpp ---------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/ChunkedReader.h"

#include "io/BinaryFormat.h"
#include "io/TextFormat.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

using namespace rapid;

ChunkedTraceReader::ChunkedTraceReader(const std::string &Path,
                                       ChunkedReaderOptions Opts)
    : Opts(Opts), Binary(hasTraceSuffix(Path, ".bin")) {
  if (this->Opts.ChunkBytes == 0)
    this->Opts.ChunkBytes = 1;
  if (this->Opts.MaxEventsPerChunk == 0)
    this->Opts.MaxEventsPerChunk = 1;
  if (Path == "-") {
    // stdin: text format through the buffered backend. Not seekable (no
    // size probe) and not ours to close. This is how `race_cli --stream -`
    // and FIFO redirections feed the session without a named file.
    File = stdin;
    OwnsFile = false;
    return;
  }
  if (this->Opts.UseMmap && Map.map(Path)) {
    // mmap backend: the whole file is addressable up front, zero-copy.
    // Eof from the start — there is nothing to refill.
    Mapped = true;
    Eof = true;
    FileSize = Map.size();
    TotalRead = Map.size();
    if (!Binary && FileSize > 0) {
      // Text lines run ~16-30 bytes ("T0|r(x)|L1" plus names); /16 lands
      // within ~2x of the true count either way, which converts the
      // append path's realloc cascade into at most one final doubling.
      Builder.reserve(FileSize / 16);
    }
    return;
  }
  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open '" + Path + "' for reading: " + std::strerror(errno);
    return;
  }
  // Regular files report their size, which bounds how much we ever
  // reserve; pipes and the like leave FileSize unknown.
  if (std::fseek(File, 0, SEEK_END) == 0) {
    long Size = std::ftell(File);
    if (Size >= 0)
      FileSize = static_cast<uint64_t>(Size);
  }
  std::fseek(File, 0, SEEK_SET);
}

ChunkedTraceReader::~ChunkedTraceReader() {
  if (File && OwnsFile)
    std::fclose(File);
}

Trace ChunkedTraceReader::take() {
  if (Binary) {
    Trace Out = std::move(BinTrace);
    BinTrace = Trace();
    return Out;
  }
  return Builder.take();
}

bool ChunkedTraceReader::refill() {
  if (Eof || !File) // The mmap backend is Eof by construction.
    return false;
  compactBuffer();
  size_t Old = Buf.size();
  Buf.resize(Old + Opts.ChunkBytes);
  size_t Got = std::fread(&Buf[Old], 1, Opts.ChunkBytes, File);
  Buf.resize(Old + Got);
  TotalRead += Got;
  if (Got < Opts.ChunkBytes) {
    if (std::ferror(File)) {
      Error = "read error";
      return false;
    }
    Eof = true;
  }
  return Got > 0;
}

void ChunkedTraceReader::compactBuffer() {
  // Drop the consumed prefix once it dominates the buffer, keeping refill
  // appends cheap without repeated front-erases. (Buffered backend only:
  // the mmap view is immutable and never refills.)
  if (Pos > 0 && (Pos >= Buf.size() || Pos >= Opts.ChunkBytes)) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
}

uint64_t ChunkedTraceReader::nextChunk() {
  if (done())
    return 0;
  uint64_t Got = Binary ? nextBinaryChunk() : nextTextChunk();
  Delivered += Got;
  return Got;
}

uint64_t ChunkedTraceReader::nextTextChunk() {
  uint64_t Appended = 0;
  while (Appended < Opts.MaxEventsPerChunk) {
    std::string_view V = view();
    size_t Nl = V.find('\n', Pos);
    if (Nl == std::string_view::npos) {
      if (!Eof) {
        if (refill())
          continue;
        if (!ok())
          return Appended;
      }
      // EOF: the remainder (if any) is one final unterminated line.
      V = view();
      if (Pos >= V.size()) {
        Done = true;
        return Appended;
      }
      Nl = V.size();
    }
    std::string_view Line(V.data() + Pos, Nl - Pos);
    Pos = Nl < V.size() ? Nl + 1 : Nl;
    ++LineNo;
    if (!trimTextTraceLine(Line))
      continue;
    std::string LineError;
    if (!parseTextTraceLine(Line, Builder, LineError)) {
      Error = "line " + std::to_string(LineNo) + ": " + LineError;
      Code = StatusCode::ParseError;
      return Appended;
    }
    ++Appended;
  }
  return Appended;
}

uint64_t ChunkedTraceReader::nextBinaryChunk() {
  // Phase 1: accumulate bytes until the variable-length header (name
  // tables + event count) decodes in one piece. Each failed attempt costs
  // a re-parse of the buffered prefix, so grow the buffer geometrically
  // between attempts to keep total header work linear.
  while (!HeaderParsed) {
    std::string_view Head = view().substr(Pos);
    size_t HeaderSize = 0;
    BinaryHeaderStatus S = parseBinaryHeader(Head, BinTrace, RemainingEvents,
                                             HeaderSize, Error);
    if (S == BinaryHeaderStatus::Error) {
      Code = StatusCode::ParseError;
      return 0;
    }
    if (S == BinaryHeaderStatus::Ok) {
      Pos += HeaderSize;
      HeaderParsed = true;
      // Bound the reservation by what the file can actually hold, so a
      // corrupt count cannot trigger a huge allocation.
      uint64_t Cap = RemainingEvents;
      if (FileSize != UINT64_MAX) {
        uint64_t Consumed = TotalRead - (view().size() - Pos);
        uint64_t BytesLeft = FileSize > Consumed ? FileSize - Consumed : 0;
        Cap = std::min<uint64_t>(Cap, BytesLeft / BinaryEventRecordSize);
      } else {
        Cap = std::min<uint64_t>(Cap, Opts.MaxEventsPerChunk);
      }
      BinTrace.reserve(Cap);
      break;
    }
    if (Eof) {
      // Match parseBinaryTrace's wording: a file too short to even carry
      // magic + version is "not a binary trace", not a truncated one.
      Error = TotalRead < 8 ? "not a rapidpp binary trace (bad magic)"
                            : "truncated binary trace";
      Code = StatusCode::ParseError;
      return 0;
    }
    size_t Target = std::max<size_t>(2 * Head.size(), Opts.ChunkBytes);
    while (!Eof && view().size() - Pos < Target)
      if (!refill() && !ok())
        return 0;
    if (!ok())
      return 0;
  }

  uint64_t Appended = 0;
  while (Appended < Opts.MaxEventsPerChunk && RemainingEvents > 0) {
    if (view().size() - Pos < BinaryEventRecordSize) {
      if (refill())
        continue;
      if (ok()) {
        Error = "truncated binary trace";
        Code = StatusCode::ParseError;
      }
      return Appended;
    }
    Event E;
    if (!decodeBinaryEvent(view().data() + Pos, BinTrace, E, Error)) {
      Error += " " + std::to_string(BinTrace.size());
      Code = StatusCode::ParseError;
      return Appended;
    }
    Pos += BinaryEventRecordSize;
    BinTrace.append(E);
    --RemainingEvents;
    ++Appended;
  }
  if (RemainingEvents == 0)
    Done = true; // Trailing bytes are ignored, as in parseBinaryTrace.
  return Appended;
}

TraceLoadResult rapid::loadTraceFileChunked(const std::string &Path,
                                            ChunkedReaderOptions Opts) {
  TraceLoadResult Result;
  ChunkedTraceReader Reader(Path, Opts);
  while (!Reader.done())
    Reader.nextChunk();
  if (!Reader.ok()) {
    Result.Error = Reader.error();
    Result.Code = Reader.status().Code;
    return Result;
  }
  Result.Ok = true;
  Result.T = Reader.take();
  return Result;
}
