//===- pipeline/ChunkedReader.h - Streaming trace ingestion -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming ingestion for the analysis pipeline. Two byte-source
/// backends sit behind one parse loop:
///
///   mmap     regular files are memory-mapped (io/MappedFile) and parsed
///            zero-copy straight out of the page cache — no refill
///            buffer, no fread copies, and the OS manages residency on
///            multi-hundred-million-event traces. Selected automatically
///            when the path names a regular file (and UseMmap is on).
///   buffered pipes, sockets and mmap-less platforms read in bounded
///            chunks through a refill buffer, so only one chunk of raw
///            bytes is resident at a time.
///
/// Either way events are still delivered in bounded batches (nextChunk),
/// which is what the streaming session keys its publication rounds off.
///
/// Format dispatch matches io/TraceFile (".bin" in any letter case →
/// binary, otherwise text) and reuses the codecs' incremental entry points
/// (parseTextTraceLine, parseBinaryHeader/decodeBinaryEvent), so the two
/// paths cannot drift. The reader is pull-based: each nextChunk() call
/// appends a bounded batch of events to the trace under construction —
/// the seam the ingest-while-analyzing session plugs into.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_PIPELINE_CHUNKEDREADER_H
#define RAPID_PIPELINE_CHUNKEDREADER_H

#include "io/MappedFile.h"
#include "io/TraceFile.h"
#include "support/Status.h"
#include "trace/TraceBuilder.h"

#include <cstdio>
#include <string>
#include <string_view>

namespace rapid {

/// Tuning knobs for the chunked reader.
struct ChunkedReaderOptions {
  /// Raw bytes read from disk per refill (buffered backend only).
  size_t ChunkBytes = 1 << 20;
  /// Upper bound on events appended per nextChunk() call.
  uint64_t MaxEventsPerChunk = 64 * 1024;
  /// Memory-map regular files and parse zero-copy (the default). Off
  /// forces the buffered backend — tests pin both paths byte-for-byte.
  bool UseMmap = true;
};

/// Pull-based streaming reader for one trace file.
class ChunkedTraceReader {
public:
  explicit ChunkedTraceReader(const std::string &Path,
                              ChunkedReaderOptions Opts = {});
  ~ChunkedTraceReader();

  ChunkedTraceReader(const ChunkedTraceReader &) = delete;
  ChunkedTraceReader &operator=(const ChunkedTraceReader &) = delete;

  /// False once an IO or parse error has occurred; error() explains.
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  /// Structured view of the failure: IoError for open/read problems,
  /// ParseError for malformed bytes, Ok while healthy.
  Status status() const {
    return ok() ? Status::success() : Status(Code, Error);
  }

  /// True when the file is fully consumed (or an error stopped progress).
  bool done() const { return Done || !ok(); }

  /// True once every id that any future event may reference is already
  /// interned in current()'s tables. Binary headers carry all name tables
  /// up front, so this holds right after the header parses; text traces
  /// intern lazily, so it only holds at the end. The streaming session
  /// keys overlapped analysis off this: stable tables mean detectors can
  /// be constructed against a growing trace without ever restarting.
  bool tablesComplete() const { return Done || (Binary && HeaderParsed); }

  /// Parses the next batch of at most MaxEventsPerChunk events, appending
  /// them to the trace under construction. Returns the number of events
  /// appended; 0 means EOF or error.
  uint64_t nextChunk();

  /// The trace built so far (tables may still grow for text inputs;
  /// binary headers carry all tables up front).
  const Trace &current() const {
    return Binary ? BinTrace : Builder.current();
  }

  /// Total events delivered so far.
  uint64_t eventsDelivered() const { return Delivered; }

  /// True when the file was memory-mapped (regular file, UseMmap on):
  /// parsing runs zero-copy over the mapping.
  bool mapped() const { return Mapped; }

  /// Finalizes and returns the trace; call after done().
  Trace take();

private:
  bool refill();            ///< Reads more bytes; false at EOF.
  uint64_t nextTextChunk();
  uint64_t nextBinaryChunk();
  void compactBuffer();
  /// The live unconsumed byte window: the whole mapping (mmap backend) or
  /// the refill buffer (buffered backend); [Pos, view().size()) is live.
  std::string_view view() const {
    return Mapped ? std::string_view(Map.data(), Map.size())
                  : std::string_view(Buf);
  }

  ChunkedReaderOptions Opts;
  std::FILE *File = nullptr;
  bool OwnsFile = true; ///< False for stdin ("-"): never fclose'd.
  MappedFile Map;       ///< mmap backend; valid when Mapped.
  bool Mapped = false;
  bool Binary = false;
  bool Eof = false;  ///< Underlying file exhausted.
  bool Done = false; ///< Eof and buffer drained.
  std::string Error;
  StatusCode Code = StatusCode::IoError; ///< Classification when Error set.
  uint64_t FileSize = UINT64_MAX; ///< From fseek/ftell; MAX if unknown.
  uint64_t TotalRead = 0;         ///< Raw bytes consumed from the file.

  std::string Buf; ///< Buffered backend's refill buffer.
  size_t Pos = 0;  ///< First unconsumed byte of view().

  TraceBuilder Builder; ///< Text: interning appender.
  Trace BinTrace;       ///< Binary: events appended directly.
  uint64_t Delivered = 0;
  uint64_t LineNo = 0; ///< Text: lines consumed (for diagnostics).

  bool HeaderParsed = false; ///< Binary: container header decoded.
  uint64_t RemainingEvents = 0; ///< Binary: records left per the header.
};

/// Convenience wrapper: loads the whole file through the chunked reader.
/// Behaviorally equivalent to loadTraceFile, with bounded raw-byte memory.
TraceLoadResult loadTraceFileChunked(const std::string &Path,
                                     ChunkedReaderOptions Opts = {});

} // namespace rapid

#endif // RAPID_PIPELINE_CHUNKEDREADER_H
