//===- pipeline/ChunkedReader.h - Streaming trace ingestion -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming ingestion for the analysis pipeline: reads a trace file in
/// bounded chunks instead of slurping the whole byte stream the way
/// io/TraceFile does. Only one chunk of raw bytes is resident at a time,
/// so peak memory for an N-event file drops from (file size + trace size)
/// to (chunk size + trace size) — the difference is the whole file for the
/// multi-hundred-million-event traces the paper targets.
///
/// Format dispatch matches io/TraceFile (".bin" in any letter case →
/// binary, otherwise text) and reuses the codecs' incremental entry points
/// (parseTextTraceLine, parseBinaryHeader/decodeBinaryEvent), so the two
/// paths cannot drift. The reader is pull-based: each nextChunk() call
/// appends a bounded batch of events to the trace under construction,
/// which is the seam a future ingest-while-analyzing mode will plug into.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_PIPELINE_CHUNKEDREADER_H
#define RAPID_PIPELINE_CHUNKEDREADER_H

#include "io/TraceFile.h"
#include "support/Status.h"
#include "trace/TraceBuilder.h"

#include <cstdio>
#include <string>

namespace rapid {

/// Tuning knobs for the chunked reader.
struct ChunkedReaderOptions {
  /// Raw bytes read from disk per refill.
  size_t ChunkBytes = 1 << 20;
  /// Upper bound on events appended per nextChunk() call.
  uint64_t MaxEventsPerChunk = 64 * 1024;
};

/// Pull-based streaming reader for one trace file.
class ChunkedTraceReader {
public:
  explicit ChunkedTraceReader(const std::string &Path,
                              ChunkedReaderOptions Opts = {});
  ~ChunkedTraceReader();

  ChunkedTraceReader(const ChunkedTraceReader &) = delete;
  ChunkedTraceReader &operator=(const ChunkedTraceReader &) = delete;

  /// False once an IO or parse error has occurred; error() explains.
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  /// Structured view of the failure: IoError for open/read problems,
  /// ParseError for malformed bytes, Ok while healthy.
  Status status() const {
    return ok() ? Status::success() : Status(Code, Error);
  }

  /// True when the file is fully consumed (or an error stopped progress).
  bool done() const { return Done || !ok(); }

  /// True once every id that any future event may reference is already
  /// interned in current()'s tables. Binary headers carry all name tables
  /// up front, so this holds right after the header parses; text traces
  /// intern lazily, so it only holds at the end. The streaming session
  /// keys overlapped analysis off this: stable tables mean detectors can
  /// be constructed against a growing trace without ever restarting.
  bool tablesComplete() const { return Done || (Binary && HeaderParsed); }

  /// Parses the next batch of at most MaxEventsPerChunk events, appending
  /// them to the trace under construction. Returns the number of events
  /// appended; 0 means EOF or error.
  uint64_t nextChunk();

  /// The trace built so far (tables may still grow for text inputs;
  /// binary headers carry all tables up front).
  const Trace &current() const {
    return Binary ? BinTrace : Builder.current();
  }

  /// Total events delivered so far.
  uint64_t eventsDelivered() const { return Delivered; }

  /// Finalizes and returns the trace; call after done().
  Trace take();

private:
  bool refill();            ///< Reads more bytes; false at EOF.
  uint64_t nextTextChunk();
  uint64_t nextBinaryChunk();
  void compactBuffer();

  ChunkedReaderOptions Opts;
  std::FILE *File = nullptr;
  bool Binary = false;
  bool Eof = false;  ///< Underlying file exhausted.
  bool Done = false; ///< Eof and buffer drained.
  std::string Error;
  StatusCode Code = StatusCode::IoError; ///< Classification when Error set.
  uint64_t FileSize = UINT64_MAX; ///< From fseek/ftell; MAX if unknown.
  uint64_t TotalRead = 0;         ///< Raw bytes consumed from the file.

  std::string Buf; ///< Unconsumed bytes; [Pos, Buf.size()) is live.
  size_t Pos = 0;

  TraceBuilder Builder; ///< Text: interning appender.
  Trace BinTrace;       ///< Binary: events appended directly.
  uint64_t Delivered = 0;
  uint64_t LineNo = 0; ///< Text: lines consumed (for diagnostics).

  bool HeaderParsed = false; ///< Binary: container header decoded.
  uint64_t RemainingEvents = 0; ///< Binary: records left per the header.
};

/// Convenience wrapper: loads the whole file through the chunked reader.
/// Behaviorally equivalent to loadTraceFile, with bounded raw-byte memory.
TraceLoadResult loadTraceFileChunked(const std::string &Path,
                                     ChunkedReaderOptions Opts = {});

} // namespace rapid

#endif // RAPID_PIPELINE_CHUNKEDREADER_H
