//===- vc/VectorClock.h - Vector times (paper §3.1) -------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector times as defined in §3.1 of the paper: a map Tid -> Nat with
/// pointwise comparison (⊑), pointwise-maximum join (⊔), component
/// assignment V[t := n], and the ⊥ time mapping every thread to 0.
///
/// The representation is a flat array with *implicit-zero extension*: a
/// clock conceptually maps every thread id to a value, and components at
/// or beyond the physical size read as 0. All operations are legal across
/// clocks of different physical sizes — join grows the receiver only as
/// far as the argument's physical size, comparison treats missing tails
/// as ⊥, assignment grows on demand (a zero assignment past the end is a
/// no-op), and equality is semantic (trailing zeros are invisible).
///
/// This is what lets detector state grow mid-stream: a detector built
/// against a trace prefix with fewer threads keeps analyzing, bit-for-bit
/// with a detector built against the final tables, because every clock it
/// owns behaves as if it had always been wide enough. Batch runs size
/// their clocks up front (the trace header records the counts) and never
/// hit the growth paths, so the hot loop still does no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VC_VECTORCLOCK_H
#define RAPID_VC_VECTORCLOCK_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rapid {

/// A single component of a vector time: the local time of one thread.
using ClockValue = uint32_t;

/// Vector time over an open-ended set of threads (paper §3.1): components
/// beyond the physical size are implicitly 0.
class VectorClock {
public:
  /// The ⊥ clock, physically sized for \p NumThreads threads (all
  /// components zero; the size is a capacity hint, not a semantic bound).
  explicit VectorClock(uint32_t NumThreads = 0) : Values(NumThreads, 0) {}

  /// Physical size: the number of explicitly stored components.
  uint32_t size() const { return static_cast<uint32_t>(Values.size()); }

  /// Component read: V(t). Components past the physical size are 0.
  ClockValue get(ThreadId T) const {
    return T.value() < Values.size() ? Values[T.value()] : 0;
  }

  /// Component assignment: V[t := n]. Grows the physical representation on
  /// demand; assigning 0 past the end is the identity.
  void set(ThreadId T, ClockValue N) {
    if (T.value() >= Values.size()) {
      if (N == 0)
        return;
      Values.resize(T.value() + 1, 0);
    }
    Values[T.value()] = N;
  }

  /// Pointwise maximum: *this := *this ⊔ Other. Grows to Other's physical
  /// size when Other is wider. Returns true iff any component changed —
  /// the hook detectors use to keep their clock epochs (and with them the
  /// ClockBroadcast snapshot dedup) precise without a content compare.
  bool joinWith(const VectorClock &Other);

  /// Pointwise comparison: *this ⊑ Other, with implicit-zero tails.
  bool lessOrEqual(const VectorClock &Other) const;

  /// Resets every component to zero (⊥). Keeps the physical capacity.
  void clear();

  /// Semantic equality: equal on every thread id, so physical sizes may
  /// differ as long as the longer tail is all zeros.
  bool operator==(const VectorClock &Other) const;
  bool operator!=(const VectorClock &Other) const {
    return !(*this == Other);
  }

  /// Renders as "[3, 0, 1]" for diagnostics (physical components only).
  std::string str() const;

  /// Direct access for the hot loops (DetectorRunner, queues). Only the
  /// physical components are addressable.
  const ClockValue *data() const { return Values.data(); }
  ClockValue *data() { return Values.data(); }

private:
  std::vector<ClockValue> Values;
};

/// Returns A ⊔ B as a fresh clock.
VectorClock join(const VectorClock &A, const VectorClock &B);

} // namespace rapid

#endif // RAPID_VC_VECTORCLOCK_H
