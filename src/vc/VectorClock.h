//===- vc/VectorClock.h - Vector times (paper §3.1) -------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector times as defined in §3.1 of the paper: a map Tid -> Nat with
/// pointwise comparison (⊑), pointwise-maximum join (⊔), component
/// assignment V[t := n], and the ⊥ time mapping every thread to 0.
///
/// The representation is a flat array sized to the number of threads in the
/// trace, which is known up front (the trace header records it). All
/// detectors allocate their clocks at construction, so the hot loop does no
/// allocation.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VC_VECTORCLOCK_H
#define RAPID_VC_VECTORCLOCK_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rapid {

/// A single component of a vector time: the local time of one thread.
using ClockValue = uint32_t;

/// Vector time over a fixed set of threads (paper §3.1).
class VectorClock {
public:
  /// The ⊥ clock over \p NumThreads threads (all components zero).
  explicit VectorClock(uint32_t NumThreads = 0) : Values(NumThreads, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(Values.size()); }

  /// Component read: V(t).
  ClockValue get(ThreadId T) const {
    assert(T.value() < Values.size() && "thread out of range");
    return Values[T.value()];
  }

  /// Component assignment: V[t := n].
  void set(ThreadId T, ClockValue N) {
    assert(T.value() < Values.size() && "thread out of range");
    Values[T.value()] = N;
  }

  /// Pointwise maximum: *this := *this ⊔ Other.
  void joinWith(const VectorClock &Other);

  /// Pointwise comparison: *this ⊑ Other.
  bool lessOrEqual(const VectorClock &Other) const;

  /// Resets every component to zero (⊥).
  void clear();

  /// Exact equality of all components.
  bool operator==(const VectorClock &Other) const {
    return Values == Other.Values;
  }
  bool operator!=(const VectorClock &Other) const {
    return !(*this == Other);
  }

  /// Renders as "[3, 0, 1]" for diagnostics.
  std::string str() const;

  /// Direct access for the hot loops (DetectorRunner, queues).
  const ClockValue *data() const { return Values.data(); }
  ClockValue *data() { return Values.data(); }

private:
  std::vector<ClockValue> Values;
};

/// Returns A ⊔ B as a fresh clock.
VectorClock join(const VectorClock &A, const VectorClock &B);

} // namespace rapid

#endif // RAPID_VC_VECTORCLOCK_H
