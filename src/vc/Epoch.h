//===- vc/Epoch.h - FastTrack-style epochs ----------------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An epoch c@t is a scalar clock value paired with the thread that owns
/// it. FastTrack [14] observed that most variable access histories are
/// totally ordered, so a single epoch usually suffices in place of a full
/// vector clock. The paper lists "epoch based optimizations" as future
/// work for WCP; we implement them for the HB detector (FastTrackDetector)
/// as the corresponding extension.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_VC_EPOCH_H
#define RAPID_VC_EPOCH_H

#include "support/Ids.h"
#include "vc/VectorClock.h"

namespace rapid {

/// A scalar clock value owned by one thread: c@t.
struct Epoch {
  ClockValue Clock = 0;
  ThreadId Thread;

  constexpr Epoch() = default;
  constexpr Epoch(ClockValue Clock, ThreadId Thread)
      : Clock(Clock), Thread(Thread) {}

  /// The "empty" epoch 0@invalid, ⊑ every clock.
  static constexpr Epoch none() { return Epoch(); }

  bool isNone() const { return Clock == 0 && !Thread.isValid(); }

  /// Epoch order: c@t ⊑ V iff c <= V(t). The none() epoch is ⊑ anything.
  bool lessOrEqual(const VectorClock &V) const {
    if (isNone())
      return true;
    return Clock <= V.get(Thread);
  }

  bool operator==(const Epoch &O) const {
    return Clock == O.Clock && Thread == O.Thread;
  }
};

} // namespace rapid

#endif // RAPID_VC_EPOCH_H
