//===- vc/VectorClock.cpp ---------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/VectorClock.h"

#include <algorithm>

using namespace rapid;

bool VectorClock::joinWith(const VectorClock &Other) {
  // Components beyond Other's physical size are 0 in Other, so only the
  // overlap needs the max; beyond our own size we adopt Other's values.
  if (Other.Values.size() > Values.size())
    Values.resize(Other.Values.size(), 0);
  const ClockValue *Src = Other.Values.data();
  ClockValue *Dst = Values.data();
  bool Changed = false;
  for (size_t I = 0, E = Other.Values.size(); I != E; ++I) {
    if (Src[I] > Dst[I]) {
      Dst[I] = Src[I];
      Changed = true;
    }
  }
  return Changed;
}

bool VectorClock::lessOrEqual(const VectorClock &Other) const {
  const ClockValue *A = Values.data();
  const ClockValue *B = Other.Values.data();
  const size_t Mine = Values.size();
  const size_t Common = std::min(Mine, Other.Values.size());
  for (size_t I = 0; I != Common; ++I)
    if (A[I] > B[I])
      return false;
  // Our tail past Other's physical size compares against implicit zeros.
  for (size_t I = Common; I != Mine; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

bool VectorClock::operator==(const VectorClock &Other) const {
  const ClockValue *A = Values.data();
  const ClockValue *B = Other.Values.data();
  const size_t Common = std::min(Values.size(), Other.Values.size());
  for (size_t I = 0; I != Common; ++I)
    if (A[I] != B[I])
      return false;
  for (size_t I = Common, E = Values.size(); I < E; ++I)
    if (A[I] != 0)
      return false;
  for (size_t I = Common, E = Other.Values.size(); I < E; ++I)
    if (B[I] != 0)
      return false;
  return true;
}

void VectorClock::clear() {
  std::fill(Values.begin(), Values.end(), 0);
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(Values[I]);
  }
  Out += "]";
  return Out;
}

VectorClock rapid::join(const VectorClock &A, const VectorClock &B) {
  VectorClock Result = A;
  Result.joinWith(B);
  return Result;
}
