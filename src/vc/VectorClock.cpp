//===- vc/VectorClock.cpp ---------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/VectorClock.h"

#include <algorithm>

using namespace rapid;

void VectorClock::joinWith(const VectorClock &Other) {
  assert(Values.size() == Other.Values.size() && "clock size mismatch");
  const ClockValue *Src = Other.Values.data();
  ClockValue *Dst = Values.data();
  for (size_t I = 0, E = Values.size(); I != E; ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

bool VectorClock::lessOrEqual(const VectorClock &Other) const {
  assert(Values.size() == Other.Values.size() && "clock size mismatch");
  const ClockValue *A = Values.data();
  const ClockValue *B = Other.Values.data();
  for (size_t I = 0, E = Values.size(); I != E; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

void VectorClock::clear() {
  std::fill(Values.begin(), Values.end(), 0);
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(Values[I]);
  }
  Out += "]";
  return Out;
}

VectorClock rapid::join(const VectorClock &A, const VectorClock &B) {
  VectorClock Result = A;
  Result.joinWith(B);
  return Result;
}
