//===- io/MappedFile.h - Read-only POSIX file mapping -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only memory mapping of a regular file. The ingestion ROADMAP
/// item this serves: the chunked reader bounds heap bytes by copying the
/// file through a refill buffer; mapping the file instead drops that copy
/// entirely and lets the OS manage residency on multi-hundred-million-
/// event traces (pages stream through the cache under MADV_SEQUENTIAL).
///
/// map() only succeeds for regular files on platforms with POSIX mmap —
/// pipes, sockets, ttys and exotic platforms report failure and callers
/// (pipeline/ChunkedReader) fall back to buffered reads, so the selection
/// is automatic and loss-free.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_MAPPEDFILE_H
#define RAPID_IO_MAPPEDFILE_H

#include <cstddef>
#include <string>

namespace rapid {

/// RAII read-only mapping of one regular file.
class MappedFile {
public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  /// Maps the regular file at \p Path read-only. Returns false — leaving
  /// the object unmapped — when \p Path does not name a regular file, the
  /// platform has no mmap, or the mapping fails; callers then fall back
  /// to buffered reads. Empty regular files "map" successfully to a
  /// zero-length view (no mmap syscall; mapping nothing is trivially
  /// done).
  bool map(const std::string &Path);

  /// Unmaps; safe to call repeatedly.
  void reset();

  bool mapped() const { return Ok; }
  const char *data() const { return Data; }
  size_t size() const { return Size; }

private:
  const char *Data = nullptr;
  size_t Size = 0;
  bool Ok = false;
};

} // namespace rapid

#endif // RAPID_IO_MAPPEDFILE_H
