//===- io/MappedFile.cpp ------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/MappedFile.h"

#if defined(__unix__) || defined(__APPLE__)
#define RAPID_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace rapid;

bool MappedFile::map(const std::string &Path) {
  reset();
#if RAPID_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return false; // Pipes and friends keep the buffered path.
  }
  if (St.st_size == 0) {
    // mmap of length 0 is EINVAL; an empty view is the correct mapping.
    ::close(Fd);
    Ok = true;
    return true;
  }
  void *Mem = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                     MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping outlives the descriptor.
  if (Mem == MAP_FAILED)
    return false;
  Data = static_cast<const char *>(Mem);
  Size = static_cast<size_t>(St.st_size);
  Ok = true;
#ifdef MADV_SEQUENTIAL
  // Traces parse front to back; tell the pager so read-ahead is aggressive
  // and consumed pages are cheap to evict. Best-effort.
  ::madvise(Mem, Size, MADV_SEQUENTIAL);
#endif
  return true;
#else
  (void)Path;
  return false;
#endif
}

void MappedFile::reset() {
#if RAPID_HAVE_MMAP
  if (Data)
    ::munmap(const_cast<char *>(Data), Size);
#endif
  Data = nullptr;
  Size = 0;
  Ok = false;
}
