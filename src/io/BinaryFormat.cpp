//===- io/BinaryFormat.cpp ----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/BinaryFormat.h"

#include <algorithm>
#include <cstring>

using namespace rapid;

static const char Magic[4] = {'R', 'P', 'T', 'B'};
static constexpr uint32_t Version = 1;

namespace {

struct Writer {
  std::string Out;

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { Out.append(reinterpret_cast<char *>(&V), 4); }
  void u64(uint64_t V) { Out.append(reinterpret_cast<char *>(&V), 8); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }
  void table(const StringInterner &I) {
    u32(I.size());
    for (uint32_t K = 0; K < I.size(); ++K)
      str(I.name(K));
  }
};

struct Reader {
  std::string_view In;
  size_t Pos = 0;
  bool Failed = false;

  bool have(size_t N) {
    if (Pos + N > In.size()) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!have(1))
      return 0;
    return static_cast<uint8_t>(In[Pos++]);
  }
  uint32_t u32() {
    if (!have(4))
      return 0;
    uint32_t V;
    std::memcpy(&V, In.data() + Pos, 4);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!have(8))
      return 0;
    uint64_t V;
    std::memcpy(&V, In.data() + Pos, 8);
    Pos += 8;
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!have(N))
      return {};
    std::string S(In.substr(Pos, N));
    Pos += N;
    return S;
  }
  void table(StringInterner &I) {
    uint32_t N = u32();
    for (uint32_t K = 0; K < N && !Failed; ++K)
      I.intern(str());
  }
};

} // namespace

std::string rapid::writeBinaryTrace(const Trace &T) {
  Writer W;
  W.Out.append(Magic, 4);
  W.u32(Version);
  W.table(T.threadTable());
  W.table(T.lockTable());
  W.table(T.varTable());
  W.table(T.locTable());
  W.u64(T.size());
  for (const Event &E : T.events()) {
    W.u8(static_cast<uint8_t>(E.Kind));
    W.u32(E.Thread.value());
    W.u32(E.Target);
    W.u32(E.Loc.value());
  }
  return std::move(W.Out);
}

BinaryHeaderStatus rapid::parseBinaryHeader(std::string_view Bytes, Trace &T,
                                            uint64_t &EventCount,
                                            size_t &HeaderSize,
                                            std::string &Error) {
  if (Bytes.size() < 4) {
    // Can't even check the magic yet — but reject what's there already.
    if (!Bytes.empty() &&
        std::memcmp(Bytes.data(), Magic, Bytes.size()) != 0) {
      Error = "not a rapidpp binary trace (bad magic)";
      return BinaryHeaderStatus::Error;
    }
    return BinaryHeaderStatus::NeedMoreData;
  }
  if (std::memcmp(Bytes.data(), Magic, 4) != 0) {
    Error = "not a rapidpp binary trace (bad magic)";
    return BinaryHeaderStatus::Error;
  }
  Reader R{Bytes, 4};
  uint32_t V = R.u32();
  if (R.Failed)
    return BinaryHeaderStatus::NeedMoreData;
  if (V != Version) {
    Error = "unsupported binary trace version " + std::to_string(V);
    return BinaryHeaderStatus::Error;
  }
  // Tables intern directly into T, so parse into a scratch trace first and
  // only commit once the whole header (including the count) is present.
  Trace Scratch;
  R.table(Scratch.threadTable());
  R.table(Scratch.lockTable());
  R.table(Scratch.varTable());
  R.table(Scratch.locTable());
  uint64_t Count = R.u64();
  if (R.Failed)
    return BinaryHeaderStatus::NeedMoreData;
  T.adoptTables(Scratch);
  EventCount = Count;
  HeaderSize = R.Pos;
  return BinaryHeaderStatus::Ok;
}

bool rapid::decodeBinaryEvent(const char *Bytes, const Trace &T, Event &E,
                              std::string &Error) {
  uint8_t Kind = static_cast<uint8_t>(Bytes[0]);
  uint32_t Thread, Target, Loc;
  std::memcpy(&Thread, Bytes + 1, 4);
  std::memcpy(&Target, Bytes + 5, 4);
  std::memcpy(&Loc, Bytes + 9, 4);
  if (Kind > static_cast<uint8_t>(EventKind::Join) ||
      Thread >= T.numThreads() || Loc >= T.numLocs()) {
    Error = "corrupt event record";
    return false;
  }
  E = Event(static_cast<EventKind>(Kind), ThreadId(Thread), Target,
            LocId(Loc));
  return true;
}

BinaryParseResult rapid::parseBinaryTrace(const std::string &Bytes) {
  BinaryParseResult Result;
  uint64_t Count = 0;
  size_t Pos = 0;
  BinaryHeaderStatus S =
      parseBinaryHeader(Bytes, Result.T, Count, Pos, Result.Error);
  if (S == BinaryHeaderStatus::NeedMoreData) {
    Result.Error = Bytes.size() < 8 && Result.Error.empty()
                       ? "not a rapidpp binary trace (bad magic)"
                       : "truncated binary trace";
    return Result;
  }
  if (S == BinaryHeaderStatus::Error)
    return Result;
  // The count is attacker-controlled until records are decoded; reserve no
  // more than the bytes present can deliver so corrupt files fail with an
  // error instead of an allocation throw.
  Result.T.reserve(std::min<uint64_t>(
      Count, (Bytes.size() - Pos) / BinaryEventRecordSize));
  for (uint64_t I = 0; I < Count; ++I, Pos += BinaryEventRecordSize) {
    if (Pos + BinaryEventRecordSize > Bytes.size()) {
      Result.Error = "truncated binary trace";
      return Result;
    }
    Event E;
    if (!decodeBinaryEvent(Bytes.data() + Pos, Result.T, E, Result.Error)) {
      Result.Error += " " + std::to_string(I);
      return Result;
    }
    Result.T.append(E);
  }
  Result.Ok = true;
  return Result;
}
