//===- io/BinaryFormat.cpp ----------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/BinaryFormat.h"

#include <cstring>

using namespace rapid;

static const char Magic[4] = {'R', 'P', 'T', 'B'};
static constexpr uint32_t Version = 1;

namespace {

struct Writer {
  std::string Out;

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { Out.append(reinterpret_cast<char *>(&V), 4); }
  void u64(uint64_t V) { Out.append(reinterpret_cast<char *>(&V), 8); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }
  void table(const StringInterner &I) {
    u32(I.size());
    for (uint32_t K = 0; K < I.size(); ++K)
      str(I.name(K));
  }
};

struct Reader {
  const std::string &In;
  size_t Pos = 0;
  bool Failed = false;

  bool have(size_t N) {
    if (Pos + N > In.size()) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!have(1))
      return 0;
    return static_cast<uint8_t>(In[Pos++]);
  }
  uint32_t u32() {
    if (!have(4))
      return 0;
    uint32_t V;
    std::memcpy(&V, In.data() + Pos, 4);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!have(8))
      return 0;
    uint64_t V;
    std::memcpy(&V, In.data() + Pos, 8);
    Pos += 8;
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!have(N))
      return {};
    std::string S = In.substr(Pos, N);
    Pos += N;
    return S;
  }
  void table(StringInterner &I) {
    uint32_t N = u32();
    for (uint32_t K = 0; K < N && !Failed; ++K)
      I.intern(str());
  }
};

} // namespace

std::string rapid::writeBinaryTrace(const Trace &T) {
  Writer W;
  W.Out.append(Magic, 4);
  W.u32(Version);
  W.table(T.threadTable());
  W.table(T.lockTable());
  W.table(T.varTable());
  W.table(T.locTable());
  W.u64(T.size());
  for (const Event &E : T.events()) {
    W.u8(static_cast<uint8_t>(E.Kind));
    W.u32(E.Thread.value());
    W.u32(E.Target);
    W.u32(E.Loc.value());
  }
  return std::move(W.Out);
}

BinaryParseResult rapid::parseBinaryTrace(const std::string &Bytes) {
  BinaryParseResult Result;
  if (Bytes.size() < 8 || std::memcmp(Bytes.data(), Magic, 4) != 0) {
    Result.Error = "not a rapidpp binary trace (bad magic)";
    return Result;
  }
  Reader R{Bytes, 4};
  uint32_t V = R.u32();
  if (V != Version) {
    Result.Error = "unsupported binary trace version " + std::to_string(V);
    return Result;
  }
  R.table(Result.T.threadTable());
  R.table(Result.T.lockTable());
  R.table(Result.T.varTable());
  R.table(Result.T.locTable());
  uint64_t Count = R.u64();
  Result.T.reserve(Count);
  for (uint64_t I = 0; I < Count && !R.Failed; ++I) {
    uint8_t Kind = R.u8();
    uint32_t Thread = R.u32();
    uint32_t Target = R.u32();
    uint32_t Loc = R.u32();
    if (Kind > static_cast<uint8_t>(EventKind::Join) ||
        Thread >= Result.T.numThreads() || Loc >= Result.T.numLocs()) {
      Result.Error = "corrupt event record " + std::to_string(I);
      return Result;
    }
    Result.T.append(Event(static_cast<EventKind>(Kind), ThreadId(Thread),
                          Target, LocId(Loc)));
  }
  if (R.Failed) {
    Result.Error = "truncated binary trace";
    return Result;
  }
  Result.Ok = true;
  return Result;
}
