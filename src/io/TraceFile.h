//===- io/TraceFile.h - Load/save traces by file path -----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File-level entry points: dispatches to the text or binary codec by
/// extension (".bin" in any letter case → binary, anything else → text)
/// and reports IO and parse errors — including the OS errno text for
/// open failures — without throwing.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_TRACEFILE_H
#define RAPID_IO_TRACEFILE_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <string>

namespace rapid {

/// Result of loading a trace file. `Ok`/`Error` are the legacy fields;
/// `Code` additionally classifies failures (IoError for open/read
/// problems, ParseError for malformed bytes) so the session API can
/// surface structured statuses without re-parsing message text.
struct TraceLoadResult {
  bool Ok = false;
  StatusCode Code = StatusCode::Ok;
  std::string Error;
  Trace T;

  /// The structured view of Ok/Code/Error.
  Status status() const {
    if (Ok)
      return Status::success();
    return Status(Code == StatusCode::Ok ? StatusCode::IoError : Code, Error);
  }
};

/// Loads the trace at \p Path.
TraceLoadResult loadTraceFile(const std::string &Path);

/// Saves \p T at \p Path; returns an empty string on success, otherwise
/// the error message.
std::string saveTraceFile(const Trace &T, const std::string &Path);

/// True iff \p S ends with \p Suffix, compared case-insensitively (so
/// ".bin", ".BIN" and ".Bin" all select the binary codec). Shared with the
/// chunked reader in pipeline/.
bool hasTraceSuffix(const std::string &S, const char *Suffix);

} // namespace rapid

#endif // RAPID_IO_TRACEFILE_H
