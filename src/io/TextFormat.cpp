//===- io/TextFormat.cpp ------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/TextFormat.h"

#include "trace/TraceBuilder.h"

using namespace rapid;

bool rapid::trimTextTraceLine(std::string_view &Line) {
  // Trim trailing carriage return and surrounding spaces.
  while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
    Line.remove_suffix(1);
  while (!Line.empty() && Line.front() == ' ')
    Line.remove_prefix(1);
  return !Line.empty() && Line.front() != '#';
}

bool rapid::parseTextTraceLine(std::string_view Line, TraceBuilder &Builder,
                               std::string &Error) {
  auto fail = [&](const std::string &Msg) {
    Error = Msg;
    return false;
  };

  // Split into at most three '|'-separated fields.
  size_t Bar1 = Line.find('|');
  if (Bar1 == std::string_view::npos)
    return fail("expected '<thread>|<op>(<target>)[|<loc>]'");
  size_t Bar2 = Line.find('|', Bar1 + 1);
  std::string_view Thread = Line.substr(0, Bar1);
  std::string_view Op = Bar2 == std::string_view::npos
                            ? Line.substr(Bar1 + 1)
                            : Line.substr(Bar1 + 1, Bar2 - Bar1 - 1);
  std::string_view Loc =
      Bar2 == std::string_view::npos ? std::string_view() : Line.substr(Bar2 + 1);
  if (Thread.empty())
    return fail("empty thread name");

  size_t Paren = Op.find('(');
  if (Paren == std::string_view::npos || Op.back() != ')')
    return fail("operation must look like op(target)");
  std::string_view Name = Op.substr(0, Paren);
  std::string_view Target = Op.substr(Paren + 1, Op.size() - Paren - 2);
  if (Target.empty())
    return fail("empty operation target");

  if (Name == "r")
    Builder.read(Thread, Target, Loc);
  else if (Name == "w")
    Builder.write(Thread, Target, Loc);
  else if (Name == "acq")
    Builder.acquire(Thread, Target, Loc);
  else if (Name == "rel")
    Builder.release(Thread, Target, Loc);
  else if (Name == "fork")
    Builder.fork(Thread, Target, Loc);
  else if (Name == "join")
    Builder.join(Thread, Target, Loc);
  else
    return fail("unknown operation '" + std::string(Name) + "'");
  return true;
}

TextParseResult rapid::parseTextTrace(std::string_view Text) {
  TextParseResult Result;
  TraceBuilder Builder;

  size_t Pos = 0;
  uint64_t LineNo = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (!trimTextTraceLine(Line))
      continue;
    std::string Error;
    if (!parseTextTraceLine(Line, Builder, Error)) {
      Result.Ok = false;
      Result.Error = "line " + std::to_string(LineNo) + ": " + Error;
      return Result;
    }
  }

  Result.Ok = true;
  Result.T = Builder.take();
  return Result;
}

std::string rapid::writeTextTrace(const Trace &T) {
  std::string Out;
  for (EventIdx I = 0; I != T.size(); ++I) {
    const Event &E = T.event(I);
    Out += T.threadName(E.Thread);
    Out += '|';
    Out += eventKindName(E.Kind);
    Out += '(';
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      Out += T.varName(E.var());
      break;
    case EventKind::Acquire:
    case EventKind::Release:
      Out += T.lockName(E.lock());
      break;
    case EventKind::Fork:
    case EventKind::Join:
      Out += T.threadName(E.targetThread());
      break;
    }
    Out += ')';
    Out += '|';
    Out += T.locName(E.Loc);
    Out += '\n';
  }
  return Out;
}
