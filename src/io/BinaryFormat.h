//===- io/BinaryFormat.h - Compact binary trace format ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact binary trace container for the multi-hundred-million-event
/// traces the paper targets (the text format parses at a fraction of the
/// speed and triples the size). Layout:
///
///   magic "RPTB" | u32 version | 4 name tables | u64 count | events
///
/// where a name table is u32 n followed by n length-prefixed strings and
/// an event is 13 bytes: u8 kind, u32 thread, u32 target, u32 loc.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_BINARYFORMAT_H
#define RAPID_IO_BINARYFORMAT_H

#include "trace/Trace.h"

#include <string>

namespace rapid {

/// Result of decoding a binary trace.
struct BinaryParseResult {
  bool Ok = false;
  std::string Error;
  Trace T;
};

/// Decodes a binary trace buffer.
BinaryParseResult parseBinaryTrace(const std::string &Bytes);

/// Encodes \p T into the binary format.
std::string writeBinaryTrace(const Trace &T);

/// Size of one encoded event record (u8 kind + u32 thread/target/loc).
inline constexpr size_t BinaryEventRecordSize = 13;

/// Outcome of an incremental header decode.
enum class BinaryHeaderStatus {
  Ok,           ///< Header complete; tables and count are filled in.
  NeedMoreData, ///< \p Bytes is a valid but incomplete prefix.
  Error,        ///< Not a binary trace (bad magic / unsupported version).
};

/// Attempts to decode the container header (magic, version, the four name
/// tables and the event count) from the front of \p Bytes. On Ok the tables
/// are interned into \p T, \p EventCount receives the declared event count
/// and \p HeaderSize the number of bytes consumed; event records follow at
/// that offset. This is the incremental entry point the chunked reader in
/// pipeline/ uses, so a caller may retry with a longer prefix after
/// NeedMoreData.
BinaryHeaderStatus parseBinaryHeader(std::string_view Bytes, Trace &T,
                                     uint64_t &EventCount, size_t &HeaderSize,
                                     std::string &Error);

/// Decodes the BinaryEventRecordSize-byte record at \p Bytes into \p E,
/// validating ids against \p T's tables. Returns false and sets \p Error on
/// a corrupt record.
bool decodeBinaryEvent(const char *Bytes, const Trace &T, Event &E,
                       std::string &Error);

} // namespace rapid

#endif // RAPID_IO_BINARYFORMAT_H
