//===- io/BinaryFormat.h - Compact binary trace format ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact binary trace container for the multi-hundred-million-event
/// traces the paper targets (the text format parses at a fraction of the
/// speed and triples the size). Layout:
///
///   magic "RPTB" | u32 version | 4 name tables | u64 count | events
///
/// where a name table is u32 n followed by n length-prefixed strings and
/// an event is 13 bytes: u8 kind, u32 thread, u32 target, u32 loc.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_BINARYFORMAT_H
#define RAPID_IO_BINARYFORMAT_H

#include "trace/Trace.h"

#include <string>

namespace rapid {

/// Result of decoding a binary trace.
struct BinaryParseResult {
  bool Ok = false;
  std::string Error;
  Trace T;
};

/// Decodes a binary trace buffer.
BinaryParseResult parseBinaryTrace(const std::string &Bytes);

/// Encodes \p T into the binary format.
std::string writeBinaryTrace(const Trace &T);

} // namespace rapid

#endif // RAPID_IO_BINARYFORMAT_H
