//===- io/ShmRing.h - Shared-memory SPSC byte ring --------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-producer single-consumer byte ring over a shared file mapping
/// — the zero-syscall feed transport of the serving layer. The producer
/// (a monitored process) appends wire frames; the consumer (the server's
/// FeedSource) drains them into an AnalysisSession.
///
/// The synchronization is PublishedStore's watermark discipline flattened
/// to bytes: Head is the producer's monotone "bytes ever written"
/// watermark (release-stored after the byte copy, acquire-loaded by the
/// consumer), Tail is the consumer's mirror-image "bytes ever read"
/// watermark, and Closed is the producer's stop flag, stored seq_cst
/// after the final Head publish so a consumer that sees Closed and then
/// drains to Head has seen every byte. Because the two watermarks only
/// ever grow and each side writes exactly one of them, neither side needs
/// a lock or a CAS; fullness (producer) and emptiness (consumer) park on
/// a bounded exponential sleep instead of a condvar — process-shared
/// condvars would drag robust-mutex complexity into a path whose waits
/// are rare and short.
///
/// The segment lives in a plain file (create()/attach() by path): mapping
/// it from /dev/shm gives a true memory-only segment, while any other
/// path works for tests and FIFO-less sandboxes. The header records
/// capacity and a magic so attach() rejects foreign files.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_SHMRING_H
#define RAPID_IO_SHMRING_H

#include "support/Status.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rapid {

/// The mapped segment layout. Both processes address the same physical
/// pages, so the atomics synchronize exactly as they would in one
/// address space.
struct ShmRingHeader {
  std::atomic<uint64_t> Magic; ///< Stored release-last by create().
  uint64_t Capacity;
  std::atomic<uint64_t> Head;   ///< Bytes ever produced (watermark).
  std::atomic<uint64_t> Tail;   ///< Bytes ever consumed (watermark).
  std::atomic<uint32_t> Closed; ///< Producer hung up; drain then EOF.
};

/// One side's attachment to a ring segment. Exactly one process may call
/// the producer methods (write/close) and one the consumer methods
/// (readSome); create() and attach() do not police roles.
class ShmRing {
public:
  static constexpr uint64_t MagicValue = 0x52505249304e4731ull; // "RPRI0NG1"
  static constexpr uint64_t DefaultCapacity = 1u << 20;

  ShmRing() = default;
  ~ShmRing();
  ShmRing(const ShmRing &) = delete;
  ShmRing &operator=(const ShmRing &) = delete;
  ShmRing(ShmRing &&O) noexcept;
  ShmRing &operator=(ShmRing &&O) noexcept;

  /// Creates (truncating any previous segment at \p Path) and maps a ring
  /// of \p Capacity data bytes.
  Status create(const std::string &Path, uint64_t Capacity = DefaultCapacity);

  /// Maps an existing segment, validating magic and size.
  Status attach(const std::string &Path);

  bool mapped() const { return H != nullptr; }
  uint64_t capacity() const { return H ? H->Capacity : 0; }

  // ---- Producer side --------------------------------------------------------

  /// Appends \p N bytes, blocking (bounded sleep) while the ring is full.
  /// False iff the consumer side vanished is not detectable here — write
  /// only fails (returns false) after close().
  bool write(const char *Data, size_t N);

  /// Publishes EOF: consumers drain the remaining bytes, then readSome
  /// returns 0.
  void close();

  // ---- Consumer side --------------------------------------------------------

  /// Blocks (bounded sleep) until bytes are available or the ring is
  /// closed and drained. Returns the number of bytes copied into \p Buf
  /// (<= Max), or 0 for EOF.
  size_t readSome(char *Buf, size_t Max);

  /// Non-blocking variant: returns 0 with \p Eof=false when empty.
  size_t tryRead(char *Buf, size_t Max, bool &Eof);

private:
  void unmap();

  ShmRingHeader *H = nullptr;
  char *Data = nullptr;
  size_t MapBytes = 0;
};

} // namespace rapid

#endif // RAPID_IO_SHMRING_H
