//===- io/FaultInjector.h - Deterministic feed-source fault injection -*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded fault-injection decorator for FeedSource. Every failure mode
/// the serving layer must survive — short reads, spurious EAGAIN, delayed
/// bytes, a mid-frame disconnect — is drawn from a Prng seeded by the
/// caller, so a "flaky transport" is a reproducible ctest: same seed,
/// same schedule, same observable behavior. The decorator never alters
/// the byte *content* of the stream, only its delivery; a consumer that
/// handles WouldBlock and retries correctly must therefore produce a
/// report byte-identical to the undecorated run (the regression pin in
/// tests/serve_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_FAULTINJECTOR_H
#define RAPID_IO_FAULTINJECTOR_H

#include "io/FeedSource.h"

#include <cstdint>
#include <memory>

namespace rapid {

/// Counters of injected faults, so tests can assert the schedule actually
/// fired (a fault config that injects nothing proves nothing). Written by
/// the decorated read() only; read them after the pump finishes.
struct FaultStats {
  uint64_t ShortReads = 0;  ///< reads truncated below the caller's Max
  uint64_t WouldBlocks = 0; ///< synthetic EAGAIN results
  uint64_t Delays = 0;      ///< reads stalled before delivery
  uint64_t Cuts = 0;        ///< 1 once the injected disconnect fires
};

/// Knobs for makeFaultyFeedSource. Probabilities are per-read, in
/// permille (0..1000).
struct FaultyFeedConfig {
  uint64_t Seed = 1;
  uint32_t ShortReadPermille = 0;  ///< truncate the read to a random prefix
  uint32_t WouldBlockPermille = 0; ///< return WouldBlock, consuming nothing
  uint32_t DelayPermille = 0;      ///< sleep up to MaxDelayUs first
  uint32_t MaxDelayUs = 200;
  /// After this many bytes have been delivered, report Eof as a real peer
  /// disconnect would (0 = never). Cutting inside a frame exercises the
  /// ingestor's torn-frame detection.
  uint64_t CutAfterBytes = 0;
  FaultStats *Stats = nullptr; ///< optional, must outlive the source
};

/// Wraps \p Inner in the fault schedule of \p Config. The wrapper owns
/// the inner source; name() and pollFd() pass through.
std::unique_ptr<FeedSource> makeFaultyFeedSource(
    std::unique_ptr<FeedSource> Inner, const FaultyFeedConfig &Config);

} // namespace rapid

#endif // RAPID_IO_FAULTINJECTOR_H
