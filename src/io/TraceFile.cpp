//===- io/TraceFile.cpp -------------------------------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/TraceFile.h"

#include "io/BinaryFormat.h"
#include "io/TextFormat.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace rapid;

bool rapid::hasTraceSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::char_traits<char>::length(Suffix);
  if (S.size() < N)
    return false;
  for (size_t I = 0; I != N; ++I)
    if (std::tolower(static_cast<unsigned char>(S[S.size() - N + I])) !=
        std::tolower(static_cast<unsigned char>(Suffix[I])))
      return false;
  return true;
}

static bool readFile(const std::string &Path, std::string &Out,
                     std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "' for reading: " + std::strerror(errno);
    return false;
  }
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  bool Bad = std::ferror(F) != 0;
  std::fclose(F);
  if (Bad) {
    Error = "read error on '" + Path + "'";
    return false;
  }
  return true;
}

TraceLoadResult rapid::loadTraceFile(const std::string &Path) {
  TraceLoadResult Result;
  std::string Bytes;
  if (!readFile(Path, Bytes, Result.Error)) {
    Result.Code = StatusCode::IoError;
    return Result;
  }

  if (hasTraceSuffix(Path, ".bin")) {
    BinaryParseResult B = parseBinaryTrace(Bytes);
    Result.Ok = B.Ok;
    Result.Code = B.Ok ? StatusCode::Ok : StatusCode::ParseError;
    Result.Error = B.Error;
    Result.T = std::move(B.T);
    return Result;
  }
  TextParseResult P = parseTextTrace(Bytes);
  Result.Ok = P.Ok;
  Result.Code = P.Ok ? StatusCode::Ok : StatusCode::ParseError;
  Result.Error = P.Error;
  Result.T = std::move(P.T);
  return Result;
}

std::string rapid::saveTraceFile(const Trace &T, const std::string &Path) {
  std::string Bytes =
      hasTraceSuffix(Path, ".bin") ? writeBinaryTrace(T) : writeTextTrace(T);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return "cannot open '" + Path + "' for writing: " +
           std::string(std::strerror(errno));
  size_t Wrote = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Bad = Wrote != Bytes.size();
  if (std::fclose(F) != 0)
    Bad = true;
  return Bad ? "write error on '" + Path + "'" : "";
}
