//===- io/FeedSource.cpp - Byte-stream feed sources ---------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/FeedSource.h"

#include "io/ShmRing.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace rapid {

FeedSource::~FeedSource() = default;

namespace {

class FdFeedSource final : public FeedSource {
public:
  FdFeedSource(int Fd, std::string Name) : Fd(Fd), Name(std::move(Name)) {}
  ~FdFeedSource() override {
    if (Fd >= 0)
      ::close(Fd);
  }

  long read(char *Buf, size_t Max) override {
    for (;;) {
      const ssize_t N = ::read(Fd, Buf, Max);
      if (N >= 0)
        return static_cast<long>(N);
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return WouldBlock;
      Err = Status(StatusCode::IoError,
                   "reading " + Name + ": " + std::strerror(errno));
      return Failed;
    }
  }

  int pollFd() const override { return Fd; }
  const std::string &name() const override { return Name; }
  const Status &status() const override { return Err; }

private:
  int Fd;
  std::string Name;
  Status Err;
};

class ShmRingFeedSource final : public FeedSource {
public:
  ShmRingFeedSource(ShmRing Ring, std::string Name)
      : Ring(std::move(Ring)), Name(std::move(Name)) {}

  long read(char *Buf, size_t Max) override {
    return static_cast<long>(Ring.readSome(Buf, Max));
  }

  const std::string &name() const override { return Name; }
  const Status &status() const override { return Err; }

private:
  ShmRing Ring;
  std::string Name;
  Status Err;
};

std::unique_ptr<FeedSource> connectUnixSource(const std::string &Path,
                                              Status &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = Status(StatusCode::InvalidConfig,
                 "socket path too long: '" + Path + "'");
    return nullptr;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = Status(StatusCode::IoError,
                 std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    Err = Status(StatusCode::IoError,
                 "connecting to '" + Path + "': " + std::strerror(errno));
    ::close(Fd);
    return nullptr;
  }
  return makeFdFeedSource(Fd, "unix:" + Path);
}

} // namespace

std::unique_ptr<FeedSource> makeFdFeedSource(int Fd, std::string Name) {
  return std::make_unique<FdFeedSource>(Fd, std::move(Name));
}

std::unique_ptr<FeedSource> makeShmRingFeedSource(ShmRing Ring,
                                                  std::string Name) {
  return std::make_unique<ShmRingFeedSource>(std::move(Ring), std::move(Name));
}

std::unique_ptr<FeedSource> openFeedSource(const std::string &Spec,
                                           Status &Err) {
  Err = Status::success();
  const size_t Colon = Spec.find(':');
  if (Colon == std::string::npos) {
    Err = Status(StatusCode::InvalidConfig,
                 "feed spec '" + Spec +
                     "' needs a transport prefix (unix:/fifo:/shm:)");
    return nullptr;
  }
  const std::string Kind = Spec.substr(0, Colon);
  const std::string Path = Spec.substr(Colon + 1);
  if (Kind == "unix")
    return connectUnixSource(Path, Err);
  if (Kind == "fifo") {
    // The open blocks until a writer appears, so a signal (SIGCHLD from a
    // forked producer, a profiler tick) can land mid-wait: retry EINTR.
    int Fd;
    do {
      Fd = ::open(Path.c_str(), O_RDONLY);
    } while (Fd < 0 && errno == EINTR);
    if (Fd < 0) {
      Err = Status(StatusCode::IoError,
                   "opening fifo '" + Path + "': " + std::strerror(errno));
      return nullptr;
    }
    return makeFdFeedSource(Fd, Spec);
  }
  if (Kind == "shm") {
    ShmRing Ring;
    Err = Ring.attach(Path);
    if (!Err.ok())
      return nullptr;
    return makeShmRingFeedSource(std::move(Ring), Spec);
  }
  Err = Status(StatusCode::InvalidConfig,
               "unknown feed transport '" + Kind + "' in '" + Spec + "'");
  return nullptr;
}

} // namespace rapid
