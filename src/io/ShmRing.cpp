//===- io/ShmRing.cpp - Shared-memory SPSC byte ring --------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/ShmRing.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rapid {

namespace {

Status errnoStatus(const std::string &What, const std::string &Path) {
  return Status(StatusCode::IoError,
                What + " '" + Path + "': " + std::strerror(errno));
}

/// Bounded exponential backoff for the rare full/empty waits: spin a few
/// rounds, then sleep 1us doubling to 1ms.
struct Backoff {
  unsigned Round = 0;
  void pause() {
    if (Round < 16) {
      ++Round;
      return;
    }
    const unsigned Shift = std::min(Round - 16, 10u);
    ++Round;
    std::this_thread::sleep_for(std::chrono::microseconds(1u << Shift));
  }
};

} // namespace

ShmRing::~ShmRing() { unmap(); }

ShmRing::ShmRing(ShmRing &&O) noexcept
    : H(O.H), Data(O.Data), MapBytes(O.MapBytes) {
  O.H = nullptr;
  O.Data = nullptr;
  O.MapBytes = 0;
}

ShmRing &ShmRing::operator=(ShmRing &&O) noexcept {
  if (this != &O) {
    unmap();
    H = O.H;
    Data = O.Data;
    MapBytes = O.MapBytes;
    O.H = nullptr;
    O.Data = nullptr;
    O.MapBytes = 0;
  }
  return *this;
}

void ShmRing::unmap() {
  if (H)
    ::munmap(H, MapBytes);
  H = nullptr;
  Data = nullptr;
  MapBytes = 0;
}

Status ShmRing::create(const std::string &Path, uint64_t Capacity) {
  if (Capacity == 0)
    return Status(StatusCode::InvalidConfig, "ring capacity must be > 0");
  unmap();
  int Fd;
  do {
    Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  } while (Fd < 0 && errno == EINTR);
  if (Fd < 0)
    return errnoStatus("creating ring segment", Path);
  const size_t Bytes = sizeof(ShmRingHeader) + Capacity;
  if (::ftruncate(Fd, static_cast<off_t>(Bytes)) != 0) {
    Status S = errnoStatus("sizing ring segment", Path);
    ::close(Fd);
    return S;
  }
  void *Map = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  ::close(Fd); // The mapping keeps the pages alive.
  if (Map == MAP_FAILED)
    return errnoStatus("mapping ring segment", Path);
  H = static_cast<ShmRingHeader *>(Map);
  Data = static_cast<char *>(Map) + sizeof(ShmRingHeader);
  MapBytes = Bytes;
  H->Capacity = Capacity;
  H->Head.store(0, std::memory_order_relaxed);
  H->Tail.store(0, std::memory_order_relaxed);
  H->Closed.store(0, std::memory_order_relaxed);
  // Magic last: an attacher that sees it sees an initialized header.
  H->Magic.store(MagicValue, std::memory_order_release);
  return Status::success();
}

Status ShmRing::attach(const std::string &Path) {
  unmap();
  int Fd;
  do {
    Fd = ::open(Path.c_str(), O_RDWR);
  } while (Fd < 0 && errno == EINTR);
  if (Fd < 0)
    return errnoStatus("opening ring segment", Path);
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    Status S = errnoStatus("inspecting ring segment", Path);
    ::close(Fd);
    return S;
  }
  if (static_cast<size_t>(St.st_size) < sizeof(ShmRingHeader) + 1) {
    ::close(Fd);
    return Status(StatusCode::ValidationError,
                  "'" + Path + "' is too small to be a ring segment");
  }
  const size_t Bytes = static_cast<size_t>(St.st_size);
  void *Map = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    return errnoStatus("mapping ring segment", Path);
  ShmRingHeader *Hdr = static_cast<ShmRingHeader *>(Map);
  if (Hdr->Magic.load(std::memory_order_acquire) != MagicValue ||
      Hdr->Capacity != Bytes - sizeof(ShmRingHeader)) {
    ::munmap(Map, Bytes);
    return Status(StatusCode::ValidationError,
                  "'" + Path + "' is not a rapid ring segment");
  }
  H = Hdr;
  Data = static_cast<char *>(Map) + sizeof(ShmRingHeader);
  MapBytes = Bytes;
  return Status::success();
}

bool ShmRing::write(const char *Src, size_t N) {
  if (!H || H->Closed.load(std::memory_order_relaxed))
    return false;
  const uint64_t Cap = H->Capacity;
  uint64_t Head = H->Head.load(std::memory_order_relaxed);
  while (N != 0) {
    Backoff B;
    uint64_t Free;
    for (;;) {
      const uint64_t Tail = H->Tail.load(std::memory_order_acquire);
      Free = Cap - (Head - Tail);
      if (Free != 0)
        break;
      B.pause(); // Consumer is behind: this *is* the backpressure.
    }
    const uint64_t Chunk = std::min<uint64_t>(N, Free);
    uint64_t At = Head % Cap;
    const uint64_t FirstSpan = std::min(Chunk, Cap - At);
    std::memcpy(Data + At, Src, FirstSpan);
    if (Chunk != FirstSpan)
      std::memcpy(Data, Src + FirstSpan, Chunk - FirstSpan);
    Head += Chunk;
    H->Head.store(Head, std::memory_order_release);
    Src += Chunk;
    N -= Chunk;
  }
  return true;
}

void ShmRing::close() {
  if (H)
    H->Closed.store(1, std::memory_order_seq_cst);
}

size_t ShmRing::tryRead(char *Buf, size_t Max, bool &Eof) {
  Eof = false;
  if (!H || Max == 0)
    return 0;
  const uint64_t Cap = H->Capacity;
  const uint64_t Tail = H->Tail.load(std::memory_order_relaxed);
  const uint64_t Head = H->Head.load(std::memory_order_acquire);
  const uint64_t Avail = Head - Tail;
  if (Avail == 0) {
    // Closed checked *after* the Head load: a producer that closes after
    // its last publish cannot make us miss bytes.
    Eof = H->Closed.load(std::memory_order_seq_cst) != 0 &&
          H->Head.load(std::memory_order_acquire) == Tail;
    return 0;
  }
  const uint64_t Chunk = std::min<uint64_t>(Max, Avail);
  uint64_t At = Tail % Cap;
  const uint64_t FirstSpan = std::min(Chunk, Cap - At);
  std::memcpy(Buf, Data + At, FirstSpan);
  if (Chunk != FirstSpan)
    std::memcpy(Buf + FirstSpan, Data, Chunk - FirstSpan);
  H->Tail.store(Tail + Chunk, std::memory_order_release);
  return Chunk;
}

size_t ShmRing::readSome(char *Buf, size_t Max) {
  Backoff B;
  for (;;) {
    bool Eof = false;
    const size_t N = tryRead(Buf, Max, Eof);
    if (N != 0 || Eof)
      return N;
    B.pause();
  }
}

} // namespace rapid
