//===- io/WireFormat.cpp - Trace-coupled wire codec helpers -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/WireFormat.h"

#include "trace/Trace.h"

#include <algorithm>

namespace rapid {

const char *wireFrameName(WireFrame T) {
  switch (T) {
  case WireFrame::Hello:
    return "hello";
  case WireFrame::Declare:
    return "declare";
  case WireFrame::Events:
    return "events";
  case WireFrame::PartialQuery:
    return "partial-query";
  case WireFrame::TimelineQuery:
    return "timeline-query";
  case WireFrame::Finish:
    return "finish";
  case WireFrame::Report:
    return "report";
  case WireFrame::Timeline:
    return "timeline";
  case WireFrame::WireError:
    return "error";
  case WireFrame::ListSessions:
    return "list-sessions";
  case WireFrame::SessionList:
    return "session-list";
  case WireFrame::FinalQuery:
    return "final-query";
  case WireFrame::Resume:
    return "resume";
  case WireFrame::ResumeOk:
    return "resume-ok";
  case WireFrame::Ack:
    return "ack";
  case WireFrame::Welcome:
    return "welcome";
  }
  return "unknown";
}

bool wireCheckHello(std::string_view Payload, std::string &Error) {
  if (Payload.size() < 8) {
    Error = "hello payload truncated";
    return false;
  }
  if (wireGetU32(Payload.data()) != WireHelloMagic) {
    Error = "bad hello magic";
    return false;
  }
  const uint16_t V = wireGetU16(Payload.data() + 4);
  if (V != WireVersion) {
    Error = "unsupported protocol version " + std::to_string(V);
    return false;
  }
  return true;
}

std::string encodeDeclareFrames(const Trace &T) {
  std::string Out;
  std::string Payload;
  auto declareTable = [&](const StringInterner &Table, WireDeclareKind K) {
    if (Table.size() == 0)
      return;
    Payload.clear();
    for (uint32_t I = 0; I != Table.size(); ++I)
      wireDeclareEntry(Payload, K, Table.name(I));
    wireAppendFrame(Out, WireFrame::Declare, Payload);
  };
  declareTable(T.threadTable(), WireDeclareKind::Thread);
  declareTable(T.lockTable(), WireDeclareKind::Lock);
  declareTable(T.varTable(), WireDeclareKind::Var);
  declareTable(T.locTable(), WireDeclareKind::Loc);
  return Out;
}

static uint64_t clampBatch(uint64_t BatchEvents) {
  if (BatchEvents == 0)
    BatchEvents = 1;
  // One Events frame must stay under the payload cap (12-byte seq+count
  // header plus the records).
  const uint64_t MaxPerFrame = (WireMaxPayload - 12) / WireEventRecordSize;
  return std::min(BatchEvents, MaxPerFrame);
}

std::vector<std::string> encodeEventFrames(const Trace &T,
                                           uint64_t BatchEvents,
                                           uint64_t StartSeq) {
  BatchEvents = clampBatch(BatchEvents);
  std::vector<std::string> Frames;
  std::string Payload;
  for (EventIdx From = 0; From < T.size(); From += BatchEvents) {
    const EventIdx To = std::min<EventIdx>(T.size(), From + BatchEvents);
    Payload.clear();
    wireEventsHeader(Payload, StartSeq + From,
                     static_cast<uint32_t>(To - From));
    for (EventIdx I = From; I != To; ++I) {
      const Event &E = T.event(I);
      wireEventRecord(Payload, static_cast<uint8_t>(E.Kind),
                      E.Thread.value(), E.Target, E.Loc.value());
    }
    std::string Frame;
    wireAppendFrame(Frame, WireFrame::Events, Payload);
    Frames.push_back(std::move(Frame));
  }
  return Frames;
}

std::string encodeTraceFrames(const Trace &T, uint64_t BatchEvents,
                              uint64_t StartSeq) {
  std::string Out = encodeDeclareFrames(T);
  for (std::string &F : encodeEventFrames(T, BatchEvents, StartSeq))
    Out += F;
  return Out;
}

Status decodeEventsPayload(std::string_view Payload, uint64_t &Seq,
                           std::vector<Event> &Out) {
  if (Payload.size() < 12)
    return Status(StatusCode::ValidationError, "events payload truncated");
  Seq = wireGetU64(Payload.data());
  const uint32_t Count = wireGetU32(Payload.data() + 8);
  if (Payload.size() - 12 != uint64_t{Count} * WireEventRecordSize)
    return Status(StatusCode::ValidationError,
                  "events payload size does not match its record count");
  Out.reserve(Out.size() + Count);
  const char *P = Payload.data() + 12;
  for (uint32_t I = 0; I != Count; ++I, P += WireEventRecordSize) {
    const uint8_t Kind = static_cast<uint8_t>(*P);
    if (Kind > static_cast<uint8_t>(EventKind::Join))
      return Status(StatusCode::ValidationError,
                    "event record " + std::to_string(I) +
                        " has kind byte " + std::to_string(Kind) +
                        " outside the event alphabet");
    Out.emplace_back(static_cast<EventKind>(Kind), ThreadId(wireGetU32(P + 1)),
                     wireGetU32(P + 5), LocId(wireGetU32(P + 9)));
  }
  return Status::success();
}

} // namespace rapid
