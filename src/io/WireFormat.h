//===- io/WireFormat.h - Length-prefixed serve-layer frames -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the live-attach serving layer (src/serve/): a
/// stream of length-prefixed frames carrying name declarations, binary
/// event batches, and mid-stream control queries into an AnalysisSession,
/// plus the server's report/error replies. One frame is
///
///   u32 payload-length (LE) | u8 frame-type | payload bytes
///
/// Event records reuse the 13-byte shape of the binary trace container
/// (io/BinaryFormat.h): u8 kind, u32 thread, u32 target, u32 loc, all LE.
/// Ids are never negotiated: the client declares names (Declare frames)
/// and mirrors the server's interning order locally — both sides assign
/// sequential ids per table in declaration order, so an id is just "the
/// k-th name I declared of this kind" and no round trip is needed.
///
/// The encode helpers and the incremental FrameDecoder are header-only on
/// purpose: the LD_PRELOAD interposer (examples/interpose/) speaks this
/// protocol from inside arbitrary processes and must not link the static
/// rapid library into a shared object. Trace-coupled conveniences
/// (encodeTraceFrames, decodeEventsPayload) live in WireFormat.cpp and
/// are only for rapid-linking code (server, tests, tools).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_WIREFORMAT_H
#define RAPID_IO_WIREFORMAT_H

#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rapid {

class Trace;
struct Event;

/// Frame types. Client → server: Hello first, then any mix of Declare/
/// Events/queries, optionally ending in Finish. Server → client: Report,
/// Timeline, SessionList, WireError. Fault-tolerance handshake (v2):
/// Welcome answers a resumable Hello with the session's resume token;
/// Resume re-attaches a reconnecting client; ResumeOk tells it how much
/// the server already applied; Ack lets it trim its spill buffer.
enum class WireFrame : uint8_t {
  Hello = 1,         ///< Magic + version + flags; first client frame.
  Declare = 2,       ///< Name declarations (ids implied by order).
  Events = 3,        ///< u64 seq | u32 count | 13-byte event records.
  PartialQuery = 4,  ///< partialResult(); empty = own session, u64 = by id.
  TimelineQuery = 5, ///< exportTimeline(); empty = own session, u64 = by id.
  Finish = 6,        ///< Finalize own session; server replies Report.
  Report = 7,        ///< u8 partial | u64 session id | canonical listing.
  Timeline = 8,      ///< Perfetto JSON for the queried session.
  WireError = 9,     ///< u8 status | u8 code | u8 flags | u32 retry | msg.
  ListSessions = 10, ///< Ask for the live/finished session roster.
  SessionList = 11,  ///< Text roster reply (docs/SERVING.md).
  FinalQuery = 12,   ///< u64 session id; Report of a *finished* session.
  Resume = 13,       ///< u64 token | u64 next seq; re-attach a session.
  ResumeOk = 14,     ///< u64 session id | u64 applied seq.
  Ack = 15,          ///< u64 applied seq; spill-trim watermark.
  Welcome = 16,      ///< u64 session id | u64 token (resumable hellos).
};

/// Stable display name for diagnostics ("hello", "events", ...).
const char *wireFrameName(WireFrame T);

inline constexpr uint32_t WireHelloMagic = 0x52505356u; // "RPSV"
inline constexpr uint16_t WireVersion = 2;

/// Hello flag bits (the u16 after the version; zero = plain one-shot
/// stream, exactly the v1 behaviour).
inline constexpr uint16_t WireHelloResumable = 1u << 0; ///< Wants Welcome +
                                                        ///< seq/ack/resume.
inline constexpr uint16_t WireHelloAttach = 1u << 1; ///< No new session; the
                                                     ///< next frame is Resume.
/// Hard per-frame payload cap; a length above this is malformed, so a
/// garbage prefix can never make the decoder buffer gigabytes.
inline constexpr uint32_t WireMaxPayload = 1u << 20;
inline constexpr size_t WireFrameHeaderSize = 5;
/// u8 kind + u32 thread + u32 target + u32 loc.
inline constexpr size_t WireEventRecordSize = 13;

/// Which name table a Declare entry interns into.
enum class WireDeclareKind : uint8_t { Thread = 0, Lock = 1, Var = 2, Loc = 3 };

/// Machine-readable WireError codes. A v1 WireError carried only a raw
/// StatusCode byte, which made client retry policy guesswork; v2 appends
/// one of these plus an explicit retryable bit, so a client can tell
/// "back off and try again" (overload, busy producer, draining shutdown)
/// from "give up" (malformed stream, exhausted budget, unknown token).
enum class WireErrorCode : uint8_t {
  Unspecified = 0,     ///< Legacy/unclassified error.
  Malformed = 1,       ///< Protocol violation; the stream is dead.
  InvalidRequest = 2,  ///< Bad query payload / unknown session.
  BudgetExhausted = 3, ///< MaxSessionEvents tripped; prefix finalized.
  Overloaded = 4,      ///< Admission control shed the session. Retryable.
  Busy = 5,            ///< Producer holds the session lock. Retryable.
  ResumeUnknown = 6,   ///< Resume token matches no parked session.
  ShuttingDown = 7,    ///< Server is draining; try elsewhere. Retryable.
  Internal = 8,        ///< Server-side failure (report too large, ...).
};

/// Stable display name ("overloaded", "busy", ...).
inline const char *wireErrorCodeName(WireErrorCode C) {
  switch (C) {
  case WireErrorCode::Unspecified:
    return "unspecified";
  case WireErrorCode::Malformed:
    return "malformed";
  case WireErrorCode::InvalidRequest:
    return "invalid-request";
  case WireErrorCode::BudgetExhausted:
    return "budget-exhausted";
  case WireErrorCode::Overloaded:
    return "overloaded";
  case WireErrorCode::Busy:
    return "busy";
  case WireErrorCode::ResumeUnknown:
    return "resume-unknown";
  case WireErrorCode::ShuttingDown:
    return "shutting-down";
  case WireErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

/// The default retry classification per code (the encoded flag byte may
/// override it, but in-tree senders never do).
inline bool wireErrorRetryable(WireErrorCode C) {
  return C == WireErrorCode::Overloaded || C == WireErrorCode::Busy ||
         C == WireErrorCode::ShuttingDown;
}

/// WireError flag bits.
inline constexpr uint8_t WireErrorFlagRetryable = 1u << 0;

/// A decoded (or to-be-encoded) WireError payload:
///   u8 status code | u8 error code | u8 flags | u32 retry-after ms | message
/// Byte 0 stays the raw StatusCode so v1-era consumers that only look at
/// the first byte keep working.
struct WireErrorInfo {
  StatusCode Code = StatusCode::Ok;
  WireErrorCode Wire = WireErrorCode::Unspecified;
  bool Retryable = false;
  uint32_t RetryAfterMs = 0;
  std::string Message;
};

// ---- Little-endian scalar helpers (header-only; interposer-safe) -----------

inline void wirePutU16(std::string &B, uint16_t V) {
  B.push_back(static_cast<char>(V & 0xff));
  B.push_back(static_cast<char>((V >> 8) & 0xff));
}
inline void wirePutU32(std::string &B, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
inline void wirePutU64(std::string &B, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
inline uint16_t wireGetU16(const char *P) {
  const unsigned char *U = reinterpret_cast<const unsigned char *>(P);
  return static_cast<uint16_t>(U[0] | (U[1] << 8));
}
inline uint32_t wireGetU32(const char *P) {
  const unsigned char *U = reinterpret_cast<const unsigned char *>(P);
  return static_cast<uint32_t>(U[0]) | (static_cast<uint32_t>(U[1]) << 8) |
         (static_cast<uint32_t>(U[2]) << 16) |
         (static_cast<uint32_t>(U[3]) << 24);
}
inline uint64_t wireGetU64(const char *P) {
  return static_cast<uint64_t>(wireGetU32(P)) |
         (static_cast<uint64_t>(wireGetU32(P + 4)) << 32);
}

// ---- Frame/payload building (header-only; interposer-safe) -----------------

/// Appends one complete frame to \p Out.
inline void wireAppendFrame(std::string &Out, WireFrame T,
                            std::string_view Payload) {
  wirePutU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.push_back(static_cast<char>(T));
  Out.append(Payload.data(), Payload.size());
}

/// The mandatory first client frame. \p Flags is a WireHello* bit set
/// (zero = plain v1-style one-shot stream).
inline std::string wireHelloFrame(uint16_t Flags = 0) {
  std::string P;
  wirePutU32(P, WireHelloMagic);
  wirePutU16(P, WireVersion);
  wirePutU16(P, Flags);
  std::string Out;
  wireAppendFrame(Out, WireFrame::Hello, P);
  return Out;
}

/// The flag bits of a (size-checked) Hello payload.
inline uint16_t wireHelloFlags(std::string_view Payload) {
  return Payload.size() >= 8 ? wireGetU16(Payload.data() + 6) : 0;
}

/// Encodes a WireError payload (the frame itself is appended by the
/// caller, typically via wireAppendFrame).
inline std::string wireErrorPayload(const WireErrorInfo &E) {
  std::string P;
  P.push_back(static_cast<char>(E.Code));
  P.push_back(static_cast<char>(E.Wire));
  P.push_back(static_cast<char>(E.Retryable ? WireErrorFlagRetryable : 0));
  wirePutU32(P, E.RetryAfterMs);
  P += E.Message;
  return P;
}

/// Decodes a WireError payload. Tolerates the v1 shape (status byte +
/// message only): the error code comes back Unspecified, not retryable.
inline bool wireParseError(std::string_view Payload, WireErrorInfo &Out) {
  if (Payload.empty())
    return false;
  Out = WireErrorInfo();
  Out.Code = static_cast<StatusCode>(Payload[0]);
  if (Payload.size() >= 7) {
    Out.Wire = static_cast<WireErrorCode>(Payload[1]);
    Out.Retryable = (static_cast<uint8_t>(Payload[2]) &
                     WireErrorFlagRetryable) != 0;
    Out.RetryAfterMs = wireGetU32(Payload.data() + 3);
    Out.Message.assign(Payload.data() + 7, Payload.size() - 7);
  } else {
    Out.Message.assign(Payload.data() + 1, Payload.size() - 1);
  }
  return true;
}

/// Starts an Events payload: the frame's cumulative start sequence (how
/// many events the producer sent before this frame) and its record count.
/// The seq is what makes retransmission after a reconnect exactly-once —
/// the ingestor skips records it already applied.
inline void wireEventsHeader(std::string &Payload, uint64_t Seq,
                             uint32_t Count) {
  wirePutU64(Payload, Seq);
  wirePutU32(Payload, Count);
}

/// u64 payload frames of the resume handshake.
inline std::string wireResumeFrame(uint64_t Token, uint64_t NextSeq) {
  std::string P, Out;
  wirePutU64(P, Token);
  wirePutU64(P, NextSeq);
  wireAppendFrame(Out, WireFrame::Resume, P);
  return Out;
}
inline std::string wireResumeOkFrame(uint64_t SessionId, uint64_t Applied) {
  std::string P, Out;
  wirePutU64(P, SessionId);
  wirePutU64(P, Applied);
  wireAppendFrame(Out, WireFrame::ResumeOk, P);
  return Out;
}
inline std::string wireAckFrame(uint64_t Applied) {
  std::string P, Out;
  wirePutU64(P, Applied);
  wireAppendFrame(Out, WireFrame::Ack, P);
  return Out;
}
inline std::string wireWelcomeFrame(uint64_t SessionId, uint64_t Token) {
  std::string P, Out;
  wirePutU64(P, SessionId);
  wirePutU64(P, Token);
  wireAppendFrame(Out, WireFrame::Welcome, P);
  return Out;
}

/// Appends one declaration entry (u8 kind | u32 length | bytes) to a
/// Declare payload under construction.
inline void wireDeclareEntry(std::string &Payload, WireDeclareKind K,
                             std::string_view Name) {
  Payload.push_back(static_cast<char>(K));
  wirePutU32(Payload, static_cast<uint32_t>(Name.size()));
  Payload.append(Name.data(), Name.size());
}

/// Appends one 13-byte event record to an Events payload under
/// construction (after the leading header — see wireEventsHeader).
inline void wireEventRecord(std::string &Payload, uint8_t Kind,
                            uint32_t Thread, uint32_t Target, uint32_t Loc) {
  Payload.push_back(static_cast<char>(Kind));
  wirePutU32(Payload, Thread);
  wirePutU32(Payload, Target);
  wirePutU32(Payload, Loc);
}

/// One decoded frame. The payload view aliases the decoder's buffer and
/// is valid only until the next append()/next() call.
struct WireFrameView {
  WireFrame Type = WireFrame::Hello;
  std::string_view Payload;
};

/// Incremental frame splitter: append() arbitrary byte chunks, next()
/// yields complete frames. Malformed input (unknown type, payload above
/// WireMaxPayload) is sticky: every later call keeps returning -1, so a
/// desynchronized stream can never be half-interpreted.
class FrameDecoder {
public:
  void append(const char *Data, size_t N) { Buf.append(Data, N); }

  /// 1 = \p F filled and consumed, 0 = need more bytes, -1 = malformed
  /// (error() describes why; the decoder is permanently dead).
  int next(WireFrameView &F) {
    if (!Err.empty())
      return -1;
    const size_t Avail = Buf.size() - Pos;
    if (Avail < WireFrameHeaderSize) {
      compact();
      return 0;
    }
    const uint32_t Len = wireGetU32(Buf.data() + Pos);
    const uint8_t Type = static_cast<uint8_t>(Buf[Pos + 4]);
    if (Len > WireMaxPayload) {
      Err = "frame payload length " + std::to_string(Len) +
            " exceeds the " + std::to_string(WireMaxPayload) + "-byte cap";
      return -1;
    }
    if (Type < static_cast<uint8_t>(WireFrame::Hello) ||
        Type > static_cast<uint8_t>(WireFrame::Welcome)) {
      Err = "unknown frame type " + std::to_string(Type);
      return -1;
    }
    if (Avail < WireFrameHeaderSize + Len) {
      compact();
      return 0;
    }
    F.Type = static_cast<WireFrame>(Type);
    F.Payload = std::string_view(Buf.data() + Pos + WireFrameHeaderSize, Len);
    Pos += WireFrameHeaderSize + Len;
    return 1;
  }

  /// Bytes buffered but not yet consumed as frames — nonzero after EOF
  /// means the peer died mid-frame.
  size_t buffered() const { return Buf.size() - Pos; }

  const std::string &error() const { return Err; }

private:
  void compact() {
    if (Pos) {
      Buf.erase(0, Pos);
      Pos = 0;
    }
  }

  std::string Buf;
  size_t Pos = 0;
  std::string Err;
};

// ---- Trace-coupled helpers (WireFormat.cpp; rapid-linking code only) -------

/// Checks a Hello payload; false fills \p Error.
bool wireCheckHello(std::string_view Payload, std::string &Error);

/// Encodes \p T as a complete client stream: one Declare frame per name
/// table (threads, locks, vars, locs, in table order, so the server's
/// interning reproduces the trace's ids exactly) followed by Events
/// frames of at most \p BatchEvents records, sequence-numbered starting
/// at \p StartSeq. No Hello, no Finish — the caller brackets the stream.
std::string encodeTraceFrames(const Trace &T, uint64_t BatchEvents = 8192,
                              uint64_t StartSeq = 0);

/// The Declare half of encodeTraceFrames alone.
std::string encodeDeclareFrames(const Trace &T);

/// The Events half of encodeTraceFrames as one string per frame, so a
/// resuming client can spill and retransmit frame-by-frame. Frame i's
/// payload starts at sequence StartSeq + i * BatchEvents.
std::vector<std::string> encodeEventFrames(const Trace &T,
                                           uint64_t BatchEvents = 8192,
                                           uint64_t StartSeq = 0);

/// Appends the decoded records of an Events payload to \p Out and yields
/// the frame's start sequence in \p Seq. Returns a ValidationError Status
/// on a count/size mismatch or an event kind outside the §2.1 alphabet;
/// ids are *not* range-checked here (the session's feed validates them
/// against the declared tables).
Status decodeEventsPayload(std::string_view Payload, uint64_t &Seq,
                           std::vector<Event> &Out);

/// Invokes \p Fn(kind, name) -> Status for each entry of a Declare
/// payload, stopping at the first non-ok. Returns ValidationError on
/// truncated entries or kinds outside the four name tables.
template <typename Fn>
Status forEachDeclareEntry(std::string_view Payload, Fn &&F) {
  size_t Pos = 0;
  while (Pos != Payload.size()) {
    if (Payload.size() - Pos < 5)
      return Status(StatusCode::ValidationError, "truncated declaration entry");
    const uint8_t Kind = static_cast<uint8_t>(Payload[Pos]);
    if (Kind > static_cast<uint8_t>(WireDeclareKind::Loc))
      return Status(StatusCode::ValidationError,
                    "unknown declaration kind " + std::to_string(Kind));
    const uint32_t Len = wireGetU32(Payload.data() + Pos + 1);
    if (Payload.size() - Pos - 5 < Len)
      return Status(StatusCode::ValidationError,
                    "declaration name overruns the frame");
    Status S = F(static_cast<WireDeclareKind>(Kind),
                 std::string_view(Payload.data() + Pos + 5, Len));
    if (!S.ok())
      return S;
    Pos += 5 + Len;
  }
  return Status::success();
}

} // namespace rapid

#endif // RAPID_IO_WIREFORMAT_H
