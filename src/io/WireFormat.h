//===- io/WireFormat.h - Length-prefixed serve-layer frames -----*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the live-attach serving layer (src/serve/): a
/// stream of length-prefixed frames carrying name declarations, binary
/// event batches, and mid-stream control queries into an AnalysisSession,
/// plus the server's report/error replies. One frame is
///
///   u32 payload-length (LE) | u8 frame-type | payload bytes
///
/// Event records reuse the 13-byte shape of the binary trace container
/// (io/BinaryFormat.h): u8 kind, u32 thread, u32 target, u32 loc, all LE.
/// Ids are never negotiated: the client declares names (Declare frames)
/// and mirrors the server's interning order locally — both sides assign
/// sequential ids per table in declaration order, so an id is just "the
/// k-th name I declared of this kind" and no round trip is needed.
///
/// The encode helpers and the incremental FrameDecoder are header-only on
/// purpose: the LD_PRELOAD interposer (examples/interpose/) speaks this
/// protocol from inside arbitrary processes and must not link the static
/// rapid library into a shared object. Trace-coupled conveniences
/// (encodeTraceFrames, decodeEventsPayload) live in WireFormat.cpp and
/// are only for rapid-linking code (server, tests, tools).
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_WIREFORMAT_H
#define RAPID_IO_WIREFORMAT_H

#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rapid {

class Trace;
struct Event;

/// Frame types. Client → server: Hello first, then any mix of Declare/
/// Events/queries, optionally ending in Finish. Server → client: Report,
/// Timeline, SessionList, WireError.
enum class WireFrame : uint8_t {
  Hello = 1,         ///< Magic + version; must be the first client frame.
  Declare = 2,       ///< Name declarations (ids implied by order).
  Events = 3,        ///< Batch of 13-byte event records.
  PartialQuery = 4,  ///< partialResult(); empty = own session, u64 = by id.
  TimelineQuery = 5, ///< exportTimeline(); empty = own session, u64 = by id.
  Finish = 6,        ///< Finalize own session; server replies Report.
  Report = 7,        ///< u8 partial | u64 session id | canonical listing.
  Timeline = 8,      ///< Perfetto JSON for the queried session.
  WireError = 9,     ///< u8 status code | message.
  ListSessions = 10, ///< Ask for the live/finished session roster.
  SessionList = 11,  ///< Text roster reply (docs/SERVING.md).
  FinalQuery = 12,   ///< u64 session id; Report of a *finished* session.
};

/// Stable display name for diagnostics ("hello", "events", ...).
const char *wireFrameName(WireFrame T);

inline constexpr uint32_t WireHelloMagic = 0x52505356u; // "RPSV"
inline constexpr uint16_t WireVersion = 1;
/// Hard per-frame payload cap; a length above this is malformed, so a
/// garbage prefix can never make the decoder buffer gigabytes.
inline constexpr uint32_t WireMaxPayload = 1u << 20;
inline constexpr size_t WireFrameHeaderSize = 5;
/// u8 kind + u32 thread + u32 target + u32 loc.
inline constexpr size_t WireEventRecordSize = 13;

/// Which name table a Declare entry interns into.
enum class WireDeclareKind : uint8_t { Thread = 0, Lock = 1, Var = 2, Loc = 3 };

// ---- Little-endian scalar helpers (header-only; interposer-safe) -----------

inline void wirePutU16(std::string &B, uint16_t V) {
  B.push_back(static_cast<char>(V & 0xff));
  B.push_back(static_cast<char>((V >> 8) & 0xff));
}
inline void wirePutU32(std::string &B, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
inline void wirePutU64(std::string &B, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
inline uint16_t wireGetU16(const char *P) {
  const unsigned char *U = reinterpret_cast<const unsigned char *>(P);
  return static_cast<uint16_t>(U[0] | (U[1] << 8));
}
inline uint32_t wireGetU32(const char *P) {
  const unsigned char *U = reinterpret_cast<const unsigned char *>(P);
  return static_cast<uint32_t>(U[0]) | (static_cast<uint32_t>(U[1]) << 8) |
         (static_cast<uint32_t>(U[2]) << 16) |
         (static_cast<uint32_t>(U[3]) << 24);
}
inline uint64_t wireGetU64(const char *P) {
  return static_cast<uint64_t>(wireGetU32(P)) |
         (static_cast<uint64_t>(wireGetU32(P + 4)) << 32);
}

// ---- Frame/payload building (header-only; interposer-safe) -----------------

/// Appends one complete frame to \p Out.
inline void wireAppendFrame(std::string &Out, WireFrame T,
                            std::string_view Payload) {
  wirePutU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.push_back(static_cast<char>(T));
  Out.append(Payload.data(), Payload.size());
}

/// The mandatory first client frame.
inline std::string wireHelloFrame() {
  std::string P;
  wirePutU32(P, WireHelloMagic);
  wirePutU16(P, WireVersion);
  wirePutU16(P, 0); // reserved
  std::string Out;
  wireAppendFrame(Out, WireFrame::Hello, P);
  return Out;
}

/// Appends one declaration entry (u8 kind | u32 length | bytes) to a
/// Declare payload under construction.
inline void wireDeclareEntry(std::string &Payload, WireDeclareKind K,
                             std::string_view Name) {
  Payload.push_back(static_cast<char>(K));
  wirePutU32(Payload, static_cast<uint32_t>(Name.size()));
  Payload.append(Name.data(), Name.size());
}

/// Appends one 13-byte event record to an Events payload under
/// construction (after the leading u32 count, which the caller owns).
inline void wireEventRecord(std::string &Payload, uint8_t Kind,
                            uint32_t Thread, uint32_t Target, uint32_t Loc) {
  Payload.push_back(static_cast<char>(Kind));
  wirePutU32(Payload, Thread);
  wirePutU32(Payload, Target);
  wirePutU32(Payload, Loc);
}

/// One decoded frame. The payload view aliases the decoder's buffer and
/// is valid only until the next append()/next() call.
struct WireFrameView {
  WireFrame Type = WireFrame::Hello;
  std::string_view Payload;
};

/// Incremental frame splitter: append() arbitrary byte chunks, next()
/// yields complete frames. Malformed input (unknown type, payload above
/// WireMaxPayload) is sticky: every later call keeps returning -1, so a
/// desynchronized stream can never be half-interpreted.
class FrameDecoder {
public:
  void append(const char *Data, size_t N) { Buf.append(Data, N); }

  /// 1 = \p F filled and consumed, 0 = need more bytes, -1 = malformed
  /// (error() describes why; the decoder is permanently dead).
  int next(WireFrameView &F) {
    if (!Err.empty())
      return -1;
    const size_t Avail = Buf.size() - Pos;
    if (Avail < WireFrameHeaderSize) {
      compact();
      return 0;
    }
    const uint32_t Len = wireGetU32(Buf.data() + Pos);
    const uint8_t Type = static_cast<uint8_t>(Buf[Pos + 4]);
    if (Len > WireMaxPayload) {
      Err = "frame payload length " + std::to_string(Len) +
            " exceeds the " + std::to_string(WireMaxPayload) + "-byte cap";
      return -1;
    }
    if (Type < static_cast<uint8_t>(WireFrame::Hello) ||
        Type > static_cast<uint8_t>(WireFrame::FinalQuery)) {
      Err = "unknown frame type " + std::to_string(Type);
      return -1;
    }
    if (Avail < WireFrameHeaderSize + Len) {
      compact();
      return 0;
    }
    F.Type = static_cast<WireFrame>(Type);
    F.Payload = std::string_view(Buf.data() + Pos + WireFrameHeaderSize, Len);
    Pos += WireFrameHeaderSize + Len;
    return 1;
  }

  /// Bytes buffered but not yet consumed as frames — nonzero after EOF
  /// means the peer died mid-frame.
  size_t buffered() const { return Buf.size() - Pos; }

  const std::string &error() const { return Err; }

private:
  void compact() {
    if (Pos) {
      Buf.erase(0, Pos);
      Pos = 0;
    }
  }

  std::string Buf;
  size_t Pos = 0;
  std::string Err;
};

// ---- Trace-coupled helpers (WireFormat.cpp; rapid-linking code only) -------

/// Checks a Hello payload; false fills \p Error.
bool wireCheckHello(std::string_view Payload, std::string &Error);

/// Encodes \p T as a complete client stream: one Declare frame per name
/// table (threads, locks, vars, locs, in table order, so the server's
/// interning reproduces the trace's ids exactly) followed by Events
/// frames of at most \p BatchEvents records. No Hello, no Finish — the
/// caller brackets the stream.
std::string encodeTraceFrames(const Trace &T, uint64_t BatchEvents = 8192);

/// Appends the decoded records of an Events payload to \p Out. Returns a
/// ValidationError Status on a count/size mismatch or an event kind
/// outside the §2.1 alphabet; ids are *not* range-checked here (the
/// session's feed validates them against the declared tables).
Status decodeEventsPayload(std::string_view Payload, std::vector<Event> &Out);

/// Invokes \p Fn(kind, name) -> Status for each entry of a Declare
/// payload, stopping at the first non-ok. Returns ValidationError on
/// truncated entries or kinds outside the four name tables.
template <typename Fn>
Status forEachDeclareEntry(std::string_view Payload, Fn &&F) {
  size_t Pos = 0;
  while (Pos != Payload.size()) {
    if (Payload.size() - Pos < 5)
      return Status(StatusCode::ValidationError, "truncated declaration entry");
    const uint8_t Kind = static_cast<uint8_t>(Payload[Pos]);
    if (Kind > static_cast<uint8_t>(WireDeclareKind::Loc))
      return Status(StatusCode::ValidationError,
                    "unknown declaration kind " + std::to_string(Kind));
    const uint32_t Len = wireGetU32(Payload.data() + Pos + 1);
    if (Payload.size() - Pos - 5 < Len)
      return Status(StatusCode::ValidationError,
                    "declaration name overruns the frame");
    Status S = F(static_cast<WireDeclareKind>(Kind),
                 std::string_view(Payload.data() + Pos + 5, Len));
    if (!S.ok())
      return S;
    Pos += 5 + Len;
  }
  return Status::success();
}

} // namespace rapid

#endif // RAPID_IO_WIREFORMAT_H
