//===- io/TextFormat.h - RAPID-style text trace format ----------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader/writer for the line-oriented trace format RAPID consumes from
/// RVPredict's logger:
///
///   <thread>|<op>(<target>)|<loc>
///
/// e.g. `T0|acq(l1)|34`, `T1|r(x)|102`, `T0|fork(T1)|8`. The loc field is
/// optional (a unique location is synthesized when absent). Lines starting
/// with '#' and blank lines are ignored. Parsing never throws; failures
/// are returned with line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_TEXTFORMAT_H
#define RAPID_IO_TEXTFORMAT_H

#include "trace/Trace.h"

#include <string>
#include <string_view>

namespace rapid {

class TraceBuilder;

/// Result of parsing a textual trace.
struct TextParseResult {
  bool Ok = false;
  std::string Error; ///< "line 12: unknown operation 'foo'".
  Trace T;
};

/// Parses \p Text into a trace.
TextParseResult parseTextTrace(std::string_view Text);

/// Parses a single already-trimmed, non-empty, non-comment line into
/// \p Builder. Returns false and sets \p Error (no line-number prefix; the
/// caller tracks position) on malformed input. This is the incremental
/// unit the chunked reader in pipeline/ feeds line by line.
bool parseTextTraceLine(std::string_view Line, TraceBuilder &Builder,
                        std::string &Error);

/// Trims spaces and a trailing '\r' from \p Line in place. Returns false
/// for lines the parser skips (blank or '#' comment).
bool trimTextTraceLine(std::string_view &Line);

/// Renders \p T in the text format (one event per line).
std::string writeTextTrace(const Trace &T);

} // namespace rapid

#endif // RAPID_IO_TEXTFORMAT_H
