//===- io/FaultInjector.cpp - Deterministic feed-source fault injection --------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/FaultInjector.h"

#include "support/Prng.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace rapid {

namespace {

class FaultyFeedSource final : public FeedSource {
public:
  FaultyFeedSource(std::unique_ptr<FeedSource> Inner, FaultyFeedConfig C)
      : Inner(std::move(Inner)), C(C), Rng(C.Seed) {}

  long read(char *Buf, size_t Max) override {
    if (C.CutAfterBytes != 0 && Delivered >= C.CutAfterBytes) {
      // A dead peer keeps reporting EOF on every retry; so do we.
      if (C.Stats && !CutFired) {
        ++C.Stats->Cuts;
        CutFired = true;
      }
      return Eof;
    }
    if (C.WouldBlockPermille != 0 && Rng.chance(C.WouldBlockPermille, 1000)) {
      if (C.Stats)
        ++C.Stats->WouldBlocks;
      return WouldBlock;
    }
    if (C.DelayPermille != 0 && Rng.chance(C.DelayPermille, 1000)) {
      if (C.Stats)
        ++C.Stats->Delays;
      std::this_thread::sleep_for(
          std::chrono::microseconds(Rng.nextBelow(C.MaxDelayUs + 1)));
    }
    size_t Want = Max;
    if (Max > 1 && C.ShortReadPermille != 0 &&
        Rng.chance(C.ShortReadPermille, 1000)) {
      if (C.Stats)
        ++C.Stats->ShortReads;
      Want = 1 + static_cast<size_t>(Rng.nextBelow(Max - 1));
    }
    if (C.CutAfterBytes != 0)
      Want = std::min<uint64_t>(Want, C.CutAfterBytes - Delivered);
    const long N = Inner->read(Buf, Want);
    if (N > 0)
      Delivered += static_cast<uint64_t>(N);
    return N;
  }

  int pollFd() const override { return Inner->pollFd(); }
  const std::string &name() const override { return Inner->name(); }
  const Status &status() const override { return Inner->status(); }

private:
  std::unique_ptr<FeedSource> Inner;
  FaultyFeedConfig C;
  Prng Rng;
  uint64_t Delivered = 0;
  bool CutFired = false;
};

} // namespace

std::unique_ptr<FeedSource> makeFaultyFeedSource(
    std::unique_ptr<FeedSource> Inner, const FaultyFeedConfig &Config) {
  return std::make_unique<FaultyFeedSource>(std::move(Inner), Config);
}

} // namespace rapid
