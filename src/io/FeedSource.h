//===- io/FeedSource.h - Byte-stream feed sources ---------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport abstraction of the serving layer: a FeedSource is a
/// byte stream carrying wire frames (io/WireFormat.h) from one producer —
/// an accepted socket, a FIFO writer, or a shared-memory ring — toward
/// one AnalysisSession. Sources deliberately know nothing about frames
/// or sessions; serve/WireIngestor.h stacks the protocol on top, which
/// is what keeps the three transports bit-for-bit interchangeable (the
/// round-trip pins in tests/serve_test.cpp).
///
/// Two consumption styles:
///
///   - blocking pumps (FIFO/ring helper threads, tests) just call read()
///     in a loop until 0 (EOF) or a negative error;
///   - the server's poll loop uses pollFd() to wait for readability and
///     keeps the fd non-blocking, in which case read() may also return
///     -EAGAIN-style WouldBlock.
///
//===----------------------------------------------------------------------===//

#ifndef RAPID_IO_FEEDSOURCE_H
#define RAPID_IO_FEEDSOURCE_H

#include "support/Status.h"

#include <memory>
#include <string>

namespace rapid {

class ShmRing;

/// A byte source feeding one session's wire stream.
class FeedSource {
public:
  /// read() results at or below zero.
  static constexpr long Eof = 0;
  static constexpr long WouldBlock = -1; ///< Pollable source, no data yet.
  static constexpr long Failed = -2;     ///< status() has the reason.

  virtual ~FeedSource();

  /// Reads up to \p Max bytes into \p Buf. Returns the byte count, Eof,
  /// WouldBlock (non-blocking fd sources only) or Failed.
  virtual long read(char *Buf, size_t Max) = 0;

  /// A pollable fd for readiness-driven consumers, or -1 if the source
  /// can only be consumed by a blocking read loop (the shm ring).
  virtual int pollFd() const { return -1; }

  /// Human-readable origin ("unix:...", "fifo:...", "shm:...").
  virtual const std::string &name() const = 0;

  /// The failure behind a Failed read, if any.
  virtual const Status &status() const = 0;
};

/// Wraps an open fd (accepted socket, opened FIFO, pipe). Takes ownership
/// and closes it on destruction. Honors whatever blocking mode the fd is
/// already in: a non-blocking fd yields WouldBlock, a blocking one parks
/// in the kernel.
std::unique_ptr<FeedSource> makeFdFeedSource(int Fd, std::string Name);

/// Wraps an attached ring (consumer side). readSome() semantics: blocks
/// until data or producer close.
std::unique_ptr<FeedSource> makeShmRingFeedSource(ShmRing Ring,
                                                  std::string Name);

/// Opens a source from a spec string:
///
///   unix:PATH   connect to a listening Unix-domain socket
///   fifo:PATH   open a FIFO for reading (blocks until a writer appears)
///   shm:PATH    attach to a ShmRing segment
///
/// Returns null and fills \p Err on failure.
std::unique_ptr<FeedSource> openFeedSource(const std::string &Spec,
                                           Status &Err);

} // namespace rapid

#endif // RAPID_IO_FEEDSOURCE_H
