//===- bench/bench_fig7.cpp - Reproduce Figure 7 (E2) -------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Figure 7 plots the number of races RVPredict reports on eclipse,
// ftpserver and derby as the window size and solver timeout vary — the
// paper's point being the erratic interplay ("there is no clear pattern"):
// small windows cut races apart, large windows blow the solver budget.
// We sweep the same grid with the maximal-causality predictor, whose
// state budget stands in for the solver timeout.
//
// Environment: RAPID_SCALE (default 0.02) scales the models.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "mcm/WindowedPredictor.h"
#include "support/TablePrinter.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>

using namespace rapid;

int main() {
  double Scale = 0.02;
  if (const char *S = std::getenv("RAPID_SCALE"))
    Scale = std::atof(S);

  const uint64_t Windows[] = {1000, 2000, 5000, 10000};
  const uint64_t Budgets[] = {20000, 40000, 80000}; // "60s/120s/240s".
  const char *BudgetNames[] = {"60s~", "120s~", "240s~"};

  std::printf("Figure 7 reproduction: windowed predictive races per "
              "(window, budget)\n(scale %.3f; WCP column = unwindowed "
              "linear-time analysis for reference)\n\n",
              Scale);

  for (const char *Name : {"eclipse", "ftpserver", "derby"}) {
    WorkloadSpec Spec = workloadSpec(Name);
    double S = Spec.Events > 100000 ? Scale : 1.0;
    Trace T = makeWorkload(Spec, S);

    WcpDetector Wcp(T);
    RunResult WcpRun = runDetector(Wcp, T);

    std::printf("%s (%llu events; unwindowed WCP finds %llu):\n", Name,
                (unsigned long long)T.size(),
                (unsigned long long)WcpRun.Report.numDistinctPairs());
    TablePrinter Table({"window", BudgetNames[0], BudgetNames[1],
                        BudgetNames[2], "exhausted windows"});
    for (uint64_t W : Windows) {
      std::vector<std::string> Row{std::to_string(W / 1000) + "K"};
      uint64_t LastExhausted = 0, LastWindows = 0;
      for (uint64_t B : Budgets) {
        PredictorOptions Opts;
        Opts.WindowSize = W;
        Opts.BudgetPerWindow = B;
        PredictorResult R = runWindowedPredictor(T, Opts);
        Row.push_back(std::to_string(R.Report.numDistinctPairs()));
        LastExhausted = R.WindowsExhausted;
        LastWindows = R.NumWindows;
      }
      Row.push_back(std::to_string(LastExhausted) + "/" +
                    std::to_string(LastWindows));
      Table.addRow(Row);
    }
    Table.print();
    std::printf("\n");
  }

  std::printf("Reading: races move non-monotonically with both knobs — "
              "exactly the \"no clear pattern\" of the paper's Figure 7 — "
              "while unwindowed WCP is flat and complete.\n");
  return 0;
}
