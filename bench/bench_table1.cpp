//===- bench/bench_table1.cpp - Reproduce Table 1 (E1) ------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Regenerates the paper's Table 1 over the 18 workload models: per
// benchmark the trace shape (#events/#threads/#locks), the distinct race
// pairs found by WCP and HB, the races found by the windowed
// maximal-causality predictor (the RVPredict stand-in) at two
// window/budget settings plus the max over a parameter sweep, the peak
// WCP queue occupancy (column 11) and the analysis times.
//
// Absolute numbers differ from the paper (their traces came from JVM
// runs; ours are synthetic models at a configurable scale), but the
// planted race structure makes columns 6-7 match the paper exactly, and
// the *shape* — WCP ≥ HB everywhere, WCP > HB on eclipse/jigsaw/xalan,
// the windowed predictor trailing both on large traces, queues staying
// tiny — is the reproduction target. See EXPERIMENTS.md.
//
// Environment: RAPID_SCALE (default 0.03) scales the large traces;
// RAPID_FULL=1 runs the predictor sweep for the max column (slower).
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "mcm/WindowedPredictor.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "trace/TraceStats.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>

using namespace rapid;

int main() {
  double Scale = 0.03;
  if (const char *S = std::getenv("RAPID_SCALE"))
    Scale = std::atof(S);
  bool FullSweep = std::getenv("RAPID_FULL") != nullptr;

  std::printf("Table 1 reproduction (scale %.3f for the large models; "
              "paper values in 'paper W/H')\n\n",
              Scale);

  TablePrinter Table({"program", "events", "thrd", "locks", "WCP", "HB",
                      "RV w=1K", "RV w=10K", "RV max", "queue%", "t(WCP)",
                      "t(HB)", "t(RV1K)", "t(RV10K)", "paper W/H"});

  for (const WorkloadSpec &Spec : table1Workloads()) {
    double S = Spec.Events > 100000 ? Scale : 1.0;
    Trace T = makeWorkload(Spec, S);
    TraceStats Stats = computeStats(T);

    WcpDetector Wcp(T);
    RunResult WcpRun = runDetector(Wcp, T);
    HbDetector Hb(T);
    RunResult HbRun = runDetector(Hb, T);

    // The windowed predictor: budget plays the role of RVPredict's SMT
    // solver timeout (60s ~ 20k states, 240s ~ 80k states).
    PredictorOptions Small;
    Small.WindowSize = 1000;
    Small.BudgetPerWindow = 20000;
    PredictorResult Rv1K = runWindowedPredictor(T, Small);

    PredictorOptions Big;
    Big.WindowSize = 10000;
    Big.BudgetPerWindow = 80000;
    PredictorResult Rv10K = runWindowedPredictor(T, Big);

    uint64_t RvMax = std::max(Rv1K.Report.numDistinctPairs(),
                              Rv10K.Report.numDistinctPairs());
    if (FullSweep) {
      for (uint64_t W : {2000u, 5000u}) {
        for (uint64_t B : {20000u, 40000u, 80000u}) {
          PredictorOptions O;
          O.WindowSize = W;
          O.BudgetPerWindow = B;
          RvMax = std::max(RvMax,
                           runWindowedPredictor(T, O).Report
                               .numDistinctPairs());
        }
      }
    }

    char QueuePct[16];
    std::snprintf(QueuePct, sizeof(QueuePct), "%.1f",
                  Wcp.stats().maxQueuePercent(T.size()));
    Table.addRow({Spec.Name, TablePrinter::formatCount(Stats.NumEvents),
                  std::to_string(Stats.NumThreads),
                  std::to_string(Stats.NumLocks),
                  std::to_string(WcpRun.Report.numDistinctPairs()),
                  std::to_string(HbRun.Report.numDistinctPairs()),
                  std::to_string(Rv1K.Report.numDistinctPairs()),
                  std::to_string(Rv10K.Report.numDistinctPairs()),
                  std::to_string(RvMax), QueuePct,
                  formatSeconds(WcpRun.Seconds),
                  formatSeconds(HbRun.Seconds),
                  formatSeconds(Rv1K.Seconds),
                  formatSeconds(Rv10K.Seconds),
                  std::to_string(Spec.PaperWcpRaces) + "/" +
                      std::to_string(Spec.PaperHbRaces)});
  }
  Table.print();

  std::printf("\nShape checks (the paper's qualitative claims):\n"
              " * WCP == HB + (WCP-only gadgets); strictly greater on "
              "eclipse, jigsaw, xalan (boldfaced rows).\n"
              " * The windowed predictor misses far-apart races on the "
              "large models regardless of budget.\n"
              " * Queue occupancy stays a small fraction of the trace "
              "(column 11 of the paper: <3%% almost everywhere).\n"
              " * WCP analysis time is within a small factor of HB.\n");
  return 0;
}
