//===- bench/bench_pipeline.cpp - Sequential vs parallel pipeline -------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Measures the pipeline's multi-detector fan-out: the wall-clock of running
// WCP + HB + Eraser one after another (three sequential full-trace
// analyses, the pre-pipeline workflow) against one parallel pipeline run
// with the same three lanes sharing a single trace residency.
//
// Results are emitted as JSON to stdout and to BENCH_pipeline.json (or
// --out PATH) so the perf trajectory is machine-readable across PRs. The
// generated trace defaults to >= 1M events (--events N to change), the
// pool to 4 workers (--threads N; 0 clamps to hardware concurrency), and
// the per-variable shard count per lane to 4 (--shards N; the var-sharded
// pass attacks the WCP-bound critical path while staying bit-identical).
//
// The streamed sections (--stream, on by default; --no-stream to skip)
// round-trip the trace through a binary file and compare batch (ingest
// fully, then analyze) against an api/AnalysisSession feedFile run where
// analysis consumes published chunks while ingestion is still appending —
// the overlap the session API exists for. Three sessions are measured:
// sequential lanes ("streamed"), a windowed session that dispatches each
// window as its range publishes ("streamed_windowed", window size
// --window N, default events/8), and a var-sharded session that runs the
// capture clock pass and shard checks behind the reader
// ("streamed_var_sharded"). Every streamed run's reports are cross-checked
// lane by lane against its batch twin before timings are recorded — a
// divergence fails the bench.
//
// Three observability sections ride along: "stage_breakdown" republishes
// each streamed session's telemetry (obs/Metrics.h) with *_ns stages as
// seconds; "metrics_overhead" re-runs the streamed sequential session
// with metrics enabled vs disabled (min-of-3) and fails the bench when
// the enabled wall exceeds the disabled one by more than 5% (and 20ms);
// "scaling" sweeps the parallel fan-out across 1/2/4/8 workers.
//
// The "late_declaration" section is the restart-heavy workload: a
// declaration-dense trace (--late-workload, default "eclipse": thousands
// of lock/thread names first mentioned deep into the stream) scaled to
// the same event target, round-tripped as *text* — every name declares
// lazily at its first mid-stream mention — and streamed against the
// declared-up-front *binary* path on the same trace. It reports the
// text/binary wall ratio (growable detector state keeps the two in the
// same overlap envelope; on multi-core hosts both walls sit on the
// slowest lane) and the total restart count, which is structurally 0 —
// a nonzero count fails the bench.
//
// The "syncp" section benchmarks the sync-preserving lane on its own
// random-program trace (reduced event count: the SP-closure re-decides
// every candidate pair exactly, so its cost scales with candidates, not
// just events). It records the sequential wall, race/candidate/closure
// counts from the lane telemetry, and a streamed session's wall on the
// same trace — the streamed report must match the batch one or the bench
// fails. --acq-rel-ratio P (percent, default 25) is the generator's
// release-probability knob (gen/RandomTraceGen.h ReleasePercent): low
// values hold critical sections open across many accesses, which is the
// stress axis for the closure's per-lock maxima and WCP's queues.
//
// The "serve_resilience" section prices fault tolerance: one trace
// streamed through a live RaceServer twice over a resumable client —
// uninterrupted, then with four seeded mid-stream connection kills. The
// reports must match bit-for-bit, and faulty/clean wall is the resume
// overhead ratio scripts/check_bench.py bounds on non-degraded hosts.
//
// Usage: bench_pipeline [--events N] [--threads N] [--shards N]
//                       [--window N] [--workload NAME]
//                       [--late-workload NAME] [--out PATH] [--no-stream]
//                       [--zipf-theta F] [--acq-rel-ratio P]
//
// --workload accepts any Table 1 model name plus "zipf", the skewed-
// popularity stress model (variable ranks drawn Zipf(--zipf-theta,
// default 0.9) — hot vars pile onto single var-shards and lock stripes).
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "detect/DetectorRunner.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "io/TraceFile.h"
#include "lockset/EraserDetector.h"
#include "obs/Metrics.h"
#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "serve/RaceServer.h"
#include "serve/WireClient.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "syncp/SyncPDetector.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace rapid;

namespace {

struct LaneSpec {
  const char *Name;
  DetectorFactory Make;
};

/// Session-level telemetry → one stage_breakdown entry: *_ns counters
/// render as seconds (the unit every other bench number uses), counts
/// and gauges pass through verbatim. Samples arrive name-sorted.
std::string stageJson(const std::vector<MetricSample> &Telemetry) {
  std::string J = "{";
  bool First = true;
  for (const MetricSample &S : Telemetry) {
    if (!First)
      J += ", ";
    First = false;
    if (S.Name.size() > 3 &&
        S.Name.compare(S.Name.size() - 3, 3, "_ns") == 0)
      J += "\"" + S.Name.substr(0, S.Name.size() - 3) +
           "_seconds\": " + jsonNum(static_cast<double>(S.Value) / 1e9);
    else
      J += "\"" + S.Name + "\": " + std::to_string(S.Value);
  }
  J += "}";
  return J;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TargetEvents = 1050000;
  unsigned Threads = 4;
  uint32_t Shards = 4;
  uint64_t WindowEvents = 0; // 0 = events/8, set after generation.
  bool Stream = true;
  std::string Workload = "montecarlo";
  std::string LateWorkload = "eclipse";
  double ZipfTheta = 0.9;
  uint32_t AcqRelRatio = 25; // gen/RandomTraceGen.h ReleasePercent.
  std::string OutPath = "BENCH_pipeline.json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--events" && I + 1 < Argc)
      TargetEvents = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--threads" && I + 1 < Argc)
      Threads = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--shards" && I + 1 < Argc)
      Shards = static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--window" && I + 1 < Argc)
      WindowEvents = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--stream")
      Stream = true;
    else if (Arg == "--no-stream")
      Stream = false;
    else if (Arg == "--workload" && I + 1 < Argc)
      Workload = Argv[++I];
    else if (Arg == "--late-workload" && I + 1 < Argc)
      LateWorkload = Argv[++I];
    else if (Arg == "--zipf-theta" && I + 1 < Argc)
      ZipfTheta = std::strtod(Argv[++I], nullptr);
    else if (Arg == "--acq-rel-ratio" && I + 1 < Argc)
      AcqRelRatio =
          static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--out" && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if (Threads == 0) {
    // "--threads 0" must not mean a zero-worker pool; clamp to the
    // hardware concurrency the pool would default to, and say so.
    Threads = ThreadPool::defaultConcurrency();
    std::fprintf(stderr, "clamped --threads 0 to hardware concurrency "
                 "(%u)\n", Threads);
  }
  // An oversubscribed run cannot measure parallel speedup — lanes
  // time-slice one another, so wall clocks and overlap numbers reflect
  // the scheduler, not the code. The JSON carries the flag so consumers
  // (scripts/check_bench.py, trajectory tooling) skip speedup-based
  // assertions instead of failing on noise.
  const unsigned HardwareThreads = ThreadPool::defaultConcurrency();
  const bool Degraded = Threads > HardwareThreads;
  if (Degraded)
    std::fprintf(stderr,
                 "warning: %u worker(s) oversubscribe %u hardware "
                 "thread(s); emitting \"degraded\": true — speedup and "
                 "overlap numbers are scheduler noise on this host\n",
                 Threads, HardwareThreads);

  Trace T;
  if (Workload == "zipf") {
    // Skew stress model, not a Table 1 row: Zipf(theta)-popular variables
    // behind striped locks — the worst case for var-shard balance.
    ZipfWorkloadSpec ZSpec;
    ZSpec.Events = TargetEvents;
    ZSpec.Theta = ZipfTheta;
    if (ZipfTheta < 0 || ZipfTheta >= 1) {
      std::fprintf(stderr, "error: --zipf-theta must be in [0, 1)\n");
      return 1;
    }
    std::fprintf(stderr, "generating 'zipf' (theta %.2f, target %llu "
                 "events)...\n",
                 ZipfTheta, (unsigned long long)TargetEvents);
    T = makeZipfWorkload(ZSpec);
    for (int Try = 0; Try < 4 && T.size() < TargetEvents; ++Try) {
      ZSpec.Events = static_cast<uint64_t>(
          1.05 * static_cast<double>(ZSpec.Events) *
          static_cast<double>(TargetEvents) / static_cast<double>(T.size()));
      std::fprintf(stderr, "undershot (%llu events); retargeting to %llu\n",
                   (unsigned long long)T.size(),
                   (unsigned long long)ZSpec.Events);
      T = makeZipfWorkload(ZSpec);
    }
  } else {
    WorkloadSpec Spec = workloadSpec(Workload);
    double Scale = static_cast<double>(TargetEvents) /
                   static_cast<double>(Spec.Events);
    std::fprintf(stderr, "generating '%s' at scale %.2f (target %llu "
                 "events)...\n",
                 Workload.c_str(), Scale,
                 (unsigned long long)TargetEvents);
    T = makeWorkload(Spec, Scale);
    // The generator treats the event count as approximate; rescale until
    // the target is a true floor so "--events 1000000" really means >= 1M.
    for (int Try = 0; Try < 4 && T.size() < TargetEvents; ++Try) {
      Scale *= 1.05 * static_cast<double>(TargetEvents) /
               static_cast<double>(T.size());
      std::fprintf(stderr, "undershot (%llu events); rescaling to %.2f\n",
                   (unsigned long long)T.size(), Scale);
      T = makeWorkload(Spec, Scale);
    }
  }
  std::fprintf(stderr, "trace: %llu events, %u threads, %u locks, %u vars\n",
               (unsigned long long)T.size(), T.numThreads(), T.numLocks(),
               T.numVars());

  std::vector<LaneSpec> Lanes = {
      {"WCP", [](const Trace &F) { return std::make_unique<WcpDetector>(F); }},
      {"HB", [](const Trace &F) { return std::make_unique<HbDetector>(F); }},
      {"Eraser",
       [](const Trace &F) { return std::make_unique<EraserDetector>(F); }},
  };

  // Baseline: the pre-pipeline workflow — three separate sequential runs.
  double SeqTotal = 0;
  std::string SeqJson;
  for (LaneSpec &L : Lanes) {
    std::unique_ptr<Detector> D = L.Make(T);
    RunResult R = runDetector(*D, T);
    SeqTotal += R.Seconds;
    std::fprintf(stderr, "sequential %-9s %6.2fs  %llu race pair(s)\n",
                 L.Name, R.Seconds,
                 (unsigned long long)R.Report.numDistinctPairs());
    if (!SeqJson.empty())
      SeqJson += ", ";
    SeqJson += "{\"detector\": \"" + std::string(L.Name) +
               "\", \"seconds\": " + jsonNum(R.Seconds) +
               ", \"races\": " +
               std::to_string(R.Report.numDistinctPairs()) + "}";
  }

  // Pipeline: same three detectors, one fan-out, Threads workers.
  PipelineOptions Opts;
  Opts.NumThreads = Threads;
  AnalysisPipeline Pipeline(Opts);
  for (LaneSpec &L : Lanes)
    Pipeline.addDetector(L.Make, L.Name);
  PipelineResult P = Pipeline.run(T);
  bool LaneFailed = false;
  // A failed lane's report is partial/empty; recording it as a measurement
  // would silently corrupt the cross-PR perf trajectory — fail the bench.
  auto laneJson = [&LaneFailed](const LaneResult &L, const char *Mode) {
    if (!L.Error.empty()) {
      std::fprintf(stderr, "error: %s lane %s failed: %s\n", Mode,
                   L.DetectorName.c_str(), L.Error.c_str());
      LaneFailed = true;
      return std::string();
    }
    std::fprintf(stderr, "%-10s %-9s %6.2fs  %llu race pair(s)\n", Mode,
                 L.DetectorName.c_str(), L.Seconds,
                 (unsigned long long)L.Report.numDistinctPairs());
    return "{\"detector\": \"" + L.DetectorName +
           "\", \"seconds\": " + jsonNum(L.Seconds) + ", \"races\": " +
           std::to_string(L.Report.numDistinctPairs()) + "}";
  };
  std::string ParJson;
  for (const LaneResult &L : P.Lanes) {
    std::string One = laneJson(L, "parallel");
    if (One.empty())
      continue;
    if (!ParJson.empty())
      ParJson += ", ";
    ParJson += One;
  }

  // Var-sharded pipeline: same lanes, each split into a clock pass plus
  // per-variable check shards (bit-identical reports; see
  // detect/ShardedAccessHistory.h). This is the knob that attacks the
  // slowest-lane bound of the plain fan-out.
  std::string VarJson;
  double VarSeconds = 0;
  if (Shards > 0) {
    PipelineOptions VOpts;
    VOpts.NumThreads = Threads;
    VOpts.VarShards = Shards;
    AnalysisPipeline VarPipeline(VOpts);
    for (LaneSpec &L : Lanes)
      VarPipeline.addDetector(L.Make, L.Name);
    PipelineResult V = VarPipeline.run(T);
    VarSeconds = V.Seconds;
    for (const LaneResult &L : V.Lanes) {
      std::string One = laneJson(L, "varshard");
      if (One.empty())
        continue;
      if (!VarJson.empty())
        VarJson += ", ";
      VarJson += One;
    }
    std::fprintf(stderr, "var-sharded wall %.2fs (%u shard(s)/lane)\n",
                 V.Seconds, Shards);
  }

  // Streamed sessions vs batch: write the trace to a binary file once,
  // then for each mode (a) ingest fully and analyze, (b) run one
  // AnalysisSession that analyzes published chunks while feedFile is
  // still parsing. Reports are cross-checked lane by lane; each section's
  // JSON records how much wall clock the overlap saves. All four session
  // modes stream now — this measures the three parallel ones.
  if (WindowEvents == 0)
    WindowEvents = std::max<uint64_t>(T.size() / 8, 1);
  struct StreamSection {
    std::string Json;       ///< Full JSON object, "" until the run passed.
    std::string Stages;     ///< Session telemetry for stage_breakdown.
    double Wall = 0;
  };
  // The batch ingest is mode-independent: load (and time) the round-trip
  // file once, and let every section reuse the trace and the number.
  Trace BatchLoaded;
  double BatchIngest = 0;
  auto streamedSection = [&](const char *SectionName, RunMode Mode,
                             const std::string &TracePath,
                             const char *Extra) -> StreamSection {
    StreamSection Out;
    AnalysisConfig SCfg;
    SCfg.Mode = Mode;
    SCfg.Threads = Threads;
    if (Mode == RunMode::Windowed)
      SCfg.WindowEvents = WindowEvents;
    if (Mode == RunMode::VarSharded)
      SCfg.VarShards = Shards;
    for (LaneSpec &L : Lanes)
      SCfg.addDetector(L.Make, L.Name);

    Timer AnalyzeClock;
    AnalysisResult Batch = analyzeTrace(SCfg, BatchLoaded);
    double BatchAnalyze = AnalyzeClock.seconds();

    Timer StreamClock;
    AnalysisSession Session(SCfg);
    Status Fed = Session.feedFile(TracePath);
    AnalysisResult Streamed = Session.finish();
    Out.Wall = StreamClock.seconds();

    if (!Fed.ok() || !Streamed.ok() || !Batch.ok()) {
      Status Why = !Fed.ok() ? Fed
                   : !Streamed.ok() ? Streamed.firstError()
                                    : Batch.firstError();
      std::fprintf(stderr, "error: %s section failed: %s\n", SectionName,
                   Why.str().c_str());
      LaneFailed = true;
      return Out;
    }
    std::string LanesJson;
    for (size_t L = 0; L != Streamed.Lanes.size(); ++L) {
      const LaneReport &SL = Streamed.Lanes[L];
      const LaneReport &BL = Batch.Lanes[L];
      if (SL.Report.numDistinctPairs() != BL.Report.numDistinctPairs() ||
          SL.Report.numInstances() != BL.Report.numInstances()) {
        // A silent divergence here would corrupt the perf record *and*
        // the correctness story; fail loudly instead.
        std::fprintf(stderr,
                     "error: %s %s diverged from batch "
                     "(%llu/%llu vs %llu/%llu races/instances)\n",
                     SectionName, SL.DetectorName.c_str(),
                     (unsigned long long)SL.Report.numDistinctPairs(),
                     (unsigned long long)SL.Report.numInstances(),
                     (unsigned long long)BL.Report.numDistinctPairs(),
                     (unsigned long long)BL.Report.numInstances());
        LaneFailed = true;
        return Out;
      }
      std::fprintf(stderr, "%-18s %-12s %6.2fs  %llu race pair(s)\n",
                   SectionName, SL.DetectorName.c_str(), SL.Seconds,
                   (unsigned long long)SL.Report.numDistinctPairs());
      if (!LanesJson.empty())
        LanesJson += ", ";
      LanesJson += "{\"detector\": \"" + SL.DetectorName +
                   "\", \"seconds\": " + jsonNum(SL.Seconds) +
                   ", \"races\": " +
                   std::to_string(SL.Report.numDistinctPairs()) + "}";
    }
    // Structural invariants of the lock-free publish path, checked on
    // every run: the watermark must cover exactly what ingestion
    // validated, and the retired consumer lock-wait must never reappear
    // (a nonzero value means a mutex crept back between publication and
    // the lanes).
    uint64_t PublishedEvents = 0;
    bool SawPublished = false;
    for (const MetricSample &MS : Streamed.Telemetry) {
      if (MS.Name == "publish.events") {
        PublishedEvents = MS.Value;
        SawPublished = true;
      } else if (MS.Name == "consume.lock_wait_ns" && MS.Value != 0) {
        std::fprintf(stderr,
                     "error: %s reports consume.lock_wait_ns = %llu; the "
                     "publish path must not take a lock\n",
                     SectionName, (unsigned long long)MS.Value);
        LaneFailed = true;
        return Out;
      }
    }
    if (!SawPublished || PublishedEvents != Streamed.EventsIngested) {
      std::fprintf(stderr,
                   "error: %s published %llu event(s) but ingested %llu — "
                   "the watermark diverged from ingestion\n",
                   SectionName, (unsigned long long)PublishedEvents,
                   (unsigned long long)Streamed.EventsIngested);
      LaneFailed = true;
      return Out;
    }
    double BatchTotal = BatchIngest + BatchAnalyze;
    std::fprintf(stderr,
                 "%s wall %.2fs vs batch %.2fs (ingest %.2fs + "
                 "analyze %.2fs): %.2fs saved by overlap\n",
                 SectionName, Out.Wall, BatchTotal, BatchIngest,
                 BatchAnalyze, BatchTotal - Out.Wall);
    Out.Json = std::string("{\"wall_seconds\": ") + jsonNum(Out.Wall) +
               ", \"ingest_seconds\": " + jsonNum(Streamed.IngestSeconds) +
               ", \"batch_ingest_seconds\": " + jsonNum(BatchIngest) +
               ", \"batch_analyze_seconds\": " + jsonNum(BatchAnalyze) +
               ", \"batch_total_seconds\": " + jsonNum(BatchTotal) +
               ", \"overlap_saved_seconds\": " +
               jsonNum(BatchTotal - Out.Wall) + Extra +
               ", \"lanes\": [" + LanesJson + "]}";
    Out.Stages = stageJson(Streamed.Telemetry);
    return Out;
  };

  StreamSection StreamSeq, StreamWin, StreamVar;
  std::string LateJson;
  std::string OverheadJson;
  if (Stream) {
    std::string TracePath = OutPath + ".stream_trace.bin";
    std::string SaveErr = saveTraceFile(T, TracePath);
    if (!SaveErr.empty()) {
      std::fprintf(stderr, "error: %s\n", SaveErr.c_str());
      return 1;
    }
    Timer IngestClock;
    TraceLoadResult Load = loadTraceFileChunked(TracePath);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.status().str().c_str());
      return 1;
    }
    BatchIngest = IngestClock.seconds();
    BatchLoaded = std::move(Load.T);
    StreamSeq = streamedSection("streamed", RunMode::Sequential, TracePath,
                                "");
    std::string WinExtra =
        ", \"window_events\": " + std::to_string(WindowEvents);
    StreamWin = streamedSection("streamed_windowed", RunMode::Windowed,
                                TracePath, WinExtra.c_str());
    if (Shards > 0) {
      std::string VarExtra =
          ", \"shards_per_lane\": " + std::to_string(Shards);
      StreamVar = streamedSection("streamed_var_sharded",
                                  RunMode::VarSharded, TracePath,
                                  VarExtra.c_str());
    }

    // Disabled-metrics overhead guard: the obs/ layer promises that
    // Metrics=false costs nothing but a dead branch per update, so the
    // enabled/disabled walls of the same streamed sequential run must
    // stay within 5% of each other. Best-of-3 per side, with the A/B
    // runs interleaved (enabled, disabled, enabled, ...) so slow drift —
    // thermal throttling, page-cache warmup — lands on both sides
    // instead of being attributed to whichever ran second; the relative
    // budget only binds when the absolute delta is above timer jitter
    // (20ms).
    {
      AnalysisConfig OCfg;
      OCfg.Mode = RunMode::Sequential;
      OCfg.Threads = Threads;
      for (LaneSpec &L : Lanes)
        OCfg.addDetector(L.Make, L.Name);
      auto oneWall = [&](bool Metrics) {
        AnalysisConfig C = OCfg;
        C.Metrics = Metrics;
        Timer Clock;
        AnalysisSession Session(C);
        Status Fed = Session.feedFile(TracePath);
        AnalysisResult R = Session.finish();
        double Wall = Clock.seconds();
        if (!Fed.ok() || !R.ok()) {
          std::fprintf(stderr, "error: metrics_overhead run failed: %s\n",
                       (!Fed.ok() ? Fed : R.firstError()).str().c_str());
          return -1.0;
        }
        return Wall;
      };
      double Enabled = -1, Disabled = -1;
      for (int Rep = 0; Rep != 3; ++Rep) {
        double E = oneWall(true);
        double D = oneWall(false);
        if (E < 0 || D < 0) {
          Enabled = Disabled = -1;
          break;
        }
        if (Enabled < 0 || E < Enabled)
          Enabled = E;
        if (Disabled < 0 || D < Disabled)
          Disabled = D;
      }
      if (Enabled < 0 || Disabled < 0) {
        LaneFailed = true;
      } else {
        double Ratio = Disabled > 0 ? Enabled / Disabled : 1.0;
        std::fprintf(stderr,
                     "metrics overhead: enabled %.3fs vs disabled %.3fs "
                     "(ratio %.3f)\n",
                     Enabled, Disabled, Ratio);
        if (Ratio > 1.05 && Enabled - Disabled > 0.02) {
          std::fprintf(stderr,
                       "error: metrics overhead %.1f%% exceeds the 5%% "
                       "budget\n",
                       (Ratio - 1.0) * 100.0);
          LaneFailed = true;
        }
        OverheadJson =
            std::string("{\"enabled_seconds\": ") + jsonNum(Enabled) +
            ", \"disabled_seconds\": " + jsonNum(Disabled) +
            ", \"ratio\": " + jsonNum(Ratio) + "}";
      }
    }

    // Late-declaration section: the restart-heavy workload. A
    // declaration-dense trace's text form declares every thread/lock/
    // variable/location lazily, at its first mention mid-stream — the
    // case that used to force text inputs to buffer to EOF (and push
    // sessions to rebuild-and-replay). Growable detector state streams
    // it chunk by chunk like a binary file, so the section compares
    // streamed *text* ingestion (thousands of mid-stream declarations)
    // against the declared-up-front *binary* path on the same trace, and
    // counts restarts (structurally 0).
    {
      WorkloadSpec LateSpec = workloadSpec(LateWorkload);
      Trace LateTrace = makeWorkload(
          LateSpec, static_cast<double>(TargetEvents) /
                        static_cast<double>(LateSpec.Events));
      std::fprintf(stderr,
                   "late_declaration workload '%s': %llu events, %u "
                   "threads, %u locks, %u vars\n",
                   LateWorkload.c_str(), (unsigned long long)LateTrace.size(),
                   LateTrace.numThreads(), LateTrace.numLocks(),
                   LateTrace.numVars());
      std::string LateBinPath = OutPath + ".late_trace.bin";
      std::string TextPath = OutPath + ".late_trace.txt";
      std::string SaveErr = saveTraceFile(LateTrace, LateBinPath);
      if (!SaveErr.empty()) {
        std::fprintf(stderr, "error: writing %s: %s\n", LateBinPath.c_str(),
                     SaveErr.c_str());
        return 1;
      }
      SaveErr = saveTraceFile(LateTrace, TextPath);
      if (!SaveErr.empty()) {
        std::fprintf(stderr, "error: writing %s: %s\n", TextPath.c_str(),
                     SaveErr.c_str());
        return 1;
      }
      AnalysisConfig LCfg;
      LCfg.Mode = RunMode::Sequential;
      LCfg.Threads = Threads;
      for (LaneSpec &L : Lanes)
        LCfg.addDetector(L.Make, L.Name);
      auto runSession = [&](const std::string &Path, double &Wall) {
        Timer Clock;
        AnalysisSession Session(LCfg);
        Status Fed = Session.feedFile(Path);
        AnalysisResult R = Session.finish();
        Wall = Clock.seconds();
        if (!Fed.ok() && R.Overall.ok())
          R.Overall = Fed;
        return R;
      };
      double BinWall = 0, TextWall = 0;
      AnalysisResult BinRun = runSession(LateBinPath, BinWall);
      AnalysisResult TextRun = runSession(TextPath, TextWall);
      uint64_t Restarts = 0;
      bool LateOk = BinRun.ok() && TextRun.ok();
      if (!LateOk)
        std::fprintf(stderr, "error: late_declaration section failed: %s\n",
                     (!BinRun.ok() ? BinRun : TextRun).firstError()
                         .str().c_str());
      std::string LanesJson;
      for (size_t L = 0; LateOk && L != TextRun.Lanes.size(); ++L) {
        const LaneReport &TL = TextRun.Lanes[L];
        const LaneReport &BL = BinRun.Lanes[L];
        Restarts += TL.Restarts + BL.Restarts;
        if (TL.Report.numDistinctPairs() != BL.Report.numDistinctPairs() ||
            TL.Report.numInstances() != BL.Report.numInstances()) {
          std::fprintf(stderr,
                       "error: late_declaration %s text/binary diverged "
                       "(%llu/%llu vs %llu/%llu races/instances)\n",
                       TL.DetectorName.c_str(),
                       (unsigned long long)TL.Report.numDistinctPairs(),
                       (unsigned long long)TL.Report.numInstances(),
                       (unsigned long long)BL.Report.numDistinctPairs(),
                       (unsigned long long)BL.Report.numInstances());
          LateOk = false;
          break;
        }
        if (!LanesJson.empty())
          LanesJson += ", ";
        LanesJson += "{\"detector\": \"" + TL.DetectorName +
                     "\", \"races\": " +
                     std::to_string(TL.Report.numDistinctPairs()) + "}";
      }
      if (LateOk && Restarts != 0) {
        // Zero restarts is a structural invariant now; a nonzero count
        // means the growable-state machinery regressed — fail the bench.
        std::fprintf(stderr,
                     "error: late_declaration counted %llu restart(s)\n",
                     (unsigned long long)Restarts);
        LateOk = false;
      }
      if (!LateOk) {
        LaneFailed = true;
      } else {
        double Ratio = BinWall > 0 ? TextWall / BinWall : 0;
        std::fprintf(stderr,
                     "late_declaration text wall %.2fs vs binary wall "
                     "%.2fs (ratio %.3f), 0 restarts\n",
                     TextWall, BinWall, Ratio);
        if (Ratio > 1.1)
          // The tracked target is <= 1.10. A single-core host cannot hide
          // the text parse behind the lanes (no overlap is possible), so
          // the miss is flagged, not fatal — the JSON carries
          // hardware_threads for interpreting the data point.
          std::fprintf(stderr,
                       "warning: late_declaration ratio %.3f exceeds the "
                       "1.10 target (%u hardware thread(s); parse cannot "
                       "overlap analysis without a second core)\n",
                       Ratio, ThreadPool::defaultConcurrency());
        LateJson = std::string("{\"workload\": \"") + LateWorkload +
                   "\", \"events\": " + std::to_string(LateTrace.size()) +
                   ", \"text_wall_seconds\": " + jsonNum(TextWall) +
                   ", \"binary_wall_seconds\": " + jsonNum(BinWall) +
                   ", \"text_over_binary_ratio\": " + jsonNum(Ratio) +
                   ", \"restarts\": " + std::to_string(Restarts) +
                   ", \"lanes\": [" + LanesJson + "]}";
      }
      std::remove(TextPath.c_str());
      std::remove(LateBinPath.c_str());
    }
    std::remove(TracePath.c_str());
  }

  // Thread-scaling sweep: the same three-lane parallel fan-out at 1, 2,
  // 4 and 8 workers. With three lanes the plain fan-out plateaus at
  // three-way concurrency (the slowest-lane bound); the curve makes that
  // plateau — and any regression in it — visible across PRs.
  std::string ScalingJson;
  {
    double Base = 0;
    for (unsigned N : {1u, 2u, 4u, 8u}) {
      PipelineOptions SOpts;
      SOpts.NumThreads = N;
      AnalysisPipeline ScalePipeline(SOpts);
      for (LaneSpec &L : Lanes)
        ScalePipeline.addDetector(L.Make, L.Name);
      PipelineResult SR = ScalePipeline.run(T);
      for (const LaneResult &L : SR.Lanes)
        if (!L.Error.empty()) {
          std::fprintf(stderr, "error: scaling lane %s failed at %u "
                       "thread(s): %s\n",
                       L.DetectorName.c_str(), N, L.Error.c_str());
          LaneFailed = true;
        }
      if (N == 1)
        Base = SR.Seconds;
      double ScaleSpeedup = SR.Seconds > 0 ? Base / SR.Seconds : 0;
      std::fprintf(stderr, "scaling %u thread(s): %.2fs wall (%.2fx)\n", N,
                   SR.Seconds, ScaleSpeedup);
      if (!ScalingJson.empty())
        ScalingJson += ", ";
      ScalingJson += "{\"threads\": " + std::to_string(N) +
                     ", \"wall_seconds\": " + jsonNum(SR.Seconds) +
                     ", \"speedup\": " + jsonNum(ScaleSpeedup) + "}";
    }
  }

  // Sync-preserving lane: its own reduced-size random trace (the
  // SP-closure is exact per candidate pair, so candidates — not raw
  // events — dominate the cost; running it over the full 1M-event trace
  // would swamp the section without adding information). --acq-rel-ratio
  // feeds the generator's ReleasePercent: low ratios hold critical
  // sections open across many accesses, the stress axis for the
  // closure's per-lock maxima. The streamed session must reproduce the
  // batch report bit-for-bit or the bench fails.
  std::string SyncPJson;
  {
    RandomTraceParams SP;
    SP.Seed = 7;
    SP.NumThreads = 4;
    SP.NumLocks = 4;
    SP.NumVars = 64;
    SP.MaxLockNesting = 2;
    SP.ReleasePercent = AcqRelRatio;
    // The closure cost grows with candidates x ideal size (~quadratic in
    // trace length on lock-dense random programs), so the section stays
    // deliberately small: a 12k-event ceiling keeps the full bench's
    // syncp cost in single-digit seconds while still exercising tens of
    // thousands of candidate decisions.
    uint64_t SyncPEvents = std::min<uint64_t>(
        std::max<uint64_t>(TargetEvents / 64, 4000), 12000);
    SP.OpsPerThread = static_cast<uint32_t>(SyncPEvents / SP.NumThreads);
    Trace ST = randomTrace(SP);
    std::fprintf(stderr,
                 "syncp trace: %llu events (acq/rel ratio %u)\n",
                 (unsigned long long)ST.size(), AcqRelRatio);

    SyncPDetector SPD(ST);
    RunResult Batch = runDetector(SPD, ST);
    std::vector<MetricSample> Tel;
    SPD.telemetry(Tel);
    uint64_t Candidates = 0, ClosureIters = 0, IdealPeak = 0;
    for (const MetricSample &MS : Tel) {
      if (MS.Name == "syncp.candidate_pairs")
        Candidates = MS.Value;
      else if (MS.Name == "syncp.closure_iterations")
        ClosureIters = MS.Value;
      else if (MS.Name == "syncp.ideal_peak")
        IdealPeak = MS.Value;
    }
    std::fprintf(stderr,
                 "syncp sequential %.2fs: %llu race pair(s), %llu "
                 "candidate(s), %llu closure iteration(s), ideal peak "
                 "%llu\n",
                 Batch.Seconds,
                 (unsigned long long)Batch.Report.numDistinctPairs(),
                 (unsigned long long)Candidates,
                 (unsigned long long)ClosureIters,
                 (unsigned long long)IdealPeak);

    std::string SPath = OutPath + ".syncp_trace.bin";
    std::string SaveErr = saveTraceFile(ST, SPath);
    if (!SaveErr.empty()) {
      std::fprintf(stderr, "error: %s\n", SaveErr.c_str());
      return 1;
    }
    AnalysisConfig SCfg;
    SCfg.Mode = RunMode::Sequential;
    SCfg.Threads = Threads;
    SCfg.addDetector(DetectorKind::SyncP);
    Timer StreamClock;
    AnalysisSession Session(SCfg);
    Status Fed = Session.feedFile(SPath);
    AnalysisResult Streamed = Session.finish();
    double StreamWall = StreamClock.seconds();
    std::remove(SPath.c_str());

    bool Ok = Fed.ok() && Streamed.ok() && Streamed.Lanes.size() == 1;
    if (Ok) {
      const LaneReport &SL = Streamed.Lanes[0];
      if (SL.Report.numDistinctPairs() != Batch.Report.numDistinctPairs() ||
          SL.Report.numInstances() != Batch.Report.numInstances()) {
        std::fprintf(stderr,
                     "error: syncp streamed diverged from batch "
                     "(%llu/%llu vs %llu/%llu races/instances)\n",
                     (unsigned long long)SL.Report.numDistinctPairs(),
                     (unsigned long long)SL.Report.numInstances(),
                     (unsigned long long)Batch.Report.numDistinctPairs(),
                     (unsigned long long)Batch.Report.numInstances());
        Ok = false;
      }
    } else {
      Status Why = !Fed.ok() ? Fed : Streamed.firstError();
      std::fprintf(stderr, "error: syncp streamed run failed: %s\n",
                   Why.str().c_str());
    }
    if (!Ok) {
      LaneFailed = true;
    } else {
      std::fprintf(stderr, "syncp streamed %.2fs: matches batch\n",
                   StreamWall);
      SyncPJson =
          std::string("{\"events\": ") + std::to_string(ST.size()) +
          ", \"acq_rel_ratio\": " + std::to_string(AcqRelRatio) +
          ", \"wall_seconds\": " + jsonNum(Batch.Seconds) +
          ", \"streamed_wall_seconds\": " + jsonNum(StreamWall) +
          ", \"races\": " +
          std::to_string(Batch.Report.numDistinctPairs()) +
          ", \"instances\": " + std::to_string(Batch.Report.numInstances()) +
          ", \"candidate_pairs\": " + std::to_string(Candidates) +
          ", \"closure_iterations\": " + std::to_string(ClosureIters) +
          ", \"ideal_peak\": " + std::to_string(IdealPeak) +
          ", \"streamed_matches_batch\": true}";
    }
  }

  // Serve-resilience section: the price of fault tolerance. The same
  // trace is streamed twice through a live RaceServer over a resumable
  // client — once uninterrupted, once with the connection killed four
  // times mid-stream at seeded byte offsets. Both reports must match
  // bit-for-bit (resume is exactly-once), and the faulty run's wall time
  // over the clean run's is the resume overhead scripts/check_bench.py
  // bounds at 10% on non-degraded hosts: reconnect backoff plus spill
  // retransmission must stay noise against the analysis itself.
  std::string ServeJson;
  {
    RandomTraceParams RP;
    RP.Seed = 11;
    RP.NumThreads = 4;
    RP.NumLocks = 8;
    RP.NumVars = 128;
    // Large enough that analysis dominates and the overhead ratio is
    // meaningful; small enough not to swamp the bench.
    uint64_t ServeEvents = std::min<uint64_t>(
        std::max<uint64_t>(TargetEvents / 8, 50000), 200000);
    RP.OpsPerThread = static_cast<uint32_t>(ServeEvents / RP.NumThreads);
    Trace ST = randomTrace(RP);

    RaceServerConfig SCfg;
    SCfg.Session.addDetector(DetectorKind::Hb);
    SCfg.Session.addDetector(DetectorKind::Wcp);
    SCfg.SocketPath = OutPath + ".serve.sock";
    SCfg.IngestThreads = 2;
    RaceServer Server(SCfg);
    Status Up = Server.start();
    if (!Up.ok()) {
      std::fprintf(stderr, "error: serve_resilience server failed: %s\n",
                   Up.str().c_str());
      LaneFailed = true;
    } else {
      auto streamOnce = [&](const WireFaultPlan *Plan, double &Seconds,
                            uint64_t &Reconnects) -> std::string {
        Timer Clock;
        WireClient C;
        WireRetryPolicy Pol;
        Status S = C.connectResumable(SCfg.SocketPath, 2000, Pol);
        if (S.ok() && Plan)
          C.setFaultPlan(*Plan);
        if (S.ok())
          S = C.sendDeclares(ST);
        if (S.ok())
          S = C.sendEvents(ST, 1024);
        if (S.ok())
          S = C.sendFinishReliable();
        std::string Payload;
        if (S.ok())
          S = C.awaitReport(Payload);
        Seconds = Clock.seconds();
        Reconnects = C.reconnects();
        if (!S.ok() || Payload.size() < 9) {
          std::fprintf(stderr, "error: serve_resilience run failed: %s\n",
                       S.str().c_str());
          return std::string();
        }
        return Payload.substr(9);
      };

      double CleanSecs = 0, FaultySecs = 0;
      uint64_t CleanReconnects = 0, FaultyReconnects = 0;
      std::string CleanReport =
          streamOnce(nullptr, CleanSecs, CleanReconnects);
      WireFaultPlan Plan;
      Plan.Seed = 7;
      Plan.Kills = 4;
      Plan.MinGapBytes = 8192;
      Plan.MaxGapBytes = 65536;
      std::string FaultyReport =
          streamOnce(&Plan, FaultySecs, FaultyReconnects);
      Server.stop();

      bool Match = !CleanReport.empty() && CleanReport == FaultyReport;
      if (!Match) {
        std::fprintf(stderr,
                     "error: serve_resilience faulty report diverged from "
                     "clean run\n");
        LaneFailed = true;
      } else {
        double Overhead = CleanSecs > 0 ? FaultySecs / CleanSecs : 0;
        std::fprintf(stderr,
                     "serve_resilience: clean %.2fs, %llu kill(s) %.2fs "
                     "(%llu reconnect(s), %.2fx), reports match\n",
                     CleanSecs, (unsigned long long)Plan.Kills, FaultySecs,
                     (unsigned long long)FaultyReconnects, Overhead);
        ServeJson =
            std::string("{\"events\": ") + std::to_string(ST.size()) +
            ", \"clean_wall_seconds\": " + jsonNum(CleanSecs) +
            ", \"faulty_wall_seconds\": " + jsonNum(FaultySecs) +
            ", \"kills\": " + std::to_string(Plan.Kills) +
            ", \"reconnects\": " + std::to_string(FaultyReconnects) +
            ", \"resume_overhead_ratio\": " + jsonNum(Overhead) +
            ", \"reports_match\": true}";
      }
    }
    std::remove(SCfg.SocketPath.c_str());
  }

  double Speedup = P.Seconds > 0 ? SeqTotal / P.Seconds : 0;
  std::fprintf(stderr,
               "sequential total %.2fs, pipeline wall %.2fs -> %.2fx "
               "speedup (%llu task(s) stolen)\n",
               SeqTotal, P.Seconds, Speedup,
               (unsigned long long)P.TasksStolen);

  std::string Json;
  Json += "{\n";
  Json += "  \"bench\": \"pipeline\",\n";
  Json += "  \"workload\": \"" + Workload + "\",\n";
  Json += "  \"events\": " + std::to_string(T.size()) + ",\n";
  Json += "  \"threads\": " + std::to_string(Threads) + ",\n";
  Json += "  \"hardware_threads\": " + std::to_string(HardwareThreads) +
          ",\n";
  Json += std::string("  \"degraded\": ") + (Degraded ? "true" : "false") +
          ",\n";
  Json += "  \"sequential\": {\"total_seconds\": " + jsonNum(SeqTotal) +
          ", \"runs\": [" + SeqJson + "]},\n";
  Json += "  \"parallel\": {\"wall_seconds\": " + jsonNum(P.Seconds) +
          ", \"lane_seconds_total\": " + jsonNum(P.laneSecondsTotal()) +
          ", \"tasks_stolen\": " + std::to_string(P.TasksStolen) +
          ", \"shards\": " + std::to_string(P.NumShards) + ", \"lanes\": [" +
          ParJson + "]},\n";
  if (Shards > 0)
    Json += "  \"var_sharded\": {\"wall_seconds\": " + jsonNum(VarSeconds) +
            ", \"shards_per_lane\": " + std::to_string(Shards) +
            ", \"lanes\": [" + VarJson + "]},\n";
  if (!StreamSeq.Json.empty())
    Json += "  \"streamed\": " + StreamSeq.Json + ",\n";
  if (!StreamWin.Json.empty())
    Json += "  \"streamed_windowed\": " + StreamWin.Json + ",\n";
  if (!StreamVar.Json.empty())
    Json += "  \"streamed_var_sharded\": " + StreamVar.Json + ",\n";
  // Per-mode session telemetry (obs/Metrics.h), *_ns stages as seconds:
  // where each streamed run's time actually went.
  if (!StreamSeq.Stages.empty() || !StreamWin.Stages.empty() ||
      !StreamVar.Stages.empty()) {
    Json += "  \"stage_breakdown\": {";
    bool First = true;
    auto addStages = [&](const char *Name, const std::string &Stages) {
      if (Stages.empty())
        return;
      if (!First)
        Json += ",";
      First = false;
      Json += std::string("\n    \"") + Name + "\": " + Stages;
    };
    addStages("streamed", StreamSeq.Stages);
    addStages("streamed_windowed", StreamWin.Stages);
    addStages("streamed_var_sharded", StreamVar.Stages);
    Json += "\n  },\n";
  }
  if (!OverheadJson.empty())
    Json += "  \"metrics_overhead\": " + OverheadJson + ",\n";
  if (!LateJson.empty())
    Json += "  \"late_declaration\": " + LateJson + ",\n";
  if (!SyncPJson.empty())
    Json += "  \"syncp\": " + SyncPJson + ",\n";
  if (!ServeJson.empty())
    Json += "  \"serve_resilience\": " + ServeJson + ",\n";
  Json += "  \"scaling\": [" + ScalingJson + "],\n";
  Json += "  \"speedup\": " + jsonNum(Speedup) + "\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), Out);
  std::fclose(Out);
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return LaneFailed ? 1 : 0;
}
