//===- bench/bench_pipeline.cpp - Sequential vs parallel pipeline -------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Measures the pipeline's multi-detector fan-out: the wall-clock of running
// WCP + HB + Eraser one after another (three sequential full-trace
// analyses, the pre-pipeline workflow) against one parallel pipeline run
// with the same three lanes sharing a single trace residency.
//
// Results are emitted as JSON to stdout and to BENCH_pipeline.json (or
// --out PATH) so the perf trajectory is machine-readable across PRs. The
// generated trace defaults to >= 1M events (--events N to change), the
// pool to 4 workers (--threads N; 0 clamps to hardware concurrency), and
// the per-variable shard count per lane to 4 (--shards N; the var-sharded
// pass attacks the WCP-bound critical path while staying bit-identical).
//
// Usage: bench_pipeline [--events N] [--threads N] [--shards N]
//                       [--workload NAME] [--out PATH]
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "lockset/EraserDetector.h"
#include "pipeline/Pipeline.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace rapid;

namespace {

struct LaneSpec {
  const char *Name;
  DetectorFactory Make;
};

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TargetEvents = 1050000;
  unsigned Threads = 4;
  uint32_t Shards = 4;
  std::string Workload = "montecarlo";
  std::string OutPath = "BENCH_pipeline.json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--events" && I + 1 < Argc)
      TargetEvents = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--threads" && I + 1 < Argc)
      Threads = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--shards" && I + 1 < Argc)
      Shards = static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--workload" && I + 1 < Argc)
      Workload = Argv[++I];
    else if (Arg == "--out" && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if (Threads == 0) {
    // "--threads 0" must not mean a zero-worker pool; clamp to the
    // hardware concurrency the pool would default to, and say so.
    Threads = ThreadPool::defaultConcurrency();
    std::fprintf(stderr, "clamped --threads 0 to hardware concurrency "
                 "(%u)\n", Threads);
  }

  WorkloadSpec Spec = workloadSpec(Workload);
  double Scale = static_cast<double>(TargetEvents) /
                 static_cast<double>(Spec.Events);
  std::fprintf(stderr, "generating '%s' at scale %.2f (target %llu "
               "events)...\n",
               Workload.c_str(), Scale,
               (unsigned long long)TargetEvents);
  Trace T = makeWorkload(Spec, Scale);
  // The generator treats the event count as approximate; rescale until the
  // target is a true floor so "--events 1000000" really means >= 1M.
  for (int Try = 0; Try < 4 && T.size() < TargetEvents; ++Try) {
    Scale *= 1.05 * static_cast<double>(TargetEvents) /
             static_cast<double>(T.size());
    std::fprintf(stderr, "undershot (%llu events); rescaling to %.2f\n",
                 (unsigned long long)T.size(), Scale);
    T = makeWorkload(Spec, Scale);
  }
  std::fprintf(stderr, "trace: %llu events, %u threads, %u locks, %u vars\n",
               (unsigned long long)T.size(), T.numThreads(), T.numLocks(),
               T.numVars());

  std::vector<LaneSpec> Lanes = {
      {"WCP", [](const Trace &F) { return std::make_unique<WcpDetector>(F); }},
      {"HB", [](const Trace &F) { return std::make_unique<HbDetector>(F); }},
      {"Eraser",
       [](const Trace &F) { return std::make_unique<EraserDetector>(F); }},
  };

  // Baseline: the pre-pipeline workflow — three separate sequential runs.
  double SeqTotal = 0;
  std::string SeqJson;
  for (LaneSpec &L : Lanes) {
    std::unique_ptr<Detector> D = L.Make(T);
    RunResult R = runDetector(*D, T);
    SeqTotal += R.Seconds;
    std::fprintf(stderr, "sequential %-9s %6.2fs  %llu race pair(s)\n",
                 L.Name, R.Seconds,
                 (unsigned long long)R.Report.numDistinctPairs());
    if (!SeqJson.empty())
      SeqJson += ", ";
    SeqJson += "{\"detector\": \"" + std::string(L.Name) +
               "\", \"seconds\": " + jsonNum(R.Seconds) +
               ", \"races\": " +
               std::to_string(R.Report.numDistinctPairs()) + "}";
  }

  // Pipeline: same three detectors, one fan-out, Threads workers.
  PipelineOptions Opts;
  Opts.NumThreads = Threads;
  AnalysisPipeline Pipeline(Opts);
  for (LaneSpec &L : Lanes)
    Pipeline.addDetector(L.Make, L.Name);
  PipelineResult P = Pipeline.run(T);
  bool LaneFailed = false;
  // A failed lane's report is partial/empty; recording it as a measurement
  // would silently corrupt the cross-PR perf trajectory — fail the bench.
  auto laneJson = [&LaneFailed](const LaneResult &L, const char *Mode) {
    if (!L.Error.empty()) {
      std::fprintf(stderr, "error: %s lane %s failed: %s\n", Mode,
                   L.DetectorName.c_str(), L.Error.c_str());
      LaneFailed = true;
      return std::string();
    }
    std::fprintf(stderr, "%-10s %-9s %6.2fs  %llu race pair(s)\n", Mode,
                 L.DetectorName.c_str(), L.Seconds,
                 (unsigned long long)L.Report.numDistinctPairs());
    return "{\"detector\": \"" + L.DetectorName +
           "\", \"seconds\": " + jsonNum(L.Seconds) + ", \"races\": " +
           std::to_string(L.Report.numDistinctPairs()) + "}";
  };
  std::string ParJson;
  for (const LaneResult &L : P.Lanes) {
    std::string One = laneJson(L, "parallel");
    if (One.empty())
      continue;
    if (!ParJson.empty())
      ParJson += ", ";
    ParJson += One;
  }

  // Var-sharded pipeline: same lanes, each split into a clock pass plus
  // per-variable check shards (bit-identical reports; see
  // detect/ShardedAccessHistory.h). This is the knob that attacks the
  // slowest-lane bound of the plain fan-out.
  std::string VarJson;
  double VarSeconds = 0;
  if (Shards > 0) {
    PipelineOptions VOpts;
    VOpts.NumThreads = Threads;
    VOpts.VarShards = Shards;
    AnalysisPipeline VarPipeline(VOpts);
    for (LaneSpec &L : Lanes)
      VarPipeline.addDetector(L.Make, L.Name);
    PipelineResult V = VarPipeline.run(T);
    VarSeconds = V.Seconds;
    for (const LaneResult &L : V.Lanes) {
      std::string One = laneJson(L, "varshard");
      if (One.empty())
        continue;
      if (!VarJson.empty())
        VarJson += ", ";
      VarJson += One;
    }
    std::fprintf(stderr, "var-sharded wall %.2fs (%u shard(s)/lane)\n",
                 V.Seconds, Shards);
  }

  double Speedup = P.Seconds > 0 ? SeqTotal / P.Seconds : 0;
  std::fprintf(stderr,
               "sequential total %.2fs, pipeline wall %.2fs -> %.2fx "
               "speedup (%llu task(s) stolen)\n",
               SeqTotal, P.Seconds, Speedup,
               (unsigned long long)P.TasksStolen);

  std::string Json;
  Json += "{\n";
  Json += "  \"bench\": \"pipeline\",\n";
  Json += "  \"workload\": \"" + Workload + "\",\n";
  Json += "  \"events\": " + std::to_string(T.size()) + ",\n";
  Json += "  \"threads\": " + std::to_string(Threads) + ",\n";
  Json += "  \"hardware_threads\": " +
          std::to_string(ThreadPool::defaultConcurrency()) + ",\n";
  Json += "  \"sequential\": {\"total_seconds\": " + jsonNum(SeqTotal) +
          ", \"runs\": [" + SeqJson + "]},\n";
  Json += "  \"parallel\": {\"wall_seconds\": " + jsonNum(P.Seconds) +
          ", \"lane_seconds_total\": " + jsonNum(P.laneSecondsTotal()) +
          ", \"tasks_stolen\": " + std::to_string(P.TasksStolen) +
          ", \"shards\": " + std::to_string(P.NumShards) + ", \"lanes\": [" +
          ParJson + "]},\n";
  if (Shards > 0)
    Json += "  \"var_sharded\": {\"wall_seconds\": " + jsonNum(VarSeconds) +
            ", \"shards_per_lane\": " + std::to_string(Shards) +
            ", \"lanes\": [" + VarJson + "]},\n";
  Json += "  \"speedup\": " + jsonNum(Speedup) + "\n";
  Json += "}\n";

  std::fputs(Json.c_str(), stdout);
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), Out);
  std::fclose(Out);
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return LaneFailed ? 1 : 0;
}
