//===- bench/bench_vc.cpp - Vector-clock micro-ops (E7) -----------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The primitive operations of §3.1 — join (⊔), comparison (⊑) and copy —
// dominate every detector's inner loop; their cost is O(T), which is the
// per-event constant in Theorem 3. Sweeping T shows that constant.
//
//===----------------------------------------------------------------------===//

#include "vc/VectorClock.h"

#include <benchmark/benchmark.h>

using namespace rapid;

namespace {

VectorClock makeClock(uint32_t N, uint32_t Stride) {
  VectorClock V(N);
  for (uint32_t I = 0; I < N; ++I)
    V.set(ThreadId(I), (I * Stride) % 97);
  return V;
}

void Join(benchmark::State &State) {
  uint32_t N = static_cast<uint32_t>(State.range(0));
  VectorClock A = makeClock(N, 3), B = makeClock(N, 7);
  for (auto _ : State) {
    A.joinWith(B);
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(Join)->RangeMultiplier(4)->Range(2, 128);

void Compare(benchmark::State &State) {
  uint32_t N = static_cast<uint32_t>(State.range(0));
  VectorClock A = makeClock(N, 3), B = makeClock(N, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.lessOrEqual(B));
}
BENCHMARK(Compare)->RangeMultiplier(4)->Range(2, 128);

void Copy(benchmark::State &State) {
  uint32_t N = static_cast<uint32_t>(State.range(0));
  VectorClock A = makeClock(N, 3);
  for (auto _ : State) {
    VectorClock B = A;
    benchmark::DoNotOptimize(B.data());
  }
}
BENCHMARK(Copy)->RangeMultiplier(4)->Range(2, 128);

} // namespace

BENCHMARK_MAIN();
