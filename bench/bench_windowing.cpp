//===- bench/bench_windowing.cpp - Windowing loses races (E6) -----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// §4.3's sharpest observation: both HB and WCP expose races whose
// endpoints are millions of events apart ("more than 25 races in eclipse
// with distance at least 4.8 million"), so *any* windowed analysis is
// structurally unable to catch them. This bench runs unwindowed and
// windowed WCP/HB over the far-race models and prints (a) how detection
// decays with window size, and (b) the distance profile of the races the
// unwindowed analysis finds.
//
// Environment: RAPID_SCALE (default 0.05).
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "support/TablePrinter.h"
#include "wcp/WcpDetector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace rapid;

int main() {
  double Scale = 0.05;
  if (const char *S = std::getenv("RAPID_SCALE"))
    Scale = std::atof(S);

  for (const char *Name : {"eclipse", "lusearch", "xalan", "bufwriter"}) {
    WorkloadSpec Spec = workloadSpec(Name);
    double S = Spec.Events > 100000 ? Scale : 1.0;
    Trace T = makeWorkload(Spec, S);

    WcpDetector Wcp(T);
    RunResult Full = runDetector(Wcp, T);

    std::printf("%s: %llu events, unwindowed WCP finds %llu pairs "
                "(max distance %llu = %.0f%% of trace)\n",
                Name, (unsigned long long)T.size(),
                (unsigned long long)Full.Report.numDistinctPairs(),
                (unsigned long long)Full.Report.maxPairDistance(),
                100.0 * Full.Report.maxPairDistance() / T.size());

    // Distance profile of the unwindowed findings.
    std::vector<uint64_t> Distances;
    for (const RaceInstance &I : Full.Report.instances())
      Distances.push_back(Full.Report.pairDistance(I.pair()));
    std::sort(Distances.begin(), Distances.end());
    uint64_t Far = Full.Report.numPairsWithDistanceAtLeast(T.size() / 3);
    std::printf("  distance profile: median %llu, far pairs (>1/3 trace): "
                "%llu\n",
                Distances.empty()
                    ? 0ull
                    : (unsigned long long)Distances[Distances.size() / 2],
                (unsigned long long)Far);

    TablePrinter Table({"window", "WCP pairs", "HB pairs",
                        "far pairs caught"});
    for (uint64_t W : {1000u, 5000u, 20000u}) {
      if (W >= T.size())
        continue;
      DetectorFactory MakeWcp = [](const Trace &F) {
        return std::make_unique<WcpDetector>(F);
      };
      DetectorFactory MakeHb = [](const Trace &F) {
        return std::make_unique<HbDetector>(F);
      };
      RunResult WWcp = runDetectorWindowed(MakeWcp, T, W);
      RunResult WHb = runDetectorWindowed(MakeHb, T, W);
      Table.addRow(
          {std::to_string(W),
           std::to_string(WWcp.Report.numDistinctPairs()),
           std::to_string(WHb.Report.numDistinctPairs()),
           std::to_string(
               WWcp.Report.numPairsWithDistanceAtLeast(T.size() / 3))});
    }
    Table.addRow({"full",
                  std::to_string(Full.Report.numDistinctPairs()), "-",
                  std::to_string(Far)});
    Table.print();
    std::printf("\n");
  }
  std::printf("Reading: far pairs vanish under every window size — only "
              "the unwindowed linear-time analyses see them.\n");
  return 0;
}
