//===- bench/bench_lowerbound.cpp - Theorems 4/5 & queue memory (E4) ----------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Two experiments around the paper's §3.4 space results:
//
//  1. Queue growth: the adversarial trace family retains Θ(n) queue
//     entries (the Ω(n) single-pass lower bound is tight for Algorithm
//     1), while the same family *with* conflicts drains to O(1) — the
//     benign behaviour behind Table 1's column 11 staying under 3%.
//  2. The Figure 8 reduction: deciding the bit-string predicate via WCP
//     on equalityTrace(u, v); the timing confirms the decision stays
//     linear even on the adversarial family.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/LowerBoundTraces.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "wcp/WcpDetector.h"

#include <cstdio>

using namespace rapid;

int main() {
  std::printf("Queue occupancy on the adversarial family (Theorem 4):\n\n");
  TablePrinter Queue({"n", "peak entries (no conflicts)", "peak/n",
                      "peak entries (conflicts)", "shared buffer peak"});
  for (uint32_t N : {64u, 256u, 1024u, 4096u, 16384u}) {
    Trace Hostile = queuePressureTrace(N, /*WithConflicts=*/false);
    WcpDetector DH(Hostile);
    runDetector(DH, Hostile);

    Trace Benign = queuePressureTrace(N, /*WithConflicts=*/true);
    WcpDetector DB(Benign);
    runDetector(DB, Benign);

    char Ratio[16];
    std::snprintf(Ratio, sizeof(Ratio), "%.2f",
                  static_cast<double>(DH.stats().MaxAbstractQueueEntries) /
                      N);
    Queue.addRow({std::to_string(N),
                  std::to_string(DH.stats().MaxAbstractQueueEntries), Ratio,
                  std::to_string(DB.stats().MaxAbstractQueueEntries),
                  std::to_string(DH.stats().MaxSharedQueueEntries)});
  }
  Queue.print();
  std::printf("\nReading: without conflicts the abstract queues grow "
              "linearly (the Ω(n) bound is real); one rule-(a) conflict "
              "per section lets the while-loop drain them to O(1).\n\n");

  std::printf("Figure 8 reduction: WCP decides the bit-string predicate\n"
              "(z-writes race iff v = complement(u)):\n\n");
  TablePrinter Fig8({"n", "events", "z races (v=~u)", "z races (v=u)",
                     "time"});
  for (uint32_t N : {8u, 64u, 512u, 4096u}) {
    std::vector<bool> U(N), V(N);
    for (uint32_t I = 0; I < N; ++I) {
      U[I] = (I * 2654435761u) % 3 == 0;
      V[I] = !U[I];
    }
    Trace Complement = equalityTrace(U, V);
    Timer Clock;
    WcpDetector DC(Complement);
    runDetector(DC, Complement);
    double Seconds = Clock.seconds();
    bool RaceComplement = DC.report().hasPair(
        RacePair(Complement.event(0).Loc,
                 Complement.event(Complement.size() - 1).Loc));

    Trace Equal = equalityTrace(U, U);
    WcpDetector DE(Equal);
    runDetector(DE, Equal);
    bool RaceEqual = DE.report().hasPair(RacePair(
        Equal.event(0).Loc, Equal.event(Equal.size() - 1).Loc));

    Fig8.addRow({std::to_string(N), std::to_string(Complement.size()),
                 RaceComplement ? "yes" : "NO (bug!)",
                 RaceEqual ? "YES (bug!)" : "no", formatSeconds(Seconds)});
  }
  Fig8.print();
  return 0;
}
