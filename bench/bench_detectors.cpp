//===- bench/bench_detectors.cpp - Detector throughput (E5) -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Columns 12-13 of Table 1: WCP analysis time is comparable to HB's. This
// bench measures events/second for every streaming detector in the repo
// on the same workload trace — HB (Djit+-style), FastTrack (the epoch
// optimization the paper's conclusion proposes), WCP (Algorithm 1) and
// Eraser (the unsound-but-fast lockset baseline of §1's taxonomy).
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "lockset/EraserDetector.h"
#include "wcp/WcpDetector.h"

#include <benchmark/benchmark.h>

using namespace rapid;

namespace {

const Trace &workloadTrace() {
  static Trace T = makeWorkload(workloadSpec("moldyn"), 1.0);
  return T;
}

template <typename D> void detectorThroughput(benchmark::State &State) {
  const Trace &T = workloadTrace();
  for (auto _ : State) {
    D Detector(T);
    for (EventIdx I = 0; I != T.size(); ++I)
      Detector.processEvent(T.event(I), I);
    benchmark::DoNotOptimize(Detector.report().numDistinctPairs());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}

void Hb(benchmark::State &S) { detectorThroughput<HbDetector>(S); }
void FastTrack(benchmark::State &S) {
  detectorThroughput<FastTrackDetector>(S);
}
void Wcp(benchmark::State &S) { detectorThroughput<WcpDetector>(S); }
void Eraser(benchmark::State &S) { detectorThroughput<EraserDetector>(S); }

BENCHMARK(Hb);
BENCHMARK(FastTrack);
BENCHMARK(Wcp);
BENCHMARK(Eraser);

} // namespace

BENCHMARK_MAIN();
