//===- bench/bench_scaling.cpp - Theorem 3: O(N·(T² + L)) (E3) ----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The paper's headline complexity claim: Algorithm 1 runs in time
// N·(T² + L) — linear in the trace length, the only parameter that is
// ever large. Three google-benchmark sweeps probe the three parameters
// independently:
//
//   * WcpVsEvents: time per event must stay flat as N grows (linearity);
//   * WcpVsThreads: per-event cost grows with T (the T² term comes from
//     the queue fan-out — visible but irrelevant at realistic T < 25);
//   * WcpVsLocks: per-event cost is insensitive to the number of locks
//     actually used per access (the L term bounds held-lock iteration).
//
// HbVsEvents is the baseline the paper compares against in cols 12-13.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/RandomTraceGen.h"
#include "hb/HbDetector.h"
#include "wcp/WcpDetector.h"

#include <benchmark/benchmark.h>

using namespace rapid;

namespace {

Trace makeTrace(uint32_t Threads, uint32_t Locks, uint64_t Events) {
  RandomTraceParams P;
  P.Seed = 42;
  P.NumThreads = Threads;
  P.NumLocks = Locks;
  P.NumVars = 64;
  P.OpsPerThread = static_cast<uint32_t>(Events / Threads);
  P.MaxLockNesting = 2;
  P.AcquirePercent = 15;
  return randomTrace(P);
}

template <typename D> void runOver(benchmark::State &State, const Trace &T) {
  for (auto _ : State) {
    D Detector(T);
    for (EventIdx I = 0; I != T.size(); ++I)
      Detector.processEvent(T.event(I), I);
    benchmark::DoNotOptimize(Detector.report().numDistinctPairs());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
  State.counters["events"] = static_cast<double>(T.size());
}

void WcpVsEvents(benchmark::State &State) {
  Trace T = makeTrace(4, 8, static_cast<uint64_t>(State.range(0)));
  runOver<WcpDetector>(State, T);
}
BENCHMARK(WcpVsEvents)->RangeMultiplier(4)->Range(1 << 12, 1 << 19);

void HbVsEvents(benchmark::State &State) {
  Trace T = makeTrace(4, 8, static_cast<uint64_t>(State.range(0)));
  runOver<HbDetector>(State, T);
}
BENCHMARK(HbVsEvents)->RangeMultiplier(4)->Range(1 << 12, 1 << 19);

void WcpVsThreads(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint32_t>(State.range(0)), 8, 1 << 16);
  runOver<WcpDetector>(State, T);
}
BENCHMARK(WcpVsThreads)->RangeMultiplier(2)->Range(2, 32);

void WcpVsLocks(benchmark::State &State) {
  Trace T = makeTrace(4, static_cast<uint32_t>(State.range(0)), 1 << 16);
  runOver<WcpDetector>(State, T);
}
BENCHMARK(WcpVsLocks)->RangeMultiplier(4)->Range(2, 512);

} // namespace

BENCHMARK_MAIN();
