//===- examples/soundness_audit.cpp - Verify every WCP claim ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// End-to-end audit of Theorem 1 on a generated workload: run WCP over the
// trace, then for each reported race pair search the maximal causal model
// for a witness (a correct reordering exposing the race, or a predictable
// deadlock), and re-validate every witness against the §2.1 definitions.
// This is the workflow a tool user follows when triaging detector output.
//
// Usage: soundness_audit [workload] [scale]   (default: mergesort 1.0)
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "support/Timer.h"
#include "verify/WitnessSearch.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>

using namespace rapid;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "mergesort";
  double Scale = Argc > 2 ? std::atof(Argv[2]) : 1.0;

  WorkloadSpec Spec = workloadSpec(Name);
  Trace T = makeWorkload(Spec, Scale);
  std::printf("workload '%s': %llu events, %u threads\n", Name.c_str(),
              (unsigned long long)T.size(), T.numThreads());

  WcpDetector D(T);
  RunResult R = runDetector(D, T);
  std::printf("WCP found %llu distinct race pair(s) in %s\n\n",
              (unsigned long long)R.Report.numDistinctPairs(),
              formatSeconds(R.Seconds).c_str());

  uint64_t Confirmed = 0, Deadlocks = 0, Inconclusive = 0;
  for (const RaceInstance &I : R.Report.instances()) {
    WitnessResult W = findWitness(T, I.pair(), /*MaxStates=*/200000);
    const char *Verdict = "INCONCLUSIVE (budget)";
    if (W.Kind == WitnessKind::Race) {
      Verdict = "confirmed: witness reordering found";
      ++Confirmed;
    } else if (W.Kind == WitnessKind::Deadlock) {
      Verdict = "weakly confirmed: predictable deadlock";
      ++Deadlocks;
    } else if (W.SearchExhaustive) {
      Verdict = "NO WITNESS (exhaustive!)";
    } else {
      ++Inconclusive;
    }
    std::printf("  %-55s %s\n", I.str(T).c_str(), Verdict);
  }

  std::printf("\naudit: %llu confirmed, %llu via deadlock, %llu "
              "inconclusive, %llu total\n",
              (unsigned long long)Confirmed, (unsigned long long)Deadlocks,
              (unsigned long long)Inconclusive,
              (unsigned long long)R.Report.numDistinctPairs());
  return 0;
}
