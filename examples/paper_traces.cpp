//===- examples/paper_traces.cpp - Walk through Figures 1-6 -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Replays every worked example of the paper and prints, per figure, the
// verdict of each analysis — a compact, runnable rendition of the paper's
// §2.3 narrative ("CP: no race. WCP: race.").
//
//===----------------------------------------------------------------------===//

#include "gen/PaperTraces.h"
#include "detect/DetectorRunner.h"
#include "hb/HbDetector.h"
#include "reference/ClosureEngine.h"
#include "support/TablePrinter.h"
#include "verify/Deadlock.h"
#include "wcp/WcpDetector.h"

#include <cstdio>

using namespace rapid;

int main() {
  TablePrinter Table({"figure", "HB", "CP", "WCP", "predictable",
                      "what the paper says"});

  for (const PaperTrace &P : allPaperTraces()) {
    ClosureEngine Ref(P.T);
    bool Hb = !Ref.races(OrderKind::HB).empty();
    bool Cp = !Ref.races(OrderKind::CP).empty();
    bool Wcp = !Ref.races(OrderKind::WCP).empty();
    DeadlockReport D = findPredictableDeadlock(P.T);

    std::string Predictable;
    if (P.PredictableRace)
      Predictable = "race";
    if (P.PredictableDeadlock)
      Predictable += Predictable.empty() ? "deadlock" : "+deadlock";
    if (Predictable.empty())
      Predictable = "-";

    std::string Comment;
    if (P.Name == "fig1b")
      Comment = "HB misses a predictable race";
    else if (P.Name == "fig2b")
      Comment = "CP misses it; WCP catches it";
    else if (P.Name == "fig3")
      Comment = "weakened rule (b) pays off";
    else if (P.Name == "fig5")
      Comment = "3-thread deadlock; CP cannot see it";
    else if (P.Name == "fig6")
      Comment = "queue workout for Algorithm 1";

    Table.addRow({P.Name, Hb ? "race" : "-", Cp ? "race" : "-",
                  Wcp ? "race" : "-", Predictable, Comment});

    (void)D;
  }
  Table.print();

  // Zoom into Figure 2b the way §2.3 does.
  std::printf("\nFigure 2b in detail:\n");
  PaperTrace P = paperFig2b();
  for (EventIdx I = 0; I != P.T.size(); ++I)
    std::printf("  %s\n", P.T.eventStr(I).c_str());
  WcpDetector D(P.T);
  RunResult R = runDetector(D, P.T);
  std::printf("WCP: %s", R.Report.str(P.T).c_str());
  std::printf("(HB and CP order the y-accesses through the lock and stay "
              "silent.)\n");
  return 0;
}
