//===- examples/interpose/librace_interpose.cpp - LD_PRELOAD shim -------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// A live-attach event source for unmodified pthread programs:
//
//   LD_PRELOAD=./librace_interpose.so RACE_SERVER=/tmp/raced.sock ./app
//
// wraps pthread_create/join and pthread_mutex_lock/unlock, stamps each
// captured operation with a global sequence number, buffers records in
// per-thread logs, and a background flusher merges consistent cuts into
// one globally ordered §2.1-valid stream — pushed to a race_serverd
// session as wire frames (RACE_SERVER) and/or appended to a text trace
// (RACE_RECORD) that race_cli replays offline, bit-for-bit.
//
// Shared-memory accesses cannot be interposed without compiler help, so
// programs mark the ones to model via race_annotate.h (weak symbol; see
// that header). Environment: RACE_SERVER (unix socket path), RACE_RECORD
// (text trace path), RACE_FLUSH_MS (flush cadence, default 50).
//
// Capture rules that make the merged stream well-formed:
//   - acquire is stamped AFTER the real lock returns (inside the critical
//     section), release BEFORE the real unlock (still inside) — two
//     critical sections on one mutex can never interleave in the stream;
//   - fork is stamped before the real pthread_create, so the child's
//     first event always lands after it; join after the real join
//     returns, so the child's last event lands before it;
//   - recursive re-locks are depth-counted per thread and only the
//     outermost pair is modeled; an unlock with no modeled lock (e.g.
//     after an uninterposed trylock) is skipped, never emitted unmatched.
//
// Known model limits (documented in docs/SERVING.md): pthread_cond_wait
// releases/reacquires its mutex inside glibc without crossing these
// wrappers, so condvar-heavy code falls outside the modeled lock
// discipline; trylock/timedlock criticals are not modeled.
//
// Deliberately links NO rapidpp code: the wire encoders it needs are the
// header-only half of io/WireFormat.h (the static analysis library is not
// position-independent and must not be pulled into a preloaded .so).
//
// Fault tolerance: when the server grants a resume token (Welcome), the
// shim sequence-numbers its Events frames, spills them until the server
// acknowledges, and survives connection loss — it reconnects with bounded
// exponential backoff + jitter, replays Resume(token, next-seq), and
// retransmits the unacked tail; the server's sequence dedup makes the
// delivery exactly-once, so a killed-and-resumed session reports exactly
// what an uninterrupted one would. RACE_RETRY_MAX (default 8) bounds
// reconnect attempts per outage; 0 disables resume.
//
//===----------------------------------------------------------------------===//

#include "io/WireFormat.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <dlfcn.h>
#include <poll.h>
#include <pthread.h>
#include <sched.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

using namespace rapid;

namespace {

// ---- Real functions ---------------------------------------------------------

using CreateFn = int (*)(pthread_t *, const pthread_attr_t *,
                         void *(*)(void *), void *);
using JoinFn = int (*)(pthread_t, void **);
using MutexFn = int (*)(pthread_mutex_t *);

CreateFn RealCreate;
JoinFn RealJoin;
MutexFn RealLock;
MutexFn RealUnlock;

void resolveReals() {
  RealCreate = reinterpret_cast<CreateFn>(dlsym(RTLD_NEXT, "pthread_create"));
  RealJoin = reinterpret_cast<JoinFn>(dlsym(RTLD_NEXT, "pthread_join"));
  RealLock =
      reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  RealUnlock =
      reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
}

// ---- State ------------------------------------------------------------------

struct SpinLock {
  std::atomic_flag F = ATOMIC_FLAG_INIT;
  void lock() {
    while (F.test_and_set(std::memory_order_acquire))
      sched_yield();
  }
  void unlock() { F.clear(std::memory_order_release); }
};

/// One captured operation. Seq is the global stamp; merge-sorting cuts by
/// it reproduces a single §2.1-consistent interleaving.
struct Rec {
  uint64_t Seq;
  uint8_t Kind; ///< EventKind value (0 read .. 5 join).
  uint32_t Thread, Target, Loc;
};

/// Per-thread capture log. Buf is guarded by M (owner appends, flusher
/// swaps); HeldDepth is owner-only.
struct ThreadLog {
  SpinLock M;
  std::vector<Rec> Buf;
  uint32_t Tid = 0;
  /// Modeled lock id -> recursion depth (only the 0<->1 edges emit).
  std::unordered_map<uint32_t, uint32_t> HeldDepth;
};

struct State {
  SpinLock RegM;
  std::vector<ThreadLog *> Threads; ///< Every log ever created (leaked).
  std::unordered_map<const void *, uint32_t> MutexIds;
  std::unordered_map<std::string, uint32_t> VarIds, LocIds;
  std::unordered_map<uintptr_t, uint32_t> JoinIds; ///< pthread_t -> tid.
  std::vector<std::string> ThreadNames, LockNames, VarNames, LocNames;
  std::string PendingDecl; ///< Declare payload staged since last flush.

  std::atomic<uint64_t> Seq{1};
  uint32_t RtLoc = 0; ///< Loc id for runtime (non-annotated) events.

  int Sock = -1;
  std::FILE *Record = nullptr;
  unsigned FlushMs = 50;
  std::atomic<bool> Stop{false};
  pthread_t Flusher{};
  bool FlusherStarted = false;

  // Resumable transport. Only one thread touches the socket at a time
  // (the flusher, or the destructor after joining it), so none of this
  // needs locking.
  std::string ServerPath;
  uint64_t SessionToken = 0; ///< Welcome token (0 = resume unavailable).
  uint64_t EventsSent = 0;   ///< Cumulative events encoded (next frame's seq).
  uint64_t AckedEvents = 0;  ///< Server-confirmed applied events.
  std::string DeclareLog;    ///< Every Declare frame, replayed on resume.
  std::vector<std::pair<uint64_t, std::string>> Spill; ///< Unacked Events.
  size_t SpillBytes = 0;
  bool FinishQueued = false; ///< Finish sent; re-send after any resume.
  bool GaveUp = false;       ///< Permanent loss: stop trying, drop frames.
  unsigned RetryMax = 8;
  uint64_t JitterState = 0x9e3779b97f4a7c15ull;
  FrameDecoder SrvDec;       ///< Acks/errors coming back from the server.
};

State *St; // Heap-allocated, never freed: immune to static-dtor order.

thread_local ThreadLog *TL;
thread_local bool InHook;

/// RAII passthrough guard: wrappers entered while set call the real
/// function without recording (our own internals, nested wrappers).
struct HookGuard {
  bool Owned;
  HookGuard() : Owned(!InHook) { InHook = true; }
  ~HookGuard() {
    if (Owned)
      InHook = false;
  }
};

bool sendAllFd(int Fd, const char *P, size_t N) {
  while (N != 0) {
    const ssize_t W = send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

// ---- Resumable transport ----------------------------------------------------
//
// Cannot link support/Prng.cpp (see the header comment), so the backoff
// jitter is a local splitmix64 — determinism does not matter here, only
// decorrelation between concurrently retrying shims.

uint64_t nextJitter() {
  uint64_t Z = (St->JitterState += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void sleepMs(uint64_t Ms) {
  timespec TS{static_cast<time_t>(Ms / 1000),
              static_cast<long>(Ms % 1000) * 1000000L};
  nanosleep(&TS, nullptr);
}

void dropSock() {
  if (St->Sock >= 0) {
    close(St->Sock);
    St->Sock = -1;
  }
  St->SrvDec = FrameDecoder();
}

uint64_t eventsInFrame(const std::string &Frame) {
  const size_t Header = WireFrameHeaderSize + 12; // seq u64 + count u32
  return Frame.size() >= Header ? (Frame.size() - Header) / WireEventRecordSize
                                : 0;
}

void trimSpill() {
  size_t Keep = 0;
  while (Keep != St->Spill.size() &&
         St->Spill[Keep].first + eventsInFrame(St->Spill[Keep].second) <=
             St->AckedEvents)
    St->SpillBytes -= St->Spill[Keep++].second.size();
  if (Keep)
    St->Spill.erase(St->Spill.begin(),
                    St->Spill.begin() + static_cast<ptrdiff_t>(Keep));
}

/// True when the frame was handled and the stream stays usable; false
/// drops the connection (retryable error) or gives up (fatal one).
bool onServerFrame(const WireFrameView &F) {
  switch (F.Type) {
  case WireFrame::Ack:
    if (F.Payload.size() == 8) {
      const uint64_t A = wireGetU64(F.Payload.data());
      if (A > St->AckedEvents)
        St->AckedEvents = A;
      trimSpill();
    }
    return true;
  case WireFrame::WireError: {
    WireErrorInfo E;
    if (wireParseError(F.Payload, E) && !E.Retryable) {
      std::fprintf(stderr, "librace_interpose: server error: %s\n",
                   E.Message.c_str());
      St->GaveUp = true;
    }
    dropSock();
    return false;
  }
  default:
    return true; // Welcome/ResumeOk replays, Report at shutdown.
  }
}

/// Non-blocking drain of server->client frames (acks, errors).
void pollServerInput() {
  if (St->Sock < 0)
    return;
  char Buf[4096];
  for (;;) {
    pollfd P{St->Sock, POLLIN, 0};
    if (poll(&P, 1, 0) <= 0 || !(P.revents & (POLLIN | POLLHUP | POLLERR)))
      break;
    const ssize_t N = recv(St->Sock, Buf, sizeof(Buf), 0);
    if (N == 0) {
      dropSock();
      return;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    St->SrvDec.append(Buf, static_cast<size_t>(N));
  }
  WireFrameView F;
  while (St->Sock >= 0 && St->SrvDec.next(F) == 1)
    if (!onServerFrame(F))
      return;
}

/// Blocks (up to \p TimeoutMs) for one complete server frame.
bool readServerFrame(WireFrameView &F, int TimeoutMs) {
  char Buf[4096];
  for (int Waited = 0;;) {
    if (St->SrvDec.next(F) == 1)
      return true;
    if (St->Sock < 0 || Waited >= TimeoutMs)
      return false;
    pollfd P{St->Sock, POLLIN, 0};
    const int PR = poll(&P, 1, 100);
    Waited += 100;
    if (PR <= 0)
      continue;
    const ssize_t N = recv(St->Sock, Buf, sizeof(Buf), 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      dropSock();
      return false;
    }
    St->SrvDec.append(Buf, static_cast<size_t>(N));
  }
}

int connectServerPath() {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (St->ServerPath.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, St->ServerPath.c_str(),
              St->ServerPath.size() + 1);
  const int S = socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return -1;
  if (connect(S, reinterpret_cast<const sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    close(S);
    return -1;
  }
  return S;
}

bool retransmitUnacked();

/// Bounded reconnect + Resume(token, next-seq) + retransmit. Returns with
/// a usable attached socket, or gives up for good.
bool reattach() {
  if (St->GaveUp || St->RetryMax == 0 || St->SessionToken == 0) {
    if (!St->GaveUp) {
      St->GaveUp = true;
      std::fprintf(stderr, "librace_interpose: lost the server connection\n");
    }
    return false;
  }
  for (unsigned Attempt = 0; Attempt < St->RetryMax; ++Attempt) {
    if (Attempt != 0) {
      uint64_t DelayMs = std::min<uint64_t>(500, 2ull << Attempt);
      DelayMs += nextJitter() % (DelayMs / 2 + 1);
      sleepMs(DelayMs);
    }
    dropSock();
    const int S = connectServerPath();
    if (S < 0)
      continue;
    St->Sock = S;
    std::string HS = wireHelloFrame(WireHelloAttach);
    HS += wireResumeFrame(St->SessionToken, St->EventsSent);
    if (!sendAllFd(S, HS.data(), HS.size()))
      continue;
    WireFrameView F;
    if (!readServerFrame(F, 5000))
      continue;
    if (F.Type == WireFrame::ResumeOk && F.Payload.size() == 16) {
      const uint64_t Applied = wireGetU64(F.Payload.data() + 8);
      if (Applied > St->AckedEvents)
        St->AckedEvents = Applied;
      trimSpill();
      if (retransmitUnacked())
        return true;
      continue;
    }
    if (F.Type == WireFrame::WireError) {
      WireErrorInfo E;
      if (wireParseError(F.Payload, E) && !E.Retryable) {
        std::fprintf(stderr, "librace_interpose: resume refused: %s\n",
                     E.Message.c_str());
        break;
      }
      continue;
    }
  }
  dropSock();
  St->GaveUp = true;
  std::fprintf(stderr, "librace_interpose: lost the server connection\n");
  return false;
}

/// Replays declares, the unacked spill tail, and a queued Finish on a
/// freshly attached socket.
bool retransmitUnacked() {
  if (!St->DeclareLog.empty() &&
      !sendAllFd(St->Sock, St->DeclareLog.data(), St->DeclareLog.size()))
    return false;
  for (const auto &E : St->Spill) {
    if (E.first + eventsInFrame(E.second) <= St->AckedEvents)
      continue;
    if (!sendAllFd(St->Sock, E.second.data(), E.second.size()))
      return false;
  }
  if (St->FinishQueued) {
    std::string Fin;
    wireAppendFrame(Fin, WireFrame::Finish, std::string_view());
    if (!sendAllFd(St->Sock, Fin.data(), Fin.size()))
      return false;
  }
  return true;
}

/// send-with-resume: survives connection loss as long as reattach can.
bool sendResumable(const std::string &Frame) {
  for (;;) {
    if (St->GaveUp)
      return false;
    if (St->Sock < 0 && !reattach())
      return false;
    if (sendAllFd(St->Sock, Frame.data(), Frame.size()))
      return true;
    dropSock();
  }
}

// ---- Interning (RegM held by caller) ---------------------------------------

void stageDecl(WireDeclareKind K, const std::string &Name) {
  wireDeclareEntry(St->PendingDecl, K, Name);
}

ThreadLog *newThreadLocked() {
  ThreadLog *L = new ThreadLog;
  L->Tid = static_cast<uint32_t>(St->ThreadNames.size());
  St->ThreadNames.push_back("T" + std::to_string(L->Tid + 1));
  stageDecl(WireDeclareKind::Thread, St->ThreadNames.back());
  St->Threads.push_back(L);
  return L;
}

uint32_t internMutexLocked(const void *M) {
  auto It = St->MutexIds.find(M);
  if (It != St->MutexIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->LockNames.size());
  St->LockNames.push_back("M" + std::to_string(Id + 1));
  stageDecl(WireDeclareKind::Lock, St->LockNames.back());
  St->MutexIds.emplace(M, Id);
  return Id;
}

uint32_t internVarLocked(const std::string &Name) {
  auto It = St->VarIds.find(Name);
  if (It != St->VarIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->VarNames.size());
  St->VarNames.push_back(Name);
  stageDecl(WireDeclareKind::Var, Name);
  St->VarIds.emplace(Name, Id);
  return Id;
}

uint32_t internLocLocked(const std::string &Name) {
  auto It = St->LocIds.find(Name);
  if (It != St->LocIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->LocNames.size());
  St->LocNames.push_back(Name);
  stageDecl(WireDeclareKind::Loc, Name);
  St->LocIds.emplace(Name, Id);
  return Id;
}

ThreadLog *ensureThread() {
  if (!TL) {
    St->RegM.lock();
    TL = newThreadLocked();
    St->RegM.unlock();
  }
  return TL;
}

/// Stamp + append under the owner's log lock — the atomicity the
/// flusher's consistent cut depends on.
void record(ThreadLog *L, uint8_t Kind, uint32_t Target, uint32_t Loc) {
  L->M.lock();
  const uint64_t S = St->Seq.fetch_add(1, std::memory_order_relaxed);
  L->Buf.push_back(Rec{S, Kind, L->Tid, Target, Loc});
  L->M.unlock();
}

// ---- Flushing ---------------------------------------------------------------

const char *kindOp(uint8_t K) {
  static const char *Ops[] = {"r", "w", "acq", "rel", "fork", "join"};
  return Ops[K];
}

/// One consistent cut: with RegM held, take every thread lock, swap all
/// buffers, release. Any record stamped after the cut has a larger seq
/// than every record inside it (stamps happen under the thread locks),
/// so consecutive cuts are nested prefixes of one global interleaving.
/// Declares are snapshotted in the same RegM critical section — an id an
/// included event references was interned (and staged) before its append,
/// hence before this cut.
void flushOnce() {
  std::string Decl;
  std::vector<Rec> Cut;
  std::string Text;

  St->RegM.lock();
  Decl.swap(St->PendingDecl);
  for (ThreadLog *L : St->Threads)
    L->M.lock();
  for (ThreadLog *L : St->Threads) {
    Cut.insert(Cut.end(), L->Buf.begin(), L->Buf.end());
    L->Buf.clear();
  }
  for (ThreadLog *L : St->Threads)
    L->M.unlock();

  std::sort(Cut.begin(), Cut.end(),
            [](const Rec &A, const Rec &B) { return A.Seq < B.Seq; });

  // Render both outputs while RegM still pins the name tables.
  if (St->Record) {
    for (const Rec &R : Cut) {
      Text += St->ThreadNames[R.Thread];
      Text += '|';
      Text += kindOp(R.Kind);
      Text += '(';
      Text += R.Kind <= 1   ? St->VarNames[R.Target]
              : R.Kind <= 3 ? St->LockNames[R.Target]
                            : St->ThreadNames[R.Target];
      Text += ")|";
      Text += St->LocNames[R.Loc];
      Text += '\n';
    }
  }
  St->RegM.unlock();

  if ((St->Sock >= 0 || St->SessionToken != 0) && !St->GaveUp) {
    pollServerInput(); // Pick up acks so the spill stays trimmed.
    if (!Decl.empty()) {
      std::string DF;
      wireAppendFrame(DF, WireFrame::Declare, Decl);
      St->DeclareLog += DF; // Replayed in full on every resume.
      sendResumable(DF);
    }
    constexpr size_t BatchRecords = 8192;
    for (size_t I = 0; I < Cut.size(); I += BatchRecords) {
      const size_t N = std::min(BatchRecords, Cut.size() - I);
      std::string P;
      P.reserve(12 + N * WireEventRecordSize);
      wireEventsHeader(P, St->EventsSent, static_cast<uint32_t>(N));
      for (size_t K = 0; K != N; ++K) {
        const Rec &R = Cut[I + K];
        wireEventRecord(P, R.Kind, R.Thread, R.Target, R.Loc);
      }
      std::string EF;
      wireAppendFrame(EF, WireFrame::Events, P);
      St->EventsSent += N;
      if (St->SessionToken != 0) {
        St->SpillBytes += EF.size();
        St->Spill.emplace_back(St->EventsSent - N, EF);
        if (St->SpillBytes > (8u << 20)) {
          // Unbounded unacked backlog: stop pretending we can resume.
          St->Spill.clear();
          St->SpillBytes = 0;
          St->SessionToken = 0;
        }
      }
      if (!sendResumable(EF))
        break;
    }
  }
  if (St->Record && !Text.empty()) {
    std::fwrite(Text.data(), 1, Text.size(), St->Record);
    std::fflush(St->Record);
  }
}

void *flusherMain(void *) {
  InHook = true; // Our internal thread: never record its pthread use.
  while (!St->Stop.load(std::memory_order_relaxed)) {
    timespec TS{0, static_cast<long>(St->FlushMs) * 1000000L};
    nanosleep(&TS, nullptr);
    flushOnce();
  }
  return nullptr;
}

// ---- Init / shutdown --------------------------------------------------------

__attribute__((constructor)) void interposeInit() {
  InHook = true;
  resolveReals();
  St = new State;
  St->RegM.lock();
  St->RtLoc = internLocLocked("rt");
  TL = newThreadLocked(); // The main thread is T1.
  St->RegM.unlock();
  if (const char *Ms = std::getenv("RACE_FLUSH_MS"))
    St->FlushMs = static_cast<unsigned>(std::strtoul(Ms, nullptr, 10));
  if (St->FlushMs == 0)
    St->FlushMs = 50;
  if (const char *Path = std::getenv("RACE_RECORD")) {
    St->Record = std::fopen(Path, "wb");
    if (!St->Record)
      std::fprintf(stderr, "librace_interpose: cannot write '%s'\n", Path);
  }
  if (const char *Retry = std::getenv("RACE_RETRY_MAX"))
    St->RetryMax = static_cast<unsigned>(std::strtoul(Retry, nullptr, 10));
  if (const char *Path = std::getenv("RACE_SERVER")) {
    St->ServerPath = Path;
    const int S = connectServerPath();
    if (S >= 0) {
      St->Sock = S;
      const std::string Hello =
          wireHelloFrame(St->RetryMax ? WireHelloResumable : 0);
      sendAllFd(S, Hello.data(), Hello.size());
      if (St->RetryMax) {
        // The server answers a resumable Hello with Welcome immediately;
        // token 0 means resume is disabled server-side (grace window off).
        WireFrameView F;
        if (readServerFrame(F, 5000) && F.Type == WireFrame::Welcome &&
            F.Payload.size() == 16)
          St->SessionToken = wireGetU64(F.Payload.data() + 8);
      }
    } else {
      std::fprintf(stderr,
                   "librace_interpose: cannot reach RACE_SERVER '%s': %s "
                   "(recording only)\n",
                   Path, std::strerror(errno));
    }
  }
  if (RealCreate &&
      RealCreate(&St->Flusher, nullptr, flusherMain, nullptr) == 0)
    St->FlusherStarted = true;
  InHook = false;
}

__attribute__((destructor)) void interposeFini() {
  InHook = true;
  St->Stop.store(true, std::memory_order_relaxed);
  if (St->FlusherStarted && RealJoin)
    RealJoin(St->Flusher, nullptr);
  flushOnce();
  if (St->Sock >= 0 || (St->SessionToken != 0 && !St->GaveUp)) {
    std::string Fin;
    wireAppendFrame(Fin, WireFrame::Finish, std::string_view());
    St->FinishQueued = true; // reattach() re-sends it after any resume.
    sendResumable(Fin);
  }
  if (St->Sock >= 0) {
    shutdown(St->Sock, SHUT_WR);
    // Drain until the server finalizes (its Report, then EOF) so the
    // session is retained server-side before this process disappears.
    char Buf[4096];
    for (int Spins = 0; Spins != 500; ++Spins) {
      const ssize_t N = recv(St->Sock, Buf, sizeof(Buf), 0);
      if (N <= 0)
        break;
    }
    close(St->Sock);
    St->Sock = -1;
  }
  if (St->Record) {
    std::fclose(St->Record);
    St->Record = nullptr;
  }
}

} // namespace

// ---- Interposed entry points ------------------------------------------------

extern "C" {

struct RaceStartArg {
  void *(*Fn)(void *);
  void *Arg;
  ThreadLog *Log;
};

static void *raceTrampoline(void *P) {
  RaceStartArg *A = static_cast<RaceStartArg *>(P);
  TL = A->Log;
  void *(*Fn)(void *) = A->Fn;
  void *Arg = A->Arg;
  delete A;
  return Fn(Arg);
}

int pthread_create(pthread_t *Th, const pthread_attr_t *Attr,
                   void *(*Fn)(void *), void *Arg) {
  if (!RealCreate)
    resolveReals();
  if (InHook || !St)
    return RealCreate(Th, Attr, Fn, Arg);
  HookGuard G;
  ThreadLog *Self = ensureThread();
  St->RegM.lock();
  ThreadLog *Child = newThreadLocked();
  St->RegM.unlock();
  // Fork stamped before the real create: the child's first event (stamped
  // after the real thread starts) always lands later in the cut order.
  record(Self, 4 /*fork*/, Child->Tid, St->RtLoc);
  RaceStartArg *A = new RaceStartArg{Fn, Arg, Child};
  const int R = RealCreate(Th, Attr, raceTrampoline, A);
  if (R == 0) {
    St->RegM.lock();
    St->JoinIds[reinterpret_cast<uintptr_t>(*Th)] = Child->Tid;
    St->RegM.unlock();
  }
  return R;
}

int pthread_join(pthread_t Th, void **Ret) {
  if (!RealJoin)
    resolveReals();
  if (InHook || !St)
    return RealJoin(Th, Ret);
  HookGuard G;
  const int R = RealJoin(Th, Ret);
  if (R == 0) {
    ThreadLog *Self = ensureThread();
    St->RegM.lock();
    auto It = St->JoinIds.find(reinterpret_cast<uintptr_t>(Th));
    const bool Known = It != St->JoinIds.end();
    const uint32_t Tid = Known ? It->second : 0;
    St->RegM.unlock();
    // Join stamped after the real join returned: every event of the
    // joined thread is already stamped, so it lands earlier in the cut.
    if (Known)
      record(Self, 5 /*join*/, Tid, St->RtLoc);
  }
  return R;
}

int pthread_mutex_lock(pthread_mutex_t *M) {
  if (!RealLock)
    resolveReals();
  if (InHook || !St)
    return RealLock(M);
  HookGuard G;
  const int R = RealLock(M);
  if (R == 0) {
    ThreadLog *Self = ensureThread();
    St->RegM.lock();
    const uint32_t Id = internMutexLocked(M);
    St->RegM.unlock();
    // Acquire stamped while the real lock is held; only the outermost
    // level of a recursive mutex is modeled.
    if (++Self->HeldDepth[Id] == 1)
      record(Self, 2 /*acq*/, Id, St->RtLoc);
  }
  return R;
}

int pthread_mutex_unlock(pthread_mutex_t *M) {
  if (!RealUnlock)
    resolveReals();
  if (InHook || !St)
    return RealUnlock(M);
  HookGuard G;
  ThreadLog *Self = ensureThread();
  St->RegM.lock();
  const uint32_t Id = internMutexLocked(M);
  St->RegM.unlock();
  // Release stamped before the real unlock (still inside the critical
  // section). Unmatched unlocks — depth 0, e.g. after an uninterposed
  // trylock — are skipped, never emitted as bare releases.
  auto It = Self->HeldDepth.find(Id);
  if (It != Self->HeldDepth.end() && It->second != 0 && --It->second == 0)
    record(Self, 3 /*rel*/, Id, St->RtLoc);
  return RealUnlock(M);
}

void race_annotate_access(int IsWrite, const void *Addr, const char *Var,
                          const char *Loc) {
  if (InHook || !St)
    return;
  HookGuard G;
  ThreadLog *Self = ensureThread();
  char AddrName[32];
  if (!Var) {
    std::snprintf(AddrName, sizeof(AddrName), "V%p", Addr);
    Var = AddrName;
  }
  St->RegM.lock();
  const uint32_t V = internVarLocked(Var);
  const uint32_t L = Loc ? internLocLocked(Loc) : St->RtLoc;
  St->RegM.unlock();
  record(Self, IsWrite ? 1 : 0, V, L);
}

} // extern "C"
