//===- examples/interpose/librace_interpose.cpp - LD_PRELOAD shim -------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// A live-attach event source for unmodified pthread programs:
//
//   LD_PRELOAD=./librace_interpose.so RACE_SERVER=/tmp/raced.sock ./app
//
// wraps pthread_create/join and pthread_mutex_lock/unlock, stamps each
// captured operation with a global sequence number, buffers records in
// per-thread logs, and a background flusher merges consistent cuts into
// one globally ordered §2.1-valid stream — pushed to a race_serverd
// session as wire frames (RACE_SERVER) and/or appended to a text trace
// (RACE_RECORD) that race_cli replays offline, bit-for-bit.
//
// Shared-memory accesses cannot be interposed without compiler help, so
// programs mark the ones to model via race_annotate.h (weak symbol; see
// that header). Environment: RACE_SERVER (unix socket path), RACE_RECORD
// (text trace path), RACE_FLUSH_MS (flush cadence, default 50).
//
// Capture rules that make the merged stream well-formed:
//   - acquire is stamped AFTER the real lock returns (inside the critical
//     section), release BEFORE the real unlock (still inside) — two
//     critical sections on one mutex can never interleave in the stream;
//   - fork is stamped before the real pthread_create, so the child's
//     first event always lands after it; join after the real join
//     returns, so the child's last event lands before it;
//   - recursive re-locks are depth-counted per thread and only the
//     outermost pair is modeled; an unlock with no modeled lock (e.g.
//     after an uninterposed trylock) is skipped, never emitted unmatched.
//
// Known model limits (documented in docs/SERVING.md): pthread_cond_wait
// releases/reacquires its mutex inside glibc without crossing these
// wrappers, so condvar-heavy code falls outside the modeled lock
// discipline; trylock/timedlock criticals are not modeled.
//
// Deliberately links NO rapidpp code: the wire encoders it needs are the
// header-only half of io/WireFormat.h (the static analysis library is not
// position-independent and must not be pulled into a preloaded .so).
//
//===----------------------------------------------------------------------===//

#include "io/WireFormat.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <dlfcn.h>
#include <pthread.h>
#include <sched.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

using namespace rapid;

namespace {

// ---- Real functions ---------------------------------------------------------

using CreateFn = int (*)(pthread_t *, const pthread_attr_t *,
                         void *(*)(void *), void *);
using JoinFn = int (*)(pthread_t, void **);
using MutexFn = int (*)(pthread_mutex_t *);

CreateFn RealCreate;
JoinFn RealJoin;
MutexFn RealLock;
MutexFn RealUnlock;

void resolveReals() {
  RealCreate = reinterpret_cast<CreateFn>(dlsym(RTLD_NEXT, "pthread_create"));
  RealJoin = reinterpret_cast<JoinFn>(dlsym(RTLD_NEXT, "pthread_join"));
  RealLock =
      reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  RealUnlock =
      reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
}

// ---- State ------------------------------------------------------------------

struct SpinLock {
  std::atomic_flag F = ATOMIC_FLAG_INIT;
  void lock() {
    while (F.test_and_set(std::memory_order_acquire))
      sched_yield();
  }
  void unlock() { F.clear(std::memory_order_release); }
};

/// One captured operation. Seq is the global stamp; merge-sorting cuts by
/// it reproduces a single §2.1-consistent interleaving.
struct Rec {
  uint64_t Seq;
  uint8_t Kind; ///< EventKind value (0 read .. 5 join).
  uint32_t Thread, Target, Loc;
};

/// Per-thread capture log. Buf is guarded by M (owner appends, flusher
/// swaps); HeldDepth is owner-only.
struct ThreadLog {
  SpinLock M;
  std::vector<Rec> Buf;
  uint32_t Tid = 0;
  /// Modeled lock id -> recursion depth (only the 0<->1 edges emit).
  std::unordered_map<uint32_t, uint32_t> HeldDepth;
};

struct State {
  SpinLock RegM;
  std::vector<ThreadLog *> Threads; ///< Every log ever created (leaked).
  std::unordered_map<const void *, uint32_t> MutexIds;
  std::unordered_map<std::string, uint32_t> VarIds, LocIds;
  std::unordered_map<uintptr_t, uint32_t> JoinIds; ///< pthread_t -> tid.
  std::vector<std::string> ThreadNames, LockNames, VarNames, LocNames;
  std::string PendingDecl; ///< Declare payload staged since last flush.

  std::atomic<uint64_t> Seq{1};
  uint32_t RtLoc = 0; ///< Loc id for runtime (non-annotated) events.

  int Sock = -1;
  std::FILE *Record = nullptr;
  unsigned FlushMs = 50;
  std::atomic<bool> Stop{false};
  pthread_t Flusher{};
  bool FlusherStarted = false;
};

State *St; // Heap-allocated, never freed: immune to static-dtor order.

thread_local ThreadLog *TL;
thread_local bool InHook;

/// RAII passthrough guard: wrappers entered while set call the real
/// function without recording (our own internals, nested wrappers).
struct HookGuard {
  bool Owned;
  HookGuard() : Owned(!InHook) { InHook = true; }
  ~HookGuard() {
    if (Owned)
      InHook = false;
  }
};

bool sendAllFd(int Fd, const char *P, size_t N) {
  while (N != 0) {
    const ssize_t W = send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

// ---- Interning (RegM held by caller) ---------------------------------------

void stageDecl(WireDeclareKind K, const std::string &Name) {
  wireDeclareEntry(St->PendingDecl, K, Name);
}

ThreadLog *newThreadLocked() {
  ThreadLog *L = new ThreadLog;
  L->Tid = static_cast<uint32_t>(St->ThreadNames.size());
  St->ThreadNames.push_back("T" + std::to_string(L->Tid + 1));
  stageDecl(WireDeclareKind::Thread, St->ThreadNames.back());
  St->Threads.push_back(L);
  return L;
}

uint32_t internMutexLocked(const void *M) {
  auto It = St->MutexIds.find(M);
  if (It != St->MutexIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->LockNames.size());
  St->LockNames.push_back("M" + std::to_string(Id + 1));
  stageDecl(WireDeclareKind::Lock, St->LockNames.back());
  St->MutexIds.emplace(M, Id);
  return Id;
}

uint32_t internVarLocked(const std::string &Name) {
  auto It = St->VarIds.find(Name);
  if (It != St->VarIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->VarNames.size());
  St->VarNames.push_back(Name);
  stageDecl(WireDeclareKind::Var, Name);
  St->VarIds.emplace(Name, Id);
  return Id;
}

uint32_t internLocLocked(const std::string &Name) {
  auto It = St->LocIds.find(Name);
  if (It != St->LocIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(St->LocNames.size());
  St->LocNames.push_back(Name);
  stageDecl(WireDeclareKind::Loc, Name);
  St->LocIds.emplace(Name, Id);
  return Id;
}

ThreadLog *ensureThread() {
  if (!TL) {
    St->RegM.lock();
    TL = newThreadLocked();
    St->RegM.unlock();
  }
  return TL;
}

/// Stamp + append under the owner's log lock — the atomicity the
/// flusher's consistent cut depends on.
void record(ThreadLog *L, uint8_t Kind, uint32_t Target, uint32_t Loc) {
  L->M.lock();
  const uint64_t S = St->Seq.fetch_add(1, std::memory_order_relaxed);
  L->Buf.push_back(Rec{S, Kind, L->Tid, Target, Loc});
  L->M.unlock();
}

// ---- Flushing ---------------------------------------------------------------

const char *kindOp(uint8_t K) {
  static const char *Ops[] = {"r", "w", "acq", "rel", "fork", "join"};
  return Ops[K];
}

/// One consistent cut: with RegM held, take every thread lock, swap all
/// buffers, release. Any record stamped after the cut has a larger seq
/// than every record inside it (stamps happen under the thread locks),
/// so consecutive cuts are nested prefixes of one global interleaving.
/// Declares are snapshotted in the same RegM critical section — an id an
/// included event references was interned (and staged) before its append,
/// hence before this cut.
void flushOnce() {
  std::string Decl;
  std::vector<Rec> Cut;
  std::string Text;
  std::string Frames;

  St->RegM.lock();
  Decl.swap(St->PendingDecl);
  for (ThreadLog *L : St->Threads)
    L->M.lock();
  for (ThreadLog *L : St->Threads) {
    Cut.insert(Cut.end(), L->Buf.begin(), L->Buf.end());
    L->Buf.clear();
  }
  for (ThreadLog *L : St->Threads)
    L->M.unlock();

  std::sort(Cut.begin(), Cut.end(),
            [](const Rec &A, const Rec &B) { return A.Seq < B.Seq; });

  // Render both outputs while RegM still pins the name tables.
  if (St->Record) {
    for (const Rec &R : Cut) {
      Text += St->ThreadNames[R.Thread];
      Text += '|';
      Text += kindOp(R.Kind);
      Text += '(';
      Text += R.Kind <= 1   ? St->VarNames[R.Target]
              : R.Kind <= 3 ? St->LockNames[R.Target]
                            : St->ThreadNames[R.Target];
      Text += ")|";
      Text += St->LocNames[R.Loc];
      Text += '\n';
    }
  }
  St->RegM.unlock();

  if (St->Sock >= 0) {
    if (!Decl.empty())
      wireAppendFrame(Frames, WireFrame::Declare, Decl);
    constexpr size_t BatchRecords = 8192;
    for (size_t I = 0; I < Cut.size(); I += BatchRecords) {
      const size_t N = std::min(BatchRecords, Cut.size() - I);
      std::string P;
      P.reserve(4 + N * WireEventRecordSize);
      wirePutU32(P, static_cast<uint32_t>(N));
      for (size_t K = 0; K != N; ++K) {
        const Rec &R = Cut[I + K];
        wireEventRecord(P, R.Kind, R.Thread, R.Target, R.Loc);
      }
      wireAppendFrame(Frames, WireFrame::Events, P);
    }
    if (!Frames.empty() && !sendAllFd(St->Sock, Frames.data(), Frames.size())) {
      close(St->Sock);
      St->Sock = -1;
      std::fprintf(stderr, "librace_interpose: lost the server connection\n");
    }
  }
  if (St->Record && !Text.empty()) {
    std::fwrite(Text.data(), 1, Text.size(), St->Record);
    std::fflush(St->Record);
  }
}

void *flusherMain(void *) {
  InHook = true; // Our internal thread: never record its pthread use.
  while (!St->Stop.load(std::memory_order_relaxed)) {
    timespec TS{0, static_cast<long>(St->FlushMs) * 1000000L};
    nanosleep(&TS, nullptr);
    flushOnce();
  }
  return nullptr;
}

// ---- Init / shutdown --------------------------------------------------------

__attribute__((constructor)) void interposeInit() {
  InHook = true;
  resolveReals();
  St = new State;
  St->RegM.lock();
  St->RtLoc = internLocLocked("rt");
  TL = newThreadLocked(); // The main thread is T1.
  St->RegM.unlock();
  if (const char *Ms = std::getenv("RACE_FLUSH_MS"))
    St->FlushMs = static_cast<unsigned>(std::strtoul(Ms, nullptr, 10));
  if (St->FlushMs == 0)
    St->FlushMs = 50;
  if (const char *Path = std::getenv("RACE_RECORD")) {
    St->Record = std::fopen(Path, "wb");
    if (!St->Record)
      std::fprintf(stderr, "librace_interpose: cannot write '%s'\n", Path);
  }
  if (const char *Path = std::getenv("RACE_SERVER")) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (std::strlen(Path) < sizeof(Addr.sun_path)) {
      std::memcpy(Addr.sun_path, Path, std::strlen(Path) + 1);
      const int S = socket(AF_UNIX, SOCK_STREAM, 0);
      if (S >= 0 && connect(S, reinterpret_cast<const sockaddr *>(&Addr),
                            sizeof(Addr)) == 0) {
        St->Sock = S;
        const std::string Hello = wireHelloFrame();
        sendAllFd(S, Hello.data(), Hello.size());
      } else {
        if (S >= 0)
          close(S);
        std::fprintf(stderr,
                     "librace_interpose: cannot reach RACE_SERVER '%s': %s "
                     "(recording only)\n",
                     Path, std::strerror(errno));
      }
    }
  }
  if (RealCreate &&
      RealCreate(&St->Flusher, nullptr, flusherMain, nullptr) == 0)
    St->FlusherStarted = true;
  InHook = false;
}

__attribute__((destructor)) void interposeFini() {
  InHook = true;
  St->Stop.store(true, std::memory_order_relaxed);
  if (St->FlusherStarted && RealJoin)
    RealJoin(St->Flusher, nullptr);
  flushOnce();
  if (St->Sock >= 0) {
    std::string Fin;
    wireAppendFrame(Fin, WireFrame::Finish, std::string_view());
    sendAllFd(St->Sock, Fin.data(), Fin.size());
    shutdown(St->Sock, SHUT_WR);
    // Drain until the server finalizes (its Report, then EOF) so the
    // session is retained server-side before this process disappears.
    char Buf[4096];
    for (int Spins = 0; Spins != 500; ++Spins) {
      const ssize_t N = recv(St->Sock, Buf, sizeof(Buf), 0);
      if (N <= 0)
        break;
    }
    close(St->Sock);
    St->Sock = -1;
  }
  if (St->Record) {
    std::fclose(St->Record);
    St->Record = nullptr;
  }
}

} // namespace

// ---- Interposed entry points ------------------------------------------------

extern "C" {

struct RaceStartArg {
  void *(*Fn)(void *);
  void *Arg;
  ThreadLog *Log;
};

static void *raceTrampoline(void *P) {
  RaceStartArg *A = static_cast<RaceStartArg *>(P);
  TL = A->Log;
  void *(*Fn)(void *) = A->Fn;
  void *Arg = A->Arg;
  delete A;
  return Fn(Arg);
}

int pthread_create(pthread_t *Th, const pthread_attr_t *Attr,
                   void *(*Fn)(void *), void *Arg) {
  if (!RealCreate)
    resolveReals();
  if (InHook || !St)
    return RealCreate(Th, Attr, Fn, Arg);
  HookGuard G;
  ThreadLog *Self = ensureThread();
  St->RegM.lock();
  ThreadLog *Child = newThreadLocked();
  St->RegM.unlock();
  // Fork stamped before the real create: the child's first event (stamped
  // after the real thread starts) always lands later in the cut order.
  record(Self, 4 /*fork*/, Child->Tid, St->RtLoc);
  RaceStartArg *A = new RaceStartArg{Fn, Arg, Child};
  const int R = RealCreate(Th, Attr, raceTrampoline, A);
  if (R == 0) {
    St->RegM.lock();
    St->JoinIds[reinterpret_cast<uintptr_t>(*Th)] = Child->Tid;
    St->RegM.unlock();
  }
  return R;
}

int pthread_join(pthread_t Th, void **Ret) {
  if (!RealJoin)
    resolveReals();
  if (InHook || !St)
    return RealJoin(Th, Ret);
  HookGuard G;
  const int R = RealJoin(Th, Ret);
  if (R == 0) {
    ThreadLog *Self = ensureThread();
    St->RegM.lock();
    auto It = St->JoinIds.find(reinterpret_cast<uintptr_t>(Th));
    const bool Known = It != St->JoinIds.end();
    const uint32_t Tid = Known ? It->second : 0;
    St->RegM.unlock();
    // Join stamped after the real join returned: every event of the
    // joined thread is already stamped, so it lands earlier in the cut.
    if (Known)
      record(Self, 5 /*join*/, Tid, St->RtLoc);
  }
  return R;
}

int pthread_mutex_lock(pthread_mutex_t *M) {
  if (!RealLock)
    resolveReals();
  if (InHook || !St)
    return RealLock(M);
  HookGuard G;
  const int R = RealLock(M);
  if (R == 0) {
    ThreadLog *Self = ensureThread();
    St->RegM.lock();
    const uint32_t Id = internMutexLocked(M);
    St->RegM.unlock();
    // Acquire stamped while the real lock is held; only the outermost
    // level of a recursive mutex is modeled.
    if (++Self->HeldDepth[Id] == 1)
      record(Self, 2 /*acq*/, Id, St->RtLoc);
  }
  return R;
}

int pthread_mutex_unlock(pthread_mutex_t *M) {
  if (!RealUnlock)
    resolveReals();
  if (InHook || !St)
    return RealUnlock(M);
  HookGuard G;
  ThreadLog *Self = ensureThread();
  St->RegM.lock();
  const uint32_t Id = internMutexLocked(M);
  St->RegM.unlock();
  // Release stamped before the real unlock (still inside the critical
  // section). Unmatched unlocks — depth 0, e.g. after an uninterposed
  // trylock — are skipped, never emitted as bare releases.
  auto It = Self->HeldDepth.find(Id);
  if (It != Self->HeldDepth.end() && It->second != 0 && --It->second == 0)
    record(Self, 3 /*rel*/, Id, St->RtLoc);
  return RealUnlock(M);
}

void race_annotate_access(int IsWrite, const void *Addr, const char *Var,
                          const char *Loc) {
  if (InHook || !St)
    return;
  HookGuard G;
  ThreadLog *Self = ensureThread();
  char AddrName[32];
  if (!Var) {
    std::snprintf(AddrName, sizeof(AddrName), "V%p", Addr);
    Var = AddrName;
  }
  St->RegM.lock();
  const uint32_t V = internVarLocked(Var);
  const uint32_t L = Loc ? internLocLocked(Loc) : St->RtLoc;
  St->RegM.unlock();
  record(Self, IsWrite ? 1 : 0, V, L);
}

} // extern "C"
