//===- examples/interpose/interpose_demo.cpp - Annotated pthread demo ---------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// A small pthread workload for the LD_PRELOAD interposer: N workers bump
// one mutex-protected counter (never racy) and one deliberately
// unprotected counter (racy by construction, and annotated so the
// analysis models it). Run it live against a server, recording the same
// stream for offline replay:
//
//   LD_PRELOAD=./librace_interpose.so RACE_SERVER=/tmp/raced.sock
//     RACE_RECORD=/tmp/demo.txt ./interpose_demo        (one command line)
//
// The unprotected accesses are performed with relaxed atomics: the
// *modeled* trace still has the data race (the annotations carry no lock
// protection), but the binary itself stays UB-free and ThreadSanitizer-
// silent — the point is predictive analysis of the modeled trace, not a
// crash demo. Tunables: RACE_DEMO_THREADS (default 4), RACE_DEMO_ITERS
// (default 200), RACE_DEMO_SLEEP_US (default 500).
//
//===----------------------------------------------------------------------===//

#include "race_annotate.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <pthread.h>
#include <time.h>

namespace {

pthread_mutex_t CounterMutex = PTHREAD_MUTEX_INITIALIZER;
long Protected;            // Always accessed under CounterMutex.
unsigned long Racy;        // Accessed lock-free (relaxed atomics).

struct WorkerArgs {
  int Iters;
  unsigned SleepUs;
};

void napUs(unsigned Us) {
  if (!Us)
    return;
  timespec TS{static_cast<time_t>(Us / 1000000),
              static_cast<long>(Us % 1000000) * 1000L};
  nanosleep(&TS, nullptr);
}

void *worker(void *P) {
  const WorkerArgs *A = static_cast<const WorkerArgs *>(P);
  for (int I = 0; I != A->Iters; ++I) {
    pthread_mutex_lock(&CounterMutex);
    RACE_WRITE(&Protected, "protected");
    ++Protected;
    pthread_mutex_unlock(&CounterMutex);

    RACE_READ(&Racy, "racy");
    const unsigned long V = __atomic_load_n(&Racy, __ATOMIC_RELAXED);
    RACE_WRITE(&Racy, "racy");
    __atomic_store_n(&Racy, V + 1, __ATOMIC_RELAXED);

    napUs(A->SleepUs);
  }
  return nullptr;
}

unsigned envOr(const char *Name, unsigned Default) {
  const char *V = std::getenv(Name);
  return V ? static_cast<unsigned>(std::strtoul(V, nullptr, 10)) : Default;
}

} // namespace

int main() {
  const unsigned Threads = envOr("RACE_DEMO_THREADS", 4);
  WorkerArgs Args{static_cast<int>(envOr("RACE_DEMO_ITERS", 200)),
                  envOr("RACE_DEMO_SLEEP_US", 500)};

  std::vector<pthread_t> Ids(Threads);
  for (unsigned T = 0; T != Threads; ++T) {
    if (pthread_create(&Ids[T], nullptr, worker, &Args) != 0) {
      std::fprintf(stderr, "pthread_create failed\n");
      return 1;
    }
  }
  for (unsigned T = 0; T != Threads; ++T)
    pthread_join(Ids[T], nullptr);

  std::printf("protected=%ld racy=%lu (annotated accesses: %s)\n", Protected,
              __atomic_load_n(&Racy, __ATOMIC_RELAXED),
              race_annotate_access ? "captured" : "not captured");
  return 0;
}
