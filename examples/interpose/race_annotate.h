/*===- examples/interpose/race_annotate.h - Access annotation API ---------===*
 *
 * Part of rapidpp (PLDI'17 WCP reproduction).
 *
 * The markable read/write API for programs run under librace_interpose.so
 * (LD_PRELOAD). Lock/fork/join events are captured automatically by the
 * pthread wrappers; shared-memory *accesses* are not interposable without
 * compiler instrumentation, so programs mark the ones they want modeled:
 *
 *   #include "race_annotate.h"
 *   RACE_WRITE(&Counter, "counter");   // before/at the store
 *   RACE_READ(&Flags, "flags");        // before/at the load
 *
 * The hook symbol is weak: without the interposer preloaded it resolves
 * to null and the macros are a test-and-skip — programs build and run
 * unannotated with zero dependencies on the analysis library.
 *
 *===----------------------------------------------------------------------===*/

#ifndef RAPID_RACE_ANNOTATE_H
#define RAPID_RACE_ANNOTATE_H

#ifdef __cplusplus
extern "C" {
#endif

/* Defined (strongly) by librace_interpose.so. IsWrite: 0 read, 1 write.
 * Var is the modeled variable's display name (address-derived when null);
 * Loc a source-location string. */
__attribute__((weak)) void race_annotate_access(int IsWrite, const void *Addr,
                                                const char *Var,
                                                const char *Loc);

#ifdef __cplusplus
}
#endif

#define RACE_ANNOTATE_STR2(X) #X
#define RACE_ANNOTATE_STR(X) RACE_ANNOTATE_STR2(X)
#define RACE_ANNOTATE_LOC __FILE__ ":" RACE_ANNOTATE_STR(__LINE__)

#define RACE_READ(Addr, Name)                                                  \
  do {                                                                         \
    if (race_annotate_access)                                                  \
      race_annotate_access(0, (Addr), (Name), RACE_ANNOTATE_LOC);              \
  } while (0)

#define RACE_WRITE(Addr, Name)                                                 \
  do {                                                                         \
    if (race_annotate_access)                                                  \
      race_annotate_access(1, (Addr), (Name), RACE_ANNOTATE_LOC);              \
  } while (0)

#endif /* RAPID_RACE_ANNOTATE_H */
