//===- examples/deadlock_demo.cpp - Figure 5's deadlock, live -----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The subtlest example in the paper: Figure 5 has *no* predictable race,
// yet WCP flags the z-accesses. Weak soundness (Theorem 1) is honored
// because the trace hides a predictable deadlock — and, unlike CP's
// two-thread guarantee, this one needs three threads. This demo finds the
// deadlock, prints the schedule that reaches it and the wait-for cycle.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/PaperTraces.h"
#include "mcm/McmSearch.h"
#include "verify/Deadlock.h"
#include "wcp/WcpDetector.h"

#include <cstdio>

using namespace rapid;

int main() {
  PaperTrace P = paperFig5();
  std::printf("Figure 5 trace:\n");
  for (EventIdx I = 0; I != P.T.size(); ++I)
    std::printf("  %2llu: %s\n", (unsigned long long)I,
                P.T.eventStr(I).c_str());

  WcpDetector D(P.T);
  RunResult R = runDetector(D, P.T);
  std::printf("\nWCP reports: %s", R.Report.str(P.T).c_str());

  McmResult Mcm = exploreMcm(P.T);
  std::printf("maximal-causality search: %llu predictable race(s) "
              "(states: %llu, exhaustive: %s)\n",
              (unsigned long long)Mcm.Report.numDistinctPairs(),
              (unsigned long long)Mcm.StatesExpanded,
              Mcm.BudgetExhausted ? "no" : "yes");

  DeadlockReport Dl = findPredictableDeadlock(P.T);
  if (!Dl.Found) {
    std::printf("no predictable deadlock found — unexpected!\n");
    return 1;
  }
  std::printf("\npredictable deadlock found. Schedule reaching it:\n");
  for (EventIdx I : Dl.Schedule)
    std::printf("  %s\n", P.T.eventStr(I).c_str());
  std::printf("wait-for cycle: %s\n", describeDeadlock(P.T, Dl).c_str());
  std::printf("\nThis is why WCP's guarantee is *weak* soundness: a WCP "
              "race promises a\npredictable race OR a predictable "
              "deadlock — here it is the deadlock.\n");
  return 0;
}
