//===- examples/quickstart.cpp - Five-minute tour of the API ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Builds the paper's Figure 2b trace through the public API, runs the
// three partial-order analyses (HB, CP, WCP), shows that only WCP finds
// the race, and then asks the maximal-causality engine for a concrete
// reordering that proves the race is real.
//
//===----------------------------------------------------------------------===//

#include "cp/CpEngine.h"
#include "detect/DetectorRunner.h"
#include "hb/HbDetector.h"
#include "trace/TraceBuilder.h"
#include "verify/WitnessSearch.h"
#include "wcp/WcpDetector.h"

#include <cstdio>

using namespace rapid;

int main() {
  // ---- 1. Build a trace (Figure 2b of the paper). -------------------------
  // t1: w(y) acq(l) w(x) rel(l)        t2: acq(l) r(y) r(x) rel(l)
  TraceBuilder Builder;
  Builder.write("t1", "y", "t1:write_y");
  Builder.acquire("t1", "l", "t1:lock");
  Builder.write("t1", "x", "t1:write_x");
  Builder.release("t1", "l", "t1:unlock");
  Builder.acquire("t2", "l", "t2:lock");
  Builder.read("t2", "y", "t2:read_y");
  Builder.read("t2", "x", "t2:read_x");
  Builder.release("t2", "l", "t2:unlock");
  Trace T = Builder.take();

  std::printf("trace (%llu events):\n", (unsigned long long)T.size());
  for (EventIdx I = 0; I != T.size(); ++I)
    std::printf("  %llu: %s\n", (unsigned long long)I, T.eventStr(I).c_str());

  // ---- 2. Run the linear-time detectors. ----------------------------------
  HbDetector Hb(T);
  RunResult HbRun = runDetector(Hb, T);
  std::printf("\nHB  races: %llu\n",
              (unsigned long long)HbRun.Report.numDistinctPairs());

  CpResult Cp = runCpFull(T);
  std::printf("CP  races: %llu\n",
              (unsigned long long)Cp.Report.numDistinctPairs());

  WcpDetector Wcp(T);
  RunResult WcpRun = runDetector(Wcp, T);
  std::printf("WCP races: %llu\n",
              (unsigned long long)WcpRun.Report.numDistinctPairs());
  std::printf("%s", WcpRun.Report.str(T).c_str());

  // ---- 3. Prove the WCP race with a concrete reordering. ------------------
  if (!WcpRun.Report.instances().empty()) {
    const RaceInstance &Race = WcpRun.Report.instances().front();
    WitnessResult W = findWitness(T, Race.pair());
    if (W.Kind == WitnessKind::Race) {
      std::printf("\nwitness schedule (last two events race):\n");
      for (EventIdx I : W.Schedule)
        std::printf("  %s\n", T.eventStr(I).c_str());
    }
  }
  return 0;
}
