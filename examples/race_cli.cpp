//===- examples/race_cli.cpp - RAPID-style command-line tool ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The equivalent of the paper's RAPID tool, rebuilt on the session API
// (api/AnalysisSession.h): flags map onto one AnalysisConfig, every run
// mode goes through the same validated entry point, and failures surface
// as structured statuses.
//
// Run `race_cli --help` for the full flag matrix. --stream composes with
// every mode (sequential, --window, --shards): the session's streaming
// engine overlaps analysis with ingestion — windows dispatch as their
// event range arrives; the var-sharded clock pass and shard checks run
// behind the reader. --json replaces the human-readable output with a
// machine-readable report mirroring BENCH_pipeline.json's style;
// --dry-run validates the flag combination and exits (the docs CI job
// uses it to keep every invocation quoted in docs/*.md parseable).
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "gen/Workloads.h"
#include "io/TraceFile.h"
#include "obs/Metrics.h"
#include "pipeline/ChunkedReader.h"
#include "serve/ReportCanon.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

using namespace rapid;

namespace {

struct Options {
  std::string Path;
  bool RunHb = false;
  bool RunWcp = false;
  bool RunFastTrack = false;
  bool RunEraser = false;
  bool RunSyncP = false;
  bool ShowStats = false;
  bool Pipeline = false;
  bool Stream = false;
  bool Json = false;
  bool Balanced = false;
  bool DryRun = false;
  bool ShowMetrics = false; // --metrics: human-readable telemetry tables.
  bool NoMetrics = false;   // --no-metrics: zero-cost disable.
  std::string TraceOut;     // --trace-out: Perfetto timeline destination.
  std::string ReportOut;    // --report-out: canonical report destination.
  unsigned Threads = 0; // 0 = hardware concurrency.
  uint64_t Window = 0;  // 0 = unwindowed.
  uint32_t Shards = 0;  // 0 = no per-variable sharding.
};

void printHelp() {
  std::fputs(
      "usage: race_cli [trace-file] [options]\n"
      "\n"
      "Analyzes a trace (.bin or .txt; the built-in 'mergesort' workload\n"
      "model when no file is given) for predictable data races. Pass '-'\n"
      "to read a text trace from stdin (requires --stream: standard input\n"
      "cannot seek, so only the streaming session can consume it); FIFO\n"
      "paths stream the same way.\n"
      "\n"
      "detectors (default: --hb --wcp):\n"
      "  --hb           Djit+-style happens-before\n"
      "  --wcp          weak-causally-precedes (the paper's linear-time "
      "core)\n"
      "  --fasttrack    FastTrack epochs\n"
      "  --eraser       Eraser locksets\n"
      "  --syncp        sync-preserving race prediction (SP-closure;\n"
      "                 finds races WCP provably misses)\n"
      "\n"
      "modes (pick at most one; default is sequential lanes):\n"
      "  --window N     windowed baseline: fresh detector per N-event\n"
      "                 window (cross-window races lost by design)\n"
      "  --shards N     per-variable sharded checks, bit-identical to\n"
      "                 sequential for any N\n"
      "  --balanced     with --shards: frequency-balanced shard plan\n"
      "                 (greedy bin-packing on access counts)\n"
      "\n"
      "execution:\n"
      "  --stream       feed the file through a streaming session so\n"
      "                 analysis overlaps ingestion; composes with every\n"
      "                 mode (sequential lanes consume published chunks,\n"
      "                 windows dispatch as their range arrives, the\n"
      "                 var-sharded clock pass + shard checks run behind\n"
      "                 the reader). Requires a trace file; binary traces\n"
      "                 overlap chunk by chunk, text publishes at EOF\n"
      "  --pipeline     batch mode with chunked (bounded-memory) "
      "ingestion\n"
      "  --threads N    worker threads (0 or default: hardware "
      "concurrency)\n"
      "\n"
      "output:\n"
      "  --stats        print trace statistics first\n"
      "  --json         machine-readable report (schema shared with\n"
      "                 BENCH_pipeline.json tooling); includes per-lane\n"
      "                 and session \"telemetry\" objects\n"
      "  --metrics      print the telemetry tables (session counters,\n"
      "                 then one table per lane; see docs/OBSERVABILITY.md\n"
      "                 for the metric catalog)\n"
      "  --no-metrics   disable metric collection entirely (the zero-cost\n"
      "                 path: no atomics, no clock reads)\n"
      "  --trace-out F  write a Chrome/Perfetto trace_event timeline of\n"
      "                 the run to F (requires --stream; open the file at\n"
      "                 ui.perfetto.dev)\n"
      "  --report-out F write the canonical race report to F — the exact\n"
      "                 bytes race_serverd's Report frames carry, for\n"
      "                 diffing live sessions against offline replays\n"
      "  --dry-run      validate the flag combination and exit 0 without\n"
      "                 reading the trace or analyzing\n"
      "  --help         this text\n"
      "\n"
      "examples:\n"
      "  race_cli trace.bin --hb --wcp\n"
      "  race_cli trace.bin --stream --window 100000\n"
      "  race_cli trace.bin --stream --shards 8 --balanced --threads 4\n"
      "  race_cli trace.bin --stream --metrics\n"
      "  race_cli trace.bin --stream --window 100000 --trace-out run.json\n"
      "  race_cli trace.txt --json --fasttrack\n"
      "  race_cli trace.bin --wcp --syncp --shards 8\n"
      "  cat trace.txt | race_cli - --stream --hb --wcp\n"
      "  race_cli trace.txt --report-out report.txt\n",
      stdout);
}

/// Looks up one metric by name in a telemetry block. Returns false when
/// the sample is absent (metrics disabled, or the lane never registered
/// it).
bool findSample(const std::vector<MetricSample> &Telemetry,
                const char *Name, uint64_t &Value) {
  for (const MetricSample &S : Telemetry)
    if (S.Name == Name) {
      Value = S.Value;
      return true;
    }
  return false;
}

/// Renders a telemetry block as a JSON object: {"name": value, ...}.
/// Samples are already name-sorted by the session, so output is stable.
std::string renderTelemetryJson(const std::vector<MetricSample> &Telemetry,
                                const char *Indent) {
  std::string J = "{";
  for (size_t I = 0; I != Telemetry.size(); ++I) {
    if (I)
      J += ",";
    J += "\n";
    J += Indent;
    J += "  " + jsonQuote(Telemetry[I].Name) + ": " +
         std::to_string(Telemetry[I].Value);
  }
  if (!Telemetry.empty()) {
    J += "\n";
    J += Indent;
  }
  J += "}";
  return J;
}

/// The machine-readable report: same field style as BENCH_pipeline.json
/// so the two outputs can share tooling.
std::string renderJson(const AnalysisResult &R, const AnalysisConfig &Cfg,
                       bool Streamed) {
  std::string J;
  J += "{\n";
  J += "  \"tool\": \"race_cli\",\n";
  J += "  \"mode\": \"" + std::string(runModeName(Cfg.Mode)) + "\",\n";
  J += "  \"streamed\": " + std::string(Streamed ? "true" : "false") + ",\n";
  J += "  \"status\": " + jsonQuote(R.firstError().ok() ? "ok"
                                                      : R.firstError().str()) +
       ",\n";
  J += "  \"events\": " + std::to_string(R.EventsIngested) + ",\n";
  J += "  \"threads_used\": " + std::to_string(R.ThreadsUsed) + ",\n";
  J += "  \"window_events\": " + std::to_string(Cfg.WindowEvents) + ",\n";
  J += "  \"var_shards\": " + std::to_string(Cfg.VarShards) + ",\n";
  J += "  \"shard_strategy\": \"" +
       std::string(Cfg.Strategy == ShardStrategy::FrequencyBalanced
                       ? "frequency-balanced"
                       : "modulo") +
       "\",\n";
  J += "  \"wall_seconds\": " + jsonNum(R.WallSeconds) + ",\n";
  J += "  \"ingest_seconds\": " + jsonNum(R.IngestSeconds) + ",\n";
  J += "  \"lane_seconds_total\": " + jsonNum(R.laneSecondsTotal()) + ",\n";
  J += "  \"tasks_stolen\": " + std::to_string(R.TasksStolen) + ",\n";
  // Per-lane restarts left the schema in the growable-state redesign:
  // detectors grow in place, so the count is structurally zero. The compat
  // note is the forwarding address for tooling that still greps for it.
  J += "  \"compat\": {\"restarts\": \"deprecated; detectors grow in place "
       "and never restart, so the per-lane count is structurally 0\"},\n";
  J += "  \"telemetry\": " + renderTelemetryJson(R.Telemetry, "  ") + ",\n";
  J += "  \"lanes\": [";
  for (size_t L = 0; L != R.Lanes.size(); ++L) {
    const LaneReport &Lane = R.Lanes[L];
    if (L)
      J += ",";
    J += "\n    {\"detector\": " + jsonQuote(Lane.DetectorName) +
         ", \"status\": " +
         jsonQuote(Lane.LaneStatus.ok() ? "ok" : Lane.LaneStatus.str()) +
         ", \"races\": " + std::to_string(Lane.Report.numDistinctPairs()) +
         ", \"instances\": " + std::to_string(Lane.Report.numInstances()) +
         ", \"maxdist\": " + std::to_string(Lane.Report.maxPairDistance()) +
         ", \"seconds\": " + jsonNum(Lane.Seconds) +
         ", \"events_consumed\": " + std::to_string(Lane.EventsConsumed) +
         ",\n     \"telemetry\": " +
         renderTelemetryJson(Lane.Telemetry, "     ") + "}";
  }
  J += "\n  ]\n}\n";
  return J;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--hb")
      Opts.RunHb = true;
    else if (Arg == "--wcp")
      Opts.RunWcp = true;
    else if (Arg == "--fasttrack")
      Opts.RunFastTrack = true;
    else if (Arg == "--eraser")
      Opts.RunEraser = true;
    else if (Arg == "--syncp")
      Opts.RunSyncP = true;
    else if (Arg == "--stats")
      Opts.ShowStats = true;
    else if (Arg == "--pipeline")
      Opts.Pipeline = true;
    else if (Arg == "--stream")
      Opts.Stream = true;
    else if (Arg == "--json")
      Opts.Json = true;
    else if (Arg == "--balanced")
      Opts.Balanced = true;
    else if (Arg == "--dry-run")
      Opts.DryRun = true;
    else if (Arg == "--metrics")
      Opts.ShowMetrics = true;
    else if (Arg == "--no-metrics")
      Opts.NoMetrics = true;
    else if (Arg == "--trace-out" && I + 1 < Argc)
      Opts.TraceOut = Argv[++I];
    else if (Arg.rfind("--trace-out=", 0) == 0)
      Opts.TraceOut = Arg.substr(std::strlen("--trace-out="));
    else if (Arg == "--report-out" && I + 1 < Argc)
      Opts.ReportOut = Argv[++I];
    else if (Arg.rfind("--report-out=", 0) == 0)
      Opts.ReportOut = Arg.substr(std::strlen("--report-out="));
    else if (Arg == "--help" || Arg == "-h") {
      printHelp();
      return 0;
    }
    else if (Arg == "--threads" && I + 1 < Argc)
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--window" && I + 1 < Argc)
      Opts.Window = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--shards" && I + 1 < Argc)
      Opts.Shards =
          static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else
      Opts.Path = Arg;
  }
  if (!Opts.RunHb && !Opts.RunWcp && !Opts.RunFastTrack && !Opts.RunEraser &&
      !Opts.RunSyncP)
    Opts.RunHb = Opts.RunWcp = true;
  if (Opts.Window > 0 && Opts.Shards > 0) {
    std::fprintf(stderr, "error: --window and --shards are mutually "
                         "exclusive (windowed vs per-variable sharding)\n");
    return 1;
  }
  // --stream composes with every mode: windowed sessions dispatch each
  // window as its event range publishes, var-sharded sessions run the
  // clock pass and shard checks behind ingestion.
  if (Opts.Stream && Opts.Path.empty() && !Opts.DryRun) {
    std::fprintf(stderr, "error: --stream needs a trace file\n");
    return 1;
  }
  if (Opts.Path == "-" && !Opts.Stream) {
    // Stdin cannot seek: the batch loaders (and the windowed baseline's
    // whole-trace cut) need a rewindable file, so '-' only composes with
    // the streaming session.
    std::fprintf(stderr,
                 "error: reading from '-' (stdin) requires --stream (stdin "
                 "cannot seek)\n");
    return 1;
  }
  if (Opts.Balanced && Opts.Shards == 0) {
    std::fprintf(stderr, "error: --balanced requires --shards N\n");
    return 1;
  }
  if (!Opts.TraceOut.empty() && !Opts.Stream) {
    // The timeline records the streaming pipeline's stages; batch runs
    // have no recorder threaded through them.
    std::fprintf(stderr, "error: --trace-out requires --stream\n");
    return 1;
  }
  if (Opts.ShowMetrics && Opts.NoMetrics) {
    std::fprintf(stderr, "error: --metrics and --no-metrics conflict\n");
    return 1;
  }
  if (Opts.Threads == 0) {
    // "--threads 0" (or an unparsable count) must not build a zero-worker
    // pool; clamp to the hardware concurrency the pool would default to.
    Opts.Threads = ThreadPool::defaultConcurrency();
  }

  // Flags → the one declarative config every mode shares.
  AnalysisConfig Cfg;
  Cfg.Threads = Opts.Threads;
  Cfg.Metrics = !Opts.NoMetrics;
  Cfg.Timeline = !Opts.TraceOut.empty();
  if (Opts.Shards > 0) {
    Cfg.Mode = RunMode::VarSharded;
    Cfg.VarShards = Opts.Shards;
    Cfg.Strategy = Opts.Balanced ? ShardStrategy::FrequencyBalanced
                                 : ShardStrategy::Modulo;
  } else if (Opts.Window > 0) {
    Cfg.Mode = RunMode::Windowed;
    Cfg.WindowEvents = Opts.Window;
  } else {
    Cfg.Mode = RunMode::Sequential;
  }
  if (Opts.RunHb)
    Cfg.addDetector(DetectorKind::Hb);
  // WCP's queue peaks (paper §4, Table 1 column 11) now ride the lane's
  // Telemetry block (Detector::telemetry), so the plain detector suffices.
  if (Opts.RunWcp)
    Cfg.addDetector(DetectorKind::Wcp);
  if (Opts.RunFastTrack)
    Cfg.addDetector(DetectorKind::FastTrack);
  if (Opts.RunEraser)
    Cfg.addDetector(DetectorKind::Eraser);
  if (Opts.RunSyncP)
    Cfg.addDetector(DetectorKind::SyncP);
  if (Status V = Cfg.validate(); !V.ok()) {
    std::fprintf(stderr, "error: %s\n", V.str().c_str());
    return 1;
  }
  if (Opts.DryRun) {
    std::printf("dry-run ok: mode=%s detectors=%zu threads=%u%s\n",
                runModeName(Cfg.Mode), Cfg.Detectors.size(), Cfg.Threads,
                Opts.Stream ? " streamed" : "");
    return 0;
  }

  // Run: either a streaming session over the file (ingest overlaps
  // analysis) or the one-shot batch path over an in-memory trace. The
  // session (when used) stays alive so its trace can be rendered without
  // a copy.
  AnalysisResult R;
  Trace Batch;
  std::optional<AnalysisSession> Session;
  double IngestSeconds = 0;
  if (Opts.Stream) {
    Session.emplace(Cfg);
    Status Fed = Session->feedFile(Opts.Path);
    if (!Fed.ok())
      std::fprintf(stderr, "error: %s\n", Fed.str().c_str());
    // Even on ingest failure, finish and render: the session's contract
    // is that the validated/published prefix stays analyzed, and --json
    // consumers always get a report (with the failure in its status).
    R = Session->finish();
    IngestSeconds = R.IngestSeconds;
    if (!Opts.TraceOut.empty()) {
      std::string Timeline = Session->exportTimeline();
      std::FILE *F = std::fopen(Opts.TraceOut.c_str(), "wb");
      if (!F || std::fwrite(Timeline.data(), 1, Timeline.size(), F) !=
                    Timeline.size()) {
        std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                     Opts.TraceOut.c_str());
        if (F)
          std::fclose(F);
        return 1;
      }
      std::fclose(F);
      if (!Opts.Json)
        std::printf("timeline written to %s (open at ui.perfetto.dev)\n",
                    Opts.TraceOut.c_str());
    }
  } else {
    if (Opts.Path.empty()) {
      if (!Opts.Json)
        std::printf("no trace file given; analyzing the built-in "
                    "'mergesort' workload model\n\n");
      Batch = makeWorkload(workloadSpec("mergesort"));
    } else {
      // Pipeline mode ingests in streaming chunks so raw file bytes
      // never fully materialize; the classic path keeps the one-shot
      // loader.
      Timer Ingest;
      TraceLoadResult Load = Opts.Pipeline ? loadTraceFileChunked(Opts.Path)
                                           : loadTraceFile(Opts.Path);
      if (!Load.Ok) {
        std::fprintf(stderr, "error: %s\n", Load.status().str().c_str());
        return 1;
      }
      IngestSeconds = Ingest.seconds();
      Batch = std::move(Load.T);
    }
    ValidationResult V = validateTrace(Batch);
    if (!V.ok()) {
      std::fprintf(stderr, "trace is not well-formed:\n%s", V.str().c_str());
      return 1;
    }
    R = analyzeTrace(Cfg, Batch);
  }
  const Trace &T = Opts.Stream ? Session->trace() : Batch;
  // (Streamed traces are validated *inside* the session, event by event
  // before publication — an ill-formed trace surfaces as a
  // ValidationError in R.Overall, in --json mode too.)

  if (!Opts.ReportOut.empty()) {
    const std::string Canon = canonicalReport(R, T);
    std::FILE *F = std::fopen(Opts.ReportOut.c_str(), "wb");
    if (!F ||
        std::fwrite(Canon.data(), 1, Canon.size(), F) != Canon.size()) {
      std::fprintf(stderr, "error: cannot write report to '%s'\n",
                   Opts.ReportOut.c_str());
      if (F)
        std::fclose(F);
      return 1;
    }
    std::fclose(F);
  }

  if (Opts.Json) {
    std::fputs(renderJson(R, Cfg, Opts.Stream).c_str(), stdout);
    return R.ok() ? 0 : 1;
  }

  if (Opts.ShowStats)
    std::printf("%s\n", computeStats(T).str().c_str());

  bool LaneFailed = false;
  TablePrinter Table({"analysis", "races", "instances", "maxdist", "time"});
  for (const LaneReport &L : R.Lanes) {
    if (!L.LaneStatus.ok()) {
      std::fprintf(stderr, "error: %s lane failed: %s\n",
                   L.DetectorName.c_str(), L.LaneStatus.str().c_str());
      LaneFailed = true;
      continue;
    }
    Table.addRow({L.DetectorName, std::to_string(L.Report.numDistinctPairs()),
                  std::to_string(L.Report.numInstances()),
                  std::to_string(L.Report.maxPairDistance()),
                  formatSeconds(L.Seconds)});
    std::printf("%s findings:\n%s\n", L.DetectorName.c_str(),
                L.Report.str(T).c_str());
  }
  Table.print();
  // Whole-trace WCP runs expose the paper's queue telemetry via the
  // lane's Telemetry block; windowed runs use a fresh detector per
  // window, so no whole-run peak exists — skip it there. (Absent when
  // --no-metrics.)
  if (Opts.RunWcp && Opts.Window == 0) {
    for (const LaneReport &L : R.Lanes) {
      uint64_t Abstract = 0;
      if (!findSample(L.Telemetry, "wcp.queue_peak_abstract", Abstract))
        continue;
      uint64_t Live = 0;
      findSample(L.Telemetry, "wcp.queue_peak_live", Live);
      double Pct = T.size() == 0 ? 0.0
                                 : 100.0 * static_cast<double>(Live) /
                                       static_cast<double>(T.size());
      std::printf("WCP queue peak: %llu abstract entries (%.2f%% of "
                  "events)\n",
                  (unsigned long long)Abstract, Pct);
      break;
    }
  }
  if (Opts.ShowMetrics) {
    // Session-scope table first, then one per lane — mirroring the
    // --json "telemetry" objects. See docs/OBSERVABILITY.md for what
    // each metric means.
    TablePrinter SessionTable({"session metric", "kind", "value"});
    for (const MetricSample &S : R.Telemetry)
      SessionTable.addRow(
          {S.Name, metricKindName(S.Kind), std::to_string(S.Value)});
    std::printf("\n");
    SessionTable.print();
    for (const LaneReport &L : R.Lanes) {
      if (L.Telemetry.empty())
        continue;
      TablePrinter LaneTable({L.DetectorName + " metric", "kind", "value"});
      for (const MetricSample &S : L.Telemetry)
        LaneTable.addRow(
            {S.Name, metricKindName(S.Kind), std::to_string(S.Value)});
      std::printf("\n");
      LaneTable.print();
    }
  }
  if (!R.Overall.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Overall.str().c_str());
    LaneFailed = true;
  }

  if (Opts.Pipeline || Opts.Stream || Opts.Window > 0 || Opts.Shards > 0) {
    std::printf("\npipeline: %u thread(s), %llu shard(s), %llu var "
                "shard(s)/lane%s\n",
                R.ThreadsUsed, (unsigned long long)R.NumShards,
                (unsigned long long)R.VarShards,
                R.Streamed ? ", streamed" : "");
    double LaneTotal = R.laneSecondsTotal();
    std::printf("lane analysis %.3fs total in %.3fs wall", LaneTotal,
                R.WallSeconds);
    if (R.WallSeconds > 0 && LaneTotal > 0)
      std::printf(" (%.2fx concurrency)", LaneTotal / R.WallSeconds);
    std::printf("; ingest %.3fs\n", IngestSeconds);
  }
  return LaneFailed ? 1 : 0;
}
