//===- examples/race_cli.cpp - RAPID-style command-line tool ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The equivalent of the paper's RAPID tool: reads a trace file (text or
// .bin), runs the selected analyses, prints the race pairs and the
// telemetry Table 1 reports. With no file argument it analyzes a built-in
// demo workload so the binary is runnable out of the box.
//
// Usage: race_cli [trace-file] [--hb] [--wcp] [--fasttrack] [--eraser]
//                 [--window N] [--stats] [--pipeline] [--threads N]
//
// --pipeline runs all selected detectors through the sharded parallel
// pipeline (streaming chunked ingestion, one trace residency, one lane
// per detector, work-stealing across --threads workers). --window N
// additionally shards each lane into N-event fragments.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "io/TraceFile.h"
#include "lockset/EraserDetector.h"
#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace rapid;

namespace {

struct Options {
  std::string Path;
  bool RunHb = false;
  bool RunWcp = false;
  bool RunFastTrack = false;
  bool RunEraser = false;
  bool ShowStats = false;
  bool Pipeline = false;
  unsigned Threads = 0; // 0 = hardware concurrency.
  uint64_t Window = 0;  // 0 = unwindowed.
};

void runOne(const char *Name, Detector &D, const Trace &T,
            TablePrinter &Table) {
  RunResult R = runDetector(D, T);
  Table.addRow({Name, std::to_string(R.Report.numDistinctPairs()),
                std::to_string(R.Report.numInstances()),
                std::to_string(R.Report.maxPairDistance()),
                formatSeconds(R.Seconds)});
  std::printf("%s findings:\n%s\n", Name, R.Report.str(T).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--hb")
      Opts.RunHb = true;
    else if (Arg == "--wcp")
      Opts.RunWcp = true;
    else if (Arg == "--fasttrack")
      Opts.RunFastTrack = true;
    else if (Arg == "--eraser")
      Opts.RunEraser = true;
    else if (Arg == "--stats")
      Opts.ShowStats = true;
    else if (Arg == "--pipeline")
      Opts.Pipeline = true;
    else if (Arg == "--threads" && I + 1 < Argc)
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--window" && I + 1 < Argc)
      Opts.Window = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else
      Opts.Path = Arg;
  }
  if (!Opts.RunHb && !Opts.RunWcp && !Opts.RunFastTrack && !Opts.RunEraser)
    Opts.RunHb = Opts.RunWcp = true;

  Trace T;
  double IngestSeconds = 0;
  if (Opts.Path.empty()) {
    std::printf("no trace file given; analyzing the built-in 'mergesort' "
                "workload model\n\n");
    T = makeWorkload(workloadSpec("mergesort"));
  } else {
    // Pipeline mode ingests in streaming chunks so raw file bytes never
    // fully materialize; the classic path keeps the one-shot loader.
    Timer Ingest;
    TraceLoadResult Load =
        Opts.Pipeline ? loadTraceFileChunked(Opts.Path) : loadTraceFile(Opts.Path);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.Error.c_str());
      return 1;
    }
    IngestSeconds = Ingest.seconds();
    T = std::move(Load.T);
  }

  ValidationResult V = validateTrace(T);
  if (!V.ok()) {
    std::fprintf(stderr, "trace is not well-formed:\n%s", V.str().c_str());
    return 1;
  }

  if (Opts.ShowStats)
    std::printf("%s\n", computeStats(T).str().c_str());

  TablePrinter Table({"analysis", "races", "instances", "maxdist", "time"});
  if (Opts.Pipeline) {
    PipelineOptions POpts;
    POpts.NumThreads = Opts.Threads;
    POpts.ShardEvents = Opts.Window;
    AnalysisPipeline Pipeline(POpts);
    if (Opts.RunHb)
      Pipeline.addDetector(
          [](const Trace &F) { return std::make_unique<HbDetector>(F); });
    if (Opts.RunWcp)
      Pipeline.addDetector(
          [](const Trace &F) { return std::make_unique<WcpDetector>(F); });
    if (Opts.RunFastTrack)
      Pipeline.addDetector([](const Trace &F) {
        return std::make_unique<FastTrackDetector>(F);
      });
    if (Opts.RunEraser)
      Pipeline.addDetector(
          [](const Trace &F) { return std::make_unique<EraserDetector>(F); });

    PipelineResult R = Pipeline.run(T);
    bool LaneFailed = false;
    for (const LaneResult &L : R.Lanes) {
      if (!L.Error.empty()) {
        std::fprintf(stderr, "error: %s lane failed: %s\n",
                     L.DetectorName.c_str(), L.Error.c_str());
        LaneFailed = true;
        continue;
      }
      Table.addRow({L.DetectorName, std::to_string(L.Report.numDistinctPairs()),
                    std::to_string(L.Report.numInstances()),
                    std::to_string(L.Report.maxPairDistance()),
                    formatSeconds(L.Seconds)});
      std::printf("%s findings:\n%s\n", L.DetectorName.c_str(),
                  L.Report.str(T).c_str());
    }
    Table.print();
    std::printf("\npipeline: %u thread(s), %llu shard(s), %llu task(s) "
                "stolen\n",
                R.ThreadsUsed, (unsigned long long)R.NumShards,
                (unsigned long long)R.TasksStolen);
    double LaneTotal = R.laneSecondsTotal();
    std::printf("lane analysis %.3fs total in %.3fs wall", LaneTotal,
                R.Seconds);
    if (R.Seconds > 0 && LaneTotal > 0)
      std::printf(" (%.2fx concurrency)", LaneTotal / R.Seconds);
    std::printf("; ingest %.3fs\n", IngestSeconds);
    return LaneFailed ? 1 : 0;
  }
  if (Opts.Window == 0) {
    if (Opts.RunHb) {
      HbDetector D(T);
      runOne("HB", D, T, Table);
    }
    if (Opts.RunWcp) {
      WcpDetector D(T);
      runOne("WCP", D, T, Table);
      std::printf("WCP queue peak: %llu abstract entries (%.2f%% of "
                  "events)\n\n",
                  (unsigned long long)D.stats().MaxAbstractQueueEntries,
                  D.stats().maxQueuePercent(T.size()));
    }
    if (Opts.RunFastTrack) {
      FastTrackDetector D(T);
      runOne("FastTrack", D, T, Table);
    }
    if (Opts.RunEraser) {
      EraserDetector D(T);
      runOne("Eraser", D, T, Table);
    }
  } else {
    auto addWindowed = [&](const char *Name, DetectorFactory Make) {
      RunResult R = runDetectorWindowed(Make, T, Opts.Window);
      Table.addRow({R.DetectorName.empty() ? Name : R.DetectorName.c_str(),
                    std::to_string(R.Report.numDistinctPairs()),
                    std::to_string(R.Report.numInstances()),
                    std::to_string(R.Report.maxPairDistance()),
                    formatSeconds(R.Seconds)});
    };
    if (Opts.RunHb)
      addWindowed("HB", [](const Trace &F) {
        return std::make_unique<HbDetector>(F);
      });
    if (Opts.RunWcp)
      addWindowed("WCP", [](const Trace &F) {
        return std::make_unique<WcpDetector>(F);
      });
  }
  Table.print();
  return 0;
}
