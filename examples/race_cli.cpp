//===- examples/race_cli.cpp - RAPID-style command-line tool ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The equivalent of the paper's RAPID tool: reads a trace file (text or
// .bin), runs the selected analyses, prints the race pairs and the
// telemetry Table 1 reports. With no file argument it analyzes a built-in
// demo workload so the binary is runnable out of the box.
//
// Usage: race_cli [trace-file] [--hb] [--wcp] [--fasttrack] [--eraser]
//                 [--window N] [--shards N] [--stats] [--pipeline]
//                 [--threads N]
//
// --pipeline runs all selected detectors through the sharded parallel
// pipeline (streaming chunked ingestion, one trace residency, one lane
// per detector, work-stealing across --threads workers). --window N
// additionally shards each lane into N-event fragments (windowed
// semantics: cross-window races are lost). --shards N instead splits
// each lane's race checks across N per-variable shards — parallelism
// inside one detector with reports bit-identical to the sequential run.
// The two sharding modes are mutually exclusive.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "io/TraceFile.h"
#include "lockset/EraserDetector.h"
#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace rapid;

namespace {

struct Options {
  std::string Path;
  bool RunHb = false;
  bool RunWcp = false;
  bool RunFastTrack = false;
  bool RunEraser = false;
  bool ShowStats = false;
  bool Pipeline = false;
  unsigned Threads = 0; // 0 = hardware concurrency.
  uint64_t Window = 0;  // 0 = unwindowed.
  uint32_t Shards = 0;  // 0 = no per-variable sharding.
};

void runOne(const char *Name, Detector &D, const Trace &T,
            TablePrinter &Table) {
  RunResult R = runDetector(D, T);
  Table.addRow({Name, std::to_string(R.Report.numDistinctPairs()),
                std::to_string(R.Report.numInstances()),
                std::to_string(R.Report.maxPairDistance()),
                formatSeconds(R.Seconds)});
  std::printf("%s findings:\n%s\n", Name, R.Report.str(T).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--hb")
      Opts.RunHb = true;
    else if (Arg == "--wcp")
      Opts.RunWcp = true;
    else if (Arg == "--fasttrack")
      Opts.RunFastTrack = true;
    else if (Arg == "--eraser")
      Opts.RunEraser = true;
    else if (Arg == "--stats")
      Opts.ShowStats = true;
    else if (Arg == "--pipeline")
      Opts.Pipeline = true;
    else if (Arg == "--threads" && I + 1 < Argc)
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg == "--window" && I + 1 < Argc)
      Opts.Window = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--shards" && I + 1 < Argc)
      Opts.Shards =
          static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else
      Opts.Path = Arg;
  }
  if (!Opts.RunHb && !Opts.RunWcp && !Opts.RunFastTrack && !Opts.RunEraser)
    Opts.RunHb = Opts.RunWcp = true;
  if (Opts.Window > 0 && Opts.Shards > 0) {
    std::fprintf(stderr, "error: --window and --shards are mutually "
                         "exclusive (windowed vs per-variable sharding)\n");
    return 1;
  }
  if (Opts.Threads == 0) {
    // "--threads 0" (or an unparsable count) must not build a zero-worker
    // pool; clamp to the hardware concurrency the pool would default to.
    Opts.Threads = ThreadPool::defaultConcurrency();
  }

  Trace T;
  double IngestSeconds = 0;
  if (Opts.Path.empty()) {
    std::printf("no trace file given; analyzing the built-in 'mergesort' "
                "workload model\n\n");
    T = makeWorkload(workloadSpec("mergesort"));
  } else {
    // Pipeline mode ingests in streaming chunks so raw file bytes never
    // fully materialize; the classic path keeps the one-shot loader.
    Timer Ingest;
    TraceLoadResult Load =
        Opts.Pipeline ? loadTraceFileChunked(Opts.Path) : loadTraceFile(Opts.Path);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.Error.c_str());
      return 1;
    }
    IngestSeconds = Ingest.seconds();
    T = std::move(Load.T);
  }

  ValidationResult V = validateTrace(T);
  if (!V.ok()) {
    std::fprintf(stderr, "trace is not well-formed:\n%s", V.str().c_str());
    return 1;
  }

  if (Opts.ShowStats)
    std::printf("%s\n", computeStats(T).str().c_str());

  // The selected detector factories, shared by every analysis mode so the
  // flag-to-factory mapping exists exactly once.
  struct SelectedDetector {
    const char *Name;
    DetectorFactory Make;
  };
  std::vector<SelectedDetector> Selected;
  if (Opts.RunHb)
    Selected.push_back({"HB", [](const Trace &F) {
                          return std::make_unique<HbDetector>(F);
                        }});
  if (Opts.RunWcp)
    Selected.push_back({"WCP", [](const Trace &F) {
                          return std::make_unique<WcpDetector>(F);
                        }});
  if (Opts.RunFastTrack)
    Selected.push_back({"FastTrack", [](const Trace &F) {
                          return std::make_unique<FastTrackDetector>(F);
                        }});
  if (Opts.RunEraser)
    Selected.push_back({"Eraser", [](const Trace &F) {
                          return std::make_unique<EraserDetector>(F);
                        }});

  TablePrinter Table({"analysis", "races", "instances", "maxdist", "time"});
  if (Opts.Pipeline) {
    PipelineOptions POpts;
    POpts.NumThreads = Opts.Threads;
    POpts.ShardEvents = Opts.Window;
    POpts.VarShards = Opts.Shards;
    AnalysisPipeline Pipeline(POpts);
    for (const SelectedDetector &S : Selected)
      Pipeline.addDetector(S.Make, S.Name);

    PipelineResult R = Pipeline.run(T);
    bool LaneFailed = false;
    for (const LaneResult &L : R.Lanes) {
      if (!L.Error.empty()) {
        std::fprintf(stderr, "error: %s lane failed: %s\n",
                     L.DetectorName.c_str(), L.Error.c_str());
        LaneFailed = true;
        continue;
      }
      Table.addRow({L.DetectorName, std::to_string(L.Report.numDistinctPairs()),
                    std::to_string(L.Report.numInstances()),
                    std::to_string(L.Report.maxPairDistance()),
                    formatSeconds(L.Seconds)});
      std::printf("%s findings:\n%s\n", L.DetectorName.c_str(),
                  L.Report.str(T).c_str());
    }
    Table.print();
    std::printf("\npipeline: %u thread(s), %llu shard(s), %llu var "
                "shard(s)/lane, %llu task(s) stolen\n",
                R.ThreadsUsed, (unsigned long long)R.NumShards,
                (unsigned long long)R.VarShards,
                (unsigned long long)R.TasksStolen);
    double LaneTotal = R.laneSecondsTotal();
    std::printf("lane analysis %.3fs total in %.3fs wall", LaneTotal,
                R.Seconds);
    if (R.Seconds > 0 && LaneTotal > 0)
      std::printf(" (%.2fx concurrency)", LaneTotal / R.Seconds);
    std::printf("; ingest %.3fs\n", IngestSeconds);
    return LaneFailed ? 1 : 0;
  }
  bool RunFailed = false;
  if (Opts.Shards > 0) {
    // Per-variable sharded single-detector runs: same reports as the
    // sequential mode below, computed with --shards parallel check tasks.
    for (const SelectedDetector &S : Selected) {
      RunResult R = runDetectorSharded(S.Make, T, Opts.Shards, Opts.Threads);
      if (!R.Error.empty()) {
        // A failed task means a partial/empty report — never present it
        // as "no races".
        std::fprintf(stderr, "error: %s sharded run failed: %s\n", S.Name,
                     R.Error.c_str());
        RunFailed = true;
        continue;
      }
      Table.addRow({R.DetectorName.empty() ? S.Name : R.DetectorName.c_str(),
                    std::to_string(R.Report.numDistinctPairs()),
                    std::to_string(R.Report.numInstances()),
                    std::to_string(R.Report.maxPairDistance()),
                    formatSeconds(R.Seconds)});
      std::printf("%s findings (%u var shards):\n%s\n", S.Name, Opts.Shards,
                  R.Report.str(T).c_str());
    }
  } else if (Opts.Window == 0) {
    if (Opts.RunHb) {
      HbDetector D(T);
      runOne("HB", D, T, Table);
    }
    if (Opts.RunWcp) {
      WcpDetector D(T);
      runOne("WCP", D, T, Table);
      std::printf("WCP queue peak: %llu abstract entries (%.2f%% of "
                  "events)\n\n",
                  (unsigned long long)D.stats().MaxAbstractQueueEntries,
                  D.stats().maxQueuePercent(T.size()));
    }
    if (Opts.RunFastTrack) {
      FastTrackDetector D(T);
      runOne("FastTrack", D, T, Table);
    }
    if (Opts.RunEraser) {
      EraserDetector D(T);
      runOne("Eraser", D, T, Table);
    }
  } else {
    for (const SelectedDetector &S : Selected) {
      RunResult R = runDetectorWindowed(S.Make, T, Opts.Window);
      if (!R.Error.empty()) {
        std::fprintf(stderr, "error: %s windowed run failed: %s\n", S.Name,
                     R.Error.c_str());
        RunFailed = true;
        continue;
      }
      Table.addRow({R.DetectorName.empty() ? S.Name : R.DetectorName.c_str(),
                    std::to_string(R.Report.numDistinctPairs()),
                    std::to_string(R.Report.numInstances()),
                    std::to_string(R.Report.maxPairDistance()),
                    formatSeconds(R.Seconds)});
    }
  }
  Table.print();
  return RunFailed ? 1 : 0;
}
