//===- examples/race_cli.cpp - RAPID-style command-line tool ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The equivalent of the paper's RAPID tool: reads a trace file (text or
// .bin), runs the selected analyses, prints the race pairs and the
// telemetry Table 1 reports. With no file argument it analyzes a built-in
// demo workload so the binary is runnable out of the box.
//
// Usage: race_cli [trace-file] [--hb] [--wcp] [--fasttrack] [--eraser]
//                 [--window N] [--stats]
//
//===----------------------------------------------------------------------===//

#include "detect/DetectorRunner.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "io/TraceFile.h"
#include "lockset/EraserDetector.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace rapid;

namespace {

struct Options {
  std::string Path;
  bool RunHb = false;
  bool RunWcp = false;
  bool RunFastTrack = false;
  bool RunEraser = false;
  bool ShowStats = false;
  uint64_t Window = 0; // 0 = unwindowed.
};

void runOne(const char *Name, Detector &D, const Trace &T,
            TablePrinter &Table) {
  RunResult R = runDetector(D, T);
  Table.addRow({Name, std::to_string(R.Report.numDistinctPairs()),
                std::to_string(R.Report.numInstances()),
                std::to_string(R.Report.maxPairDistance()),
                formatSeconds(R.Seconds)});
  std::printf("%s findings:\n%s\n", Name, R.Report.str(T).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--hb")
      Opts.RunHb = true;
    else if (Arg == "--wcp")
      Opts.RunWcp = true;
    else if (Arg == "--fasttrack")
      Opts.RunFastTrack = true;
    else if (Arg == "--eraser")
      Opts.RunEraser = true;
    else if (Arg == "--stats")
      Opts.ShowStats = true;
    else if (Arg == "--window" && I + 1 < Argc)
      Opts.Window = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else
      Opts.Path = Arg;
  }
  if (!Opts.RunHb && !Opts.RunWcp && !Opts.RunFastTrack && !Opts.RunEraser)
    Opts.RunHb = Opts.RunWcp = true;

  Trace T;
  if (Opts.Path.empty()) {
    std::printf("no trace file given; analyzing the built-in 'mergesort' "
                "workload model\n\n");
    T = makeWorkload(workloadSpec("mergesort"));
  } else {
    TraceLoadResult Load = loadTraceFile(Opts.Path);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.Error.c_str());
      return 1;
    }
    T = std::move(Load.T);
  }

  ValidationResult V = validateTrace(T);
  if (!V.ok()) {
    std::fprintf(stderr, "trace is not well-formed:\n%s", V.str().c_str());
    return 1;
  }

  if (Opts.ShowStats)
    std::printf("%s\n", computeStats(T).str().c_str());

  TablePrinter Table({"analysis", "races", "instances", "maxdist", "time"});
  if (Opts.Window == 0) {
    if (Opts.RunHb) {
      HbDetector D(T);
      runOne("HB", D, T, Table);
    }
    if (Opts.RunWcp) {
      WcpDetector D(T);
      runOne("WCP", D, T, Table);
      std::printf("WCP queue peak: %llu abstract entries (%.2f%% of "
                  "events)\n\n",
                  (unsigned long long)D.stats().MaxAbstractQueueEntries,
                  D.stats().maxQueuePercent(T.size()));
    }
    if (Opts.RunFastTrack) {
      FastTrackDetector D(T);
      runOne("FastTrack", D, T, Table);
    }
    if (Opts.RunEraser) {
      EraserDetector D(T);
      runOne("Eraser", D, T, Table);
    }
  } else {
    auto addWindowed = [&](const char *Name, DetectorFactory Make) {
      RunResult R = runDetectorWindowed(Make, T, Opts.Window);
      Table.addRow({R.DetectorName.empty() ? Name : R.DetectorName.c_str(),
                    std::to_string(R.Report.numDistinctPairs()),
                    std::to_string(R.Report.numInstances()),
                    std::to_string(R.Report.maxPairDistance()),
                    formatSeconds(R.Seconds)});
    };
    if (Opts.RunHb)
      addWindowed("HB", [](const Trace &F) {
        return std::make_unique<HbDetector>(F);
      });
    if (Opts.RunWcp)
      addWindowed("WCP", [](const Trace &F) {
        return std::make_unique<WcpDetector>(F);
      });
  }
  Table.print();
  return 0;
}
