//===- examples/race_serverd.cpp - Live race-analysis daemon ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The serving layer's daemon (serve/RaceServer.h): listens on a
// Unix-domain socket, runs one AnalysisSession per connection over a
// shared ingest pool, enforces per-session budgets with backpressure,
// answers mid-stream partial/timeline/roster queries, and retains every
// finished session's canonical report for final-report queries. Optional
// --fifo/--shm sources pump framed streams from pipes or shared-memory
// rings into their own sessions (io/FeedSource.h).
//
// `race_serverd --help` has the flag matrix; docs/SERVING.md documents
// the protocol and the LD_PRELOAD interposer that feeds this daemon.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "hb/HbDetector.h"
#include "io/FaultInjector.h"
#include "io/FeedSource.h"
#include "serve/RaceServer.h"
#include "serve/ReportCanon.h"
#include "serve/WireIngestor.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace rapid;

namespace {

std::atomic<bool> GotSignal{false};

void onSignal(int) { GotSignal.store(true); }

/// An HB lane that sleeps per event — a deterministic drag for exercising
/// the lag budget (a normal detector drains small test streams faster
/// than a client can send them, so parking would never trigger).
class SlowHbDetector : public HbDetector {
public:
  SlowHbDetector(const Trace &T, unsigned SlowUs)
      : HbDetector(T), SlowUs(SlowUs) {}

  void processEvent(const Event &E, EventIdx Index) override {
    HbDetector::processEvent(E, Index);
    if (SlowUs)
      std::this_thread::sleep_for(std::chrono::microseconds(SlowUs));
  }

  std::string name() const override { return "slow-HB"; }

private:
  unsigned SlowUs;
};

struct Options {
  std::string Socket;
  bool RunHb = false;
  bool RunWcp = false;
  bool RunFastTrack = false;
  bool RunEraser = false;
  bool RunSyncP = false;
  unsigned Threads = 0;
  uint64_t Window = 0;
  uint32_t Shards = 0;
  uint64_t StreamBatch = 0;
  uint64_t DrainBatch = 0;
  uint64_t BudgetLag = 1u << 20;
  uint64_t MaxEvents = 0;
  unsigned IngestThreads = 2;
  uint64_t MaxSessions = 0;
  uint64_t ResumeGraceMs = 5000;
  uint64_t IdleTimeoutMs = 0;
  uint64_t RosterMax = 0;
  uint64_t RetryAfterMs = 100;
  uint64_t FaultSeed = 0;
  unsigned DebugSlowUs = 0;
  bool Quiet = false;
  bool DryRun = false;
  std::vector<std::string> Sources; ///< fifo:/shm: specs to pump.
};

void printHelp() {
  std::fputs(
      "usage: race_serverd --socket PATH [options]\n"
      "\n"
      "Live race-analysis daemon: every connection gets its own analysis\n"
      "session fed by length-prefixed wire frames (docs/SERVING.md).\n"
      "\n"
      "detectors (default: --hb --wcp):\n"
      "  --hb / --wcp / --fasttrack / --eraser / --syncp\n"
      "\n"
      "session shape (applies to every accepted session):\n"
      "  --window N        windowed mode, N events per window\n"
      "  --shards N        per-variable sharded mode, N shards per lane\n"
      "  --threads N       session worker threads (0 = hardware)\n"
      "  --stream-batch N  events per consumer batch\n"
      "  --drain-batch N   var-sharded drain claim size\n"
      "\n"
      "serving:\n"
      "  --socket PATH     Unix-domain socket to listen on (required)\n"
      "  --budget-lag N    park a client once published-minus-consumed\n"
      "                    lag exceeds N events (default 1048576; 0 off)\n"
      "  --max-events N    hard per-session event budget (0 = unlimited)\n"
      "  --ingest-threads N  shared decode/feed pool width (default 2)\n"
      "  --fifo PATH       also pump a FIFO feed into its own session\n"
      "  --shm PATH        also pump a shared-memory ring feed\n"
      "  --debug-slow-us N add a deliberately slow HB lane (N us/event) —\n"
      "                    test hook for deterministic backpressure\n"
      "  --quiet           no per-session reports on stdout\n"
      "  --dry-run         validate flags and exit\n"
      "\n"
      "fault tolerance / degradation (docs/SERVING.md#fault-tolerance):\n"
      "  --max-sessions N    shed Hellos beyond N live sessions with a\n"
      "                      retryable overloaded error (0 = unlimited)\n"
      "  --resume-grace-ms N park a disconnected resumable session this\n"
      "                      long awaiting Resume (default 5000; 0 off)\n"
      "  --idle-timeout-ms N evict sessions idle this long (0 = never)\n"
      "  --roster-max N      retain at most N finished summaries (0 = all)\n"
      "  --retry-after-ms N  hint stamped into retryable errors (default 100)\n"
      "  --fault-seed N      decorate --fifo/--shm feeds with deterministic\n"
      "                      delivery faults (short reads, EAGAIN, delays)\n"
      "                      from seed N — content is never altered (0 off)\n"
      "\n"
      "SIGTERM/SIGINT drain cleanly: buffered frames are applied, every\n"
      "live session is finalized, and its prefix report is printed.\n",
      stdout);
}

/// Pumps one fifo:/shm: source into a dedicated session; prints the
/// canonical report at EOF. Runs on its own thread — these sources are
/// single-stream, so the blocking pump is the right shape.
void pumpSource(const std::string &Spec, AnalysisConfig Cfg, bool Quiet,
                uint64_t FaultSeed) {
  Status Err;
  std::unique_ptr<FeedSource> Src = openFeedSource(Spec, Err);
  if (!Src) {
    std::fprintf(stderr, "race_serverd: %s: %s\n", Spec.c_str(),
                 Err.str().c_str());
    return;
  }
  if (FaultSeed != 0) {
    // Deterministic delivery faults (short reads, spurious EAGAIN, small
    // delays) — the decorator never alters content, so the report must
    // match a fault-free run byte for byte.
    FaultyFeedConfig FC;
    FC.Seed = FaultSeed;
    FC.ShortReadPermille = 300;
    FC.WouldBlockPermille = 100;
    FC.DelayPermille = 50;
    Src = makeFaultyFeedSource(std::move(Src), FC);
  }
  AnalysisSession S(Cfg);
  Status Pumped = pumpFeedSource(*Src, S);
  AnalysisResult R = S.finish();
  if (!Pumped.ok())
    std::fprintf(stderr, "race_serverd: %s: %s\n", Spec.c_str(),
                 Pumped.str().c_str());
  if (!Quiet) {
    std::printf("source %s:\n%s", Spec.c_str(),
                canonicalReport(R, S.trace()).c_str());
    std::fflush(stdout);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  auto NeedsValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      std::exit(1);
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--hb")
      Opts.RunHb = true;
    else if (Arg == "--wcp")
      Opts.RunWcp = true;
    else if (Arg == "--fasttrack")
      Opts.RunFastTrack = true;
    else if (Arg == "--eraser")
      Opts.RunEraser = true;
    else if (Arg == "--syncp")
      Opts.RunSyncP = true;
    else if (Arg == "--quiet")
      Opts.Quiet = true;
    else if (Arg == "--dry-run")
      Opts.DryRun = true;
    else if (Arg == "--socket")
      Opts.Socket = NeedsValue(I);
    else if (Arg == "--fifo")
      Opts.Sources.push_back(std::string("fifo:") + NeedsValue(I));
    else if (Arg == "--shm")
      Opts.Sources.push_back(std::string("shm:") + NeedsValue(I));
    else if (Arg == "--threads")
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(NeedsValue(I), nullptr, 10));
    else if (Arg == "--window")
      Opts.Window = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--shards")
      Opts.Shards =
          static_cast<uint32_t>(std::strtoul(NeedsValue(I), nullptr, 10));
    else if (Arg == "--stream-batch")
      Opts.StreamBatch = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--drain-batch")
      Opts.DrainBatch = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--budget-lag")
      Opts.BudgetLag = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--max-events")
      Opts.MaxEvents = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--ingest-threads")
      Opts.IngestThreads =
          static_cast<unsigned>(std::strtoul(NeedsValue(I), nullptr, 10));
    else if (Arg == "--max-sessions")
      Opts.MaxSessions = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--resume-grace-ms")
      Opts.ResumeGraceMs = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--idle-timeout-ms")
      Opts.IdleTimeoutMs = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--roster-max")
      Opts.RosterMax = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--retry-after-ms")
      Opts.RetryAfterMs = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--fault-seed")
      Opts.FaultSeed = std::strtoull(NeedsValue(I), nullptr, 10);
    else if (Arg == "--debug-slow-us")
      Opts.DebugSlowUs =
          static_cast<unsigned>(std::strtoul(NeedsValue(I), nullptr, 10));
    else if (Arg == "--help" || Arg == "-h") {
      printHelp();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if (!Opts.RunHb && !Opts.RunWcp && !Opts.RunFastTrack &&
      !Opts.RunEraser && !Opts.RunSyncP)
    Opts.RunHb = Opts.RunWcp = true;
  if (Opts.Socket.empty() && !Opts.DryRun) {
    std::fprintf(stderr, "error: --socket PATH is required\n");
    return 1;
  }

  RaceServerConfig Cfg;
  Cfg.SocketPath = Opts.Socket;
  Cfg.Budgets.MaxLagEvents = Opts.BudgetLag;
  Cfg.Budgets.MaxSessionEvents = Opts.MaxEvents;
  Cfg.IngestThreads = Opts.IngestThreads;
  Cfg.MaxSessions = Opts.MaxSessions;
  Cfg.ResumeGraceMs = Opts.ResumeGraceMs;
  Cfg.IdleTimeoutMs = Opts.IdleTimeoutMs;
  Cfg.RosterMax = static_cast<size_t>(Opts.RosterMax);
  Cfg.RetryAfterMs = static_cast<uint32_t>(Opts.RetryAfterMs);
  AnalysisConfig &S = Cfg.Session;
  S.Threads = Opts.Threads;
  if (Opts.Shards > 0) {
    S.Mode = RunMode::VarSharded;
    S.VarShards = Opts.Shards;
  } else if (Opts.Window > 0) {
    S.Mode = RunMode::Windowed;
    S.WindowEvents = Opts.Window;
  }
  if (Opts.StreamBatch)
    S.StreamBatchEvents = Opts.StreamBatch;
  if (Opts.DrainBatch)
    S.DrainBatch = Opts.DrainBatch;
  if (Opts.RunHb)
    S.addDetector(DetectorKind::Hb);
  if (Opts.RunWcp)
    S.addDetector(DetectorKind::Wcp);
  if (Opts.RunFastTrack)
    S.addDetector(DetectorKind::FastTrack);
  if (Opts.RunEraser)
    S.addDetector(DetectorKind::Eraser);
  if (Opts.RunSyncP)
    S.addDetector(DetectorKind::SyncP);
  if (Opts.DebugSlowUs) {
    const unsigned SlowUs = Opts.DebugSlowUs;
    S.addDetector(
        [SlowUs](const Trace &T) {
          return std::make_unique<SlowHbDetector>(T, SlowUs);
        },
        "slow-HB");
  }
  if (Status V = S.validate(); !V.ok()) {
    std::fprintf(stderr, "error: %s\n", V.str().c_str());
    return 1;
  }
  if (Opts.DryRun) {
    std::printf("dry-run ok: mode=%s detectors=%zu budget-lag=%llu\n",
                runModeName(S.Mode), S.Detectors.size(),
                (unsigned long long)Opts.BudgetLag);
    return 0;
  }

  RaceServer Server(Cfg);
  if (Status St = Server.start(); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.str().c_str());
    return 1;
  }
  std::printf("listening on %s\n", Opts.Socket.c_str());
  std::fflush(stdout);

  std::vector<std::thread> Pumps;
  for (const std::string &Spec : Opts.Sources)
    Pumps.emplace_back(pumpSource, Spec, Cfg.Session, Opts.Quiet,
                       Opts.FaultSeed);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GotSignal.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  for (std::thread &T : Pumps)
    T.join();
  Server.stop();
  if (!Opts.Quiet) {
    for (const SessionSummary &Sum : Server.finishedSessions())
      std::printf("session %llu: events=%llu parks=%llu resumes=%llu "
                  "clean=%d %s\n",
                  (unsigned long long)Sum.Id, (unsigned long long)Sum.Events,
                  (unsigned long long)Sum.Parks,
                  (unsigned long long)Sum.Resumes, Sum.CleanFinish ? 1 : 0,
                  Sum.Outcome.str().c_str());
  }
  return 0;
}
