//===- tests/io_test.cpp - Trace IO round trips --------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "io/BinaryFormat.h"
#include "io/TextFormat.h"
#include "io/TraceFile.h"
#include "pipeline/ChunkedReader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace rapid;

static void expectSameTrace(const Trace &A, const Trace &B) {
  ASSERT_EQ(A.size(), B.size());
  for (EventIdx I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A.eventStr(I), B.eventStr(I)) << "event " << I;
  }
}

TEST(TextFormatTest, ParsesBasicLines) {
  TextParseResult R = parseTextTrace("T0|acq(l)|3\n"
                                     "T0|r(x)|4\n"
                                     "T0|rel(l)|5\n"
                                     "# comment\n"
                                     "\n"
                                     "T0|fork(T1)|6\n"
                                     "T1|w(x)|7\n"
                                     "T0|join(T1)|8\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.size(), 6u);
  EXPECT_EQ(R.T.event(0).Kind, EventKind::Acquire);
  EXPECT_EQ(R.T.event(3).Kind, EventKind::Fork);
  EXPECT_EQ(R.T.threadName(R.T.event(3).targetThread()), "T1");
  EXPECT_EQ(R.T.locName(R.T.event(1).Loc), "4");
}

TEST(TextFormatTest, LocIsOptional) {
  TextParseResult R = parseTextTrace("T0|w(x)\nT1|r(x)\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.T.event(0).Loc, R.T.event(1).Loc);
}

TEST(TextFormatTest, ReportsLineNumbersOnErrors) {
  TextParseResult R = parseTextTrace("T0|w(x)|1\nT0|frobnicate(x)|2\n");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("line 2"), std::string::npos);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
}

TEST(TextFormatTest, RejectsMalformedStructure) {
  EXPECT_FALSE(parseTextTrace("just words\n").Ok);
  EXPECT_FALSE(parseTextTrace("T0|w x|1\n").Ok);
  EXPECT_FALSE(parseTextTrace("T0|w()|1\n").Ok);
  EXPECT_FALSE(parseTextTrace("|w(x)|1\n").Ok);
}

TEST(TextFormatTest, RoundTripsPaperFigures) {
  for (const PaperTrace &P : allPaperTraces()) {
    std::string Text = writeTextTrace(P.T);
    TextParseResult R = parseTextTrace(Text);
    ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
    expectSameTrace(P.T, R.T);
  }
}

TEST(BinaryFormatTest, RoundTripsRandomTraces) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    RandomTraceParams Params;
    Params.Seed = Seed;
    Params.WithForkJoin = Seed % 2;
    Trace T = randomTrace(Params);
    std::string Bytes = writeBinaryTrace(T);
    BinaryParseResult R = parseBinaryTrace(Bytes);
    ASSERT_TRUE(R.Ok) << R.Error;
    expectSameTrace(T, R.T);
  }
}

TEST(BinaryFormatTest, RejectsGarbage) {
  EXPECT_FALSE(parseBinaryTrace("not a trace").Ok);
  EXPECT_FALSE(parseBinaryTrace("").Ok);
}

TEST(BinaryFormatTest, RejectsTruncation) {
  Trace T = paperFig2b().T;
  std::string Bytes = writeBinaryTrace(T);
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() / 2, size_t(9)}) {
    BinaryParseResult R = parseBinaryTrace(Bytes.substr(0, Cut));
    EXPECT_FALSE(R.Ok) << "cut at " << Cut;
  }
}

TEST(BinaryFormatTest, RejectsCorruptEventRecords) {
  Trace T = paperFig2b().T;
  std::string Bytes = writeBinaryTrace(T);
  // Stomp the final event's thread id with garbage.
  Bytes[Bytes.size() - 12] = static_cast<char>(0xff);
  Bytes[Bytes.size() - 11] = static_cast<char>(0xff);
  EXPECT_FALSE(parseBinaryTrace(Bytes).Ok);
}

TEST(TraceFileTest, DispatchesByExtension) {
  Trace T = paperFig1b().T;
  std::string TextPath = ::testing::TempDir() + "/io_test_trace.txt";
  std::string BinPath = ::testing::TempDir() + "/io_test_trace.bin";
  ASSERT_EQ(saveTraceFile(T, TextPath), "");
  ASSERT_EQ(saveTraceFile(T, BinPath), "");

  TraceLoadResult RT = loadTraceFile(TextPath);
  ASSERT_TRUE(RT.Ok) << RT.Error;
  expectSameTrace(T, RT.T);

  TraceLoadResult RB = loadTraceFile(BinPath);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  expectSameTrace(T, RB.T);
}

TEST(TraceFileTest, MissingFileReportsError) {
  TraceLoadResult R = loadTraceFile("/nonexistent/path/trace.txt");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos);
}

// ---- Round-trip property tests ----------------------------------------------
//
// Generated traces of varied shapes must survive every codec path: text
// and binary round-trips, the text -> binary -> text composition, and the
// chunked reader at pathological chunk sizes where every line and every
// 13-byte binary event record straddles a refill boundary.

namespace {

RandomTraceParams roundTripParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 5;
  P.NumLocks = 1 + Seed % 4;
  P.NumVars = 1 + (Seed * 3) % 8;
  P.OpsPerThread = 15 + (Seed * 7) % 45;
  P.MaxLockNesting = 1 + Seed % 3;
  P.WithForkJoin = Seed % 2 == 1;
  return P;
}

} // namespace

TEST(RoundTripPropertyTest, TextAndBinaryCodecsComposeOverGeneratedTraces) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Trace T = randomTrace(roundTripParams(Seed));

    TextParseResult FromText = parseTextTrace(writeTextTrace(T));
    ASSERT_TRUE(FromText.Ok) << "seed " << Seed << ": " << FromText.Error;
    expectSameTrace(T, FromText.T);

    BinaryParseResult FromBin = parseBinaryTrace(writeBinaryTrace(T));
    ASSERT_TRUE(FromBin.Ok) << "seed " << Seed << ": " << FromBin.Error;
    expectSameTrace(T, FromBin.T);

    // Cross-codec composition: text-parsed trace through the binary
    // codec and back — id tables re-interned by the text parser must
    // still produce the same events.
    BinaryParseResult Crossed =
        parseBinaryTrace(writeBinaryTrace(FromText.T));
    ASSERT_TRUE(Crossed.Ok) << "seed " << Seed << ": " << Crossed.Error;
    expectSameTrace(T, Crossed.T);

    // Idempotence of the rendered forms.
    EXPECT_EQ(writeTextTrace(T), writeTextTrace(FromBin.T)) << Seed;
    EXPECT_EQ(writeBinaryTrace(T), writeBinaryTrace(FromBin.T)) << Seed;
  }
}

TEST(RoundTripPropertyTest, ChunkedReaderSurvivesPathologicalChunkSizes) {
  Trace T = randomTrace(roundTripParams(5));
  for (const char *Ext : {".txt", ".bin"}) {
    std::string Path =
        ::testing::TempDir() + "rapidpp_roundtrip_chunks" + Ext;
    ASSERT_EQ(saveTraceFile(T, Path), "");
    // 1 byte: every text line and every binary record straddles refills;
    // 13 bytes: binary records alternate between aligned and straddling
    // (the header shifts the first record off the 13-byte grid).
    for (size_t ChunkBytes : {size_t(1), size_t(2), size_t(13)}) {
      for (uint64_t MaxEvents : {uint64_t(1), uint64_t(7)}) {
        ChunkedReaderOptions Opts;
        Opts.ChunkBytes = ChunkBytes;
        Opts.MaxEventsPerChunk = MaxEvents;
        Opts.UseMmap = false; // Pin the buffered backend's refill seams.
        TraceLoadResult R = loadTraceFileChunked(Path, Opts);
        ASSERT_TRUE(R.Ok) << Ext << " chunk=" << ChunkBytes << ": "
                          << R.Error;
        ASSERT_EQ(R.T.size(), T.size())
            << Ext << " chunk=" << ChunkBytes << " batch=" << MaxEvents;
        expectSameTrace(T, R.T);
      }
    }
    std::remove(Path.c_str());
  }
}

// The mmap backend (io/MappedFile) must be byte-for-byte equivalent to
// the buffered backend on regular files, for both codecs and under small
// event batches (the session's publication granularity).
TEST(RoundTripPropertyTest, MappedReaderMatchesBufferedReader) {
  for (uint64_t Seed : {uint64_t(3), uint64_t(11)}) {
    Trace T = randomTrace(roundTripParams(Seed));
    for (const char *Ext : {".txt", ".bin"}) {
      std::string Path = ::testing::TempDir() + "rapidpp_mmap_rt" + Ext;
      ASSERT_EQ(saveTraceFile(T, Path), "");
      for (uint64_t MaxEvents : {uint64_t(1), uint64_t(64 * 1024)}) {
        ChunkedReaderOptions MapOpts;
        MapOpts.MaxEventsPerChunk = MaxEvents;
        ChunkedTraceReader Mapped(Path, MapOpts);
        EXPECT_TRUE(Mapped.mapped())
            << Ext << ": regular files must select the mmap backend";
        while (!Mapped.done())
          Mapped.nextChunk();
        ASSERT_TRUE(Mapped.ok()) << Ext << ": " << Mapped.error();

        ChunkedReaderOptions BufOpts = MapOpts;
        BufOpts.UseMmap = false;
        TraceLoadResult Buffered = loadTraceFileChunked(Path, BufOpts);
        ASSERT_TRUE(Buffered.Ok) << Ext << ": " << Buffered.Error;

        Trace FromMap = Mapped.take();
        expectSameTrace(T, FromMap);
        expectSameTrace(Buffered.T, FromMap);
      }
      std::remove(Path.c_str());
    }
  }
}

TEST(RoundTripPropertyTest, MappedReaderHandlesEdgeFiles) {
  // Empty file: text yields an empty trace; the mapping is a zero-length
  // view, not an error.
  std::string Empty = ::testing::TempDir() + "rapidpp_mmap_empty.txt";
  { std::FILE *F = std::fopen(Empty.c_str(), "wb"); ASSERT_NE(F, nullptr);
    std::fclose(F); }
  ChunkedTraceReader Reader(Empty);
  EXPECT_TRUE(Reader.mapped());
  while (!Reader.done())
    Reader.nextChunk();
  EXPECT_TRUE(Reader.ok()) << Reader.error();
  EXPECT_EQ(Reader.take().size(), 0u);
  std::remove(Empty.c_str());

  // Missing file: same structured IoError as the buffered path.
  ChunkedTraceReader Missing("/nonexistent/dir/rapidpp_mmap.bin");
  EXPECT_FALSE(Missing.ok());
  EXPECT_FALSE(Missing.mapped());
  EXPECT_EQ(Missing.status().Code, StatusCode::IoError);

  // Truncated binary: the mapped parse reports the same ParseError the
  // buffered parse does.
  Trace T = randomTrace(roundTripParams(7));
  std::string Path = ::testing::TempDir() + "rapidpp_mmap_trunc.bin";
  std::string Bytes = writeBinaryTrace(T);
  Bytes.resize(Bytes.size() - 5);
  { std::FILE *F = std::fopen(Path.c_str(), "wb"); ASSERT_NE(F, nullptr);
    std::fwrite(Bytes.data(), 1, Bytes.size(), F); std::fclose(F); }
  for (bool UseMmap : {true, false}) {
    ChunkedReaderOptions Opts;
    Opts.UseMmap = UseMmap;
    ChunkedTraceReader Trunc(Path, Opts);
    EXPECT_EQ(Trunc.mapped(), UseMmap);
    while (!Trunc.done())
      Trunc.nextChunk();
    EXPECT_FALSE(Trunc.ok());
    EXPECT_EQ(Trunc.status().Code, StatusCode::ParseError)
        << "mmap=" << UseMmap;
  }
  std::remove(Path.c_str());
}
