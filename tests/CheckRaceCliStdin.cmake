# tests/CheckRaceCliStdin.cmake - Pin `race_cli --stream -` (stdin traces).
#
# Part of rapidpp (PLDI'17 WCP reproduction).
#
# Writes a small racy text trace, pipes it into `race_cli - --stream` via
# INPUT_FILE, and asserts the streamed run reports the race — the exact
# path a FIFO redirection (`race_cli --stream <(...)`) exercises. Then
# asserts the seek-incompatible spelling `race_cli -` *without* --stream
# is rejected up front (stdin cannot seek; the batch loaders and the
# windowed baseline need a rewindable file). Invoked by the
# race_cli_stdin_stream ctest; requires -DRACE_CLI=<path>.

if(NOT RACE_CLI)
  message(FATAL_ERROR "pass -DRACE_CLI=<path to race_cli>")
endif()

set(TRACE "${CMAKE_CURRENT_BINARY_DIR}/stdin_case.txt")
file(WRITE ${TRACE}
"T0|w(x)|L1
T1|w(x)|L2
T0|acq(l)|L3
T0|w(y)|L4
T0|rel(l)|L5
T1|acq(l)|L6
T1|w(y)|L7
T1|rel(l)|L8
")

execute_process(
  COMMAND ${RACE_CLI} - --stream --hb --json
  INPUT_FILE ${TRACE}
  OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "race_cli --stream - exited ${RC}: ${ERR}")
endif()
string(JSON STATUS ERROR_VARIABLE JERR GET "${OUT}" status)
if(JERR)
  message(FATAL_ERROR "not valid JSON (${JERR}): ${OUT}")
endif()
if(NOT STATUS STREQUAL "ok")
  message(FATAL_ERROR "status = '${STATUS}', want 'ok'")
endif()
string(JSON EVENTS GET "${OUT}" events)
if(NOT EVENTS EQUAL 8)
  message(FATAL_ERROR "events = ${EVENTS}, want 8")
endif()
string(JSON RACES GET "${OUT}" lanes 0 races)
if(NOT RACES EQUAL 1)
  message(FATAL_ERROR "HB lane races = ${RACES}, want 1")
endif()

# The rejection half: '-' without --stream must fail fast with a message
# that names the constraint, not limp into fopen("-").
execute_process(
  COMMAND ${RACE_CLI} - --hb
  INPUT_FILE ${TRACE}
  OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(RC EQUAL 0)
  message(FATAL_ERROR "race_cli - without --stream unexpectedly succeeded")
endif()
if(NOT ERR MATCHES "requires --stream")
  message(FATAL_ERROR "rejection message missing: ${ERR}")
endif()

file(REMOVE ${TRACE})
message(STATUS "race_cli --stream -: ok (1 race; non-stream '-' rejected)")
