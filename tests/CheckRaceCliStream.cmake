# tests/CheckRaceCliStream.cmake - Pin the --stream x --window/--shards matrix.
#
# Part of rapidpp (PLDI'17 WCP reproduction).
#
# Writes a small racy text trace, then runs race_cli over it with
# --stream combined with --window and with --shards (the combinations the
# CLI used to reject), parsing the --json output with string(JSON ...):
# the run must succeed, report the right mode with streamed=true, and the
# windowed/var-sharded lanes must carry the expected race counts (the
# var-sharded run loses nothing; the windowed run with a window cutting
# the racing accesses apart loses the race — the baseline's defining
# handicap). Invoked by the race_cli_stream_* ctests; requires
# -DRACE_CLI=<path> and -DCASE=<window|shards>.

if(NOT RACE_CLI)
  message(FATAL_ERROR "pass -DRACE_CLI=<path to race_cli>")
endif()
if(NOT CASE)
  message(FATAL_ERROR "pass -DCASE=window or -DCASE=shards")
endif()

# Two unsynchronized writes to x from different threads (a race), plus a
# lock-protected pair on y (no race). 8 events total.
set(TRACE "${CMAKE_CURRENT_BINARY_DIR}/stream_case_${CASE}.txt")
file(WRITE ${TRACE}
"T0|w(x)|L1
T1|w(x)|L2
T0|acq(l)|L3
T0|w(y)|L4
T0|rel(l)|L5
T1|acq(l)|L6
T1|w(y)|L7
T1|rel(l)|L8
")

if(CASE STREQUAL "window")
  # Window of 1 event: every fragment holds a single access, so even the
  # x race disappears — windowed semantics, streamed.
  execute_process(
    COMMAND ${RACE_CLI} ${TRACE} --stream --window 1 --hb --json
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
  set(WANT_MODE "windowed")
  set(WANT_RACES 0)
else()
  execute_process(
    COMMAND ${RACE_CLI} ${TRACE} --stream --shards 4 --hb --json
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
  set(WANT_MODE "var-sharded")
  set(WANT_RACES 1)
endif()
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "race_cli exited ${RC}: ${ERR}")
endif()

string(JSON MODE ERROR_VARIABLE JERR GET "${OUT}" mode)
if(JERR)
  message(FATAL_ERROR "not valid JSON (${JERR}): ${OUT}")
endif()
if(NOT MODE STREQUAL WANT_MODE)
  message(FATAL_ERROR "mode = '${MODE}', want '${WANT_MODE}'")
endif()
string(JSON STREAMED GET "${OUT}" streamed)
if(NOT STREAMED STREQUAL "ON")
  message(FATAL_ERROR "streamed = '${STREAMED}', want true")
endif()
string(JSON STATUS GET "${OUT}" status)
if(NOT STATUS STREQUAL "ok")
  message(FATAL_ERROR "status = '${STATUS}', want 'ok'")
endif()
string(JSON EVENTS GET "${OUT}" events)
if(NOT EVENTS EQUAL 8)
  message(FATAL_ERROR "events = ${EVENTS}, want 8")
endif()
string(JSON RACES GET "${OUT}" lanes 0 races)
if(NOT RACES EQUAL WANT_RACES)
  message(FATAL_ERROR
          "HB lane races = ${RACES}, want ${WANT_RACES} (${WANT_MODE})")
endif()
string(JSON CONSUMED GET "${OUT}" lanes 0 events_consumed)
if(NOT CONSUMED EQUAL 8)
  message(FATAL_ERROR "events_consumed = ${CONSUMED}, want 8")
endif()
file(REMOVE ${TRACE})
message(STATUS "race_cli --stream --${CASE}: ok (${WANT_RACES} race(s))")
