//===- tests/serve_test.cpp - Serving layer: transports, protocol, server -----===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Three legs of the serving layer's contract, pinned in-process:
//
//   1. transport equivalence — the same wire stream pumped through a
//      socket, a FIFO, and a shared-memory ring produces a canonical
//      report bit-for-bit identical to feeding the trace directly;
//   2. sticky failure — the first malformed frame (missing hello, bad
//      kind, undeclared ids, oversized length, truncation at EOF)
//      freezes the stream with a ValidationError, later frames are
//      ignored, and the already-analyzed prefix stays finishable;
//   3. server discipline — RaceServer finalizes on Finish *and* on
//      disconnect, parks over-budget producers instead of buffering or
//      dropping (events complete, parks counted), enforces the hard
//      event budget loudly, and answers mid-stream partial queries with
//      exact prefixes of the final report.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "io/FaultInjector.h"
#include "io/FeedSource.h"
#include "io/ShmRing.h"
#include "io/WireFormat.h"
#include "serve/RaceServer.h"
#include "serve/ReportCanon.h"
#include "serve/WireClient.h"
#include "serve/WireIngestor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace rapid;

namespace {

AnalysisConfig hbWcpConfig() {
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::Hb);
  Cfg.addDetector(DetectorKind::Wcp);
  return Cfg;
}

/// The offline ground truth: feed \p T directly, canonicalize.
std::string directCanon(const AnalysisConfig &Cfg, const Trace &T) {
  AnalysisSession S(Cfg);
  EXPECT_TRUE(S.feedTrace(T).ok());
  AnalysisResult R = S.finish();
  EXPECT_TRUE(R.ok()) << R.firstError().str();
  return canonicalReport(R, S.trace());
}

/// Hello + declares + events + finish: one session's complete stream.
std::string fullWireStream(const Trace &T, uint64_t BatchEvents = 8192) {
  std::string Bytes = wireHelloFrame();
  Bytes += encodeTraceFrames(T, BatchEvents);
  wireAppendFrame(Bytes, WireFrame::Finish, {});
  return Bytes;
}

/// Pumps \p Src into a fresh session and canonicalizes the outcome.
std::string pumpToCanon(const AnalysisConfig &Cfg, FeedSource &Src) {
  AnalysisSession S(Cfg);
  EXPECT_TRUE(pumpFeedSource(Src, S).ok()) << Src.name();
  AnalysisResult R = S.finish();
  EXPECT_TRUE(R.ok()) << R.firstError().str();
  return canonicalReport(R, S.trace());
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "rapidpp_serve_" + Name;
}

/// Splits a canonical listing into per-lane `race ...` line sequences.
std::vector<std::vector<std::string>> raceLinesPerLane(const std::string &C) {
  std::vector<std::vector<std::string>> Lanes;
  std::istringstream In(C);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("lane ", 0) == 0)
      Lanes.emplace_back();
    else if (Line.rfind("race ", 0) == 0 && !Lanes.empty())
      Lanes.back().push_back(Line);
  }
  return Lanes;
}

/// The torn-merge check at the wire level: every lane's race lines in
/// \p Partial must be an exact prefix of the same lane's in \p Final.
void expectCanonIsPrefix(const std::string &Partial, const std::string &Final,
                         const std::string &Label) {
  auto P = raceLinesPerLane(Partial), F = raceLinesPerLane(Final);
  ASSERT_EQ(P.size(), F.size()) << Label;
  for (size_t L = 0; L != P.size(); ++L) {
    ASSERT_LE(P[L].size(), F[L].size()) << Label << " lane " << L;
    for (size_t I = 0; I != P[L].size(); ++I)
      EXPECT_EQ(P[L][I], F[L][I]) << Label << " lane " << L << " race " << I;
  }
}

/// Retries \p Pred for up to five seconds (server-side transitions are
/// asynchronous: eviction happens on the IO thread after the poll tick).
bool eventually(const std::function<bool()> &Pred) {
  for (int I = 0; I < 500; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

// ---- 1. Transport round trips ---------------------------------------------

class FeedRoundTripTest : public ::testing::Test {
protected:
  void SetUp() override {
    T = makeWorkload(workloadSpec("mergesort"));
    Want = directCanon(hbWcpConfig(), T);
    // Small batches force many Events frames — the interesting framing.
    Bytes = fullWireStream(T, 257);
    ASSERT_FALSE(Want.empty());
  }
  Trace T;
  std::string Want;
  std::string Bytes;
};

TEST_F(FeedRoundTripTest, SocketMatchesDirectFeedBitForBit) {
  int Sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  // Writer thread: socketpair buffers are finite, so a single-threaded
  // write-all-then-pump could deadlock on a large stream.
  std::thread Writer([&] {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::write(Sv[0], Bytes.data() + Off, Bytes.size() - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Sv[0]);
  });
  auto Src = makeFdFeedSource(Sv[1], "unix:test");
  EXPECT_EQ(pumpToCanon(hbWcpConfig(), *Src), Want);
  Writer.join();
}

TEST_F(FeedRoundTripTest, FifoMatchesDirectFeedBitForBit) {
  std::string Path = tempPath("roundtrip.fifo");
  std::remove(Path.c_str());
  ASSERT_EQ(mkfifo(Path.c_str(), 0600), 0) << Path;
  std::thread Writer([&] {
    std::FILE *F = std::fopen(Path.c_str(), "wb"); // Blocks for a reader.
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
    std::fclose(F);
  });
  Status Err;
  auto Src = openFeedSource("fifo:" + Path, Err);
  ASSERT_NE(Src, nullptr) << Err.str();
  EXPECT_EQ(pumpToCanon(hbWcpConfig(), *Src), Want);
  Writer.join();
  std::remove(Path.c_str());
}

TEST_F(FeedRoundTripTest, ShmRingMatchesDirectFeedBitForBit) {
  std::string Path = tempPath("roundtrip.ring");
  ShmRing Producer;
  // A ring far smaller than the stream: the producer must wrap and block
  // on the consumer repeatedly, exercising the watermark discipline.
  ASSERT_TRUE(Producer.create(Path, 4096).ok());
  ShmRing Consumer;
  ASSERT_TRUE(Consumer.attach(Path).ok());
  std::thread Writer([&] {
    ASSERT_TRUE(Producer.write(Bytes.data(), Bytes.size()));
    Producer.close();
  });
  auto Src = makeShmRingFeedSource(std::move(Consumer), "shm:" + Path);
  EXPECT_EQ(pumpToCanon(hbWcpConfig(), *Src), Want);
  Writer.join();
  std::remove(Path.c_str());
}

// Deterministic delivery faults (io/FaultInjector.h) over a real socket:
// short reads, spurious EAGAIN, and tiny delays reshape every read, yet
// the report must stay bit-for-bit identical — the decorator perturbs
// delivery, never content, and the pump's retry discipline absorbs it.
TEST_F(FeedRoundTripTest, FaultySocketDeliveryStillMatchesBitForBit) {
  int Sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  std::thread Writer([&] {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::write(Sv[0], Bytes.data() + Off, Bytes.size() - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Sv[0]);
  });
  FaultStats Stats;
  FaultyFeedConfig FC;
  FC.Seed = 41;
  FC.ShortReadPermille = 500;
  FC.WouldBlockPermille = 200;
  FC.DelayPermille = 100;
  FC.MaxDelayUs = 50;
  FC.Stats = &Stats;
  auto Src = makeFaultyFeedSource(makeFdFeedSource(Sv[1], "unix:test"), FC);
  // Small chunks force many reads, so the per-read schedule gets enough
  // draws to fire every fault class for this seed.
  AnalysisSession S(hbWcpConfig());
  ASSERT_TRUE(pumpFeedSource(*Src, S, /*ChunkBytes=*/1024).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.ok()) << R.firstError().str();
  EXPECT_EQ(canonicalReport(R, S.trace()), Want);
  Writer.join();
  // The schedule is seeded, so the faults deterministically happened.
  EXPECT_GT(Stats.ShortReads, 0u);
  EXPECT_GT(Stats.WouldBlocks, 0u);
}

// The same fault schedule over the shm ring (no pollable fd: the pump's
// WouldBlock path must spin-sleep, not poll).
TEST_F(FeedRoundTripTest, FaultyShmRingDeliveryStillMatchesBitForBit) {
  std::string Path = tempPath("faulty.ring");
  ShmRing Producer;
  ASSERT_TRUE(Producer.create(Path, 4096).ok());
  ShmRing Consumer;
  ASSERT_TRUE(Consumer.attach(Path).ok());
  std::thread Writer([&] {
    ASSERT_TRUE(Producer.write(Bytes.data(), Bytes.size()));
    Producer.close();
  });
  FaultyFeedConfig FC;
  FC.Seed = 43;
  FC.ShortReadPermille = 400;
  FC.WouldBlockPermille = 150;
  auto Src = makeFaultyFeedSource(
      makeShmRingFeedSource(std::move(Consumer), "shm:" + Path), FC);
  EXPECT_EQ(pumpToCanon(hbWcpConfig(), *Src), Want);
  Writer.join();
  std::remove(Path.c_str());
}

// A mid-frame cut freezes the stream exactly like a torn disconnect: the
// whole-frame prefix is applied, the tail is a loud ValidationError.
TEST_F(FeedRoundTripTest, CutFeedFreezesWithTornFrameErrorPrefixApplied) {
  int Sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  std::thread Writer([&] {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::write(Sv[0], Bytes.data() + Off, Bytes.size() - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Sv[0]);
  });
  FaultStats Stats;
  FaultyFeedConfig FC;
  FC.Seed = 47;
  FC.CutAfterBytes = Bytes.size() - 2; // inside the trailing Finish frame
  FC.Stats = &Stats;
  auto Src = makeFaultyFeedSource(makeFdFeedSource(Sv[1], "unix:test"), FC);
  AnalysisSession S(hbWcpConfig());
  Status Pumped = pumpFeedSource(*Src, S);
  EXPECT_EQ(Pumped.Code, StatusCode::ValidationError);
  EXPECT_NE(Pumped.Message.find("disconnected mid-frame"), std::string::npos)
      << Pumped.str();
  AnalysisResult R = S.finish();
  EXPECT_EQ(R.EventsIngested, T.size()) << "whole-frame prefix must survive";
  EXPECT_EQ(Stats.Cuts, 1u);
  Writer.join();
  ::close(Sv[1]);
}

// ---- 2. Sticky protocol failures ------------------------------------------

class WireIngestorTest : public ::testing::Test {
protected:
  WireIngestorTest() : S(hbWcpConfig()), Ing(S) {}
  void ingest(const std::string &Bytes) { Ing.ingest(Bytes.data(), Bytes.size()); }
  /// A valid one-thread declare + one-event stream prefix.
  std::string declareOneThread() {
    std::string P;
    wireDeclareEntry(P, WireDeclareKind::Thread, "T0");
    std::string Out;
    wireAppendFrame(Out, WireFrame::Declare, P);
    return Out;
  }
  AnalysisSession S;
  WireIngestor Ing;
};

TEST_F(WireIngestorTest, DataBeforeHelloFreezes) {
  ingest(declareOneThread());
  EXPECT_EQ(Ing.status().Code, StatusCode::ValidationError);
  // Sticky: a valid hello afterwards does not unfreeze.
  ingest(wireHelloFrame());
  EXPECT_FALSE(Ing.sawHello());
  EXPECT_EQ(Ing.status().Code, StatusCode::ValidationError);
}

TEST_F(WireIngestorTest, BadEventKindFreezesWithoutApplying) {
  ingest(wireHelloFrame());
  ingest(declareOneThread());
  std::string P;
  wireEventsHeader(P, /*Seq=*/0, /*Count=*/1);
  wireEventRecord(P, /*Kind=*/9, 0, 0, 0); // 9 is not an EventKind.
  std::string F;
  wireAppendFrame(F, WireFrame::Events, P);
  ingest(F);
  EXPECT_EQ(Ing.status().Code, StatusCode::ValidationError);
  EXPECT_EQ(Ing.eventsApplied(), 0u);
}

TEST_F(WireIngestorTest, UndeclaredIdsFreeze) {
  ingest(wireHelloFrame());
  std::string P;
  wireEventsHeader(P, /*Seq=*/0, /*Count=*/1);
  wireEventRecord(P, /*Kind=*/0, /*Thread=*/5, /*Target=*/0, /*Loc=*/0);
  std::string F;
  wireAppendFrame(F, WireFrame::Events, P);
  ingest(F);
  EXPECT_EQ(Ing.status().Code, StatusCode::ValidationError);
}

TEST_F(WireIngestorTest, UnknownFrameTypeAndOversizedLengthFreeze) {
  {
    AnalysisSession S2(hbWcpConfig());
    WireIngestor I2(S2);
    std::string Hello = wireHelloFrame();
    I2.ingest(Hello.data(), Hello.size());
    std::string F;
    wirePutU32(F, 1);
    F.push_back(static_cast<char>(99)); // No such frame type.
    F.push_back('x');
    I2.ingest(F.data(), F.size());
    EXPECT_EQ(I2.status().Code, StatusCode::ValidationError);
  }
  {
    AnalysisSession S3(hbWcpConfig());
    WireIngestor I3(S3);
    std::string F;
    wirePutU32(F, WireMaxPayload + 1); // Length alone must desync.
    F.push_back(static_cast<char>(WireFrame::Events));
    I3.ingest(F.data(), F.size());
    EXPECT_EQ(I3.status().Code, StatusCode::ValidationError);
  }
}

TEST_F(WireIngestorTest, TruncationAtEofFreezesButPrefixSurvives) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  std::string Bytes = wireHelloFrame() + encodeTraceFrames(T, 64);
  // Keep a valid prefix of whole frames, then 3 bytes of a torn frame.
  size_t Keep = Bytes.size() / 2;
  ingest(Bytes.substr(0, Keep));
  ASSERT_TRUE(Ing.status().ok()) << Ing.status().str();
  uint64_t Applied = Ing.eventsApplied();
  Ing.eof();
  // Whether the cut landed on a frame boundary or not, EOF without Finish
  // must not pass silently... a boundary cut is a clean disconnect story
  // for the *server*, but the ingestor only flags a *torn* frame.
  if (!Ing.status().ok()) {
    EXPECT_EQ(Ing.status().Code, StatusCode::ValidationError);
  }
  // The analyzed prefix stays finishable either way.
  AnalysisResult R = S.finish();
  uint64_t Total = 0;
  for (const auto &L : R.Lanes) {
    EXPECT_TRUE(L.LaneStatus.ok());
    Total = L.EventsConsumed;
  }
  EXPECT_EQ(Total, Applied);
  // Later data after the freeze (or EOF) is ignored.
  std::string More = encodeTraceFrames(T, 64);
  ingest(More);
  EXPECT_EQ(Ing.eventsApplied(), Applied);
}

// ---- 3. RaceServer ---------------------------------------------------------

class RaceServerTest : public ::testing::Test {
protected:
  RaceServerConfig baseConfig(const std::string &Tag) {
    RaceServerConfig Cfg;
    Cfg.Session = hbWcpConfig();
    Cfg.SocketPath = tempPath(Tag + ".sock");
    Cfg.IngestThreads = 2;
    return Cfg;
  }
};

TEST_F(RaceServerTest, CleanSessionMatchesOfflineAndPartialIsPrefix) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("clean");
  std::string Want = directCanon(Cfg.Session, T);
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(C.sendHello().ok());
  ASSERT_TRUE(C.sendTrace(T, 511).ok());

  // Mid-stream partial of our own session: a Report frame with the
  // partial flag, and an exact prefix of the final listing.
  ASSERT_TRUE(C.sendPartialQuery().ok());
  WireFrame Type;
  std::string Payload;
  ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  ASSERT_EQ(Type, WireFrame::Report);
  ASSERT_GE(Payload.size(), 9u);
  EXPECT_EQ(Payload[0], 1); // partial
  std::string PartialCanon = Payload.substr(9);

  ASSERT_TRUE(C.sendFinish().ok());
  ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  ASSERT_EQ(Type, WireFrame::Report);
  ASSERT_GE(Payload.size(), 9u);
  EXPECT_EQ(Payload[0], 0); // final
  uint64_t Id = wireGetU64(Payload.data() + 1);
  std::string FinalCanon = Payload.substr(9);

  EXPECT_EQ(FinalCanon, Want);
  expectCanonIsPrefix(PartialCanon, FinalCanon, "live partial");

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  std::vector<SessionSummary> Done = Server.finishedSessions();
  EXPECT_EQ(Done[0].Id, Id);
  EXPECT_TRUE(Done[0].CleanFinish);
  EXPECT_TRUE(Done[0].Outcome.ok()) << Done[0].Outcome.str();
  EXPECT_EQ(Done[0].Events, T.size());
  EXPECT_EQ(Done[0].Canon, Want);

  // The retained report stays queryable from a fresh connection, and the
  // roster lists the finished session.
  WireClient Q;
  ASSERT_TRUE(Q.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(Q.sendHello().ok());
  ASSERT_TRUE(Q.sendFinalQuery(Id).ok());
  ASSERT_TRUE(Q.readFrame(Type, Payload).ok());
  ASSERT_EQ(Type, WireFrame::Report);
  EXPECT_EQ(Payload.substr(9), Want);
  ASSERT_TRUE(Q.sendListSessions().ok());
  ASSERT_TRUE(Q.readFrame(Type, Payload).ok());
  ASSERT_EQ(Type, WireFrame::SessionList);
  EXPECT_NE(Payload.find("finished " + std::to_string(Id)), std::string::npos)
      << Payload;
  Server.stop();
}

TEST_F(RaceServerTest, DisconnectMidFrameEvictsWithTornFrameError) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("evict");
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  std::string Bytes = wireHelloFrame() + encodeTraceFrames(T, 128);
  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  // Cut inside the last frame: whole frames apply, the tail is torn.
  ASSERT_TRUE(C.sendBytes(Bytes.substr(0, Bytes.size() - 7)).ok());
  C.close();

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  SessionSummary Done = Server.finishedSessions()[0];
  EXPECT_FALSE(Done.CleanFinish);
  EXPECT_EQ(Done.Outcome.Code, StatusCode::ValidationError);
  EXPECT_NE(Done.Outcome.Message.find("disconnected mid-frame"),
            std::string::npos)
      << Done.Outcome.str();
  EXPECT_GT(Done.Events, 0u); // The whole-frame prefix was applied.
  EXPECT_LT(Done.Events, T.size());
  EXPECT_EQ(Server.activeSessions(), 0u);
  Server.stop();
}

TEST_F(RaceServerTest, MalformedFrameGetsStickyErrorNotUb) {
  RaceServerConfig Cfg = baseConfig("sticky");
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(C.sendHello().ok());
  std::string P;
  wireEventsHeader(P, /*Seq=*/0, /*Count=*/1);
  wireEventRecord(P, /*Kind=*/9, 0, 0, 0);
  std::string F;
  wireAppendFrame(F, WireFrame::Events, P);
  ASSERT_TRUE(C.sendBytes(F).ok());

  WireFrame Type;
  std::string Payload;
  ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  EXPECT_EQ(Type, WireFrame::WireError);
  ASSERT_GE(Payload.size(), 1u);
  EXPECT_EQ(static_cast<StatusCode>(Payload[0]), StatusCode::ValidationError);

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  EXPECT_EQ(Server.finishedSessions()[0].Outcome.Code,
            StatusCode::ValidationError);
  Server.stop();
}

TEST_F(RaceServerTest, OverBudgetProducerIsParkedNotDropped) {
  // Deterministic backpressure: while the gate is closed the lane crawls
  // (one bounded 1 ms sleep per event — ~1k events/s against a ~2k-event
  // trace fed in one burst), so whenever the ingest-side lag check runs
  // it sees the lag far over the tiny budget and parks the connection.
  // Two non-solutions informed this shape: a merely-*slow* lane (tens of
  // µs per event) loses the race against a preempted ingest task on a
  // loaded ctest -j host, and a lane that *blocks* outright deadlocks
  // the check itself — consumers hold their SnapM for a whole stream
  // batch, and progress() (which the lag check calls) takes every
  // lane's SnapM. Bounded sleeps + a small StreamBatchEvents keep SnapM
  // hold times short without letting the lane keep pace. The contract
  // under test: parks > 0, yet every event is eventually analyzed —
  // backpressure, not loss.
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("park");
  auto Gate = std::make_shared<std::atomic<bool>>(false);
  Cfg.Session = AnalysisConfig();
  Cfg.Session.StreamBatchEvents = 64;
  Cfg.Session.addDetector([Gate](const Trace &Tr) {
    class ThrottledHb : public HbDetector {
    public:
      ThrottledHb(const Trace &Tr, std::shared_ptr<std::atomic<bool>> G)
          : HbDetector(Tr), Gate(std::move(G)) {}
      void processEvent(const Event &E, EventIdx I) override {
        HbDetector::processEvent(E, I);
        if (!Gate->load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }

    private:
      std::shared_ptr<std::atomic<bool>> Gate;
    };
    return std::make_unique<ThrottledHb>(Tr, Gate);
  }, "throttled-HB");
  Cfg.Budgets.MaxLagEvents = 64;
  Cfg.PollTimeoutMs = 5;
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());
  // Whatever happens below (including a failed ASSERT returning early),
  // open the gate before the server tears down so finish() drains the
  // lane at full speed instead of 1 ms per leftover event.
  struct GateOpener {
    std::shared_ptr<std::atomic<bool>> G;
    ~GateOpener() { G->store(true, std::memory_order_release); }
  } Opener{Gate};

  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(C.sendHello().ok());
  ASSERT_TRUE(C.sendTrace(T, 32).ok());
  // Hold Finish back until the park actually happened — with Finish in
  // the same byte burst the first ingest task would go straight to
  // finalize and the backpressure path would never be exercised.
  const bool Parked = eventually([&] {
    for (const MetricSample &M : Server.metrics())
      if (M.Name == "parks" && M.Value > 0)
        return true;
    return false;
  });
  if (!Parked) {
    std::string Dump;
    for (const MetricSample &M : Server.metrics())
      Dump += M.Name + "=" + std::to_string(M.Value) + " ";
    for (const SessionSummary &S : Server.finishedSessions())
      Dump += "\nfinished id=" + std::to_string(S.Id) +
              " events=" + std::to_string(S.Events) +
              " clean=" + std::to_string(S.CleanFinish) +
              " status=" + S.Outcome.str();
    FAIL() << "no park observed; server state: " << Dump;
  }
  // Park observed — release the gated lane so the session can drain and
  // finish; the resume path (lag back under half budget) runs from here.
  Gate->store(true, std::memory_order_release);
  ASSERT_TRUE(C.sendFinish().ok());

  WireFrame Type;
  std::string Payload;
  ASSERT_TRUE(C.readFrame(Type, Payload, /*TimeoutMs=*/120000).ok());
  ASSERT_EQ(Type, WireFrame::Report);

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  SessionSummary Done = Server.finishedSessions()[0];
  EXPECT_TRUE(Done.CleanFinish);
  EXPECT_EQ(Done.Events, T.size()) << "backpressure must not drop events";
  EXPECT_GT(Done.Parks, 0u) << "the slow consumer never parked";
  Server.stop();
}

TEST_F(RaceServerTest, HardEventBudgetFreezesLoudly) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("budget");
  Cfg.Budgets.MaxSessionEvents = 100;
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(C.sendHello().ok());
  ASSERT_TRUE(C.sendTrace(T, 64).ok());

  WireFrame Type;
  std::string Payload;
  ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  EXPECT_EQ(Type, WireFrame::WireError);
  ASSERT_GE(Payload.size(), 1u);
  EXPECT_EQ(static_cast<StatusCode>(Payload[0]), StatusCode::InvalidState);
  EXPECT_NE(Payload.find("budget"), std::string::npos);

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  SessionSummary Done = Server.finishedSessions()[0];
  EXPECT_FALSE(Done.CleanFinish);
  EXPECT_EQ(Done.Outcome.Code, StatusCode::InvalidState);
  Server.stop();
}

TEST_F(RaceServerTest, MetricsCoverTheSessionLifecycle) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("metrics");
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());
  {
    WireClient C;
    ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
    ASSERT_TRUE(C.sendHello().ok());
    ASSERT_TRUE(C.sendTrace(T).ok());
    ASSERT_TRUE(C.sendFinish().ok());
    WireFrame Type;
    std::string Payload;
    ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  }
  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  uint64_t Accepted = 0, Events = 0, Finished = 0;
  // metrics() returns the serve.* subtree with the prefix stripped.
  for (const MetricSample &M : Server.metrics()) {
    if (M.Name == "accepted")
      Accepted = M.Value;
    else if (M.Name == "events")
      Events = M.Value;
    else if (M.Name == "finished")
      Finished = M.Value;
  }
  EXPECT_EQ(Accepted, 1u);
  EXPECT_EQ(Finished, 1u);
  EXPECT_EQ(Events, T.size());
  Server.stop();
}

} // namespace
