//===- tests/growth_test.cpp - Mid-stream table growth, fuzzed ----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The growable-state contract: a streaming session whose id tables grow
// *while lanes are already consuming* — threads, locks and variables
// declared at arbitrary mid-stream offsets — must
//
//   1. never restart a lane (LaneReport::Restarts structurally 0: growth
//      is an O(1) metadata update, not a rebuild-and-replay), and
//   2. finish with reports bit-for-bit identical to the batch engine
//      (and, where the mode promises it, plain runDetector) over the
//      final trace,
//
// for every detector and every run mode. 50 seeds x {no-forkjoin,
// forkjoin} = 100 distinct traces; each runs through all four modes with
// all four detector lanes, with a seed-derived random declaration
// schedule: ids are declared in table order (the session's interner
// assigns ids in declaration order) but at random offsets — sometimes
// just-in-time before the first event that references them, sometimes
// batched ahead — so growth lands at different points of every lane's
// consumption on every seed.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "api/AnalysisSession.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace rapid;
using testutil::expectSameReport;

namespace {

constexpr DetectorKind kAllKinds[] = {DetectorKind::Hb, DetectorKind::Wcp,
                                      DetectorKind::FastTrack,
                                      DetectorKind::Eraser,
                                      DetectorKind::SyncP};

/// Trace shapes with enough distinct ids that declarations keep arriving
/// deep into the stream.
RandomTraceParams growthParams(uint64_t Seed, bool ForkJoin) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 6;
  P.NumLocks = 1 + Seed % 5;
  P.NumVars = 2 + (Seed * 7) % 12;
  P.OpsPerThread = 30 + (Seed * 11) % 40;
  P.MaxLockNesting = 1 + Seed % 3;
  P.AcquirePercent = 10 + (Seed * 5) % 25;
  P.WritePercent = 30 + (Seed * 13) % 40;
  P.WithForkJoin = ForkJoin;
  return P;
}

/// Declares \p T's names into \p S lazily, feeding events in small
/// batches: each id is declared in table order, no earlier than the
/// random schedule allows and no later than just before its first use.
/// Returns false (with a recorded failure) if any session call fails.
class LazyDeclarer {
public:
  LazyDeclarer(AnalysisSession &S, const Trace &T, uint64_t Seed)
      : S(S), T(T), Rng(Seed ^ 0xf00d) {}

  /// Runs the whole schedule: declarations interleaved with feeds.
  bool run() {
    std::vector<Event> Batch;
    const uint64_t BatchSize = 1 + Rng.nextBelow(5);
    for (EventIdx I = 0; I != T.size(); ++I) {
      const Event &E = T.event(I);
      if (!declareFor(E))
        return false;
      // Occasionally declare ids ahead of schedule, so some growth
      // arrives in bursts unrelated to the events around it.
      if (Rng.nextBelow(8) == 0 && !declareRandomAhead())
        return false;
      Batch.push_back(E);
      if (Batch.size() == BatchSize || I + 1 == T.size()) {
        Status Fed = S.feed(Batch);
        EXPECT_TRUE(Fed.ok()) << Fed.str();
        if (!Fed.ok())
          return false;
        Batch.clear();
      }
    }
    return true;
  }

private:
  /// Declares everything event \p E references (in table order up to the
  /// referenced id — interned ids must match the source trace's).
  bool declareFor(const Event &E) {
    if (!threadsUpTo(E.Thread.value()))
      return false;
    switch (E.Kind) {
    case EventKind::Fork:
    case EventKind::Join:
      if (!threadsUpTo(E.targetThread().value()))
        return false;
      break;
    case EventKind::Acquire:
    case EventKind::Release:
      if (!locksUpTo(E.lock().value()))
        return false;
      break;
    case EventKind::Read:
    case EventKind::Write:
      if (!varsUpTo(E.var().value()))
        return false;
      break;
    }
    return locsUpTo(E.Loc.value());
  }

  bool declareRandomAhead() {
    switch (Rng.nextBelow(4)) {
    case 0:
      return NextThread < T.numThreads() ? threadsUpTo(NextThread) : true;
    case 1:
      return NextLock < T.numLocks() ? locksUpTo(NextLock) : true;
    case 2:
      return NextVar < T.numVars() ? varsUpTo(NextVar) : true;
    default:
      return NextLoc < T.numLocs() ? locsUpTo(NextLoc) : true;
    }
  }

  bool threadsUpTo(uint32_t Id) {
    for (; NextThread <= Id; ++NextThread) {
      ThreadId Got = S.declareThread(T.threadName(ThreadId(NextThread)));
      EXPECT_EQ(Got.value(), NextThread) << "interned thread id diverged";
      if (Got.value() != NextThread)
        return false;
    }
    return true;
  }
  bool locksUpTo(uint32_t Id) {
    for (; NextLock <= Id; ++NextLock) {
      LockId Got = S.declareLock(T.lockName(LockId(NextLock)));
      EXPECT_EQ(Got.value(), NextLock) << "interned lock id diverged";
      if (Got.value() != NextLock)
        return false;
    }
    return true;
  }
  bool varsUpTo(uint32_t Id) {
    for (; NextVar <= Id; ++NextVar) {
      VarId Got = S.declareVar(T.varName(VarId(NextVar)));
      EXPECT_EQ(Got.value(), NextVar) << "interned var id diverged";
      if (Got.value() != NextVar)
        return false;
    }
    return true;
  }
  bool locsUpTo(uint32_t Id) {
    for (; NextLoc <= Id; ++NextLoc) {
      LocId Got = S.declareLoc(T.locName(LocId(NextLoc)));
      EXPECT_EQ(Got.value(), NextLoc) << "interned loc id diverged";
      if (Got.value() != NextLoc)
        return false;
    }
    return true;
  }

  AnalysisSession &S;
  const Trace &T;
  Prng Rng;
  uint32_t NextThread = 0, NextLock = 0, NextVar = 0, NextLoc = 0;
};

AnalysisConfig growthConfig(RunMode Mode, uint64_t Seed) {
  AnalysisConfig Cfg;
  Cfg.Mode = Mode;
  for (DetectorKind K : kAllKinds)
    Cfg.addDetector(K);
  Cfg.StreamBatchEvents = 1 + Seed % 7; // Eager consumption: lanes run
                                        // genuinely behind the producer.
  Cfg.Threads = 1 + Seed % 3;
  if (Mode == RunMode::Windowed)
    Cfg.WindowEvents = 4 + Seed % 41;
  if (Mode == RunMode::VarSharded) {
    Cfg.VarShards = 1 + Seed % 6;
    Cfg.Strategy = Seed % 2 ? ShardStrategy::FrequencyBalanced
                            : ShardStrategy::Modulo;
  }
  return Cfg;
}

class GrowthFuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// Runs \p T through all four modes with a lazy declaration schedule and
/// holds every lane to the restart-free + bit-for-bit contract.
void expectGrowthRoundHolds(const Trace &T, uint64_t Seed, uint64_t DeclSeed,
                            const std::string &TraceLabel) {
  for (RunMode Mode : {RunMode::Sequential, RunMode::Fused,
                       RunMode::Windowed, RunMode::VarSharded}) {
    AnalysisConfig Cfg = growthConfig(Mode, Seed);
    AnalysisSession S(Cfg);
    ASSERT_TRUE(S.status().ok()) << S.status().str();
    LazyDeclarer Declarer(S, T, DeclSeed);
    ASSERT_TRUE(Declarer.run())
        << TraceLabel << " mode " << runModeName(Mode);
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.ok()) << R.firstError().str();

    const Trace &Final = S.trace();
    ASSERT_EQ(Final.size(), T.size());
    AnalysisResult Want = analyzeTrace(Cfg, Final);
    ASSERT_TRUE(Want.ok()) << Want.firstError().str();
    ASSERT_EQ(R.Lanes.size(), Want.Lanes.size());
    for (size_t L = 0; L != R.Lanes.size(); ++L) {
      std::string Label = TraceLabel + " " + runModeName(Mode) + "/" +
                          Want.Lanes[L].DetectorName;
      EXPECT_EQ(R.Lanes[L].Restarts, 0u)
          << Label << ": growable state must never restart";
      EXPECT_EQ(R.Lanes[L].DetectorName, Want.Lanes[L].DetectorName)
          << Label;
      expectSameReport(R.Lanes[L].Report, Want.Lanes[L].Report, Final,
                       Label + "/vs-batch");
      if (Mode != RunMode::Windowed) {
        // Every unwindowed mode additionally promises equality with the
        // plain sequential walk (windowed reports are windowed by
        // design).
        std::unique_ptr<Detector> D = makeDetectorFactory(kAllKinds[L])(Final);
        RunResult Seq = runDetector(*D, Final);
        expectSameReport(R.Lanes[L].Report, Seq.Report, Final,
                         Label + "/vs-seq");
      }
    }
  }
}

} // namespace

TEST_P(GrowthFuzzTest, MidStreamGrowthIsRestartFreeAndBitForBit) {
  const uint64_t Seed = GetParam();
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(growthParams(Seed * 2 + ForkJoin, ForkJoin));
    expectGrowthRoundHolds(T, Seed, Seed * 4 + ForkJoin,
                           "growth seed " + std::to_string(Seed) + " fj=" +
                               std::to_string(ForkJoin));
  }
}

// The adversarial matrix under mid-stream declaration: each seed draws one
// shape (all shapes covered across the range), declared lazily into every
// mode. DeclarationDense is the pointed case — its program keeps minting
// thread/lock/variable ids until the last event, so this is where a
// restart bug in any lane's growth path (SyncP's prefilter clock and
// closure index included) would surface.
TEST_P(GrowthFuzzTest, AdversarialShapesGrowRestartFree) {
  const uint64_t Seed = GetParam();
  const std::vector<WorkloadShape> &Shapes = allWorkloadShapes();
  WorkloadShape Shape = Shapes[Seed % Shapes.size()];
  Trace T = makeAdversarialTrace(Shape, Seed);
  expectGrowthRoundHolds(T, Seed, Seed * 4 + 2,
                         std::string("shape ") + workloadShapeName(Shape) +
                             " seed " + std::to_string(Seed));
}

// 50 seeds x {no-forkjoin, forkjoin} = 100 distinct traces, each through
// every (detector, mode) pair.
INSTANTIATE_TEST_SUITE_P(Seeds, GrowthFuzzTest,
                         ::testing::Range<uint64_t>(1, 51));

// Regression pin for the WCP queue-GC fix under mid-stream declaration:
// the pathological queue-growth trace forks its third thread halfway
// through, so the GC's thread frontier grows while the per-lock queues
// are already loaded — collecting an entry the late thread still needs
// would diverge the streamed report from the batch one here.
TEST(WcpQueueStressGrowthTest, LateThreadDeclarationStaysBitForBit) {
  for (uint64_t Seed : {1u, 2u, 5u}) {
    WcpQueueStressSpec Spec;
    Spec.Seed = Seed;
    Trace T = makeWcpQueueStress(Spec);
    ASSERT_GT(T.size(), 0u);
    expectGrowthRoundHolds(T, Seed, Seed ^ 0x51515,
                           "wcp-queue-stress seed " + std::to_string(Seed));
  }
}
