//===- tests/serve_resume_test.cpp - Fault tolerance: resume + degradation ----===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The fault-tolerance contract of the serving layer, pinned in-process:
//
//   1. kill-and-resume — a resumable client whose connection is killed
//      N times mid-stream (deterministic seeded byte offsets) still
//      produces a final report byte-identical to an uninterrupted run:
//      no event duplicated, none lost (the sequence dedup + spill
//      retransmission is exactly-once);
//   2. determinism — the same fault seed yields the same kill schedule
//      and the same report, run after run;
//   3. graceful degradation — a saturated --max-sessions server sheds
//      Hellos with a *retryable* overloaded error carrying a retry-after
//      hint, and a backing-off client completes once capacity frees;
//   4. bounded grace — a detached resumable session whose client never
//      returns is finalized (prefix retained) when the grace window
//      expires; a Resume with an unknown token is rejected loudly;
//   5. idle eviction and roster GC run off the server's timer wheel.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "gen/Workloads.h"
#include "io/WireFormat.h"
#include "serve/RaceServer.h"
#include "serve/ReportCanon.h"
#include "serve/WireClient.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace rapid;

namespace {

AnalysisConfig hbWcpConfig() {
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::Hb);
  Cfg.addDetector(DetectorKind::Wcp);
  return Cfg;
}

std::string directCanon(const AnalysisConfig &Cfg, const Trace &T) {
  AnalysisSession S(Cfg);
  EXPECT_TRUE(S.feedTrace(T).ok());
  AnalysisResult R = S.finish();
  EXPECT_TRUE(R.ok()) << R.firstError().str();
  return canonicalReport(R, S.trace());
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "rapidpp_resume_" + Name;
}

bool eventually(const std::function<bool()> &Pred) {
  for (int I = 0; I < 500; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

/// The CI chaos matrix varies the kill schedule via RAPID_FAULT_SEED;
/// locally the default seed keeps the run reproducible bit-for-bit.
uint64_t faultSeed() {
  if (const char *S = std::getenv("RAPID_FAULT_SEED"))
    return std::strtoull(S, nullptr, 10);
  return 7;
}

uint64_t metricValue(const std::vector<MetricSample> &Ms,
                     const std::string &Name) {
  for (const MetricSample &M : Ms)
    if (M.Name == Name)
      return M.Value;
  return 0;
}

class ServeResumeTest : public ::testing::Test {
protected:
  RaceServerConfig baseConfig(const std::string &Tag) {
    RaceServerConfig Cfg;
    Cfg.Session = hbWcpConfig();
    Cfg.SocketPath = tempPath(Tag + ".sock");
    Cfg.IngestThreads = 2;
    return Cfg;
  }

  /// Full resumable round trip under a fault plan; returns the final
  /// canonical report (and the client's reconnect count via \p Out).
  std::string runFaulty(const RaceServerConfig &Cfg, const Trace &T,
                        const WireFaultPlan &Plan, uint64_t *OutReconnects) {
    WireClient C;
    WireRetryPolicy Pol;
    Pol.JitterSeed = Plan.Seed;
    EXPECT_TRUE(C.connectResumable(Cfg.SocketPath, 2000, Pol).ok());
    EXPECT_NE(C.sessionToken(), 0u);
    C.setFaultPlan(Plan);
    EXPECT_TRUE(C.sendDeclares(T).ok());
    EXPECT_TRUE(C.sendEvents(T, 257).ok());
    EXPECT_TRUE(C.sendFinishReliable().ok());
    std::string Payload;
    Status S = C.awaitReport(Payload);
    EXPECT_TRUE(S.ok()) << S.str();
    if (Payload.size() < 9)
      return std::string();
    EXPECT_EQ(Payload[0], 0); // final, not partial
    if (OutReconnects)
      *OutReconnects = C.reconnects();
    return Payload.substr(9);
  }
};

// ---- 1. Kill-and-resume: byte-identical to the uninterrupted run -----------

TEST_F(ServeResumeTest, KilledConnectionResumesToByteIdenticalReport) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("kill");
  const std::string Want = directCanon(Cfg.Session, T);
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireFaultPlan Plan;
  Plan.Seed = faultSeed();
  Plan.Kills = 3;
  Plan.MinGapBytes = 1024;
  Plan.MaxGapBytes = 8192;
  uint64_t Reconnects = 0;
  const std::string Got = runFaulty(Cfg, T, Plan, &Reconnects);

  // Byte-identical despite three mid-stream connection kills: the
  // retransmitted overlap was deduplicated, nothing was lost.
  EXPECT_EQ(Got, Want);
  EXPECT_GE(Reconnects, 1u);
  EXPECT_LE(Reconnects, static_cast<uint64_t>(Plan.Kills));

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  SessionSummary Done = Server.finishedSessions()[0];
  EXPECT_TRUE(Done.CleanFinish);
  EXPECT_TRUE(Done.Outcome.ok()) << Done.Outcome.str();
  EXPECT_EQ(Done.Events, T.size()); // exactly once: no dup, no loss
  EXPECT_EQ(Done.Resumes, Reconnects);
  EXPECT_NE(Done.Token, 0u);
  EXPECT_EQ(Done.Canon, Want);
  EXPECT_GE(metricValue(Server.metrics(), "resumes"), Reconnects);
  Server.stop();
}

// ---- 2. Determinism: same seed, same schedule, same report -----------------

TEST_F(ServeResumeTest, SameSeedSameKillScheduleSameReport) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  WireFaultPlan Plan;
  Plan.Seed = faultSeed();
  Plan.Kills = 2;
  Plan.MinGapBytes = 700;
  Plan.MaxGapBytes = 4096;

  std::string Canon[2];
  uint64_t Reconnects[2] = {0, 0};
  for (int Run = 0; Run != 2; ++Run) {
    RaceServerConfig Cfg = baseConfig("det" + std::to_string(Run));
    RaceServer Server(Cfg);
    ASSERT_TRUE(Server.start().ok());
    Canon[Run] = runFaulty(Cfg, T, Plan, &Reconnects[Run]);
    Server.stop();
  }
  ASSERT_FALSE(Canon[0].empty());
  EXPECT_EQ(Canon[0], Canon[1]);
  EXPECT_EQ(Reconnects[0], Reconnects[1])
      << "the seeded kill schedule must replay identically";
  EXPECT_EQ(Canon[0], directCanon(hbWcpConfig(), T));
}

// ---- 3. Overload: retryable shed, then recovery ----------------------------

TEST_F(ServeResumeTest, SaturatedServerShedsRetryablyAndBackoffRecovers) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("shed");
  Cfg.MaxSessions = 1;
  Cfg.RetryAfterMs = 50;
  const std::string Want = directCanon(Cfg.Session, T);
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  // Occupy the only slot.
  WireClient A;
  ASSERT_TRUE(A.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(A.sendHello().ok());
  ASSERT_TRUE(eventually([&] { return Server.activeSessions() == 1; }));

  // A second plain Hello is shed with a *retryable* overloaded error
  // carrying the configured retry-after hint.
  {
    WireClient B;
    ASSERT_TRUE(B.connectUnix(Cfg.SocketPath, 2000).ok());
    ASSERT_TRUE(B.sendHello().ok());
    WireFrame Type;
    std::string Payload;
    ASSERT_TRUE(B.readFrame(Type, Payload).ok());
    ASSERT_EQ(Type, WireFrame::WireError);
    WireErrorInfo E;
    ASSERT_TRUE(wireParseError(Payload, E));
    EXPECT_EQ(E.Wire, WireErrorCode::Overloaded);
    EXPECT_TRUE(E.Retryable);
    EXPECT_EQ(E.RetryAfterMs, 50u);
    EXPECT_TRUE(wireErrorRetryable(E.Wire));
  }
  EXPECT_GE(metricValue(Server.metrics(), "shed"), 1u);

  // A resumable client keeps backing off against the saturated server
  // and completes once the slot frees.
  std::thread Release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    A.sendFinish();
    WireFrame Type;
    std::string Payload;
    A.readFrame(Type, Payload);
    A.close();
  });
  WireClient C;
  WireRetryPolicy Pol;
  Pol.MaxAttempts = 40;
  Status CS = C.connectResumable(Cfg.SocketPath, 2000, Pol);
  Release.join();
  ASSERT_TRUE(CS.ok()) << CS.str();
  ASSERT_TRUE(C.sendDeclares(T).ok());
  ASSERT_TRUE(C.sendEvents(T).ok());
  ASSERT_TRUE(C.sendFinishReliable().ok());
  std::string Payload;
  ASSERT_TRUE(C.awaitReport(Payload).ok());
  ASSERT_GE(Payload.size(), 9u);
  EXPECT_EQ(Payload.substr(9), Want);
  Server.stop();
}

// ---- 4. Grace expiry and unknown tokens ------------------------------------

TEST_F(ServeResumeTest, GraceExpiryFinalizesDetachedSessionPrefix) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("grace");
  Cfg.ResumeGraceMs = 200;
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireClient C;
  ASSERT_TRUE(C.connectResumable(Cfg.SocketPath, 2000).ok());
  ASSERT_NE(C.sessionToken(), 0u);
  ASSERT_TRUE(C.sendDeclares(T).ok());
  ASSERT_TRUE(C.sendEvents(T, 511).ok());
  // Client dies without Finish and never resumes: the server parks the
  // session for the grace window, then finalizes the received prefix.
  C.close();

  ASSERT_TRUE(eventually([&] { return Server.finishedSessions().size() == 1; }));
  SessionSummary Done = Server.finishedSessions()[0];
  EXPECT_FALSE(Done.CleanFinish);
  EXPECT_EQ(Done.Outcome.Code, StatusCode::IoError);
  EXPECT_NE(Done.Outcome.Message.find("grace window expired"),
            std::string::npos)
      << Done.Outcome.str();
  EXPECT_FALSE(Done.Canon.empty()); // the prefix report is retained
  EXPECT_GE(metricValue(Server.metrics(), "grace_expired"), 1u);
  EXPECT_GE(metricValue(Server.metrics(), "detached"), 1u);
  EXPECT_EQ(Server.activeSessions(), 0u);
  Server.stop();
}

TEST_F(ServeResumeTest, ResumeWithUnknownTokenIsRejectedLoudly) {
  RaceServerConfig Cfg = baseConfig("unknown");
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  WireClient C;
  ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
  std::string Bytes = wireHelloFrame(WireHelloAttach);
  Bytes += wireResumeFrame(/*Token=*/0xdeadbeefcafeull, /*NextSeq=*/0);
  ASSERT_TRUE(C.sendBytes(Bytes).ok());
  WireFrame Type;
  std::string Payload;
  ASSERT_TRUE(C.readFrame(Type, Payload).ok());
  ASSERT_EQ(Type, WireFrame::WireError);
  WireErrorInfo E;
  ASSERT_TRUE(wireParseError(Payload, E));
  EXPECT_EQ(E.Wire, WireErrorCode::ResumeUnknown);
  EXPECT_FALSE(E.Retryable);
  EXPECT_STREQ(wireErrorCodeName(E.Wire), "resume-unknown");
  Server.stop();
}

// ---- 5. Idle eviction and roster GC ----------------------------------------

TEST_F(ServeResumeTest, IdleSessionsAreEvictedAndRosterIsTrimmed) {
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceServerConfig Cfg = baseConfig("gc");
  Cfg.IdleTimeoutMs = 200;
  Cfg.RosterMax = 2;
  Cfg.ResumeGraceMs = 0; // plain disconnects finalize immediately
  RaceServer Server(Cfg);
  ASSERT_TRUE(Server.start().ok());

  // Three clean sessions; the roster GC must trim retention to the
  // newest two.
  uint64_t Ids[3] = {0, 0, 0};
  for (int I = 0; I != 3; ++I) {
    WireClient C;
    ASSERT_TRUE(C.connectUnix(Cfg.SocketPath, 2000).ok());
    ASSERT_TRUE(C.sendHello().ok());
    ASSERT_TRUE(C.sendTrace(T).ok());
    ASSERT_TRUE(C.sendFinish().ok());
    WireFrame Type;
    std::string Payload;
    ASSERT_TRUE(C.readFrame(Type, Payload).ok());
    ASSERT_EQ(Type, WireFrame::Report);
    ASSERT_GE(Payload.size(), 9u);
    Ids[I] = wireGetU64(Payload.data() + 1);
  }
  // Wait for the *exact* trimmed roster, not just its size: the roster
  // briefly reads [1, 2] while session 3's summary is still landing.
  ASSERT_TRUE(eventually([&] {
    std::vector<SessionSummary> Kept = Server.finishedSessions();
    return Kept.size() == 2 && Kept[0].Id == Ids[1] && Kept[1].Id == Ids[2];
  })) << "roster never trimmed to the newest two summaries";

  // An idle connection (hello, then silence) is evicted by the timer
  // wheel once IdleTimeoutMs passes.
  WireClient Idle;
  ASSERT_TRUE(Idle.connectUnix(Cfg.SocketPath, 2000).ok());
  ASSERT_TRUE(Idle.sendHello().ok());
  ASSERT_TRUE(eventually([&] { return Server.activeSessions() == 1; }));
  ASSERT_TRUE(eventually([&] { return Server.activeSessions() == 0; }));
  EXPECT_GE(metricValue(Server.metrics(), "idle_evicted"), 1u);
  ASSERT_TRUE(eventually([&] {
    for (const SessionSummary &S : Server.finishedSessions())
      if (!S.CleanFinish &&
          S.Outcome.Message.find("idle past") != std::string::npos)
        return true;
    return false;
  }));
  Server.stop();
}

} // namespace
